// tarr-insight — the run-diagnosis front end over tarr::insight.  Two
// subcommands:
//
//   tarr-insight diagnose [run options] [--congested] [--epoch E]
//       [--cong-seed S] [--cong-prob P] [--fail-on SEVERITY] [--out FILE]
//       [--markdown] [--save-tlog FILE] [--from-tlog FILE]
//       Run the pattern-matched collective (identity layout by default —
//       diagnosing the *un-reordered* run is the point), record its
//       schedule and metrics distributions, and print the ranked findings:
//       stragglers, load imbalance, unfair cable load, contention /
//       retransmission domination, QPI share, distribution tails — each
//       with exact traced evidence and the knob it implicates.
//       --congested prices the run on a fig8-style multi-tenant congested
//       fabric (probe::congestion_mask over the GPC network, deterministic
//       in --cong-seed/--epoch).  With --fail-on the exit code is 3 when
//       any finding reaches the given severity (CI gate on diagnosis).
//       --save-tlog streams the run into a `.tlog` trace (docs/TLOG.md);
//       --from-tlog skips the simulation and rebuilds both the schedule
//       record and the metrics distributions from such a file — with the
//       same run options the diagnosis is byte-identical to the live run.
//
//   tarr-insight trend SELECTOR [--label L] [SELECTOR [--label L] ...]
//       [--rel-threshold P] [--abs-threshold V] [--all]
//       [--fail-on-regression]
//       Load an ordered sequence of bench snapshot sets (dir / file / glob
//       selectors, oldest first; --label names the history position,
//       default the selector itself) and report step changes per gated
//       metric with the commit-window they landed in.  Prints the literal
//       "no change points" when every metric held its level.  With
//       --fail-on-regression the exit code is 1 when any step landed in a
//       metric's worse direction.
//
// Run options (diagnose): --nodes N, --procs P, --layout L, --pattern PAT,
// --mapper identity|heuristic|scotch|greedy, --seed S, --msg BYTES,
// --top K.  Determinism: same flags + same seeds -> byte-identical output
// (CI cmp's two runs).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "collectives/allgather.hpp"
#include "collectives/gather_bcast.hpp"
#include "common/cli.hpp"
#include "core/topoallgather.hpp"
#include "tlog/reader.hpp"
#include "tlog/writer.hpp"
#include "fault/degraded.hpp"
#include "insight/insight.hpp"
#include "mapping/comparators.hpp"
#include "probe/congestion.hpp"
#include "simmpi/layout.hpp"
#include "topology/fattree.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace tarr;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: tarr-insight diagnose [run options] [--congested] [--epoch E]\n"
      "                    [--cong-seed S] [--cong-prob P]\n"
      "                    [--fail-on info|warning|critical] [--out FILE]\n"
      "                    [--markdown] [--save-tlog F] [--from-tlog F]\n"
      "       tarr-insight trend SELECTOR [--label L] [SELECTOR ...]\n"
      "                    [--rel-threshold P] [--abs-threshold V] [--all]\n"
      "                    [--fail-on-regression]\n"
      "run options: --nodes N --procs P --layout L --pattern PAT\n"
      "             --mapper identity|heuristic|scotch|greedy --seed S\n"
      "             --msg BYTES --top K\n");
  std::exit(2);
}

simmpi::LayoutSpec parse_layout(const std::string& s) {
  for (const auto& spec : simmpi::all_layouts())
    if (to_string(spec) == s) return spec;
  throw Error("unknown layout: " + s);
}

mapping::Pattern parse_pattern(const std::string& s) {
  for (auto p : {mapping::Pattern::RecursiveDoubling, mapping::Pattern::Ring,
                 mapping::Pattern::BinomialBcast,
                 mapping::Pattern::BinomialGather, mapping::Pattern::Bruck})
    if (s == mapping::to_string(p)) return p;
  throw Error("unknown pattern: " + s);
}

void run_collective(simmpi::Engine& eng, mapping::Pattern pattern,
                    const std::vector<Rank>& oldrank) {
  using collectives::AllgatherAlgo;
  using collectives::OrderFix;
  switch (pattern) {
    case mapping::Pattern::RecursiveDoubling:
      collectives::run_allgather(
          eng, {AllgatherAlgo::RecursiveDoubling, OrderFix::InitComm},
          oldrank);
      break;
    case mapping::Pattern::Ring:
      collectives::run_allgather(eng, {AllgatherAlgo::Ring, OrderFix::None},
                                 oldrank);
      break;
    case mapping::Pattern::Bruck:
      collectives::run_allgather(eng, {AllgatherAlgo::Bruck, OrderFix::None},
                                 oldrank);
      break;
    case mapping::Pattern::BinomialBcast:
      collectives::run_bcast(eng, collectives::TreeAlgo::Binomial);
      break;
    case mapping::Pattern::BinomialGather:
      collectives::run_gather(eng, collectives::TreeAlgo::Binomial,
                              OrderFix::InitComm, oldrank);
      break;
    default:
      throw Error("tarr-insight: pattern has no collective to run");
  }
}

struct DiagnoseArgs {
  int nodes = 8;
  int procs = 64;
  std::string layout = "cyclic-bunch";
  std::string pattern = "ring";
  std::string mapper = "identity";
  std::uint64_t seed = 1;
  long long msg_bytes = 16 * 1024;
  int top_k = 8;
  bool congested = false;
  int epoch = 0;
  probe::CongestionConfig congestion;
  std::string fail_on;  ///< empty: never gate
  std::string out_path;
  report::RenderFormat format = report::RenderFormat::Text;
  std::string save_tlog;  ///< also stream the recorded run into a .tlog
  std::string from_tlog;  ///< rebuild record + metrics from a .tlog
};

int cmd_diagnose(int argc, char** argv) {
  DiagnoseArgs a;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw cli::UsageError("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--nodes")
      a.nodes = static_cast<int>(cli::parse_int(arg, next(), 1, 1 << 20));
    else if (arg == "--procs")
      a.procs = static_cast<int>(cli::parse_int(arg, next(), 1, 1 << 26));
    else if (arg == "--layout") a.layout = next();
    else if (arg == "--pattern") a.pattern = next();
    else if (arg == "--mapper") a.mapper = next();
    else if (arg == "--seed") a.seed = cli::parse_seed(arg, next());
    else if (arg == "--msg")
      a.msg_bytes = cli::parse_int(arg, next(), 1,
                                   std::numeric_limits<long long>::max());
    else if (arg == "--top")
      a.top_k = static_cast<int>(cli::parse_int(arg, next(), 1, 1 << 20));
    else if (arg == "--congested") a.congested = true;
    else if (arg == "--epoch")
      a.epoch = static_cast<int>(cli::parse_int(arg, next(), 0, 1 << 20));
    else if (arg == "--cong-seed") a.congestion.seed = cli::parse_seed(arg, next());
    else if (arg == "--cong-prob")
      a.congestion.link_prob = cli::parse_double(arg, next(), 0.0, 1.0);
    else if (arg == "--fail-on") a.fail_on = next();
    else if (arg == "--out") a.out_path = next();
    else if (arg == "--markdown") a.format = report::RenderFormat::Markdown;
    else if (arg == "--save-tlog") a.save_tlog = next();
    else if (arg == "--from-tlog") a.from_tlog = next();
    else throw cli::UsageError("unknown option " + arg);
  }
  if (!a.from_tlog.empty() && !a.save_tlog.empty())
    throw cli::UsageError("--from-tlog and --save-tlog are exclusive");
  // Parse the gate severity before the run so a typo fails in milliseconds,
  // and probe the output path the same way.
  std::optional<insight::Severity> gate;
  if (!a.fail_on.empty()) gate = insight::parse_severity(a.fail_on);
  if (!a.out_path.empty()) trace::Tracer::ensure_writable(a.out_path);

  // The congested fabric is realized exactly like the fig8 scenario: a
  // seeded multi-tenant mask over the switch graph, then the degraded
  // machine prices the run.  --congested right-sizes the fabric (two nodes
  // per leaf, wide host links, capacity-2 leaf uplinks) so tenant traffic
  // lands on links the job shares: on the paper's 30-nodes-per-leaf tree a
  // small job never leaves its leaf and congestion could not touch it.
  const topology::Machine base =
      a.congested
          ? topology::Machine(
                topology::NodeShape{},
                topology::build_gpc_network(
                    a.nodes,
                    {.num_leaves = (a.nodes + 1) / 2, .nodes_per_leaf = 2,
                     .num_cores = 1, .uplinks_per_core = 2,
                     .lines_per_core = 1, .spines_per_core = 1,
                     .leaves_per_line = (a.nodes + 1) / 2,
                     .host_link_capacity = 8}))
          : topology::Machine::gpc(a.nodes);
  std::optional<fault::DegradedTopology> degraded;
  if (a.congested)
    degraded.emplace(base, probe::congestion_mask(base.network(), a.congestion,
                                                  a.epoch));
  const topology::Machine& machine = a.congested ? degraded->machine() : base;

  const mapping::Pattern pattern = parse_pattern(a.pattern);
  const simmpi::Communicator comm(
      machine, simmpi::make_layout(machine, a.procs, parse_layout(a.layout)));
  std::vector<Rank> oldrank(static_cast<std::size_t>(comm.size()));
  std::iota(oldrank.begin(), oldrank.end(), 0);

  const simmpi::Communicator* run_comm = &comm;
  std::optional<core::ReorderedComm> rc;
  // In --from-tlog mode the mapping run is skipped along with the
  // simulation; rank count (all the header needs) is mapper-independent.
  if (a.from_tlog.empty() && a.mapper != "identity") {
    core::ReorderFramework::Options fopts;
    fopts.seed = a.seed;
    core::ReorderFramework fw(machine, fopts);
    if (a.mapper == "heuristic") rc = fw.reorder(comm, pattern);
    else if (a.mapper == "scotch")
      rc = fw.reorder_with(comm, *mapping::make_scotch_like_mapper(pattern));
    else if (a.mapper == "greedy")
      rc = fw.reorder_with(comm, *mapping::make_greedy_graph_mapper(pattern));
    else throw Error("unknown mapper: " + a.mapper);
    run_comm = &rc->comm;
    oldrank = rc->oldrank;
  }

  // Record the schedule AND the metrics distributions in one run: the
  // recorder feeds the imbalance analytics, the tracer's registry feeds
  // the tail-latency findings.  A `.tlog` replay delivers the identical
  // event stream to the same tee, so both rebuild byte-exactly.
  report::ScheduleRecorder recorder;
  trace::TracerOptions topts;
  topts.timeline = false;
  trace::Tracer tracer(topts);
  trace::TeeSink tee(&tracer, &recorder);
  if (!a.from_tlog.empty()) {
    tlog::replay(a.from_tlog, tee);
  } else {
    std::optional<tlog::TlogSink> tlog_sink;
    if (!a.save_tlog.empty()) tlog_sink.emplace(a.save_tlog);
    trace::TeeSink outer(&tee, tlog_sink ? &*tlog_sink : nullptr);
    simmpi::Engine eng(*run_comm, simmpi::CostConfig{},
                       simmpi::ExecMode::Timed, a.msg_bytes, run_comm->size());
    eng.set_trace_sink(&outer);
    run_collective(eng, pattern, oldrank);
    if (tlog_sink) tlog_sink->finish();
  }
  const report::ScheduleRecord rec = recorder.take();

  insight::DiagnoseOptions dopts;
  dopts.top_k = a.top_k;
  const insight::Diagnosis d =
      insight::diagnose(rec, machine, dopts, &tracer.metrics());

  std::printf("%s over %d ranks on %d nodes (%s mapping%s, %lld B blocks)\n",
              a.pattern.c_str(), run_comm->size(), a.nodes, a.mapper.c_str(),
              a.congested ? ", congested fabric" : "", a.msg_bytes);
  const std::string body = insight::render_findings(d, a.format);
  std::fputs(body.c_str(), stdout);
  if (!a.out_path.empty()) {
    std::FILE* f = std::fopen(a.out_path.c_str(), "wb");
    if (f == nullptr)
      throw Error("tarr-insight: cannot write " + a.out_path);
    const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = n == body.size() && std::fclose(f) == 0;
    if (!ok) throw Error("tarr-insight: short write to " + a.out_path);
  }
  if (gate && d.has_severity_at_least(*gate)) return 3;
  return 0;
}

int cmd_trend(int argc, char** argv) {
  std::vector<insight::SnapshotSet> sets;
  insight::ChangePointOptions opts;
  bool fail_on_regression = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw cli::UsageError("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--label") {
      if (sets.empty())
        throw cli::UsageError("--label must follow a selector");
      sets.back().label = next();
    } else if (arg == "--rel-threshold") {
      opts.rel_threshold = cli::parse_double(
          arg, next(), 0.0, std::numeric_limits<double>::max());
    } else if (arg == "--abs-threshold") {
      opts.abs_threshold = cli::parse_double(
          arg, next(), 0.0, std::numeric_limits<double>::max());
    } else if (arg == "--all") {
      opts.gated_only = false;
    } else if (arg == "--fail-on-regression") {
      fail_on_regression = true;
    } else if (arg[0] == '-') {
      throw cli::UsageError("unknown option " + arg);
    } else {
      insight::SnapshotSet s;
      s.label = argv[i];
      s.snapshots = report::load_snapshot_set_glob(argv[i]);
      sets.push_back(std::move(s));
    }
  }
  if (sets.size() < 2) usage();
  const auto points = insight::detect_change_points(sets, opts);
  std::fputs(insight::render_change_points(points).c_str(), stdout);
  if (fail_on_regression)
    for (const auto& cp : points)
      if (cp.regression) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  try {
    if (!std::strcmp(argv[1], "diagnose")) return cmd_diagnose(argc, argv);
    if (!std::strcmp(argv[1], "trend")) return cmd_trend(argc, argv);
    usage();
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "tarr-insight: %s\n", e.what());
    usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "tarr-insight: %s\n", e.what());
    return 1;
  }
}
