// Quickstart: the five steps of topology-aware rank reordering.
//
//   1. describe the machine (here: a 64-node slice of the GPC-like cluster);
//   2. place 512 MPI processes with the resource manager's layout;
//   3. create the reordering framework (extracts distances once);
//   4. wrap the communicator in a topology-aware allgather;
//   5. call it — the first call per algorithm creates the reordered
//      communicator, later calls reuse it.

#include <cstdio>

#include "core/topoallgather.hpp"
#include "simmpi/layout.hpp"

int main() {
  using namespace tarr;

  // 1. The machine: 64 dual-socket quad-core nodes on a GPC-style fat-tree.
  const topology::Machine machine = topology::Machine::gpc(64);
  std::printf("%s\n\n", machine.describe().c_str());

  // 2. A 512-process job placed cyclically (a layout a batch scheduler
  //    might produce, and a poor match for the ring algorithm).
  const simmpi::LayoutSpec layout{simmpi::NodeOrder::Cyclic,
                                  simmpi::SocketOrder::Bunch};
  simmpi::Communicator comm(machine,
                            simmpi::make_layout(machine, 512, layout));

  // 3. The rank-reordering framework (the paper's §IV runtime).
  core::ReorderFramework framework(machine);

  // 4. Topology-aware allgather with the paper's heuristics and the
  //    extra-initial-communications order fix.
  core::TopoAllgatherConfig cfg;
  cfg.mapper = core::MapperKind::Heuristic;
  cfg.fix = collectives::OrderFix::InitComm;
  core::TopoAllgather topo_aware(framework, comm, cfg);

  // The untouched default, for comparison.
  core::TopoAllgatherConfig none;
  none.mapper = core::MapperKind::None;
  core::TopoAllgather library_default(framework, comm, none);

  // 5. Use it.
  std::printf("initial mapping: %s\n", simmpi::to_string(layout).c_str());
  std::printf("%10s %16s %16s %10s\n", "msg", "default (us)",
              "reordered (us)", "speedup");
  for (Bytes msg : {Bytes(256), Bytes(4096), Bytes(64 * 1024),
                    Bytes(256 * 1024)}) {
    const Usec before = library_default.latency(msg);
    const Usec after = topo_aware.latency(msg);
    std::printf("%10lld %16.1f %16.1f %9.2fx\n",
                static_cast<long long>(msg), before, after, before / after);
  }

  std::printf(
      "\none-time overheads: distance extraction %.3f s, mapping %.4f s\n",
      framework.distance_extraction_seconds(),
      topo_aware.mapping_seconds());
  return 0;
}
