// Fault campaign driver: Monte Carlo sweep over component failures that
// answers "after the fabric breaks, is the pre-failure rank reordering still
// worth keeping, or should the job remap?"  For each failure count k it
// samples k failed links (or nodes), rebuilds routing over the surviving
// fabric, shrinks the communicator past dead nodes, and prices every
// pattern-matched heuristic under baseline / stale-mapping / remap policies.
//
// Usage: fault_campaign [options]
//   --smoke               deterministic small preset (CI smoke; <= 64 nodes)
//   --nodes N             machine size                       (default 32)
//   --trials T            Monte Carlo trials per count       (default 8)
//   --failures a,b,c      failure counts to sweep            (default 0,1,2,4,8)
//   --kind links|nodes    what fails                         (default links)
//   --seed S              campaign seed                      (default 1)
//   --drop P              transient per-transfer drop probability (default 0)
//   --csv PATH            also write the per-row CSV
//   --json PATH           also write the JSON rows
//   --metrics PATH        also write the campaign metrics CSV (trial
//                         outcomes + transient drop/corrupt/retransmit
//                         counters; schema category,key,count,total,peak)
//
// --smoke prints the metrics CSV after the summary, so CI gets the
// machine-readable counters without an extra file.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "fault/campaign.hpp"

namespace {

std::vector<int> parse_counts(const char* s) {
  std::vector<int> out;
  std::string tok;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!tok.empty()) out.push_back(std::atoi(tok.c_str()));
      tok.clear();
      if (*p == '\0') break;
    } else {
      tok += *p;
    }
  }
  return out;
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream f(path);
  if (!f) throw tarr::Error("fault_campaign: cannot write " + path);
  f << body;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tarr;

  fault::CampaignConfig cfg;
  std::string csv_path, json_path, metrics_path;
  bool smoke = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--smoke") {
      smoke = true;
      // Deterministic CI preset: small machine, few trials, both a clean and
      // a heavily-degraded point, fixed seed.  nodes_per_leaf is shrunk so
      // the 16 nodes still span every leaf of the fabric.
      cfg.num_nodes = 16;
      cfg.tree.nodes_per_leaf = 4;
      cfg.trials = 2;
      cfg.failure_counts = {0, 2, 4};
      cfg.seed = 42;
    } else if (a == "--nodes") {
      cfg.num_nodes = std::atoi(next());
    } else if (a == "--trials") {
      cfg.trials = std::atoi(next());
    } else if (a == "--failures") {
      cfg.failure_counts = parse_counts(next());
    } else if (a == "--kind") {
      const std::string k = next();
      if (k == "links") {
        cfg.kind = fault::FailureKind::Links;
      } else if (k == "nodes") {
        cfg.kind = fault::FailureKind::Nodes;
      } else {
        std::fprintf(stderr, "--kind must be links or nodes\n");
        return 2;
      }
    } else if (a == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--drop") {
      cfg.transient.drop_prob = std::atof(next());
    } else if (a == "--csv") {
      csv_path = next();
    } else if (a == "--json") {
      json_path = next();
    } else if (a == "--metrics") {
      metrics_path = next();
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return 2;
    }
  }

  try {
    const fault::CampaignResult result = fault::run_fault_campaign(cfg);
    std::printf("%s", result.summary().c_str());
    if (smoke) {
      std::printf("\nmetrics (category,key,count,total,peak):\n%s",
                  result.metrics_csv().c_str());
    }
    if (!csv_path.empty()) write_file(csv_path, result.csv());
    if (!json_path.empty()) write_file(json_path, result.json());
    if (!metrics_path.empty()) write_file(metrics_path, result.metrics_csv());
  } catch (const Error& e) {
    std::fprintf(stderr, "fault_campaign: %s\n", e.what());
    return 1;
  }
  return 0;
}
