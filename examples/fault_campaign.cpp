// Fault campaign driver: Monte Carlo sweep over component failures that
// answers "after the fabric breaks, is the pre-failure rank reordering still
// worth keeping, or should the job remap?"  For each failure count k it
// samples k failed links (or nodes), rebuilds routing over the surviving
// fabric, shrinks the communicator past dead nodes, and prices every
// pattern-matched heuristic under baseline / stale-mapping / remap policies.
//
// Usage: fault_campaign [options]
//   --smoke               deterministic small preset (CI smoke; <= 64 nodes)
//   --nodes N             machine size                       (default 32)
//   --trials T            Monte Carlo trials per count       (default 8)
//   --failures a,b,c      failure counts to sweep            (default 0,1,2,4,8)
//   --kind links|nodes    what fails                         (default links)
//   --seed S              campaign seed                      (default 1)
//   --drop P              transient per-transfer drop probability (default 0)
//   --csv PATH            also write the per-row CSV
//   --json PATH           also write the JSON rows
//   --metrics PATH        also write the campaign metrics CSV (trial
//                         outcomes + transient drop/corrupt/retransmit
//                         counters; schema category,key,count,total,peak)
//   --html PATH           also write a self-contained HTML page charting
//                         mean baseline/stale/remap latency per pattern
//                         across the failure sweep (tarr::viz; deterministic
//                         like every other artifact here)
//   --prof PATH           also self-profile the campaign (tarr::prof) and
//                         write the deterministic work-counter flat profile
//                         CSV; prof.* totals are appended to the summary
//   --tlog PATH           also stream the campaign's trace events (aggregate
//                         counters + wall span) to a bounded-memory binary
//                         .tlog capture (tarr::tlog; inspect with tarr-log)
//
// --smoke prints the metrics CSV after the summary, so CI gets the
// machine-readable counters without an extra file.

#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "fault/campaign.hpp"
#include "prof/prof.hpp"
#include "tlog/writer.hpp"
#include "trace/tracer.hpp"
#include "viz/html.hpp"

namespace {

constexpr const char* kUsage =
    "Usage: fault_campaign [options]\n"
    "  --smoke               deterministic small preset (CI smoke)\n"
    "  --nodes N             machine size, N >= 1          (default 32)\n"
    "  --trials T            Monte Carlo trials, T >= 1    (default 8)\n"
    "  --failures a,b,c      failure counts, each >= 0     (default 0,1,2,4,8)\n"
    "  --kind links|nodes    what fails                    (default links)\n"
    "  --seed S              campaign seed                 (default 1)\n"
    "  --drop P              transient drop probability in [0,1] (default 0)\n"
    "  --csv PATH            also write the per-row CSV\n"
    "  --json PATH           also write the JSON rows\n"
    "  --metrics PATH        also write the campaign metrics CSV\n"
    "  --html PATH           also write the HTML chart page\n"
    "  --prof PATH           also write the tarr::prof flat profile CSV\n"
    "  --tlog PATH           also write the binary .tlog trace capture\n";

std::vector<int> parse_counts(const char* s) {
  namespace cli = tarr::cli;
  std::vector<int> out;
  std::string tok;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!tok.empty()) {
        out.push_back(static_cast<int>(
            cli::parse_int("--failures", tok.c_str(), 0, 1 << 20)));
        tok.clear();
      }
      if (*p == '\0') break;
    } else {
      tok += *p;
    }
  }
  if (out.empty()) throw cli::UsageError("--failures: empty list");
  return out;
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream f(path);
  if (!f) throw tarr::Error("fault_campaign: cannot write " + path);
  f << body;
}

/// Campaign page: one chart per (pattern, mapper) — mean baseline / stale /
/// remap latency across the failure sweep (partitioned trials excluded,
/// they have no times) — plus the full row table.  Assembled here from
/// tarr::viz primitives so the viz library itself stays fault-agnostic.
std::string campaign_html(const tarr::fault::CampaignResult& result) {
  namespace viz = tarr::viz;
  using tarr::fault::CampaignRow;

  // (pattern, mapper) -> failures -> [sum, count] per policy.
  struct Acc {
    double sum[3] = {0, 0, 0};
    int count = 0;
  };
  std::map<std::pair<std::string, std::string>, std::map<int, Acc>> series;
  int skipped_partitioned = 0;
  for (const CampaignRow& row : result.rows) {
    if (row.partitioned) {
      ++skipped_partitioned;
      continue;
    }
    Acc& acc = series[{row.pattern, row.mapper}][row.failures];
    acc.sum[0] += row.baseline_usec;
    acc.sum[1] += row.stale_usec;
    acc.sum[2] += row.remap_usec;
    ++acc.count;
  }

  viz::Page page("fault campaign");
  std::string intro =
      std::string(tarr::fault::to_string(result.config.kind)) +
      " failures over " + std::to_string(result.config.num_nodes) +
      " nodes, " + std::to_string(result.config.trials) +
      " trial(s) per count, seed " + std::to_string(result.config.seed);
  if (result.partitioned_trials > 0)
    intro += "; " + std::to_string(result.partitioned_trials) +
             " trial(s) partitioned the fabric";

  std::string body;
  for (const auto& [key, by_failures] : series) {
    std::vector<std::string> x;
    viz::ChartSeries base{"baseline", {}, 0};
    viz::ChartSeries stale{"stale mapping", {}, 1};
    viz::ChartSeries remap{"remap", {}, 2};
    for (const auto& [failures, acc] : by_failures) {
      x.push_back(std::to_string(failures));
      base.y.push_back(acc.sum[0] / acc.count);
      stale.y.push_back(acc.sum[1] / acc.count);
      remap.y.push_back(acc.sum[2] / acc.count);
    }
    viz::LineChartOptions opts;
    opts.y_label = "mean latency (us)";
    body += viz::line_chart(key.first + " / " + key.second +
                                " — mean latency vs failure count",
                            x, {base, stale, remap}, opts);
  }
  if (skipped_partitioned > 0)
    body += "<p class=\"intro\">" +
            viz::escape_text(std::to_string(skipped_partitioned) +
                             " partitioned row(s) are excluded from the "
                             "charts (no latencies exist).") +
            "</p>\n";

  std::vector<std::vector<std::string>> rows;
  for (const CampaignRow& row : result.rows)
    rows.push_back({std::to_string(row.failures), std::to_string(row.trial),
                    row.pattern, row.mapper, std::to_string(row.ranks),
                    row.partitioned ? "yes" : "no",
                    row.partitioned ? "-" : viz::fmt(row.baseline_usec),
                    row.partitioned ? "-" : viz::fmt(row.stale_usec),
                    row.partitioned ? "-" : viz::fmt(row.remap_usec)});
  body += viz::collapsible(
      "All rows (" + std::to_string(rows.size()) + ")",
      viz::data_table({"failures", "trial", "pattern", "mapper", "ranks",
                       "partitioned", "baseline (us)", "stale (us)",
                       "remap (us)"},
                      rows));
  page.add_section("Failure sweep", intro, body);
  return page.html();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tarr;

  fault::CampaignConfig cfg;
  std::string csv_path, json_path, metrics_path, html_path, prof_path;
  std::string tlog_path;
  bool smoke = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) throw cli::UsageError("missing value for " + a);
        return argv[++i];
      };
      if (a == "--smoke") {
        smoke = true;
        // Deterministic CI preset: small machine, few trials, both a clean
        // and a heavily-degraded point, fixed seed.  nodes_per_leaf is
        // shrunk so the 16 nodes still span every leaf of the fabric.
        cfg.num_nodes = 16;
        cfg.tree.nodes_per_leaf = 4;
        cfg.trials = 2;
        cfg.failure_counts = {0, 2, 4};
        cfg.seed = 42;
      } else if (a == "--nodes") {
        cfg.num_nodes = static_cast<int>(cli::parse_int(a, next(), 1, 1 << 20));
      } else if (a == "--trials") {
        cfg.trials = static_cast<int>(cli::parse_int(a, next(), 1, 1 << 20));
      } else if (a == "--failures") {
        cfg.failure_counts = parse_counts(next());
      } else if (a == "--kind") {
        const std::string k = next();
        if (k == "links") {
          cfg.kind = fault::FailureKind::Links;
        } else if (k == "nodes") {
          cfg.kind = fault::FailureKind::Nodes;
        } else {
          throw cli::UsageError("--kind must be links or nodes, got '" + k +
                                "'");
        }
      } else if (a == "--seed") {
        cfg.seed = cli::parse_seed(a, next());
      } else if (a == "--drop") {
        cfg.transient.drop_prob = cli::parse_double(a, next(), 0.0, 1.0);
      } else if (a == "--csv") {
        csv_path = next();
      } else if (a == "--json") {
        json_path = next();
      } else if (a == "--metrics") {
        metrics_path = next();
      } else if (a == "--html") {
        html_path = next();
      } else if (a == "--prof") {
        prof_path = next();
      } else if (a == "--tlog") {
        tlog_path = next();
      } else {
        throw cli::UsageError("unknown option " + a);
      }
    }
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "fault_campaign: %s\n%s", e.what(), kUsage);
    return 2;
  }

  try {
    // Fail fast on unwritable output paths — a campaign can run for minutes.
    for (const std::string& p :
         {csv_path, json_path, metrics_path, html_path, prof_path, tlog_path})
      if (!p.empty()) trace::Tracer::ensure_writable(p);

    prof::Profiler profiler;
    std::optional<prof::ScopedThreadProfiler> prof_ambient;
    if (!prof_path.empty()) {
      prof::link_memhook();
      prof_ambient.emplace(&profiler);
    }

    std::optional<tlog::TlogSink> tlog_sink;
    if (!tlog_path.empty()) tlog_sink.emplace(tlog_path);

    const fault::CampaignResult result =
        fault::run_fault_campaign(cfg, tlog_sink ? &*tlog_sink : nullptr);
    if (tlog_sink) tlog_sink->finish();
    std::printf("%s", result.summary().c_str());
    if (smoke) {
      std::printf("\nmetrics (category,key,count,total,peak):\n%s",
                  result.metrics_csv().c_str());
    }
    if (!csv_path.empty()) write_file(csv_path, result.csv());
    if (!json_path.empty()) write_file(json_path, result.json());
    if (!metrics_path.empty()) write_file(metrics_path, result.metrics_csv());
    if (!html_path.empty()) write_file(html_path, campaign_html(result));
    if (!prof_path.empty()) {
      const prof::Profile profile = profiler.snapshot();
      write_file(prof_path, prof::flat_csv(profile));
      // The campaign summary picks the profiler totals up as prof.* counter
      // rows (same registry schema as the campaign metrics CSV).
      trace::MetricsRegistry reg;
      prof::publish(profile, reg);
      std::printf("\nprof totals (category,key,count,total,peak):\n%s",
                  reg.csv().c_str());
      std::printf("prof    : %s (%zu scopes)\n", prof_path.c_str(),
                  profile.entries.size());
    }
    if (tlog_sink) {
      std::printf("tlog    : %s (%llu bytes, %lld events)\n",
                  tlog_path.c_str(),
                  static_cast<unsigned long long>(tlog_sink->totals().bytes),
                  tlog_sink->totals().stored_events());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "fault_campaign: %s\n", e.what());
    return 1;
  }
  return 0;
}
