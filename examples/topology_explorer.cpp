// Topology explorer: builds cluster models, inspects routes and distances —
// the information the mapping heuristics consume.  Demonstrates the
// topology substrate as a standalone library.

#include <cstdio>

#include "topology/distance.hpp"
#include "topology/fattree.hpp"
#include "topology/machine.hpp"

namespace {

using namespace tarr;
using namespace tarr::topology;

void show_route(const Machine& m, NodeId a, NodeId b) {
  const auto& net = m.network();
  std::printf("  node%-4d -> node%-4d (%d hops): node%d", a, b,
              m.router().hops(a, b), a);
  NetVertexId at = net.host_vertex(a);
  for (LinkId l : m.router().path(a, b)) {
    at = net.other_end(l, at);
    std::printf(" -> %s", net.vertex(at).name.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // The paper's testbed shape at 1/4 scale: 120 nodes across 4 leaves.
  const Machine gpc = Machine::gpc(120);
  std::printf("GPC-like machine:\n%s\n\n", gpc.describe().c_str());

  std::printf("Sample routes (deterministic, destination-based):\n");
  show_route(gpc, 0, 5);     // same leaf
  show_route(gpc, 0, 35);    // neighboring leaf, same line switch
  show_route(gpc, 0, 95);    // across the core switches
  show_route(gpc, 95, 0);    // reverse direction

  std::printf("\nCore-to-core distances (what the heuristics see):\n");
  const DistanceMatrix d = extract_distances(gpc);
  struct Probe {
    const char* what;
    CoreId a, b;
  };
  const Probe probes[] = {
      {"same socket", 0, 1},
      {"same node, other socket", 0, 4},
      {"same leaf, other node", 0, 8},
      {"other leaf, same line group", 0, 35 * 8},
      {"across spines", 0, 95 * 8},
  };
  for (const auto& p : probes)
    std::printf("  %-28s d(core%d, core%d) = %.1f\n", p.what, p.a, p.b,
                d.at(p.a, p.b));

  std::printf("\nAlternative machines from the same builders:\n");
  const Machine xbar = Machine::single_switch(16);
  std::printf("%s\n", xbar.describe().c_str());
  const Machine ft = Machine(NodeShape{4, 8},
                             build_two_level_fattree(32, 8, 4, 2));
  std::printf("%s\n", ft.describe().c_str());
  return 0;
}
