// Layout advisor: the question a user actually brings to this library —
// "my job is about to run; which placement should I request from the batch
// system, and should I turn rank reordering on?"  For a given machine and
// job size, the advisor evaluates every initial layout with and without
// the heuristics across the message-size spectrum and prints a
// recommendation.
//
// Usage: layout_advisor [nodes] [procs]   (defaults: 64 nodes, all cores)

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hpp"
#include "core/topoallgather.hpp"
#include "simmpi/layout.hpp"

int main(int argc, char** argv) {
  using namespace tarr;

  const int nodes = argc > 1 ? std::atoi(argv[1]) : 64;
  const topology::Machine machine = topology::Machine::gpc(nodes);
  const int procs =
      argc > 2 ? std::atoi(argv[2]) : machine.total_cores();
  core::ReorderFramework framework(machine);

  const Bytes sizes[] = {1024, 16 * 1024, 128 * 1024};

  std::printf(
      "Layout advisor — %d processes on %d nodes, allgather-heavy job\n"
      "(geometric-mean latency across 1KB / 16KB / 128KB messages)\n\n",
      procs, nodes);

  TextTable t;
  t.set_header({"layout", "default (us)", "reordered (us)",
                "reorder gain"});
  double best_score = 0.0;
  std::string best_layout;
  bool best_reordered = false;

  for (const auto& spec : simmpi::all_layouts()) {
    const simmpi::Communicator comm(
        machine, simmpi::make_layout(machine, procs, spec));
    core::TopoAllgatherConfig def;
    def.mapper = core::MapperKind::None;
    core::TopoAllgather d(framework, comm, def);
    core::TopoAllgatherConfig heu;
    heu.mapper = core::MapperKind::Heuristic;
    heu.fix = collectives::OrderFix::InitComm;
    core::TopoAllgather h(framework, comm, heu);

    auto geomean = [&](core::TopoAllgather& path) {
      double log_sum = 0.0;
      for (Bytes msg : sizes) log_sum += std::log(path.latency(msg));
      return std::exp(log_sum / std::size(sizes));
    };
    const double gd = geomean(d);
    const double gh = geomean(h);
    t.add_row({simmpi::to_string(spec), TextTable::num(gd, 1),
               TextTable::num(gh, 1),
               TextTable::num(gd / gh, 2) + "x"});

    for (auto [score, reordered] : {std::pair{1.0 / gd, false},
                                    std::pair{1.0 / gh, true}}) {
      if (score > best_score) {
        best_score = score;
        best_layout = simmpi::to_string(spec);
        best_reordered = reordered;
      }
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Recommendation: request --distribution equivalent of '%s' and run\n"
      "with rank reordering %s (info key tarr_reorder=%s).\n",
      best_layout.c_str(), best_reordered ? "ENABLED" : "disabled",
      best_reordered ? "enabled" : "disabled");
  return 0;
}
