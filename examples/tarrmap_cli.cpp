// tarrmap — command-line front end to the mapping stack, the tool a cluster
// operator would run: given a machine, a process count, an initial layout
// and a collective pattern, print the reordered rank placement and its
// predicted effect.
//
// Usage:
//   tarrmap [--nodes N] [--procs P] [--layout block-bunch|block-scatter|
//            cyclic-bunch|cyclic-scatter] [--pattern recursive-doubling|
//            ring|binomial-bcast|binomial-gather|bruck]
//            [--mapper heuristic|scotch|greedy] [--seed S] [--quiet]
//            [--msg BYTES] [--trace out.json] [--metrics out.csv]
//            [--tlog out.tlog] [--trace-wall] [--report] [--html out.html]
//            [--prof out.csv] [--prof-speedscope out.json]
//            [--prof-collapsed out.txt] [--prof-wall]
//            [--insight out.txt] [--out-dir DIR]
//
// With --trace/--metrics/--report/--html the tool also *runs* the
// pattern-matched collective (Timed engine, --msg bytes per block) over the
// reordered communicator and exports the observability artifacts: a
// Perfetto-loadable Chrome trace-event timeline, the metrics registry CSV,
// a critical-path report of the just-traced run, and/or a self-contained
// HTML dashboard — topology load, communication matrices, timelines and the
// mapping-attribution diff of the baseline layout vs. the reordering (see
// docs/OBSERVABILITY.md).  --tlog additionally streams every event of the
// run — the framework's wall spans and counters included — into a compact
// bounded-memory `.tlog` binary trace (docs/TLOG.md; query with tarr-log,
// re-analyze with --from-tlog on tarr-report/tarr-viz/tarr-insight).
// Output paths are probed for writability *before*
// the reorder+simulation so a typo'd path fails in milliseconds, not after
// the run.  Trace files and dashboards are byte-identical across same-seed
// runs unless --trace-wall opts into real wall-clock durations for the
// mapping spans (the dashboard never embeds wall-clock values).
//
// With --prof the tool additionally self-profiles: a tarr::prof ambient
// profiler covers distance extraction, the mapping run and the simulated
// collective, and the deterministic work-counter flat profile is written as
// CSV (plus optional speedscope JSON / collapsed stacks for flamegraphs).
// Counter profiles are byte-identical across same-seed runs; --prof-wall
// opts wall-clock columns into the CSV, mirroring --trace-wall.  Profiler
// totals are also published as prof.* rows into the --metrics CSV, and
// --html gains an "Overheads" section.
//
// With --insight the tool diagnoses the traced run (tarr::insight):
// stragglers, load imbalance, fairness and critical-path pathologies with
// exact evidence, written as text to the given path; --html gains a
// "Diagnosis" section over the baseline run.
//
// --out-dir DIR derives every artifact path from one flag — DIR/trace.json,
// DIR/metrics.csv, DIR/report.txt, DIR/dashboard.html, DIR/prof.csv,
// DIR/insight.txt — creating DIR if needed; an explicit per-artifact flag
// overrides its derived path.  All paths are probed up front.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "collectives/allgather.hpp"
#include "collectives/gather_bcast.hpp"
#include "common/cli.hpp"
#include "core/topoallgather.hpp"
#include "tlog/writer.hpp"
#include "insight/insight.hpp"
#include "mapping/comparators.hpp"
#include "mapping/mapcost.hpp"
#include "prof/prof.hpp"
#include "report/critical_path.hpp"
#include "report/record.hpp"
#include "report/render.hpp"
#include "simmpi/layout.hpp"
#include "trace/tracer.hpp"
#include "viz/dashboard.hpp"

namespace {

using namespace tarr;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--nodes N] [--procs P] [--layout L] "
               "[--pattern PAT] [--mapper M] [--seed S] [--quiet] "
               "[--msg BYTES] [--trace out.json] [--metrics out.csv] "
               "[--tlog out.tlog] "
               "[--trace-wall] [--report] [--html out.html] "
               "[--prof out.csv] [--prof-speedscope out.json] "
               "[--prof-collapsed out.txt] [--prof-wall] "
               "[--insight out.txt] [--out-dir DIR]\n",
               argv0);
  std::exit(2);
}

/// Run the collective the pattern describes over the reordered communicator,
/// emitting through the engine's trace sink.
void run_traced_collective(simmpi::Engine& eng, mapping::Pattern pattern,
                           const std::vector<Rank>& oldrank) {
  using collectives::AllgatherAlgo;
  using collectives::OrderFix;
  switch (pattern) {
    case mapping::Pattern::RecursiveDoubling:
      collectives::run_allgather(
          eng, {AllgatherAlgo::RecursiveDoubling, OrderFix::InitComm},
          oldrank);
      break;
    case mapping::Pattern::Ring:
      collectives::run_allgather(eng, {AllgatherAlgo::Ring, OrderFix::None},
                                 oldrank);
      break;
    case mapping::Pattern::Bruck:
      collectives::run_allgather(eng, {AllgatherAlgo::Bruck, OrderFix::None},
                                 oldrank);
      break;
    case mapping::Pattern::BinomialBcast:
      collectives::run_bcast(eng, collectives::TreeAlgo::Binomial);
      break;
    case mapping::Pattern::BinomialGather:
      collectives::run_gather(eng, collectives::TreeAlgo::Binomial,
                              OrderFix::InitComm, oldrank);
      break;
    default:
      throw Error("tarrmap: pattern has no collective to trace");
  }
}

void write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw Error("cannot write " + path);
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  if (std::fclose(f) != 0 || !ok) throw Error("failed writing " + path);
}

simmpi::LayoutSpec parse_layout(const std::string& s) {
  for (const auto& spec : simmpi::all_layouts())
    if (to_string(spec) == s) return spec;
  throw Error("unknown layout: " + s);
}

mapping::Pattern parse_pattern(const std::string& s) {
  for (auto p : {mapping::Pattern::RecursiveDoubling, mapping::Pattern::Ring,
                 mapping::Pattern::BinomialBcast,
                 mapping::Pattern::BinomialGather, mapping::Pattern::Bruck})
    if (s == mapping::to_string(p)) return p;
  throw Error("unknown pattern: " + s);
}

}  // namespace

int main(int argc, char** argv) {
  int nodes = 8;
  int procs = 64;
  std::string layout_name = "cyclic-bunch";
  std::string pattern_name = "ring";
  std::string mapper_name = "heuristic";
  std::uint64_t seed = 1;
  bool quiet = false;
  long long msg_bytes = 16 * 1024;
  std::string trace_path, metrics_path, html_path, tlog_path;
  std::string prof_path, prof_speedscope_path, prof_collapsed_path;
  std::string insight_path, out_dir, report_path;
  bool trace_wall = false;
  bool prof_wall = false;
  bool report = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) throw cli::UsageError("missing value for " + a);
        return argv[++i];
      };
      if (a == "--nodes") {
        nodes = static_cast<int>(cli::parse_int(a, next(), 1, 1 << 20));
      } else if (a == "--procs") {
        procs = static_cast<int>(cli::parse_int(a, next(), 1, 1 << 26));
      } else if (a == "--layout") {
        layout_name = next();
      } else if (a == "--pattern") {
        pattern_name = next();
      } else if (a == "--mapper") {
        mapper_name = next();
      } else if (a == "--seed") {
        seed = cli::parse_seed(a, next());
      } else if (a == "--quiet") {
        quiet = true;
      } else if (a == "--msg") {
        msg_bytes = cli::parse_int(a, next(), 1,
                                   std::numeric_limits<long long>::max());
      } else if (a == "--trace") {
        trace_path = next();
      } else if (a == "--metrics") {
        metrics_path = next();
      } else if (a == "--tlog") {
        tlog_path = next();
      } else if (a == "--trace-wall") {
        trace_wall = true;
      } else if (a == "--report") {
        report = true;
      } else if (a == "--html") {
        html_path = next();
      } else if (a == "--prof") {
        prof_path = next();
      } else if (a == "--prof-speedscope") {
        prof_speedscope_path = next();
      } else if (a == "--prof-collapsed") {
        prof_collapsed_path = next();
      } else if (a == "--prof-wall") {
        prof_wall = true;
      } else if (a == "--insight") {
        insight_path = next();
      } else if (a == "--out-dir") {
        out_dir = next();
      } else {
        throw cli::UsageError("unknown option " + a);
      }
    }
    // --out-dir derives every artifact path from one flag; explicit
    // per-artifact flags override their derived path.
    if (!out_dir.empty()) {
      std::filesystem::create_directories(out_dir);
      const std::string d = out_dir + "/";
      if (trace_path.empty()) trace_path = d + "trace.json";
      if (metrics_path.empty()) metrics_path = d + "metrics.csv";
      if (tlog_path.empty()) tlog_path = d + "trace.tlog";
      if (html_path.empty()) html_path = d + "dashboard.html";
      if (prof_path.empty()) prof_path = d + "prof.csv";
      if (insight_path.empty()) insight_path = d + "insight.txt";
      report_path = d + "report.txt";
      report = true;
    }

    // Fail fast on unwritable output paths: the reorder + simulation below
    // can run for minutes at scale, and discovering a typo'd --trace path
    // only afterwards throws that work away.
    if (!trace_path.empty()) trace::Tracer::ensure_writable(trace_path);
    if (!metrics_path.empty()) trace::Tracer::ensure_writable(metrics_path);
    if (!html_path.empty()) trace::Tracer::ensure_writable(html_path);
    if (!prof_path.empty()) trace::Tracer::ensure_writable(prof_path);
    if (!prof_speedscope_path.empty())
      trace::Tracer::ensure_writable(prof_speedscope_path);
    if (!prof_collapsed_path.empty())
      trace::Tracer::ensure_writable(prof_collapsed_path);
    if (!insight_path.empty()) trace::Tracer::ensure_writable(insight_path);
    if (!report_path.empty()) trace::Tracer::ensure_writable(report_path);

    const topology::Machine machine = topology::Machine::gpc(nodes);
    const simmpi::LayoutSpec layout = parse_layout(layout_name);
    const mapping::Pattern pattern = parse_pattern(pattern_name);
    const simmpi::Communicator comm(
        machine, simmpi::make_layout(machine, procs, layout));

    core::ReorderFramework::Options opts;
    opts.seed = seed;
    core::ReorderFramework framework(machine, opts);

    // Self-profiling: the ambient profiler covers distance extraction, the
    // mapping run and the simulated collective below.  The counting
    // allocator is registered up front so mem.* deltas are attributed too.
    const bool profiling = !prof_path.empty() ||
                           !prof_speedscope_path.empty() ||
                           !prof_collapsed_path.empty();
    prof::Profiler profiler;
    std::optional<prof::ScopedThreadProfiler> prof_ambient;
    if (profiling) {
      prof::link_memhook();
      prof_ambient.emplace(&profiler);
    }

    // Observability: one Tracer catches the whole run — the framework's
    // Fig 7 wall spans and mapping decision counters, then the collective's
    // stages, transfers and link/QPI load below.
    std::unique_ptr<trace::Tracer> tracer;
    if (!trace_path.empty() || !metrics_path.empty()) {
      trace::TracerOptions topts;
      topts.real_wall_time = trace_wall;
      tracer = std::make_unique<trace::Tracer>(topts);
    }
    // --tlog streams the same events into the bounded-memory binary trace;
    // its sink opens the file right here, so a bad path fails before the
    // reorder below just like the probed paths above.
    std::optional<tlog::TlogSink> tlog_sink;
    if (!tlog_path.empty()) tlog_sink.emplace(tlog_path);
    trace::TeeSink obs(tracer.get(), tlog_sink ? &*tlog_sink : nullptr);
    if (tracer || tlog_sink) framework.set_trace_sink(&obs);
    // --report/--html record the run's schedule structure alongside (or
    // instead of) the tracer: --report prints a critical-path analysis,
    // --html renders the dashboard.
    const bool record = report || !html_path.empty() || !insight_path.empty();
    report::ScheduleRecorder recorder;
    trace::TeeSink tee(&obs, record ? &recorder : nullptr);

    const core::ReorderedComm rc = [&] {
      if (mapper_name == "heuristic")
        return framework.reorder(comm, pattern);
      if (mapper_name == "scotch")
        return framework.reorder_with(
            comm, *mapping::make_scotch_like_mapper(pattern));
      if (mapper_name == "greedy")
        return framework.reorder_with(
            comm, *mapping::make_greedy_graph_mapper(pattern));
      throw Error("unknown mapper: " + mapper_name);
    }();

    const auto g = mapping::build_pattern_graph(pattern, procs);
    const auto& d = framework.distances();
    const std::vector<int> before(comm.rank_to_core().begin(),
                                  comm.rank_to_core().end());
    const std::vector<int> after(rc.comm.rank_to_core().begin(),
                                 rc.comm.rank_to_core().end());

    std::printf("machine : %d nodes x %d cores (%d total)\n", nodes,
                machine.cores_per_node(), machine.total_cores());
    std::printf("job     : %d procs, %s initial layout\n", procs,
                layout_name.c_str());
    std::printf("pattern : %s, mapper %s, seed %llu\n", pattern_name.c_str(),
                mapper_name.c_str(), static_cast<unsigned long long>(seed));
    std::printf("cost    : %.0f -> %.0f (weighted distance)\n",
                mapping::mapping_cost(g, before, d),
                mapping::mapping_cost(g, after, d));
    std::printf("overhead: %.4f s mapping, %.4f s distance extraction\n",
                rc.mapping_seconds, framework.distance_extraction_seconds());

    if (tracer || record || profiling || tlog_sink) {
      simmpi::Engine eng(rc.comm, simmpi::CostConfig{},
                         simmpi::ExecMode::Timed, msg_bytes, rc.comm.size());
      if (tracer || record || tlog_sink) eng.set_trace_sink(&tee);
      {
        prof::ProfScope pscope("simulate");
        run_traced_collective(eng, pattern, rc.oldrank);
      }
      std::printf("traced  : %s over %d ranks, %lld B blocks, %.1f us "
                  "simulated\n",
                  pattern_name.c_str(), rc.comm.size(), msg_bytes,
                  eng.total());
      if (!trace_path.empty()) {
        tracer->write_timeline(trace_path);
        std::printf("trace   : %s\n", trace_path.c_str());
      }
      if (!metrics_path.empty()) {
        // Profiler totals ride the metrics CSV as prof.* counter rows.
        if (profiling) prof::publish(profiler.snapshot(), tracer->metrics());
        tracer->write_metrics(metrics_path);
        std::printf("metrics : %s\n", metrics_path.c_str());
      }
      if (tlog_sink) {
        tlog_sink->finish();
        std::printf("tlog    : %s (%llu bytes, %lld events)\n",
                    tlog_path.c_str(),
                    static_cast<unsigned long long>(tlog_sink->totals().bytes),
                    tlog_sink->totals().stored_events());
      }
      if (report) {
        const auto path =
            report::analyze_critical_path(recorder.record(), machine);
        const std::string rendered = report::render_critical_path(path);
        std::fputs(rendered.c_str(), stdout);
        if (!report_path.empty()) {
          write_text_file(report_path, rendered);
          std::printf("report  : %s\n", report_path.c_str());
        }
      }
      if (!insight_path.empty()) {
        // Diagnose the reordered run just traced; the tracer's metrics
        // registry (when present) contributes distribution-tail findings.
        const insight::Diagnosis diag = insight::diagnose(
            recorder.record(), machine, insight::DiagnoseOptions{},
            tracer ? &tracer->metrics() : nullptr);
        write_text_file(insight_path, insight::render_findings(diag));
        std::printf("insight : %s\n", insight_path.c_str());
      }
      if (!html_path.empty()) {
        // Baseline run of the same pattern over the *unreordered*
        // communicator, so the dashboard shows the before/after story.
        report::ScheduleRecorder base_recorder;
        simmpi::Engine base_eng(comm, simmpi::CostConfig{},
                                simmpi::ExecMode::Timed, msg_bytes,
                                comm.size());
        base_eng.set_trace_sink(&base_recorder);
        std::vector<Rank> identity(static_cast<std::size_t>(comm.size()));
        for (Rank j = 0; j < comm.size(); ++j) identity[j] = j;
        {
          prof::ProfScope pscope("simulate:baseline");
          run_traced_collective(base_eng, pattern, identity);
        }

        viz::DashboardInputs in;
        in.title = "tarrmap dashboard";
        in.subtitle = pattern_name + " over " +
                      std::to_string(rc.comm.size()) + " ranks on " +
                      std::to_string(nodes) + " nodes, " + layout_name +
                      " layout vs " + mapper_name + " mapping, " +
                      std::to_string(msg_bytes) + " B blocks (seed " +
                      std::to_string(seed) + ")";
        in.machine = &machine;
        const report::ScheduleRecord base_record = base_recorder.take();
        in.baseline = &base_record;
        in.baseline_label = layout_name;
        const report::ScheduleRecord& cand_record = recorder.record();
        in.candidate = &cand_record;
        in.candidate_label = mapper_name;
        prof::Profile dash_profile;
        if (profiling) {
          dash_profile = profiler.snapshot();
          in.profile = &dash_profile;
          in.profile_label = "tarrmap run";
        }
        // Diagnose the *baseline* run: the dashboard's before/after story
        // starts from what is wrong with the un-reordered layout.
        const insight::Diagnosis base_diag =
            insight::diagnose(base_record, machine);
        in.diagnosis = &base_diag;
        const std::string html = viz::render_dashboard(in);
        std::FILE* f = std::fopen(html_path.c_str(), "wb");
        if (f == nullptr) throw Error("cannot write " + html_path);
        const bool ok =
            std::fwrite(html.data(), 1, html.size(), f) == html.size();
        if (std::fclose(f) != 0 || !ok)
          throw Error("failed writing " + html_path);
        std::printf("html    : %s\n", html_path.c_str());
      }
    }
    if (profiling) {
      const prof::Profile profile = profiler.snapshot();
      if (!prof_path.empty()) {
        prof::ExportOptions popts;
        popts.include_wall = prof_wall;
        write_text_file(prof_path, prof::flat_csv(profile, popts));
        std::printf("prof    : %s (%zu scopes%s)\n", prof_path.c_str(),
                    profile.entries.size(),
                    prof_wall ? ", wall columns on" : "");
      }
      if (!prof_speedscope_path.empty()) {
        write_text_file(prof_speedscope_path,
                        prof::speedscope_json(profile, "work", "tarrmap"));
        std::printf("prof-ss : %s\n", prof_speedscope_path.c_str());
      }
      if (!prof_collapsed_path.empty()) {
        write_text_file(prof_collapsed_path,
                        prof::collapsed_stacks(profile, "work"));
        std::printf("prof-cs : %s\n", prof_collapsed_path.c_str());
      }
    }
    if (!quiet) {
      std::printf("\nnew_rank -> core (node.local):\n");
      for (Rank j = 0; j < rc.comm.size(); ++j) {
        const CoreId c = rc.comm.core_of(j);
        std::printf("  %4d -> %4d (%d.%d)%s", j, c,
                    machine.node_of_core(c), machine.local_core(c),
                    (j + 1) % 4 == 0 ? "\n" : "");
      }
      if (rc.comm.size() % 4 != 0) std::printf("\n");
    }
    return 0;
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "tarrmap: %s\n", e.what());
    usage(argv[0]);
  } catch (const Error& e) {
    std::fprintf(stderr, "tarrmap: %s\n", e.what());
    return 1;
  }
}
