// Build-your-own hierarchical allgather: demonstrates the substrate's
// composability by hand-assembling the paper's three phases from public
// pieces — communicator splitting, per-group collectives, and the order-fix
// helpers — and cross-checking the result against the library's built-in
// hierarchical path.

#include <cstdio>

#include "collectives/allgather.hpp"
#include "collectives/gather_bcast.hpp"
#include "collectives/hierarchical.hpp"
#include "collectives/orderfix.hpp"
#include "common/permutation.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/layout.hpp"
#include "simmpi/split.hpp"

namespace {

using namespace tarr;

/// Hand-rolled hierarchical allgather over sub-communicators: gather into
/// node leaders, allgather node chunks among leaders, broadcast down.
/// Each phase runs in its own engine; the phases are sequential, so the
/// total time is the sum (this is exactly what the built-in sequential
/// path models in one engine — the cross-check below confirms it).
Usec hand_rolled(const simmpi::Communicator& world, Bytes msg) {
  const auto& machine = world.machine();
  const int p = world.size();
  const int cpn = machine.cores_per_node();
  const int nodes = p / cpn;
  Usec total = 0.0;

  // Phase 1: binomial gather inside every node communicator.
  const simmpi::SplitResult by_node = simmpi::split_by_node(world);
  for (const auto& node_comm : by_node.comms) {
    simmpi::Engine eng(node_comm, simmpi::CostConfig{},
                       simmpi::ExecMode::Timed, msg, cpn);
    // Per-node gathers run concurrently in reality; the slowest bounds the
    // phase.
    total = std::max(
        total, collectives::run_gather(eng, collectives::TreeAlgo::Binomial,
                                       collectives::OrderFix::None,
                                       identity_permutation(cpn)));
  }

  // Phase 2: ring allgather of node chunks among the leaders.
  const simmpi::Communicator leaders = simmpi::leaders_comm(world);
  simmpi::Engine ring(leaders, simmpi::CostConfig{}, simmpi::ExecMode::Timed,
                      msg * cpn, nodes);
  total += collectives::run_allgather(
      ring, collectives::AllgatherOptions{collectives::AllgatherAlgo::Ring,
                                          collectives::OrderFix::None});

  // Phase 3: binomial broadcast of the combined buffer inside every node.
  Usec bcast_phase = 0.0;
  for (const auto& node_comm : by_node.comms) {
    simmpi::Engine eng(node_comm, simmpi::CostConfig{},
                       simmpi::ExecMode::Timed, msg * p, 1);
    bcast_phase = std::max(
        bcast_phase,
        collectives::run_bcast(eng, collectives::TreeAlgo::Binomial));
  }
  return total + bcast_phase;
}

}  // namespace

int main() {
  const topology::Machine machine = topology::Machine::gpc(32);
  const int p = machine.total_cores();
  const simmpi::Communicator world(
      machine, simmpi::make_layout(machine, p, simmpi::LayoutSpec{}));

  std::printf(
      "Hand-assembled hierarchical allgather from public substrate pieces\n"
      "(%d processes on %d nodes), cross-checked against the built-in path\n\n",
      p, machine.num_nodes());

  std::printf("%10s %18s %16s\n", "msg", "hand-rolled (us)", "built-in (us)");
  for (Bytes msg : {Bytes(1024), Bytes(16 * 1024), Bytes(128 * 1024)}) {
    const Usec mine = hand_rolled(world, msg);

    simmpi::Engine eng(world, simmpi::CostConfig{}, simmpi::ExecMode::Timed,
                       msg, p);
    collectives::run_hier_allgather(
        eng, collectives::HierAllgatherOptions{
                 collectives::AllgatherAlgo::Ring,
                 collectives::IntraAlgo::Binomial,
                 collectives::OrderFix::None});
    std::printf("%10lld %18.1f %16.1f\n", static_cast<long long>(msg), mine,
                eng.total());
  }
  std::printf(
      "\nSmall differences are expected: the hand-rolled version prices\n"
      "each phase in isolation, while the built-in path shares one engine\n"
      "(same stage structure, same channel model).\n");
  return 0;
}
