// tarr-analyze — static schedule certification front end over the
// tarr::analyze subsystem.  Subcommands:
//
//   tarr-analyze certify --collective NAME [run options]
//       Run the named collective in Data mode, record its schedule, and
//       statically verify it against the collective's contract: dataflow
//       (abstract interpretation of per-rank block-knowledge sets),
//       well-formedness (matching, self-transfers, stage order, byte
//       conservation), and capacity (static per-stage loads cross-checked
//       against the trace counters).  Prints the certificate; exits 0 when
//       CERTIFIED, 1 when REJECTED.
//
//   tarr-analyze certify-all [run options]
//       Certify every built-in collective schedule; one verdict line each,
//       exit 1 if any is rejected.  This is the CI static-audit gate.
//
//   tarr-analyze list
//       List the collective names `certify` accepts.
//
// Run options: --nodes N, --procs P, --layout L, --reorder (apply the
// paper's topology-aware reordering first), --seed S (mapping seed),
// --msg BYTES, --max-link-load X (hazard if a cable direction carries more
// than X times the stage's mean nonzero load), --max-qpi-bytes B,
// --mutate drop-transfer|swap-stages|truncate-bytes|duplicate-block,
// --mutate-seed S (seed the named schedule corruption before analysis; the
// certificate must then report a counterexample and the exit code is 1).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "analyze/mutate.hpp"
#include "collectives/allgather.hpp"
#include "collectives/allreduce.hpp"
#include "collectives/alltoall.hpp"
#include "collectives/contracts.hpp"
#include "collectives/gather_bcast.hpp"
#include "collectives/hierarchical.hpp"
#include "common/cli.hpp"
#include "common/permutation.hpp"
#include "core/framework.hpp"
#include "report/record.hpp"
#include "simmpi/layout.hpp"

namespace {

using namespace tarr;
using collectives::AllgatherAlgo;
using collectives::AllgatherOptions;
using collectives::AlltoallAlgo;
using collectives::OrderFix;
using collectives::TreeAlgo;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: tarr-analyze certify --collective NAME [run options]\n"
      "       tarr-analyze certify-all [run options]\n"
      "       tarr-analyze list\n"
      "run options: --nodes N --procs P --layout L --reorder --seed S\n"
      "             --msg BYTES --max-link-load X --max-qpi-bytes B\n"
      "             --mutate CLASS --mutate-seed S\n"
      "CLASS: drop-transfer | swap-stages | truncate-bytes |"
      " duplicate-block\n");
  std::exit(2);
}

struct Options {
  std::string collective;
  int nodes = 2;
  int procs = 16;
  std::string layout = "block-bunch";
  bool reorder = false;
  std::uint64_t seed = 1;
  long long msg_bytes = 256;
  double max_link_load = 0.0;
  double max_qpi_bytes = 0.0;
  std::string mutate;
  std::uint64_t mutate_seed = 1;
};

/// One certifiable built-in schedule: how to run it and what it promises.
struct Spec {
  const char* name;
  /// buf_blocks = buf_mul * p, or 1 when buf_mul == 0.
  int buf_mul;
  /// Mapping pattern used for --reorder; hierarchical runners need a
  /// node-contiguous communicator, so they ignore --reorder/--procs.
  mapping::Pattern pattern;
  bool reorderable;
  bool hierarchical;
  std::function<void(simmpi::Engine&, const std::vector<Rank>&)> run;
  std::function<analyze::Contract(int, int, const std::vector<Rank>&)>
      contract;
};

bool is_identity(const std::vector<Rank>& o) {
  return o == identity_permutation(static_cast<int>(o.size()));
}

const std::vector<Spec>& specs() {
  using simmpi::Engine;
  using RankVec = std::vector<Rank>;
  static const std::vector<Spec> kSpecs = {
      {"allgather-rd", 1, mapping::Pattern::RecursiveDoubling, true, false,
       [](Engine& e, const RankVec& o) {
         const OrderFix fix = is_identity(o) ? OrderFix::None
                                                         : OrderFix::InitComm;
         collectives::run_allgather(
             e, AllgatherOptions{AllgatherAlgo::RecursiveDoubling, fix}, o);
       },
       [](int p, int b, const RankVec& o) {
         return collectives::contract_allgather(
             p, b, AllgatherAlgo::RecursiveDoubling, o);
       }},
      {"allgather-rd-endshuffle", 1, mapping::Pattern::RecursiveDoubling,
       true, false,
       [](Engine& e, const RankVec& o) {
         const OrderFix fix = is_identity(o)
                                  ? OrderFix::None
                                  : OrderFix::EndShuffle;
         collectives::run_allgather(
             e, AllgatherOptions{AllgatherAlgo::RecursiveDoubling, fix}, o);
       },
       [](int p, int b, const RankVec& o) {
         return collectives::contract_allgather(
             p, b, AllgatherAlgo::RecursiveDoubling, o);
       }},
      {"allgather-ring", 1, mapping::Pattern::Ring, true, false,
       [](Engine& e, const RankVec& o) {
         collectives::run_allgather(
             e, AllgatherOptions{AllgatherAlgo::Ring, OrderFix::None}, o);
       },
       [](int p, int b, const RankVec& o) {
         return collectives::contract_allgather(p, b, AllgatherAlgo::Ring, o);
       }},
      {"allgather-bruck", 1, mapping::Pattern::Bruck, true, false,
       [](Engine& e, const RankVec& o) {
         collectives::run_allgather(
             e, AllgatherOptions{AllgatherAlgo::Bruck, OrderFix::None}, o);
       },
       [](int p, int b, const RankVec& o) {
         return collectives::contract_allgather(p, b, AllgatherAlgo::Bruck,
                                                o);
       }},
      {"hier-allgather", 1, mapping::Pattern::RecursiveDoubling, false, true,
       [](Engine& e, const RankVec& o) {
         collectives::run_hier_allgather(
             e, collectives::HierAllgatherOptions{}, o);
       },
       [](int p, int b, const RankVec& o) {
         return collectives::contract_hier_allgather(p, b, o, false);
       }},
      {"hier-allgather-pipelined", 1, mapping::Pattern::RecursiveDoubling,
       false, true,
       [](Engine& e, const RankVec& o) {
         collectives::run_hier_allgather_pipelined(
             e, collectives::IntraAlgo::Binomial, OrderFix::None, o);
       },
       [](int p, int b, const RankVec& o) {
         return collectives::contract_hier_allgather(p, b, o, true);
       }},
      {"gather-linear", 1, mapping::Pattern::BinomialGather, true, false,
       [](Engine& e, const RankVec& o) {
         collectives::run_gather(e, TreeAlgo::Linear, OrderFix::None, o);
       },
       [](int p, int b, const RankVec& o) {
         return collectives::contract_gather(p, b, TreeAlgo::Linear, o);
       }},
      {"gather-binomial", 1, mapping::Pattern::BinomialGather, true, false,
       [](Engine& e, const RankVec& o) {
         const OrderFix fix = is_identity(o) ? OrderFix::None
                                                         : OrderFix::InitComm;
         collectives::run_gather(e, TreeAlgo::Binomial, fix, o);
       },
       [](int p, int b, const RankVec& o) {
         return collectives::contract_gather(p, b, TreeAlgo::Binomial, o);
       }},
      {"bcast-linear", 0, mapping::Pattern::BinomialBcast, true, false,
       [](Engine& e, const RankVec&) {
         collectives::run_bcast(e, TreeAlgo::Linear);
       },
       [](int p, int b, const RankVec&) {
         return collectives::contract_bcast(p, b, TreeAlgo::Linear);
       }},
      {"bcast-binomial", 0, mapping::Pattern::BinomialBcast, true, false,
       [](Engine& e, const RankVec&) {
         collectives::run_bcast(e, TreeAlgo::Binomial);
       },
       [](int p, int b, const RankVec&) {
         return collectives::contract_bcast(p, b, TreeAlgo::Binomial);
       }},
      {"bcast-scatter-allgather", 1, mapping::Pattern::BinomialBcast, false,
       false,
       [](Engine& e, const RankVec&) {
         collectives::run_bcast_scatter_allgather(
             e, AllgatherAlgo::RecursiveDoubling);
       },
       [](int p, int b, const RankVec&) {
         return collectives::contract_bcast_scatter_allgather(
             p, b, AllgatherAlgo::RecursiveDoubling);
       }},
      {"scatter-linear", 1, mapping::Pattern::BinomialGather, true, false,
       [](Engine& e, const RankVec& o) {
         collectives::run_scatter(e, TreeAlgo::Linear, o);
       },
       [](int p, int b, const RankVec& o) {
         return collectives::contract_scatter(p, b, TreeAlgo::Linear, o);
       }},
      {"scatter-binomial", 1, mapping::Pattern::BinomialGather, true, false,
       [](Engine& e, const RankVec& o) {
         collectives::run_scatter(e, TreeAlgo::Binomial, o);
       },
       [](int p, int b, const RankVec& o) {
         return collectives::contract_scatter(p, b, TreeAlgo::Binomial, o);
       }},
      {"alltoall-rotation", 2, mapping::Pattern::RecursiveDoubling, true,
       false,
       [](Engine& e, const RankVec& o) {
         collectives::run_alltoall(e, AlltoallAlgo::Rotation, o);
       },
       [](int p, int b, const RankVec& o) {
         return collectives::contract_alltoall(p, b, AlltoallAlgo::Rotation,
                                               o);
       }},
      {"alltoall-pairwise", 2, mapping::Pattern::RecursiveDoubling, true,
       false,
       [](Engine& e, const RankVec& o) {
         collectives::run_alltoall(e, AlltoallAlgo::PairwiseXor, o);
       },
       [](int p, int b, const RankVec& o) {
         return collectives::contract_alltoall(
             p, b, AlltoallAlgo::PairwiseXor, o);
       }},
      {"allreduce-rd", 0, mapping::Pattern::RecursiveDoubling, false, false,
       [](Engine& e, const RankVec&) { collectives::run_allreduce_rd(e); },
       [](int p, int b, const RankVec&) {
         return collectives::contract_allreduce_rd(p, b);
       }},
      {"allreduce-rabenseifner", 1, mapping::Pattern::RecursiveDoubling,
       false, false,
       [](Engine& e, const RankVec&) {
         collectives::run_allreduce_rabenseifner(e);
       },
       [](int p, int b, const RankVec&) {
         return collectives::contract_allreduce_rabenseifner(p, b);
       }},
  };
  return kSpecs;
}

simmpi::LayoutSpec parse_layout(const std::string& s) {
  for (const auto& spec : simmpi::all_layouts())
    if (to_string(spec) == s) return spec;
  throw Error("unknown layout: " + s);
}

analyze::Mutation parse_mutation(const std::string& s) {
  for (auto m : {analyze::Mutation::DropTransfer, analyze::Mutation::SwapStages,
                 analyze::Mutation::TruncateBytes,
                 analyze::Mutation::DuplicateBlock})
    if (s == analyze::to_string(m)) return m;
  throw Error("unknown mutation class: " + s);
}

int parse_options(int argc, char** argv, Options& o) {
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw cli::UsageError("missing value for " + a);
      return argv[++i];
    };
    if (a == "--collective") o.collective = next();
    else if (a == "--nodes")
      o.nodes = static_cast<int>(cli::parse_int(a, next(), 1, 1 << 20));
    else if (a == "--procs")
      o.procs = static_cast<int>(cli::parse_int(a, next(), 1, 1 << 26));
    else if (a == "--layout") o.layout = next();
    else if (a == "--reorder") o.reorder = true;
    else if (a == "--seed") o.seed = cli::parse_seed(a, next());
    else if (a == "--msg")
      o.msg_bytes = cli::parse_int(a, next(), 1,
                                   std::numeric_limits<long long>::max());
    else if (a == "--max-link-load")
      o.max_link_load = cli::parse_double(a, next(), 0.0, 1e18);
    else if (a == "--max-qpi-bytes")
      o.max_qpi_bytes = cli::parse_double(a, next(), 0.0, 1e18);
    else if (a == "--mutate") o.mutate = next();
    else if (a == "--mutate-seed") o.mutate_seed = cli::parse_seed(a, next());
    else throw cli::UsageError("unknown option " + a);
  }
  return argc;
}

/// Record + analyze one spec; prints nothing, returns the certificate.
analyze::Certificate certify_spec(const Spec& spec, const Options& o,
                                  const topology::Machine& machine) {
  // Hierarchical runners need node-contiguous full nodes.
  const int p = spec.hierarchical ? machine.total_cores() : o.procs;
  const simmpi::LayoutSpec layout =
      spec.hierarchical ? simmpi::LayoutSpec{} : parse_layout(o.layout);
  const simmpi::Communicator comm(machine,
                                  simmpi::make_layout(machine, p, layout));
  std::vector<Rank> oldrank = identity_permutation(p);
  simmpi::Communicator run_comm = comm;
  if (o.reorder && spec.reorderable) {
    core::ReorderFramework::Options fopts;
    fopts.seed = o.seed;
    core::ReorderFramework fw(machine, fopts);
    core::ReorderedComm rc = fw.reorder(comm, spec.pattern);
    run_comm = rc.comm;
    oldrank = rc.oldrank;
  }
  const int buf_blocks = spec.buf_mul == 0 ? 1 : spec.buf_mul * p;
  simmpi::Engine eng(run_comm, simmpi::CostConfig{}, simmpi::ExecMode::Data,
                     o.msg_bytes, buf_blocks);
  report::ScheduleRecorder recorder;
  eng.set_trace_sink(&recorder);
  spec.run(eng, oldrank);
  report::ScheduleRecord rec = recorder.take();
  if (!o.mutate.empty()) {
    const std::string what =
        analyze::apply_mutation(rec, parse_mutation(o.mutate), o.mutate_seed);
    std::printf("mutated schedule: %s\n", what.c_str());
  }
  analyze::AnalyzeOptions aopts;
  aopts.max_link_load = o.max_link_load;
  aopts.max_qpi_bytes = o.max_qpi_bytes;
  return analyze::analyze(rec, machine, spec.contract(p, buf_blocks, oldrank),
                          aopts);
}

int cmd_certify(int argc, char** argv) {
  Options o;
  parse_options(argc, argv, o);
  if (o.collective.empty()) usage();
  const Spec* spec = nullptr;
  for (const auto& s : specs())
    if (o.collective == s.name) spec = &s;
  if (spec == nullptr) throw Error("unknown collective: " + o.collective);
  const topology::Machine machine = topology::Machine::gpc(o.nodes);
  const analyze::Certificate cert = certify_spec(*spec, o, machine);
  std::fputs(cert.format().c_str(), stdout);
  return cert.certified ? 0 : 1;
}

int cmd_certify_all(int argc, char** argv) {
  Options o;
  parse_options(argc, argv, o);
  if (!o.mutate.empty())
    throw Error("--mutate applies to a single `certify` run");
  const topology::Machine machine = topology::Machine::gpc(o.nodes);
  int rejected = 0;
  for (const auto& spec : specs()) {
    const analyze::Certificate cert = certify_spec(spec, o, machine);
    std::printf("%-26s %s (%d stages, %d copies)\n", spec.name,
                cert.certified ? "CERTIFIED" : "REJECTED",
                cert.stages_checked, cert.copies_checked);
    if (!cert.certified) {
      std::fputs(cert.format().c_str(), stdout);
      ++rejected;
    }
  }
  if (rejected > 0)
    std::printf("%d schedule(s) REJECTED\n", rejected);
  return rejected > 0 ? 1 : 0;
}

int cmd_list() {
  for (const auto& spec : specs()) std::printf("%s\n", spec.name);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  try {
    if (!std::strcmp(argv[1], "certify")) return cmd_certify(argc, argv);
    if (!std::strcmp(argv[1], "certify-all"))
      return cmd_certify_all(argc, argv);
    if (!std::strcmp(argv[1], "list")) return cmd_list();
    usage();
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "tarr-analyze: %s\n", e.what());
    usage();  // exits 2
  } catch (const Error& e) {
    std::fprintf(stderr, "tarr-analyze: %s\n", e.what());
    return 1;
  }
}
