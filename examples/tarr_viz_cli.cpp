// tarr-viz — dashboard front end over tarr::viz (see docs/OBSERVABILITY.md,
// "Dashboards").  Five subcommands, each emitting one self-contained HTML
// file (inline SVG/CSS, no scripts, no external assets), byte-identical
// across same-seed runs:
//
//   tarr-viz topo [run options] --out FILE
//       Topology load heatmaps: the fat-tree with per-cable / per-QPI
//       directed byte loads for the baseline layout and the reordered
//       mapping, plus the relieved/newly-loaded diff view.
//
//   tarr-viz matrix [run options] --out FILE
//       Communication-matrix heatmaps before/after the reordering, side by
//       side on one color scale.
//
//   tarr-viz timeline [run options] --out FILE
//       Timeline/critical-path views of both schedules.
//
//   tarr-viz trend SET... [--label NAME]... [--rel-tolerance P]
//       [--abs-tolerance V] --out FILE
//       Perf-trajectory charts over one or more snapshot sets (directories
//       of BENCH_*.json or single files), gated metrics flagged when
//       outside tolerance relative to the first set.
//
//   tarr-viz dashboard [run options] [--snapshots SET]... --out FILE
//       All of the above on one page.
//
// Run options match tarr-report: --nodes N, --procs P, --layout L,
// --pattern PAT, --mapper heuristic|scotch|greedy, --seed S, --msg BYTES.
// `--out -` (the default) writes to stdout; file outputs are probed for
// writability before any simulation runs.
//
// Schedule-view subcommands (topo/matrix/timeline/dashboard) can stream
// both recorded runs into `.tlog` traces (--save-tlog-baseline FILE,
// --save-tlog FILE — see docs/TLOG.md) and can rebuild them from such
// files instead of re-simulating (--from-tlog-baseline FILE, --from-tlog
// FILE, both required together): with the same run options as at capture
// time the page is byte-identical to the live render (CI cmp's it).

#include <cstdio>
#include <cstring>
#include <limits>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "collectives/allgather.hpp"
#include "collectives/gather_bcast.hpp"
#include "common/cli.hpp"
#include "core/framework.hpp"
#include "report/record.hpp"
#include "report/snapshot.hpp"
#include "simmpi/layout.hpp"
#include "tlog/reader.hpp"
#include "tlog/writer.hpp"
#include "trace/tracer.hpp"
#include "viz/dashboard.hpp"
#include "viz/matrix.hpp"
#include "viz/timeline.hpp"
#include "viz/topo.hpp"
#include "viz/trend.hpp"

namespace {

using namespace tarr;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: tarr-viz topo|matrix|timeline [run options] --out FILE\n"
      "       tarr-viz trend SET... [--label NAME]... [--rel-tolerance P]\n"
      "               [--abs-tolerance V] --out FILE\n"
      "       tarr-viz dashboard [run options] [--snapshots SET]...\n"
      "               --out FILE\n"
      "run options: --nodes N --procs P --layout L --pattern PAT\n"
      "             --mapper heuristic|scotch|greedy --seed S --msg BYTES\n"
      "             --save-tlog-baseline F --save-tlog F\n"
      "             --from-tlog-baseline F --from-tlog F\n"
      "--out - writes to stdout (the default)\n");
  std::exit(2);
}

struct Options {
  int nodes = 8;
  int procs = 64;
  std::string layout = "cyclic-bunch";
  std::string pattern = "ring";
  std::string mapper = "heuristic";
  std::uint64_t seed = 1;
  long long msg_bytes = 16 * 1024;
  std::string out = "-";
  std::vector<std::string> sets;    ///< trend/dashboard snapshot sets
  std::vector<std::string> labels;  ///< trend set labels (parallel to sets)
  report::CompareOptions copts;
  std::string save_tlog_baseline;  ///< stream the baseline run to a .tlog
  std::string save_tlog;           ///< stream the reordered run to a .tlog
  std::string from_tlog_baseline;  ///< rebuild the baseline from a .tlog
  std::string from_tlog;           ///< rebuild the reordered run from a .tlog
};

Options parse_options(int argc, char** argv, bool positional_sets) {
  Options o;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw cli::UsageError("missing value for " + a);
      return argv[++i];
    };
    if (a == "--nodes")
      o.nodes = static_cast<int>(cli::parse_int(a, next(), 1, 1 << 20));
    else if (a == "--procs")
      o.procs = static_cast<int>(cli::parse_int(a, next(), 1, 1 << 26));
    else if (a == "--layout") o.layout = next();
    else if (a == "--pattern") o.pattern = next();
    else if (a == "--mapper") o.mapper = next();
    else if (a == "--seed") o.seed = cli::parse_seed(a, next());
    else if (a == "--msg")
      o.msg_bytes = cli::parse_int(a, next(), 1,
                                   std::numeric_limits<long long>::max());
    else if (a == "--out") o.out = next();
    else if (a == "--snapshots") o.sets.push_back(next());
    else if (a == "--label") o.labels.push_back(next());
    else if (a == "--rel-tolerance")
      o.copts.rel_tolerance =
          cli::parse_double(a, next(), 0.0, std::numeric_limits<double>::max());
    else if (a == "--abs-tolerance")
      o.copts.abs_tolerance =
          cli::parse_double(a, next(), 0.0, std::numeric_limits<double>::max());
    else if (a == "--save-tlog-baseline") o.save_tlog_baseline = next();
    else if (a == "--save-tlog") o.save_tlog = next();
    else if (a == "--from-tlog-baseline") o.from_tlog_baseline = next();
    else if (a == "--from-tlog") o.from_tlog = next();
    else if (positional_sets && a[0] != '-')
      o.sets.push_back(a);
    else throw cli::UsageError("unknown option " + a);
  }
  return o;
}

simmpi::LayoutSpec parse_layout(const std::string& s) {
  for (const auto& spec : simmpi::all_layouts())
    if (to_string(spec) == s) return spec;
  throw Error("unknown layout: " + s);
}

mapping::Pattern parse_pattern(const std::string& s) {
  for (auto p : {mapping::Pattern::RecursiveDoubling, mapping::Pattern::Ring,
                 mapping::Pattern::BinomialBcast,
                 mapping::Pattern::BinomialGather, mapping::Pattern::Bruck})
    if (s == mapping::to_string(p)) return p;
  throw Error("unknown pattern: " + s);
}

void run_collective(simmpi::Engine& eng, mapping::Pattern pattern,
                    const std::vector<Rank>& oldrank) {
  using collectives::AllgatherAlgo;
  using collectives::OrderFix;
  switch (pattern) {
    case mapping::Pattern::RecursiveDoubling:
      collectives::run_allgather(
          eng, {AllgatherAlgo::RecursiveDoubling, OrderFix::InitComm},
          oldrank);
      break;
    case mapping::Pattern::Ring:
      collectives::run_allgather(eng, {AllgatherAlgo::Ring, OrderFix::None},
                                 oldrank);
      break;
    case mapping::Pattern::Bruck:
      collectives::run_allgather(eng, {AllgatherAlgo::Bruck, OrderFix::None},
                                 oldrank);
      break;
    case mapping::Pattern::BinomialBcast:
      collectives::run_bcast(eng, collectives::TreeAlgo::Binomial);
      break;
    case mapping::Pattern::BinomialGather:
      collectives::run_gather(eng, collectives::TreeAlgo::Binomial,
                              OrderFix::InitComm, oldrank);
      break;
    default:
      throw Error("tarr-viz: pattern has no collective to run");
  }
}

/// `tlog_path`, when non-empty, streams the run into a `.tlog` alongside
/// the recorder.
report::ScheduleRecord record_run(const simmpi::Communicator& comm,
                                  mapping::Pattern pattern,
                                  const std::vector<Rank>& oldrank,
                                  long long msg_bytes,
                                  const std::string& tlog_path = {}) {
  report::ScheduleRecorder recorder;
  std::optional<tlog::TlogSink> tlog_sink;
  if (!tlog_path.empty()) tlog_sink.emplace(tlog_path);
  trace::TeeSink tee(&recorder, tlog_sink ? &*tlog_sink : nullptr);
  simmpi::Engine eng(comm, simmpi::CostConfig{}, simmpi::ExecMode::Timed,
                     msg_bytes, comm.size());
  eng.set_trace_sink(&tee);
  run_collective(eng, pattern, oldrank);
  if (tlog_sink) tlog_sink->finish();
  return recorder.take();
}

core::ReorderedComm reorder(core::ReorderFramework& fw,
                            const simmpi::Communicator& comm,
                            mapping::Pattern pattern,
                            const std::string& mapper) {
  if (mapper == "heuristic") return fw.reorder(comm, pattern);
  if (mapper == "scotch")
    return fw.reorder_with(comm, *mapping::make_scotch_like_mapper(pattern));
  if (mapper == "greedy")
    return fw.reorder_with(comm, *mapping::make_greedy_graph_mapper(pattern));
  throw Error("unknown mapper: " + mapper);
}

/// Baseline + reordered records of one configured run.
struct Runs {
  topology::Machine machine;
  report::ScheduleRecord baseline;
  report::ScheduleRecord candidate;
  std::string subtitle;
};

Runs run_pair(const Options& o) {
  const bool from_tlog = !o.from_tlog.empty() || !o.from_tlog_baseline.empty();
  if (from_tlog && (o.from_tlog.empty() || o.from_tlog_baseline.empty()))
    throw cli::UsageError(
        "--from-tlog and --from-tlog-baseline must be given together");
  if (from_tlog && (!o.save_tlog.empty() || !o.save_tlog_baseline.empty()))
    throw cli::UsageError("--from-tlog* and --save-tlog* are exclusive");

  topology::Machine machine = topology::Machine::gpc(o.nodes);
  const mapping::Pattern pattern = parse_pattern(o.pattern);
  const simmpi::Communicator comm(
      machine, simmpi::make_layout(machine, o.procs, parse_layout(o.layout)));
  // The subtitle is a pure function of the flags (and comm.size(), which the
  // flags determine), so live and --from-tlog renders print identical bytes.
  std::string subtitle =
      o.pattern + " over " + std::to_string(comm.size()) + " ranks on " +
      std::to_string(o.nodes) + " nodes, " + o.layout + " layout vs " +
      o.mapper + " mapping, " + std::to_string(o.msg_bytes) +
      " B blocks (seed " + std::to_string(o.seed) + ")";

  report::ScheduleRecord baseline, candidate;
  if (from_tlog) {
    baseline = tlog::read_record(o.from_tlog_baseline);
    candidate = tlog::read_record(o.from_tlog);
  } else {
    core::ReorderFramework::Options fopts;
    fopts.seed = o.seed;
    core::ReorderFramework fw(machine, fopts);
    const core::ReorderedComm rc = reorder(fw, comm, pattern, o.mapper);
    std::vector<Rank> identity(static_cast<std::size_t>(comm.size()));
    std::iota(identity.begin(), identity.end(), 0);
    // Records first: comm/rc reference `machine`, which moves into the
    // result only once nothing borrows it anymore.
    baseline =
        record_run(comm, pattern, identity, o.msg_bytes, o.save_tlog_baseline);
    candidate =
        record_run(rc.comm, pattern, rc.oldrank, o.msg_bytes, o.save_tlog);
  }
  return Runs{std::move(machine), std::move(baseline), std::move(candidate),
              std::move(subtitle)};
}

std::vector<viz::TrendSet> load_trend_sets(const Options& o) {
  std::vector<viz::TrendSet> sets;
  for (std::size_t i = 0; i < o.sets.size(); ++i) {
    viz::TrendSet set;
    set.label = i < o.labels.size() ? o.labels[i] : o.sets[i];
    set.snapshots = report::load_snapshot_set(o.sets[i]);
    sets.push_back(std::move(set));
  }
  return sets;
}

void write_out(const std::string& path, const std::string& html) {
  if (path == "-") {
    std::fwrite(html.data(), 1, html.size(), stdout);
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw Error("tarr-viz: cannot write " + path);
  const bool ok = std::fwrite(html.data(), 1, html.size(), f) == html.size();
  if (std::fclose(f) != 0 || !ok)
    throw Error("tarr-viz: failed writing " + path);
}

/// A single-view page shares the dashboard chrome: title + one section.
void emit_page(const Options& o, const std::string& title,
               const std::string& subtitle, const std::string& section_title,
               const std::string& body) {
  viz::Page page(title);
  page.add_section(section_title, subtitle, body);
  write_out(o.out, page.html());
}

int cmd_topo(const Options& o) {
  const Runs r = run_pair(o);
  const viz::TopoHeatmap ha = viz::build_topo_heatmap(r.machine, r.baseline);
  const viz::TopoHeatmap hb = viz::build_topo_heatmap(r.machine, r.candidate);
  std::string body = viz::render_topo_heatmap(r.machine, ha, "baseline load");
  body += viz::render_topo_heatmap(r.machine, hb, "reordered load");
  body += viz::render_topo_diff(r.machine, ha, hb,
                                "load diff: reordered vs baseline");
  emit_page(o, "tarr topology load", r.subtitle, "Topology load", body);
  return 0;
}

int cmd_matrix(const Options& o) {
  const Runs r = run_pair(o);
  const viz::CommMatrix ma = viz::build_comm_matrix(r.baseline, r.machine);
  const viz::CommMatrix mb = viz::build_comm_matrix(r.candidate, r.machine);
  emit_page(o, "tarr communication matrix", r.subtitle,
            "Communication matrix",
            viz::render_comm_matrix_pair(ma, "baseline", mb, "reordered"));
  return 0;
}

int cmd_timeline(const Options& o) {
  const Runs r = run_pair(o);
  const auto pa = report::analyze_critical_path(r.baseline, r.machine);
  const auto pb = report::analyze_critical_path(r.candidate, r.machine);
  std::string body = viz::render_timeline(r.baseline, pa, "baseline schedule");
  body += viz::render_timeline(r.candidate, pb, "reordered schedule");
  emit_page(o, "tarr timeline", r.subtitle, "Timeline & critical path", body);
  return 0;
}

int cmd_trend(const Options& o) {
  if (o.sets.empty()) usage();
  emit_page(o, "tarr perf trajectory",
            std::to_string(o.sets.size()) + " snapshot set(s), " +
                viz::fmt_fixed(o.copts.rel_tolerance, 1) + "% gate tolerance",
            "Perf trajectory", viz::render_trend(load_trend_sets(o), o.copts));
  return 0;
}

int cmd_dashboard(const Options& o) {
  const Runs r = run_pair(o);
  viz::DashboardInputs in;
  in.title = "tarr dashboard";
  in.subtitle = r.subtitle;
  in.machine = &r.machine;
  in.baseline = &r.baseline;
  in.candidate = &r.candidate;
  in.candidate_label = "reordered";
  in.trend = load_trend_sets(o);
  in.trend_opts = o.copts;
  write_out(o.out, viz::render_dashboard(in));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  try {
    const std::string cmd = argv[1];
    const Options o = parse_options(argc, argv, cmd == "trend");
    // Fail fast on an unwritable output before any simulation runs.
    if (o.out != "-") trace::Tracer::ensure_writable(o.out);
    if (cmd == "topo") return cmd_topo(o);
    if (cmd == "matrix") return cmd_matrix(o);
    if (cmd == "timeline") return cmd_timeline(o);
    if (cmd == "trend") return cmd_trend(o);
    if (cmd == "dashboard") return cmd_dashboard(o);
    usage();
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "tarr-viz: %s\n", e.what());
    usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "tarr-viz: %s\n", e.what());
    return 1;
  }
}
