// tarr-report — analysis and gating front end over the tarr::report
// subsystem.  Three subcommands:
//
//   tarr-report critical-path [run options] [--markdown]
//       [--save-tlog FILE] [--from-tlog FILE]
//       Run the pattern-matched collective over the reordered communicator,
//       record its schedule, and print the critical-path report: the
//       completion-time-determining chain with per-segment channel class
//       (intra-socket / QPI / intra-leaf / cross-core-switch) and
//       serialization / contention / retransmission attribution.
//       --save-tlog additionally streams the run into a `.tlog` trace
//       (docs/TLOG.md); --from-tlog skips the simulation entirely and
//       rebuilds the schedule from such a file — pass the same run options
//       as at capture time and the report is byte-identical (CI cmp's it).
//
//   tarr-report diff [run options] [--markdown]
//       Run the same pattern twice — initial layout (baseline) vs. the
//       topology-aware reordering — and print the mapping-attribution diff:
//       per-channel-class byte/time migration and the top relieved (and
//       newly loaded) cables and QPI directions.
//
//   tarr-report compare [BASELINE CURRENT] [--baseline-dir GLOB]
//       [--candidate-dir GLOB] [--rel-tolerance P] [--abs-tolerance V]
//       [--markdown]
//       Compare two bench snapshot sets (directories of BENCH_*.json,
//       single files, or — via the --*-dir flags or positionally — `*`/`?`
//       globs over the final path component).  Exits 1 if any gated metric
//       of any baseline bench regressed beyond tolerance (or vanished),
//       0 otherwise — this is the CI perf gate (see docs/OBSERVABILITY.md).
//
// Run options (critical-path, diff): --nodes N, --procs P, --layout L,
// --pattern PAT, --mapper heuristic|scotch|greedy, --seed S, --msg BYTES,
// --top K (diff resource lists).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "collectives/allgather.hpp"
#include "collectives/gather_bcast.hpp"
#include "common/cli.hpp"
#include "core/topoallgather.hpp"
#include "mapping/comparators.hpp"
#include "report/diff.hpp"
#include "report/record.hpp"
#include "report/render.hpp"
#include "report/snapshot.hpp"
#include "simmpi/layout.hpp"
#include "tlog/reader.hpp"
#include "tlog/writer.hpp"

namespace {

using namespace tarr;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: tarr-report critical-path [run options] [--markdown]\n"
      "                   [--save-tlog FILE] [--from-tlog FILE]\n"
      "       tarr-report diff [run options] [--top K] [--markdown]\n"
      "       tarr-report compare [BASELINE CURRENT] [--baseline-dir G]\n"
      "                   [--candidate-dir G] [--rel-tolerance P]\n"
      "                   [--abs-tolerance V] [--markdown]\n"
      "                   (G: dir, file, or glob like 'b/BENCH_fig?_*.json')\n"
      "run options: --nodes N --procs P --layout L --pattern PAT\n"
      "             --mapper heuristic|scotch|greedy --seed S --msg BYTES\n");
  std::exit(2);
}

struct RunOptions {
  int nodes = 8;
  int procs = 64;
  std::string layout = "cyclic-bunch";
  std::string pattern = "ring";
  std::string mapper = "heuristic";
  std::uint64_t seed = 1;
  long long msg_bytes = 16 * 1024;
  int top_k = 8;
  report::RenderFormat format = report::RenderFormat::Text;
  std::string save_tlog;  ///< also stream the recorded run into a .tlog
  std::string from_tlog;  ///< rebuild the record from a .tlog, no simulation
};

simmpi::LayoutSpec parse_layout(const std::string& s) {
  for (const auto& spec : simmpi::all_layouts())
    if (to_string(spec) == s) return spec;
  throw Error("unknown layout: " + s);
}

mapping::Pattern parse_pattern(const std::string& s) {
  for (auto p : {mapping::Pattern::RecursiveDoubling, mapping::Pattern::Ring,
                 mapping::Pattern::BinomialBcast,
                 mapping::Pattern::BinomialGather, mapping::Pattern::Bruck})
    if (s == mapping::to_string(p)) return p;
  throw Error("unknown pattern: " + s);
}

void run_collective(simmpi::Engine& eng, mapping::Pattern pattern,
                    const std::vector<Rank>& oldrank) {
  using collectives::AllgatherAlgo;
  using collectives::OrderFix;
  switch (pattern) {
    case mapping::Pattern::RecursiveDoubling:
      collectives::run_allgather(
          eng, {AllgatherAlgo::RecursiveDoubling, OrderFix::InitComm},
          oldrank);
      break;
    case mapping::Pattern::Ring:
      collectives::run_allgather(eng, {AllgatherAlgo::Ring, OrderFix::None},
                                 oldrank);
      break;
    case mapping::Pattern::Bruck:
      collectives::run_allgather(eng, {AllgatherAlgo::Bruck, OrderFix::None},
                                 oldrank);
      break;
    case mapping::Pattern::BinomialBcast:
      collectives::run_bcast(eng, collectives::TreeAlgo::Binomial);
      break;
    case mapping::Pattern::BinomialGather:
      collectives::run_gather(eng, collectives::TreeAlgo::Binomial,
                              OrderFix::InitComm, oldrank);
      break;
    default:
      throw Error("tarr-report: pattern has no collective to run");
  }
}

/// Record one run of `pattern` over `comm` (oldrank maps new rank -> old
/// rank for order-restoring collectives; identity for the baseline).
/// `extra` hears the same events as the recorder (e.g. a TlogSink).
report::ScheduleRecord record_run(const simmpi::Communicator& comm,
                                  mapping::Pattern pattern,
                                  const std::vector<Rank>& oldrank,
                                  long long msg_bytes,
                                  trace::TraceSink* extra = nullptr) {
  report::ScheduleRecorder recorder;
  trace::TeeSink tee(&recorder, extra);
  simmpi::Engine eng(comm, simmpi::CostConfig{}, simmpi::ExecMode::Timed,
                     msg_bytes, comm.size());
  eng.set_trace_sink(&tee);
  run_collective(eng, pattern, oldrank);
  return recorder.take();
}

int parse_run_options(int argc, char** argv, int i, RunOptions& o) {
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw cli::UsageError("missing value for " + a);
      return argv[++i];
    };
    if (a == "--nodes")
      o.nodes = static_cast<int>(cli::parse_int(a, next(), 1, 1 << 20));
    else if (a == "--procs")
      o.procs = static_cast<int>(cli::parse_int(a, next(), 1, 1 << 26));
    else if (a == "--layout") o.layout = next();
    else if (a == "--pattern") o.pattern = next();
    else if (a == "--mapper") o.mapper = next();
    else if (a == "--seed") o.seed = cli::parse_seed(a, next());
    else if (a == "--msg")
      o.msg_bytes = cli::parse_int(a, next(), 1,
                                   std::numeric_limits<long long>::max());
    else if (a == "--top")
      o.top_k = static_cast<int>(cli::parse_int(a, next(), 1, 1 << 20));
    else if (a == "--markdown") o.format = report::RenderFormat::Markdown;
    else if (a == "--save-tlog") o.save_tlog = next();
    else if (a == "--from-tlog") o.from_tlog = next();
    else throw cli::UsageError("unknown option " + a);
  }
  return i;
}

core::ReorderedComm reorder(core::ReorderFramework& fw,
                            const simmpi::Communicator& comm,
                            mapping::Pattern pattern,
                            const std::string& mapper) {
  if (mapper == "heuristic") return fw.reorder(comm, pattern);
  if (mapper == "scotch")
    return fw.reorder_with(comm, *mapping::make_scotch_like_mapper(pattern));
  if (mapper == "greedy")
    return fw.reorder_with(comm, *mapping::make_greedy_graph_mapper(pattern));
  throw Error("unknown mapper: " + mapper);
}

int cmd_critical_path(int argc, char** argv) {
  RunOptions o;
  parse_run_options(argc, argv, 2, o);
  if (!o.from_tlog.empty() && !o.save_tlog.empty())
    throw cli::UsageError("--from-tlog and --save-tlog are exclusive");
  const topology::Machine machine = topology::Machine::gpc(o.nodes);
  const mapping::Pattern pattern = parse_pattern(o.pattern);
  const simmpi::Communicator comm(
      machine, simmpi::make_layout(machine, o.procs, parse_layout(o.layout)));
  // The report header is a pure function of the flags, so live and
  // --from-tlog runs of the same options print identical bytes.
  report::ScheduleRecord rec;
  if (!o.from_tlog.empty()) {
    rec = tlog::read_record(o.from_tlog);
  } else {
    core::ReorderFramework::Options fopts;
    fopts.seed = o.seed;
    core::ReorderFramework fw(machine, fopts);
    const core::ReorderedComm rc = reorder(fw, comm, pattern, o.mapper);
    if (!o.save_tlog.empty()) {
      tlog::TlogSink sink(o.save_tlog);
      rec = record_run(rc.comm, pattern, rc.oldrank, o.msg_bytes, &sink);
      sink.finish();
    } else {
      rec = record_run(rc.comm, pattern, rc.oldrank, o.msg_bytes);
    }
  }
  const auto path = report::analyze_critical_path(rec, machine);
  std::printf("%s over %d ranks on %d nodes (%s mapping, %lld B blocks)\n",
              o.pattern.c_str(), comm.size(), o.nodes, o.mapper.c_str(),
              o.msg_bytes);
  std::fputs(report::render_critical_path(path, o.format).c_str(), stdout);
  return 0;
}

int cmd_diff(int argc, char** argv) {
  RunOptions o;
  parse_run_options(argc, argv, 2, o);
  if (!o.from_tlog.empty() || !o.save_tlog.empty())
    throw cli::UsageError(
        "diff records two runs; --from-tlog/--save-tlog apply to "
        "critical-path only");
  const topology::Machine machine = topology::Machine::gpc(o.nodes);
  const mapping::Pattern pattern = parse_pattern(o.pattern);
  const simmpi::Communicator comm(
      machine, simmpi::make_layout(machine, o.procs, parse_layout(o.layout)));
  core::ReorderFramework::Options fopts;
  fopts.seed = o.seed;
  core::ReorderFramework fw(machine, fopts);
  const core::ReorderedComm rc = reorder(fw, comm, pattern, o.mapper);

  std::vector<Rank> identity(static_cast<std::size_t>(comm.size()));
  std::iota(identity.begin(), identity.end(), 0);
  const auto base = record_run(comm, pattern, identity, o.msg_bytes);
  const auto cand = record_run(rc.comm, pattern, rc.oldrank, o.msg_bytes);
  const auto diff = report::diff_runs(base, cand, machine, o.top_k);
  std::printf("%s over %d ranks on %d nodes: %s layout vs %s mapping "
              "(%lld B blocks)\n",
              o.pattern.c_str(), comm.size(), o.nodes, o.layout.c_str(),
              o.mapper.c_str(), o.msg_bytes);
  std::fputs(report::render_diff(diff, o.format).c_str(), stdout);
  return 0;
}

int cmd_compare(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string baseline_sel, candidate_sel;
  report::CompareOptions copts;
  report::RenderFormat format = report::RenderFormat::Text;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw cli::UsageError("missing value for " + a);
      return argv[++i];
    };
    if (a == "--rel-tolerance")
      copts.rel_tolerance =
          cli::parse_double(a, next(), 0.0, std::numeric_limits<double>::max());
    else if (a == "--abs-tolerance")
      copts.abs_tolerance =
          cli::parse_double(a, next(), 0.0, std::numeric_limits<double>::max());
    else if (a == "--baseline-dir")
      baseline_sel = next();
    else if (a == "--candidate-dir")
      candidate_sel = next();
    else if (a == "--markdown")
      format = report::RenderFormat::Markdown;
    else if (a[0] == '-')
      throw cli::UsageError("unknown option " + a);
    else
      paths.emplace_back(a);
  }
  // Positional BASELINE CURRENT and the explicit flags are interchangeable;
  // the flags additionally accept `*`/`?` globs in the final path component
  // (e.g. --baseline-dir 'bench/baselines/BENCH_fig?_*.json').
  std::size_t pos = 0;
  if (baseline_sel.empty() && pos < paths.size()) baseline_sel = paths[pos++];
  if (candidate_sel.empty() && pos < paths.size())
    candidate_sel = paths[pos++];
  if (pos != paths.size() || baseline_sel.empty() || candidate_sel.empty())
    usage();
  const auto baseline = report::load_snapshot_set_glob(baseline_sel);
  const auto current = report::load_snapshot_set_glob(candidate_sel);
  const auto results = report::compare_snapshot_sets(baseline, current, copts);
  std::fputs(report::render_comparison(results, copts, format).c_str(),
             stdout);
  return report::any_regressed(results) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  try {
    if (!std::strcmp(argv[1], "critical-path"))
      return cmd_critical_path(argc, argv);
    if (!std::strcmp(argv[1], "diff")) return cmd_diff(argc, argv);
    if (!std::strcmp(argv[1], "compare")) return cmd_compare(argc, argv);
    usage();
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "tarr-report: %s\n", e.what());
    usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "tarr-report: %s\n", e.what());
    return 1;
  }
}
