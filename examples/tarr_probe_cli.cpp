// tarr-probe: drive the fig8 probed-remapping scenario from the shell.
//
// Runs the epoch loop of src/probe/scenario.hpp — seeded multi-tenant
// congestion, noisy distance probing, the adaptive re-mapping controller —
// and prints the identity / oracle / probed comparison.  Everything is
// deterministic in the seeds; CI runs `--smoke` (and a `--fail-probe` twin
// that must complete via the identity fallback).
//
// Usage: tarr-probe [options]
//   --smoke            deterministic small preset (16 nodes, 6 epochs)
//   --fail-probe       force total probe failure (timeout_prob = 1): the
//                      controller must degrade to identity, not crash
//   --nodes N          machine size, N >= 1            (default 32)
//   --epochs E         congestion epochs, E >= 1       (default 8)
//   --noise X          probe noise in [0, 1)           (default 0.1)
//   --churn X          per-epoch resample prob in [0,1] (default 0.5)
//   --seed S           probe seed                      (default 11)
//   --csv PATH         also write the per-epoch CSV
//   --metrics PATH     also write the trace metrics CSV
//   --trace PATH       also write a Perfetto-loadable trace JSON
//   --prof PATH        also self-profile the scenario (tarr::prof) and write
//                      the deterministic work-counter flat profile CSV;
//                      prof.* totals join the --metrics CSV when both are set
//   --tlog PATH        also stream every scenario trace event to a
//                      bounded-memory binary .tlog capture (tarr::tlog;
//                      inspect with tarr-log)

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "prof/prof.hpp"
#include "probe/probe.hpp"
#include "tlog/writer.hpp"
#include "trace/tracer.hpp"

namespace {

constexpr const char* kUsage =
    "Usage: tarr-probe [options]\n"
    "  --smoke            deterministic small preset (16 nodes, 6 epochs)\n"
    "  --fail-probe       force total probe failure; exercises the fallback\n"
    "  --nodes N          machine size, N >= 1            (default 32)\n"
    "  --epochs E         congestion epochs, E >= 1       (default 8)\n"
    "  --noise X          probe noise in [0, 1)           (default 0.1)\n"
    "  --churn X          per-epoch resample prob in [0,1] (default 0.5)\n"
    "  --seed S           probe seed                      (default 11)\n"
    "  --csv PATH         also write the per-epoch CSV\n"
    "  --metrics PATH     also write the trace metrics CSV\n"
    "  --trace PATH       also write a Perfetto-loadable trace JSON\n"
    "  --prof PATH        also write the tarr::prof flat profile CSV\n"
    "  --tlog PATH        also write the binary .tlog trace capture\n";

void write_file(const std::string& path, const std::string& body) {
  std::ofstream f(path);
  if (!f) throw tarr::Error("tarr-probe: cannot write " + path);
  f << body;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tarr;

  probe::ScenarioConfig cfg;
  cfg.congestion.seed = 7;
  cfg.congestion.link_prob = 0.35;
  cfg.congestion.min_factor = 0.2;
  cfg.congestion.max_factor = 0.6;
  std::string csv_path, metrics_path, trace_path, prof_path, tlog_path;
  bool fail_probe = false;
  cfg.controller.probe.seed = 11;
  cfg.controller.drift_threshold = 0.03;
  cfg.controller.hysteresis = 2;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) throw cli::UsageError("missing value for " + a);
        return argv[++i];
      };
      if (a == "--smoke") {
        cfg.num_nodes = 16;
        cfg.tree.nodes_per_leaf = 4;
        cfg.epochs = 6;
      } else if (a == "--fail-probe") {
        fail_probe = true;
      } else if (a == "--nodes") {
        cfg.num_nodes = static_cast<int>(cli::parse_int(a, next(), 1, 1 << 20));
      } else if (a == "--epochs") {
        cfg.epochs = static_cast<int>(cli::parse_int(a, next(), 1, 1 << 20));
      } else if (a == "--noise") {
        cfg.controller.probe.noise = cli::parse_double(a, next(), 0.0, 0.999);
      } else if (a == "--churn") {
        cfg.congestion.churn = cli::parse_double(a, next(), 0.0, 1.0);
      } else if (a == "--seed") {
        cfg.controller.probe.seed = cli::parse_seed(a, next());
      } else if (a == "--csv") {
        csv_path = next();
      } else if (a == "--metrics") {
        metrics_path = next();
      } else if (a == "--trace") {
        trace_path = next();
      } else if (a == "--prof") {
        prof_path = next();
      } else if (a == "--tlog") {
        tlog_path = next();
      } else {
        throw cli::UsageError("unknown option " + a);
      }
    }
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "tarr-probe: %s\n%s", e.what(), kUsage);
    return 2;
  }
  if (fail_probe) cfg.controller.probe.timeout_prob = 1.0;

  try {
    // Fail fast on unwritable output paths — before any epoch runs.
    for (const std::string& p :
         {csv_path, metrics_path, trace_path, prof_path, tlog_path})
      if (!p.empty()) trace::Tracer::ensure_writable(p);

    prof::Profiler profiler;
    std::optional<prof::ScopedThreadProfiler> prof_ambient;
    if (!prof_path.empty()) {
      prof::link_memhook();
      prof_ambient.emplace(&profiler);
    }

    trace::Tracer tracer;
    const bool want_trace = !metrics_path.empty() || !trace_path.empty();
    std::optional<tlog::TlogSink> tlog_sink;
    if (!tlog_path.empty()) tlog_sink.emplace(tlog_path);
    // One observer fans out to the buffering tracer and/or the streaming
    // tlog capture; TeeSink tolerates null legs.
    trace::TeeSink obs(want_trace ? &tracer : nullptr,
                       tlog_sink ? &*tlog_sink : nullptr);
    const probe::ScenarioResult result = probe::run_probed_scenario(
        cfg, (want_trace || tlog_sink) ? &obs : nullptr);
    if (tlog_sink) tlog_sink->finish();
    std::printf("%s", result.summary().c_str());

    if (fail_probe) {
      // The whole point of the flag: probing is impossible, the run still
      // completes, and probed degrades to exactly the identity mapping.
      for (const probe::PatternSummary& p : result.patterns) {
        if (p.fallbacks == 0 || p.probed_mean != p.identity_mean) {
          std::fprintf(stderr,
                       "tarr-probe: --fail-probe did not fall back to "
                       "identity (%s)\n",
                       p.pattern.c_str());
          return 1;
        }
      }
      std::printf(
          "fail-probe: all probes timed out; controller degraded to the "
          "identity mapping (graceful fallback)\n");
    }

    if (!csv_path.empty()) write_file(csv_path, result.csv());
    if (!prof_path.empty()) {
      const prof::Profile profile = profiler.snapshot();
      write_file(prof_path, prof::flat_csv(profile));
      // Profiler totals ride along in the metrics CSV as prof.* counters.
      prof::publish(profile, tracer.metrics());
      std::printf("prof    : %s (%zu scopes)\n", prof_path.c_str(),
                  profile.entries.size());
    }
    if (!metrics_path.empty()) tracer.write_metrics(metrics_path);
    if (!trace_path.empty()) tracer.write_timeline(trace_path);
    if (tlog_sink) {
      std::printf("tlog    : %s (%llu bytes, %lld events)\n",
                  tlog_path.c_str(),
                  static_cast<unsigned long long>(tlog_sink->totals().bytes),
                  tlog_sink->totals().stored_events());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "tarr-probe: %s\n", e.what());
    return 1;
  }
  return 0;
}
