// Mapping playground: shows, at human-readable scale (16 ranks on two
// nodes), exactly what each fine-tuned heuristic does to an adverse initial
// mapping — the per-rank placement, the weighted cost, and the simulated
// collective latency before and after.

#include <cstdio>

#include "collectives/allgather.hpp"
#include "common/permutation.hpp"
#include "core/framework.hpp"
#include "mapping/comparators.hpp"
#include "mapping/mapcost.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/layout.hpp"

namespace {

using namespace tarr;

void show_placement(const topology::Machine& m, const char* label,
                    const std::vector<int>& rank_to_core) {
  std::printf("  %-18s", label);
  for (std::size_t r = 0; r < rank_to_core.size(); ++r) {
    const CoreId c = rank_to_core[r];
    std::printf(" %zu:n%ds%d", r, m.node_of_core(c), m.socket_of_core(c));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const topology::Machine machine = topology::Machine::gpc(2);
  core::ReorderFramework framework(machine);
  const int p = 16;
  const simmpi::LayoutSpec layout{simmpi::NodeOrder::Cyclic,
                                  simmpi::SocketOrder::Scatter};
  const simmpi::Communicator comm(machine,
                                  simmpi::make_layout(machine, p, layout));
  const auto& dist = framework.distances();

  std::printf("16 ranks on 2 nodes, initial mapping %s\n",
              simmpi::to_string(layout).c_str());
  std::printf("(rank:nNODEsSOCKET)\n\n");
  show_placement(machine, "initial", comm.rank_to_core());
  std::printf("\n");

  struct Case {
    mapping::Pattern pattern;
    collectives::AllgatherAlgo algo;
    Bytes msg;  // a size in the regime the selector would pick this algo for
  };
  const Case cases[] = {
      {mapping::Pattern::RecursiveDoubling,
       collectives::AllgatherAlgo::RecursiveDoubling, 4 * 1024},
      {mapping::Pattern::Ring, collectives::AllgatherAlgo::Ring, 64 * 1024},
  };
  for (const auto& c : cases) {
    const auto pattern_graph = mapping::build_pattern_graph(c.pattern, p);
    const auto rc = framework.reorder(comm, c.pattern);
    const auto heuristic_name = mapping::make_heuristic(c.pattern)->name();

    std::printf("%s (heuristic %s):\n", mapping::to_string(c.pattern),
                heuristic_name.c_str());
    show_placement(machine, heuristic_name.c_str(),
                   rc.comm.rank_to_core());

    const std::vector<int> initial(comm.rank_to_core().begin(),
                                   comm.rank_to_core().end());
    const std::vector<int> mapped(rc.comm.rank_to_core().begin(),
                                  rc.comm.rank_to_core().end());
    std::printf("  weighted cost: %.0f -> %.0f\n",
                mapping::mapping_cost(pattern_graph, initial, dist),
                mapping::mapping_cost(pattern_graph, mapped, dist));

    const Bytes msg = c.msg;
    simmpi::Engine before(comm, simmpi::CostConfig{},
                          simmpi::ExecMode::Timed, msg, p);
    collectives::run_allgather(
        before, collectives::AllgatherOptions{c.algo,
                                              collectives::OrderFix::None});
    simmpi::Engine after(rc.comm, simmpi::CostConfig{},
                         simmpi::ExecMode::Timed, msg, p);
    collectives::run_allgather(
        after,
        collectives::AllgatherOptions{c.algo, collectives::OrderFix::InitComm},
        rc.oldrank);
    std::printf("  allgather(%lld B): %.1f us -> %.1f us\n\n",
                static_cast<long long>(msg), before.total(), after.total());
  }

  std::printf(
      "Every reordered collective still returns its output vector in\n"
      "original-rank order (verified continuously by the test suite via\n"
      "the §V-B initComm / endShfl mechanisms).\n");
  return 0;
}
