// tarr-log — query CLI over `.tlog` streaming binary trace files (see
// docs/TLOG.md for the format).  Three subcommands:
//
//   tarr-log info FILE
//       Header + footer-index summary without decoding any block: format
//       version, block size, sampling, writer-side filter, per-kind
//       received / filtered / sampled-out / stored bookkeeping, and the
//       per-block index (offset, bytes, events, stage range).
//
//   tarr-log cat FILE [--json PATH] [--metrics PATH] [filters]
//       Decode the selected events and re-render them through the
//       existing serializers: --json writes the Chrome trace-event
//       timeline (trace::Tracer::timeline_json), --metrics the metrics
//       registry CSV.  With neither, the timeline JSON goes to stdout.
//
//   tarr-log stats FILE --by rank|stage|channel [filters]
//       Transfer aggregates grouped by source rank, stage, or channel
//       class, computed with selective block decode (blocks whose index
//       entry proves no match are never decoded; the skip count is
//       reported on stderr).  CSV columns: key, transfers, bytes,
//       duration_us, stall_us.
//
// Filters (cat and stats): --kinds K1,K2,... (stage, transfer, copy,
// permute, phase, counter, wall-span, time, count, observe), --stages
// LO:HI, --ranks LO:HI.  Unknown flags and malformed numerics print this
// usage and exit 2.  Output is deterministic: same file + same flags ->
// byte-identical output (CI cmp's it).

#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "tlog/reader.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace tarr;

constexpr const char* kUsage =
    "usage: tarr-log info FILE\n"
    "       tarr-log cat FILE [--json PATH] [--metrics PATH] [filters]\n"
    "       tarr-log stats FILE --by rank|stage|channel [filters]\n"
    "filters: --kinds K1,K2,...  --stages LO:HI  --ranks LO:HI\n"
    "kinds: stage transfer copy permute phase counter wall-span time\n"
    "       count observe\n";

/// Parse "LO:HI" (or a single "N" meaning N:N) into an inclusive window.
void parse_window(const std::string& opt, const char* s, int& lo, int& hi) {
  const std::string v = s;
  const std::size_t colon = v.find(':');
  if (colon == std::string::npos) {
    lo = hi = static_cast<int>(
        cli::parse_int(opt, s, 0, std::numeric_limits<int>::max()));
    return;
  }
  lo = static_cast<int>(cli::parse_int(opt, v.substr(0, colon).c_str(), 0,
                                       std::numeric_limits<int>::max()));
  hi = static_cast<int>(cli::parse_int(opt, v.substr(colon + 1).c_str(), 0,
                                       std::numeric_limits<int>::max()));
  if (lo > hi)
    throw cli::UsageError(opt + ": empty window " + v);
}

unsigned parse_kinds(const std::string& opt, const char* s) {
  unsigned mask = 0;
  std::string list = s;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string name = list.substr(start, comma - start);
    tlog::EventKind k;
    if (!tlog::parse_event_kind(name, k))
      throw cli::UsageError(opt + ": unknown event kind '" + name + "'");
    mask |= 1u << static_cast<int>(k);
    start = comma + 1;
  }
  return mask;
}

/// Shared filter flags; returns true when `argv[i]` was consumed.
bool parse_filter_flag(int argc, char** argv, int& i, tlog::EventFilter& f) {
  const std::string a = argv[i];
  auto next = [&]() -> const char* {
    if (i + 1 >= argc) throw cli::UsageError("missing value for " + a);
    return argv[++i];
  };
  if (a == "--kinds") {
    f.kinds = parse_kinds(a, next());
    return true;
  }
  if (a == "--stages") {
    parse_window(a, next(), f.min_stage, f.max_stage);
    return true;
  }
  if (a == "--ranks") {
    parse_window(a, next(), f.min_rank, f.max_rank);
    return true;
  }
  return false;
}

int cmd_info(const std::string& path) {
  const tlog::FileInfo info = tlog::read_info(path);
  std::printf("%s: tlog v%d, %llu bytes, %zu blocks, %zu interned strings\n",
              path.c_str(), info.version,
              static_cast<unsigned long long>(info.file_bytes),
              info.blocks.size(), info.strings.size());
  std::printf("block size %zu bytes, sample every %d%s\n", info.block_bytes,
              info.sample_every,
              info.filter.pass_all() ? "" : ", writer-side filter active");

  TextTable kinds;
  kinds.set_header({"kind", "received", "filtered", "sampled-out", "stored"});
  for (int k = 0; k < tlog::kNumEventKinds; ++k) {
    const auto ki = static_cast<std::size_t>(k);
    if (info.received[ki] == 0) continue;
    kinds.add_row({tlog::to_string(static_cast<tlog::EventKind>(k)),
                   std::to_string(info.received[ki]),
                   std::to_string(info.filtered[ki]),
                   std::to_string(info.sampled_out[ki]),
                   std::to_string(info.stored[ki])});
  }
  std::fputs(kinds.render().c_str(), stdout);

  TextTable blocks;
  blocks.set_header({"block", "offset", "bytes", "events", "stages"});
  for (std::size_t b = 0; b < info.blocks.size(); ++b) {
    const tlog::BlockInfo& e = info.blocks[b];
    blocks.add_row(
        {std::to_string(b), std::to_string(e.offset),
         std::to_string(e.payload_len), std::to_string(e.events),
         e.has_stage() ? std::to_string(e.min_stage) + ":" +
                             std::to_string(e.max_stage)
                       : "-"});
  }
  std::fputs(blocks.render().c_str(), stdout);
  return 0;
}

int cmd_cat(const std::string& path, const tlog::EventFilter& filter,
            const std::string& json_path, const std::string& metrics_path) {
  trace::Tracer tracer;
  tlog::ReplayOptions opts;
  opts.filter = filter;
  const tlog::ReplayStats stats = tlog::replay(path, tracer, opts);
  if (!json_path.empty()) tracer.write_timeline(json_path);
  if (!metrics_path.empty()) tracer.write_metrics(metrics_path);
  if (json_path.empty() && metrics_path.empty())
    std::fputs(tracer.timeline_json().c_str(), stdout);
  std::fprintf(stderr,
               "tarr-log: delivered %lld events, decoded %lld/%lld blocks "
               "(%lld skipped via index)\n",
               stats.delivered_events(), stats.blocks_decoded,
               stats.blocks_total, stats.blocks_skipped);
  return 0;
}

/// Transfer aggregator behind `tarr-log stats`.
class StatsSink final : public trace::TraceSink {
 public:
  enum class By { Rank, Stage, Channel };

  explicit StatsSink(By by) : by_(by) {}

  void on_transfer(const trace::TransferEvent& e) override {
    Row& r = rows_[key_of(e)];
    r.transfers += 1;
    r.bytes += e.bytes;
    r.duration += e.duration;
    r.stall += e.duration - e.uncontended;
  }

  std::string csv() const {
    std::string out = "key,transfers,bytes,duration_us,stall_us\n";
    char buf[160];
    for (const auto& [key, r] : rows_) {
      std::snprintf(buf, sizeof buf, "%s,%lld,%lld,%.17g,%.17g\n",
                    key.c_str(), r.transfers, r.bytes, r.duration, r.stall);
      out += buf;
    }
    return out;
  }

 private:
  struct Row {
    long long transfers = 0;
    long long bytes = 0;
    double duration = 0.0;
    double stall = 0.0;
  };

  /// Map keys are zero-padded so lexicographic map order is numeric order.
  std::string key_of(const trace::TransferEvent& e) const {
    char buf[32];
    switch (by_) {
      case By::Rank:
        std::snprintf(buf, sizeof buf, "%08d", e.src_rank);
        return buf;
      case By::Stage:
        std::snprintf(buf, sizeof buf, "%08d", e.stage);
        return buf;
      case By::Channel:
        return trace::to_string(e.channel);
    }
    return "?";
  }

  By by_;
  std::map<std::string, Row> rows_;
};

int cmd_stats(const std::string& path, tlog::EventFilter filter,
              const std::string& by) {
  StatsSink::By group;
  if (by == "rank") group = StatsSink::By::Rank;
  else if (by == "stage") group = StatsSink::By::Stage;
  else if (by == "channel") group = StatsSink::By::Channel;
  else throw cli::UsageError("stats --by: expected rank|stage|channel, got '" +
                             by + "'");

  // Only transfers feed the aggregates; narrowing the kind mask is what
  // lets the reader skip transfer-free blocks outright.
  filter.kinds &= 1u << static_cast<int>(tlog::EventKind::Transfer);
  StatsSink sink(group);
  tlog::ReplayOptions opts;
  opts.filter = filter;
  const tlog::ReplayStats stats = tlog::replay(path, sink, opts);
  std::fputs(sink.csv().c_str(), stdout);
  std::fprintf(stderr,
               "tarr-log: decoded %lld/%lld blocks (%lld skipped via index)\n",
               stats.blocks_decoded, stats.blocks_total,
               stats.blocks_skipped);
  return 0;
}

int run(int argc, char** argv) {
  if (argc < 3) throw cli::UsageError("missing subcommand or file");
  const std::string cmd = argv[1];
  const std::string path = argv[2];

  tlog::EventFilter filter;
  std::string json_path, metrics_path, by;
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw cli::UsageError("missing value for " + a);
      return argv[++i];
    };
    if (parse_filter_flag(argc, argv, i, filter)) continue;
    if (cmd == "cat" && a == "--json") json_path = next();
    else if (cmd == "cat" && a == "--metrics") metrics_path = next();
    else if (cmd == "stats" && a == "--by") by = next();
    else throw cli::UsageError("unknown option " + a);
  }

  if (cmd == "info") return cmd_info(path);
  if (cmd == "cat") return cmd_cat(path, filter, json_path, metrics_path);
  if (cmd == "stats") {
    if (by.empty()) throw cli::UsageError("stats requires --by");
    return cmd_stats(path, filter, by);
  }
  throw cli::UsageError("unknown subcommand '" + cmd + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "tarr-log: %s\n%s", e.what(), kUsage);
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "tarr-log: %s\n", e.what());
    return 1;
  }
}
