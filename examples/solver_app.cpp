// Domain scenario: a distributed iterative solver whose communication is
// dominated by MPI_Allgather — the application class the paper's intro
// motivates and its Figs 5-6 evaluate.
//
// The solver gathers a distributed state vector every iteration (small
// gathers for residual bookkeeping, a large gather for the state exchange),
// on a 1024-process job that the batch system placed cyclically.  The
// example runs the same trace through the default library, the fixed
// topology-aware path, and the §VII adaptive path.

#include <cstdio>

#include "core/adaptive.hpp"
#include "simmpi/layout.hpp"

namespace {

using namespace tarr;

struct SolverTrace {
  Bytes residual_msg = 2 * 1024;    // per-iteration residual allgather
  Bytes state_msg = 128 * 1024;     // per-iteration state allgather
  int iterations = 500;
  Usec compute_per_iter = 40'000.0;  // 40 ms of local work
};

Usec run_solver(core::TopoAllgather& path, const SolverTrace& t) {
  // Latencies are stationary per size; evaluate once, then accumulate.
  const Usec residual = path.latency(t.residual_msg);
  const Usec state = path.latency(t.state_msg);
  return t.iterations * (t.compute_per_iter + residual + state);
}

Usec run_solver(core::AdaptiveAllgather& path, const SolverTrace& t) {
  const Usec residual = path.latency(t.residual_msg);
  const Usec state = path.latency(t.state_msg);
  return t.iterations * (t.compute_per_iter + residual + state);
}

}  // namespace

int main() {
  const topology::Machine machine = topology::Machine::gpc(128);
  core::ReorderFramework framework(machine);
  const simmpi::LayoutSpec layout{simmpi::NodeOrder::Cyclic,
                                  simmpi::SocketOrder::Scatter};
  const simmpi::Communicator comm(
      machine, simmpi::make_layout(machine, 1024, layout));
  const SolverTrace trace;

  std::printf(
      "Iterative solver, 1024 processes, %d iterations, cyclic-scatter "
      "placement\nper iteration: %.0f ms compute + allgather(%lld B) + "
      "allgather(%lld B)\n\n",
      trace.iterations, trace.compute_per_iter / 1000.0,
      static_cast<long long>(trace.residual_msg),
      static_cast<long long>(trace.state_msg));

  core::TopoAllgatherConfig def;
  def.mapper = core::MapperKind::None;
  core::TopoAllgather default_path(framework, comm, def);
  const Usec t_default = run_solver(default_path, trace);

  core::TopoAllgatherConfig heu;
  heu.mapper = core::MapperKind::Heuristic;
  heu.fix = collectives::OrderFix::InitComm;
  core::TopoAllgather reordered_path(framework, comm, heu);
  const Usec t_reordered = run_solver(reordered_path, trace) +
                           reordered_path.mapping_seconds() * 1e6;

  core::AdaptiveAllgather adaptive(framework, comm, heu,
                                   {trace.residual_msg, trace.state_msg});
  const Usec t_adaptive = run_solver(adaptive, trace);

  std::printf("%-28s %12s %10s\n", "configuration", "time (s)", "speedup");
  std::printf("%-28s %12.2f %10s\n", "default library", t_default * 1e-6,
              "1.00x");
  std::printf("%-28s %12.2f %9.2fx\n", "topology-aware (Hrstc)",
              t_reordered * 1e-6, t_default / t_reordered);
  std::printf("%-28s %12.2f %9.2fx\n", "adaptive (future work)",
              t_adaptive * 1e-6, t_default / t_adaptive);
  std::printf("\nreordering overhead amortized over the run: %.4f s\n",
              reordered_path.mapping_seconds());
  return 0;
}
