# Empty dependencies file for tarr_common.
# This may be replaced when dependencies are built.
