file(REMOVE_RECURSE
  "CMakeFiles/tarr_common.dir/error.cpp.o"
  "CMakeFiles/tarr_common.dir/error.cpp.o.d"
  "CMakeFiles/tarr_common.dir/permutation.cpp.o"
  "CMakeFiles/tarr_common.dir/permutation.cpp.o.d"
  "CMakeFiles/tarr_common.dir/rng.cpp.o"
  "CMakeFiles/tarr_common.dir/rng.cpp.o.d"
  "CMakeFiles/tarr_common.dir/table.cpp.o"
  "CMakeFiles/tarr_common.dir/table.cpp.o.d"
  "libtarr_common.a"
  "libtarr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
