file(REMOVE_RECURSE
  "libtarr_common.a"
)
