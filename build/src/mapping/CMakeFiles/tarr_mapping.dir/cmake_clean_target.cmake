file(REMOVE_RECURSE
  "libtarr_mapping.a"
)
