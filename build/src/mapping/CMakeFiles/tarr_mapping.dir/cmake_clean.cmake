file(REMOVE_RECURSE
  "CMakeFiles/tarr_mapping.dir/bbmh.cpp.o"
  "CMakeFiles/tarr_mapping.dir/bbmh.cpp.o.d"
  "CMakeFiles/tarr_mapping.dir/bgmh.cpp.o"
  "CMakeFiles/tarr_mapping.dir/bgmh.cpp.o.d"
  "CMakeFiles/tarr_mapping.dir/bkmh.cpp.o"
  "CMakeFiles/tarr_mapping.dir/bkmh.cpp.o.d"
  "CMakeFiles/tarr_mapping.dir/comparators.cpp.o"
  "CMakeFiles/tarr_mapping.dir/comparators.cpp.o.d"
  "CMakeFiles/tarr_mapping.dir/mapcost.cpp.o"
  "CMakeFiles/tarr_mapping.dir/mapcost.cpp.o.d"
  "CMakeFiles/tarr_mapping.dir/mapper.cpp.o"
  "CMakeFiles/tarr_mapping.dir/mapper.cpp.o.d"
  "CMakeFiles/tarr_mapping.dir/rdmh.cpp.o"
  "CMakeFiles/tarr_mapping.dir/rdmh.cpp.o.d"
  "CMakeFiles/tarr_mapping.dir/rmh.cpp.o"
  "CMakeFiles/tarr_mapping.dir/rmh.cpp.o.d"
  "CMakeFiles/tarr_mapping.dir/scheme.cpp.o"
  "CMakeFiles/tarr_mapping.dir/scheme.cpp.o.d"
  "libtarr_mapping.a"
  "libtarr_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarr_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
