
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/bbmh.cpp" "src/mapping/CMakeFiles/tarr_mapping.dir/bbmh.cpp.o" "gcc" "src/mapping/CMakeFiles/tarr_mapping.dir/bbmh.cpp.o.d"
  "/root/repo/src/mapping/bgmh.cpp" "src/mapping/CMakeFiles/tarr_mapping.dir/bgmh.cpp.o" "gcc" "src/mapping/CMakeFiles/tarr_mapping.dir/bgmh.cpp.o.d"
  "/root/repo/src/mapping/bkmh.cpp" "src/mapping/CMakeFiles/tarr_mapping.dir/bkmh.cpp.o" "gcc" "src/mapping/CMakeFiles/tarr_mapping.dir/bkmh.cpp.o.d"
  "/root/repo/src/mapping/comparators.cpp" "src/mapping/CMakeFiles/tarr_mapping.dir/comparators.cpp.o" "gcc" "src/mapping/CMakeFiles/tarr_mapping.dir/comparators.cpp.o.d"
  "/root/repo/src/mapping/mapcost.cpp" "src/mapping/CMakeFiles/tarr_mapping.dir/mapcost.cpp.o" "gcc" "src/mapping/CMakeFiles/tarr_mapping.dir/mapcost.cpp.o.d"
  "/root/repo/src/mapping/mapper.cpp" "src/mapping/CMakeFiles/tarr_mapping.dir/mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/tarr_mapping.dir/mapper.cpp.o.d"
  "/root/repo/src/mapping/rdmh.cpp" "src/mapping/CMakeFiles/tarr_mapping.dir/rdmh.cpp.o" "gcc" "src/mapping/CMakeFiles/tarr_mapping.dir/rdmh.cpp.o.d"
  "/root/repo/src/mapping/rmh.cpp" "src/mapping/CMakeFiles/tarr_mapping.dir/rmh.cpp.o" "gcc" "src/mapping/CMakeFiles/tarr_mapping.dir/rmh.cpp.o.d"
  "/root/repo/src/mapping/scheme.cpp" "src/mapping/CMakeFiles/tarr_mapping.dir/scheme.cpp.o" "gcc" "src/mapping/CMakeFiles/tarr_mapping.dir/scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tarr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tarr_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tarr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
