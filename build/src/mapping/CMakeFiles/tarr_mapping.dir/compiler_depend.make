# Empty compiler generated dependencies file for tarr_mapping.
# This may be replaced when dependencies are built.
