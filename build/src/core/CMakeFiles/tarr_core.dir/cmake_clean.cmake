file(REMOVE_RECURSE
  "CMakeFiles/tarr_core.dir/adaptive.cpp.o"
  "CMakeFiles/tarr_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/tarr_core.dir/framework.cpp.o"
  "CMakeFiles/tarr_core.dir/framework.cpp.o.d"
  "CMakeFiles/tarr_core.dir/info.cpp.o"
  "CMakeFiles/tarr_core.dir/info.cpp.o.d"
  "CMakeFiles/tarr_core.dir/refine.cpp.o"
  "CMakeFiles/tarr_core.dir/refine.cpp.o.d"
  "CMakeFiles/tarr_core.dir/topoallgather.cpp.o"
  "CMakeFiles/tarr_core.dir/topoallgather.cpp.o.d"
  "libtarr_core.a"
  "libtarr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
