file(REMOVE_RECURSE
  "libtarr_core.a"
)
