# Empty compiler generated dependencies file for tarr_core.
# This may be replaced when dependencies are built.
