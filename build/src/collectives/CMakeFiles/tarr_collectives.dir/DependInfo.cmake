
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collectives/allgather.cpp" "src/collectives/CMakeFiles/tarr_collectives.dir/allgather.cpp.o" "gcc" "src/collectives/CMakeFiles/tarr_collectives.dir/allgather.cpp.o.d"
  "/root/repo/src/collectives/allgatherv.cpp" "src/collectives/CMakeFiles/tarr_collectives.dir/allgatherv.cpp.o" "gcc" "src/collectives/CMakeFiles/tarr_collectives.dir/allgatherv.cpp.o.d"
  "/root/repo/src/collectives/allreduce.cpp" "src/collectives/CMakeFiles/tarr_collectives.dir/allreduce.cpp.o" "gcc" "src/collectives/CMakeFiles/tarr_collectives.dir/allreduce.cpp.o.d"
  "/root/repo/src/collectives/alltoall.cpp" "src/collectives/CMakeFiles/tarr_collectives.dir/alltoall.cpp.o" "gcc" "src/collectives/CMakeFiles/tarr_collectives.dir/alltoall.cpp.o.d"
  "/root/repo/src/collectives/collective.cpp" "src/collectives/CMakeFiles/tarr_collectives.dir/collective.cpp.o" "gcc" "src/collectives/CMakeFiles/tarr_collectives.dir/collective.cpp.o.d"
  "/root/repo/src/collectives/gather_bcast.cpp" "src/collectives/CMakeFiles/tarr_collectives.dir/gather_bcast.cpp.o" "gcc" "src/collectives/CMakeFiles/tarr_collectives.dir/gather_bcast.cpp.o.d"
  "/root/repo/src/collectives/hierarchical.cpp" "src/collectives/CMakeFiles/tarr_collectives.dir/hierarchical.cpp.o" "gcc" "src/collectives/CMakeFiles/tarr_collectives.dir/hierarchical.cpp.o.d"
  "/root/repo/src/collectives/neighbor.cpp" "src/collectives/CMakeFiles/tarr_collectives.dir/neighbor.cpp.o" "gcc" "src/collectives/CMakeFiles/tarr_collectives.dir/neighbor.cpp.o.d"
  "/root/repo/src/collectives/orderfix.cpp" "src/collectives/CMakeFiles/tarr_collectives.dir/orderfix.cpp.o" "gcc" "src/collectives/CMakeFiles/tarr_collectives.dir/orderfix.cpp.o.d"
  "/root/repo/src/collectives/reduce_barrier.cpp" "src/collectives/CMakeFiles/tarr_collectives.dir/reduce_barrier.cpp.o" "gcc" "src/collectives/CMakeFiles/tarr_collectives.dir/reduce_barrier.cpp.o.d"
  "/root/repo/src/collectives/selector.cpp" "src/collectives/CMakeFiles/tarr_collectives.dir/selector.cpp.o" "gcc" "src/collectives/CMakeFiles/tarr_collectives.dir/selector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tarr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/tarr_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tarr_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
