# Empty compiler generated dependencies file for tarr_collectives.
# This may be replaced when dependencies are built.
