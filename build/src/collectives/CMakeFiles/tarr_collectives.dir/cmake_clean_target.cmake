file(REMOVE_RECURSE
  "libtarr_collectives.a"
)
