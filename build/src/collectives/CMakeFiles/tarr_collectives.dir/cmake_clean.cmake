file(REMOVE_RECURSE
  "CMakeFiles/tarr_collectives.dir/allgather.cpp.o"
  "CMakeFiles/tarr_collectives.dir/allgather.cpp.o.d"
  "CMakeFiles/tarr_collectives.dir/allgatherv.cpp.o"
  "CMakeFiles/tarr_collectives.dir/allgatherv.cpp.o.d"
  "CMakeFiles/tarr_collectives.dir/allreduce.cpp.o"
  "CMakeFiles/tarr_collectives.dir/allreduce.cpp.o.d"
  "CMakeFiles/tarr_collectives.dir/alltoall.cpp.o"
  "CMakeFiles/tarr_collectives.dir/alltoall.cpp.o.d"
  "CMakeFiles/tarr_collectives.dir/collective.cpp.o"
  "CMakeFiles/tarr_collectives.dir/collective.cpp.o.d"
  "CMakeFiles/tarr_collectives.dir/gather_bcast.cpp.o"
  "CMakeFiles/tarr_collectives.dir/gather_bcast.cpp.o.d"
  "CMakeFiles/tarr_collectives.dir/hierarchical.cpp.o"
  "CMakeFiles/tarr_collectives.dir/hierarchical.cpp.o.d"
  "CMakeFiles/tarr_collectives.dir/neighbor.cpp.o"
  "CMakeFiles/tarr_collectives.dir/neighbor.cpp.o.d"
  "CMakeFiles/tarr_collectives.dir/orderfix.cpp.o"
  "CMakeFiles/tarr_collectives.dir/orderfix.cpp.o.d"
  "CMakeFiles/tarr_collectives.dir/reduce_barrier.cpp.o"
  "CMakeFiles/tarr_collectives.dir/reduce_barrier.cpp.o.d"
  "CMakeFiles/tarr_collectives.dir/selector.cpp.o"
  "CMakeFiles/tarr_collectives.dir/selector.cpp.o.d"
  "libtarr_collectives.a"
  "libtarr_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarr_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
