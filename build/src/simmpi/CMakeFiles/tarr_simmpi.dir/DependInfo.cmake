
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simmpi/async.cpp" "src/simmpi/CMakeFiles/tarr_simmpi.dir/async.cpp.o" "gcc" "src/simmpi/CMakeFiles/tarr_simmpi.dir/async.cpp.o.d"
  "/root/repo/src/simmpi/communicator.cpp" "src/simmpi/CMakeFiles/tarr_simmpi.dir/communicator.cpp.o" "gcc" "src/simmpi/CMakeFiles/tarr_simmpi.dir/communicator.cpp.o.d"
  "/root/repo/src/simmpi/costmodel.cpp" "src/simmpi/CMakeFiles/tarr_simmpi.dir/costmodel.cpp.o" "gcc" "src/simmpi/CMakeFiles/tarr_simmpi.dir/costmodel.cpp.o.d"
  "/root/repo/src/simmpi/engine.cpp" "src/simmpi/CMakeFiles/tarr_simmpi.dir/engine.cpp.o" "gcc" "src/simmpi/CMakeFiles/tarr_simmpi.dir/engine.cpp.o.d"
  "/root/repo/src/simmpi/layout.cpp" "src/simmpi/CMakeFiles/tarr_simmpi.dir/layout.cpp.o" "gcc" "src/simmpi/CMakeFiles/tarr_simmpi.dir/layout.cpp.o.d"
  "/root/repo/src/simmpi/split.cpp" "src/simmpi/CMakeFiles/tarr_simmpi.dir/split.cpp.o" "gcc" "src/simmpi/CMakeFiles/tarr_simmpi.dir/split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tarr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tarr_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
