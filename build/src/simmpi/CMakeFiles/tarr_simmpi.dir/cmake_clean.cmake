file(REMOVE_RECURSE
  "CMakeFiles/tarr_simmpi.dir/async.cpp.o"
  "CMakeFiles/tarr_simmpi.dir/async.cpp.o.d"
  "CMakeFiles/tarr_simmpi.dir/communicator.cpp.o"
  "CMakeFiles/tarr_simmpi.dir/communicator.cpp.o.d"
  "CMakeFiles/tarr_simmpi.dir/costmodel.cpp.o"
  "CMakeFiles/tarr_simmpi.dir/costmodel.cpp.o.d"
  "CMakeFiles/tarr_simmpi.dir/engine.cpp.o"
  "CMakeFiles/tarr_simmpi.dir/engine.cpp.o.d"
  "CMakeFiles/tarr_simmpi.dir/layout.cpp.o"
  "CMakeFiles/tarr_simmpi.dir/layout.cpp.o.d"
  "CMakeFiles/tarr_simmpi.dir/split.cpp.o"
  "CMakeFiles/tarr_simmpi.dir/split.cpp.o.d"
  "libtarr_simmpi.a"
  "libtarr_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarr_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
