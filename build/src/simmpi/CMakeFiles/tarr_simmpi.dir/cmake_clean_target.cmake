file(REMOVE_RECURSE
  "libtarr_simmpi.a"
)
