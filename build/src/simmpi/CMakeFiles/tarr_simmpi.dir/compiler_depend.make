# Empty compiler generated dependencies file for tarr_simmpi.
# This may be replaced when dependencies are built.
