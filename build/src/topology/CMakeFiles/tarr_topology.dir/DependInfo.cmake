
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/direct.cpp" "src/topology/CMakeFiles/tarr_topology.dir/direct.cpp.o" "gcc" "src/topology/CMakeFiles/tarr_topology.dir/direct.cpp.o.d"
  "/root/repo/src/topology/distance.cpp" "src/topology/CMakeFiles/tarr_topology.dir/distance.cpp.o" "gcc" "src/topology/CMakeFiles/tarr_topology.dir/distance.cpp.o.d"
  "/root/repo/src/topology/fattree.cpp" "src/topology/CMakeFiles/tarr_topology.dir/fattree.cpp.o" "gcc" "src/topology/CMakeFiles/tarr_topology.dir/fattree.cpp.o.d"
  "/root/repo/src/topology/machine.cpp" "src/topology/CMakeFiles/tarr_topology.dir/machine.cpp.o" "gcc" "src/topology/CMakeFiles/tarr_topology.dir/machine.cpp.o.d"
  "/root/repo/src/topology/network.cpp" "src/topology/CMakeFiles/tarr_topology.dir/network.cpp.o" "gcc" "src/topology/CMakeFiles/tarr_topology.dir/network.cpp.o.d"
  "/root/repo/src/topology/routing.cpp" "src/topology/CMakeFiles/tarr_topology.dir/routing.cpp.o" "gcc" "src/topology/CMakeFiles/tarr_topology.dir/routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tarr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
