file(REMOVE_RECURSE
  "libtarr_topology.a"
)
