file(REMOVE_RECURSE
  "CMakeFiles/tarr_topology.dir/direct.cpp.o"
  "CMakeFiles/tarr_topology.dir/direct.cpp.o.d"
  "CMakeFiles/tarr_topology.dir/distance.cpp.o"
  "CMakeFiles/tarr_topology.dir/distance.cpp.o.d"
  "CMakeFiles/tarr_topology.dir/fattree.cpp.o"
  "CMakeFiles/tarr_topology.dir/fattree.cpp.o.d"
  "CMakeFiles/tarr_topology.dir/machine.cpp.o"
  "CMakeFiles/tarr_topology.dir/machine.cpp.o.d"
  "CMakeFiles/tarr_topology.dir/network.cpp.o"
  "CMakeFiles/tarr_topology.dir/network.cpp.o.d"
  "CMakeFiles/tarr_topology.dir/routing.cpp.o"
  "CMakeFiles/tarr_topology.dir/routing.cpp.o.d"
  "libtarr_topology.a"
  "libtarr_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarr_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
