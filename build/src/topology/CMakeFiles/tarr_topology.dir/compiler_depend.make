# Empty compiler generated dependencies file for tarr_topology.
# This may be replaced when dependencies are built.
