# Empty dependencies file for tarr_benchlib.
# This may be replaced when dependencies are built.
