file(REMOVE_RECURSE
  "CMakeFiles/tarr_benchlib.dir/appmodel.cpp.o"
  "CMakeFiles/tarr_benchlib.dir/appmodel.cpp.o.d"
  "CMakeFiles/tarr_benchlib.dir/csv.cpp.o"
  "CMakeFiles/tarr_benchlib.dir/csv.cpp.o.d"
  "CMakeFiles/tarr_benchlib.dir/sweep.cpp.o"
  "CMakeFiles/tarr_benchlib.dir/sweep.cpp.o.d"
  "libtarr_benchlib.a"
  "libtarr_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarr_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
