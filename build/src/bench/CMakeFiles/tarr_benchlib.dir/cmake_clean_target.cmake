file(REMOVE_RECURSE
  "libtarr_benchlib.a"
)
