file(REMOVE_RECURSE
  "CMakeFiles/tarr_graph.dir/apppattern.cpp.o"
  "CMakeFiles/tarr_graph.dir/apppattern.cpp.o.d"
  "CMakeFiles/tarr_graph.dir/bisection.cpp.o"
  "CMakeFiles/tarr_graph.dir/bisection.cpp.o.d"
  "CMakeFiles/tarr_graph.dir/graph.cpp.o"
  "CMakeFiles/tarr_graph.dir/graph.cpp.o.d"
  "CMakeFiles/tarr_graph.dir/pattern.cpp.o"
  "CMakeFiles/tarr_graph.dir/pattern.cpp.o.d"
  "libtarr_graph.a"
  "libtarr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
