file(REMOVE_RECURSE
  "libtarr_graph.a"
)
