
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/apppattern.cpp" "src/graph/CMakeFiles/tarr_graph.dir/apppattern.cpp.o" "gcc" "src/graph/CMakeFiles/tarr_graph.dir/apppattern.cpp.o.d"
  "/root/repo/src/graph/bisection.cpp" "src/graph/CMakeFiles/tarr_graph.dir/bisection.cpp.o" "gcc" "src/graph/CMakeFiles/tarr_graph.dir/bisection.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/tarr_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/tarr_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/pattern.cpp" "src/graph/CMakeFiles/tarr_graph.dir/pattern.cpp.o" "gcc" "src/graph/CMakeFiles/tarr_graph.dir/pattern.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tarr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
