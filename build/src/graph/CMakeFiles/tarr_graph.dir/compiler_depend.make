# Empty compiler generated dependencies file for tarr_graph.
# This may be replaced when dependencies are built.
