file(REMOVE_RECURSE
  "CMakeFiles/tarr_capi.dir/tarr_c.cpp.o"
  "CMakeFiles/tarr_capi.dir/tarr_c.cpp.o.d"
  "libtarr_capi.a"
  "libtarr_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarr_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
