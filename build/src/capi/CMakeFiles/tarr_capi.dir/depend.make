# Empty dependencies file for tarr_capi.
# This may be replaced when dependencies are built.
