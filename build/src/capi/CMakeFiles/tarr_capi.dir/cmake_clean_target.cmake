file(REMOVE_RECURSE
  "libtarr_capi.a"
)
