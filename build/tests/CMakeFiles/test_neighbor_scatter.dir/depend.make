# Empty dependencies file for test_neighbor_scatter.
# This may be replaced when dependencies are built.
