file(REMOVE_RECURSE
  "CMakeFiles/test_neighbor_scatter.dir/test_neighbor_scatter.cpp.o"
  "CMakeFiles/test_neighbor_scatter.dir/test_neighbor_scatter.cpp.o.d"
  "test_neighbor_scatter"
  "test_neighbor_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neighbor_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
