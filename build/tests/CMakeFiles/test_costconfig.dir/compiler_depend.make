# Empty compiler generated dependencies file for test_costconfig.
# This may be replaced when dependencies are built.
