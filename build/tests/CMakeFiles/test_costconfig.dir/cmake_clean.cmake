file(REMOVE_RECURSE
  "CMakeFiles/test_costconfig.dir/test_costconfig.cpp.o"
  "CMakeFiles/test_costconfig.dir/test_costconfig.cpp.o.d"
  "test_costconfig"
  "test_costconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
