file(REMOVE_RECURSE
  "CMakeFiles/test_allgatherv.dir/test_allgatherv.cpp.o"
  "CMakeFiles/test_allgatherv.dir/test_allgatherv.cpp.o.d"
  "test_allgatherv"
  "test_allgatherv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_allgatherv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
