# Empty compiler generated dependencies file for test_deepnode.
# This may be replaced when dependencies are built.
