file(REMOVE_RECURSE
  "CMakeFiles/test_deepnode.dir/test_deepnode.cpp.o"
  "CMakeFiles/test_deepnode.dir/test_deepnode.cpp.o.d"
  "test_deepnode"
  "test_deepnode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deepnode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
