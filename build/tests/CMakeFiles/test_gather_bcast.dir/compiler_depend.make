# Empty compiler generated dependencies file for test_gather_bcast.
# This may be replaced when dependencies are built.
