file(REMOVE_RECURSE
  "CMakeFiles/test_gather_bcast.dir/test_gather_bcast.cpp.o"
  "CMakeFiles/test_gather_bcast.dir/test_gather_bcast.cpp.o.d"
  "test_gather_bcast"
  "test_gather_bcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gather_bcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
