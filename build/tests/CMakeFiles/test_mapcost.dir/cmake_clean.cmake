file(REMOVE_RECURSE
  "CMakeFiles/test_mapcost.dir/test_mapcost.cpp.o"
  "CMakeFiles/test_mapcost.dir/test_mapcost.cpp.o.d"
  "test_mapcost"
  "test_mapcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
