# Empty dependencies file for test_mapcost.
# This may be replaced when dependencies are built.
