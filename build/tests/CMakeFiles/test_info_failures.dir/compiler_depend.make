# Empty compiler generated dependencies file for test_info_failures.
# This may be replaced when dependencies are built.
