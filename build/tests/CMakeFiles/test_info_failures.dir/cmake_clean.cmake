file(REMOVE_RECURSE
  "CMakeFiles/test_info_failures.dir/test_info_failures.cpp.o"
  "CMakeFiles/test_info_failures.dir/test_info_failures.cpp.o.d"
  "test_info_failures"
  "test_info_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_info_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
