file(REMOVE_RECURSE
  "CMakeFiles/test_csv_dot.dir/test_csv_dot.cpp.o"
  "CMakeFiles/test_csv_dot.dir/test_csv_dot.cpp.o.d"
  "test_csv_dot"
  "test_csv_dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csv_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
