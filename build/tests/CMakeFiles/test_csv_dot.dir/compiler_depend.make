# Empty compiler generated dependencies file for test_csv_dot.
# This may be replaced when dependencies are built.
