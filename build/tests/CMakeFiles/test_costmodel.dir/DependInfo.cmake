
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_costmodel.cpp" "tests/CMakeFiles/test_costmodel.dir/test_costmodel.cpp.o" "gcc" "tests/CMakeFiles/test_costmodel.dir/test_costmodel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/capi/CMakeFiles/tarr_capi.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tarr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bench/CMakeFiles/tarr_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/tarr_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/tarr_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/tarr_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tarr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tarr_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tarr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
