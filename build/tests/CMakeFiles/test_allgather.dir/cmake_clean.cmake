file(REMOVE_RECURSE
  "CMakeFiles/test_allgather.dir/test_allgather.cpp.o"
  "CMakeFiles/test_allgather.dir/test_allgather.cpp.o.d"
  "test_allgather"
  "test_allgather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_allgather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
