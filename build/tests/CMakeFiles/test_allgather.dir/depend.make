# Empty dependencies file for test_allgather.
# This may be replaced when dependencies are built.
