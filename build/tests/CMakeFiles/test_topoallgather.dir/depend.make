# Empty dependencies file for test_topoallgather.
# This may be replaced when dependencies are built.
