file(REMOVE_RECURSE
  "CMakeFiles/test_topoallgather.dir/test_topoallgather.cpp.o"
  "CMakeFiles/test_topoallgather.dir/test_topoallgather.cpp.o.d"
  "test_topoallgather"
  "test_topoallgather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topoallgather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
