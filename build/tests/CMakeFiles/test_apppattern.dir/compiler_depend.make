# Empty compiler generated dependencies file for test_apppattern.
# This may be replaced when dependencies are built.
