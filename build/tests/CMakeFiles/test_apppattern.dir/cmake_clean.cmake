file(REMOVE_RECURSE
  "CMakeFiles/test_apppattern.dir/test_apppattern.cpp.o"
  "CMakeFiles/test_apppattern.dir/test_apppattern.cpp.o.d"
  "test_apppattern"
  "test_apppattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apppattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
