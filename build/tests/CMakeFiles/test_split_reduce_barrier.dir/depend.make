# Empty dependencies file for test_split_reduce_barrier.
# This may be replaced when dependencies are built.
