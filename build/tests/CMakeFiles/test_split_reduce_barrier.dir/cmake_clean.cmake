file(REMOVE_RECURSE
  "CMakeFiles/test_split_reduce_barrier.dir/test_split_reduce_barrier.cpp.o"
  "CMakeFiles/test_split_reduce_barrier.dir/test_split_reduce_barrier.cpp.o.d"
  "test_split_reduce_barrier"
  "test_split_reduce_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_split_reduce_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
