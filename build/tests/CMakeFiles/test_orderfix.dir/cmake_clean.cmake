file(REMOVE_RECURSE
  "CMakeFiles/test_orderfix.dir/test_orderfix.cpp.o"
  "CMakeFiles/test_orderfix.dir/test_orderfix.cpp.o.d"
  "test_orderfix"
  "test_orderfix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orderfix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
