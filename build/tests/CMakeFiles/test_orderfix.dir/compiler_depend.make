# Empty compiler generated dependencies file for test_orderfix.
# This may be replaced when dependencies are built.
