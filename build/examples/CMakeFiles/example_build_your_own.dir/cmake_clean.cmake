file(REMOVE_RECURSE
  "CMakeFiles/example_build_your_own.dir/build_your_own.cpp.o"
  "CMakeFiles/example_build_your_own.dir/build_your_own.cpp.o.d"
  "example_build_your_own"
  "example_build_your_own.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_build_your_own.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
