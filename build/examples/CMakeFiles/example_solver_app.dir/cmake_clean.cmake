file(REMOVE_RECURSE
  "CMakeFiles/example_solver_app.dir/solver_app.cpp.o"
  "CMakeFiles/example_solver_app.dir/solver_app.cpp.o.d"
  "example_solver_app"
  "example_solver_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_solver_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
