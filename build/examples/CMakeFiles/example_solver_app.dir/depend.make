# Empty dependencies file for example_solver_app.
# This may be replaced when dependencies are built.
