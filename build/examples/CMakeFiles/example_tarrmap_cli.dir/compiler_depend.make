# Empty compiler generated dependencies file for example_tarrmap_cli.
# This may be replaced when dependencies are built.
