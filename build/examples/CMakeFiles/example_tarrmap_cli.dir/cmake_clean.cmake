file(REMOVE_RECURSE
  "CMakeFiles/example_tarrmap_cli.dir/tarrmap_cli.cpp.o"
  "CMakeFiles/example_tarrmap_cli.dir/tarrmap_cli.cpp.o.d"
  "example_tarrmap_cli"
  "example_tarrmap_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tarrmap_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
