file(REMOVE_RECURSE
  "CMakeFiles/example_layout_advisor.dir/layout_advisor.cpp.o"
  "CMakeFiles/example_layout_advisor.dir/layout_advisor.cpp.o.d"
  "example_layout_advisor"
  "example_layout_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_layout_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
