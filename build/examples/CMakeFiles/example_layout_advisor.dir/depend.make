# Empty dependencies file for example_layout_advisor.
# This may be replaced when dependencies are built.
