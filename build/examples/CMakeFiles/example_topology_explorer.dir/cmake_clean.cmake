file(REMOVE_RECURSE
  "CMakeFiles/example_topology_explorer.dir/topology_explorer.cpp.o"
  "CMakeFiles/example_topology_explorer.dir/topology_explorer.cpp.o.d"
  "example_topology_explorer"
  "example_topology_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_topology_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
