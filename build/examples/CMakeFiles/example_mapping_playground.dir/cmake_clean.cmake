file(REMOVE_RECURSE
  "CMakeFiles/example_mapping_playground.dir/mapping_playground.cpp.o"
  "CMakeFiles/example_mapping_playground.dir/mapping_playground.cpp.o.d"
  "example_mapping_playground"
  "example_mapping_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mapping_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
