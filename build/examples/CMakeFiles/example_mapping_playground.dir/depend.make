# Empty dependencies file for example_mapping_playground.
# This may be replaced when dependencies are built.
