file(REMOVE_RECURSE
  "CMakeFiles/ext_async_model.dir/ext_async_model.cpp.o"
  "CMakeFiles/ext_async_model.dir/ext_async_model.cpp.o.d"
  "ext_async_model"
  "ext_async_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_async_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
