# Empty compiler generated dependencies file for ext_async_model.
# This may be replaced when dependencies are built.
