file(REMOVE_RECURSE
  "CMakeFiles/ext_apppattern.dir/ext_apppattern.cpp.o"
  "CMakeFiles/ext_apppattern.dir/ext_apppattern.cpp.o.d"
  "ext_apppattern"
  "ext_apppattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_apppattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
