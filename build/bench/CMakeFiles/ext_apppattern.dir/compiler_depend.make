# Empty compiler generated dependencies file for ext_apppattern.
# This may be replaced when dependencies are built.
