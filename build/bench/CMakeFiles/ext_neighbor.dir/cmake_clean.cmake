file(REMOVE_RECURSE
  "CMakeFiles/ext_neighbor.dir/ext_neighbor.cpp.o"
  "CMakeFiles/ext_neighbor.dir/ext_neighbor.cpp.o.d"
  "ext_neighbor"
  "ext_neighbor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_neighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
