# Empty dependencies file for ext_neighbor.
# This may be replaced when dependencies are built.
