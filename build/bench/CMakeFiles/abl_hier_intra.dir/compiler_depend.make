# Empty compiler generated dependencies file for abl_hier_intra.
# This may be replaced when dependencies are built.
