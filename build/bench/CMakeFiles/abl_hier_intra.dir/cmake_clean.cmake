file(REMOVE_RECURSE
  "CMakeFiles/abl_hier_intra.dir/abl_hier_intra.cpp.o"
  "CMakeFiles/abl_hier_intra.dir/abl_hier_intra.cpp.o.d"
  "abl_hier_intra"
  "abl_hier_intra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hier_intra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
