file(REMOVE_RECURSE
  "CMakeFiles/abl_orderfix.dir/abl_orderfix.cpp.o"
  "CMakeFiles/abl_orderfix.dir/abl_orderfix.cpp.o.d"
  "abl_orderfix"
  "abl_orderfix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_orderfix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
