# Empty dependencies file for abl_orderfix.
# This may be replaced when dependencies are built.
