# Empty dependencies file for fig4_hier.
# This may be replaced when dependencies are built.
