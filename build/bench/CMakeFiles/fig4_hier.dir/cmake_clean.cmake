file(REMOVE_RECURSE
  "CMakeFiles/fig4_hier.dir/fig4_hier.cpp.o"
  "CMakeFiles/fig4_hier.dir/fig4_hier.cpp.o.d"
  "fig4_hier"
  "fig4_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
