file(REMOVE_RECURSE
  "CMakeFiles/abl_rdmh_refcore.dir/abl_rdmh_refcore.cpp.o"
  "CMakeFiles/abl_rdmh_refcore.dir/abl_rdmh_refcore.cpp.o.d"
  "abl_rdmh_refcore"
  "abl_rdmh_refcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rdmh_refcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
