# Empty compiler generated dependencies file for abl_rdmh_refcore.
# This may be replaced when dependencies are built.
