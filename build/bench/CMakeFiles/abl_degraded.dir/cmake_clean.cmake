file(REMOVE_RECURSE
  "CMakeFiles/abl_degraded.dir/abl_degraded.cpp.o"
  "CMakeFiles/abl_degraded.dir/abl_degraded.cpp.o.d"
  "abl_degraded"
  "abl_degraded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_degraded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
