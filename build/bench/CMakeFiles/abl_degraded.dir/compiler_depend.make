# Empty compiler generated dependencies file for abl_degraded.
# This may be replaced when dependencies are built.
