file(REMOVE_RECURSE
  "CMakeFiles/fig3_nonhier.dir/fig3_nonhier.cpp.o"
  "CMakeFiles/fig3_nonhier.dir/fig3_nonhier.cpp.o.d"
  "fig3_nonhier"
  "fig3_nonhier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_nonhier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
