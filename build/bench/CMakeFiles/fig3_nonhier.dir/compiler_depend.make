# Empty compiler generated dependencies file for fig3_nonhier.
# This may be replaced when dependencies are built.
