# Empty compiler generated dependencies file for abl_bbmh_traversal.
# This may be replaced when dependencies are built.
