file(REMOVE_RECURSE
  "CMakeFiles/abl_bbmh_traversal.dir/abl_bbmh_traversal.cpp.o"
  "CMakeFiles/abl_bbmh_traversal.dir/abl_bbmh_traversal.cpp.o.d"
  "abl_bbmh_traversal"
  "abl_bbmh_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bbmh_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
