file(REMOVE_RECURSE
  "CMakeFiles/fig5_app_nonhier.dir/fig5_app_nonhier.cpp.o"
  "CMakeFiles/fig5_app_nonhier.dir/fig5_app_nonhier.cpp.o.d"
  "fig5_app_nonhier"
  "fig5_app_nonhier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_app_nonhier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
