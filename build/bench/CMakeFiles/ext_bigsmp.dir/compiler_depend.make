# Empty compiler generated dependencies file for ext_bigsmp.
# This may be replaced when dependencies are built.
