file(REMOVE_RECURSE
  "CMakeFiles/ext_bigsmp.dir/ext_bigsmp.cpp.o"
  "CMakeFiles/ext_bigsmp.dir/ext_bigsmp.cpp.o.d"
  "ext_bigsmp"
  "ext_bigsmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bigsmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
