# Empty dependencies file for ext_simrefine.
# This may be replaced when dependencies are built.
