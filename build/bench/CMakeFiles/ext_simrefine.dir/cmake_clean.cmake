file(REMOVE_RECURSE
  "CMakeFiles/ext_simrefine.dir/ext_simrefine.cpp.o"
  "CMakeFiles/ext_simrefine.dir/ext_simrefine.cpp.o.d"
  "ext_simrefine"
  "ext_simrefine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_simrefine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
