file(REMOVE_RECURSE
  "CMakeFiles/abl_scotch_weights.dir/abl_scotch_weights.cpp.o"
  "CMakeFiles/abl_scotch_weights.dir/abl_scotch_weights.cpp.o.d"
  "abl_scotch_weights"
  "abl_scotch_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_scotch_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
