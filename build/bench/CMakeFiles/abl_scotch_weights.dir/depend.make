# Empty dependencies file for abl_scotch_weights.
# This may be replaced when dependencies are built.
