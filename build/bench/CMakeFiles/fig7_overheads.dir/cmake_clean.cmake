file(REMOVE_RECURSE
  "CMakeFiles/fig7_overheads.dir/fig7_overheads.cpp.o"
  "CMakeFiles/fig7_overheads.dir/fig7_overheads.cpp.o.d"
  "fig7_overheads"
  "fig7_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
