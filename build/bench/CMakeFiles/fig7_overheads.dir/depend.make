# Empty dependencies file for fig7_overheads.
# This may be replaced when dependencies are built.
