file(REMOVE_RECURSE
  "CMakeFiles/ext_bruck_allreduce.dir/ext_bruck_allreduce.cpp.o"
  "CMakeFiles/ext_bruck_allreduce.dir/ext_bruck_allreduce.cpp.o.d"
  "ext_bruck_allreduce"
  "ext_bruck_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bruck_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
