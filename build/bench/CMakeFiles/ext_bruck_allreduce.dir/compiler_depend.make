# Empty compiler generated dependencies file for ext_bruck_allreduce.
# This may be replaced when dependencies are built.
