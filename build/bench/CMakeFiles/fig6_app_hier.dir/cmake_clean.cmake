file(REMOVE_RECURSE
  "CMakeFiles/fig6_app_hier.dir/fig6_app_hier.cpp.o"
  "CMakeFiles/fig6_app_hier.dir/fig6_app_hier.cpp.o.d"
  "fig6_app_hier"
  "fig6_app_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_app_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
