# Empty compiler generated dependencies file for fig6_app_hier.
# This may be replaced when dependencies are built.
