#pragma once

#include <vector>

#include "topology/machine.hpp"

/// \file communicator.hpp
/// An MPI-communicator analogue: an ordered set of processes, each pinned to
/// a physical core of a Machine.  Rank reordering produces a *new*
/// communicator over the same set of cores with a different rank order —
/// mirroring how the paper creates a reordered copy of a communicator once
/// and routes subsequent collective calls through it.

namespace tarr::simmpi {

/// Immutable communicator: rank -> core, plus derived lookups.
class Communicator {
 public:
  /// `rank_to_core[i]` is the core hosting rank i.  Cores must be distinct
  /// and valid for `m`.  The machine must outlive the communicator.
  Communicator(const topology::Machine& m, std::vector<CoreId> rank_to_core);

  int size() const { return static_cast<int>(rank_to_core_.size()); }
  const topology::Machine& machine() const { return *machine_; }

  CoreId core_of(Rank r) const;
  NodeId node_of(Rank r) const;
  SocketId socket_of(Rank r) const;

  /// Rank hosted on core c, or kNoRank if that core is not in this
  /// communicator.
  Rank rank_on_core(CoreId c) const;

  const std::vector<CoreId>& rank_to_core() const { return rank_to_core_; }

  /// A new communicator over the same cores with ranks reassigned:
  /// `new_rank_to_core[j]` is the core of new rank j.  The core set must be
  /// exactly this communicator's core set.
  Communicator reordered(std::vector<CoreId> new_rank_to_core) const;

  /// Permutation old rank -> new rank implied by a reordered communicator
  /// over the same cores (the process stays on its core; only its rank
  /// changes).
  std::vector<Rank> permutation_to(const Communicator& reordered) const;

  /// True iff ranks are node-contiguous with exactly `ranks_per_node()` ranks
  /// per node in rank order — the precondition of the hierarchical path.
  bool node_contiguous() const;

  /// Ranks grouped by the hosting node (indexed by node-of-first-appearance
  /// order is NOT applied; index is the global NodeId).  Empty groups for
  /// unused nodes are omitted: result[i] lists ranks of the i-th distinct
  /// node in ascending NodeId order.
  std::vector<std::vector<Rank>> ranks_by_node() const;

 private:
  const topology::Machine* machine_;
  std::vector<CoreId> rank_to_core_;
  std::vector<Rank> core_to_rank_;  // size total_cores, kNoRank if unused
};

}  // namespace tarr::simmpi
