#include "simmpi/layout.hpp"

#include "common/error.hpp"

namespace tarr::simmpi {

std::string to_string(const LayoutSpec& spec) {
  std::string s = spec.node == NodeOrder::Block ? "block" : "cyclic";
  s += spec.socket == SocketOrder::Bunch ? "-bunch" : "-scatter";
  return s;
}

LayoutSpec parse_layout_spec(const std::string& s) {
  // Library names first.
  for (const LayoutSpec& spec : all_layouts()) {
    if (to_string(spec) == s) return spec;
  }
  // SLURM --distribution names: <node>:<socket>.
  const std::size_t colon = s.find(':');
  TARR_REQUIRE(colon != std::string::npos,
               "parse_layout_spec: unknown layout: " + s);
  const std::string node = s.substr(0, colon);
  const std::string socket = s.substr(colon + 1);
  LayoutSpec spec;
  if (node == "block") {
    spec.node = NodeOrder::Block;
  } else if (node == "cyclic") {
    spec.node = NodeOrder::Cyclic;
  } else {
    TARR_REQUIRE(false, "parse_layout_spec: unknown node policy: " + node);
  }
  if (socket == "block") {
    spec.socket = SocketOrder::Bunch;
  } else if (socket == "cyclic") {
    spec.socket = SocketOrder::Scatter;
  } else {
    TARR_REQUIRE(false,
                 "parse_layout_spec: unknown socket policy: " + socket);
  }
  return spec;
}

std::vector<LayoutSpec> all_layouts() {
  return {
      LayoutSpec{NodeOrder::Block, SocketOrder::Bunch},
      LayoutSpec{NodeOrder::Block, SocketOrder::Scatter},
      LayoutSpec{NodeOrder::Cyclic, SocketOrder::Bunch},
      LayoutSpec{NodeOrder::Cyclic, SocketOrder::Scatter},
  };
}

std::vector<CoreId> make_layout(const topology::Machine& m, int p,
                                const LayoutSpec& spec) {
  TARR_REQUIRE(p >= 1, "make_layout: need at least one rank");
  TARR_REQUIRE(p <= m.total_cores(), "make_layout: more ranks than cores");
  const int cpn = m.cores_per_node();
  const int nodes_used = (p + cpn - 1) / cpn;

  // socket_slot[k] = node-local core used by the k-th rank placed on a node.
  std::vector<int> socket_slot(cpn);
  const auto& shape = m.shape();
  for (int k = 0; k < cpn; ++k) {
    if (spec.socket == SocketOrder::Bunch) {
      socket_slot[k] = k;  // cores are numbered socket-major already
    } else {
      const int socket = k % shape.sockets;
      const int within = k / shape.sockets;
      socket_slot[k] = socket * shape.cores_per_socket + within;
    }
  }

  std::vector<CoreId> layout(p);
  for (Rank r = 0; r < p; ++r) {
    NodeId node;
    int k;  // how many ranks were placed on `node` before this one
    if (spec.node == NodeOrder::Block) {
      node = r / cpn;
      k = r % cpn;
    } else {
      node = r % nodes_used;
      k = r / nodes_used;
    }
    TARR_REQUIRE(k < cpn, "make_layout: node overfilled (cyclic remainder)");
    layout[r] = m.core_id(node, socket_slot[k]);
  }
  return layout;
}

}  // namespace tarr::simmpi
