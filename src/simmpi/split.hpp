#pragma once

#include <vector>

#include "simmpi/communicator.hpp"

/// \file split.hpp
/// MPI_Comm_split-style sub-communicator construction.  The hierarchical
/// collectives operate on rank groups internally; this module exposes the
/// same notion as a public API so applications can build node-local and
/// leader communicators explicitly (the paper's phase-1/2/3 structure).

namespace tarr::simmpi {

/// Result of a split: one communicator per color, plus where each parent
/// rank landed.
struct SplitResult {
  /// Sub-communicators in ascending color order.
  std::vector<Communicator> comms;
  /// For each parent rank: index into `comms`.
  std::vector<int> comm_of_rank;
  /// For each parent rank: its rank within its sub-communicator.
  std::vector<Rank> rank_in_comm;
};

/// Split `comm` by color (MPI_Comm_split with key = parent rank): ranks
/// with equal color form one sub-communicator, ordered by parent rank.
/// Colors may be any non-negative integers; every rank must have one.
SplitResult split_by_color(const Communicator& comm,
                           const std::vector<int>& colors);

/// Split into per-node communicators (color = hosting node).
SplitResult split_by_node(const Communicator& comm);

/// The leader communicator: the lowest rank of each node, ordered by
/// parent rank (the paper's phase-2 participants).
Communicator leaders_comm(const Communicator& comm);

}  // namespace tarr::simmpi
