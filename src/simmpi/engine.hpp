#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/stage_verifier.hpp"
#include "common/rng.hpp"
#include "simmpi/communicator.hpp"
#include "simmpi/costmodel.hpp"
#include "simmpi/transient.hpp"
#include "trace/sink.hpp"

/// \file engine.hpp
/// Stage-synchronous execution engine for collective schedules.
///
/// Collectives drive the engine imperatively: begin_stage(), a batch of
/// copy() calls describing every transfer that happens concurrently in that
/// algorithm stage, end_stage().  The engine supports two modes:
///
///  * Timed — no payload is moved; each stage is priced by the contention-
///    aware CostModel.  Used by the benchmarks at the paper's 4096-process
///    scale.
///  * Data — every process owns a block buffer and copies genuinely move
///    block *tags* between buffers with simultaneous-exchange semantics
///    (all reads in a stage observe the pre-stage state).  Used by the test
///    suite to verify algorithm correctness and the §V-B output-order
///    mechanisms end to end.  Time is accounted identically in both modes.
///
/// A "block" is the natural data unit of the collective (for allgather: one
/// rank's contribution of block_bytes bytes).

namespace tarr::simmpi {

/// Execution mode of an Engine.
enum class ExecMode { Timed, Data };

/// Tag value of an untouched block.
inline constexpr std::uint32_t kEmptyTag = 0xffffffffu;

/// See file comment.
class Engine {
 public:
  /// `buf_blocks` is the per-process buffer length in blocks; `block_bytes`
  /// the payload size of one block.  The communicator must outlive the
  /// engine.
  Engine(const Communicator& comm, const CostConfig& cfg, ExecMode mode,
         Bytes block_bytes, int buf_blocks);

  const Communicator& comm() const { return *comm_; }
  ExecMode mode() const { return mode_; }
  Bytes block_bytes() const { return block_bytes_; }
  int buf_blocks() const { return buf_blocks_; }

  /// Write a tag into a block of a rank's buffer (Data mode; no-op in Timed).
  void set_block(Rank r, int off, std::uint32_t tag);

  /// Read a block tag (Data mode only).
  std::uint32_t block(Rank r, int off) const;

  /// Arm transient-fault injection (see simmpi/transient.hpp): every remote
  /// transfer is subjected to seeded drop/corrupt draws and failed attempts
  /// are priced as retransmissions plus timeout backoff.  Must be called
  /// before the first stage; validates the config.  A config whose
  /// probabilities are all zero leaves the engine on the exact fault-free
  /// path (bit-identical costs and payloads).
  void set_transient_faults(const TransientFaultConfig& cfg);

  /// True when a fault config with non-zero probabilities is armed.
  bool transient_faults_enabled() const { return fault_cfg_.has_value(); }

  /// Counters of the armed fault model (all zero when disabled).
  const TransientFaultStats& transient_stats() const { return fault_stats_; }

  /// Open a stage of concurrent transfers.
  void begin_stage();

  /// Copy `nblocks` blocks from src's buffer at src_off to dst's buffer at
  /// dst_off.  src == dst performs (and prices) a local memory copy.  All
  /// copies of a stage read pre-stage buffer contents.
  void copy(Rank src, int src_off, Rank dst, int dst_off, int nblocks);

  /// Like copy(), but the destination blocks are *combined* (XOR of tags —
  /// a commutative, associative stand-in for an MPI reduction op) with the
  /// incoming payload instead of overwritten.  Pricing is identical to
  /// copy().  Used by the allreduce extension.
  void combine(Rank src, int src_off, Rank dst, int dst_off, int nblocks);

  /// Close the stage: price it, apply the data moves, add to total.
  /// Returns the stage cost.
  Usec end_stage();

  /// Account `extra` additional executions of the stage just ended (Timed
  /// mode only — used to compress the ring's p-1 identical stages).
  void repeat_last_stage(int extra);

  /// Apply the same block permutation to every rank's buffer
  /// (new[dst_of_block[b]] = old[b]) and charge one concurrent local-shuffle
  /// cost for the blocks that actually move.  This is §V-B "memory shuffling
  /// at the end".
  void local_permute_all(const std::vector<int>& dst_of_block);

  /// Add raw simulated time (used by the application model for compute
  /// phases and by callers that account one-time overheads).  `what` labels
  /// the increment in the trace (a TimeEvent is emitted when a sink is
  /// installed and t != 0, so trace consumers can reconstruct the engine
  /// total exactly).
  void add_time(Usec t, const char* what = "compute");

  /// Total simulated time so far.
  Usec total() const { return total_; }

  /// Congestion statistics of the stage most recently ended.
  const CostModel::StageStats& last_stage_stats() const {
    return cost_.last_stage_stats();
  }

  /// Peak per-cable network link load (bytes) seen in any stage so far.
  double peak_link_bytes() const { return peak_link_bytes_; }

  /// Schedule introspection: invoked after every end_stage() with the
  /// 0-based stage index, the number of transfers the stage carried, and
  /// its cost.  Used by tests and tools to inspect the schedules the
  /// collective algorithms emit.
  using StageObserver = std::function<void(int stage, int transfers, Usec cost)>;
  void set_stage_observer(StageObserver observer) {
    observer_ = std::move(observer);
  }

  /// Number of stages executed so far.
  int stages_executed() const { return stages_executed_; }

  /// Install a trace sink (tarr::trace): every stage, transfer (with channel
  /// class, contention factor and retransmission attempts), link/QPI load
  /// sample and collective phase is emitted through it.  nullptr (the
  /// default) disables emission — the engine then does no tracing work
  /// beyond one pointer check per event site, and all simulated costs and
  /// payloads are bit-identical to a sink-free run.  Must be called outside
  /// a stage; enables the cost model's detail capture while installed.
  void set_trace_sink(trace::TraceSink* sink);
  trace::TraceSink* trace_sink() const { return sink_; }

  /// Open/close a named phase span covering the stages executed in between
  /// (collective phases, §V-B shuffles).  Nestable; no-ops without a sink.
  void trace_phase_begin(std::string name);
  void trace_phase_end();

  /// RAII phase span.
  class PhaseScope {
   public:
    PhaseScope(Engine& eng, const char* name) : eng_(&eng) {
      eng_->trace_phase_begin(name);
    }
    ~PhaseScope() { eng_->trace_phase_end(); }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    Engine* eng_;
  };

  /// Transfer introspection: invoked for every copy()/combine() between
  /// distinct ranks, with the endpoint cores and the byte count.  Local
  /// copies (src == dst) are not reported.  Used by property tests (e.g.
  /// data-conservation invariants) and analysis tools.
  using TransferObserver =
      std::function<void(CoreId src, CoreId dst, Bytes bytes)>;
  void set_transfer_observer(TransferObserver observer) {
    transfer_observer_ = std::move(observer);
  }

 private:
  struct PendingCopy {
    Rank src, dst;
    int src_off, dst_off, nblocks;
    bool combining;
    std::vector<std::uint32_t> payload;  // captured at copy() time (Data)
  };

  void enqueue(Rank src, int src_off, Rank dst, int dst_off, int nblocks,
               bool combining);

  /// One logical remote transfer of the open stage, as seen by the trace
  /// layer: `record` indexes the transfer's *first* attempt in the cost
  /// model's StageDetail (attempts are submitted consecutively).
  struct TraceXfer {
    Rank src, dst;
    Bytes bytes;
    int attempts;
    int record;
  };

  void emit_stage_trace(Usec stage_start, Usec stage_cost, Usec retry_wait);

  /// Draw the attempt sequence for one remote transfer; returns the number
  /// of attempts (>= 1) and accumulates the stage's drop-detection wait.
  int draw_attempts(Bytes bytes);

  const Communicator* comm_;
  CostModel cost_;
  ExecMode mode_;
  Bytes block_bytes_;
  int buf_blocks_;
  std::vector<std::vector<std::uint32_t>> buf_;  // Data mode only
  std::vector<PendingCopy> pending_;
  std::vector<Usec> local_bytes_per_rank_scratch_;
  bool stage_open_ = false;
  // Transient-fault injection (simmpi/transient.hpp); disengaged unless a
  // config with non-zero probabilities was armed.
  std::optional<TransientFaultConfig> fault_cfg_;
  Rng fault_rng_;
  TransientFaultStats fault_stats_;
  Usec stage_retry_wait_ = 0.0;
  Usec last_stage_cost_ = 0.0;
  Usec last_stage_retry_wait_ = 0.0;
  Usec total_ = 0.0;
  double peak_link_bytes_ = 0.0;
  int stages_executed_ = 0;
  int last_stage_transfers_ = 0;
  StageObserver observer_;
  TransferObserver transfer_observer_;
  // Trace emission (tarr::trace); all fields idle when sink_ is null.
  trace::TraceSink* sink_ = nullptr;
  std::vector<TraceXfer> stage_xfers_;
  std::vector<std::pair<std::string, Usec>> phase_stack_;
  // Slow-check tier: shadows the stage protocol and rejects malformed
  // schedules (see check/stage_verifier.hpp).  Null unless the build has
  // TARR_SLOW_CHECKS=ON.
  std::unique_ptr<check::StageVerifier> verifier_;
};

}  // namespace tarr::simmpi
