#include "simmpi/costmodel.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "prof/profiler.hpp"

namespace tarr::simmpi {

CostModel::CostModel(const topology::Machine& m, const CostConfig& cfg)
    : machine_(&m), cfg_(cfg) {
  link_bytes_.assign(static_cast<std::size_t>(m.network().num_links()) * 2,
                     0.0);
  qpi_bytes_.assign(static_cast<std::size_t>(m.num_nodes()) * 2, 0.0);
  socket_bytes_.assign(
      static_cast<std::size_t>(m.num_nodes()) * m.shape().sockets, 0.0);
}

void CostModel::begin_stage() {
  TARR_REQUIRE(!stage_open_, "begin_stage: previous stage still open");
  stage_open_ = true;
}

double& CostModel::link_load(LinkId l, int dir) {
  return link_bytes_[static_cast<std::size_t>(l) * 2 + dir];
}

double& CostModel::qpi_load(NodeId n, int dir) {
  return qpi_bytes_[static_cast<std::size_t>(n) * 2 + dir];
}

double& CostModel::socket_load(NodeId n, SocketId s) {
  return socket_bytes_[static_cast<std::size_t>(n) *
                           machine_->shape().sockets +
                       s];
}

void CostModel::add_transfer(CoreId src, CoreId dst, Bytes bytes) {
  TARR_REQUIRE(stage_open_, "add_transfer: no open stage");
  TARR_REQUIRE(src != dst, "add_transfer: src == dst (use local_copy_cost)");
  TARR_REQUIRE(bytes >= 0, "add_transfer: negative byte count");
  pending_.push_back(Pending{src, dst, bytes});
  if (!cfg_.model_contention) return;

  const auto& m = *machine_;
  const NodeId na = m.node_of_core(src);
  const NodeId nb = m.node_of_core(dst);
  const double b = static_cast<double>(bytes);
  if (na == nb) {
    const SocketId sa = m.socket_of_core(src);
    const SocketId sb = m.socket_of_core(dst);
    auto touch_socket = [&](SocketId s, double load) {
      double& slot = socket_load(na, s);
      if (slot == 0.0)
        touched_sockets_.push_back(na * m.shape().sockets + s);
      slot += load;
    };
    if (sa == sb) {
      touch_socket(sa, b);  // full copy served by one memory subsystem
    } else {
      touch_socket(sa, 0.5 * b);  // read side
      touch_socket(sb, 0.5 * b);  // write side
      const int dir = sa < sb ? 0 : 1;
      if (qpi_load(na, dir) == 0.0) touched_qpi_.push_back(na * 2 + dir);
      qpi_load(na, dir) += b;
    }
    return;
  }
  const auto& net = m.network();
  NetVertexId at = net.host_vertex(na);
  for (LinkId l : m.router().path(na, nb)) {
    const int dir = net.link(l).a == at ? 0 : 1;
    if (link_load(l, dir) == 0.0) touched_links_.push_back(l * 2 + dir);
    link_load(l, dir) += b;
    at = net.other_end(l, at);
  }
}

Usec CostModel::finish_stage() {
  TARR_REQUIRE(stage_open_, "finish_stage: no open stage");
  const auto& m = *machine_;
  const auto& net = m.network();

  if (capture_details_) {
    // Reuse the detail vectors' capacity across stages (clear, don't
    // reassign a fresh StageDetail): with capture on, a long run would
    // otherwise reallocate all three vectors every single stage.
    detail_.transfers.clear();
    detail_.link_loads.clear();
    detail_.qpi_loads.clear();
    detail_.transfers.reserve(pending_.size());
  }

  Usec stage = 0.0;
  double priced_bytes = 0.0;
  for (const Pending& t : pending_) {
    priced_bytes += static_cast<double>(t.bytes);
    const NodeId na = m.node_of_core(t.src);
    const NodeId nb = m.node_of_core(t.dst);
    const double own = static_cast<double>(t.bytes);
    Usec cost;
    Usec uncontended = 0.0;  ///< cost at contention factor 1.0
    trace::Channel channel = trace::Channel::Network;
    double contention = 1.0;  ///< slowdown over the uncontended floor
    if (na == nb) {
      const SocketId sa = m.socket_of_core(t.src);
      const SocketId sb = m.socket_of_core(t.dst);
      // Per-pair floor; contention can only slow a transfer down from it.
      double bw_time = own * cfg_.beta_shm_pair;
      if (sa == sb) {
        const bool same_complex =
            m.complex_of_core(t.src) == m.complex_of_core(t.dst);
        if (same_complex) bw_time = own * cfg_.beta_shm_complex_pair;
        const double floor = bw_time;
        if (cfg_.model_contention) {
          bw_time = std::max(bw_time,
                             socket_load(na, sa) * cfg_.beta_mem_socket);
        }
        if (floor > 0.0) contention = bw_time / floor;
        channel = same_complex ? trace::Channel::SameComplex
                               : trace::Channel::SameSocket;
        const Usec alpha =
            same_complex ? cfg_.alpha_shm_complex : cfg_.alpha_shm_socket;
        uncontended = alpha + floor;
        cost = alpha + bw_time;
      } else {
        const double floor = bw_time;
        if (cfg_.model_contention) {
          const double mem =
              std::max(socket_load(na, sa), socket_load(na, sb));
          const double qpi = qpi_load(na, sa < sb ? 0 : 1);
          bw_time = std::max({bw_time, mem * cfg_.beta_mem_socket,
                              qpi * cfg_.beta_qpi});
        }
        if (floor > 0.0) contention = bw_time / floor;
        channel = trace::Channel::CrossSocket;
        uncontended = cfg_.alpha_shm_cross + floor;
        cost = cfg_.alpha_shm_cross + bw_time;
      }
    } else {
      const auto path = m.router().path(na, nb);
      double bottleneck = own;
      if (cfg_.model_contention) {
        NetVertexId at = net.host_vertex(na);
        for (LinkId l : path) {
          const int dir = net.link(l).a == at ? 0 : 1;
          bottleneck = std::max(
              bottleneck, link_load(l, dir) / net.link(l).capacity);
          at = net.other_end(l, at);
        }
      }
      if (own > 0.0) contention = bottleneck / own;
      const Usec alpha = cfg_.alpha_net +
                         cfg_.alpha_hop * static_cast<double>(path.size());
      uncontended = alpha + own * cfg_.beta_net;
      cost = alpha + bottleneck * cfg_.beta_net;
    }
    if (capture_details_) {
      detail_.transfers.push_back(TransferRecord{
          t.src, t.dst, t.bytes, cost, channel, contention, uncontended});
    }
    stage = std::max(stage, cost);
  }

  if (prof::Profiler* p = prof::thread_profiler()) {
    p->count("cost.stages_priced", 1.0);
    p->count("cost.transfers_priced", static_cast<double>(pending_.size()));
    p->count("cost.bytes_priced", priced_bytes);
  }

  last_stats_ = StageStats{};
  last_stats_.transfers = static_cast<int>(pending_.size());
  for (int idx : touched_links_) {
    const auto& link = net.link(idx / 2);
    last_stats_.max_link_bytes = std::max(
        last_stats_.max_link_bytes, link_bytes_[idx] / link.capacity);
  }
  for (int idx : touched_qpi_)
    last_stats_.max_qpi_bytes =
        std::max(last_stats_.max_qpi_bytes, qpi_bytes_[idx]);

  if (capture_details_) {
    // Snapshot the directed resource loads before the touched-list reset
    // wipes them.  Touched-list order is the (deterministic) first-touch
    // order of the stage's transfers.
    detail_.link_loads.reserve(touched_links_.size());
    for (int idx : touched_links_) {
      detail_.link_loads.push_back(LinkLoad{
          idx / 2, idx % 2, link_bytes_[idx],
          link_bytes_[idx] / net.link(idx / 2).capacity});
    }
    detail_.qpi_loads.reserve(touched_qpi_.size());
    for (int idx : touched_qpi_)
      detail_.qpi_loads.push_back(QpiLoad{idx / 2, idx % 2, qpi_bytes_[idx]});
  }

  pending_.clear();
  for (int idx : touched_links_) link_bytes_[idx] = 0.0;
  for (int idx : touched_qpi_) qpi_bytes_[idx] = 0.0;
  for (int idx : touched_sockets_) socket_bytes_[idx] = 0.0;
  touched_links_.clear();
  touched_qpi_.clear();
  touched_sockets_.clear();
  // The touched-list reset must leave no residual load behind — a leak here
  // silently inflates contention in every later stage.  Full sweep of all
  // three load arrays, so only in TARR_SLOW_CHECKS builds.
  TARR_CHECK_SLOW(
      std::all_of(link_bytes_.begin(), link_bytes_.end(),
                  [](double b) { return b == 0.0; }) &&
          std::all_of(qpi_bytes_.begin(), qpi_bytes_.end(),
                      [](double b) { return b == 0.0; }) &&
          std::all_of(socket_bytes_.begin(), socket_bytes_.end(),
                      [](double b) { return b == 0.0; }),
      "finish_stage: residual load after touched-list reset");
  stage_open_ = false;
  return stage;
}

Usec CostModel::local_copy_cost(Bytes bytes) const {
  if (bytes <= 0) return 0.0;
  return cfg_.alpha_mem + static_cast<double>(bytes) * cfg_.beta_mem;
}

}  // namespace tarr::simmpi
