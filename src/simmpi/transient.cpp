#include "simmpi/transient.hpp"

#include <sstream>

#include "common/error.hpp"

namespace tarr::simmpi {

void validate(const TransientFaultConfig& cfg) {
  TARR_REQUIRE(cfg.drop_prob >= 0.0 && cfg.drop_prob <= 1.0,
               "TransientFaultConfig: drop_prob must be in [0, 1]");
  TARR_REQUIRE(cfg.corrupt_prob >= 0.0 && cfg.corrupt_prob <= 1.0,
               "TransientFaultConfig: corrupt_prob must be in [0, 1]");
  TARR_REQUIRE(cfg.drop_prob + cfg.corrupt_prob <= 1.0,
               "TransientFaultConfig: drop_prob + corrupt_prob must be <= 1");
  TARR_REQUIRE(cfg.max_attempts >= 1,
               "TransientFaultConfig: max_attempts must be >= 1");
  TARR_REQUIRE(cfg.retry_timeout >= 0.0,
               "TransientFaultConfig: retry_timeout must be >= 0");
  TARR_REQUIRE(cfg.backoff >= 1.0,
               "TransientFaultConfig: backoff must be >= 1");
}

std::string TransientFaultStats::describe() const {
  std::ostringstream os;
  os << "transient faults: " << attempts << " attempts, " << drops
     << " drops, " << corruptions << " corruptions, " << retransmissions
     << " retransmissions (" << retransmitted_bytes << " bytes), "
     << timeout_wait << " us timeout wait";
  return os.str();
}

}  // namespace tarr::simmpi
