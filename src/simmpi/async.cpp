#include "simmpi/async.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace tarr::simmpi {

AsyncEngine::AsyncEngine(const Communicator& comm, const CostConfig& cfg,
                         Usec send_overhead)
    : comm_(&comm),
      cfg_(cfg),
      send_overhead_(send_overhead),
      clock_(comm.size(), 0.0) {
  TARR_REQUIRE(send_overhead >= 0.0,
               "AsyncEngine: negative send overhead");
}

void AsyncEngine::compute(Rank rank, Usec duration) {
  TARR_REQUIRE(rank >= 0 && rank < comm_->size(),
               "compute: rank out of range");
  TARR_REQUIRE(duration >= 0.0, "compute: negative duration");
  clock_[rank] += duration;
}

Usec AsyncEngine::channel_cost(CoreId src, CoreId dst, Bytes bytes) const {
  const auto& m = comm_->machine();
  const NodeId na = m.node_of_core(src);
  const NodeId nb = m.node_of_core(dst);
  const double b = static_cast<double>(bytes);
  if (na == nb) {
    const SocketId sa = m.socket_of_core(src);
    const SocketId sb = m.socket_of_core(dst);
    if (sa == sb) {
      const bool same_complex =
          m.complex_of_core(src) == m.complex_of_core(dst);
      return (same_complex ? cfg_.alpha_shm_complex : cfg_.alpha_shm_socket) +
             b * (same_complex ? cfg_.beta_shm_complex_pair
                               : cfg_.beta_shm_pair);
    }
    return cfg_.alpha_shm_cross + b * cfg_.beta_shm_pair;
  }
  const int hops = m.router().hops(na, nb);
  return cfg_.alpha_net + cfg_.alpha_hop * hops + b * cfg_.beta_net;
}

Usec AsyncEngine::isend(Rank src, Rank dst, Bytes bytes) {
  TARR_REQUIRE(src >= 0 && src < comm_->size() && dst >= 0 &&
                   dst < comm_->size(),
               "isend: rank out of range");
  TARR_REQUIRE(src != dst, "isend: src == dst");
  TARR_REQUIRE(bytes >= 0, "isend: negative size");

  // The sender serializes its own injections: it is busy for the overhead
  // plus the serialization of the payload at the channel rate.
  const Usec cost = channel_cost(comm_->core_of(src), comm_->core_of(dst),
                                 bytes);
  const Usec depart = clock_[src];
  clock_[src] = depart + send_overhead_ +
                static_cast<double>(bytes) *
                    (comm_->node_of(src) == comm_->node_of(dst)
                         ? cfg_.beta_shm_pair
                         : cfg_.beta_net);
  ++messages_;
  return depart + cost;
}

void AsyncEngine::recv(Rank rank, Usec arrival) {
  TARR_REQUIRE(rank >= 0 && rank < comm_->size(),
               "recv: rank out of range");
  clock_[rank] = std::max(clock_[rank], arrival);
}

Usec AsyncEngine::p2p(Rank src, Rank dst, Bytes bytes) {
  const Usec arrive = isend(src, dst, bytes);
  recv(dst, arrive);
  return arrive;
}

Usec AsyncEngine::clock(Rank rank) const {
  TARR_REQUIRE(rank >= 0 && rank < comm_->size(),
               "clock: rank out of range");
  return clock_[rank];
}

Usec AsyncEngine::makespan() const {
  return *std::max_element(clock_.begin(), clock_.end());
}

Usec run_allgather_ring_async(AsyncEngine& eng, Bytes msg) {
  const int p = eng.comm().size();
  const Usec before = eng.makespan();
  if (p < 2) return 0.0;
  // Each rank forwards the block it last received.  All of a step's sends
  // depart based on pre-step clocks (they carry data received in EARLIER
  // steps); the receives then advance the clocks for the next step.  True
  // pipelining falls out of the per-rank clocks.
  std::vector<Usec> arrival(p);
  for (int s = 0; s < p - 1; ++s) {
    for (Rank j = 0; j < p; ++j) arrival[(j + 1) % p] = eng.isend(j, (j + 1) % p, msg);
    for (Rank j = 0; j < p; ++j) eng.recv(j, arrival[j]);
  }
  return eng.makespan() - before;
}

Usec run_allgather_rd_async(AsyncEngine& eng, Bytes msg) {
  const int p = eng.comm().size();
  TARR_REQUIRE(is_pow2(p), "run_allgather_rd_async: needs 2^k ranks");
  const Usec before = eng.makespan();
  for (int dist = 1; dist < p; dist <<= 1) {
    // Pairwise exchange: both directions depart concurrently (isend uses
    // each sender's own clock), then each partner waits for the other's
    // data before the next stage.
    std::vector<Usec> arrival(p, 0.0);
    for (Rank j = 0; j < p; ++j)
      arrival[j ^ dist] = eng.isend(j, j ^ dist, msg * dist);
    for (Rank j = 0; j < p; ++j) eng.recv(j, arrival[j]);
  }
  return eng.makespan() - before;
}

Usec run_bcast_binomial_async(AsyncEngine& eng, Bytes msg) {
  const int p = eng.comm().size();
  const Usec before = eng.makespan();
  if (p < 2) return 0.0;
  for (int dist = static_cast<int>(ceil_pow2(p) / 2); dist >= 1; dist /= 2) {
    for (Rank t = 0; t + dist < p; t += 2 * dist) {
      const Usec arrive = eng.p2p(t, t + dist, msg);
      eng.wait_until(t + dist, arrive);
    }
  }
  return eng.makespan() - before;
}

}  // namespace tarr::simmpi
