#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

/// \file transient.hpp
/// Transient-fault model for the simulation engine.
///
/// Real fabrics drop and corrupt packets; reliable transports (IB RC, TCP)
/// hide that behind retransmission, so a collective never sees wrong data —
/// it sees *time*.  The engine reproduces exactly that contract: every
/// remote transfer is subjected to seeded per-attempt drop/corrupt draws,
/// failed attempts are retried with exponential timeout backoff, and the
/// price of every attempt is charged to the stage through the normal
/// contention-aware cost model (a retransmission loads the same links again).
/// Payloads are never corrupted in the delivered result — a corrupt attempt
/// models a checksum-detected NACK-and-resend, a drop models a timeout —
/// so Data-mode outputs, the StageVerifier invariants and the
/// CollectiveAuditor contracts all hold unchanged under faults, and Timed
/// and Data modes stay pricing-identical for identical schedules.
///
/// With the fault model disabled (the default) the engine takes the exact
/// fault-free code path: costs and payloads are bit-identical to a build
/// that never heard of this header.

namespace tarr::simmpi {

/// Per-transfer transient-fault parameters.  Probabilities are per *attempt*;
/// a transfer keeps retrying until an attempt succeeds or `max_attempts` is
/// exhausted (which throws — the link is effectively dead and should be
/// failed through fault::FaultMask instead).
struct TransientFaultConfig {
  double drop_prob = 0.0;     ///< attempt lost; detected by timeout
  double corrupt_prob = 0.0;  ///< attempt delivered corrupt; NACKed instantly
  int max_attempts = 16;      ///< attempts before declaring the link dead
  Usec retry_timeout = 50.0;  ///< first drop-detection timeout
  double backoff = 2.0;       ///< timeout multiplier per successive drop
  std::uint64_t seed = 0xfa1755eedull;  ///< per-engine draw sequence seed

  /// True when any fault can actually fire; the engine skips the model (and
  /// consumes no randomness) otherwise.
  bool enabled() const { return drop_prob > 0.0 || corrupt_prob > 0.0; }
};

/// Validate ranges (probabilities in [0,1] with drop+corrupt <= 1,
/// max_attempts >= 1, non-negative timeout, backoff >= 1).  Throws
/// tarr::Error naming the offending field.
void validate(const TransientFaultConfig& cfg);

/// Counters accumulated by an engine running with transient faults.
struct TransientFaultStats {
  long long attempts = 0;         ///< total attempts, successful ones included
  long long drops = 0;            ///< attempts lost to a drop
  long long corruptions = 0;      ///< attempts delivered corrupt and NACKed
  long long retransmissions = 0;  ///< extra attempts (= drops + corruptions)
  Bytes retransmitted_bytes = 0;  ///< bytes of the extra attempts
  Usec timeout_wait = 0.0;        ///< total drop-detection wait accumulated

  std::string describe() const;
};

}  // namespace tarr::simmpi
