#pragma once

#include <vector>

#include "simmpi/communicator.hpp"
#include "topology/machine.hpp"
#include "trace/sink.hpp"

/// \file costmodel.hpp
/// Contention-aware communication cost model.
///
/// Transfers are charged per communication channel class, mirroring the
/// heterogeneity the paper exploits:
///   * intra node  — shared-memory copies bounded by each socket's memory
///                   bandwidth (a same-socket copy loads its socket with
///                   read+write traffic; a cross-socket copy loads both
///                   sockets and additionally the per-direction QPI link);
///   * inter node  — network, alpha + per-switch-hop latency + bytes over
///                   the bottleneck link's *aggregate* stage load divided by
///                   link capacity (this produces the 5:1-blocking
///                   congestion effects of Figs 3-4).
///
/// The model is stage-synchronous: transfers submitted between begin_stage()
/// and finish_stage() are considered concurrent, and the stage costs the
/// slowest of them.

namespace tarr::simmpi {

/// Channel parameters.  Units: microseconds and bytes (beta = us per byte).
struct CostConfig {
  double alpha_shm_socket = 0.3;     ///< same-socket latency
  double alpha_shm_cross = 0.6;      ///< cross-socket (QPI) latency

  /// Same-L3-complex channel (deep NodeShapes): latency and per-pair copy
  /// rate.  Defaults equal the socket class, so flat-socket machines (the
  /// paper's) are unaffected; deep-SMP studies can set a faster shared-L3
  /// path (see bench/ext_bigsmp).
  double alpha_shm_complex = 0.3;
  double beta_shm_complex_pair = 1.0 / 6500.0;

  /// Peak point-to-point shared-memory copy rate of one process pair
  /// (~6.5 GB/s), the per-transfer floor for both intra-node classes: on the
  /// paper's machine a lone cross-socket copy streams about as fast as a
  /// lone same-socket copy (both are memory-bound; QPI has headroom).
  double beta_shm_pair = 1.0 / 6500.0;

  /// Per-socket memory-subsystem service rate (~6.5 GB/s of copy traffic).
  /// A same-socket transfer loads its socket with its full byte count; a
  /// cross-socket transfer loads each of the two sockets with half (read on
  /// one side, write on the other).
  double beta_mem_socket = 1.0 / 6500.0;

  /// QPI per-direction bandwidth (~12.8 GB/s on the paper's QPI 6.4 GT/s
  /// nodes), shared by the cross-socket transfers of a node.
  double beta_qpi = 1.0 / 12800.0;

  double alpha_net = 1.8;            ///< network injection latency
  double alpha_hop = 0.1;            ///< per switch-to-switch hop
  double beta_net = 1.0 / 3200.0;    ///< per-cable QDR IB bandwidth

  double alpha_mem = 0.2;            ///< local memcpy latency
  double beta_mem = 1.0 / 6500.0;    ///< local memcpy bandwidth

  /// When false, transfers never share bandwidth (hop-count-only model —
  /// the ablation knob of bench/abl_contention).
  bool model_contention = true;
};

/// Stage-synchronous cost evaluator bound to one machine.
class CostModel {
 public:
  CostModel(const topology::Machine& m, const CostConfig& cfg);

  /// Start a new set of concurrent transfers.
  void begin_stage();

  /// Submit one transfer between cores (src != dst) of `bytes` bytes.
  void add_transfer(CoreId src, CoreId dst, Bytes bytes);

  /// Close the stage: returns its cost (max over the submitted transfers,
  /// with contention applied).  Resets for the next stage.
  Usec finish_stage();

  /// Congestion introspection for the stage most recently finished.
  struct StageStats {
    int transfers = 0;            ///< transfers submitted
    double max_link_bytes = 0.0;  ///< peak directed per-cable network load
    double max_qpi_bytes = 0.0;   ///< peak per-direction QPI load
  };
  const StageStats& last_stage_stats() const { return last_stats_; }

  /// Full per-transfer and per-resource breakdown of one stage — the data
  /// tarr::trace turns into transfer spans and load counter tracks.  Opt-in
  /// because it allocates per stage; with capture off, finish_stage() does
  /// no extra work beyond one branch.
  struct TransferRecord {
    CoreId src = 0;
    CoreId dst = 0;
    Bytes bytes = 0;
    Usec cost = 0.0;  ///< this transfer's priced cost within the stage
    trace::Channel channel = trace::Channel::Network;
    double contention = 1.0;  ///< cost inflation over the uncontended floor
    /// Cost at contention 1.0 (latency terms + per-pair bandwidth floor);
    /// cost - uncontended is the stall resource sharing inflicted.
    Usec uncontended = 0.0;
  };
  struct LinkLoad {
    LinkId link = 0;
    int dir = 0;
    double bytes = 0.0;     ///< aggregate directed byte load this stage
    double relative = 0.0;  ///< bytes / link capacity (the Fig 4 heat)
  };
  struct QpiLoad {
    NodeId node = 0;
    int dir = 0;
    double bytes = 0.0;
  };
  struct StageDetail {
    std::vector<TransferRecord> transfers;  ///< submission order
    std::vector<LinkLoad> link_loads;       ///< every directed link touched
    std::vector<QpiLoad> qpi_loads;         ///< every QPI direction touched
  };

  /// Enable/disable detail capture (off by default).
  void set_capture_details(bool on) { capture_details_ = on; }
  bool capture_details() const { return capture_details_; }

  /// Detail of the stage most recently finished; empty unless capture was
  /// enabled before that finish_stage() call.
  const StageDetail& last_stage_detail() const { return detail_; }

  /// Cost of a node-local memory copy of `bytes` bytes.
  Usec local_copy_cost(Bytes bytes) const;

  const CostConfig& config() const { return cfg_; }

 private:
  struct Pending {
    CoreId src;
    CoreId dst;
    Bytes bytes;
  };

  double& link_load(LinkId l, int dir);
  double& qpi_load(NodeId n, int dir);
  double& socket_load(NodeId n, SocketId s);

  const topology::Machine* machine_;
  CostConfig cfg_;
  std::vector<Pending> pending_;
  /// Directed per-link byte loads (2 slots per link), per-direction QPI
  /// loads, per-socket memory loads, and their touched sets for O(stage)
  /// clearing.
  std::vector<double> link_bytes_;
  std::vector<double> qpi_bytes_;
  std::vector<double> socket_bytes_;
  std::vector<int> touched_links_;
  std::vector<int> touched_qpi_;
  std::vector<int> touched_sockets_;
  StageStats last_stats_;
  StageDetail detail_;
  bool capture_details_ = false;
  bool stage_open_ = false;
};

}  // namespace tarr::simmpi
