#include "simmpi/split.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace tarr::simmpi {

SplitResult split_by_color(const Communicator& comm,
                           const std::vector<int>& colors) {
  TARR_REQUIRE(static_cast<int>(colors.size()) == comm.size(),
               "split_by_color: one color per rank required");
  std::map<int, std::vector<Rank>> groups;
  for (Rank r = 0; r < comm.size(); ++r) {
    TARR_REQUIRE(colors[r] >= 0, "split_by_color: colors must be >= 0");
    groups[colors[r]].push_back(r);
  }

  SplitResult res;
  res.comm_of_rank.assign(comm.size(), -1);
  res.rank_in_comm.assign(comm.size(), kNoRank);
  res.comms.reserve(groups.size());
  int idx = 0;
  for (const auto& [color, ranks] : groups) {
    std::vector<CoreId> cores;
    cores.reserve(ranks.size());
    for (Rank r : ranks) {
      res.comm_of_rank[r] = idx;
      res.rank_in_comm[r] = static_cast<Rank>(cores.size());
      cores.push_back(comm.core_of(r));
    }
    res.comms.emplace_back(comm.machine(), std::move(cores));
    ++idx;
  }
  return res;
}

SplitResult split_by_node(const Communicator& comm) {
  std::vector<int> colors(comm.size());
  for (Rank r = 0; r < comm.size(); ++r) colors[r] = comm.node_of(r);
  return split_by_color(comm, colors);
}

Communicator leaders_comm(const Communicator& comm) {
  std::map<NodeId, Rank> leader;  // lowest rank per node
  for (Rank r = 0; r < comm.size(); ++r) {
    const NodeId n = comm.node_of(r);
    auto it = leader.find(n);
    if (it == leader.end() || r < it->second) leader[n] = r;
  }
  std::vector<Rank> ranks;
  ranks.reserve(leader.size());
  for (const auto& [node, r] : leader) ranks.push_back(r);
  std::sort(ranks.begin(), ranks.end());
  std::vector<CoreId> cores;
  cores.reserve(ranks.size());
  for (Rank r : ranks) cores.push_back(comm.core_of(r));
  return Communicator(comm.machine(), std::move(cores));
}

}  // namespace tarr::simmpi
