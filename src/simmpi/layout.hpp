#pragma once

#include <string>
#include <vector>

#include "topology/machine.hpp"

/// \file layout.hpp
/// Initial process-to-core layouts.
///
/// The paper evaluates four well-known initial mappings produced by resource
/// managers (SLURM/Hydra options): the node-level policy is *block* (fill a
/// node before moving on) or *cyclic* (round-robin ranks over nodes), and the
/// socket-level policy inside each node is *bunch* (fill a socket first) or
/// *scatter* (round-robin over sockets).

namespace tarr::simmpi {

/// Distribution of consecutive ranks across nodes.
enum class NodeOrder { Block, Cyclic };

/// Binding of a node's ranks to its sockets.
enum class SocketOrder { Bunch, Scatter };

/// A (node policy, socket policy) pair, e.g. block-bunch.
struct LayoutSpec {
  NodeOrder node = NodeOrder::Block;
  SocketOrder socket = SocketOrder::Bunch;
};

/// "block-bunch", "cyclic-scatter", ...
std::string to_string(const LayoutSpec& spec);

/// Parse a resource-manager distribution spec into a LayoutSpec.  Accepts
/// both this library's names ("block-bunch", "cyclic-scatter", ...) and
/// SLURM's --distribution syntax ("block:block", "cyclic:cyclic", ...),
/// where SLURM's second level "block" binds consecutive ranks to one socket
/// (= bunch) and "cyclic" round-robins sockets (= scatter).  Throws
/// tarr::Error on anything else.
LayoutSpec parse_layout_spec(const std::string& s);

/// The paper's four initial mappings, in figure order (3a..3d).
std::vector<LayoutSpec> all_layouts();

/// Compute the rank -> global core mapping for `p` processes on `m`.
/// Requires p <= m.total_cores().  Uses ceil(p / cores_per_node) nodes; with
/// NodeOrder::Cyclic the ranks round-robin over exactly those nodes.
std::vector<CoreId> make_layout(const topology::Machine& m, int p,
                                const LayoutSpec& spec);

}  // namespace tarr::simmpi
