#include "simmpi/communicator.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace tarr::simmpi {

Communicator::Communicator(const topology::Machine& m,
                           std::vector<CoreId> rank_to_core)
    : machine_(&m), rank_to_core_(std::move(rank_to_core)) {
  TARR_REQUIRE(!rank_to_core_.empty(), "Communicator: empty rank set");
  core_to_rank_.assign(m.total_cores(), kNoRank);
  for (Rank r = 0; r < size(); ++r) {
    const CoreId c = rank_to_core_[r];
    TARR_REQUIRE(c >= 0 && c < m.total_cores(),
                 "Communicator: core out of range");
    TARR_REQUIRE(core_to_rank_[c] == kNoRank,
                 "Communicator: two ranks on one core");
    core_to_rank_[c] = r;
  }
}

CoreId Communicator::core_of(Rank r) const {
  TARR_REQUIRE(r >= 0 && r < size(), "core_of: rank out of range");
  return rank_to_core_[r];
}

NodeId Communicator::node_of(Rank r) const {
  return machine_->node_of_core(core_of(r));
}

SocketId Communicator::socket_of(Rank r) const {
  return machine_->socket_of_core(core_of(r));
}

Rank Communicator::rank_on_core(CoreId c) const {
  TARR_REQUIRE(c >= 0 && c < machine_->total_cores(),
               "rank_on_core: core out of range");
  return core_to_rank_[c];
}

Communicator Communicator::reordered(std::vector<CoreId> new_rank_to_core) const {
  TARR_REQUIRE(new_rank_to_core.size() == rank_to_core_.size(),
               "reordered: size mismatch");
  auto a = rank_to_core_;
  auto b = new_rank_to_core;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  TARR_REQUIRE(a == b, "reordered: core set differs from original");
  return Communicator(*machine_, std::move(new_rank_to_core));
}

std::vector<Rank> Communicator::permutation_to(
    const Communicator& reordered) const {
  TARR_REQUIRE(reordered.size() == size(), "permutation_to: size mismatch");
  std::vector<Rank> perm(size());
  for (Rank old = 0; old < size(); ++old) {
    const Rank nr = reordered.rank_on_core(rank_to_core_[old]);
    TARR_REQUIRE(nr != kNoRank, "permutation_to: core sets differ");
    perm[old] = nr;
  }
  return perm;
}

bool Communicator::node_contiguous() const {
  const int cpn = machine_->cores_per_node();
  if (size() % cpn != 0) return false;
  for (Rank r = 0; r < size(); ++r) {
    if (node_of(r) != node_of(r - r % cpn)) return false;
  }
  // Distinct node per block.
  std::vector<NodeId> firsts;
  for (Rank r = 0; r < size(); r += cpn) firsts.push_back(node_of(r));
  std::sort(firsts.begin(), firsts.end());
  return std::adjacent_find(firsts.begin(), firsts.end()) == firsts.end();
}

std::vector<std::vector<Rank>> Communicator::ranks_by_node() const {
  std::map<NodeId, std::vector<Rank>> groups;
  for (Rank r = 0; r < size(); ++r) groups[node_of(r)].push_back(r);
  std::vector<std::vector<Rank>> out;
  out.reserve(groups.size());
  for (auto& [node, ranks] : groups) out.push_back(std::move(ranks));
  return out;
}

}  // namespace tarr::simmpi
