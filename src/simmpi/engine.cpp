#include "simmpi/engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/permutation.hpp"
#include "prof/profiler.hpp"

namespace tarr::simmpi {

Engine::Engine(const Communicator& comm, const CostConfig& cfg, ExecMode mode,
               Bytes block_bytes, int buf_blocks)
    : comm_(&comm),
      cost_(comm.machine(), cfg),
      mode_(mode),
      block_bytes_(block_bytes),
      buf_blocks_(buf_blocks) {
  TARR_REQUIRE(block_bytes >= 1, "Engine: block_bytes must be >= 1");
  TARR_REQUIRE(buf_blocks >= 1, "Engine: buf_blocks must be >= 1");
  if (mode_ == ExecMode::Data) {
    buf_.assign(comm.size(),
                std::vector<std::uint32_t>(buf_blocks, kEmptyTag));
  }
  local_bytes_per_rank_scratch_.assign(comm.size(), 0.0);
  if constexpr (kSlowChecksEnabled) {
    verifier_ = std::make_unique<check::StageVerifier>(
        comm.size(), buf_blocks, comm.rank_to_core());
  }
}

void Engine::set_trace_sink(trace::TraceSink* sink) {
  TARR_REQUIRE(!stage_open_, "set_trace_sink: stage still open");
  sink_ = sink;
  // Transfer spans and load counters are derived from the cost model's
  // per-stage detail, so capture follows the sink's lifetime.
  cost_.set_capture_details(sink != nullptr);
}

void Engine::trace_phase_begin(std::string name) {
  if (sink_ == nullptr) return;
  phase_stack_.emplace_back(std::move(name), total_);
}

void Engine::trace_phase_end() {
  if (phase_stack_.empty()) return;  // no sink at begin time (or mismatch)
  auto [name, start] = std::move(phase_stack_.back());
  phase_stack_.pop_back();
  if (sink_ != nullptr)
    sink_->on_phase(trace::PhaseEvent{std::move(name), start, total_ - start});
}

void Engine::set_transient_faults(const TransientFaultConfig& cfg) {
  TARR_REQUIRE(!stage_open_ && stages_executed_ == 0,
               "set_transient_faults: must be armed before the first stage");
  validate(cfg);
  if (!cfg.enabled()) return;  // zero probabilities: stay on the exact
                               // fault-free path
  fault_cfg_ = cfg;
  fault_rng_.reseed(cfg.seed);
}

int Engine::draw_attempts(Bytes bytes) {
  const TransientFaultConfig& cfg = *fault_cfg_;
  Usec timeout = cfg.retry_timeout;
  Usec wait = 0.0;
  int attempts = 0;
  bool delivered = false;
  while (attempts < cfg.max_attempts) {
    ++attempts;
    ++fault_stats_.attempts;
    const double u = fault_rng_.next_double();
    if (u < cfg.drop_prob) {
      // Lost in the fabric: the sender notices only after the timeout.
      ++fault_stats_.drops;
      fault_stats_.retransmitted_bytes += bytes;
      wait += timeout;
      timeout *= cfg.backoff;
    } else if (u < cfg.drop_prob + cfg.corrupt_prob) {
      // Checksum failure at the receiver: NACK and immediate resend.
      ++fault_stats_.corruptions;
      fault_stats_.retransmitted_bytes += bytes;
    } else {
      delivered = true;
      break;
    }
  }
  TARR_REQUIRE(delivered,
               "transient fault: transfer still failing after " +
                   std::to_string(cfg.max_attempts) +
                   " attempts; fail the component via fault::FaultMask "
                   "instead of modeling it as transient");
  fault_stats_.retransmissions += attempts - 1;
  fault_stats_.timeout_wait += wait;
  stage_retry_wait_ = std::max(stage_retry_wait_, wait);
  return attempts;
}

void Engine::set_block(Rank r, int off, std::uint32_t tag) {
  if (mode_ != ExecMode::Data) return;
  TARR_REQUIRE(r >= 0 && r < comm_->size(), "set_block: rank out of range");
  TARR_REQUIRE(off >= 0 && off < buf_blocks_, "set_block: offset out of range");
  buf_[r][off] = tag;
}

std::uint32_t Engine::block(Rank r, int off) const {
  TARR_REQUIRE(mode_ == ExecMode::Data, "block: only valid in Data mode");
  TARR_REQUIRE(r >= 0 && r < comm_->size(), "block: rank out of range");
  TARR_REQUIRE(off >= 0 && off < buf_blocks_, "block: offset out of range");
  return buf_[r][off];
}

void Engine::begin_stage() {
  TARR_REQUIRE(!stage_open_, "begin_stage: previous stage still open");
  if (verifier_) verifier_->on_begin_stage();
  stage_open_ = true;
  cost_.begin_stage();
}

void Engine::copy(Rank src, int src_off, Rank dst, int dst_off, int nblocks) {
  enqueue(src, src_off, dst, dst_off, nblocks, /*combining=*/false);
}

void Engine::combine(Rank src, int src_off, Rank dst, int dst_off,
                     int nblocks) {
  enqueue(src, src_off, dst, dst_off, nblocks, /*combining=*/true);
}

void Engine::enqueue(Rank src, int src_off, Rank dst, int dst_off,
                     int nblocks, bool combining) {
  TARR_REQUIRE(stage_open_, "copy: no open stage");
  TARR_REQUIRE(src >= 0 && src < comm_->size() && dst >= 0 &&
                   dst < comm_->size(),
               "copy: rank out of range");
  TARR_REQUIRE(nblocks >= 1, "copy: nblocks must be >= 1");
  TARR_REQUIRE(src_off >= 0 && src_off + nblocks <= buf_blocks_,
               "copy: source range out of buffer");
  TARR_REQUIRE(dst_off >= 0 && dst_off + nblocks <= buf_blocks_,
               "copy: destination range out of buffer");
  if (verifier_)
    verifier_->on_transfer(src, src_off, dst, dst_off, nblocks, combining);

  const Bytes bytes = static_cast<Bytes>(nblocks) * block_bytes_;
  if (sink_ != nullptr) {
    // Schedule-IR view of the copy, local ones included: tarr::analyze
    // abstract-interprets these, so they carry the block offsets that the
    // priced TransferEvents (aggregated per rank for local copies) lose.
    sink_->on_copy(trace::CopyEvent{stages_executed_, src, dst, src_off,
                                    dst_off, nblocks, bytes, combining});
  }
  if (src == dst) {
    local_bytes_per_rank_scratch_[src] += static_cast<double>(bytes);
  } else {
    // Every retransmission attempt reloads the same links, so it is priced
    // as one more concurrent transfer of the stage (attempts == 1 when the
    // fault model is off — the exact fault-free path).
    const int attempts = fault_cfg_ ? draw_attempts(bytes) : 1;
    if (sink_ != nullptr) {
      // Attempts are submitted consecutively, so the logical transfer's
      // detail record is the running attempt count before this submission.
      const int record = stage_xfers_.empty()
                             ? 0
                             : stage_xfers_.back().record +
                                   stage_xfers_.back().attempts;
      stage_xfers_.push_back(TraceXfer{src, dst, bytes, attempts, record});
    }
    for (int a = 0; a < attempts; ++a)
      cost_.add_transfer(comm_->core_of(src), comm_->core_of(dst), bytes);
    // Observers see the logical transfer once, independent of retries.
    if (transfer_observer_)
      transfer_observer_(comm_->core_of(src), comm_->core_of(dst), bytes);
  }

  PendingCopy pc{src, dst, src_off, dst_off, nblocks, combining, {}};
  if (mode_ == ExecMode::Data) {
    // Capture the pre-stage payload now; all mutations happen in end_stage.
    pc.payload.assign(buf_[src].begin() + src_off,
                      buf_[src].begin() + src_off + nblocks);
  }
  pending_.push_back(std::move(pc));
}

Usec Engine::end_stage() {
  TARR_REQUIRE(stage_open_, "end_stage: no open stage");
  if (verifier_) verifier_->on_end_stage();
  const Usec stage_start = total_;
  Usec stage = cost_.finish_stage();
  for (Rank r = 0; r < comm_->size(); ++r) {
    if (local_bytes_per_rank_scratch_[r] > 0.0) {
      const Bytes bytes =
          static_cast<Bytes>(local_bytes_per_rank_scratch_[r]);
      const Usec cost = cost_.local_copy_cost(bytes);
      stage = std::max(stage, cost);
      if (sink_ != nullptr) {
        // Local copies are aggregated per rank by the cost model, so the
        // trace shows one Local span per copying rank and stage.
        sink_->on_transfer(trace::TransferEvent{
            stages_executed_, r, r, comm_->core_of(r), comm_->core_of(r),
            bytes, trace::Channel::Local, 1.0, 1, stage_start, cost, cost});
      }
      local_bytes_per_rank_scratch_[r] = 0.0;
    }
  }
  const Usec retry_wait = stage_retry_wait_;
  if (stage_retry_wait_ > 0.0) {
    // The worst retry chain of the stage serializes its drop-detection
    // timeouts in front of the (already contention-priced) retransmissions.
    stage += stage_retry_wait_;
    stage_retry_wait_ = 0.0;
  }
  if (mode_ == ExecMode::Data) {
    for (const PendingCopy& pc : pending_) {
      if (pc.combining) {
        for (int k = 0; k < pc.nblocks; ++k)
          buf_[pc.dst][pc.dst_off + k] ^= pc.payload[k];
      } else {
        std::copy(pc.payload.begin(), pc.payload.end(),
                  buf_[pc.dst].begin() + pc.dst_off);
      }
    }
  }
  const int transfers = static_cast<int>(pending_.size());
  pending_.clear();
  stage_open_ = false;
  last_stage_cost_ = stage;
  last_stage_transfers_ = transfers;
  last_stage_retry_wait_ = retry_wait;
  total_ += stage;
  peak_link_bytes_ =
      std::max(peak_link_bytes_, cost_.last_stage_stats().max_link_bytes);
  if (sink_ != nullptr) emit_stage_trace(stage_start, stage, retry_wait);
  if (observer_) observer_(stages_executed_, transfers, stage);
  if (prof::Profiler* p = prof::thread_profiler()) {
    p->count("engine.stages", 1.0);
    p->count("engine.transfers", static_cast<double>(transfers));
  }
  ++stages_executed_;
  return stage;
}

void Engine::emit_stage_trace(Usec stage_start, Usec stage_cost,
                              Usec retry_wait) {
  const CostModel::StageDetail& d = cost_.last_stage_detail();
  // Remote transfer spans, priced with the channel class and contention
  // factor the cost model attributed to each (first attempt's record; the
  // retries reload the same channel).
  for (const TraceXfer& x : stage_xfers_) {
    const CostModel::TransferRecord& rec = d.transfers[x.record];
    sink_->on_transfer(trace::TransferEvent{
        stages_executed_, x.src, x.dst, comm_->core_of(x.src),
        comm_->core_of(x.dst), x.bytes, rec.channel, rec.contention,
        x.attempts, stage_start, rec.cost, rec.uncontended});
  }
  stage_xfers_.clear();
  // Per-resource load counters: the stage's byte load at stage start, back
  // to zero at stage end, one counter track per directed cable/QPI link.
  const Usec stage_end = stage_start + stage_cost;
  for (const auto& ll : d.link_loads)
    sink_->on_counter(trace::CounterSample{trace::CounterSample::Kind::Link,
                                           ll.link, ll.dir, stage_start,
                                           ll.bytes});
  for (const auto& ql : d.qpi_loads)
    sink_->on_counter(trace::CounterSample{trace::CounterSample::Kind::Qpi,
                                           ql.node, ql.dir, stage_start,
                                           ql.bytes});
  for (const auto& ll : d.link_loads)
    sink_->on_counter(trace::CounterSample{trace::CounterSample::Kind::Link,
                                           ll.link, ll.dir, stage_end, 0.0});
  for (const auto& ql : d.qpi_loads)
    sink_->on_counter(trace::CounterSample{trace::CounterSample::Kind::Qpi,
                                           ql.node, ql.dir, stage_end, 0.0});
  sink_->on_stage(trace::StageEvent{stages_executed_, last_stage_transfers_,
                                    1, stage_start, stage_cost, retry_wait});
}

void Engine::repeat_last_stage(int extra) {
  TARR_REQUIRE(!stage_open_, "repeat_last_stage: stage still open");
  TARR_REQUIRE(mode_ == ExecMode::Timed,
               "repeat_last_stage: only valid in Timed mode");
  TARR_REQUIRE(extra >= 0, "repeat_last_stage: negative repeat count");
  if (sink_ != nullptr && extra > 0 && stages_executed_ > 0) {
    // One compressed span covering all repeats of the stage just ended.
    sink_->on_stage(trace::StageEvent{
        stages_executed_ - 1, last_stage_transfers_, extra, total_,
        last_stage_cost_ * static_cast<double>(extra),
        last_stage_retry_wait_});
  }
  if (extra > 0) prof::count("engine.stage_repeats", extra);
  total_ += last_stage_cost_ * static_cast<double>(extra);
}

void Engine::local_permute_all(const std::vector<int>& dst_of_block) {
  TARR_REQUIRE(!stage_open_, "local_permute_all: stage still open");
  TARR_REQUIRE(static_cast<int>(dst_of_block.size()) == buf_blocks_,
               "local_permute_all: permutation size mismatch");
  TARR_REQUIRE(is_permutation_of_iota(dst_of_block),
               "local_permute_all: not a permutation");

  int moved = 0;
  for (int b = 0; b < buf_blocks_; ++b)
    if (dst_of_block[b] != b) ++moved;
  if (moved == 0) return;

  if (mode_ == ExecMode::Data) {
    std::vector<std::uint32_t> tmp(buf_blocks_);
    for (auto& buf : buf_) {
      for (int b = 0; b < buf_blocks_; ++b) tmp[dst_of_block[b]] = buf[b];
      buf = tmp;
    }
  }
  const Usec cost =
      cost_.local_copy_cost(static_cast<Bytes>(moved) * block_bytes_);
  if (sink_ != nullptr) {
    // The permutation itself precedes the TimeEvent that prices it, so a
    // recorder can pair the two (see report::ScheduleRecorder).
    sink_->on_permute(trace::PermuteEvent{dst_of_block, total_, cost});
    sink_->on_time(trace::TimeEvent{"local-shuffle", total_, cost});
  }
  total_ += cost;
}

void Engine::add_time(Usec t, const char* what) {
  if (sink_ != nullptr && t != 0.0)
    sink_->on_time(trace::TimeEvent{what, total_, t});
  total_ += t;
}

}  // namespace tarr::simmpi
