#pragma once

#include <vector>

#include "simmpi/communicator.hpp"
#include "simmpi/costmodel.hpp"

/// \file async.hpp
/// Asynchronous (LogGP-flavored) execution model — a complementary lens to
/// the stage-synchronous Engine.
///
/// The stage-synchronous model charges every stage the cost of its slowest
/// transfer, which is exact for globally synchronized patterns (recursive
/// doubling) but rounds *up* pipelined ones: in a real ring, rank 5's step
/// 3 does not wait for rank 900's step 3.  The AsyncEngine instead keeps a
/// clock per rank and executes explicit send/receive dependencies:
///
///   * a send occupies the sender from its current time for `send_overhead`
///     plus the bytes' serialization at the injection rate (sends from one
///     rank serialize — the NIC/memory port constraint);
///   * the message arrives `channel latency + bytes * channel beta` after
///     it left;
///   * a receive completes at max(receiver's clock, arrival).
///
/// Channel alphas/betas reuse CostConfig.  Link-level bandwidth *sharing*
/// is not modeled here (that is the stage model's strength); use the two
/// models together: stage-synchronous for contention, async for pipelining.
/// docs/MODEL.md discusses the pairing.

namespace tarr::simmpi {

/// See file comment.
class AsyncEngine {
 public:
  /// `send_overhead` is the LogGP `o` parameter (us the sender's CPU is
  /// busy per message).  The communicator must outlive the engine.
  AsyncEngine(const Communicator& comm, const CostConfig& cfg,
              Usec send_overhead = 0.2);

  const Communicator& comm() const { return *comm_; }

  /// Local computation on `rank` for `duration` us.
  void compute(Rank rank, Usec duration);

  /// Non-blocking send of `bytes` from src to dst (src != dst): occupies
  /// the sender (overhead + payload serialization) and returns the arrival
  /// time WITHOUT advancing the receiver.  Pair with recv().  Issuing all
  /// of a step's isends before any recv() is what expresses genuinely
  /// concurrent exchanges (a blocking p2p() in a loop would create false
  /// dependencies between same-step messages).
  Usec isend(Rank src, Rank dst, Bytes bytes);

  /// Complete a receive on `rank`: its clock advances to at least
  /// `arrival` (the value an isend returned).
  void recv(Rank rank, Usec arrival);

  /// Blocking convenience: isend + recv (correct where the dependency is
  /// real, e.g. down a broadcast tree).  Returns the arrival time.
  Usec p2p(Rank src, Rank dst, Bytes bytes);

  /// Block `rank` until at least time `t` (alias of recv, for
  /// non-message dependencies).
  void wait_until(Rank rank, Usec t) { recv(rank, t); }

  /// Current clock of a rank.
  Usec clock(Rank rank) const;

  /// Completion time of the whole program (max over rank clocks).
  Usec makespan() const;

  /// Messages executed so far.
  long long messages() const { return messages_; }

 private:
  /// Pure channel cost of `bytes` between two cores (no sharing).
  Usec channel_cost(CoreId src, CoreId dst, Bytes bytes) const;

  const Communicator* comm_;
  CostConfig cfg_;
  Usec send_overhead_;
  std::vector<Usec> clock_;
  long long messages_ = 0;
};

/// Ring allgather on the async engine (per-rank message of `msg` bytes,
/// p-1 forwarding steps with true pipelining).  Returns the makespan delta.
Usec run_allgather_ring_async(AsyncEngine& eng, Bytes msg);

/// Recursive-doubling allgather on the async engine (2^k ranks).  Pairwise
/// exchanges synchronize both partners each stage.
Usec run_allgather_rd_async(AsyncEngine& eng, Bytes msg);

/// Binomial broadcast of `msg` bytes from rank 0 on the async engine.
Usec run_bcast_binomial_async(AsyncEngine& eng, Bytes msg);

}  // namespace tarr::simmpi
