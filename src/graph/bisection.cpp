#include "graph/bisection.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "prof/profiler.hpp"
#include "trace/sink.hpp"

namespace tarr::graph {

namespace {

/// Dense helper state for one bisection call.  Vertex ids are translated to
/// subset-local positions once so all hot loops are array-indexed.
struct LocalView {
  const WeightedGraph& g;
  const std::vector<int>& subset;
  std::vector<int> pos;  // global vertex -> local position or -1

  LocalView(const WeightedGraph& graph, const std::vector<int>& sub)
      : g(graph), subset(sub), pos(graph.num_vertices(), -1) {
    for (std::size_t i = 0; i < sub.size(); ++i) {
      TARR_REQUIRE(pos[sub[i]] == -1, "bisect_subset: duplicate vertex");
      pos[sub[i]] = static_cast<int>(i);
    }
  }
};

/// Connection weight of local vertex i to the given side, within the subset.
double side_connection(const LocalView& lv, const std::vector<int>& side,
                       int i, int which) {
  double w = 0.0;
  for (const auto& nb : lv.g.neighbors(lv.subset[i])) {
    const int j = lv.pos[nb.vertex];
    if (j >= 0 && side[j] == which) w += nb.weight;
  }
  return w;
}

}  // namespace

BisectionResult bisect_subset(const WeightedGraph& g,
                              const std::vector<int>& subset, int size0,
                              Rng& rng, const BisectionOptions& opts) {
  const int n = static_cast<int>(subset.size());
  TARR_REQUIRE(g.finalized(), "bisect_subset: graph not finalized");
  TARR_REQUIRE(size0 >= 0 && size0 <= n, "bisect_subset: bad part size");
  prof::ProfScope pscope("bisect");

  BisectionResult res;
  res.side.assign(n, 1);
  if (size0 == 0 || size0 == n) {
    std::fill(res.side.begin(), res.side.end(), size0 == n ? 0 : 1);
    res.cut = 0.0;
    return res;
  }

  LocalView lv(g, subset);

  // --- Greedy graph growing -------------------------------------------------
  // Seed part 0 from the heaviest subset vertex (random among ties), then
  // repeatedly absorb the unassigned vertex with the strongest connection to
  // part 0; unconnected front -> random unassigned vertex.
  std::vector<double> gain(n, 0.0);  // connection to part 0
  std::vector<char> in0(n, 0);

  int seed = 0;
  {
    double best = -1.0;
    std::vector<int> ties;
    for (int i = 0; i < n; ++i) {
      const double wd = g.weighted_degree(subset[i]);
      if (wd > best) {
        best = wd;
        ties.assign(1, i);
      } else if (wd == best) {
        ties.push_back(i);
      }
    }
    seed = ties[rng.next_below(ties.size())];
  }

  auto absorb = [&](int i) {
    in0[i] = 1;
    for (const auto& nb : g.neighbors(subset[i])) {
      const int j = lv.pos[nb.vertex];
      if (j >= 0 && !in0[j]) gain[j] += nb.weight;
    }
  };
  absorb(seed);
  for (int filled = 1; filled < size0; ++filled) {
    int best = -1;
    double best_gain = -1.0;
    for (int i = 0; i < n; ++i) {
      if (!in0[i]) {
        if (gain[i] > best_gain) {
          best_gain = gain[i];
          best = i;
        }
      }
    }
    if (best_gain <= 0.0) {
      // Disconnected front: pick a random unassigned vertex.
      std::vector<int> free;
      for (int i = 0; i < n; ++i)
        if (!in0[i]) free.push_back(i);
      best = free[rng.next_below(free.size())];
    }
    absorb(best);
  }
  for (int i = 0; i < n; ++i) res.side[i] = in0[i] ? 0 : 1;

  // --- Pairwise swap refinement ----------------------------------------------
  // D[i] = external - internal connection.  Swapping (u in 0, v in 1) changes
  // the cut by -(D[u] + D[v] - 2 w(u,v)); accept best positive-gain swap from
  // a bounded candidate window, repeat for a few passes.
  long long swaps = 0;
  long long swap_evals = 0;  // candidate pairs scored (the FM-style inner loop)
  std::vector<double> d(n);
  auto recompute_d = [&](int i) {
    const int s = res.side[i];
    d[i] = side_connection(lv, res.side, i, 1 - s) -
           side_connection(lv, res.side, i, s);
  };
  for (int pass = 0; pass < opts.refine_passes; ++pass) {
    for (int i = 0; i < n; ++i) recompute_d(i);
    std::vector<int> cand0, cand1;
    for (int i = 0; i < n; ++i) (res.side[i] == 0 ? cand0 : cand1).push_back(i);
    auto by_d = [&](int a, int b) { return d[a] > d[b]; };
    std::sort(cand0.begin(), cand0.end(), by_d);
    std::sort(cand1.begin(), cand1.end(), by_d);
    const int w0 = std::min<int>(opts.candidate_window, cand0.size());
    const int w1 = std::min<int>(opts.candidate_window, cand1.size());

    bool improved = false;
    for (int iter = 0; iter < n; ++iter) {
      double best_gain = 0.0;
      int bu = -1, bv = -1;
      swap_evals += static_cast<long long>(w0) * w1;
      for (int a = 0; a < w0; ++a) {
        for (int b = 0; b < w1; ++b) {
          const int u = cand0[a], v = cand1[b];
          double wuv = 0.0;
          for (const auto& nb : g.neighbors(subset[u])) {
            const int j = lv.pos[nb.vertex];
            if (j == v) wuv = nb.weight;
          }
          const double swap_gain = d[u] + d[v] - 2.0 * wuv;
          if (swap_gain > best_gain + 1e-12) {
            best_gain = swap_gain;
            bu = u;
            bv = v;
          }
        }
      }
      if (bu < 0) break;
      std::swap(res.side[bu], res.side[bv]);
      improved = true;
      ++swaps;
      // Refresh D locally: the swapped pair and their subset neighbors.
      recompute_d(bu);
      recompute_d(bv);
      for (const auto& nb : g.neighbors(subset[bu])) {
        const int j = lv.pos[nb.vertex];
        if (j >= 0) recompute_d(j);
      }
      for (const auto& nb : g.neighbors(subset[bv])) {
        const int j = lv.pos[nb.vertex];
        if (j >= 0) recompute_d(j);
      }
      // Window lists keep their order; stale entries only cost missed gains.
    }
    if (!improved) break;
  }

  // Cut of the subset-internal edges.
  double cut = 0.0;
  for (int i = 0; i < n; ++i) {
    if (res.side[i] != 0) continue;
    for (const auto& nb : g.neighbors(subset[i])) {
      const int j = lv.pos[nb.vertex];
      if (j >= 0 && res.side[j] == 1) cut += nb.weight;
    }
  }
  res.cut = cut;
  if (trace::TraceSink* sink = trace::thread_sink()) {
    sink->add_count("bisection.calls", 1.0);
    sink->add_count("bisection.refine_swaps", static_cast<double>(swaps));
  }
  if (prof::Profiler* p = prof::thread_profiler()) {
    p->count("bisection.calls", 1.0);
    p->count("bisection.refine_swaps", static_cast<double>(swaps));
    p->count("bisection.swap_evals", static_cast<double>(swap_evals));
  }
  return res;
}

}  // namespace tarr::graph
