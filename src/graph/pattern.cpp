#include "graph/pattern.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace tarr::graph {

WeightedGraph recursive_doubling_pattern(int p) {
  TARR_REQUIRE(is_pow2(p), "recursive_doubling_pattern: p must be 2^k");
  WeightedGraph g(p);
  for (int dist = 1; dist < p; dist <<= 1) {
    for (int i = 0; i < p; ++i) {
      const int peer = i ^ dist;
      if (i < peer) g.add_edge(i, peer, static_cast<double>(dist));
    }
  }
  g.finalize();
  return g;
}

WeightedGraph ring_pattern(int p) {
  TARR_REQUIRE(p >= 2, "ring_pattern: need p >= 2");
  WeightedGraph g(p);
  for (int i = 0; i < p; ++i)
    g.add_edge(i, (i + 1) % p, static_cast<double>(p - 1));
  g.finalize();
  return g;
}

WeightedGraph binomial_bcast_pattern(int p) {
  TARR_REQUIRE(p >= 2, "binomial_bcast_pattern: need p >= 2");
  WeightedGraph g(p);
  for (int dist = 1; dist < p; dist <<= 1) {
    for (int r = 0; r + dist < p; r += 2 * dist) g.add_edge(r, r + dist, 1.0);
  }
  g.finalize();
  return g;
}

WeightedGraph binomial_gather_pattern(int p) {
  TARR_REQUIRE(p >= 2, "binomial_gather_pattern: need p >= 2");
  WeightedGraph g(p);
  for (int dist = 1; dist < p; dist <<= 1) {
    for (int r = 0; r + dist < p; r += 2 * dist) {
      const int subtree = std::min(dist, p - (r + dist));
      g.add_edge(r, r + dist, static_cast<double>(subtree));
    }
  }
  g.finalize();
  return g;
}

WeightedGraph bruck_pattern(int p) {
  TARR_REQUIRE(p >= 2, "bruck_pattern: need p >= 2");
  WeightedGraph g(p);
  for (int dist = 1; dist < p; dist <<= 1) {
    const double blocks = static_cast<double>(std::min(dist, p - dist));
    for (int i = 0; i < p; ++i) {
      const int peer = (i - dist % p + p) % p;
      if (peer != i) g.add_edge(i, peer, blocks);
    }
  }
  g.finalize();
  return g;
}

}  // namespace tarr::graph
