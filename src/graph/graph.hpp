#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

/// \file graph.hpp
/// Undirected weighted graph used to describe process topologies
/// (communication patterns).  This is the "process topology graph" the paper
/// says a general-purpose mapper such as Scotch must build before mapping —
/// and which the fine-tuned heuristics deliberately avoid.

namespace tarr::graph {

/// One undirected weighted edge.
struct Edge {
  int u = 0;
  int v = 0;
  double w = 1.0;
};

/// Undirected weighted graph with O(1) neighbor iteration after finalize().
/// Parallel edges added before finalize() are merged by summing weights.
class WeightedGraph {
 public:
  explicit WeightedGraph(int num_vertices = 0);

  int num_vertices() const { return n_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Add (or accumulate onto) the undirected edge {u, v}.  Self-loops are
  /// rejected.  Must be called before finalize().
  void add_edge(int u, int v, double w = 1.0);

  /// Merge duplicates and build the adjacency index.  Idempotent.
  void finalize();
  bool finalized() const { return finalized_; }

  /// Neighbor entry: the other endpoint and the edge weight.
  struct Neighbor {
    int vertex;
    double weight;
  };

  /// Neighbors of u (requires finalize()).
  const std::vector<Neighbor>& neighbors(int u) const;

  /// All merged edges (requires finalize()).
  const std::vector<Edge>& edges() const;

  /// Sum of weights of edges incident to u (requires finalize()).
  double weighted_degree(int u) const;

  /// Total weight crossing a 2-part assignment (part[v] in {0,1}).
  double cut_weight(const std::vector<int>& part) const;

  /// Graphviz DOT rendering (undirected, edge labels = weights) for
  /// visualizing communication patterns.  Requires finalize().
  std::string to_dot(const std::string& name = "pattern") const;

 private:
  int n_;
  bool finalized_ = false;
  std::vector<Edge> edges_;
  std::vector<std::vector<Neighbor>> adj_;
  std::vector<double> wdeg_;
};

}  // namespace tarr::graph
