#pragma once

#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

/// \file bisection.hpp
/// Balanced graph bisection: the engine of the Scotch-like dual recursive
/// bipartitioning mapper.  Greedy graph growing produces an initial split;
/// a bounded swap-refinement pass (Fiduccia–Mattheyses flavored, but
/// balance-preserving via pairwise swaps) improves the cut.

namespace tarr::graph {

/// Result of bisecting a vertex subset: `side[i]` in {0,1} for the i-th
/// element of the input subset, and the resulting cut weight (edges internal
/// to the subset crossing the split).
struct BisectionResult {
  std::vector<int> side;
  double cut = 0.0;
};

/// Options for the bisection.
struct BisectionOptions {
  /// Maximum refinement sweeps over the boundary.
  int refine_passes = 4;
  /// Number of top-gain candidates examined per side per swap.
  int candidate_window = 32;
};

/// Split `subset` (distinct vertex ids of g) into a part of exactly `size0`
/// vertices and its complement, heuristically minimizing the weight of
/// subset-internal edges that cross.  Deterministic given `rng`'s state.
BisectionResult bisect_subset(const WeightedGraph& g,
                              const std::vector<int>& subset, int size0,
                              Rng& rng,
                              const BisectionOptions& opts = BisectionOptions{});

}  // namespace tarr::graph
