#pragma once

#include "graph/graph.hpp"

/// \file pattern.hpp
/// Builders for the communication-pattern graphs of the collective algorithms
/// covered by the paper.  Edge weights are relative communication volumes in
/// units of one per-rank contribution block, so a general-purpose mapper sees
/// exactly the traffic the algorithm will generate.
///
/// The fine-tuned heuristics (tarr::mapping) never build these graphs — the
/// paper's point is that they derive the pattern in closed form — but the
/// Scotch-like comparator requires them, and tests use them as the ground
/// truth for what each algorithm communicates.

namespace tarr::graph {

/// Recursive-doubling allgather on p ranks (p must be a power of two).
/// Stage s (s = 0..log2(p)-1) pairs i with i XOR 2^s exchanging 2^s blocks,
/// so the edge {i, i XOR 2^s} has weight 2^s.
WeightedGraph recursive_doubling_pattern(int p);

/// Ring allgather on p >= 2 ranks: rank i sends to (i+1) mod p in each of the
/// p-1 stages, one block per stage; edge weight p-1 between neighbors.
WeightedGraph ring_pattern(int p);

/// Binomial (halving-tree) broadcast from root 0 on p ranks: at stage
/// `dist` (descending powers of two) every rank r aligned to 2*dist sends
/// the full message to r + dist; all edges carry the same volume (weight 1).
/// This is the tree Algorithm 4 (BBMH) and the bcast collective use.
WeightedGraph binomial_bcast_pattern(int p);

/// Binomial (halving-tree) gather to root 0 on p ranks: the child r + 2^k
/// (r aligned to 2^(k+1)) forwards its entire gathered subtree (2^k blocks,
/// truncated at p) to r, so edge {r, r + 2^k} has weight
/// min(2^k, p - (r + 2^k)).
WeightedGraph binomial_gather_pattern(int p);

/// Bruck allgather on any p >= 2: stage s sends min(2^s, p - 2^s) blocks
/// from rank i to rank (i - 2^s + p) % p.
WeightedGraph bruck_pattern(int p);

}  // namespace tarr::graph
