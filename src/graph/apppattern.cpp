#include "graph/apppattern.hpp"

#include "common/error.hpp"

namespace tarr::graph {

WeightedGraph stencil2d_pattern(int nx, int ny, double weight) {
  TARR_REQUIRE(nx >= 1 && ny >= 1 && nx * ny >= 2,
               "stencil2d_pattern: bad grid");
  WeightedGraph g(nx * ny);
  auto id = [&](int i, int j) { return i * ny + j; };
  for (int i = 0; i < nx; ++i) {
    for (int j = 0; j < ny; ++j) {
      if (i + 1 < nx) g.add_edge(id(i, j), id(i + 1, j), weight);
      if (j + 1 < ny) g.add_edge(id(i, j), id(i, j + 1), weight);
    }
  }
  g.finalize();
  return g;
}

WeightedGraph stencil3d_pattern(int nx, int ny, int nz, double weight) {
  TARR_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1 && nx * ny * nz >= 2,
               "stencil3d_pattern: bad grid");
  WeightedGraph g(nx * ny * nz);
  auto id = [&](int i, int j, int k) { return (i * ny + j) * nz + k; };
  for (int i = 0; i < nx; ++i) {
    for (int j = 0; j < ny; ++j) {
      for (int k = 0; k < nz; ++k) {
        if (i + 1 < nx) g.add_edge(id(i, j, k), id(i + 1, j, k), weight);
        if (j + 1 < ny) g.add_edge(id(i, j, k), id(i, j + 1, k), weight);
        if (k + 1 < nz) g.add_edge(id(i, j, k), id(i, j, k + 1), weight);
      }
    }
  }
  g.finalize();
  return g;
}

WeightedGraph ring_with_shortcuts_pattern(int p, double ring_weight,
                                          double shortcut_weight) {
  TARR_REQUIRE(p >= 2, "ring_with_shortcuts_pattern: need p >= 2");
  WeightedGraph g(p);
  for (int i = 0; i < p; ++i) g.add_edge(i, (i + 1) % p, ring_weight);
  for (int dist = 2; dist < p; dist <<= 1) {
    for (int i = 0; i + dist < p; i += dist)
      g.add_edge(i, i + dist, shortcut_weight);
  }
  g.finalize();
  return g;
}

WeightedGraph random_sparse_pattern(int p, int degree, Rng& rng) {
  TARR_REQUIRE(p >= 2 && degree >= 1 && degree < p,
               "random_sparse_pattern: bad parameters");
  WeightedGraph g(p);
  for (int i = 0; i < p; ++i) {
    for (int k = 0; k < degree; ++k) {
      int peer = static_cast<int>(rng.next_below(p - 1));
      if (peer >= i) ++peer;  // uniform over peers != i
      g.add_edge(i, peer, 1.0);
    }
  }
  g.finalize();
  return g;
}

}  // namespace tarr::graph
