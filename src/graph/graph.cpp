#include "graph/graph.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tarr::graph {

WeightedGraph::WeightedGraph(int num_vertices) : n_(num_vertices) {
  TARR_REQUIRE(num_vertices >= 0, "WeightedGraph: negative vertex count");
}

void WeightedGraph::add_edge(int u, int v, double w) {
  TARR_REQUIRE(!finalized_, "add_edge after finalize");
  TARR_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_,
               "add_edge: vertex out of range");
  TARR_REQUIRE(u != v, "add_edge: self-loop");
  TARR_REQUIRE(w > 0, "add_edge: weight must be positive");
  if (u > v) std::swap(u, v);
  edges_.push_back(Edge{u, v, w});
}

void WeightedGraph::finalize() {
  if (finalized_) return;
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  // Merge parallel edges.
  std::vector<Edge> merged;
  merged.reserve(edges_.size());
  for (const Edge& e : edges_) {
    if (!merged.empty() && merged.back().u == e.u && merged.back().v == e.v) {
      merged.back().w += e.w;
    } else {
      merged.push_back(e);
    }
  }
  edges_ = std::move(merged);

  adj_.assign(n_, {});
  wdeg_.assign(n_, 0.0);
  for (const Edge& e : edges_) {
    adj_[e.u].push_back(Neighbor{e.v, e.w});
    adj_[e.v].push_back(Neighbor{e.u, e.w});
    wdeg_[e.u] += e.w;
    wdeg_[e.v] += e.w;
  }
  finalized_ = true;
}

const std::vector<WeightedGraph::Neighbor>& WeightedGraph::neighbors(
    int u) const {
  TARR_REQUIRE(finalized_, "neighbors: graph not finalized");
  TARR_REQUIRE(u >= 0 && u < n_, "neighbors: vertex out of range");
  return adj_[u];
}

const std::vector<Edge>& WeightedGraph::edges() const {
  TARR_REQUIRE(finalized_, "edges: graph not finalized");
  return edges_;
}

double WeightedGraph::weighted_degree(int u) const {
  TARR_REQUIRE(finalized_, "weighted_degree: graph not finalized");
  TARR_REQUIRE(u >= 0 && u < n_, "weighted_degree: vertex out of range");
  return wdeg_[u];
}

std::string WeightedGraph::to_dot(const std::string& name) const {
  TARR_REQUIRE(finalized_, "to_dot: graph not finalized");
  std::string out = "graph " + name + " {\n";
  for (const Edge& e : edges_) {
    out += "  " + std::to_string(e.u) + " -- " + std::to_string(e.v) +
           " [label=\"";
    // Trim trailing zeros for readable labels.
    std::string w = std::to_string(e.w);
    while (w.size() > 1 && w.back() == '0') w.pop_back();
    if (!w.empty() && w.back() == '.') w.pop_back();
    out += w + "\"];\n";
  }
  out += "}\n";
  return out;
}

double WeightedGraph::cut_weight(const std::vector<int>& part) const {
  TARR_REQUIRE(finalized_, "cut_weight: graph not finalized");
  TARR_REQUIRE(static_cast<int>(part.size()) == n_,
               "cut_weight: partition size mismatch");
  double cut = 0.0;
  for (const Edge& e : edges_)
    if (part[e.u] != part[e.v]) cut += e.w;
  return cut;
}

}  // namespace tarr::graph
