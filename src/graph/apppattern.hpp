#pragma once

#include "common/rng.hpp"
#include "graph/graph.hpp"

/// \file apppattern.hpp
/// Application communication-pattern builders — the "general forms of
/// topology-aware mapping" case of §V, where the pattern changes from one
/// application to another and is supplied to a general mapping algorithm as
/// a weighted graph.  These are the guest graphs of classic HPC codes.

namespace tarr::graph {

/// 2D halo-exchange (5-point stencil) over an nx x ny process grid, row-
/// major ranks, non-periodic.  Edge weight = bytes exchanged per boundary
/// (relative units).
WeightedGraph stencil2d_pattern(int nx, int ny, double weight = 1.0);

/// 3D halo-exchange (7-point stencil) over an nx x ny x nz grid,
/// x-major-then-y ranks, non-periodic.
WeightedGraph stencil3d_pattern(int nx, int ny, int nz, double weight = 1.0);

/// Nearest-neighbor ring of p ranks with additional long-range "shortcut"
/// partners at power-of-two offsets — a coarse model of a particle code
/// with a tree summation phase.
WeightedGraph ring_with_shortcuts_pattern(int p, double ring_weight = 8.0,
                                          double shortcut_weight = 1.0);

/// Random sparse pattern: each rank talks to `degree` uniformly chosen
/// peers with uniform weight (a stress case where no structure exists).
/// Deterministic under `rng`.
WeightedGraph random_sparse_pattern(int p, int degree, Rng& rng);

}  // namespace tarr::graph
