#include "prof/profiler.hpp"

#include "common/error.hpp"

namespace tarr::prof {

namespace detail {
namespace {
MemSnapshotFn g_mem_source = nullptr;
}  // namespace

void set_mem_source(MemSnapshotFn fn) { g_mem_source = fn; }
MemSnapshotFn mem_source() { return g_mem_source; }
}  // namespace detail

namespace {

MemCounters mem_now() {
  detail::MemSnapshotFn fn = detail::mem_source();
  return fn != nullptr ? fn() : MemCounters{};
}

thread_local Profiler* t_profiler = nullptr;

}  // namespace

Profiler* thread_profiler() { return t_profiler; }
void set_thread_profiler(Profiler* p) { t_profiler = p; }

ScopedThreadProfiler::ScopedThreadProfiler(Profiler* p) : prev_(t_profiler) {
  t_profiler = p;
}
ScopedThreadProfiler::~ScopedThreadProfiler() { t_profiler = prev_; }

Profiler::Profiler() {
  Node root;
  root.name = "(root)";
  root.parent = -1;
  root.calls = 1;
  nodes_.push_back(std::move(root));
}

void Profiler::enter(const std::string& name) {
  const int parent = stack_.empty() ? 0 : stack_.back().node;
  int idx = -1;
  auto it = nodes_[parent].by_name.find(name);
  if (it != nodes_[parent].by_name.end()) {
    idx = it->second;
  } else {
    idx = static_cast<int>(nodes_.size());
    Node n;
    n.name = name;
    n.parent = parent;
    nodes_.push_back(std::move(n));
    nodes_[parent].children.push_back(idx);
    nodes_[parent].by_name.emplace(name, idx);
  }
  nodes_[idx].calls += 1;
  Open open;
  open.node = idx;
  open.t0 = std::chrono::steady_clock::now();
  open.mem0 = mem_now();
  stack_.push_back(open);
}

void Profiler::exit_scope() {
  TARR_REQUIRE(!stack_.empty(), "Profiler::exit_scope with no open scope");
  const Open open = stack_.back();
  stack_.pop_back();
  Node& n = nodes_[open.node];
  const auto t1 = std::chrono::steady_clock::now();
  n.wall_total += std::chrono::duration<double>(t1 - open.t0).count();
  const MemCounters m1 = mem_now();
  n.mem_bytes_total += static_cast<long long>(m1.bytes - open.mem0.bytes);
  n.mem_allocs_total += static_cast<long long>(m1.allocs - open.mem0.allocs);
}

void Profiler::count(const std::string& name, double delta) {
  Node& n = nodes_[stack_.empty() ? 0 : stack_.back().node];
  n.counts[name] += delta;
  n.work_self += delta;
}

void Profiler::merge(const Profiler& other) {
  TARR_REQUIRE(stack_.empty() && other.stack_.empty(),
               "Profiler::merge requires both profilers at rest");
  merge_node(0, other, 0);
}

void Profiler::merge_node(int dst, const Profiler& other, int src) {
  const Node& s = other.nodes_[src];
  Node& d0 = nodes_[dst];
  if (dst != 0) d0.calls += s.calls;  // both roots carry the implicit call
  d0.wall_total += s.wall_total;
  d0.mem_bytes_total += s.mem_bytes_total;
  d0.mem_allocs_total += s.mem_allocs_total;
  d0.work_self += s.work_self;
  for (const auto& [name, value] : s.counts) nodes_[dst].counts[name] += value;
  for (int child : s.children) {
    const std::string& name = other.nodes_[child].name;
    int didx = -1;
    auto it = nodes_[dst].by_name.find(name);
    if (it != nodes_[dst].by_name.end()) {
      didx = it->second;
    } else {
      didx = static_cast<int>(nodes_.size());
      Node n;
      n.name = name;
      n.parent = dst;
      nodes_.push_back(std::move(n));
      nodes_[dst].children.push_back(didx);
      nodes_[dst].by_name.emplace(name, didx);
    }
    merge_node(didx, other, child);
  }
}

Profile Profiler::snapshot() const {
  TARR_REQUIRE(stack_.empty(), "Profiler::snapshot with open scopes");
  Profile p;
  p.mem_tracked = detail::mem_source() != nullptr;
  p.entries.reserve(nodes_.size());

  // Preorder emission; children are visited in first-entry order.  Totals
  // are accumulated bottom-up on the way back so self/total arithmetic is
  // exact by construction.
  struct Emit {
    const Profiler* self;
    Profile* out;
    int emit(int node, int parent_entry, int depth,
             const std::string& parent_path) const {
      const Node& n = self->nodes_[node];
      const int idx = static_cast<int>(out->entries.size());
      out->entries.emplace_back();
      {
        ProfileEntry& e = out->entries.back();
        e.name = n.name;
        e.path = node == 0 ? std::string()
                 : parent_path.empty() ? n.name
                                       : parent_path + "/" + n.name;
        e.parent = parent_entry;
        e.depth = depth;
        e.calls = n.calls;
        e.work_self = n.work_self;
        for (const auto& [name, value] : n.counts)
          e.counters[name] = ProfileMetric{value, value};
      }
      double wall_children = 0.0;
      long long bytes_children = 0;
      long long allocs_children = 0;
      const std::string path = out->entries[idx].path;
      for (int child : n.children) {
        const int cidx = emit(child, idx, depth + 1, path);
        const ProfileEntry& c = out->entries[cidx];
        wall_children += c.wall_total;
        bytes_children += c.mem_bytes_total;
        allocs_children += c.mem_allocs_total;
        out->entries[idx].work_total += c.work_total;
        for (const auto& [name, metric] : c.counters) {
          ProfileMetric& m = out->entries[idx].counters[name];
          m.total += metric.total;
        }
      }
      ProfileEntry& e = out->entries[idx];
      e.work_total += e.work_self;
      // The root has no measured span: its inclusive values are exactly its
      // children's.  Measured nodes keep their inclusive measurement and
      // derive self as the remainder, so total == self + sum(children).
      const double wall_incl = node == 0 ? wall_children : n.wall_total;
      const long long bytes_incl = node == 0 ? bytes_children : n.mem_bytes_total;
      const long long allocs_incl =
          node == 0 ? allocs_children : n.mem_allocs_total;
      e.wall_total = wall_incl;
      e.wall_self = wall_incl - wall_children;
      e.mem_bytes_total = bytes_incl;
      e.mem_bytes_self = bytes_incl - bytes_children;
      e.mem_allocs_total = allocs_incl;
      e.mem_allocs_self = allocs_incl - allocs_children;
      return idx;
    }
  };
  Emit{this, &p}.emit(0, -1, 0, std::string());
  return p;
}

double Profile::counter_total(const std::string& name) const {
  if (entries.empty()) return 0.0;
  const auto it = entries.front().counters.find(name);
  return it == entries.front().counters.end() ? 0.0 : it->second.total;
}

const ProfileEntry* Profile::find(const std::string& path) const {
  for (const ProfileEntry& e : entries)
    if (e.path == path) return &e;
  return nullptr;
}

}  // namespace tarr::prof
