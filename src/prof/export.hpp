#pragma once

#include <string>

#include "prof/profiler.hpp"

/// \file export.hpp
/// Exporters for aggregated profiles (prof::Profile):
///  * flat_csv        — self/total flat profile, one row per (scope, metric),
///                      via tarr::bench::CsvWriter;
///  * collapsed_stacks — Brendan-Gregg collapsed-stack text ("a;b;c N"),
///                      flamegraph.pl / speedscope / inferno compatible;
///  * speedscope_json — evented speedscope file (https://speedscope.app),
///                      one O/C event pair per scope, children laid out
///                      inside their parent's span.
///
/// All exporters are deterministic for deterministic inputs: fixed field
/// order, locale-independent %.17g number formatting (exact integers bare).
/// Wall-clock columns are opt-in (ExportOptions::include_wall), so the
/// default CSV of a same-seed run is byte-identical across runs — the
/// contract CI's prof smoke pins with `cmp`.

namespace tarr::prof {

struct ExportOptions {
  /// Include wall_seconds rows/columns (nondeterministic; off by default,
  /// mirroring --trace-wall).
  bool include_wall = false;
};

/// Flat profile CSV with header
/// `path,depth,calls,metric,self,total`.  Per scope, rows appear as:
/// "work" first, then named counters (sorted), then mem.bytes/mem.allocs
/// (only when the counting allocator was linked), then wall_seconds (only
/// with include_wall).
std::string flat_csv(const Profile& p, const ExportOptions& opts = {});

/// Collapsed stacks weighted by a metric's *self* value per scope
/// ("root;a;b 42", one line per scope with nonzero weight).  `metric` is
/// "work", "calls", "mem.bytes", "mem.allocs", "wall_seconds", or any
/// counter name.
std::string collapsed_stacks(const Profile& p, const std::string& metric);

/// Speedscope-loadable evented profile weighted by a metric (same names as
/// collapsed_stacks; weights use each scope's total, children nested inside
/// the parent's span, the self remainder trailing).
std::string speedscope_json(const Profile& p, const std::string& metric,
                            const std::string& name);

/// Metric accessor shared by the exporters: self/total of `metric` at one
/// entry (unknown counters read as 0).
ProfileMetric metric_of(const ProfileEntry& e, const std::string& metric);

}  // namespace tarr::prof
