#include "prof/export.hpp"

#include <cmath>
#include <cstdio>

#include "bench/csv.hpp"

namespace tarr::prof {

namespace {

/// Deterministic number formatting (same convention as the Tracer and the
/// snapshot writer): exact integers bare, everything else %.17g.
std::string fmt(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string display_path(const ProfileEntry& e) {
  return e.parent < 0 ? "(root)" : e.path;
}

}  // namespace

ProfileMetric metric_of(const ProfileEntry& e, const std::string& metric) {
  if (metric == "work") return ProfileMetric{e.work_self, e.work_total};
  if (metric == "calls") {
    const double c = static_cast<double>(e.calls);
    return ProfileMetric{c, c};
  }
  if (metric == "wall_seconds") return ProfileMetric{e.wall_self, e.wall_total};
  if (metric == "mem.bytes")
    return ProfileMetric{static_cast<double>(e.mem_bytes_self),
                         static_cast<double>(e.mem_bytes_total)};
  if (metric == "mem.allocs")
    return ProfileMetric{static_cast<double>(e.mem_allocs_self),
                         static_cast<double>(e.mem_allocs_total)};
  const auto it = e.counters.find(metric);
  return it == e.counters.end() ? ProfileMetric{} : it->second;
}

std::string flat_csv(const Profile& p, const ExportOptions& opts) {
  bench::CsvWriter w;
  w.set_header({"path", "depth", "calls", "metric", "self", "total"});
  for (const ProfileEntry& e : p.entries) {
    const std::string path = display_path(e);
    const std::string depth = fmt(static_cast<double>(e.depth));
    const std::string calls = fmt(static_cast<double>(e.calls));
    auto row = [&](const std::string& metric, const ProfileMetric& m) {
      w.add_row({path, depth, calls, metric, fmt(m.self), fmt(m.total)});
    };
    row("work", ProfileMetric{e.work_self, e.work_total});
    for (const auto& [name, m] : e.counters) row(name, m);
    if (p.mem_tracked) {
      row("mem.bytes", metric_of(e, "mem.bytes"));
      row("mem.allocs", metric_of(e, "mem.allocs"));
    }
    if (opts.include_wall)
      row("wall_seconds", ProfileMetric{e.wall_self, e.wall_total});
  }
  return w.to_string();
}

std::string collapsed_stacks(const Profile& p, const std::string& metric) {
  std::string out;
  for (const ProfileEntry& e : p.entries) {
    const double self = metric_of(e, metric).self;
    if (self == 0.0) continue;
    // Stack frames separated by ';', weight after the last frame.
    std::string stack = "(root)";
    if (e.parent >= 0) {
      std::string frames = e.path;
      for (char& c : frames)
        if (c == '/') c = ';';
      stack += ";" + frames;
    }
    out += stack + " " + fmt(self) + "\n";
  }
  return out;
}

std::string speedscope_json(const Profile& p, const std::string& metric,
                            const std::string& name) {
  // Evented speedscope profile: frame table = one frame per scope entry,
  // events = O/C pairs in preorder, children laid out consecutively inside
  // the parent span with the self remainder trailing.
  std::string frames;
  for (std::size_t i = 0; i < p.entries.size(); ++i) {
    if (i != 0) frames += ",";
    frames += "{\"name\": \"" + json_escape(display_path(p.entries[i])) + "\"}";
  }

  std::string events;
  double end_value = 0.0;
  // Recursive layout over the entry tree (children of entry i are the
  // entries whose parent == i, preorder-contiguous).
  std::vector<std::vector<int>> children(p.entries.size());
  for (std::size_t i = 1; i < p.entries.size(); ++i)
    children[static_cast<std::size_t>(p.entries[i].parent)].push_back(
        static_cast<int>(i));

  struct Layout {
    const Profile* p;
    const std::string* metric;
    const std::vector<std::vector<int>>* children;
    std::string* events;
    void emit(int idx, double at, double* end) const {
      const ProfileEntry& e = p->entries[static_cast<std::size_t>(idx)];
      const double total = metric_of(e, *metric).total;
      *events += std::string(events->empty() ? "" : ",") + "{\"type\": \"O\"" +
                 ", \"frame\": " + fmt(idx) + ", \"at\": " + fmt(at) + "}";
      double cursor = at;
      for (int c : (*children)[static_cast<std::size_t>(idx)]) {
        double child_end = cursor;
        emit(c, cursor, &child_end);
        cursor = child_end;
      }
      const double close_at = at + total > cursor ? at + total : cursor;
      *events += ",{\"type\": \"C\", \"frame\": " + fmt(idx) +
                 ", \"at\": " + fmt(close_at) + "}";
      *end = close_at;
    }
  };
  Layout{&p, &metric, &children, &events}.emit(0, 0.0, &end_value);

  const std::string unit = metric == "wall_seconds" ? "seconds"
                           : metric == "mem.bytes"  ? "bytes"
                                                    : "none";
  std::string out;
  out += "{\n";
  out += "  \"$schema\": \"https://www.speedscope.app/file-format-schema.json\",\n";
  out += "  \"name\": \"" + json_escape(name) + "\",\n";
  out += "  \"activeProfileIndex\": 0,\n";
  out += "  \"exporter\": \"tarr::prof\",\n";
  out += "  \"shared\": {\"frames\": [" + frames + "]},\n";
  out += "  \"profiles\": [{\n";
  out += "    \"type\": \"evented\",\n";
  out += "    \"name\": \"" + json_escape(metric) + "\",\n";
  out += "    \"unit\": \"" + unit + "\",\n";
  out += "    \"startValue\": 0,\n";
  out += "    \"endValue\": " + fmt(end_value) + ",\n";
  out += "    \"events\": [" + events + "]\n";
  out += "  }]\n";
  out += "}\n";
  return out;
}

}  // namespace tarr::prof
