#include "prof/scaling.hpp"

#include <cmath>
#include <cstdio>

namespace tarr::prof {

PowerFit fit_power_law(const std::vector<ScalingPoint>& points) {
  PowerFit fit;
  std::vector<double> xs;
  std::vector<double> ys;
  for (const ScalingPoint& p : points) {
    if (p.n <= 0.0 || p.value <= 0.0) continue;
    xs.push_back(std::log(p.n));
    ys.push_back(std::log(p.value));
  }
  fit.points = static_cast<int>(xs.size());
  if (xs.size() < 2) return fit;

  const double n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return fit;  // all sizes identical
  fit.exponent = (n * sxy - sx * sy) / denom;
  const double intercept = (sy - fit.exponent * sx) / n;
  fit.coeff = std::exp(intercept);

  double ss_res = 0.0, ss_tot = 0.0;
  const double mean_y = sy / n;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.exponent * xs[i] + intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  fit.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  fit.valid = true;
  return fit;
}

std::string classify_complexity(const PowerFit& fit) {
  if (!fit.valid) return "n/a";
  const double e = fit.exponent;
  if (e < 0.1) return "O(1)";
  static const struct {
    double exponent;
    const char* label;
  } kBuckets[] = {
      {0.5, "O(n^0.5)"}, {1.0, "O(n)"},     {1.5, "O(n^1.5)"},
      {2.0, "O(n^2)"},   {2.5, "O(n^2.5)"}, {3.0, "O(n^3)"},
  };
  for (const auto& b : kBuckets)
    if (std::fabs(e - b.exponent) <= 0.25) return b.label;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "O(n^%.2f)", e);
  return buf;
}

}  // namespace tarr::prof
