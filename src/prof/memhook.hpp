#pragma once

/// \file memhook.hpp
/// Counting allocator hook for tarr::prof.
///
/// The library `tarr_prof_memhook` replaces the global operator new/delete
/// with thin forwarding wrappers that count requested bytes and allocation
/// calls in thread-local counters.  Because replacing operator new affects
/// a *whole binary*, the hook lives in its own archive that only the CLIs
/// (and test_prof) link — the core libraries never pull it in, so library
/// consumers keep the stock allocator.
///
/// Call `link_memhook()` once at startup: it anchors the hook's archive
/// member (an unreferenced operator-new replacement would be dropped at
/// link time) and registers the counter reader with the profiler, after
/// which every ProfScope charges allocation deltas to its scope.  Byte
/// counts are *requested* bytes, so they are deterministic for
/// deterministic code — they ride the byte-identity contract with the
/// work counters.
///
/// Binaries that never call link_memhook() still get the counting
/// allocator if they link the archive and something anchors it; the
/// counters just go unread.  Binaries that do not link the archive report
/// mem.* as untracked (Profile::mem_tracked == false).

namespace tarr::prof {

/// Anchor the counting allocator and register its reader with the
/// profiler.  Idempotent; returns true (so it can initialize a static).
bool link_memhook();

}  // namespace tarr::prof
