#include "prof/publish.hpp"

namespace tarr::prof {

void publish(const Profile& p, trace::MetricsRegistry& reg) {
  if (p.entries.empty()) return;
  const ProfileEntry& root = p.entries.front();
  for (const auto& [name, metric] : root.counters)
    reg.add_count("prof." + name, metric.total);
  if (p.mem_tracked) {
    reg.add_count("prof.mem.bytes", static_cast<double>(root.mem_bytes_total));
    reg.add_count("prof.mem.allocs",
                  static_cast<double>(root.mem_allocs_total));
  }
  for (const ProfileEntry& e : p.entries) {
    if (e.depth != 1) continue;
    reg.add_count("prof.scope." + e.name + ".calls",
                  static_cast<double>(e.calls));
    reg.add_count("prof.scope." + e.name + ".work", e.work_total);
  }
  // Distribution of scope self-times across the whole tree (root excluded:
  // its self-time is the unattributed remainder, not a scope) — the shape
  // tells hot-scope findings whether one phase dominates or many share.
  for (const ProfileEntry& e : p.entries) {
    if (e.depth < 1 || e.work_self < 0.0) continue;
    reg.observe("prof.scope_self_work", e.work_self);
  }
}

}  // namespace tarr::prof
