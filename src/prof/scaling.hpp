#pragma once

#include <string>
#include <vector>

/// \file scaling.hpp
/// Log-log power-law fitting for the scaling-curve harness: each profiled
/// phase is swept over rank counts and its deterministic work counter is
/// fitted as value ≈ coeff * n^exponent.  The fitted exponent classifies
/// the phase's *empirical* complexity (O(n), O(n log n), O(n^2), ...) —
/// the baseline the ROADMAP's parallelization item is measured against
/// (docs/OBSERVABILITY.md, "Scaling curves").

namespace tarr::prof {

/// One sweep sample: problem size n (ranks) and the counter value at n.
struct ScalingPoint {
  double n = 0.0;
  double value = 0.0;
};

/// Least-squares fit of log(value) = exponent*log(n) + log(coeff).
/// Requires >= 2 points with n > 0 and value > 0; `valid` is false
/// otherwise (points with value == 0 are skipped — an all-zero counter has
/// no slope).
struct PowerFit {
  double exponent = 0.0;
  double coeff = 0.0;
  double r2 = 0.0;  ///< coefficient of determination in log space
  int points = 0;   ///< samples used
  bool valid = false;
};

PowerFit fit_power_law(const std::vector<ScalingPoint>& points);

/// Human label for a fitted exponent: "O(1)" below 0.1, then the nearest of
/// O(n^0.5), O(n), O(n^1.5), O(n^2), O(n^2.5), O(n^3); "O(n^x.xx)" beyond.
/// Invalid fits classify as "n/a".
std::string classify_complexity(const PowerFit& fit);

}  // namespace tarr::prof
