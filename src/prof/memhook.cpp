#include "prof/memhook.hpp"

#include <cstdlib>
#include <new>

#include "prof/profiler.hpp"

/// Replaced global allocation functions.  Counting is thread-local (no
/// atomics on the hot path) and counts *requested* bytes: deterministic
/// for deterministic code, unlike heap-geometry-dependent usable sizes.
/// Deallocations are not tracked — scopes charge cumulative allocation
/// pressure, not live bytes, which is the stable quantity across runs.

namespace {

thread_local unsigned long long t_bytes = 0;
thread_local unsigned long long t_allocs = 0;

void* counted_alloc(std::size_t size) {
  t_bytes += size;
  t_allocs += 1;
  // malloc(0) may return nullptr legally; operator new must not.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_nothrow(std::size_t size) noexcept {
  t_bytes += size;
  t_allocs += 1;
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  t_bytes += size;
  t_allocs += 1;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0)
    throw std::bad_alloc();
  return p;
}

tarr::prof::MemCounters read_counters() {
  tarr::prof::MemCounters c;
  c.bytes = t_bytes;
  c.allocs = t_allocs;
  return c;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc_nothrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc_nothrow(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace tarr::prof {

bool link_memhook() {
  detail::set_mem_source(&read_counters);
  return true;
}

}  // namespace tarr::prof
