#pragma once

/// \file prof.hpp
/// Umbrella header for tarr::prof (docs/OBSERVABILITY.md, "Profiling").

#include "prof/export.hpp"     // IWYU pragma: export
#include "prof/memhook.hpp"    // IWYU pragma: export
#include "prof/profiler.hpp"   // IWYU pragma: export
#include "prof/publish.hpp"    // IWYU pragma: export
#include "prof/scaling.hpp"    // IWYU pragma: export
