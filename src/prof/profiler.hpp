#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

/// \file profiler.hpp
/// tarr::prof — deterministic self-profiling of the reproduction itself
/// (see docs/OBSERVABILITY.md, "Profiling").
///
/// Where tarr::trace makes the *simulated machine* legible, tarr::prof
/// makes the *reproduction's own hot paths* legible: bisection, FM
/// refinement, distance extraction, cost-model pricing, the engine stage
/// loop, and the probing controller.  It is the flat-profile evidence the
/// ROADMAP's parallelization item is judged against.
///
/// Two metric families, never mixed in one export column:
///  * deterministic work counters — swap evaluations, matrix cells filled,
///    transfers priced, bytes allocated through the counting hook.  Same
///    seed, same counters, byte for byte; these ride the perf gate.
///  * wall-clock seconds — measured per scope but exported only on request
///    (ExportOptions::include_wall), mirroring `--trace-wall`.
///
/// Cost discipline mirrors trace's ambient-sink pattern: instrumented code
/// consults a thread-local `Profiler*` that defaults to nullptr, so every
/// disabled site is one thread-local load and a branch.  Profiling observes
/// the computation without participating in it — enabling it must not
/// change any simulated cost (asserted by tests/test_prof.cpp).

namespace tarr::prof {

/// Snapshot of the process-wide counting allocator (prof/memhook.cpp).
/// Zero until `link_memhook()` registers the hook's reader.
struct MemCounters {
  unsigned long long bytes = 0;   ///< requested bytes, cumulative
  unsigned long long allocs = 0;  ///< allocation calls, cumulative
};

/// Self + subtree value of one metric at one scope (Profile is the
/// aggregated export form; totals are exact sums by construction).
struct ProfileMetric {
  double self = 0.0;
  double total = 0.0;
};

/// One scope node of an aggregated profile, preorder-flattened.
struct ProfileEntry {
  std::string name;   ///< scope name ("(root)" for the implicit root)
  std::string path;   ///< "/"-joined path from root, "" for the root
  int parent = -1;    ///< index of parent entry, -1 for the root
  int depth = 0;      ///< root is 0
  long long calls = 0;
  double wall_self = 0.0;   ///< seconds (total - sum of child totals, exact)
  double wall_total = 0.0;  ///< seconds, inclusive
  long long mem_bytes_self = 0;
  long long mem_bytes_total = 0;
  long long mem_allocs_self = 0;
  long long mem_allocs_total = 0;
  double work_self = 0.0;   ///< sum of all counter deltas charged here
  double work_total = 0.0;
  /// Named deterministic counters (sorted by name — std::map).
  std::map<std::string, ProfileMetric> counters;
};

/// Aggregated scope tree, ready for export (prof/export.hpp) or
/// rendering (viz/profile.hpp).  entries[0] is always the root.
struct Profile {
  std::vector<ProfileEntry> entries;
  bool mem_tracked = false;  ///< the counting allocator hook was active

  /// Root total of a named counter (0 if never counted).
  double counter_total(const std::string& name) const;
  /// First entry whose path equals `path` (nullptr if absent).
  const ProfileEntry* find(const std::string& path) const;
};

/// Hierarchical scoped profiler.  Scopes aggregate by (parent, name): the
/// second `ProfScope("bisect")` under the same parent accumulates into the
/// same node rather than growing the tree, so profiles stay small and
/// deterministic regardless of call counts.  Recursive re-entry of a name
/// nests (a "bisect" child under "bisect") instead of double-counting
/// inclusive time.  Not thread-safe; one Profiler per thread, merged with
/// merge() afterwards.
class Profiler {
 public:
  Profiler();

  /// Open a child scope of the current scope (creating the node on first
  /// entry, in first-entry order — deterministic for deterministic code).
  void enter(const std::string& name);
  /// Close the innermost open scope, charging wall time and allocator
  /// deltas to it.
  void exit_scope();
  /// Charge a named counter delta (and the aggregate "work" metric) to the
  /// innermost open scope, or to the root when no scope is open.
  void count(const std::string& name, double delta);

  /// Open scopes right now (0 at rest; snapshot/merge require 0).
  int open_scopes() const { return static_cast<int>(stack_.size()); }

  /// Fold another profiler's tree into this one, matching scopes by path.
  /// Both profilers must be at rest.  Used to combine per-thread ambient
  /// profiles.
  void merge(const Profiler& other);

  /// Aggregate the tree into its export form.  Totals are computed so that
  /// total == self + sum(child totals) holds exactly (EXPECT_EQ-exact) for
  /// every metric.
  Profile snapshot() const;

 private:
  struct Node {
    std::string name;
    int parent = -1;
    std::vector<int> children;             // first-entry order
    std::map<std::string, int> by_name;    // child name -> node index
    long long calls = 0;
    double wall_total = 0.0;               // inclusive seconds
    long long mem_bytes_total = 0;         // inclusive, via memhook
    long long mem_allocs_total = 0;
    double work_self = 0.0;
    std::map<std::string, double> counts;  // self values
  };
  struct Open {
    int node = 0;
    std::chrono::steady_clock::time_point t0;
    MemCounters mem0;
  };

  void merge_node(int dst, const Profiler& other, int src);

  std::vector<Node> nodes_;  // nodes_[0] = implicit root
  std::vector<Open> stack_;
};

/// Ambient per-thread profiler, mirroring trace::thread_sink(): the mapping
/// heuristics, bisection, and cost model are pure functions of their inputs
/// and cannot carry a profiler pointer without polluting their signatures.
/// nullptr (the default) disables profiling.
Profiler* thread_profiler();
void set_thread_profiler(Profiler* p);

/// RAII installer for the thread profiler; restores the previous one so
/// nested installations compose.
class ScopedThreadProfiler {
 public:
  explicit ScopedThreadProfiler(Profiler* p);
  ~ScopedThreadProfiler();
  ScopedThreadProfiler(const ScopedThreadProfiler&) = delete;
  ScopedThreadProfiler& operator=(const ScopedThreadProfiler&) = delete;

 private:
  Profiler* prev_;
};

/// RAII scope against the *ambient* profiler.  The profiler pointer is
/// captured at construction, so installing/removing the thread profiler
/// mid-scope cannot unbalance the stack.
class ProfScope {
 public:
  explicit ProfScope(const std::string& name) : prof_(thread_profiler()) {
    if (prof_ != nullptr) prof_->enter(name);
  }
  ~ProfScope() {
    if (prof_ != nullptr) prof_->exit_scope();
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler* prof_;
};

/// Charge a counter against the ambient profiler (no-op when disabled;
/// one thread-local load + branch).
inline void count(const std::string& name, double delta = 1.0) {
  if (Profiler* p = thread_profiler()) p->count(name, delta);
}

namespace detail {
/// Reader of the process-wide allocation counters, registered by
/// prof::link_memhook().  nullptr when the counting allocator is not
/// linked into the binary.
using MemSnapshotFn = MemCounters (*)();
void set_mem_source(MemSnapshotFn fn);
MemSnapshotFn mem_source();
}  // namespace detail

}  // namespace tarr::prof
