#pragma once

#include "prof/profiler.hpp"
#include "trace/metrics.hpp"

/// \file publish.hpp
/// Bridge from a finished profile into the trace-layer MetricsRegistry, so
/// `--metrics` CSVs pick up profiler totals with no new plumbing: every
/// counter appears as a `prof.<name>` counter row, each top-level scope as
/// `prof.scope.<name>.calls` / `.work`, and (when the counting allocator
/// is linked) `prof.mem.bytes` / `prof.mem.allocs`.  Scope self-times
/// additionally feed the `prof.scope_self_work` distribution (dist rows),
/// so the hot-scope diagnosis can see the shape, not just the totals.

namespace tarr::prof {

void publish(const Profile& p, trace::MetricsRegistry& reg);

}  // namespace tarr::prof
