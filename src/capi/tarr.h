#ifndef TARR_CAPI_H
#define TARR_CAPI_H

/* tarr.h — C interface to the topology-aware rank-reordering library.
 *
 * The C API mirrors how the paper's runtime would surface in an MPI
 * implementation: create a machine (or its model), a communicator with the
 * resource manager's layout, a reordering framework, then a topology-aware
 * allgather handle configured through MPI-info-style key strings
 * ("tarr_mapper=heuristic;tarr_order_fix=initcomm").
 *
 * Conventions:
 *  - every function returns TARR_OK (0) on success or TARR_ERROR (-1);
 *    tarr_last_error() returns the most recent failure message of the
 *    calling thread;
 *  - handles are opaque and must be destroyed with their destroy function;
 *  - lifetime: a machine must outlive every framework/communicator built
 *    on it; a framework must outlive every allgather handle built on it.
 */

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

#define TARR_OK 0
#define TARR_ERROR (-1)

typedef struct tarr_machine_s* tarr_machine_t;
typedef struct tarr_comm_s* tarr_comm_t;
typedef struct tarr_framework_s* tarr_framework_t;
typedef struct tarr_allgather_s* tarr_allgather_t;

/* Most recent error message of this thread ("" if none). */
const char* tarr_last_error(void);

/* --- machine ----------------------------------------------------------- */

/* GPC-like fat-tree machine with `nodes` dual-socket quad-core nodes. */
int tarr_machine_create_gpc(int nodes, tarr_machine_t* out);
/* Single-crossbar machine (contention-free control). */
int tarr_machine_create_single_switch(int nodes, tarr_machine_t* out);
void tarr_machine_destroy(tarr_machine_t m);
int tarr_machine_total_cores(tarr_machine_t m);
int tarr_machine_num_nodes(tarr_machine_t m);

/* --- communicator ------------------------------------------------------ */

/* `layout` accepts the library names ("block-bunch", ...) and SLURM
 * --distribution syntax ("block:cyclic", ...). */
int tarr_comm_create(tarr_machine_t m, int procs, const char* layout,
                     tarr_comm_t* out);
void tarr_comm_destroy(tarr_comm_t c);
int tarr_comm_size(tarr_comm_t c);
/* Core hosting rank r, or TARR_ERROR on a bad rank. */
int tarr_comm_core_of(tarr_comm_t c, int rank);

/* --- framework --------------------------------------------------------- */

int tarr_framework_create(tarr_machine_t m, uint64_t seed,
                          tarr_framework_t* out);
void tarr_framework_destroy(tarr_framework_t f);
/* Wall-clock seconds of the one-time distance extraction so far. */
double tarr_framework_extraction_seconds(tarr_framework_t f);

/* --- topology-aware allgather ------------------------------------------ */

/* `info` is a "key=value;key=value" string (see core/info.hpp), or NULL /
 * "" for the defaults (heuristic mapper, initComm fix). */
int tarr_allgather_create(tarr_framework_t f, tarr_comm_t c,
                          const char* info, tarr_allgather_t* out);
void tarr_allgather_destroy(tarr_allgather_t a);
/* Simulated latency (microseconds) of one allgather of msg_bytes/rank. */
int tarr_allgather_latency(tarr_allgather_t a, long long msg_bytes,
                           double* out_usec);
/* Payload-verified execution (Data mode); fails if the output vector is
 * not in original-rank order. */
int tarr_allgather_verify(tarr_allgather_t a, long long msg_bytes);
/* Accumulated one-time mapping overhead (wall-clock seconds). */
double tarr_allgather_mapping_seconds(tarr_allgather_t a);

#ifdef __cplusplus
}
#endif

#endif /* TARR_CAPI_H */
