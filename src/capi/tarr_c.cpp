#include "capi/tarr.h"

#include <string>

#include "common/error.hpp"
#include "core/info.hpp"
#include "core/topoallgather.hpp"
#include "simmpi/layout.hpp"

/* Opaque handle definitions (C-visible struct tags wrapping C++ objects). */
struct tarr_machine_s {
  tarr::topology::Machine machine;
};
struct tarr_comm_s {
  tarr::simmpi::Communicator comm;
};
struct tarr_framework_s {
  tarr::core::ReorderFramework framework;
};
struct tarr_allgather_s {
  tarr::core::TopoAllgather allgather;
};

namespace {

thread_local std::string g_last_error;

/// Run `fn` translating tarr::Error (and anything else) into TARR_ERROR +
/// the thread-local message.
template <typename Fn>
int guarded(Fn&& fn) {
  try {
    fn();
    g_last_error.clear();
    return TARR_OK;
  } catch (const std::exception& e) {
    g_last_error = e.what();
    return TARR_ERROR;
  } catch (...) {
    g_last_error = "tarr: unknown error";
    return TARR_ERROR;
  }
}

}  // namespace

extern "C" {

const char* tarr_last_error(void) { return g_last_error.c_str(); }

int tarr_machine_create_gpc(int nodes, tarr_machine_t* out) {
  return guarded([&] {
    TARR_REQUIRE(out != nullptr, "tarr_machine_create_gpc: null out");
    *out = new tarr_machine_s{tarr::topology::Machine::gpc(nodes)};
  });
}

int tarr_machine_create_single_switch(int nodes, tarr_machine_t* out) {
  return guarded([&] {
    TARR_REQUIRE(out != nullptr,
                 "tarr_machine_create_single_switch: null out");
    *out = new tarr_machine_s{tarr::topology::Machine::single_switch(nodes)};
  });
}

void tarr_machine_destroy(tarr_machine_t m) { delete m; }

int tarr_machine_total_cores(tarr_machine_t m) {
  return m != nullptr ? m->machine.total_cores() : TARR_ERROR;
}

int tarr_machine_num_nodes(tarr_machine_t m) {
  return m != nullptr ? m->machine.num_nodes() : TARR_ERROR;
}

int tarr_comm_create(tarr_machine_t m, int procs, const char* layout,
                     tarr_comm_t* out) {
  return guarded([&] {
    TARR_REQUIRE(m != nullptr && out != nullptr,
                 "tarr_comm_create: null argument");
    const tarr::simmpi::LayoutSpec spec =
        layout != nullptr && layout[0] != '\0'
            ? tarr::simmpi::parse_layout_spec(layout)
            : tarr::simmpi::LayoutSpec{};
    *out = new tarr_comm_s{tarr::simmpi::Communicator(
        m->machine, tarr::simmpi::make_layout(m->machine, procs, spec))};
  });
}

void tarr_comm_destroy(tarr_comm_t c) { delete c; }

int tarr_comm_size(tarr_comm_t c) {
  return c != nullptr ? c->comm.size() : TARR_ERROR;
}

int tarr_comm_core_of(tarr_comm_t c, int rank) {
  if (c == nullptr || rank < 0 || rank >= c->comm.size()) {
    g_last_error = "tarr_comm_core_of: bad communicator or rank";
    return TARR_ERROR;
  }
  return c->comm.core_of(rank);
}

int tarr_framework_create(tarr_machine_t m, uint64_t seed,
                          tarr_framework_t* out) {
  return guarded([&] {
    TARR_REQUIRE(m != nullptr && out != nullptr,
                 "tarr_framework_create: null argument");
    tarr::core::ReorderFramework::Options opts;
    opts.seed = seed;
    *out = new tarr_framework_s{
        tarr::core::ReorderFramework(m->machine, opts)};
  });
}

void tarr_framework_destroy(tarr_framework_t f) { delete f; }

double tarr_framework_extraction_seconds(tarr_framework_t f) {
  return f != nullptr ? f->framework.distance_extraction_seconds() : 0.0;
}

int tarr_allgather_create(tarr_framework_t f, tarr_comm_t c,
                          const char* info, tarr_allgather_t* out) {
  return guarded([&] {
    TARR_REQUIRE(f != nullptr && c != nullptr && out != nullptr,
                 "tarr_allgather_create: null argument");
    const tarr::core::InfoConfig parsed =
        tarr::core::parse_info_string(info != nullptr ? info : "");
    *out = new tarr_allgather_s{tarr::core::TopoAllgather(
        f->framework, c->comm, parsed.config)};
  });
}

void tarr_allgather_destroy(tarr_allgather_t a) { delete a; }

int tarr_allgather_latency(tarr_allgather_t a, long long msg_bytes,
                           double* out_usec) {
  return guarded([&] {
    TARR_REQUIRE(a != nullptr && out_usec != nullptr,
                 "tarr_allgather_latency: null argument");
    *out_usec = a->allgather.latency(static_cast<tarr::Bytes>(msg_bytes));
  });
}

int tarr_allgather_verify(tarr_allgather_t a, long long msg_bytes) {
  return guarded([&] {
    TARR_REQUIRE(a != nullptr, "tarr_allgather_verify: null argument");
    a->allgather.run_and_check(static_cast<tarr::Bytes>(msg_bytes));
  });
}

double tarr_allgather_mapping_seconds(tarr_allgather_t a) {
  return a != nullptr ? a->allgather.mapping_seconds() : 0.0;
}

}  // extern "C"
