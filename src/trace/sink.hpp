#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

/// \file sink.hpp
/// Event vocabulary and sink interface of tarr::trace, the observability
/// subsystem (see docs/OBSERVABILITY.md).
///
/// The paper's whole argument is about *where* bytes flow: Figs 3-4
/// attribute the speedups to relieved leaf oversubscription and QPI sharing,
/// and Fig 7 accounts for the wall-clock overhead of distance extraction and
/// each mapping heuristic.  tarr::trace makes those flows visible: the
/// engine, the cost model, the collectives, the mapping stack and the fault
/// campaign all emit typed events through a TraceSink, and the concrete
/// Tracer (trace/tracer.hpp) turns them into a Chrome trace-event timeline
/// (Perfetto-loadable) plus a metrics registry snapshot.
///
/// Cost discipline: every instrumented component holds a plain
/// `TraceSink*` that defaults to nullptr, and each emission site is exactly
/// one pointer check.  With no sink installed the instrumented code paths
/// are bit-identical to a build that never heard of this header — tracing
/// never perturbs the simulated costs or the payload movement it observes.
/// NullSink exists for callers that want a non-null sink object with the
/// same "observe nothing" semantics.
///
/// Two clocks appear in the taxonomy and are never mixed on one track:
///  * simulated microseconds (Usec) — stages, transfers, collective phases,
///    link/QPI load counters;
///  * wall-clock seconds — mapping/profiling spans (the Fig 7 overheads).

namespace tarr::trace {

/// Communication channel class of a priced transfer (mirrors the cost
/// model's channel taxonomy; Local is a same-rank memory copy).
enum class Channel { SameComplex, SameSocket, CrossSocket, Network, Local };

const char* to_string(Channel c);

/// One engine stage (a set of concurrent transfers priced together).
struct StageEvent {
  int stage = 0;       ///< 0-based engine stage index
  int transfers = 0;   ///< copies the stage carried (local ones included)
  int repeats = 1;     ///< compressed identical executions (repeat_last_stage)
  Usec start = 0.0;    ///< simulated start time
  Usec duration = 0.0; ///< stage cost (retry waits and local copies included)
  /// Drop-detection timeout wait serialized in front of the stage's
  /// (contention-priced) retransmissions; 0 without transient faults.  For
  /// a repeat-compressed event this is the per-execution wait, not the
  /// total across repeats.
  Usec retry_wait = 0.0;
};

/// One logical transfer of a stage (retransmission attempts folded in).
struct TransferEvent {
  int stage = 0;
  Rank src_rank = 0;
  Rank dst_rank = 0;
  CoreId src_core = 0;
  CoreId dst_core = 0;
  Bytes bytes = 0;
  Channel channel = Channel::Network;
  double contention = 1.0;  ///< slowdown factor over the uncontended floor
  int attempts = 1;         ///< 1 + transient-fault retransmissions
  Usec start = 0.0;
  Usec duration = 0.0;      ///< priced cost of this transfer
  /// Cost the transfer would have had alone on its channel (contention
  /// factor 1.0): latency terms plus the per-pair bandwidth floor.
  /// duration - uncontended is the stall the stage's resource sharing
  /// (including retransmission reloads) inflicted — the quantity
  /// tarr::report splits into serialization vs. contention.
  Usec uncontended = 0.0;
};

/// A simulated-time span grouping stages: collective phases (intra gather,
/// leader exchange, intra bcast, pipelined superstages), orderfix shuffles.
struct PhaseEvent {
  std::string name;
  Usec start = 0.0;
  Usec duration = 0.0;
};

/// One per-stage load sample of a shared resource (emitted at stage start
/// with the stage's byte load, and again with 0 at stage end).
struct CounterSample {
  enum class Kind { Link, Qpi };
  Kind kind = Kind::Link;
  int id = 0;   ///< LinkId, or NodeId for QPI
  int dir = 0;  ///< direction slot (0/1), matching CostModel's convention
  Usec ts = 0.0;
  double value = 0.0;  ///< bytes loaded onto the resource this stage
};

/// A wall-clock profiling span: distance extraction, one mapping run, one
/// refinement run — the Fig 7 overhead decomposition.
struct WallSpan {
  std::string name;       ///< e.g. "distance-extraction", "map:RDMH"
  double seconds = 0.0;   ///< measured wall-clock duration
};

/// One engine-level copy exactly as submitted to Engine::copy/combine —
/// the schedule-IR view of a stage, at block granularity.  Where a
/// TransferEvent describes *pricing* (local copies aggregated per rank,
/// channel/contention attached), a CopyEvent describes *dataflow*: source
/// and destination block offsets, block count, and whether the write
/// reduces into the destination (combine) or overwrites it (copy).  Local
/// copies are emitted individually here even though pricing folds them
/// into one per-rank TransferEvent.  tarr::analyze's static dataflow pass
/// is built on this event.
struct CopyEvent {
  int stage = 0;       ///< 0-based engine stage index
  Rank src = 0;
  Rank dst = 0;
  int src_off = 0;     ///< first block read in src's buffer
  int dst_off = 0;     ///< first block written in dst's buffer
  int nblocks = 0;     ///< contiguous blocks moved
  Bytes bytes = 0;     ///< nblocks * block size
  bool combining = false;  ///< true for Engine::combine (reduction write)
};

/// One §V-B local shuffle (Engine::local_permute_all): every rank applies
/// the same in-place block permutation, block b moving to slot
/// dst_of_block[b].  Emitted immediately before the paired "local-shuffle"
/// TimeEvent that prices it; identity entries are included so the vector
/// always has one slot per buffer block.
struct PermuteEvent {
  std::vector<int> dst_of_block;
  Usec start = 0.0;
  Usec duration = 0.0;
};

/// Simulated time the engine adds *outside* any stage: §V-B local shuffles
/// (Engine::local_permute_all) and Engine::add_time (application compute
/// phases, one-time overheads).  Unlike PhaseEvent — a grouping span over
/// stages that already carry their own durations — a TimeEvent is itself an
/// increment of the simulated clock.  Summing stage durations and time
/// events in emission order reconstructs the engine total bit-exactly,
/// which is the invariant tarr::report's critical-path attribution builds
/// on.
struct TimeEvent {
  std::string what;     ///< "local-shuffle", "compute", caller-provided
  Usec start = 0.0;     ///< simulated clock before the increment
  Usec duration = 0.0;  ///< time added
};

/// See file comment.  All handlers default to no-ops so sinks implement
/// only what they consume.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void on_stage(const StageEvent&) {}
  virtual void on_transfer(const TransferEvent&) {}
  virtual void on_copy(const CopyEvent&) {}
  virtual void on_permute(const PermuteEvent&) {}
  virtual void on_phase(const PhaseEvent&) {}
  virtual void on_counter(const CounterSample&) {}
  virtual void on_wall_span(const WallSpan&) {}
  virtual void on_time(const TimeEvent&) {}

  /// Named decision counter (additive): mapping placements and tie-breaks,
  /// bisection calls, refinement swaps accepted/rejected, selector picks.
  virtual void add_count(const std::string& name, double delta) {
    (void)name;
    (void)delta;
  }

  /// One sample of a named distribution (per-pair probe residuals, prof
  /// scope self-times, anything whose *shape* matters).  Concrete sinks
  /// feed a deterministic histogram (MetricsRegistry::observe); the default
  /// is a no-op so emission sites stay one pointer check.
  virtual void observe(const std::string& name, double value) {
    (void)name;
    (void)value;
  }
};

/// A sink that observes nothing (identical to having no sink installed).
class NullSink final : public TraceSink {};

/// Forwards every event to two downstream sinks (either may be null), so a
/// single emission point — the engine holds exactly one sink pointer — can
/// feed e.g. a Tracer and a report::ScheduleRecorder at once.  Events reach
/// `first` before `second`; both must outlive the tee.
class TeeSink final : public TraceSink {
 public:
  TeeSink(TraceSink* first, TraceSink* second) : a_(first), b_(second) {}

  void on_stage(const StageEvent& e) override;
  void on_transfer(const TransferEvent& e) override;
  void on_copy(const CopyEvent& e) override;
  void on_permute(const PermuteEvent& e) override;
  void on_phase(const PhaseEvent& e) override;
  void on_counter(const CounterSample& s) override;
  void on_wall_span(const WallSpan& s) override;
  void on_time(const TimeEvent& e) override;
  void add_count(const std::string& name, double delta) override;
  void observe(const std::string& name, double value) override;

 private:
  TraceSink* a_;
  TraceSink* b_;
};

/// Ambient per-thread sink for layers whose interfaces are pure functions
/// of their inputs (the mapping heuristics, the bisection engine, the
/// algorithm selector): they cannot carry a sink pointer without polluting
/// their signatures, so they consult the thread sink instead.  nullptr
/// (the default) disables emission; reading it is one thread-local load.
TraceSink* thread_sink();
void set_thread_sink(TraceSink* sink);

/// RAII installer for the thread sink; restores the previous sink (so
/// nested scopes compose, e.g. a traced CLI run around a traced mapping).
class ScopedThreadSink {
 public:
  explicit ScopedThreadSink(TraceSink* sink);
  ~ScopedThreadSink();
  ScopedThreadSink(const ScopedThreadSink&) = delete;
  ScopedThreadSink& operator=(const ScopedThreadSink&) = delete;

 private:
  TraceSink* prev_;
};

}  // namespace tarr::trace
