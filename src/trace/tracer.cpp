#include "trace/tracer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace tarr::trace {

namespace {

/// Deterministic, locale-independent number formatting for the JSON:
/// exact integers without a decimal point, everything else as %.17g
/// (round-trips doubles).  Trace files of same-seed runs are byte-diffed,
/// so formatting must be a pure function of the value.
std::string fmt(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_meta(std::string& out, const char* kind, int pid, int tid,
                 const std::string& name) {
  out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(tid) + ",\"name\":\"" + kind +
         "\",\"args\":{\"name\":\"" + escape(name) + "\"}},\n";
}

constexpr int kPidSim = 0;
constexpr int kPidLoad = 1;
constexpr int kPidWall = 2;
constexpr int kTidPhases = 0;
constexpr int kTidStages = 1;
constexpr int kTidRank0 = 2;  ///< rank r lives on tid kTidRank0 + r

}  // namespace

Tracer::Tracer(TracerOptions opts) : opts_(opts) {}

void Tracer::on_stage(const StageEvent& e) {
  if (opts_.timeline) {
    std::string args = "{\"stage\":" + std::to_string(e.stage) +
                       ",\"transfers\":" + std::to_string(e.transfers);
    if (e.repeats > 1) args += ",\"repeats\":" + std::to_string(e.repeats);
    args += "}";
    spans_.push_back({kPidSim, kTidStages, "stage " + std::to_string(e.stage),
                      e.start, e.duration, std::move(args)});
  }
  if (opts_.metrics) {
    metrics_.add_count("engine.stages", e.repeats);
    metrics_.add_count("engine.transfers",
                       static_cast<double>(e.transfers) * e.repeats);
    // StageEvent.duration for a repeat-compressed event is the TOTAL across
    // repeats; the distribution wants the per-execution cost, weighted by
    // how many executions it stands for.
    metrics_.observe_n("stage.duration",
                       e.duration / static_cast<double>(e.repeats), e.repeats);
  }
}

void Tracer::on_transfer(const TransferEvent& e) {
  max_rank_ = std::max(max_rank_, std::max<int>(e.src_rank, e.dst_rank));
  if (opts_.timeline) {
    std::string args = "{\"stage\":" + std::to_string(e.stage) +
                       ",\"dst\":" + std::to_string(e.dst_rank) +
                       ",\"src_core\":" + std::to_string(e.src_core) +
                       ",\"dst_core\":" + std::to_string(e.dst_core) +
                       ",\"bytes\":" + std::to_string(e.bytes) +
                       ",\"channel\":\"" + to_string(e.channel) + "\"" +
                       ",\"contention\":" + fmt(e.contention) +
                       ",\"uncontended\":" + fmt(e.uncontended);
    if (e.attempts > 1) args += ",\"attempts\":" + std::to_string(e.attempts);
    args += "}";
    const std::string name = e.channel == Channel::Local
                                 ? "local copy"
                                 : std::string(to_string(e.channel)) + " -> r" +
                                       std::to_string(e.dst_rank);
    spans_.push_back({kPidSim, kTidRank0 + static_cast<int>(e.src_rank), name,
                      e.start, e.duration, std::move(args)});
  }
  if (opts_.metrics) {
    metrics_.observe_transfer(e);
    // Split each priced transfer the way tarr::report's critical-path
    // attribution does: the uncontended floor is serialization; whatever
    // contention (and retransmission reloads) added on top is stall.
    metrics_.observe("transfer.duration", e.duration);
    const double serial = std::min(e.uncontended, e.duration);
    const double residual = e.duration - serial;
    metrics_.observe("transfer.serialization", serial);
    if (e.attempts > 1)
      metrics_.observe("transfer.retransmission", residual);
    else
      metrics_.observe("transfer.stall", residual);
  }
}

void Tracer::on_phase(const PhaseEvent& e) {
  if (opts_.timeline)
    spans_.push_back({kPidSim, kTidPhases, e.name, e.start, e.duration, "{}"});
  if (opts_.metrics) metrics_.add_count("phase." + e.name, 1.0);
}

void Tracer::on_time(const TimeEvent& e) {
  // Rendered like a phase span (time added outside stages occupies its own
  // interval on the phases track); the metrics counter accumulates the
  // simulated microseconds, not occurrences.
  if (opts_.timeline)
    spans_.push_back({kPidSim, kTidPhases, e.what, e.start, e.duration, "{}"});
  if (opts_.metrics) metrics_.add_count("time." + e.what, e.duration);
}

void Tracer::on_counter(const CounterSample& s) {
  if (opts_.timeline) {
    const char* res = s.kind == CounterSample::Kind::Link ? "cable " : "qpi ";
    counters_.push_back({res + std::to_string(s.id) + " d" +
                             std::to_string(s.dir),
                         s.ts, s.value});
  }
  if (opts_.metrics) metrics_.observe_load(s);
}

void Tracer::on_wall_span(const WallSpan& s) {
  // The real seconds always reach the metrics CSV; the *timeline* placement
  // is deterministic-ordinal unless real_wall_time was requested (see
  // file comment of tracer.hpp).
  if (opts_.metrics) metrics_.add_count("wall." + s.name, s.seconds);
  if (!opts_.timeline) return;
  if (opts_.real_wall_time) {
    const double us = s.seconds * 1.0e6;
    spans_.push_back({kPidWall, 0, s.name, wall_cursor_, us,
                      "{\"seconds\":" + fmt(s.seconds) + "}"});
    wall_cursor_ += us;
  } else {
    spans_.push_back({kPidWall, 0, s.name, wall_cursor_, 1.0, "{}"});
    wall_cursor_ += 1.0;
  }
}

void Tracer::add_count(const std::string& name, double delta) {
  if (opts_.metrics) metrics_.add_count(name, delta);
}

void Tracer::observe(const std::string& name, double value) {
  if (opts_.metrics) metrics_.observe(name, value);
}

std::string Tracer::timeline_json() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";

  // Metadata tracks first: stable labels for every pid/tid in use.
  bool have_sim = false;
  bool have_wall = false;
  int max_rank = -1;
  for (const auto& sp : spans_) {
    if (sp.pid == kPidSim) have_sim = true;
    if (sp.pid == kPidWall) have_wall = true;
    if (sp.pid == kPidSim && sp.tid >= kTidRank0)
      max_rank = std::max(max_rank, sp.tid - kTidRank0);
  }
  max_rank = std::max(max_rank, max_rank_);
  if (have_sim || max_rank >= 0) {
    append_meta(out, "process_name", kPidSim, 0, "simulation");
    append_meta(out, "thread_name", kPidSim, kTidPhases, "phases");
    append_meta(out, "thread_name", kPidSim, kTidStages, "stages");
    for (int r = 0; r <= max_rank; ++r)
      append_meta(out, "thread_name", kPidSim, kTidRank0 + r,
                  "rank " + std::to_string(r));
  }
  if (!counters_.empty())
    append_meta(out, "process_name", kPidLoad, 0, "network load");
  if (have_wall)
    append_meta(out, "process_name", kPidWall, 0, "mapping (wall clock)");

  // Complete events, sorted per track by (ts asc, dur desc) so spans that
  // start together nest longest-outermost; the sort is stable and the
  // emission order deterministic, so the serialization is reproducible.
  std::vector<const TimelineSpan*> ordered;
  ordered.reserve(spans_.size());
  for (const auto& sp : spans_) ordered.push_back(&sp);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TimelineSpan* a, const TimelineSpan* b) {
                     if (a->pid != b->pid) return a->pid < b->pid;
                     if (a->tid != b->tid) return a->tid < b->tid;
                     if (a->ts != b->ts) return a->ts < b->ts;
                     return a->dur > b->dur;
                   });
  for (const TimelineSpan* sp : ordered) {
    out += "{\"ph\":\"X\",\"pid\":" + std::to_string(sp->pid) +
           ",\"tid\":" + std::to_string(sp->tid) + ",\"name\":\"" +
           escape(sp->name) + "\",\"ts\":" + fmt(sp->ts) +
           ",\"dur\":" + fmt(sp->dur) + ",\"args\":" +
           (sp->args_json.empty() ? "{}" : sp->args_json) + "},\n";
  }

  // Counter events (emission order is already chronological per track).
  for (const auto& c : counters_) {
    out += "{\"ph\":\"C\",\"pid\":" + std::to_string(kPidLoad) +
           ",\"tid\":0,\"name\":\"" + escape(c.track) + "\",\"ts\":" +
           fmt(c.ts) + ",\"args\":{\"bytes\":" + fmt(c.value) + "}},\n";
  }

  // Drop the trailing ",\n" of the last event, if any.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "]}\n";
  return out;
}

void Tracer::write_timeline(const std::string& path) const {
  const std::string body = timeline_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw Error("Tracer: cannot write " + path);
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = n == body.size() && std::fclose(f) == 0;
  if (!ok) throw Error("Tracer: short write to " + path);
}

void Tracer::write_metrics(const std::string& path) const {
  metrics_.write_csv(path);
}

void Tracer::ensure_writable(const std::string& path) {
  // Probe without clobbering: "ab" creates a missing file but never
  // truncates an existing one.  A file the probe itself created is removed
  // so a later failure does not leave an empty artifact behind.
  std::FILE* existing = std::fopen(path.c_str(), "rb");
  const bool existed = existing != nullptr;
  if (existing != nullptr) std::fclose(existing);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr)
    throw Error("cannot open " + path + " for writing");
  std::fclose(f);
  if (!existed) std::remove(path.c_str());
}

}  // namespace tarr::trace
