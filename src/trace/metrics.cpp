#include "trace/metrics.hpp"

#include <cmath>
#include <cstdio>

#include "bench/csv.hpp"
#include "common/error.hpp"

namespace tarr::trace {

namespace {

/// Deterministic number formatting: exact integers print without a decimal
/// point, everything else as shortest round-trip-ish %.17g.  Formatting must
/// be locale-independent and stable — metric CSVs are diffed across runs.
std::string fmt(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void MetricsRegistry::observe_load(const CounterSample& s) {
  if (s.value <= 0.0) return;  // end-of-stage zero samples carry no heat
  auto& map = s.kind == CounterSample::Kind::Link ? link_heat_ : qpi_heat_;
  Heat& h = map[{s.id, s.dir}];
  ++h.stages;
  h.total += s.value;
  if (s.value > h.peak) h.peak = s.value;
}

void MetricsRegistry::observe_transfer(const TransferEvent& e) {
  ChannelStat& c = channels_[static_cast<int>(e.channel)];
  ++c.transfers;
  const double b = static_cast<double>(e.bytes);
  c.bytes += b;
  if (b > c.peak_bytes) c.peak_bytes = b;
  if (e.attempts > 1)
    counters_["fault.retransmissions"] += e.attempts - 1;
}

void MetricsRegistry::add_count(const std::string& name, double delta) {
  if (!std::isfinite(delta))
    throw Error("MetricsRegistry::add_count('" + name +
                "'): non-finite delta rejected (a NaN/Inf folded into a "
                "counter would poison every later delta)");
  counters_[name] += delta;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  observe_n(name, value, 1);
}

void MetricsRegistry::observe_n(const std::string& name, double value,
                                long long n) {
  if (!std::isfinite(value))
    throw Error("MetricsRegistry::observe('" + name +
                "'): non-finite sample rejected");
  if (value < 0.0)
    throw Error("MetricsRegistry::observe('" + name +
                "'): negative sample rejected (distributions hold "
                "durations, bytes and residuals, all >= 0)");
  dists_[name].record_n(value, n);
}

double MetricsRegistry::count(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

const insight::Histogram* MetricsRegistry::distribution(
    const std::string& name) const {
  const auto it = dists_.find(name);
  return it == dists_.end() ? nullptr : &it->second;
}

bool MetricsRegistry::empty() const {
  return link_heat_.empty() && qpi_heat_.empty() && channels_.empty() &&
         counters_.empty() && dists_.empty();
}

std::string MetricsRegistry::csv() const {
  bench::CsvWriter w;
  w.set_header({"category", "key", "count", "total", "peak"});
  for (const auto& [key, h] : link_heat_) {
    w.add_row({"link",
               "cable " + std::to_string(key.first) + " d" +
                   std::to_string(key.second),
               fmt(static_cast<double>(h.stages)), fmt(h.total),
               fmt(h.peak)});
  }
  for (const auto& [key, h] : qpi_heat_) {
    w.add_row({"qpi",
               "node " + std::to_string(key.first) + " d" +
                   std::to_string(key.second),
               fmt(static_cast<double>(h.stages)), fmt(h.total),
               fmt(h.peak)});
  }
  for (const auto& [ch, c] : channels_) {
    w.add_row({"channel", to_string(static_cast<Channel>(ch)),
               fmt(static_cast<double>(c.transfers)), fmt(c.bytes),
               fmt(c.peak_bytes)});
  }
  for (const auto& [name, value] : counters_) {
    w.add_row({"counter", name, "", fmt(value), ""});
  }
  // Distribution rows append strictly after the legacy categories so a
  // registry without distributions serializes byte-identically to before.
  for (const auto& [name, h] : dists_) {
    w.add_row({"dist", name, fmt(static_cast<double>(h.count())),
               fmt(h.approx_sum()), fmt(h.max())});
    w.add_row({"dist", name + " min", "", fmt(h.min()), ""});
    for (const auto& spec : insight::kStandardQuantiles) {
      w.add_row({"dist", name + " " + spec.label, "", fmt(h.quantile(spec.q)),
                 ""});
    }
  }
  for (const auto& [name, h] : dists_) {
    if (h.zero_count() > 0) {
      w.add_row({"distbucket", name + " zero",
                 fmt(static_cast<double>(h.zero_count())), "0", "0"});
    }
    for (const auto& b : h.buckets()) {
      w.add_row({"distbucket", name + " b" + std::to_string(b.index),
                 fmt(static_cast<double>(b.count)), fmt(b.lower),
                 fmt(b.upper)});
    }
  }
  return w.to_string();
}

void MetricsRegistry::write_csv(const std::string& path) const {
  // Serialize through csv() so the file and the string snapshot are
  // guaranteed identical bytes.
  const std::string body = csv();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw Error("MetricsRegistry: cannot write " + path);
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = n == body.size() && std::fclose(f) == 0;
  if (!ok) throw Error("MetricsRegistry: short write to " + path);
}

}  // namespace tarr::trace
