#include "trace/sink.hpp"

namespace tarr::trace {

const char* to_string(Channel c) {
  switch (c) {
    case Channel::SameComplex:
      return "same-complex";
    case Channel::SameSocket:
      return "same-socket";
    case Channel::CrossSocket:
      return "cross-socket";
    case Channel::Network:
      return "network";
    case Channel::Local:
      return "local";
  }
  return "?";
}

namespace {
thread_local TraceSink* g_thread_sink = nullptr;
}  // namespace

TraceSink* thread_sink() { return g_thread_sink; }

void set_thread_sink(TraceSink* sink) { g_thread_sink = sink; }

ScopedThreadSink::ScopedThreadSink(TraceSink* sink) : prev_(g_thread_sink) {
  g_thread_sink = sink;
}

ScopedThreadSink::~ScopedThreadSink() { g_thread_sink = prev_; }

}  // namespace tarr::trace
