#include "trace/sink.hpp"

namespace tarr::trace {

const char* to_string(Channel c) {
  switch (c) {
    case Channel::SameComplex:
      return "same-complex";
    case Channel::SameSocket:
      return "same-socket";
    case Channel::CrossSocket:
      return "cross-socket";
    case Channel::Network:
      return "network";
    case Channel::Local:
      return "local";
  }
  return "?";
}

void TeeSink::on_stage(const StageEvent& e) {
  if (a_) a_->on_stage(e);
  if (b_) b_->on_stage(e);
}

void TeeSink::on_transfer(const TransferEvent& e) {
  if (a_) a_->on_transfer(e);
  if (b_) b_->on_transfer(e);
}

void TeeSink::on_copy(const CopyEvent& e) {
  if (a_) a_->on_copy(e);
  if (b_) b_->on_copy(e);
}

void TeeSink::on_permute(const PermuteEvent& e) {
  if (a_) a_->on_permute(e);
  if (b_) b_->on_permute(e);
}

void TeeSink::on_phase(const PhaseEvent& e) {
  if (a_) a_->on_phase(e);
  if (b_) b_->on_phase(e);
}

void TeeSink::on_counter(const CounterSample& s) {
  if (a_) a_->on_counter(s);
  if (b_) b_->on_counter(s);
}

void TeeSink::on_wall_span(const WallSpan& s) {
  if (a_) a_->on_wall_span(s);
  if (b_) b_->on_wall_span(s);
}

void TeeSink::on_time(const TimeEvent& e) {
  if (a_) a_->on_time(e);
  if (b_) b_->on_time(e);
}

void TeeSink::add_count(const std::string& name, double delta) {
  if (a_) a_->add_count(name, delta);
  if (b_) b_->add_count(name, delta);
}

void TeeSink::observe(const std::string& name, double value) {
  if (a_) a_->observe(name, value);
  if (b_) b_->observe(name, value);
}

namespace {
thread_local TraceSink* g_thread_sink = nullptr;
}  // namespace

TraceSink* thread_sink() { return g_thread_sink; }

void set_thread_sink(TraceSink* sink) { g_thread_sink = sink; }

ScopedThreadSink::ScopedThreadSink(TraceSink* sink) : prev_(g_thread_sink) {
  g_thread_sink = sink;
}

ScopedThreadSink::~ScopedThreadSink() { g_thread_sink = prev_; }

}  // namespace tarr::trace
