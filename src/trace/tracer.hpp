#pragma once

#include <string>
#include <vector>

#include "trace/metrics.hpp"
#include "trace/sink.hpp"

/// \file tracer.hpp
/// The concrete TraceSink: buffers every event of a run and exports
///   1. a simulated-time timeline in Chrome trace-event JSON ("traceEvents"
///      array of complete/counter/metadata events; load the file into
///      Perfetto or chrome://tracing), and
///   2. a MetricsRegistry snapshot (CSV).
///
/// Track layout of the timeline:
///   pid 0 "simulation"  — tid 0 "phases" (collective phases, shuffles),
///                         tid 1 "stages" (engine stage spans),
///                         tid 2+r "rank r" (that rank's outgoing transfer
///                         spans; concurrent spans share the stage start and
///                         are sorted longest-first so they nest).
///   pid 1 "network load" — one counter track per directed cable
///                          ("cable <id> d<dir>") and per QPI direction
///                          ("qpi <node> d<dir>"), sampled at stage
///                          boundaries (bytes at stage start, 0 at end).
///   pid 2 "mapping (wall clock)" — Fig 7 overhead spans (distance
///                          extraction, each mapping/refinement run).
///
/// Determinism: with default options the serialized JSON depends only on
/// the simulated schedule and the seeds, so two same-seed runs produce
/// byte-identical trace files (CI diffs them).  Wall-clock spans are
/// therefore placed on a synthetic ordinal axis by default; opting in to
/// `real_wall_time` stamps their true durations instead and gives up
/// byte-reproducibility of the artifact (the metrics CSV and the
/// ReorderedComm overhead fields always carry the real seconds).

namespace tarr::trace {

/// Behavior knobs of a Tracer.
struct TracerOptions {
  bool timeline = true;      ///< collect timeline events
  bool metrics = true;       ///< aggregate the metrics registry
  bool real_wall_time = false;  ///< see file comment (breaks byte identity)
};

/// One buffered complete-event ("ph":"X") of the timeline, exposed for
/// tests that validate span nesting without re-parsing the JSON.
struct TimelineSpan {
  int pid = 0;
  int tid = 0;
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
  std::string args_json;  ///< serialized args object ("{}" when empty)
};

/// See file comment.
class Tracer final : public TraceSink {
 public:
  explicit Tracer(TracerOptions opts = TracerOptions{});

  void on_stage(const StageEvent& e) override;
  void on_transfer(const TransferEvent& e) override;
  void on_phase(const PhaseEvent& e) override;
  void on_counter(const CounterSample& s) override;
  void on_wall_span(const WallSpan& s) override;
  void on_time(const TimeEvent& e) override;
  void add_count(const std::string& name, double delta) override;
  void observe(const std::string& name, double value) override;

  const TracerOptions& options() const { return opts_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// Buffered spans in emission order (before the serialization sort).
  const std::vector<TimelineSpan>& spans() const { return spans_; }

  /// Serialize the timeline to Chrome trace-event JSON.
  std::string timeline_json() const;

  /// Write timeline_json() to a file; throws tarr::Error on I/O failure.
  void write_timeline(const std::string& path) const;

  /// Write the metrics CSV to a file; throws tarr::Error on I/O failure.
  void write_metrics(const std::string& path) const;

  /// Fail-fast writability probe for output paths: throws tarr::Error if
  /// `path` cannot be opened for writing, *without* truncating an existing
  /// file (a file created by the probe itself is removed again).  CLIs call
  /// this before a long run so a typo'd --trace path fails immediately
  /// instead of after the simulation.
  static void ensure_writable(const std::string& path);

 private:
  struct CounterPoint {
    std::string track;
    double ts = 0.0;
    double value = 0.0;
  };

  TracerOptions opts_;
  MetricsRegistry metrics_;
  std::vector<TimelineSpan> spans_;
  std::vector<CounterPoint> counters_;
  int max_rank_ = -1;      ///< highest rank seen (labels rank tracks)
  double wall_cursor_ = 0.0;  ///< ordinal/accumulated axis for wall spans
};

}  // namespace tarr::trace
