#pragma once

#include <map>
#include <string>
#include <utility>

#include "common/types.hpp"
#include "insight/histogram.hpp"
#include "trace/sink.hpp"

/// \file metrics.hpp
/// Aggregated metrics registry of tarr::trace: where the timeline answers
/// "when", the registry answers "how much in total".  It folds the same
/// event stream into
///   * link heat  — per directed cable: stages touched, total bytes, peak
///     stage load (the congestion the 5:1-blocking figures are about);
///   * QPI heat   — the same per node and direction;
///   * channel breakdown — transfer counts and byte totals per channel
///     class (same-complex / same-socket / cross-socket / network / local);
///   * named counters — decision counters (mapping placements, refinement
///     swaps, selector picks) and fault counters (drops, corruptions,
///     retransmissions);
///   * named distributions — deterministic HDR-style histograms
///     (insight::Histogram) of per-stage durations, per-transfer
///     serialization/stall/retransmission splits, probe residuals and prof
///     scope self-times, fed via observe().
///
/// Snapshots serialize to RFC-4180 CSV through the existing
/// tarr::bench::CsvWriter with the fixed schema
///   category,key,count,total,peak
/// (see docs/OBSERVABILITY.md for row semantics per category).
/// Distribution rows APPEND after the pre-existing categories — a registry
/// with no distributions serializes byte-identically to the old schema:
///   dist,<name>,count,approx_sum,max        (summary)
///   dist,<name> min|p50|p90|p99|p999,,value,  (order statistics)
///   distbucket,<name> zero|b<idx>,count,lower,upper  (exact bucket counts)

namespace tarr::trace {

/// See file comment.
class MetricsRegistry {
 public:
  /// Fold one resource-load sample (zero-valued end-of-stage samples are
  /// ignored; they exist only for the timeline).
  void observe_load(const CounterSample& s);

  /// Fold one priced transfer.
  void observe_transfer(const TransferEvent& e);

  /// Additive named counter.  Rejects non-finite deltas with a structured
  /// tarr::Error naming the counter — a NaN folded in silently would poison
  /// every later delta and the CSV bytes downstream.
  void add_count(const std::string& name, double delta);

  /// One sample of the named distribution.  Rejects non-finite or negative
  /// values with a structured tarr::Error naming the distribution.
  void observe(const std::string& name, double value);

  /// `n` identical samples (repeat-compressed stages fold in exactly).
  void observe_n(const std::string& name, double value, long long n);

  /// Value of a named counter (0 when never incremented).
  double count(const std::string& name) const;

  /// The named distribution, or nullptr when never observed.
  const insight::Histogram* distribution(const std::string& name) const;

  /// All distributions in deterministic name order.
  const std::map<std::string, insight::Histogram>& distributions() const {
    return dists_;
  }

  /// True when nothing has been recorded.
  bool empty() const;

  /// Serialize to CSV (schema in the file comment); rows are emitted in
  /// deterministic (category, key) order.
  std::string csv() const;

  /// Write csv() to a file; throws tarr::Error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  struct Heat {
    long long stages = 0;  ///< stages that loaded the resource
    double total = 0.0;    ///< bytes summed over all stages
    double peak = 0.0;     ///< largest single-stage byte load
  };
  struct ChannelStat {
    long long transfers = 0;
    double bytes = 0.0;
    double peak_bytes = 0.0;  ///< largest single transfer
  };

  std::map<std::pair<int, int>, Heat> link_heat_;  ///< (link, dir) -> heat
  std::map<std::pair<int, int>, Heat> qpi_heat_;   ///< (node, dir) -> heat
  std::map<int, ChannelStat> channels_;            ///< Channel -> stat
  std::map<std::string, double> counters_;
  std::map<std::string, insight::Histogram> dists_;
};

}  // namespace tarr::trace
