#include "tlog/reader.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace tarr::tlog {

namespace {

/// Bounds-checked little-endian/varint reader over an in-memory byte span.
/// Every overrun or malformed encoding throws a structured tarr::Error, so
/// corrupt files fail loudly instead of reading out of bounds.
class Cursor {
 public:
  Cursor(const char* data, std::size_t len, const char* what)
      : data_(data), len_(len), what_(what) {}

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return len_ - pos_; }
  bool done() const { return pos_ == len_; }

  const char* bytes(std::size_t n) {
    need(n);
    const char* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  std::uint64_t u64le() {
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(bytes(8));
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      need(1);
      const auto byte = static_cast<unsigned char>(data_[pos_++]);
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
    }
    throw Error(std::string("tlog: varint too long in ") + what_);
  }

  std::int64_t svarint() { return unzigzag(varint()); }

  /// varint() checked to fit the target integer range.
  long long count() {
    const std::uint64_t v = varint();
    if (v > 0x7FFFFFFFFFFFFFFFULL)
      throw Error(std::string("tlog: count overflow in ") + what_);
    return static_cast<long long>(v);
  }

 private:
  void need(std::size_t n) const {
    if (len_ - pos_ < n)
      throw Error(std::string("tlog: truncated ") + what_);
  }

  const char* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  const char* what_;
};

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw Error("tlog: cannot open " + path);
  std::string data;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) data.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw Error("tlog: read error on " + path);
  return data;
}

/// Fixed trailer: footer length, footer checksum, trailer magic (u64le ×3).
constexpr std::size_t kTrailerBytes = 24;

struct Parsed {
  FileInfo info;
  std::string data;           ///< whole file
  std::size_t blocks_end = 0; ///< file offset where the footer starts
};

Parsed parse(const std::string& path) {
  Parsed p;
  p.data = read_file(path);
  const std::string& d = p.data;
  p.info.file_bytes = d.size();

  if (d.size() < kFileMagic.size() + kTrailerBytes)
    throw Error("tlog: " + path + " too small to be a tlog file (" +
                std::to_string(d.size()) + " bytes)");
  for (std::size_t i = 0; i < kFileMagic.size(); ++i)
    if (static_cast<unsigned char>(d[i]) != kFileMagic[i])
      throw Error("tlog: " + path + " has no TARRTLOG magic");

  Cursor header(d.data() + kFileMagic.size(),
                d.size() - kFileMagic.size() - kTrailerBytes, "header");
  const std::uint64_t version = header.varint();
  if (version != static_cast<std::uint64_t>(kFormatVersion))
    throw Error("tlog: " + path + " has format version " +
                std::to_string(version) + ", this build reads version " +
                std::to_string(kFormatVersion));
  p.info.version = static_cast<int>(version);
  p.info.block_bytes = static_cast<std::size_t>(header.varint());
  p.info.sample_every = static_cast<int>(header.varint());
  const std::size_t body_begin = kFileMagic.size() + header.pos();

  Cursor trailer(d.data() + d.size() - kTrailerBytes, kTrailerBytes,
                 "trailer");
  const std::uint64_t footer_len = trailer.u64le();
  const std::uint64_t footer_sum = trailer.u64le();
  if (trailer.u64le() != kTrailerMagic)
    throw Error("tlog: " + path + " has no trailer magic (truncated?)");
  const std::size_t avail = d.size() - kTrailerBytes - body_begin;
  if (footer_len > avail)
    throw Error("tlog: " + path + " footer length " +
                std::to_string(footer_len) + " exceeds file body");
  p.blocks_end = d.size() - kTrailerBytes - static_cast<std::size_t>(footer_len);
  if (fnv1a(d.data() + p.blocks_end, static_cast<std::size_t>(footer_len)) !=
      footer_sum)
    throw Error("tlog: " + path + " footer checksum mismatch");

  Cursor footer(d.data() + p.blocks_end, static_cast<std::size_t>(footer_len),
                "footer");
  const long long nstrings = footer.count();
  for (long long i = 0; i < nstrings; ++i) {
    const std::uint64_t len = footer.varint();
    if (len > footer.remaining())
      throw Error("tlog: " + path + " string table overruns footer");
    p.info.strings.emplace_back(footer.bytes(static_cast<std::size_t>(len)),
                                static_cast<std::size_t>(len));
  }
  const long long nblocks = footer.count();
  for (long long i = 0; i < nblocks; ++i) {
    BlockInfo b;
    b.offset = footer.varint();
    b.payload_len = footer.varint();
    b.events = footer.count();
    for (long long& c : b.stored) c = footer.count();
    b.min_stage = footer.svarint();
    b.max_stage = footer.svarint();
    if (b.offset < body_begin || b.offset >= p.blocks_end)
      throw Error("tlog: " + path + " block offset out of range");
    p.info.blocks.push_back(b);
  }
  for (long long& c : p.info.received) c = footer.count();
  for (long long& c : p.info.filtered) c = footer.count();
  for (long long& c : p.info.sampled_out) c = footer.count();
  for (int k = 0; k < kNumEventKinds; ++k)
    p.info.stored[static_cast<std::size_t>(k)] =
        p.info.received[static_cast<std::size_t>(k)] -
        p.info.filtered[static_cast<std::size_t>(k)] -
        p.info.sampled_out[static_cast<std::size_t>(k)];
  p.info.filter.kinds = static_cast<unsigned>(footer.varint());
  p.info.filter.min_stage = static_cast<int>(footer.svarint());
  p.info.filter.max_stage = static_cast<int>(footer.svarint());
  p.info.filter.min_rank = static_cast<Rank>(footer.svarint());
  p.info.filter.max_rank = static_cast<Rank>(footer.svarint());
  if (static_cast<int>(footer.varint()) != p.info.sample_every)
    throw Error("tlog: " + path + " header/footer sample_every mismatch");
  if (!footer.done())
    throw Error("tlog: " + path + " has trailing bytes in footer");
  return p;
}

/// True when the footer index proves no stored event of `b` can pass `f`.
bool skip_block(const BlockInfo& b, const EventFilter& f) {
  for (int k = 0; k < kNumEventKinds; ++k) {
    if (b.stored[static_cast<std::size_t>(k)] == 0) continue;
    const auto kind = static_cast<EventKind>(k);
    if (!f.pass_kind(kind)) continue;
    const bool stage_tagged = kind == EventKind::Stage ||
                              kind == EventKind::Transfer ||
                              kind == EventKind::Copy;
    if (stage_tagged && b.has_stage() &&
        (b.min_stage > f.max_stage || b.max_stage < f.min_stage))
      continue;  // every stage-tagged event sits outside the window
    return false;
  }
  return true;
}

/// Decoder for one block payload; mirrors the encoders in writer.cpp field
/// slot by field slot.
class BlockDecoder {
 public:
  BlockDecoder(const Parsed& p, const BlockInfo& b)
      : strings_(p.info.strings),
        cur_(p.data.data() + payload_offset(p, b),
             static_cast<std::size_t>(b.payload_len), "block payload") {}

  /// Offset of the payload behind the block header, cross-checking the
  /// header against the index entry and the payload checksum.
  static std::size_t payload_offset(const Parsed& p, const BlockInfo& b) {
    Cursor h(p.data.data() + b.offset,
             p.blocks_end - static_cast<std::size_t>(b.offset),
             "block header");
    if (h.varint() != b.payload_len)
      throw Error("tlog: block header disagrees with index (payload length)");
    h.varint();  // event count, validated by decode exhaustion
    const std::uint64_t sum = h.varint();
    const std::size_t off = static_cast<std::size_t>(b.offset) + h.pos();
    if (b.payload_len > p.blocks_end - off)
      throw Error("tlog: block payload overruns blocks section");
    if (fnv1a(p.data.data() + off, static_cast<std::size_t>(b.payload_len)) !=
        sum)
      throw Error("tlog: block checksum mismatch (corrupt block)");
    return off;
  }

  /// Decode one event; deliver it to `sink` iff it passes `f`.  Returns the
  /// kind decoded, or Count-of-kinds when the payload is exhausted.
  bool step(trace::TraceSink& sink, const EventFilter& f, EventKind& kind) {
    if (cur_.done()) return false;
    const int tag = static_cast<unsigned char>(*cur_.bytes(1));
    if (tag >= kNumEventKinds)
      throw Error("tlog: unknown event tag " + std::to_string(tag));
    kind = static_cast<EventKind>(tag);
    auto& c = ctx_[static_cast<std::size_t>(kind)];
    const bool want = f.pass_kind(kind);
    switch (kind) {
      case EventKind::Stage: {
        trace::StageEvent e;
        e.stage = static_cast<int>(c.apply_int_delta(0, cur_.svarint()));
        e.transfers = static_cast<int>(c.apply_int_delta(1, cur_.svarint()));
        e.repeats = static_cast<int>(c.apply_int_delta(2, cur_.svarint()));
        e.start = c.apply_bits_xor(0, cur_.varint());
        e.duration = c.apply_bits_xor(1, cur_.varint());
        e.retry_wait = c.apply_bits_xor(2, cur_.varint());
        if (want && f.pass_stage(e.stage)) {
          sink.on_stage(e);
          return true;
        }
        break;
      }
      case EventKind::Transfer: {
        trace::TransferEvent e;
        e.stage = static_cast<int>(c.apply_int_delta(0, cur_.svarint()));
        e.src_rank = static_cast<Rank>(c.apply_int_delta(1, cur_.svarint()));
        e.dst_rank = static_cast<Rank>(c.apply_int_delta(2, cur_.svarint()));
        e.src_core = static_cast<CoreId>(c.apply_int_delta(3, cur_.svarint()));
        e.dst_core = static_cast<CoreId>(c.apply_int_delta(4, cur_.svarint()));
        e.bytes = c.apply_int_delta(5, cur_.svarint());
        e.channel = static_cast<trace::Channel>(
            c.apply_int_delta(6, cur_.svarint()));
        e.attempts = static_cast<int>(c.apply_int_delta(7, cur_.svarint()));
        e.contention = c.apply_bits_xor(0, cur_.varint());
        e.start = c.apply_bits_xor(1, cur_.varint());
        e.duration = c.apply_bits_xor(2, cur_.varint());
        e.uncontended = c.apply_bits_xor(3, cur_.varint());
        if (want && f.pass_stage(e.stage) &&
            f.pass_rank(e.src_rank, e.dst_rank)) {
          sink.on_transfer(e);
          return true;
        }
        break;
      }
      case EventKind::Copy: {
        trace::CopyEvent e;
        e.stage = static_cast<int>(c.apply_int_delta(0, cur_.svarint()));
        e.src = static_cast<Rank>(c.apply_int_delta(1, cur_.svarint()));
        e.dst = static_cast<Rank>(c.apply_int_delta(2, cur_.svarint()));
        e.src_off = static_cast<int>(c.apply_int_delta(3, cur_.svarint()));
        e.dst_off = static_cast<int>(c.apply_int_delta(4, cur_.svarint()));
        e.nblocks = static_cast<int>(c.apply_int_delta(5, cur_.svarint()));
        e.bytes = c.apply_int_delta(6, cur_.svarint());
        e.combining = c.apply_int_delta(7, cur_.svarint()) != 0;
        if (want && f.pass_stage(e.stage) && f.pass_rank(e.src, e.dst)) {
          sink.on_copy(e);
          return true;
        }
        break;
      }
      case EventKind::Permute: {
        trace::PermuteEvent e;
        const long long n = cur_.count();
        if (static_cast<std::uint64_t>(n) > cur_.remaining())
          throw Error("tlog: permutation longer than remaining payload");
        e.dst_of_block.reserve(static_cast<std::size_t>(n));
        std::int64_t prev = 0;
        for (long long i = 0; i < n; ++i) {
          prev += cur_.svarint();
          e.dst_of_block.push_back(static_cast<int>(prev));
        }
        e.start = c.apply_bits_xor(0, cur_.varint());
        e.duration = c.apply_bits_xor(1, cur_.varint());
        if (want) {
          sink.on_permute(e);
          return true;
        }
        break;
      }
      case EventKind::Phase: {
        trace::PhaseEvent e;
        e.name = string_at(cur_.varint());
        e.start = c.apply_bits_xor(0, cur_.varint());
        e.duration = c.apply_bits_xor(1, cur_.varint());
        if (want) {
          sink.on_phase(e);
          return true;
        }
        break;
      }
      case EventKind::Counter: {
        trace::CounterSample s;
        s.kind = static_cast<trace::CounterSample::Kind>(
            c.apply_int_delta(0, cur_.svarint()));
        s.id = static_cast<int>(c.apply_int_delta(1, cur_.svarint()));
        s.dir = static_cast<int>(c.apply_int_delta(2, cur_.svarint()));
        s.ts = c.apply_bits_xor(0, cur_.varint());
        s.value = c.apply_bits_xor(1, cur_.varint());
        if (want) {
          sink.on_counter(s);
          return true;
        }
        break;
      }
      case EventKind::WallSpan: {
        trace::WallSpan s;
        s.name = string_at(cur_.varint());
        s.seconds = c.apply_bits_xor(0, cur_.varint());
        if (want) {
          sink.on_wall_span(s);
          return true;
        }
        break;
      }
      case EventKind::Time: {
        trace::TimeEvent e;
        e.what = string_at(cur_.varint());
        e.start = c.apply_bits_xor(0, cur_.varint());
        e.duration = c.apply_bits_xor(1, cur_.varint());
        if (want) {
          sink.on_time(e);
          return true;
        }
        break;
      }
      case EventKind::Count: {
        const std::string& name = string_at(cur_.varint());
        const double delta = c.apply_bits_xor(0, cur_.varint());
        if (want) {
          sink.add_count(name, delta);
          return true;
        }
        break;
      }
      case EventKind::Observe: {
        const std::string& name = string_at(cur_.varint());
        const double value = c.apply_bits_xor(0, cur_.varint());
        if (want) {
          sink.observe(name, value);
          return true;
        }
        break;
      }
    }
    kind = static_cast<EventKind>(kNumEventKinds);  // decoded but filtered
    return true;
  }

  bool done() const { return cur_.done(); }

 private:
  const std::string& string_at(std::uint64_t id) {
    if (id >= strings_.size())
      throw Error("tlog: string id " + std::to_string(id) +
                  " outside the footer table (" +
                  std::to_string(strings_.size()) + " entries)");
    return strings_[static_cast<std::size_t>(id)];
  }

  const std::vector<std::string>& strings_;
  Cursor cur_;
  std::array<FieldContext, kNumEventKinds> ctx_{};
};

}  // namespace

FileInfo read_info(const std::string& path) { return parse(path).info; }

ReplayStats replay(const std::string& path, trace::TraceSink& sink,
                   const ReplayOptions& opts) {
  const Parsed p = parse(path);
  ReplayStats stats;
  stats.blocks_total = static_cast<long long>(p.info.blocks.size());
  for (const BlockInfo& b : p.info.blocks) {
    if (skip_block(b, opts.filter)) {
      ++stats.blocks_skipped;
      continue;
    }
    ++stats.blocks_decoded;
    BlockDecoder dec(p, b);
    long long decoded = 0;
    EventKind kind{};
    while (dec.step(sink, opts.filter, kind)) {
      ++decoded;
      if (static_cast<int>(kind) < kNumEventKinds)
        ++stats.delivered[static_cast<std::size_t>(kind)];
    }
    if (decoded != b.events)
      throw Error("tlog: block decoded " + std::to_string(decoded) +
                  " events, index says " + std::to_string(b.events));
  }
  return stats;
}

report::ScheduleRecord read_record(const std::string& path) {
  report::ScheduleRecorder recorder;
  replay(path, recorder);
  return recorder.take();
}

}  // namespace tarr::tlog
