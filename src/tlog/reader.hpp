#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "report/record.hpp"
#include "tlog/format.hpp"
#include "trace/sink.hpp"

/// \file reader.hpp
/// Reading side of tarr::tlog: footer-index inspection (read_info), event
/// replay into any TraceSink (replay), and ScheduleRecord reconstruction
/// (read_record).
///
/// Replay decodes blocks in file order and re-delivers each stored event to
/// the given sink in its original emission order, so every existing
/// consumer — report::ScheduleRecorder, trace::Tracer, insight — works on a
/// `.tlog` unchanged.  A reader-side EventFilter skips whole blocks when
/// the footer index proves no stored event can pass (kind mask, or a stage
/// window disjoint from the block's stage range); rank windows decode the
/// block and filter per event, since the index carries no rank ranges.
///
/// Every malformed input — truncation, bit flips, bad magic, impossible
/// lengths — surfaces as a structured tarr::Error; the reader never trusts
/// a length or id without bounds-checking it first.

namespace tarr::tlog {

/// Footer index entry of one block, as read back (see TlogSink::BlockEntry).
struct BlockInfo {
  std::uint64_t offset = 0;       ///< file offset of the block header
  std::uint64_t payload_len = 0;  ///< encoded payload bytes
  long long events = 0;
  std::array<long long, kNumEventKinds> stored{};
  long long min_stage = 0;  ///< min > max: no stage-tagged events in block
  long long max_stage = -1;
  bool has_stage() const { return min_stage <= max_stage; }
};

/// Everything the header + footer say about a `.tlog` file.
struct FileInfo {
  int version = 0;
  std::size_t block_bytes = 0;   ///< writer's block-size knob
  int sample_every = 1;
  EventFilter filter;            ///< the writer-side filter that was active
  std::vector<std::string> strings;
  std::vector<BlockInfo> blocks;
  /// Exact per-kind bookkeeping (stored = received - filtered - sampled_out).
  std::array<long long, kNumEventKinds> received{};
  std::array<long long, kNumEventKinds> filtered{};
  std::array<long long, kNumEventKinds> sampled_out{};
  std::array<long long, kNumEventKinds> stored{};
  std::uint64_t file_bytes = 0;

  long long stored_events() const {
    long long n = 0;
    for (const long long c : stored) n += c;
    return n;
  }
};

/// Parse header + footer without decoding any block.  Throws tarr::Error on
/// any malformation.
FileInfo read_info(const std::string& path);

/// Reader-side selection for replay().
struct ReplayOptions {
  EventFilter filter;
};

/// What one replay() actually did — lets callers (and tests) see selective
/// decode at work.
struct ReplayStats {
  long long blocks_total = 0;
  long long blocks_decoded = 0;
  long long blocks_skipped = 0;  ///< skipped via the footer index
  std::array<long long, kNumEventKinds> delivered{};

  long long delivered_events() const {
    long long n = 0;
    for (const long long c : delivered) n += c;
    return n;
  }
};

/// Decode `path` and deliver every stored event passing opts.filter to
/// `sink`, preserving the original emission order.  Throws tarr::Error on
/// any malformation (including per-block checksum mismatches).
ReplayStats replay(const std::string& path, trace::TraceSink& sink,
                   const ReplayOptions& opts = ReplayOptions{});

/// Rebuild the ScheduleRecord of the recorded run by replaying the full
/// event stream into a fresh report::ScheduleRecorder.  On an unfiltered,
/// unsampled `.tlog` the result is byte-identical to live recording.
report::ScheduleRecord read_record(const std::string& path);

}  // namespace tarr::tlog
