#include "tlog/writer.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tarr::tlog {

namespace {

/// Append the 8-byte little-endian encoding of `v` (trailer fields only;
/// everything else in the format is varint-coded).
void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

}  // namespace

TlogSink::TlogSink(const std::string& path, TlogOptions opts)
    : path_(path), opts_(opts) {
  if (opts_.sample_every < 1)
    throw Error("tlog: sample_every must be >= 1, got " +
                std::to_string(opts_.sample_every));
  if (opts_.block_bytes < 512)
    throw Error("tlog: block_bytes must be >= 512, got " +
                std::to_string(opts_.block_bytes));
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) throw Error("tlog: cannot write " + path);
  std::string header(reinterpret_cast<const char*>(kFileMagic.data()),
                     kFileMagic.size());
  put_varint(header, kFormatVersion);
  put_varint(header, opts_.block_bytes);
  put_varint(header, static_cast<std::uint64_t>(opts_.sample_every));
  write_raw(header.data(), header.size());
  block_.reserve(opts_.block_bytes + 1024);
}

TlogSink::~TlogSink() {
  // Best-effort seal; errors are observable only via an explicit finish().
  if (!finished_) {
    try {
      finish();
    } catch (const Error&) {
      if (file_ != nullptr) std::fclose(file_);
      file_ = nullptr;
    }
  }
}

void TlogSink::require_open() const {
  if (finished_)
    throw Error("tlog: event after finish() on " + path_);
}

void TlogSink::write_raw(const char* data, std::size_t len) {
  if (std::fwrite(data, 1, len, file_) != len)
    throw Error("tlog: short write to " + path_);
  totals_.bytes += len;
}

std::uint32_t TlogSink::intern(const std::string& s) {
  const auto it = intern_ids_.find(s);
  if (it != intern_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(strings_.size());
  intern_ids_.emplace(s, id);
  strings_.push_back(s);
  return id;
}

bool TlogSink::admit(EventKind k, int stage, Rank a, Rank b) {
  require_open();
  const auto ki = static_cast<std::size_t>(k);
  ++totals_.received[ki];
  const EventFilter& f = opts_.filter;
  if (!f.pass_all()) {
    bool pass = f.pass_kind(k);
    if (pass && stage >= 0) pass = f.pass_stage(stage);
    if (pass && a >= 0) pass = f.pass_rank(a, b);
    if (!pass) {
      ++totals_.filtered[ki];
      return false;
    }
  }
  if (opts_.sample_every > 1 && sampled_kind(k)) {
    const long long n = sample_seen_[ki]++;
    if (n % opts_.sample_every != 0) {
      ++totals_.sampled_out[ki];
      return false;
    }
  }
  ++totals_.stored[ki];
  ++block_stored_[ki];
  ++block_events_;
  return true;
}

std::string& TlogSink::begin_record(EventKind k, int stage) {
  block_.push_back(static_cast<char>(static_cast<int>(k)));
  if (stage >= 0) {
    if (!block_has_stage_) {
      block_min_stage_ = block_max_stage_ = stage;
      block_has_stage_ = true;
    } else {
      block_min_stage_ = std::min<long long>(block_min_stage_, stage);
      block_max_stage_ = std::max<long long>(block_max_stage_, stage);
    }
  }
  return block_;
}

void TlogSink::maybe_flush() {
  if (block_.size() >= opts_.block_bytes) flush_block();
}

void TlogSink::flush_block() {
  if (block_events_ == 0) return;
  BlockEntry entry;
  entry.offset = totals_.bytes;
  entry.payload_len = block_.size();
  entry.events = block_events_;
  entry.stored = block_stored_;
  if (block_has_stage_) {
    entry.min_stage = block_min_stage_;
    entry.max_stage = block_max_stage_;
  }
  std::string header;
  put_varint(header, block_.size());
  put_varint(header, static_cast<std::uint64_t>(block_events_));
  put_varint(header, fnv1a(block_.data(), block_.size()));
  write_raw(header.data(), header.size());
  write_raw(block_.data(), block_.size());
  index_.push_back(entry);
  ++totals_.blocks;

  block_.clear();
  block_events_ = 0;
  block_has_stage_ = false;
  block_stored_.fill(0);
  for (auto& c : ctx_) c.reset();
}

void TlogSink::finish() {
  if (finished_) return;
  flush_block();

  std::string footer;
  put_varint(footer, strings_.size());
  for (const std::string& s : strings_) {
    put_varint(footer, s.size());
    footer.append(s);
  }
  put_varint(footer, index_.size());
  for (const BlockEntry& e : index_) {
    put_varint(footer, e.offset);
    put_varint(footer, e.payload_len);
    put_varint(footer, static_cast<std::uint64_t>(e.events));
    for (const long long c : e.stored)
      put_varint(footer, static_cast<std::uint64_t>(c));
    put_svarint(footer, e.min_stage);
    put_svarint(footer, e.max_stage);
  }
  for (const long long c : totals_.received)
    put_varint(footer, static_cast<std::uint64_t>(c));
  for (const long long c : totals_.filtered)
    put_varint(footer, static_cast<std::uint64_t>(c));
  for (const long long c : totals_.sampled_out)
    put_varint(footer, static_cast<std::uint64_t>(c));
  put_varint(footer, opts_.filter.kinds);
  put_svarint(footer, opts_.filter.min_stage);
  put_svarint(footer, opts_.filter.max_stage);
  put_svarint(footer, opts_.filter.min_rank);
  put_svarint(footer, opts_.filter.max_rank);
  put_varint(footer, static_cast<std::uint64_t>(opts_.sample_every));

  std::string trailer;
  put_u64le(trailer, footer.size());
  put_u64le(trailer, fnv1a(footer.data(), footer.size()));
  put_u64le(trailer, kTrailerMagic);

  write_raw(footer.data(), footer.size());
  write_raw(trailer.data(), trailer.size());
  const int rc = std::fclose(file_);
  file_ = nullptr;
  finished_ = true;
  if (rc != 0) throw Error("tlog: failed closing " + path_);
}

// --- event encoders --------------------------------------------------------
//
// Field order is the decode contract (tlog/reader.cpp mirrors it exactly);
// integer slots and double slots are numbered independently per kind.

void TlogSink::on_stage(const trace::StageEvent& e) {
  if (!admit(EventKind::Stage, e.stage, -1, -1)) return;
  auto& c = ctx_[static_cast<std::size_t>(EventKind::Stage)];
  std::string& out = begin_record(EventKind::Stage, e.stage);
  c.put_int(out, 0, e.stage);
  c.put_int(out, 1, e.transfers);
  c.put_int(out, 2, e.repeats);
  c.put_double(out, 0, e.start);
  c.put_double(out, 1, e.duration);
  c.put_double(out, 2, e.retry_wait);
  maybe_flush();
}

void TlogSink::on_transfer(const trace::TransferEvent& e) {
  if (!admit(EventKind::Transfer, e.stage, e.src_rank, e.dst_rank)) return;
  auto& c = ctx_[static_cast<std::size_t>(EventKind::Transfer)];
  std::string& out = begin_record(EventKind::Transfer, e.stage);
  c.put_int(out, 0, e.stage);
  c.put_int(out, 1, e.src_rank);
  c.put_int(out, 2, e.dst_rank);
  c.put_int(out, 3, e.src_core);
  c.put_int(out, 4, e.dst_core);
  c.put_int(out, 5, e.bytes);
  c.put_int(out, 6, static_cast<int>(e.channel));
  c.put_int(out, 7, e.attempts);
  c.put_double(out, 0, e.contention);
  c.put_double(out, 1, e.start);
  c.put_double(out, 2, e.duration);
  c.put_double(out, 3, e.uncontended);
  maybe_flush();
}

void TlogSink::on_copy(const trace::CopyEvent& e) {
  if (!admit(EventKind::Copy, e.stage, e.src, e.dst)) return;
  auto& c = ctx_[static_cast<std::size_t>(EventKind::Copy)];
  std::string& out = begin_record(EventKind::Copy, e.stage);
  c.put_int(out, 0, e.stage);
  c.put_int(out, 1, e.src);
  c.put_int(out, 2, e.dst);
  c.put_int(out, 3, e.src_off);
  c.put_int(out, 4, e.dst_off);
  c.put_int(out, 5, e.nblocks);
  c.put_int(out, 6, e.bytes);
  c.put_int(out, 7, e.combining ? 1 : 0);
  maybe_flush();
}

void TlogSink::on_permute(const trace::PermuteEvent& e) {
  if (!admit(EventKind::Permute, -1, -1, -1)) return;
  auto& c = ctx_[static_cast<std::size_t>(EventKind::Permute)];
  std::string& out = begin_record(EventKind::Permute, -1);
  put_varint(out, e.dst_of_block.size());
  // Entries are delta-coded against each other (not against the previous
  // event): near-identity permutations encode in ~1 byte per slot.
  std::int64_t prev = 0;
  for (const int d : e.dst_of_block) {
    put_svarint(out, d - prev);
    prev = d;
  }
  c.put_double(out, 0, e.start);
  c.put_double(out, 1, e.duration);
  maybe_flush();
}

void TlogSink::on_phase(const trace::PhaseEvent& e) {
  if (!admit(EventKind::Phase, -1, -1, -1)) return;
  auto& c = ctx_[static_cast<std::size_t>(EventKind::Phase)];
  std::string& out = begin_record(EventKind::Phase, -1);
  put_varint(out, intern(e.name));
  c.put_double(out, 0, e.start);
  c.put_double(out, 1, e.duration);
  maybe_flush();
}

void TlogSink::on_counter(const trace::CounterSample& s) {
  if (!admit(EventKind::Counter, -1, -1, -1)) return;
  auto& c = ctx_[static_cast<std::size_t>(EventKind::Counter)];
  std::string& out = begin_record(EventKind::Counter, -1);
  c.put_int(out, 0, static_cast<int>(s.kind));
  c.put_int(out, 1, s.id);
  c.put_int(out, 2, s.dir);
  c.put_double(out, 0, s.ts);
  c.put_double(out, 1, s.value);
  maybe_flush();
}

void TlogSink::on_wall_span(const trace::WallSpan& s) {
  if (!admit(EventKind::WallSpan, -1, -1, -1)) return;
  auto& c = ctx_[static_cast<std::size_t>(EventKind::WallSpan)];
  std::string& out = begin_record(EventKind::WallSpan, -1);
  put_varint(out, intern(s.name));
  c.put_double(out, 0, s.seconds);
  maybe_flush();
}

void TlogSink::on_time(const trace::TimeEvent& e) {
  if (!admit(EventKind::Time, -1, -1, -1)) return;
  auto& c = ctx_[static_cast<std::size_t>(EventKind::Time)];
  std::string& out = begin_record(EventKind::Time, -1);
  put_varint(out, intern(e.what));
  c.put_double(out, 0, e.start);
  c.put_double(out, 1, e.duration);
  maybe_flush();
}

void TlogSink::add_count(const std::string& name, double delta) {
  if (!admit(EventKind::Count, -1, -1, -1)) return;
  auto& c = ctx_[static_cast<std::size_t>(EventKind::Count)];
  std::string& out = begin_record(EventKind::Count, -1);
  put_varint(out, intern(name));
  c.put_double(out, 0, delta);
  maybe_flush();
}

void TlogSink::observe(const std::string& name, double value) {
  if (!admit(EventKind::Observe, -1, -1, -1)) return;
  auto& c = ctx_[static_cast<std::size_t>(EventKind::Observe)];
  std::string& out = begin_record(EventKind::Observe, -1);
  put_varint(out, intern(name));
  c.put_double(out, 0, value);
  maybe_flush();
}

}  // namespace tarr::tlog
