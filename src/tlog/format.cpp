#include "tlog/format.hpp"

#include <bit>

namespace tarr::tlog {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::Stage:
      return "stage";
    case EventKind::Transfer:
      return "transfer";
    case EventKind::Copy:
      return "copy";
    case EventKind::Permute:
      return "permute";
    case EventKind::Phase:
      return "phase";
    case EventKind::Counter:
      return "counter";
    case EventKind::WallSpan:
      return "wall-span";
    case EventKind::Time:
      return "time";
    case EventKind::Count:
      return "count";
    case EventKind::Observe:
      return "observe";
  }
  return "?";
}

bool parse_event_kind(const std::string& name, EventKind& out) {
  for (int k = 0; k < kNumEventKinds; ++k) {
    if (name == to_string(static_cast<EventKind>(k))) {
      out = static_cast<EventKind>(k);
      return true;
    }
  }
  return false;
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_svarint(std::string& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

std::uint64_t fnv1a(const char* data, std::size_t len) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

void FieldContext::put_double(std::string& out, int slot, double v) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  put_varint(out, bits ^ bits_[static_cast<std::size_t>(slot)]);
  bits_[static_cast<std::size_t>(slot)] = bits;
}

double FieldContext::apply_bits_xor(int slot, std::uint64_t x) {
  bits_[static_cast<std::size_t>(slot)] ^= x;
  return std::bit_cast<double>(bits_[static_cast<std::size_t>(slot)]);
}

}  // namespace tarr::tlog
