#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "tlog/format.hpp"
#include "trace/sink.hpp"

/// \file writer.hpp
/// TlogSink: the streaming binary trace writer of tarr::tlog.
///
/// A TraceSink that encodes every event it hears into the `.tlog` block
/// format (tlog/format.hpp, docs/TLOG.md) and flushes blocks to disk as
/// they fill, so resident memory is O(block size + interned strings +
/// per-block index), independent of the event count — the property that
/// lets always-on telemetry survive the ROADMAP's 64k+-rank runs, where
/// the buffering Tracer cannot.
///
/// Three volume knobs, all deterministic:
///  * EventFilter — drop whole kinds, stage windows or rank windows at the
///    writer (the dropped counts are still bookkept exactly);
///  * 1-in-N sampling (TlogOptions::sample_every) on the four high-volume
///    kinds (transfer/copy/counter/observe): every Nth event of a kind is
///    kept, counting from the first, and the exact number of sampled-out
///    events per kind is recorded in the footer so downstream event totals
///    remain reconstructable;
///  * block size — the memory/seek-granularity trade.
///
/// With the default options (no filter, no sampling) a `.tlog` is a
/// lossless capture: replaying it (tlog/reader.hpp) into a
/// report::ScheduleRecorder rebuilds a ScheduleRecord byte-identical to
/// live recording, and replaying into a trace::Tracer reproduces its JSON
/// timeline and metrics CSV byte-for-byte.
///
/// Call finish() when the run is over — it flushes the last block and
/// writes the footer index; a file without a footer is rejected by the
/// reader.  The destructor calls finish() as a best effort but swallows
/// errors; call finish() explicitly to observe them.

namespace tarr::tlog {

/// Behavior knobs of a TlogSink.
struct TlogOptions {
  /// Target encoded payload bytes per block; a block is flushed once it
  /// reaches this size (the last event may overshoot by its own encoding).
  std::size_t block_bytes = 64 * 1024;
  /// Writer-side event predicate (default: keep everything).
  EventFilter filter;
  /// Keep every Nth transfer/copy/counter/observe event (1 = keep all).
  int sample_every = 1;
};

/// Exact bookkeeping of one writer's lifetime, also serialized into the
/// footer: received = events offered to the sink, filtered = dropped by the
/// EventFilter, sampled_out = dropped by 1-in-N sampling, stored =
/// received - filtered - sampled_out (the events on disk).
struct WriteTotals {
  std::array<long long, kNumEventKinds> received{};
  std::array<long long, kNumEventKinds> filtered{};
  std::array<long long, kNumEventKinds> sampled_out{};
  std::array<long long, kNumEventKinds> stored{};
  long long blocks = 0;
  std::uint64_t bytes = 0;  ///< file bytes written so far

  long long stored_events() const {
    long long n = 0;
    for (const long long c : stored) n += c;
    return n;
  }
};

/// See file comment.
class TlogSink final : public trace::TraceSink {
 public:
  /// Opens `path` for writing and writes the header; throws tarr::Error on
  /// I/O failure, non-positive sample_every, or a block size below 512
  /// bytes (too small to hold a single large event sensibly).
  explicit TlogSink(const std::string& path, TlogOptions opts = TlogOptions{});
  ~TlogSink() override;

  TlogSink(const TlogSink&) = delete;
  TlogSink& operator=(const TlogSink&) = delete;

  void on_stage(const trace::StageEvent& e) override;
  void on_transfer(const trace::TransferEvent& e) override;
  void on_copy(const trace::CopyEvent& e) override;
  void on_permute(const trace::PermuteEvent& e) override;
  void on_phase(const trace::PhaseEvent& e) override;
  void on_counter(const trace::CounterSample& s) override;
  void on_wall_span(const trace::WallSpan& s) override;
  void on_time(const trace::TimeEvent& e) override;
  void add_count(const std::string& name, double delta) override;
  void observe(const std::string& name, double value) override;

  /// Flush the open block and write the footer + trailer; the file is
  /// complete and readable afterwards.  Idempotent.  Events arriving after
  /// finish() throw (the file is sealed).
  void finish();
  bool finished() const { return finished_; }

  const WriteTotals& totals() const { return totals_; }
  const std::string& path() const { return path_; }

 private:
  /// True for the event kinds 1-in-N sampling applies to.
  static bool sampled_kind(EventKind k) {
    return k == EventKind::Transfer || k == EventKind::Copy ||
           k == EventKind::Counter || k == EventKind::Observe;
  }

  /// Filter + sampling gate; returns true when the event must be encoded.
  /// `stage` < 0 / ranks < 0 mean "field not applicable to this kind".
  bool admit(EventKind k, int stage, Rank a, Rank b);

  /// Start a record: tag byte plus bookkeeping of the block's stage range.
  std::string& begin_record(EventKind k, int stage);
  /// Flush the block if the open payload reached the threshold.
  void maybe_flush();
  void flush_block();
  std::uint32_t intern(const std::string& s);
  void write_raw(const char* data, std::size_t len);
  void require_open() const;

  std::string path_;
  TlogOptions opts_;
  std::FILE* file_ = nullptr;
  bool finished_ = false;

  std::string block_;                ///< open block payload
  long long block_events_ = 0;
  long long block_min_stage_ = 0;    ///< valid iff block_has_stage_
  long long block_max_stage_ = 0;
  bool block_has_stage_ = false;
  std::array<long long, kNumEventKinds> block_stored_{};
  std::array<FieldContext, kNumEventKinds> ctx_{};

  std::map<std::string, std::uint32_t> intern_ids_;
  std::vector<std::string> strings_;

  /// One footer index entry per flushed block.
  struct BlockEntry {
    std::uint64_t offset = 0;       ///< file offset of the block header
    std::uint64_t payload_len = 0;
    long long events = 0;
    std::array<long long, kNumEventKinds> stored{};
    long long min_stage = 0;  ///< min > max encodes "no stage-tagged events"
    long long max_stage = -1;
  };
  std::vector<BlockEntry> index_;

  std::array<long long, kNumEventKinds> sample_seen_{};
  WriteTotals totals_;
};

}  // namespace tarr::tlog
