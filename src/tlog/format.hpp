#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>

#include "common/types.hpp"

/// \file format.hpp
/// On-disk vocabulary of tarr::tlog, the bounded-memory streaming binary
/// trace format (docs/TLOG.md has the normative byte-level specification).
///
/// Every observability layer before this one (trace -> report -> viz ->
/// prof -> insight) buffers the full event stream in memory and exports
/// Chrome-trace JSON, which caps traced runs near the current rank ceiling.
/// A `.tlog` file instead streams the same TraceSink event vocabulary
/// through bounded-size blocks:
///
///   [header] [block]* [footer index] [trailer]
///
///   header  — 8-byte magic "TARRTLOG", varint version, varint block size.
///   block   — varint payload length, varint event count, varint FNV-1a
///             checksum, then the payload: one tagged record per event,
///             integer fields zigzag-delta-coded and double fields
///             XOR-delta-coded against the previous value of the same field
///             slot (both reset at block boundaries, so any block decodes
///             on its own).
///   footer  — the interned string table, one index entry per block
///             (offset, length, per-kind stored counts, stage range) and
///             the exact per-kind received / filtered / sampled-out
///             bookkeeping totals.
///   trailer — fixed 24 bytes: little-endian footer length, footer
///             checksum and magic, so a reader finds (and verifies) the
///             footer from the end of the file.
///
/// Strings (phase names, counter names, ...) are interned to dense ids by
/// the writer and stored once, in the footer — blocks carry only ids, and
/// selective decode never misses a definition.  All doubles round-trip
/// bit-exactly (XOR delta is lossless), which is what makes a
/// `ScheduleRecord` rebuilt from a `.tlog` byte-identical to live
/// recording.

namespace tarr::tlog {

/// Leading file magic ("TARRTLOG").
inline constexpr std::array<unsigned char, 8> kFileMagic = {
    'T', 'A', 'R', 'R', 'T', 'L', 'O', 'G'};

/// Trailing magic of the fixed 24-byte trailer ("TLOGIDX\n").
inline constexpr std::uint64_t kTrailerMagic = 0x0A58444947'4F4C54ULL;

/// Format version this build writes and the only one it reads.
inline constexpr int kFormatVersion = 1;

/// Every record type the format stores — the eight TraceSink event kinds
/// plus the two named-metric emissions (add_count / observe), so a `.tlog`
/// is a lossless capture of everything a TraceSink can hear.
enum class EventKind : int {
  Stage = 0,
  Transfer = 1,
  Copy = 2,
  Permute = 3,
  Phase = 4,
  Counter = 5,
  WallSpan = 6,
  Time = 7,
  Count = 8,
  Observe = 9,
};

inline constexpr int kNumEventKinds = 10;

const char* to_string(EventKind k);

/// Parse a kind name as printed by to_string ("stage", "transfer", ...).
/// Returns false on an unknown name.
bool parse_event_kind(const std::string& name, EventKind& out);

/// Writer- and reader-side event predicate: which kinds to keep, and for
/// stage-tagged kinds (stage/transfer/copy) and rank-tagged kinds
/// (transfer/copy) which stage/rank windows.  The default passes
/// everything.  Filtering is deterministic — a pure function of the event.
struct EventFilter {
  /// Bit `1 << kind` keeps that kind.
  unsigned kinds = (1u << kNumEventKinds) - 1;
  /// Inclusive stage window, applied to stage/transfer/copy events only.
  int min_stage = 0;
  int max_stage = std::numeric_limits<int>::max();
  /// Inclusive rank window, applied to transfer/copy events; an event
  /// passes when either endpoint falls inside the window.
  Rank min_rank = 0;
  Rank max_rank = std::numeric_limits<Rank>::max();

  bool pass_kind(EventKind k) const {
    return (kinds & (1u << static_cast<int>(k))) != 0;
  }
  bool pass_stage(int stage) const {
    return stage >= min_stage && stage <= max_stage;
  }
  bool pass_rank(Rank a, Rank b) const {
    return (a >= min_rank && a <= max_rank) ||
           (b >= min_rank && b <= max_rank);
  }
  /// True for the default filter (lets writers skip per-event checks).
  bool pass_all() const {
    return kinds == (1u << kNumEventKinds) - 1 && min_stage == 0 &&
           max_stage == std::numeric_limits<int>::max() && min_rank == 0 &&
           max_rank == std::numeric_limits<Rank>::max();
  }
};

// --- low-level encoding ----------------------------------------------------

/// Append an LEB128 varint (7 bits per byte, high bit = continuation).
void put_varint(std::string& out, std::uint64_t v);

/// Append a zigzag-coded signed varint.
void put_svarint(std::string& out, std::int64_t v);

/// Zigzag helpers (exposed for the index entries).
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// FNV-1a 64-bit checksum of a byte string (block corruption detection).
std::uint64_t fnv1a(const char* data, std::size_t len);

/// Per-field delta context shared by the encoder and the decoder: slot i
/// remembers the previous integer value (for zigzag deltas) and slot j the
/// previous double bit pattern (for XOR deltas).  Both sides walk the same
/// slots in the same order; reset() at every block boundary keeps blocks
/// independently decodable.
class FieldContext {
 public:
  void reset() {
    ints_.fill(0);
    bits_.fill(0);
  }

  /// Encode integer field `slot` as a zigzag delta against its previous
  /// value.
  void put_int(std::string& out, int slot, std::int64_t v) {
    put_svarint(out, v - ints_[static_cast<std::size_t>(slot)]);
    ints_[static_cast<std::size_t>(slot)] = v;
  }

  /// Encode double field `slot` as a varint of the XOR with its previous
  /// bit pattern (lossless; repeated values cost one byte).
  void put_double(std::string& out, int slot, double v);

  /// Decoder twins (Cursor defined in reader.hpp includes this header's
  /// declarations via the .cpp files).
  std::int64_t apply_int_delta(int slot, std::int64_t delta) {
    ints_[static_cast<std::size_t>(slot)] += delta;
    return ints_[static_cast<std::size_t>(slot)];
  }
  double apply_bits_xor(int slot, std::uint64_t x);

 private:
  /// Largest per-kind field counts: Transfer has 8 integer fields and 4
  /// double fields; Copy has 8 integer fields.
  std::array<std::int64_t, 8> ints_{};
  std::array<std::uint64_t, 4> bits_{};
};

}  // namespace tarr::tlog
