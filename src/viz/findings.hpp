#pragma once

#include <string>

#include "insight/findings.hpp"

/// \file findings.hpp
/// The "Diagnosis" dashboard section: tarr::insight's ranked findings
/// rendered as severity-labeled cards (status colors always paired with the
/// text label, per the html.hpp color policy) with their exact evidence
/// numbers, plus the headline imbalance / fairness figures.  Deterministic:
/// a pure function of the Diagnosis, so same-seed dashboards stay
/// byte-identical.

namespace tarr::viz {

/// Section body HTML for one diagnosis (renders a "no findings" line when
/// the findings list is empty).
std::string render_findings_section(const insight::Diagnosis& d);

}  // namespace tarr::viz
