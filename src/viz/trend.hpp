#pragma once

#include <string>
#include <vector>

#include "report/snapshot.hpp"
#include "viz/html.hpp"

/// \file trend.hpp
/// Perf-trajectory view over schema-v1 bench snapshots: each `TrendSet` is
/// one point in history (a directory of `BENCH_*.json` files — committed
/// baselines, a CI run, a local regeneration), and the view plots every
/// metric across the sets, one chart per (bench, unit).  Gated metrics that
/// fall outside the gate tolerance relative to the *first* set are flagged
/// with the status color + a text label (never color alone).  A single set
/// renders too (single-point charts) — the degenerate "trajectory" CI draws
/// from just the committed baselines.

namespace tarr::viz {

/// One labeled snapshot set (one x-axis position of the trajectory).
struct TrendSet {
  std::string label;  ///< e.g. "baseline", "current", a git ref
  std::vector<report::BenchSnapshot> snapshots;
};

/// Render the trajectory HTML fragment.  `opts` supplies the gate
/// tolerances used for flagging (the same ones `tarr-report compare`
/// gates with).
std::string render_trend(const std::vector<TrendSet>& sets,
                         const report::CompareOptions& opts = {});

}  // namespace tarr::viz
