#include "viz/topo.hpp"

#include <algorithm>
#include <cmath>

namespace tarr::viz {

namespace {

using topology::Machine;
using topology::SwitchGraph;
using topology::VertexKind;

/// Computed drawing geometry of a switch graph: vertices bucketed into
/// horizontal layers (spine on top, hosts at the bottom), evenly spaced.
struct Layout {
  int width = 0;
  int height = 0;
  std::vector<double> x, y;  ///< per vertex id
};

int layer_of(VertexKind k) {
  switch (k) {
    case VertexKind::SpineSwitch: return 0;
    case VertexKind::LineSwitch: return 1;
    case VertexKind::Switch: return 2;
    case VertexKind::LeafSwitch: return 3;
    case VertexKind::Host: return 4;
  }
  return 2;
}

Layout layout_graph(const SwitchGraph& net) {
  const int kLayers = 5;
  std::vector<std::vector<NetVertexId>> rows(kLayers);
  for (NetVertexId v = 0; v < net.num_vertices(); ++v)
    rows[layer_of(net.vertex(v).kind)].push_back(v);

  Layout lay;
  int widest = 1;
  for (const auto& row : rows)
    widest = std::max(widest, static_cast<int>(row.size()));
  lay.width = std::max(760, widest * 30 + 120);
  lay.x.assign(net.num_vertices(), 0.0);
  lay.y.assign(net.num_vertices(), 0.0);

  const double margin = 50.0;
  double y = 36.0;
  for (const auto& row : rows) {
    if (row.empty()) continue;
    const double span = lay.width - 2 * margin;
    for (std::size_t i = 0; i < row.size(); ++i) {
      lay.x[row[i]] = margin + (i + 0.5) * span / row.size();
      lay.y[row[i]] = y;
    }
    y += 96.0;
  }
  lay.height = static_cast<int>(y - 96.0 + 64.0);
  return lay;
}

std::string vertex_label(const SwitchGraph& net, NetVertexId v) {
  const auto& vx = net.vertex(v);
  return vx.name.empty() ? ("v" + std::to_string(v)) : vx.name;
}

/// One directed stroke of a link: offset perpendicular to the edge so the
/// two directions sit side by side, with an arrow-free convention — the
/// stroke closer to its *source* end's right-hand side carries that
/// direction (tooltips state it in words, so the geometry need not).
std::string link_stroke(const Layout& lay, NetVertexId a, NetVertexId b,
                        int side, const std::string& color, double width,
                        const std::string& tooltip) {
  const double dx = lay.x[b] - lay.x[a], dy = lay.y[b] - lay.y[a];
  const double len = std::max(1.0, std::sqrt(dx * dx + dy * dy));
  const double ox = -dy / len * 2.4 * (side == 0 ? 1.0 : -1.0);
  const double oy = dx / len * 2.4 * (side == 0 ? 1.0 : -1.0);
  return "<line x1=\"" + fmt_fixed(lay.x[a] + ox, 1) + "\" y1=\"" +
         fmt_fixed(lay.y[a] + oy, 1) + "\" x2=\"" + fmt_fixed(lay.x[b] + ox, 1) +
         "\" y2=\"" + fmt_fixed(lay.y[b] + oy, 1) + "\" stroke=\"" + color +
         "\" stroke-width=\"" + fmt_fixed(width, 1) +
         "\" stroke-linecap=\"round\"><title>" + escape_text(tooltip) +
         "</title></line>\n";
}

/// Host glyph: a small rect split into per-direction QPI halves (left half
/// = socket 0 -> 1 traffic, right half = the reverse), named underneath.
std::string host_glyph(const Layout& lay, NetVertexId v, const std::string& name,
                       const std::string& color0, const std::string& color1,
                       const std::string& tip0, const std::string& tip1,
                       bool label) {
  const double w = 16.0, h = 12.0;
  const double x = lay.x[v] - w / 2, y = lay.y[v] - h / 2;
  std::string out;
  out += "<rect x=\"" + fmt_fixed(x, 1) + "\" y=\"" + fmt_fixed(y, 1) +
         "\" width=\"" + fmt_fixed(w / 2, 1) + "\" height=\"" + fmt_fixed(h, 1) +
         "\" fill=\"" + color0 + "\"><title>" + escape_text(tip0) +
         "</title></rect>\n";
  out += "<rect x=\"" + fmt_fixed(x + w / 2, 1) + "\" y=\"" + fmt_fixed(y, 1) +
         "\" width=\"" + fmt_fixed(w / 2, 1) + "\" height=\"" + fmt_fixed(h, 1) +
         "\" fill=\"" + color1 + "\"><title>" + escape_text(tip1) +
         "</title></rect>\n";
  out += "<rect x=\"" + fmt_fixed(x, 1) + "\" y=\"" + fmt_fixed(y, 1) +
         "\" width=\"" + fmt_fixed(w, 1) + "\" height=\"" + fmt_fixed(h, 1) +
         "\" fill=\"none\" stroke=\"" + std::string(kAxis) + "\"></rect>\n";
  if (label)
    out += "<text x=\"" + fmt_fixed(lay.x[v], 1) + "\" y=\"" +
           fmt_fixed(y + h + 12, 1) + "\" text-anchor=\"middle\" fill=\"" +
           std::string(kInkMuted) + "\">" + escape_text(name) + "</text>\n";
  return out;
}

/// Switch glyph: circle + name.
std::string switch_glyph(const Layout& lay, NetVertexId v,
                         const std::string& name) {
  std::string out;
  out += "<circle cx=\"" + fmt_fixed(lay.x[v], 1) + "\" cy=\"" +
         fmt_fixed(lay.y[v], 1) + "\" r=\"7\" fill=\"" + std::string(kSurface) +
         "\" stroke=\"" + std::string(kInkSecondary) +
         "\" stroke-width=\"1.5\"><title>" + escape_text(name) +
         "</title></circle>\n";
  out += "<text x=\"" + fmt_fixed(lay.x[v], 1) + "\" y=\"" +
         fmt_fixed(lay.y[v] - 11, 1) + "\" text-anchor=\"middle\" fill=\"" +
         std::string(kInkMuted) + "\">" + escape_text(name) + "</text>\n";
  return out;
}

std::string dir_tip(const SwitchGraph& net, LinkId l, int dir, double bytes) {
  const auto& lk = net.link(l);
  const NetVertexId from = dir == 0 ? lk.a : lk.b;
  const NetVertexId to = dir == 0 ? lk.b : lk.a;
  return "cable " + std::to_string(l) + " (" + vertex_label(net, from) +
         " -> " + vertex_label(net, to) + ", capacity " +
         std::to_string(lk.capacity) + "): " + fmt_bytes(bytes) + " (" +
         fmt(bytes) + " B)";
}

std::string qpi_tip(NodeId n, int dir, double bytes) {
  return "node " + std::to_string(n) + " QPI " +
         (dir == 0 ? "socket 0 -> 1" : "socket 1 -> 0") + ": " +
         fmt_bytes(bytes) + " (" + fmt(bytes) + " B)";
}

}  // namespace

TopoHeatmap build_topo_heatmap(const Machine& machine,
                               const report::ScheduleRecord& record) {
  TopoHeatmap heat;
  const SwitchGraph& net = machine.network();
  heat.links.resize(net.num_links());
  for (LinkId l = 0; l < net.num_links(); ++l) heat.links[l].link = l;
  heat.nodes.resize(machine.num_nodes());
  for (NodeId n = 0; n < machine.num_nodes(); ++n) heat.nodes[n].node = n;

  // Verbatim copies of the recorded aggregates — the EXPECT_EQ contract.
  for (const auto& [key, bytes] : record.link_bytes) {
    const auto [id, dir] = key;
    if (id < 0 || id >= net.num_links() || dir < 0 || dir > 1) continue;
    heat.links[id].bytes[dir] = bytes;
    heat.max_link_bytes = std::max(heat.max_link_bytes, bytes);
  }
  for (const auto& [key, bytes] : record.qpi_bytes) {
    const auto [id, dir] = key;
    if (id < 0 || id >= machine.num_nodes() || dir < 0 || dir > 1) continue;
    heat.nodes[id].bytes[dir] = bytes;
    heat.max_qpi_bytes = std::max(heat.max_qpi_bytes, bytes);
  }
  return heat;
}

std::string render_topo_heatmap(const Machine& machine, const TopoHeatmap& heat,
                                const std::string& caption) {
  const SwitchGraph& net = machine.network();
  const Layout lay = layout_graph(net);
  const double max_all =
      std::max(1.0, std::max(heat.max_link_bytes, heat.max_qpi_bytes));
  const bool host_labels = machine.num_nodes() <= 32;

  std::string svg;
  for (const auto& el : heat.links) {
    const auto& lk = net.link(el.link);
    for (int dir = 0; dir < 2; ++dir) {
      const double b = el.bytes[dir];
      const std::string color =
          b > 0.0 ? seq_color(b / max_all) : std::string(kGridline);
      svg += link_stroke(lay, dir == 0 ? lk.a : lk.b, dir == 0 ? lk.b : lk.a,
                         dir, color, b > 0.0 ? 3.0 : 1.2,
                         dir_tip(net, el.link, dir, b));
    }
  }
  for (NetVertexId v = 0; v < net.num_vertices(); ++v) {
    const auto& vx = net.vertex(v);
    if (vx.kind == VertexKind::Host) {
      const NodeId n = vx.node;
      const double b0 = n >= 0 && n < (int)heat.nodes.size()
                            ? heat.nodes[n].bytes[0] : 0.0;
      const double b1 = n >= 0 && n < (int)heat.nodes.size()
                            ? heat.nodes[n].bytes[1] : 0.0;
      svg += host_glyph(
          lay, v, vertex_label(net, v),
          b0 > 0.0 ? seq_color(b0 / max_all) : std::string(kSurface),
          b1 > 0.0 ? seq_color(b1 / max_all) : std::string(kSurface),
          qpi_tip(n, 0, b0), qpi_tip(n, 1, b1), host_labels);
    } else {
      svg += switch_glyph(lay, v, vertex_label(net, v));
    }
  }

  std::string out = "<figure>\n";
  if (!caption.empty())
    out += "<figcaption class=\"legend\">" + escape_text(caption) +
           "</figcaption>\n";
  out += "<svg width=\"" + std::to_string(lay.width) + "\" height=\"" +
         std::to_string(lay.height) + "\" role=\"img\" aria-label=\"" +
         escape_attr(caption.empty() ? std::string("topology load") : caption) +
         "\">\n" + svg + "</svg>\n</figure>\n";
  out += seq_legend(0.0, max_all, /*as_bytes=*/true);

  // The accessible twin: every loaded resource, exact byte values.
  std::vector<std::vector<std::string>> rows;
  for (const auto& el : heat.links)
    for (int dir = 0; dir < 2; ++dir)
      if (el.bytes[dir] > 0.0)
        rows.push_back({"cable " + std::to_string(el.link),
                        vertex_label(net, dir == 0 ? net.link(el.link).a
                                                   : net.link(el.link).b) +
                            " -> " +
                            vertex_label(net, dir == 0 ? net.link(el.link).b
                                                       : net.link(el.link).a),
                        fmt(el.bytes[dir])});
  for (const auto& nl : heat.nodes)
    for (int dir = 0; dir < 2; ++dir)
      if (nl.bytes[dir] > 0.0)
        rows.push_back({"node " + std::to_string(nl.node) + " QPI",
                        dir == 0 ? "socket 0 -> 1" : "socket 1 -> 0",
                        fmt(nl.bytes[dir])});
  if (rows.empty()) {
    out += "<p class=\"intro\">No network or QPI load was recorded.</p>\n";
  } else {
    out += collapsible("Per-resource byte loads (" +
                           std::to_string(rows.size()) + " directed entries)",
                       data_table({"resource", "direction", "bytes"}, rows));
  }
  return out;
}

std::string render_topo_diff(const Machine& machine, const TopoHeatmap& a,
                             const TopoHeatmap& b, const std::string& caption) {
  const SwitchGraph& net = machine.network();
  const Layout lay = layout_graph(net);

  double max_abs = 0.0;
  auto delta_link = [&](LinkId l, int dir) {
    const double va = l < (LinkId)a.links.size() ? a.links[l].bytes[dir] : 0.0;
    const double vb = l < (LinkId)b.links.size() ? b.links[l].bytes[dir] : 0.0;
    return vb - va;
  };
  auto delta_qpi = [&](NodeId n, int dir) {
    const double va = n < (NodeId)a.nodes.size() ? a.nodes[n].bytes[dir] : 0.0;
    const double vb = n < (NodeId)b.nodes.size() ? b.nodes[n].bytes[dir] : 0.0;
    return vb - va;
  };
  for (LinkId l = 0; l < net.num_links(); ++l)
    for (int dir = 0; dir < 2; ++dir)
      max_abs = std::max(max_abs, std::fabs(delta_link(l, dir)));
  for (NodeId n = 0; n < machine.num_nodes(); ++n)
    for (int dir = 0; dir < 2; ++dir)
      max_abs = std::max(max_abs, std::fabs(delta_qpi(n, dir)));
  if (max_abs == 0.0) max_abs = 1.0;
  const bool host_labels = machine.num_nodes() <= 32;

  std::string svg;
  for (LinkId l = 0; l < net.num_links(); ++l) {
    const auto& lk = net.link(l);
    for (int dir = 0; dir < 2; ++dir) {
      const double d = delta_link(l, dir);
      const std::string color =
          d == 0.0 ? std::string(kGridline) : div_color(d / max_abs);
      svg += link_stroke(
          lay, dir == 0 ? lk.a : lk.b, dir == 0 ? lk.b : lk.a, dir, color,
          d == 0.0 ? 1.2 : 3.0,
          "cable " + std::to_string(l) + " (" +
              vertex_label(net, dir == 0 ? lk.a : lk.b) + " -> " +
              vertex_label(net, dir == 0 ? lk.b : lk.a) + ") delta: " + fmt(d) +
              " B");
    }
  }
  for (NetVertexId v = 0; v < net.num_vertices(); ++v) {
    const auto& vx = net.vertex(v);
    if (vx.kind == VertexKind::Host) {
      const NodeId n = vx.node;
      const double d0 = delta_qpi(n, 0), d1 = delta_qpi(n, 1);
      svg += host_glyph(
          lay, v, vertex_label(net, v),
          d0 == 0.0 ? std::string(kSurface) : div_color(d0 / max_abs),
          d1 == 0.0 ? std::string(kSurface) : div_color(d1 / max_abs),
          "node " + std::to_string(n) + " QPI socket 0 -> 1 delta: " + fmt(d0) +
              " B",
          "node " + std::to_string(n) + " QPI socket 1 -> 0 delta: " + fmt(d1) +
              " B",
          host_labels);
    } else {
      svg += switch_glyph(lay, v, vertex_label(net, v));
    }
  }

  std::string out = "<figure>\n";
  if (!caption.empty())
    out += "<figcaption class=\"legend\">" + escape_text(caption) +
           "</figcaption>\n";
  out += "<svg width=\"" + std::to_string(lay.width) + "\" height=\"" +
         std::to_string(lay.height) + "\" role=\"img\" aria-label=\"" +
         escape_attr(caption.empty() ? std::string("topology load diff")
                                     : caption) +
         "\">\n" + svg + "</svg>\n</figure>\n";
  out += div_legend("load relieved", "newly loaded");

  // Largest movements, both signs, exact values.
  struct Move {
    std::string what, dir;
    double delta;
  };
  std::vector<Move> moves;
  for (LinkId l = 0; l < net.num_links(); ++l)
    for (int dir = 0; dir < 2; ++dir) {
      const double d = delta_link(l, dir);
      if (d != 0.0)
        moves.push_back(
            {"cable " + std::to_string(l),
             vertex_label(net, dir == 0 ? net.link(l).a : net.link(l).b) +
                 " -> " +
                 vertex_label(net, dir == 0 ? net.link(l).b : net.link(l).a),
             d});
    }
  for (NodeId n = 0; n < machine.num_nodes(); ++n)
    for (int dir = 0; dir < 2; ++dir) {
      const double d = delta_qpi(n, dir);
      if (d != 0.0)
        moves.push_back({"node " + std::to_string(n) + " QPI",
                         dir == 0 ? "socket 0 -> 1" : "socket 1 -> 0", d});
    }
  std::stable_sort(moves.begin(), moves.end(), [](const Move& x, const Move& y) {
    return std::fabs(x.delta) > std::fabs(y.delta);
  });
  if (moves.size() > 24) moves.resize(24);
  std::vector<std::vector<std::string>> rows;
  for (const auto& m : moves)
    rows.push_back({m.what, m.dir, fmt(m.delta)});
  if (!rows.empty())
    out += collapsible(
        "Largest load movements (top " + std::to_string(rows.size()) + ")",
        data_table({"resource", "direction", "delta bytes"}, rows));
  return out;
}

}  // namespace tarr::viz
