#include "viz/dashboard.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "report/critical_path.hpp"
#include "report/diff.hpp"
#include "viz/findings.hpp"
#include "viz/matrix.hpp"
#include "viz/profile.hpp"
#include "viz/timeline.hpp"
#include "viz/topo.hpp"

namespace tarr::viz {

namespace {

using report::CriticalPath;
using report::PathChannel;
using report::ScheduleRecord;

std::string card(const std::string& name, const std::string& value,
                 const std::string& delta_html) {
  return "<div class=\"card\"><div class=\"name\">" + escape_text(name) +
         "</div><div class=\"value\">" + escape_text(value) +
         "</div><div class=\"delta\">" + delta_html + "</div></div>\n";
}

std::string summary_cards(const DashboardInputs& in, const CriticalPath& pa,
                          const CriticalPath* pb) {
  std::string cards = "<div class=\"cards\">\n";
  cards += card(in.baseline_label + " completion", fmt_usec(in.baseline->total),
                "");
  if (in.candidate != nullptr && pb != nullptr) {
    const double a = in.baseline->total, b = in.candidate->total;
    const double imp = a != 0.0 ? (a - b) / a * 100.0 : 0.0;
    const bool better = imp > 0.0;
    cards += card(in.candidate_label + " completion", fmt_usec(b),
                  std::string("<span class=\"") +
                      (better ? "flag-good" : "flag-bad") + "\">" +
                      (better ? "&#8595; " : "&#8593; ") +
                      escape_text(fmt_fixed(std::fabs(imp), 2) + "% " +
                                  (better ? "faster" : "slower")) +
                      "</span>");
  }
  cards += card("critical-path split (" + in.baseline_label + ")",
                fmt_usec(pa.serialization) + " / " + fmt_usec(pa.contention) +
                    " / " + fmt_usec(pa.retransmission),
                "serialization / contention / retransmission");
  cards += "</div>\n";
  return cards;
}

/// Channel-attribution chart: critical-path time per channel class, one
/// series per run.
std::string channel_chart(const DashboardInputs& in, const CriticalPath& pa,
                          const CriticalPath* pb) {
  const PathChannel order[] = {PathChannel::IntraSocket, PathChannel::Qpi,
                               PathChannel::IntraLeaf, PathChannel::CrossCore,
                               PathChannel::Local, PathChannel::Other};
  std::vector<std::string> x;
  ChartSeries sa{in.baseline_label, {}, 0};
  ChartSeries sb{in.candidate_label, {}, 1};
  for (const PathChannel c : order) {
    x.push_back(report::to_string(c));
    const auto ia = pa.by_channel.find(c);
    sa.y.push_back(ia != pa.by_channel.end() ? ia->second.time : 0.0);
    if (pb != nullptr) {
      const auto ib = pb->by_channel.find(c);
      sb.y.push_back(ib != pb->by_channel.end() ? ib->second.time : 0.0);
    }
  }
  std::vector<ChartSeries> series{sa};
  if (pb != nullptr) series.push_back(sb);
  LineChartOptions lo;
  lo.y_label = "critical-path time (us)";
  return line_chart("Critical-path time by channel class", x, series, lo);
}

}  // namespace

std::string render_dashboard(const DashboardInputs& in) {
  TARR_REQUIRE(in.machine != nullptr && in.baseline != nullptr,
               "render_dashboard: machine and baseline record are required");
  const topology::Machine& machine = *in.machine;

  const CriticalPath pa = report::analyze_critical_path(*in.baseline, machine);
  CriticalPath pb_store;
  const CriticalPath* pb = nullptr;
  if (in.candidate != nullptr) {
    pb_store = report::analyze_critical_path(*in.candidate, machine);
    pb = &pb_store;
  }

  Page page(in.title);

  page.add_section("Summary", in.subtitle,
                   summary_cards(in, pa, pb) + channel_chart(in, pa, pb));

  // Topology load.
  const TopoHeatmap ha = build_topo_heatmap(machine, *in.baseline);
  std::string topo_body = render_topo_heatmap(
      machine, ha, in.baseline_label + " directed cable / QPI load");
  if (in.candidate != nullptr) {
    const TopoHeatmap hb = build_topo_heatmap(machine, *in.candidate);
    topo_body += render_topo_heatmap(
        machine, hb, in.candidate_label + " directed cable / QPI load");
    topo_body += render_topo_diff(
        machine, ha, hb,
        "Load diff: " + in.candidate_label + " vs " + in.baseline_label);
  }
  page.add_section(
      "Topology load",
      "The switch graph with per-cable and per-QPI directed byte loads from "
      "the engine's load counters; darker is heavier.",
      topo_body);

  // Communication matrices.
  const CommMatrix ma = build_comm_matrix(*in.baseline, machine);
  std::string mat_body;
  if (in.candidate != nullptr) {
    const CommMatrix mb = build_comm_matrix(*in.candidate, machine);
    mat_body = render_comm_matrix_pair(ma, in.baseline_label, mb,
                                       in.candidate_label);
  } else {
    mat_body = render_comm_matrix(ma, in.baseline_label);
  }
  page.add_section(
      "Communication matrix",
      std::string("Pairwise byte volume in *physical* order (") +
          (ma.by_node ? "aggregated node x node" :
                        "ranks sorted by the core they occupy") +
          "); a good reordering pulls the heavy cells toward the diagonal "
          "blocks.",
      mat_body);

  // Timelines.
  std::string tl_body =
      render_timeline(*in.baseline, pa, in.baseline_label + " schedule");
  if (in.candidate != nullptr && pb != nullptr)
    tl_body +=
        render_timeline(*in.candidate, *pb, in.candidate_label + " schedule");
  page.add_section(
      "Timeline & critical path",
      "Stage bars per rank over simulated time; the critical band splits "
      "every completion-time-determining segment into serialization, "
      "contention stall and retransmission.",
      tl_body);

  // Mapping-attribution diff (tables from tarr::report).
  if (in.candidate != nullptr) {
    const report::MappingDiff diff =
        report::diff_runs(*in.baseline, *in.candidate, machine);
    std::vector<std::vector<std::string>> rows;
    for (const auto& [channel, delta] : diff.channels)
      rows.push_back({report::to_string(channel), fmt(delta.a.bytes),
                      fmt(delta.b.bytes), fmt(delta.bytes_delta()),
                      fmt_usec(delta.time_delta())});
    std::string diff_body = data_table(
        {"channel", in.baseline_label + " bytes", in.candidate_label + " bytes",
         "delta bytes", "delta transfer time"},
        rows);
    std::vector<std::vector<std::string>> res_rows;
    for (const auto& r : diff.relieved)
      res_rows.push_back({"relieved", r.label(), fmt(r.bytes_a), fmt(r.bytes_b),
                          fmt(r.delta())});
    for (const auto& r : diff.newly_loaded)
      res_rows.push_back({"newly loaded", r.label(), fmt(r.bytes_a),
                          fmt(r.bytes_b), fmt(r.delta())});
    if (!res_rows.empty())
      diff_body += collapsible(
          "Top relieved / newly loaded resources",
          data_table({"kind", "resource", in.baseline_label + " bytes",
                      in.candidate_label + " bytes", "delta"},
                     res_rows));
    page.add_section(
        "Mapping attribution",
        "Where the bytes (and the priced transfer time) migrated between "
        "channel classes, from tarr::report::diff_runs.",
        diff_body);
  }

  // Run diagnosis (tarr::insight findings).
  if (in.diagnosis != nullptr)
    page.add_section(
        "Diagnosis",
        "tarr::insight's ranked findings over the " + in.baseline_label +
            " run: stragglers, imbalance, fairness and critical-path "
            "pathologies, each with exact traced evidence and the knob it "
            "implicates.",
        render_findings_section(*in.diagnosis));

  // Reproduction overheads (tarr::prof self-profile).
  if (in.profile != nullptr && !in.profile->entries.empty())
    page.add_section(
        "Overheads",
        "What the reproduction itself spent per phase (tarr::prof work "
        "counters — deterministic, so this section is byte-stable across "
        "same-seed runs; wall time lives in the --prof CSV exports).",
        render_profile_section(*in.profile, in.profile_label));

  // Trajectory.
  if (!in.trend.empty())
    page.add_section(
        "Perf trajectory",
        "Bench snapshot metrics across sets; gated metrics outside the "
        "tolerance are flagged.",
        render_trend(in.trend, in.trend_opts));

  return page.html();
}

}  // namespace tarr::viz
