#pragma once

#include <string>
#include <vector>

/// \file html.hpp
/// Deterministic HTML/SVG building blocks of tarr::viz, the dashboard
/// renderer (see docs/OBSERVABILITY.md, "Dashboards").
///
/// Everything tarr::viz emits is a single self-contained HTML file: inline
/// CSS, inline SVG, no scripts, no external assets — it opens from a CI
/// artifact tab or an email attachment exactly as it opened locally.  The
/// same determinism contract as the Tracer applies: the serialized bytes
/// are a pure function of the (simulated, seeded) inputs, so two same-seed
/// runs produce byte-identical dashboards and CI can `cmp` them.  That is
/// why every number passes through the locale-independent formatters here
/// and no view ever embeds wall-clock quantities.
///
/// Color discipline (one rule per job):
///   * magnitude  -> the sequential blue ramp (seq_color);
///   * polarity   -> the diverging blue<->red scale with a neutral gray
///                   midpoint (div_color) — blue = load relieved, red =
///                   newly loaded;
///   * identity   -> fixed categorical slots (series_color), assigned in a
///                   fixed order and never cycled;
///   * state      -> the reserved status colors (kStatusCritical/kGood),
///                   always paired with a text label, never color alone.
/// Pages render on a fixed light surface (color-scheme: light) because the
/// SVG fills are computed inline per datum; a half-themed dark render would
/// be worse than a consistent light one.

namespace tarr::viz {

/// Escape text content for an HTML element body (& < >).
std::string escape_text(const std::string& s);

/// Escape a string for a double-quoted HTML/SVG attribute (& < > " ').
std::string escape_attr(const std::string& s);

/// Deterministic number formatting (same contract as the Tracer/snapshot
/// writers): exact integers bare, everything else %.17g.
std::string fmt(double v);

/// Fixed-precision formatting for display (locale-independent %.{prec}f).
std::string fmt_fixed(double v, int prec);

/// Human-readable byte count ("768 B", "1.5 KB", "2.3 MB"); deterministic.
std::string fmt_bytes(double bytes);

/// Human-readable simulated duration ("3.1 us", "4.56 ms"); deterministic.
std::string fmt_usec(double us);

/// Sequential (magnitude) color: t in [0,1] mapped onto the blue ramp,
/// light (near zero) to dark.  Values outside [0,1] are clamped.
std::string seq_color(double t);

/// Diverging (polarity) color: t in [-1,1]; negative = blue (relieved),
/// positive = red (newly loaded), 0 = neutral gray.  Clamped.
std::string div_color(double t);

/// Fixed categorical palette, slots 0..7 (blue, orange, aqua, yellow,
/// magenta, green, violet, red).  Slots past 7 fold back to gray — callers
/// should bucket to "other" before that happens.
const char* series_color(int slot);

/// Reserved status colors (never used for series).
inline constexpr const char* kStatusCritical = "#d03b3b";
inline constexpr const char* kStatusGood = "#0ca30c";

/// Chrome/ink tokens shared by every view (light surface).
inline constexpr const char* kSurface = "#fcfcfb";
inline constexpr const char* kInkPrimary = "#0b0b0b";
inline constexpr const char* kInkSecondary = "#52514e";
inline constexpr const char* kInkMuted = "#898781";
inline constexpr const char* kGridline = "#e1e0d9";
inline constexpr const char* kAxis = "#c3c2b7";

/// Accumulates titled sections into one self-contained page.
class Page {
 public:
  explicit Page(std::string title);

  /// Append one section: an <h2> title, an optional one-paragraph intro
  /// (plain text, escaped), and a pre-rendered HTML body.
  void add_section(const std::string& title, const std::string& intro,
                   std::string body_html);

  /// Serialize the full document (doctype, inline CSS, all sections).
  std::string html() const;

 private:
  std::string title_;
  struct Section {
    std::string title;
    std::string intro;
    std::string body;
  };
  std::vector<Section> sections_;
};

/// One series of a line chart.  Missing points are encoded as NaN and
/// simply skipped.
struct ChartSeries {
  std::string label;
  std::vector<double> y;
  int color_slot = 0;  ///< categorical slot (see series_color)
};

struct LineChartOptions {
  int width = 560;
  int height = 220;
  std::string y_label;     ///< axis caption, e.g. "mean latency (us)"
  bool y_from_zero = true; ///< include 0 in the y range
};

/// A small multi-series line chart with markers, hairline grid, a legend
/// (only when there are >= 2 series) and a <title> tooltip per marker.
/// `x_labels` are categorical tick labels (one per point).
std::string line_chart(const std::string& caption,
                       const std::vector<std::string>& x_labels,
                       const std::vector<ChartSeries>& series,
                       const LineChartOptions& opts);

/// A plain data table (header + rows, all cells escaped) — the accessible
/// twin every chart ships next to, usually inside `collapsible`.
std::string data_table(const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows);

/// Wrap `body_html` in a collapsed <details> block labeled `summary`.
std::string collapsible(const std::string& summary, const std::string& body);

/// A horizontal sequential-ramp legend from `lo` to `hi` (formatted with
/// `fmt_bytes` when `as_bytes`, else `fmt_fixed(.,1)`).
std::string seq_legend(double lo, double hi, bool as_bytes);

/// A three-swatch diverging legend: relieved / unchanged / newly loaded.
std::string div_legend(const std::string& neg_label,
                       const std::string& pos_label);

}  // namespace tarr::viz
