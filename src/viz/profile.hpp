#pragma once

#include <string>

#include "prof/profiler.hpp"

/// \file profile.hpp
/// The "Overheads" dashboard section: a tarr::prof flat profile rendered as
/// an indented scope table (calls, work self/total, share-of-total bars)
/// plus the per-scope counter detail, in the paper's Fig. 7 spirit — what
/// the *reproduction* spends per phase, next to what the *simulated
/// machine* spends.  Deterministic: only counter metrics are shown (wall
/// time stays in the opt-in CSV exports), so same-seed dashboards remain
/// byte-identical.

namespace tarr::viz {

/// Section body HTML for one profile (empty profile -> empty string).
std::string render_profile_section(const prof::Profile& p,
                                   const std::string& label);

}  // namespace tarr::viz
