#include "viz/profile.hpp"

#include "viz/html.hpp"

namespace tarr::viz {

std::string render_profile_section(const prof::Profile& p,
                                   const std::string& label) {
  if (p.entries.empty()) return std::string();
  const prof::ProfileEntry& root = p.entries.front();
  const double grand = root.work_total;

  // Scope table, built by hand (data_table escapes cells; this one embeds
  // indentation and inline share-of-work bars).  Deterministic counters
  // only — wall time stays in the opt-in CSV exports.
  std::string body = "<table class=\"viz\">\n<tr>";
  for (const char* h :
       {"scope", "calls", "work (self)", "work (total)", "share of work"})
    body += std::string("<th>") + h + "</th>";
  body += "</tr>\n";
  for (const prof::ProfileEntry& e : p.entries) {
    const double share = grand > 0.0 ? e.work_total / grand : 0.0;
    std::string name;
    for (int i = 1; i < e.depth; ++i) name += "&nbsp;&nbsp;&nbsp;";
    name += escape_text(e.parent < 0 ? "(root)" : e.name);
    body += "<tr><td>" + name + "</td><td>" +
            escape_text(fmt(static_cast<double>(e.calls))) + "</td><td>" +
            escape_text(fmt(e.work_self)) + "</td><td>" +
            escape_text(fmt(e.work_total)) + "</td><td>" +
            "<span style=\"display:inline-block;height:9px;width:" +
            fmt_fixed(share * 120.0, 1) + "px;background:" +
            seq_color(share) + "\"></span> " + fmt_fixed(share * 100.0, 1) +
            "%</td></tr>\n";
  }
  body += "</table>\n";

  // Counter detail: root totals of every named counter.
  if (!root.counters.empty()) {
    std::vector<std::vector<std::string>> crow;
    for (const auto& [name, m] : root.counters)
      crow.push_back({name, fmt(m.total)});
    body += collapsible(label + ": work-counter totals",
                        data_table({"counter", "total"}, crow));
  }
  if (p.mem_tracked) {
    std::vector<std::vector<std::string>> mrow;
    mrow.push_back({"allocated bytes (cumulative)",
                    fmt_bytes(static_cast<double>(root.mem_bytes_total))});
    mrow.push_back(
        {"allocations", fmt(static_cast<double>(root.mem_allocs_total))});
    body += collapsible(label + ": allocation pressure",
                        data_table({"metric", "value"}, mrow));
  }
  return body;
}

}  // namespace tarr::viz
