#include "viz/matrix.hpp"

#include <algorithm>
#include <map>

namespace tarr::viz {

namespace {

/// SVG grid for one matrix against a shared scale.
std::string matrix_svg(const CommMatrix& m, double scale_max,
                       const std::string& label) {
  const int n = std::max(1, m.n);
  // Cell size adapts so the grid stays between ~160 and ~480 px.
  const double cell = std::clamp(440.0 / n, 4.0, 26.0);
  const double ml = 34.0, mt = 10.0;
  const int w = static_cast<int>(ml + n * cell + 8);
  const int h = static_cast<int>(mt + n * cell + 28);
  const double lo_cap = std::max(1.0, scale_max);

  std::string out = "<svg width=\"" + std::to_string(w) + "\" height=\"" +
                    std::to_string(h) + "\" role=\"img\" aria-label=\"" +
                    escape_attr(label) + "\">\n";
  for (int i = 0; i < m.n; ++i) {
    for (int j = 0; j < m.n; ++j) {
      const double b = m.cell(i, j);
      const std::string color =
          b > 0.0 ? seq_color(b / lo_cap) : std::string("#f4f3f1");
      out += "<rect x=\"" + fmt_fixed(ml + j * cell, 1) + "\" y=\"" +
             fmt_fixed(mt + i * cell, 1) + "\" width=\"" +
             fmt_fixed(cell - (cell > 6 ? 1.0 : 0.0), 1) + "\" height=\"" +
             fmt_fixed(cell - (cell > 6 ? 1.0 : 0.0), 1) + "\" fill=\"" +
             color + "\"><title>" +
             escape_text(m.labels[i] + " -> " + m.labels[j] + ": " +
                         fmt_bytes(b) + " (" + fmt(b) + " B)") +
             "</title></rect>\n";
    }
  }
  // Sparse axis labels (at most 8 per axis).
  const int stride = std::max(1, (m.n + 7) / 8);
  for (int i = 0; i < m.n; i += stride) {
    out += "<text x=\"" + fmt_fixed(ml - 4, 1) + "\" y=\"" +
           fmt_fixed(mt + (i + 0.7) * cell, 1) + "\" text-anchor=\"end\" "
           "fill=\"" + std::string(kInkMuted) + "\">" +
           escape_text(m.labels[i]) + "</text>\n";
    out += "<text x=\"" + fmt_fixed(ml + (i + 0.5) * cell, 1) + "\" y=\"" +
           fmt_fixed(mt + m.n * cell + 14, 1) + "\" text-anchor=\"middle\" "
           "fill=\"" + std::string(kInkMuted) + "\">" +
           escape_text(m.labels[i]) + "</text>\n";
  }
  out += "</svg>\n";
  return out;
}

std::string matrix_table(const CommMatrix& m, const std::string& name) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < m.n; ++i)
    for (int j = 0; j < m.n; ++j)
      if (m.cell(i, j) > 0.0)
        rows.push_back({m.labels[i], m.labels[j], fmt(m.cell(i, j))});
  if (rows.empty()) return "";
  return collapsible(
      (name.empty() ? std::string() : name + ": ") + "nonzero cells (" +
          std::to_string(rows.size()) + ")",
      data_table({"src", "dst", "bytes"}, rows));
}

}  // namespace

CommMatrix build_comm_matrix(const report::ScheduleRecord& record,
                             const topology::Machine& machine,
                             int aggregate_above) {
  // Which core did each observed rank run on?  (The record carries the
  // placement on every transfer; ranks the run never touched don't matter.)
  std::map<Rank, CoreId> core_of;
  for (const auto& t : record.transfers) {
    core_of.emplace(t.src, t.src_core);
    core_of.emplace(t.dst, t.dst_core);
  }

  CommMatrix m;
  m.by_node = static_cast<int>(core_of.size()) > aggregate_above;

  std::map<Rank, int> row_of;  // rank -> matrix row
  if (m.by_node) {
    m.n = machine.num_nodes();
    for (const auto& [rank, core] : core_of)
      row_of[rank] = machine.node_of_core(core);
    m.labels.reserve(m.n);
    for (int i = 0; i < m.n; ++i) {
      std::string label = "n";
      label += std::to_string(i);
      m.labels.push_back(std::move(label));
    }
  } else {
    // Physical ordering: ranks sorted by the core they occupy, so locality
    // reads as diagonal blocks.  std::map iteration is already core-sorted
    // once we invert the mapping.
    std::map<CoreId, Rank> by_core;
    for (const auto& [rank, core] : core_of) by_core.emplace(core, rank);
    m.n = static_cast<int>(by_core.size());
    int row = 0;
    for (const auto& [core, rank] : by_core) {
      row_of[rank] = row++;
      std::string label = "r";
      label += std::to_string(rank);
      m.labels.push_back(std::move(label));
    }
  }
  m.bytes.assign(static_cast<std::size_t>(m.n) * std::max(m.n, 1), 0.0);

  // Logical bytes weighted by stage repeats (channel_flows convention).
  for (const auto& s : record.stages) {
    for (int k = s.first_transfer; k < s.first_transfer + s.num_transfers;
         ++k) {
      const auto& t = record.transfers[k];
      const double b = static_cast<double>(t.bytes) * s.repeats;
      const int i = row_of[t.src], j = row_of[t.dst];
      m.bytes[static_cast<std::size_t>(i) * m.n + j] += b;
      m.total_bytes += b;
    }
  }
  for (const double b : m.bytes) m.max_bytes = std::max(m.max_bytes, b);
  return m;
}

std::string render_comm_matrix(const CommMatrix& m,
                               const std::string& caption) {
  std::string out = "<figure>\n";
  if (!caption.empty())
    out += "<figcaption class=\"legend\">" + escape_text(caption) +
           "</figcaption>\n";
  if (m.n == 0) {
    out += "<p class=\"intro\">No transfers were recorded.</p>\n</figure>\n";
    return out;
  }
  out += matrix_svg(m, m.max_bytes, caption);
  out += "</figure>\n";
  out += seq_legend(0.0, std::max(1.0, m.max_bytes), /*as_bytes=*/true);
  out += matrix_table(m, "");
  return out;
}

std::string render_comm_matrix_pair(const CommMatrix& a,
                                    const std::string& caption_a,
                                    const CommMatrix& b,
                                    const std::string& caption_b) {
  const double scale = std::max(a.max_bytes, b.max_bytes);
  std::string out = "<div class=\"panelrow\">\n";
  out += "<div class=\"panel\"><h3>" + escape_text(caption_a) + "</h3>\n";
  out += a.n > 0 ? matrix_svg(a, scale, caption_a)
                 : "<p class=\"intro\">No transfers were recorded.</p>\n";
  out += "</div>\n<div class=\"panel\"><h3>" + escape_text(caption_b) +
         "</h3>\n";
  out += b.n > 0 ? matrix_svg(b, scale, caption_b)
                 : "<p class=\"intro\">No transfers were recorded.</p>\n";
  out += "</div>\n</div>\n";
  out += seq_legend(0.0, std::max(1.0, scale), /*as_bytes=*/true);
  out += matrix_table(a, caption_a);
  out += matrix_table(b, caption_b);
  return out;
}

}  // namespace tarr::viz
