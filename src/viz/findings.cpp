#include "viz/findings.hpp"

#include <vector>

#include "viz/html.hpp"

namespace tarr::viz {

namespace {

/// Warning sits between the reserved status colors; like them it is always
/// paired with the text label.
constexpr const char* kStatusWarning = "#c77400";

const char* severity_color(insight::Severity s) {
  switch (s) {
    case insight::Severity::Critical:
      return kStatusCritical;
    case insight::Severity::Warning:
      return kStatusWarning;
    case insight::Severity::Info:
      return kInkSecondary;
  }
  return kInkSecondary;
}

std::string severity_badge(insight::Severity s) {
  std::string label = insight::to_string(s);
  for (char& c : label) c = static_cast<char>(c - 'a' + 'A');
  return "<span style=\"color:" + std::string(severity_color(s)) +
         ";font-weight:bold\">[" + escape_text(label) + "]</span>";
}

}  // namespace

std::string render_findings_section(const insight::Diagnosis& d) {
  std::string body;

  // Headline figures.
  std::vector<std::vector<std::string>> head;
  head.push_back({"critical-path total", fmt_usec(d.critical_path.total)});
  head.push_back({"load imbalance (max/mean busy)",
                  fmt_fixed(d.imbalance.imbalance, 2)});
  head.push_back({"Jain fairness (cables)",
                  fmt_fixed(d.imbalance.jain_links, 3)});
  head.push_back({"Jain fairness (QPI)", fmt_fixed(d.imbalance.jain_qpi, 3)});
  body += data_table({"headline", "value"}, head);

  if (d.findings.empty()) {
    body += "<p>no findings &mdash; the run looks balanced.</p>\n";
    return body;
  }

  for (const auto& f : d.findings) {
    body += "<p>" + severity_badge(f.severity) + " " + escape_text(f.title) +
            " <em>(" + escape_text(insight::to_string(f.kind)) +
            ")</em><br>" + escape_text(f.detail) +
            "<br>knob: " + escape_text(f.knob) + "</p>\n";
    if (!f.evidence.empty()) {
      std::vector<std::vector<std::string>> rows;
      for (const auto& e : f.evidence)
        rows.push_back({e.name, fmt(e.value)});
      body += collapsible("evidence: " + f.title,
                          data_table({"name", "value"}, rows));
    }
  }

  // Straggler detail: the top-K busiest ranks with their exact loads.
  if (!d.imbalance.stragglers.empty()) {
    std::vector<std::vector<std::string>> rows;
    for (const Rank r : d.imbalance.stragglers) {
      const auto& rl = d.imbalance.ranks[static_cast<std::size_t>(r)];
      rows.push_back({std::to_string(rl.rank), std::to_string(rl.core),
                      fmt(rl.busy), fmt(rl.stall),
                      fmt(static_cast<double>(rl.transfers))});
    }
    body += collapsible(
        "Busiest ranks (exact traced sums)",
        data_table({"rank", "core", "busy (us)", "stall (us)", "transfers"},
                   rows));
  }
  return body;
}

}  // namespace tarr::viz
