#pragma once

#include <string>
#include <vector>

#include "insight/findings.hpp"
#include "prof/profiler.hpp"
#include "report/record.hpp"
#include "report/snapshot.hpp"
#include "topology/machine.hpp"
#include "viz/trend.hpp"

/// \file dashboard.hpp
/// The combined dashboard: every tarr::viz view on one self-contained HTML
/// page — summary cards, topology load (with the baseline-vs-candidate
/// diff), side-by-side communication matrices, timelines, and the snapshot
/// trajectory.  Everything is optional except the machine + one record;
/// absent inputs simply drop their sections.

namespace tarr::viz {

struct DashboardInputs {
  std::string title = "tarr dashboard";
  std::string subtitle;  ///< one-line config description (machine, pattern)

  const topology::Machine* machine = nullptr;        ///< required
  const report::ScheduleRecord* baseline = nullptr;  ///< required
  std::string baseline_label = "baseline";

  /// Optional second run of the same pattern (a reordered mapping):
  /// enables the topology diff, the side-by-side matrix and the second
  /// timeline.
  const report::ScheduleRecord* candidate = nullptr;
  std::string candidate_label = "reordered";

  /// Optional snapshot trajectory (see trend.hpp).
  std::vector<TrendSet> trend;
  report::CompareOptions trend_opts;

  /// Optional tarr::prof self-profile of the run that produced the records:
  /// enables the "Overheads" section (viz/profile.hpp).
  const prof::Profile* profile = nullptr;
  std::string profile_label = "this run";

  /// Optional tarr::insight diagnosis of the baseline run: enables the
  /// "Diagnosis" section (viz/findings.hpp).
  const insight::Diagnosis* diagnosis = nullptr;
};

/// Render the full page.  Throws tarr::Error when machine/baseline are
/// missing.
std::string render_dashboard(const DashboardInputs& in);

}  // namespace tarr::viz
