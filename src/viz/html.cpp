#include "viz/html.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tarr::viz {

namespace {

struct Rgb {
  int r = 0, g = 0, b = 0;
};

Rgb parse_hex(const char* hex) {
  unsigned v = 0;
  std::sscanf(hex + 1, "%6x", &v);
  return {static_cast<int>((v >> 16) & 0xff), static_cast<int>((v >> 8) & 0xff),
          static_cast<int>(v & 0xff)};
}

std::string to_hex(const Rgb& c) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", c.r, c.g, c.b);
  return buf;
}

Rgb lerp(const Rgb& a, const Rgb& b, double t) {
  auto mix = [t](int x, int y) {
    return static_cast<int>(std::lround(x + (y - x) * t));
  };
  return {mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b)};
}

/// Sequential blue ramp, steps 100..700 (light -> dark).
constexpr const char* kSeqRamp[] = {"#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef",
                                    "#6da7ec", "#5598e7", "#3987e5", "#2a78d6",
                                    "#256abf", "#1c5cab", "#184f95", "#104281",
                                    "#0d366b"};
constexpr int kSeqSteps = static_cast<int>(std::size(kSeqRamp));

/// Categorical slots in fixed order (never cycled).
constexpr const char* kSeries[] = {"#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                                   "#e87ba4", "#008300", "#4a3aa7", "#e34948"};

constexpr const char* kDivNeutral = "#f0efec";
constexpr const char* kDivBlue = "#104281";   ///< relieved pole
constexpr const char* kDivRed = "#a82828";    ///< newly-loaded pole

}  // namespace

std::string escape_text(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string escape_attr(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&#39;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_fixed(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string fmt_bytes(double bytes) {
  const double b = std::fabs(bytes);
  if (b < 1024.0) return fmt_fixed(bytes, 0) + " B";
  if (b < 1024.0 * 1024.0) return fmt_fixed(bytes / 1024.0, 1) + " KB";
  if (b < 1024.0 * 1024.0 * 1024.0)
    return fmt_fixed(bytes / (1024.0 * 1024.0), 1) + " MB";
  return fmt_fixed(bytes / (1024.0 * 1024.0 * 1024.0), 2) + " GB";
}

std::string fmt_usec(double us) {
  const double u = std::fabs(us);
  if (u < 1000.0) return fmt_fixed(us, 1) + " us";
  if (u < 1.0e6) return fmt_fixed(us / 1000.0, 2) + " ms";
  return fmt_fixed(us / 1.0e6, 3) + " s";
}

std::string seq_color(double t) {
  t = std::clamp(t, 0.0, 1.0);
  const double pos = t * (kSeqSteps - 1);
  const int i = std::min(static_cast<int>(pos), kSeqSteps - 2);
  return to_hex(
      lerp(parse_hex(kSeqRamp[i]), parse_hex(kSeqRamp[i + 1]), pos - i));
}

std::string div_color(double t) {
  t = std::clamp(t, -1.0, 1.0);
  const Rgb neutral = parse_hex(kDivNeutral);
  if (t < 0.0) return to_hex(lerp(neutral, parse_hex(kDivBlue), -t));
  return to_hex(lerp(neutral, parse_hex(kDivRed), t));
}

const char* series_color(int slot) {
  if (slot < 0 || slot >= static_cast<int>(std::size(kSeries)))
    return "#898781";
  return kSeries[slot];
}

Page::Page(std::string title) : title_(std::move(title)) {}

void Page::add_section(const std::string& title, const std::string& intro,
                       std::string body_html) {
  sections_.push_back({title, intro, std::move(body_html)});
}

std::string Page::html() const {
  std::string out;
  out += "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n";
  out += "<meta charset=\"utf-8\">\n";
  out += "<title>" + escape_text(title_) + "</title>\n";
  out +=
      "<style>\n"
      ":root { color-scheme: light; }\n"
      "body { background: #f9f9f7; color: #0b0b0b; margin: 0;\n"
      "  font: 14px/1.5 system-ui, -apple-system, \"Segoe UI\", sans-serif; }\n"
      "main { max-width: 1280px; margin: 0 auto; padding: 16px 24px 48px; }\n"
      "h1 { font-size: 22px; font-weight: 600; margin: 12px 0 4px; }\n"
      "h2 { font-size: 17px; font-weight: 600; margin: 28px 0 2px; }\n"
      "p.intro { color: #52514e; margin: 2px 0 10px; max-width: 72em; }\n"
      "section { background: #fcfcfb; border: 1px solid rgba(11,11,11,0.10);\n"
      "  border-radius: 8px; padding: 12px 16px 16px; margin: 14px 0; }\n"
      "svg { display: block; }\n"
      "svg text { font: 11px system-ui, -apple-system, \"Segoe UI\","
      " sans-serif; }\n"
      "table.viz { border-collapse: collapse; margin: 8px 0;\n"
      "  font-variant-numeric: tabular-nums; }\n"
      "table.viz th { text-align: left; color: #52514e; font-weight: 600;\n"
      "  border-bottom: 1px solid #c3c2b7; padding: 2px 12px 2px 0; }\n"
      "table.viz td { border-bottom: 1px solid #e1e0d9;\n"
      "  padding: 2px 12px 2px 0; }\n"
      "details { margin: 6px 0; }\n"
      "details summary { color: #52514e; cursor: pointer; }\n"
      ".panelrow { display: flex; flex-wrap: wrap; gap: 20px;\n"
      "  align-items: flex-start; }\n"
      ".panel h3 { font-size: 13px; font-weight: 600; margin: 4px 0; }\n"
      ".legend { color: #52514e; font-size: 12px; margin: 6px 0; }\n"
      ".legend svg { display: inline-block; vertical-align: middle; }\n"
      ".cards { display: flex; flex-wrap: wrap; gap: 12px; }\n"
      ".card { border: 1px solid #e1e0d9; border-radius: 6px;\n"
      "  padding: 8px 10px; min-width: 200px; }\n"
      ".card .name { color: #52514e; font-size: 12px; }\n"
      ".card .value { font-size: 18px; font-weight: 600; }\n"
      ".card .delta { font-size: 12px; }\n"
      ".flag-bad { color: " + std::string(kStatusCritical) +
      "; font-weight: 600; }\n"
      ".flag-good { color: #006300; font-weight: 600; }\n"
      "</style>\n</head>\n<body>\n<main>\n";
  out += "<h1>" + escape_text(title_) + "</h1>\n";
  for (const auto& s : sections_) {
    out += "<section>\n<h2>" + escape_text(s.title) + "</h2>\n";
    if (!s.intro.empty())
      out += "<p class=\"intro\">" + escape_text(s.intro) + "</p>\n";
    out += s.body;
    out += "</section>\n";
  }
  out += "</main>\n</body>\n</html>\n";
  return out;
}

std::string data_table(const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows) {
  std::string out = "<table class=\"viz\">\n<tr>";
  for (const auto& h : header) out += "<th>" + escape_text(h) + "</th>";
  out += "</tr>\n";
  for (const auto& row : rows) {
    out += "<tr>";
    for (const auto& cell : row) out += "<td>" + escape_text(cell) + "</td>";
    out += "</tr>\n";
  }
  out += "</table>\n";
  return out;
}

std::string collapsible(const std::string& summary, const std::string& body) {
  return "<details><summary>" + escape_text(summary) + "</summary>\n" + body +
         "</details>\n";
}

std::string seq_legend(double lo, double hi, bool as_bytes) {
  const int w = 160, h = 10, steps = 32;
  std::string out = "<div class=\"legend\">";
  out += as_bytes ? fmt_bytes(lo) : fmt_fixed(lo, 1);
  out += " <svg width=\"" + std::to_string(w) + "\" height=\"" +
         std::to_string(h) + "\" role=\"img\" aria-label=\"color scale\">";
  for (int i = 0; i < steps; ++i) {
    out += "<rect x=\"" + fmt_fixed(static_cast<double>(i) * w / steps, 1) +
           "\" y=\"0\" width=\"" + fmt_fixed(static_cast<double>(w) / steps, 1) +
           "\" height=\"" + std::to_string(h) + "\" fill=\"" +
           seq_color((i + 0.5) / steps) + "\"></rect>";
  }
  out += "</svg> ";
  out += as_bytes ? fmt_bytes(hi) : fmt_fixed(hi, 1);
  out += "</div>\n";
  return out;
}

std::string div_legend(const std::string& neg_label,
                       const std::string& pos_label) {
  auto swatch = [](const std::string& color) {
    return "<svg width=\"12\" height=\"12\"><rect width=\"12\" height=\"12\" "
           "fill=\"" + color + "\"></rect></svg> ";
  };
  return "<div class=\"legend\">" + swatch(div_color(-1.0)) +
         escape_text(neg_label) + " &nbsp; " + swatch(div_color(0.0)) +
         "unchanged &nbsp; " + swatch(div_color(1.0)) +
         escape_text(pos_label) + "</div>\n";
}

std::string line_chart(const std::string& caption,
                       const std::vector<std::string>& x_labels,
                       const std::vector<ChartSeries>& series,
                       const LineChartOptions& opts) {
  const int ml = 64, mr = 12, mt = 20, mb = 34;
  const int w = opts.width, h = opts.height;
  const int pw = w - ml - mr, ph = h - mt - mb;
  const int n = static_cast<int>(x_labels.size());

  double lo = opts.y_from_zero ? 0.0 : 1.0e300, hi = -1.0e300;
  for (const auto& s : series)
    for (const double v : s.y) {
      if (std::isnan(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  if (hi < lo) { lo = 0.0; hi = 1.0; }
  if (hi == lo) hi = lo + (lo == 0.0 ? 1.0 : std::fabs(lo) * 0.1);

  auto xpos = [&](int i) {
    return ml + (n <= 1 ? pw / 2.0
                        : static_cast<double>(i) * pw / (n - 1));
  };
  auto ypos = [&](double v) { return mt + (hi - v) / (hi - lo) * ph; };

  std::string out = "<figure>\n";
  if (!caption.empty())
    out += "<figcaption class=\"legend\">" + escape_text(caption) +
           "</figcaption>\n";
  out += "<svg width=\"" + std::to_string(w) + "\" height=\"" +
         std::to_string(h) + "\" role=\"img\" aria-label=\"" +
         escape_attr(caption) + "\">\n";

  // Hairline grid + y ticks.
  const int ticks = 4;
  for (int i = 0; i <= ticks; ++i) {
    const double v = lo + (hi - lo) * i / ticks;
    const double y = ypos(v);
    out += "<line x1=\"" + std::to_string(ml) + "\" y1=\"" + fmt_fixed(y, 1) +
           "\" x2=\"" + std::to_string(ml + pw) + "\" y2=\"" + fmt_fixed(y, 1) +
           "\" stroke=\"" + std::string(kGridline) + "\"></line>\n";
    out += "<text x=\"" + std::to_string(ml - 6) + "\" y=\"" +
           fmt_fixed(y + 3.5, 1) + "\" text-anchor=\"end\" fill=\"" +
           std::string(kInkMuted) + "\">" + escape_text(fmt_fixed(v, 1)) +
           "</text>\n";
  }
  // Baseline + x tick labels (thin to at most 8 labels).
  out += "<line x1=\"" + std::to_string(ml) + "\" y1=\"" +
         std::to_string(mt + ph) + "\" x2=\"" + std::to_string(ml + pw) +
         "\" y2=\"" + std::to_string(mt + ph) + "\" stroke=\"" +
         std::string(kAxis) + "\"></line>\n";
  const int stride = std::max(1, (n + 7) / 8);
  for (int i = 0; i < n; i += stride) {
    out += "<text x=\"" + fmt_fixed(xpos(i), 1) + "\" y=\"" +
           std::to_string(mt + ph + 14) + "\" text-anchor=\"middle\" fill=\"" +
           std::string(kInkMuted) + "\">" + escape_text(x_labels[i]) +
           "</text>\n";
  }
  if (!opts.y_label.empty()) {
    out += "<text x=\"" + std::to_string(ml) + "\" y=\"" + std::to_string(12) +
           "\" fill=\"" + std::string(kInkSecondary) + "\">" +
           escape_text(opts.y_label) + "</text>\n";
  }

  // Series: 2px polyline + >=8px markers, each marker carrying a tooltip.
  for (const auto& s : series) {
    const char* color = series_color(s.color_slot);
    std::string points;
    for (int i = 0; i < n && i < static_cast<int>(s.y.size()); ++i) {
      if (std::isnan(s.y[i])) continue;
      if (!points.empty()) points += " ";
      points += fmt_fixed(xpos(i), 1) + "," + fmt_fixed(ypos(s.y[i]), 1);
    }
    if (!points.empty())
      out += "<polyline points=\"" + points +
             "\" fill=\"none\" stroke=\"" + std::string(color) +
             "\" stroke-width=\"2\"></polyline>\n";
    for (int i = 0; i < n && i < static_cast<int>(s.y.size()); ++i) {
      if (std::isnan(s.y[i])) continue;
      out += "<circle cx=\"" + fmt_fixed(xpos(i), 1) + "\" cy=\"" +
             fmt_fixed(ypos(s.y[i]), 1) + "\" r=\"4\" fill=\"" +
             std::string(color) + "\" stroke=\"" + std::string(kSurface) +
             "\" stroke-width=\"2\"><title>" +
             escape_text(s.label + " @ " + x_labels[i] + ": " + fmt(s.y[i])) +
             "</title></circle>\n";
    }
  }
  out += "</svg>\n";

  // Legend only when identity needs disambiguation (>= 2 series).
  if (series.size() >= 2) {
    out += "<div class=\"legend\">";
    for (const auto& s : series) {
      out += "<svg width=\"12\" height=\"12\"><rect width=\"12\" height=\"12\""
             " fill=\"" + std::string(series_color(s.color_slot)) +
             "\"></rect></svg> " + escape_text(s.label) + " &nbsp; ";
    }
    out += "</div>\n";
  }
  out += "</figure>\n";
  return out;
}

}  // namespace tarr::viz
