#pragma once

#include <string>
#include <vector>

#include "report/record.hpp"
#include "topology/machine.hpp"
#include "viz/html.hpp"

/// \file matrix.hpp
/// Communication-matrix heatmap: the pattern's pairwise byte volume as a
/// rank x rank (or, at scale, node x node) grid, built from a recorded
/// schedule.  Rendered before/after a mapping permutation side by side,
/// this is the Cloud-Collectives-style picture of what a reordering does:
/// the same logical pattern, but the heavy cells migrate toward the
/// diagonal blocks (same node, same socket) of the *physical* ordering.

namespace tarr::viz {

/// A dense src x dst byte matrix over a recorded run.
struct CommMatrix {
  int n = 0;          ///< matrix dimension
  bool by_node = false;  ///< true when aggregated node x node
  /// Row-major bytes: cell(i, j) = bytes sent from axis entity i to j,
  /// weighted by stage repeats (the same logical-byte convention as
  /// report::channel_flows).
  std::vector<double> bytes;
  /// Axis labels in drawing order.  Rank matrices are ordered *physically*
  /// (by the core each rank ran on), so locality shows up as diagonal
  /// blocks; node matrices are ordered by node id.
  std::vector<std::string> labels;
  double max_bytes = 0.0;
  double total_bytes = 0.0;  ///< sum of all cells

  double cell(int i, int j) const { return bytes[i * n + j]; }
};

/// Build the matrix for `record`.  When the run has more than
/// `aggregate_above` distinct ranks the matrix aggregates to node x node
/// using `machine` (ranks themselves would be unreadable and enormous).
CommMatrix build_comm_matrix(const report::ScheduleRecord& record,
                             const topology::Machine& machine,
                             int aggregate_above = 64);

/// Render one matrix as an HTML fragment (SVG grid, sequential coloring,
/// per-cell tooltips, legend, collapsible nonzero-cell table).
std::string render_comm_matrix(const CommMatrix& m, const std::string& caption);

/// Render two matrices of the same pattern side by side (e.g. baseline vs.
/// reordered), sharing one color scale so the panels are comparable.
std::string render_comm_matrix_pair(const CommMatrix& a,
                                    const std::string& caption_a,
                                    const CommMatrix& b,
                                    const std::string& caption_b);

}  // namespace tarr::viz
