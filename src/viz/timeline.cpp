#include "viz/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <tuple>

namespace tarr::viz {

namespace {

using report::CriticalPath;
using report::PathSegment;
using report::ScheduleRecord;

/// Categorical slots for channel identity — deliberately disjoint from the
/// cost-nature slots (0..2) used by the critical-path band on the same
/// page, so the two legends never collide.
int channel_slot(trace::Channel c) {
  switch (c) {
    case trace::Channel::SameComplex: return 3;
    case trace::Channel::SameSocket: return 4;
    case trace::Channel::CrossSocket: return 5;
    case trace::Channel::Network: return 6;
    case trace::Channel::Local: return 7;
  }
  return 6;
}

std::string swatch(const char* color) {
  return "<svg width=\"12\" height=\"12\"><rect width=\"12\" height=\"12\" "
         "fill=\"" + std::string(color) + "\"></rect></svg> ";
}

}  // namespace

std::string render_timeline(const ScheduleRecord& record,
                            const CriticalPath& path,
                            const std::string& caption,
                            const TimelineOptions& opts) {
  if (record.empty()) {
    return "<p class=\"intro\">" +
           escape_text(caption.empty() ? std::string("Timeline")
                                       : caption) +
           ": the record is empty (no stages or time events).</p>\n";
  }

  // Time range: the recorded events cover [0, total] by construction.
  const double total = std::max(record.total, 1.0e-12);

  // Ranks observed (bars live on the destination's row).
  std::set<Rank> rank_set;
  for (const auto& t : record.transfers) {
    rank_set.insert(t.src);
    rank_set.insert(t.dst);
  }
  std::map<Rank, int> row_of;
  for (const Rank r : rank_set)
    row_of.emplace(r, static_cast<int>(row_of.size()));
  const int nranks = static_cast<int>(rank_set.size());
  const bool draw_ranks = nranks > 0 && nranks <= opts.max_rank_rows;

  // Phase nesting depth (phases arrive outer-first per nesting level).
  std::vector<int> phase_depth(record.phases.size(), 0);
  int max_depth = 0;
  for (std::size_t i = 0; i < record.phases.size(); ++i) {
    const auto& p = record.phases[i];
    int depth = 0;
    for (std::size_t j = 0; j < i; ++j) {
      const auto& q = record.phases[j];
      if (p.start >= q.start && p.start + p.duration <= q.start + q.duration &&
          !(p.start == q.start && p.duration == q.duration))
        depth = std::max(depth, phase_depth[j] + 1);
    }
    phase_depth[i] = std::min(depth, 3);
    max_depth = std::max(max_depth, phase_depth[i]);
  }

  // Geometry.
  const double ml = 60.0, mr = 14.0;
  const double pw = opts.width - ml - mr;
  const double phase_h = record.phases.empty() ? 0.0 : (max_depth + 1) * 18.0;
  const double crit_h = 26.0;
  const double rank_row = nranks > 48 ? 7.0 : 10.0;
  const double ranks_h = draw_ranks ? nranks * rank_row : 0.0;
  double y = 8.0;
  const double y_phase = y;
  y += phase_h + (phase_h > 0 ? 12.0 : 0.0);
  const double y_crit = y;
  y += crit_h + 14.0;
  const double y_ranks = y;
  y += ranks_h + (draw_ranks ? 8.0 : 0.0);
  const double y_axis = y;
  const int height = static_cast<int>(y_axis + 26.0);

  auto xpos = [&](double t) { return ml + t / total * pw; };
  auto wid = [&](double d) { return std::max(d / total * pw, 0.75); };

  std::string svg;

  // Time gridlines + axis labels.
  for (int i = 0; i <= 5; ++i) {
    const double t = total * i / 5;
    svg += "<line x1=\"" + fmt_fixed(xpos(t), 1) + "\" y1=\"0\" x2=\"" +
           fmt_fixed(xpos(t), 1) + "\" y2=\"" + fmt_fixed(y_axis, 1) +
           "\" stroke=\"" + std::string(kGridline) + "\"></line>\n";
    svg += "<text x=\"" + fmt_fixed(xpos(t), 1) + "\" y=\"" +
           fmt_fixed(y_axis + 14, 1) + "\" text-anchor=\"middle\" fill=\"" +
           std::string(kInkMuted) + "\">" + escape_text(fmt_usec(t)) +
           "</text>\n";
  }

  // Band labels.
  auto band_label = [&](double yy, const std::string& text) {
    return "<text x=\"2\" y=\"" + fmt_fixed(yy, 1) + "\" fill=\"" +
           std::string(kInkSecondary) + "\">" + escape_text(text) +
           "</text>\n";
  };

  // Phases band.
  if (!record.phases.empty()) {
    svg += band_label(y_phase + 12, "phases");
    for (std::size_t i = 0; i < record.phases.size(); ++i) {
      const auto& p = record.phases[i];
      const double py = y_phase + phase_depth[i] * 18.0;
      const double w = wid(p.duration);
      svg += "<rect x=\"" + fmt_fixed(xpos(p.start), 1) + "\" y=\"" +
             fmt_fixed(py, 1) + "\" width=\"" + fmt_fixed(w, 1) +
             "\" height=\"14\" rx=\"2\" fill=\"#eceaf6\" stroke=\"" +
             std::string(series_color(6)) + "\"><title>" +
             escape_text(p.name + ": " + fmt_usec(p.start) + " + " +
                         fmt_usec(p.duration)) +
             "</title></rect>\n";
      if (w > 60.0)
        svg += "<text x=\"" + fmt_fixed(xpos(p.start) + 4, 1) + "\" y=\"" +
               fmt_fixed(py + 11, 1) + "\" fill=\"" +
               std::string(kInkSecondary) + "\">" + escape_text(p.name) +
               "</text>\n";
    }
  }

  // Critical-path band: one bar per segment, stacked nature colors.
  svg += band_label(y_crit + 14, "critical");
  for (const PathSegment& seg : path.segments) {
    const double x = xpos(seg.start);
    const double w = wid(seg.duration);
    const std::string tip =
        (seg.stage >= 0 ? "stage " + std::to_string(seg.stage) +
                              (seg.repeats > 1
                                   ? " x" + std::to_string(seg.repeats)
                                   : std::string())
                        : std::string("out-of-stage")) +
        " " + seg.what + " [" + report::to_string(seg.channel) + "]" +
        (seg.phase.empty() ? "" : " in " + seg.phase) + ": " +
        fmt_usec(seg.duration) + " (serialization " +
        fmt_usec(seg.serialization) + ", contention " +
        fmt_usec(seg.contention) + ", retransmission " +
        fmt_usec(seg.retransmission) + ")";
    // Stack the three natures left-to-right inside the segment width.
    const double parts[3] = {seg.serialization, seg.contention,
                             seg.retransmission};
    const double psum =
        std::max(parts[0] + parts[1] + parts[2], 1.0e-300);
    double off = 0.0;
    for (int k = 0; k < 3; ++k) {
      if (parts[k] <= 0.0) continue;
      const double wk = w * (parts[k] / psum);
      svg += "<rect x=\"" + fmt_fixed(x + off, 1) + "\" y=\"" +
             fmt_fixed(y_crit + 2, 1) + "\" width=\"" + fmt_fixed(wk, 1) +
             "\" height=\"20\" fill=\"" + std::string(series_color(k)) +
             "\"><title>" + escape_text(tip) + "</title></rect>\n";
      off += wk;
    }
    if (psum <= 1.0e-299 && seg.duration > 0.0) {
      // Degenerate split (shouldn't happen): neutral bar, tooltip intact.
      svg += "<rect x=\"" + fmt_fixed(x, 1) + "\" y=\"" +
             fmt_fixed(y_crit + 2, 1) + "\" width=\"" + fmt_fixed(w, 1) +
             "\" height=\"20\" fill=\"" + std::string(kGridline) +
             "\"><title>" + escape_text(tip) + "</title></rect>\n";
    }
  }

  // Per-rank band.
  std::string note;
  if (draw_ranks) {
    svg += band_label(y_ranks + 10, "ranks");
    // Rank row labels, thinned.
    const int stride = std::max(1, (nranks + 11) / 12);
    int row = 0;
    for (const Rank r : rank_set) {
      if (row % stride == 0)
        svg += "<text x=\"" + fmt_fixed(ml - 6, 1) + "\" y=\"" +
               fmt_fixed(y_ranks + row * rank_row + rank_row * 0.8, 1) +
               "\" text-anchor=\"end\" fill=\"" + std::string(kInkMuted) +
               "\">r" + std::to_string(r) + "</text>\n";
      ++row;
    }
    // Critical elements, matched by (stage, src, dst).
    std::set<std::tuple<int, Rank, Rank>> critical;
    for (const PathSegment& seg : path.segments)
      if (seg.stage >= 0 && seg.src != kNoRank)
        critical.emplace(seg.stage, seg.src, seg.dst);
    for (const auto& s : record.stages) {
      for (int k = s.first_transfer; k < s.first_transfer + s.num_transfers;
           ++k) {
        const auto& t = record.transfers[k];
        const double ty = y_ranks + row_of[t.dst] * rank_row + 1.0;
        // Stage duration spans all repeats; so does the bar.
        const double w = wid(t.duration * s.repeats);
        const bool crit = critical.count({t.stage, t.src, t.dst}) > 0;
        svg += "<rect x=\"" + fmt_fixed(xpos(s.start), 1) + "\" y=\"" +
               fmt_fixed(ty, 1) + "\" width=\"" + fmt_fixed(w, 1) +
               "\" height=\"" + fmt_fixed(rank_row - 2.0, 1) + "\" fill=\"" +
               std::string(series_color(channel_slot(t.channel))) + "\"" +
               (crit ? " stroke=\"" + std::string(kInkPrimary) +
                           "\" stroke-width=\"1.2\""
                     : std::string()) +
               "><title>" +
               escape_text("stage " + std::to_string(t.stage) + " r" +
                           std::to_string(t.src) + " -> r" +
                           std::to_string(t.dst) + " [" +
                           trace::to_string(t.channel) + "] " +
                           fmt_bytes(static_cast<double>(t.bytes)) + ", " +
                           fmt_usec(t.duration) +
                           (s.repeats > 1
                                ? " x" + std::to_string(s.repeats)
                                : std::string()) +
                           (crit ? " (critical)" : "")) +
               "</title></rect>\n";
      }
    }
  } else if (nranks > 0) {
    note = "Per-rank rows omitted: " + std::to_string(nranks) +
           " ranks exceed the " + std::to_string(opts.max_rank_rows) +
           "-row readability cap; the critical-path band above still covers "
           "every completion-time-determining element.";
  }

  std::string out = "<figure>\n";
  if (!caption.empty())
    out += "<figcaption class=\"legend\">" + escape_text(caption) +
           "</figcaption>\n";
  out += "<svg width=\"" + std::to_string(opts.width) + "\" height=\"" +
         std::to_string(height) + "\" role=\"img\" aria-label=\"" +
         escape_attr(caption.empty() ? std::string("timeline") : caption) +
         "\">\n" + svg + "</svg>\n</figure>\n";

  // Legends: nature split, then channels actually present.
  out += "<div class=\"legend\">critical-path split: " +
         swatch(series_color(0)) + "serialization &nbsp; " +
         swatch(series_color(1)) + "contention stall &nbsp; " +
         swatch(series_color(2)) + "retransmission</div>\n";
  if (draw_ranks) {
    std::set<trace::Channel> present;
    for (const auto& t : record.transfers) present.insert(t.channel);
    out += "<div class=\"legend\">transfer channels: ";
    for (const trace::Channel c : present)
      out += swatch(series_color(channel_slot(c))) +
             escape_text(trace::to_string(c)) + " &nbsp; ";
    out += "</div>\n";
  }
  if (!note.empty()) out += "<p class=\"intro\">" + escape_text(note) + "</p>\n";

  // Accessible twin: the critical path, exact values.
  std::vector<std::vector<std::string>> rows;
  for (const PathSegment& seg : path.segments)
    rows.push_back({seg.stage >= 0 ? std::to_string(seg.stage) : "-",
                    seg.what, report::to_string(seg.channel), seg.phase,
                    fmt(seg.start), fmt(seg.duration), fmt(seg.serialization),
                    fmt(seg.contention), fmt(seg.retransmission)});
  out += collapsible(
      "Critical-path segments (" + std::to_string(rows.size()) + ")",
      data_table({"stage", "element", "channel", "phase", "start (us)",
                  "duration (us)", "serialization", "contention",
                  "retransmission"},
                 rows));
  return out;
}

}  // namespace tarr::viz
