#pragma once

#include <string>

#include "report/critical_path.hpp"
#include "report/record.hpp"
#include "viz/html.hpp"

/// \file timeline.hpp
/// Timeline / critical-path view over one recorded run — the schedule read
/// without Perfetto.  Three bands, one simulated-time axis:
///   * phases: the collective's grouping spans (intra gather, leader
///     exchange, ...);
///   * the critical path: one bar per completion-time-determining segment,
///     its duration split into stacked serialization / contention-stall /
///     retransmission colors (the tarr::report attribution made visible);
///   * per-rank rows: every recorded transfer as a bar on its destination
///     rank's row, colored by channel class, critical elements outlined.
/// The per-rank band is skipped (with a note) above `max_rank_rows` —
/// beyond that it is an unreadable smear and a multi-megabyte SVG.

namespace tarr::viz {

struct TimelineOptions {
  int width = 1100;
  int max_rank_rows = 96;
};

/// Render the timeline HTML fragment for `record` with its extracted
/// critical path (callers usually have `path` already; it must come from
/// this same record).
std::string render_timeline(const report::ScheduleRecord& record,
                            const report::CriticalPath& path,
                            const std::string& caption,
                            const TimelineOptions& opts = {});

}  // namespace tarr::viz
