#pragma once

#include <string>
#include <vector>

#include "report/record.hpp"
#include "topology/machine.hpp"
#include "viz/html.hpp"

/// \file topo.hpp
/// Topology load heatmap: the two-level fat-tree (and the NUMA structure of
/// its nodes) drawn as SVG with the recorded per-cable / per-QPI directed
/// byte loads painted onto the edges.  This is the picture behind the
/// paper's Figs 3-4 argument: before reordering, leaf uplinks and QPI
/// directions glow dark; after, the load migrates into the leaves and the
/// sockets.
///
/// The heatmap model is an exact copy of the recorded aggregate counters —
/// `TopoHeatmap` byte values are taken verbatim from
/// `ScheduleRecord::link_bytes` / `qpi_bytes` (no re-derivation, no
/// floating-point re-summation), so tests can assert equality with the
/// trace's counters via EXPECT_EQ, not a tolerance.

namespace tarr::viz {

/// Directed byte load of one physical cable bundle (a SwitchGraph link).
struct TopoEdgeLoad {
  LinkId link = 0;
  /// bytes[dir] for dir in {0, 1}, CostModel's direction convention
  /// (dir 0 = traffic entering at the link's `a` endpoint).
  double bytes[2] = {0.0, 0.0};
};

/// Directed QPI byte load of one compute node.
struct TopoNodeLoad {
  NodeId node = 0;
  /// bytes[dir]: dir 0 = lower -> higher socket, 1 = the reverse.
  double bytes[2] = {0.0, 0.0};
};

/// The load model of one recorded run over one machine: every network link
/// and every node, values copied exactly from the record's counters.
struct TopoHeatmap {
  std::vector<TopoEdgeLoad> links;  ///< one per network link, by link id
  std::vector<TopoNodeLoad> nodes;  ///< one per compute node, by node id
  double max_link_bytes = 0.0;      ///< max over links and directions
  double max_qpi_bytes = 0.0;       ///< max over nodes and directions
};

/// Build the heatmap for `record` over `machine` (the machine the run's
/// communicator lived on).  Links/nodes the run never loaded appear with
/// zero bytes; counters for ids outside the machine are ignored.
TopoHeatmap build_topo_heatmap(const topology::Machine& machine,
                               const report::ScheduleRecord& record);

/// Render one heatmap as an HTML fragment: the layered switch graph
/// (spine / line / leaf rows, hosts at the bottom) with two directed
/// load-colored strokes per link, per-socket QPI coloring inside each host
/// glyph, a sequential legend and a collapsible per-link data table.
std::string render_topo_heatmap(const topology::Machine& machine,
                                const TopoHeatmap& heat,
                                const std::string& caption);

/// Render the *diff* of two heatmaps over the same machine: every edge and
/// QPI direction colored on the diverging scale — blue where run `b`
/// relieved load relative to run `a`, red where it newly loaded — plus the
/// diverging legend and a table of the largest movements.
std::string render_topo_diff(const topology::Machine& machine,
                             const TopoHeatmap& a, const TopoHeatmap& b,
                             const std::string& caption);

}  // namespace tarr::viz
