#include "viz/trend.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

namespace tarr::viz {

namespace {

using report::BenchMetric;
using report::BenchSnapshot;
using report::CompareOptions;

const BenchSnapshot* find_bench(const TrendSet& set, const std::string& name) {
  for (const auto& s : set.snapshots)
    if (s.bench == name) return &s;
  return nullptr;
}

/// Does `current` sit outside the gate tolerance relative to `baseline`,
/// in the *worse* direction?  (Mirrors compare_snapshots' regression rule.)
bool outside_tolerance(const BenchMetric& baseline, double current,
                       const CompareOptions& opts) {
  const double tol = std::max(opts.abs_tolerance,
                              opts.rel_tolerance / 100.0 *
                                  std::fabs(baseline.value));
  const double worse = baseline.higher_is_better ? baseline.value - current
                                                 : current - baseline.value;
  return worse > tol;
}

}  // namespace

std::string render_trend(const std::vector<TrendSet>& sets,
                         const CompareOptions& opts) {
  if (sets.empty())
    return "<p class=\"intro\">No snapshot sets to plot.</p>\n";

  std::vector<std::string> x_labels;
  for (const auto& s : sets) x_labels.push_back(s.label);

  // Benches in first-appearance order across sets (first set leads).
  std::vector<std::string> benches;
  std::set<std::string> seen;
  for (const auto& set : sets)
    for (const auto& snap : set.snapshots)
      if (seen.insert(snap.bench).second) benches.push_back(snap.bench);
  if (benches.empty())
    return "<p class=\"intro\">The snapshot sets contain no benches.</p>\n";

  std::string out;
  std::vector<std::vector<std::string>> flagged;

  for (const std::string& bench : benches) {
    // Metric inventory for this bench, in the order the first set that has
    // the bench declares them; grouped by unit (one chart per unit, one
    // axis per chart).
    std::vector<std::string> units;
    std::map<std::string, std::vector<const BenchMetric*>> by_unit;
    const BenchSnapshot* leader = nullptr;
    for (const auto& set : sets)
      if ((leader = find_bench(set, bench)) != nullptr) break;
    if (leader == nullptr) continue;
    for (const auto& m : leader->metrics) {
      if (by_unit.find(m.unit) == by_unit.end()) units.push_back(m.unit);
      by_unit[m.unit].push_back(&m);
    }

    std::string body;
    for (const std::string& unit : units) {
      const auto& metrics = by_unit[unit];
      std::vector<ChartSeries> series;
      std::vector<std::vector<std::string>> rows;
      const int kMaxSeries = 8;  // categorical slots; beyond -> table only
      for (std::size_t mi = 0; mi < metrics.size(); ++mi) {
        const BenchMetric* lead = metrics[mi];
        ChartSeries cs;
        cs.label = lead->name + (lead->gate ? "" : " (trend-only)");
        cs.color_slot = static_cast<int>(mi);
        std::vector<std::string> row{lead->name, unit,
                                     lead->gate ? "yes" : "no"};
        for (const auto& set : sets) {
          const BenchSnapshot* snap = find_bench(set, bench);
          const BenchMetric* m = snap ? snap->find(lead->name) : nullptr;
          cs.y.push_back(m ? m->value
                           : std::numeric_limits<double>::quiet_NaN());
          row.push_back(m ? fmt(m->value) : "-");
          if (m && lead->gate && sets.size() >= 2 && &set != &sets.front() &&
              outside_tolerance(*lead, m->value, opts)) {
            flagged.push_back({bench, lead->name, set.label,
                               fmt(lead->value), fmt(m->value)});
          }
        }
        rows.push_back(std::move(row));
        if (static_cast<int>(mi) < kMaxSeries) series.push_back(std::move(cs));
      }
      LineChartOptions lo;
      lo.y_label = unit;
      lo.y_from_zero = true;
      body += line_chart(bench + " — " + unit, x_labels, series, lo);
      if (static_cast<int>(metrics.size()) > kMaxSeries)
        body += "<p class=\"intro\">" +
                escape_text(std::to_string(metrics.size() - kMaxSeries) +
                            " further metrics of this unit are in the table "
                            "only (categorical palette cap).") +
                "</p>\n";
      std::vector<std::string> header{"metric", "unit", "gated"};
      for (const auto& l : x_labels) header.push_back(l);
      body += collapsible(bench + " " + unit + " values",
                          data_table(header, rows));
    }
    out += "<div class=\"panel\"><h3>" + escape_text(bench) + "</h3>\n" +
           body + "</div>\n";
  }

  // Gate flags lead the section — state carried by text + status color.
  std::string head;
  if (sets.size() >= 2) {
    if (flagged.empty()) {
      head = "<p class=\"intro\"><span class=\"flag-good\">PASS</span> — no "
             "gated metric is outside the " +
             escape_text(fmt_fixed(opts.rel_tolerance, 1)) +
             "% tolerance relative to \"" + escape_text(sets.front().label) +
             "\".</p>\n";
    } else {
      head = "<p class=\"intro\"><span class=\"flag-bad\">REGRESSED</span> — " +
             std::to_string(flagged.size()) +
             " gated metric reading(s) outside tolerance relative to \"" +
             escape_text(sets.front().label) + "\":</p>\n" +
             data_table({"bench", "metric", "set", "baseline", "value"},
                        flagged);
    }
  }
  return head + out;
}

}  // namespace tarr::viz
