#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>

#include "core/topoallgather.hpp"
#include "simmpi/layout.hpp"
#include "trace/tracer.hpp"

/// \file fixtures.hpp
/// Shared setup for the figure-reproduction benchmarks: the paper-scale
/// machine (GPC fat-tree, 512 nodes x 8 cores = 4096 processes for the
/// micro-benchmarks; 128 nodes = 1024 processes for the application runs)
/// and helpers to build communicators and topology-aware allgather paths.
/// Also the observability escape hatch for figure harnesses: a
/// SlowestConfigTrace fed from the sweep loop re-runs the slowest measured
/// configuration under a tarr::trace::Tracer when TARR_TRACE_OUT /
/// TARR_TRACE_METRICS are set (see docs/OBSERVABILITY.md).

namespace tarr::bench {

/// The paper's micro-benchmark scale.
inline constexpr int kPaperNodes = 512;
inline constexpr int kPaperProcs = 4096;

/// The paper's application scale (Figs 5-6 use 1024 processes).
inline constexpr int kAppNodes = 128;
inline constexpr int kAppProcs = 1024;

/// A machine plus its reorder framework.
struct BenchWorld {
  topology::Machine machine;
  core::ReorderFramework framework;

  explicit BenchWorld(int nodes)
      : machine(topology::Machine::gpc(nodes)), framework(machine) {}

  simmpi::Communicator comm(int p, const simmpi::LayoutSpec& spec) {
    return simmpi::Communicator(machine, simmpi::make_layout(machine, p, spec));
  }

  core::TopoAllgather path(int p, const simmpi::LayoutSpec& spec,
                           const core::TopoAllgatherConfig& cfg) {
    return core::TopoAllgather(framework, comm(p, spec), cfg);
  }
};

/// Tracks the slowest configuration a figure harness measures and, on
/// request, re-runs it with a Tracer attached so the timeline/metrics of the
/// worst case can be inspected in Perfetto.  Inert (no closure kept, no
/// re-run, no files) unless TARR_TRACE_OUT or TARR_TRACE_METRICS is set, so
/// harnesses can feed every measurement through note() unconditionally.
class SlowestConfigTrace {
 public:
  /// Re-executes the configuration against `sink` and returns its latency.
  using Rerun = std::function<Usec(trace::TraceSink*)>;

  /// True when either environment variable requests a dump.
  static bool enabled() {
    return std::getenv("TARR_TRACE_OUT") != nullptr ||
           std::getenv("TARR_TRACE_METRICS") != nullptr;
  }

  /// Record one measured configuration.
  void note(Usec latency, std::string label, Rerun rerun) {
    if (!enabled()) return;
    if (!rerun_ || latency > latency_) {
      latency_ = latency;
      label_ = std::move(label);
      rerun_ = std::move(rerun);
    }
  }

  /// Re-run the slowest configuration under a Tracer and write the
  /// requested artifacts.  Returns true when something was written.
  bool dump() const {
    if (!rerun_) return false;
    trace::Tracer tracer;
    const Usec t = rerun_(&tracer);
    if (const char* path = std::getenv("TARR_TRACE_OUT")) {
      tracer.write_timeline(path);
      std::fprintf(stderr, "trace  : slowest config \"%s\" (%.1f us) -> %s\n",
                   label_.c_str(), t, path);
    }
    if (const char* path = std::getenv("TARR_TRACE_METRICS")) {
      tracer.write_metrics(path);
      std::fprintf(stderr, "metrics: slowest config \"%s\" -> %s\n",
                   label_.c_str(), path);
    }
    return true;
  }

 private:
  Usec latency_ = 0.0;
  std::string label_;
  Rerun rerun_;
};

}  // namespace tarr::bench
