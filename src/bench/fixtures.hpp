#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "core/topoallgather.hpp"
#include "report/snapshot.hpp"
#include "simmpi/layout.hpp"
#include "tlog/writer.hpp"
#include "trace/tracer.hpp"

/// \file fixtures.hpp
/// Shared setup for the figure-reproduction benchmarks: the paper-scale
/// machine (GPC fat-tree, 512 nodes x 8 cores = 4096 processes for the
/// micro-benchmarks; 128 nodes = 1024 processes for the application runs)
/// and helpers to build communicators and topology-aware allgather paths.
/// Also the observability escape hatches for figure harnesses:
///   * SlowestConfigTrace, fed from the sweep loop, re-runs the slowest
///     measured configuration under a tarr::trace::Tracer when
///     TARR_TRACE_OUT / TARR_TRACE_METRICS are set, and/or under a
///     streaming tarr::tlog::TlogSink when TARR_TRACE_TLOG names the
///     output `.tlog` (inspect with tarr-log);
///   * SnapshotEmitter writes a schema-versioned BENCH_<name>.json of the
///     harness's headline metrics when TARR_BENCH_SNAPSHOT_DIR is set —
///     the input of the `tarr-report compare` perf gate;
///   * TARR_BENCH_SMOKE shrinks the sweep (16 nodes, small messages) so CI
///     can regenerate snapshots in seconds (see docs/OBSERVABILITY.md).

namespace tarr::bench {

/// The paper's micro-benchmark scale.
inline constexpr int kPaperNodes = 512;
inline constexpr int kPaperProcs = 4096;

/// The paper's application scale (Figs 5-6 use 1024 processes).
inline constexpr int kAppNodes = 128;
inline constexpr int kAppProcs = 1024;

/// True when TARR_BENCH_SMOKE requests the reduced CI scale.  The smoke
/// sweep exercises the same code paths at 16 nodes so the perf gate runs in
/// seconds; its snapshots live in their own baseline set (config "smoke")
/// and are never compared against full-scale runs.
inline bool smoke() { return std::getenv("TARR_BENCH_SMOKE") != nullptr; }

/// Node count for a harness that wants `full` nodes at paper scale.
inline int bench_nodes(int full) { return smoke() ? std::min(full, 16) : full; }

/// Process count filling every core of `nodes` GPC nodes (8 cores/node).
inline int bench_procs(int nodes) { return nodes * 8; }

/// Cap a message-size sweep in smoke mode (16 KB keeps contention visible
/// while the sweep stays fast).
inline Bytes bench_max_msg(Bytes full) {
  return smoke() ? std::min<Bytes>(full, 16 * 1024) : full;
}

/// Collects a harness's headline metrics and writes BENCH_<name>.json into
/// $TARR_BENCH_SNAPSHOT_DIR on dump().  Inert (no allocation beyond the
/// name, no files) when the variable is unset, so harnesses call it
/// unconditionally.  Wall time is appended automatically as a gate=false
/// trend metric — CI machines are too noisy to gate on it.
class SnapshotEmitter {
 public:
  explicit SnapshotEmitter(std::string bench_name)
      : start_(std::chrono::steady_clock::now()) {
    if (const char* dir = std::getenv("TARR_BENCH_SNAPSHOT_DIR")) {
      dir_ = dir;
      snap_.bench = std::move(bench_name);
      snap_.config = smoke() ? "smoke" : "full";
    }
  }

  bool enabled() const { return !dir_.empty(); }

  /// Free-form scale description ("nodes" -> "16", ...).
  void set_meta(const std::string& key, const std::string& value) {
    if (enabled()) snap_.meta[key] = value;
  }

  /// One gated (or, with gate=false, trend-only) metric.
  void add_metric(const std::string& name, double value,
                  const std::string& unit, bool higher_is_better,
                  bool gate = true) {
    if (enabled())
      snap_.metrics.push_back({name, value, unit, higher_is_better, gate});
  }

  /// Write BENCH_<bench>.json; returns false when disabled.
  bool dump() {
    if (!enabled()) return false;
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    snap_.metrics.push_back({"wall_seconds", secs, "seconds",
                             /*higher_is_better=*/false, /*gate=*/false});
    const std::string path = dir_ + "/BENCH_" + snap_.bench + ".json";
    snap_.write(path);
    std::fprintf(stderr, "snapshot: %s (%zu metrics, %s scale)\n",
                 path.c_str(), snap_.metrics.size(), snap_.config.c_str());
    return true;
  }

 private:
  std::string dir_;
  report::BenchSnapshot snap_;
  std::chrono::steady_clock::time_point start_;
};

/// A machine plus its reorder framework.
struct BenchWorld {
  topology::Machine machine;
  core::ReorderFramework framework;

  explicit BenchWorld(int nodes)
      : machine(topology::Machine::gpc(nodes)), framework(machine) {}

  simmpi::Communicator comm(int p, const simmpi::LayoutSpec& spec) {
    return simmpi::Communicator(machine, simmpi::make_layout(machine, p, spec));
  }

  core::TopoAllgather path(int p, const simmpi::LayoutSpec& spec,
                           const core::TopoAllgatherConfig& cfg) {
    return core::TopoAllgather(framework, comm(p, spec), cfg);
  }
};

/// Tracks the slowest configuration a figure harness measures and, on
/// request, re-runs it with a Tracer (and/or a streaming TlogSink) attached
/// so the timeline/metrics/.tlog of the worst case can be inspected in
/// Perfetto or tarr-log.  Inert (no closure kept, no re-run, no files)
/// unless TARR_TRACE_OUT, TARR_TRACE_METRICS or TARR_TRACE_TLOG is set, so
/// harnesses can feed every measurement through note() unconditionally.
class SlowestConfigTrace {
 public:
  /// Re-executes the configuration against `sink` and returns its latency.
  using Rerun = std::function<Usec(trace::TraceSink*)>;

  /// True when any of the environment variables requests a dump.
  static bool enabled() {
    return std::getenv("TARR_TRACE_OUT") != nullptr ||
           std::getenv("TARR_TRACE_METRICS") != nullptr ||
           std::getenv("TARR_TRACE_TLOG") != nullptr;
  }

  /// Record one measured configuration.
  void note(Usec latency, std::string label, Rerun rerun) {
    if (!enabled()) return;
    if (!rerun_ || latency > latency_) {
      latency_ = latency;
      label_ = std::move(label);
      rerun_ = std::move(rerun);
    }
  }

  /// Re-run the slowest configuration under a Tracer and write the
  /// requested artifacts.  Returns true when something was written.
  bool dump() const {
    if (!rerun_) return false;
    trace::Tracer tracer;
    tlog::TlogSink* tsink = nullptr;
    std::optional<tlog::TlogSink> tlog_sink;
    if (const char* path = std::getenv("TARR_TRACE_TLOG")) {
      tlog_sink.emplace(path);
      tsink = &*tlog_sink;
    }
    trace::TeeSink tee(&tracer, tsink);
    const Usec t = rerun_(&tee);
    if (tlog_sink) {
      tlog_sink->finish();
      std::fprintf(stderr, "tlog   : slowest config \"%s\" -> %s (%llu bytes)\n",
                   label_.c_str(), tlog_sink->path().c_str(),
                   static_cast<unsigned long long>(tlog_sink->totals().bytes));
    }
    if (const char* path = std::getenv("TARR_TRACE_OUT")) {
      tracer.write_timeline(path);
      std::fprintf(stderr, "trace  : slowest config \"%s\" (%.1f us) -> %s\n",
                   label_.c_str(), t, path);
    }
    if (const char* path = std::getenv("TARR_TRACE_METRICS")) {
      tracer.write_metrics(path);
      std::fprintf(stderr, "metrics: slowest config \"%s\" -> %s\n",
                   label_.c_str(), path);
    }
    return true;
  }

 private:
  Usec latency_ = 0.0;
  std::string label_;
  Rerun rerun_;
};

}  // namespace tarr::bench
