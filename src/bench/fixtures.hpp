#pragma once

#include "core/topoallgather.hpp"
#include "simmpi/layout.hpp"

/// \file fixtures.hpp
/// Shared setup for the figure-reproduction benchmarks: the paper-scale
/// machine (GPC fat-tree, 512 nodes x 8 cores = 4096 processes for the
/// micro-benchmarks; 128 nodes = 1024 processes for the application runs)
/// and helpers to build communicators and topology-aware allgather paths.

namespace tarr::bench {

/// The paper's micro-benchmark scale.
inline constexpr int kPaperNodes = 512;
inline constexpr int kPaperProcs = 4096;

/// The paper's application scale (Figs 5-6 use 1024 processes).
inline constexpr int kAppNodes = 128;
inline constexpr int kAppProcs = 1024;

/// A machine plus its reorder framework.
struct BenchWorld {
  topology::Machine machine;
  core::ReorderFramework framework;

  explicit BenchWorld(int nodes)
      : machine(topology::Machine::gpc(nodes)), framework(machine) {}

  simmpi::Communicator comm(int p, const simmpi::LayoutSpec& spec) {
    return simmpi::Communicator(machine, simmpi::make_layout(machine, p, spec));
  }

  core::TopoAllgather path(int p, const simmpi::LayoutSpec& spec,
                           const core::TopoAllgatherConfig& cfg) {
    return core::TopoAllgather(framework, comm(p, spec), cfg);
  }
};

}  // namespace tarr::bench
