#pragma once

#include <string>
#include <vector>

/// \file csv.hpp
/// Minimal CSV writer so the figure harnesses can emit machine-readable
/// series next to their text tables (for plotting the reproduced figures).

namespace tarr::bench {

/// Accumulates rows and writes RFC-4180-style CSV (quotes fields that need
/// them, doubles embedded quotes).
class CsvWriter {
 public:
  /// Header row (written first).
  void set_header(std::vector<std::string> header);

  /// Append a data row; it may be shorter than the header.
  void add_row(std::vector<std::string> row);

  /// Serialize to a string.
  std::string to_string() const;

  /// Write to a file; throws tarr::Error on I/O failure.
  void write(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  static std::string escape(const std::string& field);
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tarr::bench
