#pragma once

#include <vector>

#include "common/types.hpp"

/// \file sweep.hpp
/// OSU-micro-benchmark-style parameter sweeps shared by the figure
/// harnesses.

namespace tarr::bench {

/// Power-of-two message sizes from `min` to `max` inclusive (the paper
/// sweeps 1 B .. 256 KB at 4096 processes, bounded by per-node memory).
std::vector<Bytes> osu_message_sizes(Bytes min = 1, Bytes max = 256 * 1024);

/// Percentage improvement of `variant` over `baseline` (positive = faster),
/// as plotted in Figs 3-4.
double improvement_percent(double baseline, double variant);

}  // namespace tarr::bench
