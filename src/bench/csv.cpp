#include "bench/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace tarr::bench {

void CsvWriter::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void CsvWriter::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string CsvWriter::escape(const std::string& field) {
  // RFC 4180: a field containing a comma, quote, LF, or CR must be quoted
  // (CR included — a bare \r would silently corrupt the row structure for
  // readers that accept CRLF line endings).
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void CsvWriter::write(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  TARR_REQUIRE(out.good(), "CsvWriter::write: cannot open " + path);
  out << to_string();
  TARR_REQUIRE(out.good(), "CsvWriter::write: write failed for " + path);
}

}  // namespace tarr::bench
