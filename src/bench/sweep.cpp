#include "bench/sweep.hpp"

#include "common/error.hpp"

namespace tarr::bench {

std::vector<Bytes> osu_message_sizes(Bytes min, Bytes max) {
  TARR_REQUIRE(min >= 1 && min <= max, "osu_message_sizes: bad range");
  std::vector<Bytes> sizes;
  for (Bytes b = min; b <= max; b *= 2) sizes.push_back(b);
  return sizes;
}

double improvement_percent(double baseline, double variant) {
  TARR_REQUIRE(baseline > 0.0, "improvement_percent: non-positive baseline");
  return 100.0 * (baseline - variant) / baseline;
}

}  // namespace tarr::bench
