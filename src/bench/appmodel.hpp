#pragma once

#include <string>
#include <vector>

#include "core/topoallgather.hpp"

/// \file appmodel.hpp
/// Application model for the Fig 5/6 experiments.
///
/// The paper evaluates a real application that makes 3 058+ calls to
/// MPI_Allgather at 1024 processes (its name is garbled in the available
/// text) and reports execution time normalized to the default MVAPICH
/// configuration, averaged over 30 runs.  For this purpose an application
/// *is* its Allgather call trace plus the compute time between calls, so the
/// model executes exactly that: a documented trace of (message size, call
/// count) pairs interleaved with a fixed compute budget.

namespace tarr::bench {

/// One entry of the Allgather call mix.
struct AppTraceEntry {
  Bytes msg = 0;
  int calls = 0;
};

/// The default trace: 3 058 Allgather calls spread over sizes that exercise
/// both the recursive-doubling and the ring regime of the selector.
std::vector<AppTraceEntry> default_app_trace();

/// Load a trace from a text file: one "<msg_bytes> <calls>" pair per line;
/// blank lines and lines starting with '#' are ignored.  Lets the Fig 5/6
/// harnesses replay a profile captured from a real application.  Throws
/// tarr::Error on I/O or format problems.
std::vector<AppTraceEntry> load_app_trace(const std::string& path);

/// Total number of calls in a trace.
int trace_calls(const std::vector<AppTraceEntry>& trace);

/// Simulated time spent inside Allgather over the whole trace (latencies
/// are evaluated once per distinct size — the collective's cost does not
/// change between calls).
Usec app_collective_time(core::TopoAllgather& path,
                         const std::vector<AppTraceEntry>& trace);

}  // namespace tarr::bench
