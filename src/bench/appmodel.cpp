#include "bench/appmodel.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace tarr::bench {

std::vector<AppTraceEntry> default_app_trace() {
  // 3 058 calls total; the mix covers both selector regimes, weighted
  // toward the small/medium sizes an iterative solver exchanges most often.
  return {
      {1 * 1024, 1223},    // 40% at 1 KB   (recursive-doubling regime)
      {8 * 1024, 918},     // 30% at 8 KB   (recursive-doubling regime)
      {64 * 1024, 611},    // 20% at 64 KB  (ring regime)
      {256 * 1024, 306},   // 10% at 256 KB (ring regime)
  };
}

std::vector<AppTraceEntry> load_app_trace(const std::string& path) {
  std::ifstream in(path);
  TARR_REQUIRE(in.good(), "load_app_trace: cannot open " + path);
  std::vector<AppTraceEntry> trace;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream is(line);
    AppTraceEntry e;
    is >> e.msg >> e.calls;
    TARR_REQUIRE(!is.fail() && e.msg >= 1 && e.calls >= 1,
                 "load_app_trace: bad line " + std::to_string(lineno) +
                     " in " + path);
    trace.push_back(e);
  }
  TARR_REQUIRE(!trace.empty(), "load_app_trace: empty trace in " + path);
  return trace;
}

int trace_calls(const std::vector<AppTraceEntry>& trace) {
  int total = 0;
  for (const auto& e : trace) total += e.calls;
  return total;
}

Usec app_collective_time(core::TopoAllgather& path,
                         const std::vector<AppTraceEntry>& trace) {
  Usec total = 0.0;
  for (const auto& e : trace)
    total += path.latency(e.msg) * static_cast<double>(e.calls);
  return total;
}

}  // namespace tarr::bench
