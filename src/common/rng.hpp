#pragma once

#include <cstdint>

/// \file rng.hpp
/// Small deterministic RNG (xoshiro256**) used wherever the paper calls for a
/// random choice (Algorithm 1 step 5 breaks distance ties randomly).  We do
/// not use std::mt19937 so that results are bit-identical across standard
/// library implementations, which keeps the test suite and the benchmark
/// tables reproducible.

namespace tarr {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
/// seeded via splitmix64 so that any 64-bit seed yields a good state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialize the full state from a single 64-bit seed.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

 private:
  std::uint64_t s_[4];
};

/// Derive an independent, deterministic seed from a parent seed and two
/// coordinates (splitmix64-style finalizer).  This is how nested loops —
/// campaign trials, probe samples, controller epochs — obtain per-iteration
/// streams that neither overlap nor depend on iteration order.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b);

}  // namespace tarr
