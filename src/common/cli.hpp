#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

/// \file cli.hpp
/// Shared argument-parsing helpers for the tarr-* CLIs.
///
/// Every CLI follows the same contract: an unknown flag, a missing value,
/// or a malformed/out-of-range numeric prints the tool's usage text and
/// exits 2.  These helpers centralize the strict numeric parsing (full
/// token consumed, errno checked, range enforced) that tarr-probe and
/// fault_campaign used to hand-roll, so every tool rejects `--nodes 8x`
/// or `--noise nan` the same way.
///
/// Parse failures throw cli::UsageError; each CLI's main() catches it,
/// prints the message followed by its usage text to stderr, and exits 2.

namespace tarr::cli {

/// A command-line error that must surface as usage text + exit code 2.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

/// Strict base-10 integer parse of a whole token: the full string must be
/// consumed, errno must stay clear, and the value must land in [lo, hi].
long long parse_int(const std::string& opt, const char* s, long long lo,
                    long long hi);

/// Strict double parse (full token, errno, no NaN) clamped to [lo, hi].
double parse_double(const std::string& opt, const char* s, double lo,
                    double hi);

/// Non-negative integer parse widened to the unsigned 64-bit seed space.
std::uint64_t parse_seed(const std::string& opt, const char* s);

}  // namespace tarr::cli
