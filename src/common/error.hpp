#pragma once

#include <stdexcept>
#include <string>

/// \file error.hpp
/// Error handling: all precondition violations throw tarr::Error so tests can
/// assert on them and callers never observe silently-corrupt state.

namespace tarr {

/// Exception thrown on any contract violation inside the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* cond, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace tarr

/// Precondition / invariant check that is always on (cheap checks only on hot
/// paths; heavyweight validation belongs behind TARR_CHECK_SLOW).
#define TARR_REQUIRE(cond, msg)                                      \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::tarr::detail::throw_error(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                \
  } while (0)
