#pragma once

#include <stdexcept>
#include <string>

/// \file error.hpp
/// Error handling: all precondition violations throw tarr::Error so tests can
/// assert on them and callers never observe silently-corrupt state.

namespace tarr {

/// Exception thrown on any contract violation inside the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* cond, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace tarr

/// True when the heavyweight verification tier (CMake option
/// TARR_SLOW_CHECKS=ON) is compiled in.  Code that wires verifiers into hot
/// paths can branch on this constant so the disabled tier costs nothing.
namespace tarr {
#if defined(TARR_SLOW_CHECKS)
inline constexpr bool kSlowChecksEnabled = true;
#else
inline constexpr bool kSlowChecksEnabled = false;
#endif
}  // namespace tarr

/// Precondition / invariant check that is always on (cheap checks only on hot
/// paths; heavyweight validation belongs behind TARR_CHECK_SLOW).
#define TARR_REQUIRE(cond, msg)                                      \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::tarr::detail::throw_error(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                \
  } while (0)

/// Heavyweight invariant check: identical to TARR_REQUIRE when the build has
/// TARR_SLOW_CHECKS=ON, compiled out entirely (condition not evaluated)
/// otherwise.  Use for O(p^2)-style validation on paths where an always-on
/// check would distort the timings the benchmarks measure.
#if defined(TARR_SLOW_CHECKS)
#define TARR_CHECK_SLOW(cond, msg) TARR_REQUIRE(cond, msg)
#else
#define TARR_CHECK_SLOW(cond, msg) \
  do {                             \
    (void)sizeof((cond));          \
    (void)sizeof((msg));           \
  } while (0)
#endif
