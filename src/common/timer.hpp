#pragma once

#include <chrono>

/// \file timer.hpp
/// Wall-clock timer for the overhead experiments (paper Fig 7 measures the
/// real cost of distance extraction and of each mapping algorithm).

namespace tarr {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last reset().
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tarr
