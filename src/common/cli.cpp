#include "common/cli.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace tarr::cli {

namespace {

/// strto* skip leading whitespace, which would quietly accept " 1" against
/// the full-token contract; reject it up front.
bool leading_space(const char* s) {
  return std::isspace(static_cast<unsigned char>(s[0])) != 0;
}

}  // namespace

long long parse_int(const std::string& opt, const char* s, long long lo,
                    long long hi) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (leading_space(s) || errno != 0 || end == s || *end != '\0')
    throw UsageError(opt + ": '" + s + "' is not an integer");
  if (v < lo || v > hi)
    throw UsageError(opt + ": " + s + " is out of range [" +
                     std::to_string(lo) + ", " + std::to_string(hi) + "]");
  return v;
}

double parse_double(const std::string& opt, const char* s, double lo,
                    double hi) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (leading_space(s) || errno != 0 || end == s || *end != '\0' ||
      std::isnan(v))
    throw UsageError(opt + ": '" + s + "' is not a number");
  if (v < lo || v > hi)
    throw UsageError(opt + ": " + s + " is out of range");
  return v;
}

std::uint64_t parse_seed(const std::string& opt, const char* s) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (leading_space(s) || errno != 0 || end == s || *end != '\0' || *s == '-')
    throw UsageError(opt + ": '" + s + "' is not a non-negative integer");
  return static_cast<std::uint64_t>(v);
}

}  // namespace tarr::cli
