#pragma once

#include <vector>

#include "common/types.hpp"

/// \file permutation.hpp
/// Helpers for the rank permutations produced by the mapping layer.  Every
/// reorder in this library is represented as a vector `perm` with
/// `perm[i] = j` meaning "element i moves to position j"; these helpers
/// validate and manipulate that representation.

namespace tarr {

/// True iff v is a permutation of {0, .., v.size()-1}.
bool is_permutation_of_iota(const std::vector<int>& v);

/// Inverse permutation: result[perm[i]] = i.  Throws if perm is invalid.
std::vector<int> invert_permutation(const std::vector<int>& perm);

/// Composition (a after b): result[i] = a[b[i]].  Sizes must match.
std::vector<int> compose_permutations(const std::vector<int>& a,
                                      const std::vector<int>& b);

/// The identity permutation of length n.
std::vector<int> identity_permutation(int n);

}  // namespace tarr
