#include "common/error.hpp"

#include <sstream>

namespace tarr::detail {

void throw_error(const char* cond, const char* file, int line,
                 const std::string& msg) {
  std::ostringstream os;
  os << "tarr: requirement failed: (" << cond << ") at " << file << ":" << line
     << ": " << msg;
  throw Error(os.str());
}

}  // namespace tarr::detail
