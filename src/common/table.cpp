#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace tarr {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == 'E' || c == '%' ||
          c == 'K' || c == 'M' || c == 'G')) {
      return false;
    }
  }
  return true;
}

}  // namespace

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TextTable::bytes(long long b) {
  if (b >= (1 << 30) && b % (1 << 30) == 0)
    return std::to_string(b >> 30) + "G";
  if (b >= (1 << 20) && b % (1 << 20) == 0)
    return std::to_string(b >> 20) + "M";
  if (b >= (1 << 10) && b % (1 << 10) == 0)
    return std::to_string(b >> 10) + "K";
  return std::to_string(b);
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      const std::size_t pad = widths[i] - cell.size();
      if (looks_numeric(cell)) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell << std::string(pad, ' ');
      }
      os << (i + 1 < widths.size() ? "  " : "");
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w;
    total += 2 * (widths.empty() ? 0 : widths.size() - 1);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace tarr
