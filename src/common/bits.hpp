#pragma once

#include <bit>
#include <cstdint>

#include "common/error.hpp"

/// \file bits.hpp
/// Bit helpers used by the power-of-two collective algorithms (recursive
/// doubling, binomial trees) and by the mapping heuristics that mirror them.

namespace tarr {

/// True iff x is a power of two (x > 0).
constexpr bool is_pow2(std::int64_t x) {
  return x > 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)) for x >= 1.
inline int floor_log2(std::int64_t x) {
  TARR_REQUIRE(x >= 1, "floor_log2: x must be >= 1");
  return 63 - std::countl_zero(static_cast<std::uint64_t>(x));
}

/// ceil(log2(x)) for x >= 1.
inline int ceil_log2(std::int64_t x) {
  TARR_REQUIRE(x >= 1, "ceil_log2: x must be >= 1");
  return is_pow2(x) ? floor_log2(x) : floor_log2(x) + 1;
}

/// Largest power of two <= x (x >= 1).
inline std::int64_t floor_pow2(std::int64_t x) {
  return std::int64_t{1} << floor_log2(x);
}

/// Smallest power of two >= x (x >= 1).
inline std::int64_t ceil_pow2(std::int64_t x) {
  return std::int64_t{1} << ceil_log2(x);
}

}  // namespace tarr
