#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

/// \file stats.hpp
/// Streaming statistics accumulator for benchmark repetitions (the paper
/// reports averages over 30 application runs; the harness mirrors that).

namespace tarr {

/// Welford-style streaming accumulator: mean/variance/min/max in one pass.
class StatAccumulator {
 public:
  /// Fold one sample into the accumulator.
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Fold another accumulator in, as if its samples had been add()ed here
  /// (Chan et al.'s parallel Welford combine).  Commutative up to floating-
  /// point rounding; merging an empty accumulator (either side) is exact,
  /// and self-merge doubles every sample.
  void merge(const StatAccumulator& other) {
    // Copy first: `other` may alias *this (self-merge).
    const std::int64_t on = other.n_;
    const double omean = other.mean_;
    const double om2 = other.m2_;
    const double omin = other.min_;
    const double omax = other.max_;
    if (on == 0) return;
    if (n_ == 0) {
      n_ = on;
      mean_ = omean;
      m2_ = om2;
      min_ = omin;
      max_ = omax;
      return;
    }
    const double total = static_cast<double>(n_ + on);
    const double delta = omean - mean_;
    mean_ += delta * static_cast<double>(on) / total;
    m2_ += om2 + delta * delta *
                     (static_cast<double>(n_) * static_cast<double>(on)) /
                     total;
    n_ += on;
    if (omin < min_) min_ = omin;
    if (omax > max_) max_ = omax;
  }

  std::int64_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace tarr
