#pragma once

#include <string>
#include <vector>

/// \file table.hpp
/// Plain-text table renderer used by every benchmark binary to print the
/// rows/series that correspond to the paper's figures.

namespace tarr {

/// A simple column-aligned text table.  Cells are strings; numeric helpers
/// format with fixed precision.  The renderer right-aligns numeric-looking
/// cells and left-aligns everything else.
class TextTable {
 public:
  /// Set the header row (clears any previous header).
  void set_header(std::vector<std::string> header);

  /// Append a data row; it may have fewer cells than the header.
  void add_row(std::vector<std::string> row);

  /// Format a double with the given number of decimals.
  static std::string num(double v, int decimals = 2);

  /// Format a byte count as "1", "512", "1K", "256K", ...
  static std::string bytes(long long b);

  /// Render the table to a string (trailing newline included).
  std::string render() const;

  /// Number of data rows currently in the table.
  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tarr
