#pragma once

#include <cstdint>
#include <cstddef>

/// \file types.hpp
/// Fundamental identifier and size types shared by every tarr module.
///
/// All identifiers are dense zero-based indices.  Distinct aliases are used
/// for documentation value; they are intentionally *not* strong types so that
/// numeric code (distance matrices, schedules) stays idiomatic.

namespace tarr {

/// Rank of a process within a communicator (0 .. size-1).
using Rank = int;

/// Global index of a physical core within a Machine (0 .. total_cores-1).
using CoreId = int;

/// Index of a compute node within a Machine (0 .. num_nodes-1).
using NodeId = int;

/// Index of a socket within a node (0 .. sockets_per_node-1).
using SocketId = int;

/// Vertex id of a switch or host endpoint in the network switch graph.
using NetVertexId = int;

/// Directed edge (link) id in the network switch graph.
using LinkId = int;

/// Message/payload size in bytes.
using Bytes = std::int64_t;

/// Simulated time in microseconds.
using Usec = double;

/// Sentinel for "no core assigned" in mapping arrays.
inline constexpr CoreId kNoCore = -1;

/// Sentinel for "no rank".
inline constexpr Rank kNoRank = -1;

}  // namespace tarr
