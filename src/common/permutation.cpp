#include "common/permutation.hpp"

#include <numeric>

#include "common/error.hpp"

namespace tarr {

bool is_permutation_of_iota(const std::vector<int>& v) {
  std::vector<char> seen(v.size(), 0);
  for (int x : v) {
    if (x < 0 || static_cast<std::size_t>(x) >= v.size()) return false;
    if (seen[x]) return false;
    seen[x] = 1;
  }
  return true;
}

std::vector<int> invert_permutation(const std::vector<int>& perm) {
  TARR_REQUIRE(is_permutation_of_iota(perm),
               "invert_permutation: input is not a permutation");
  std::vector<int> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    inv[perm[i]] = static_cast<int>(i);
  return inv;
}

std::vector<int> compose_permutations(const std::vector<int>& a,
                                      const std::vector<int>& b) {
  TARR_REQUIRE(a.size() == b.size(),
               "compose_permutations: size mismatch");
  std::vector<int> r(a.size());
  for (std::size_t i = 0; i < b.size(); ++i) r[i] = a[b[i]];
  return r;
}

std::vector<int> identity_permutation(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

}  // namespace tarr
