#include "common/rng.hpp"

#include "common/error.hpp"

namespace tarr {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  TARR_REQUIRE(bound > 0, "next_below: bound must be positive");
  // Lemire-style rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (a + 1) +
                    0xbf58476d1ce4e5b9ull * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace tarr
