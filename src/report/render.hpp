#pragma once

#include <string>

#include "report/diff.hpp"
#include "report/snapshot.hpp"

/// \file render.hpp
/// Human-facing rendering of tarr::report analyses.  Two targets:
///   * text — column-aligned tables for terminals (TextTable);
///   * markdown — pipe tables for CI job summaries and docs.
/// Rendering is presentation only; every number comes from critical_path /
/// diff / snapshot verbatim, so tests assert on those modules and the
/// renderers stay change-friendly.

namespace tarr::report {

enum class RenderFormat { Text, Markdown };

/// Critical-path report: per-segment chain (capped at `max_segments` rows,
/// with an elision note), nature totals, per-channel attribution.
std::string render_critical_path(const CriticalPath& path,
                                 RenderFormat format = RenderFormat::Text,
                                 int max_segments = 40);

/// Mapping-attribution diff report: totals, per-channel migration,
/// relieved / newly loaded resources.
std::string render_diff(const MappingDiff& diff,
                        RenderFormat format = RenderFormat::Text);

/// Snapshot-set comparison report; regressions are marked.
std::string render_comparison(const std::vector<SnapshotComparison>& results,
                              const CompareOptions& opts,
                              RenderFormat format = RenderFormat::Text);

}  // namespace tarr::report
