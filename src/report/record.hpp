#pragma once

#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "trace/sink.hpp"

/// \file record.hpp
/// ScheduleRecorder: a TraceSink that keeps the *structure* of one engine
/// run — every stage with its transfers, every out-of-stage time increment,
/// phases and aggregate resource loads — so tarr::report can analyze it
/// after the fact (critical path, mapping-attribution diffs).
///
/// Where the Tracer flattens events into a human-facing timeline, the
/// recorder preserves the accounting identity of the engine: summing stage
/// durations and time events in arrival order reproduces Engine::total()
/// bit-exactly (same additions in the same order).  Everything downstream
/// in tarr::report leans on that exactness.

namespace tarr::report {

/// One logical transfer of a recorded stage (local copies included).
struct RecordedTransfer {
  int stage = 0;
  Rank src = 0, dst = 0;
  CoreId src_core = 0, dst_core = 0;
  Bytes bytes = 0;
  trace::Channel channel = trace::Channel::Network;
  double contention = 1.0;
  int attempts = 1;
  Usec duration = 0.0;     ///< priced cost within the stage
  Usec uncontended = 0.0;  ///< cost at contention factor 1.0
};

/// One block-granular copy of a recorded stage, exactly as submitted to
/// Engine::copy/combine (the trace::CopyEvent view).  This is the
/// dataflow-faithful IR tarr::analyze interprets: unlike RecordedTransfer,
/// local copies appear individually and block offsets are preserved.
struct RecordedCopy {
  int stage = 0;
  Rank src = 0, dst = 0;
  int src_off = 0, dst_off = 0;
  int nblocks = 0;
  Bytes bytes = 0;
  bool combining = false;
};

/// One directed resource load of a recorded stage (the stage-start counter
/// samples, in emission order: cable links first, then QPI, each in the
/// cost model's first-touch order).
struct RecordedLoad {
  bool qpi = false;  ///< false: cable link (id = LinkId); true: QPI (NodeId)
  int id = 0;
  int dir = 0;
  double bytes = 0.0;
};

/// One stage event — either a real stage (repeats == 1) or a
/// repeat-compressed block (repeats > 1) referencing the transfers of the
/// stage it repeats.
struct RecordedStage {
  int stage = 0;
  int repeats = 1;
  Usec start = 0.0;
  Usec duration = 0.0;    ///< total across repeats
  Usec retry_wait = 0.0;  ///< per-execution drop-detection wait
  int first_transfer = 0; ///< index into ScheduleRecord::transfers
  int num_transfers = 0;
  int first_copy = 0;     ///< index into ScheduleRecord::copies
  int num_copies = 0;
  int first_load = 0;     ///< index into ScheduleRecord::loads
  int num_loads = 0;
};

/// Simulated time added outside any stage (local shuffles, compute).
struct RecordedExtra {
  std::string what;
  Usec start = 0.0;
  Usec duration = 0.0;
  /// For a "local-shuffle" extra: the §V-B block permutation every rank
  /// applied (block b moved to slot dst_of_block[b]).  Empty otherwise.
  std::vector<int> dst_of_block;
};

/// The recorded run.  `events` interleaves stages and extras in arrival
/// order: kind == Stage indexes `stages`, kind == Extra indexes `extras`.
struct ScheduleRecord {
  struct EventRef {
    enum class Kind { Stage, Extra };
    Kind kind = Kind::Stage;
    int index = 0;
  };

  std::vector<RecordedTransfer> transfers;
  std::vector<RecordedCopy> copies;
  std::vector<RecordedLoad> loads;
  std::vector<RecordedStage> stages;
  std::vector<RecordedExtra> extras;
  std::vector<EventRef> events;
  std::vector<trace::PhaseEvent> phases;

  /// Aggregate directed resource loads over the whole run: (id, dir) ->
  /// total bytes, from the engine's per-stage counter samples.
  std::map<std::pair<int, int>, double> link_bytes;
  std::map<std::pair<int, int>, double> qpi_bytes;

  /// Engine::total() as reconstructed from the event stream (bit-exact,
  /// see file comment).
  Usec total = 0.0;

  bool empty() const { return events.empty(); }

  /// Slice accessors resolving a stage's index ranges (repeat-compressed
  /// entries share the slices of the stage they repeat).
  std::span<const RecordedTransfer> transfers_of(const RecordedStage& s) const {
    return {transfers.data() + s.first_transfer,
            static_cast<std::size_t>(s.num_transfers)};
  }
  std::span<const RecordedCopy> copies_of(const RecordedStage& s) const {
    return {copies.data() + s.first_copy,
            static_cast<std::size_t>(s.num_copies)};
  }
  std::span<const RecordedLoad> loads_of(const RecordedStage& s) const {
    return {loads.data() + s.first_load,
            static_cast<std::size_t>(s.num_loads)};
  }

  /// Innermost recorded phase containing simulated time `t`, or "" if none.
  std::string phase_at(Usec t) const;
};

/// See file comment.  Attach to an Engine (set_trace_sink) — on its own or
/// behind a trace::TeeSink next to a Tracer — run the collective, then take
/// the record.  The recorder tolerates multiple runs into one record; the
/// accounting identity then matches the sum of the runs' totals.
class ScheduleRecorder final : public trace::TraceSink {
 public:
  void on_stage(const trace::StageEvent& e) override;
  void on_transfer(const trace::TransferEvent& e) override;
  void on_copy(const trace::CopyEvent& e) override;
  void on_permute(const trace::PermuteEvent& e) override;
  void on_phase(const trace::PhaseEvent& e) override;
  void on_counter(const trace::CounterSample& s) override;
  void on_time(const trace::TimeEvent& e) override;

  const ScheduleRecord& record() const { return record_; }
  ScheduleRecord take() { return std::move(record_); }

 private:
  struct Sample {
    bool qpi = false;
    std::pair<int, int> key;
    double value = 0.0;
  };

  ScheduleRecord record_;
  /// Transfers/copies of the stage currently being emitted (they arrive
  /// before their StageEvent).
  std::vector<RecordedTransfer> pending_;
  std::vector<RecordedCopy> pending_copies_;
  /// Permutation of the "local-shuffle" TimeEvent about to arrive (the
  /// engine emits the PermuteEvent immediately before it).
  std::vector<int> pending_permute_;
  /// Resource-load samples since the last stage event, and those of the
  /// stage most recently closed (replayed by repeat compression).
  std::vector<Sample> pending_samples_;
  std::vector<Sample> last_samples_;
  /// Engine stage index -> index into record_.stages of its repeats == 1
  /// entry (so repeat-compressed events can share the transfer slice).
  std::map<int, int> stage_entry_;
};

}  // namespace tarr::report
