#include "report/diff.hpp"

#include <algorithm>
#include <cmath>

namespace tarr::report {

std::string ResourceDelta::label() const {
  if (qpi)
    return "qpi node " + std::to_string(id) + " dir " + std::to_string(dir);
  return "cable " + std::to_string(id) + " dir " + std::to_string(dir);
}

namespace {

/// Merge the (id, dir) -> bytes maps of the two runs into per-resource
/// deltas (resources absent from a run contribute zero).
void collect_resources(const std::map<std::pair<int, int>, double>& a,
                       const std::map<std::pair<int, int>, double>& b,
                       bool qpi, std::vector<ResourceDelta>& out) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() || ib != b.end()) {
    ResourceDelta d;
    d.qpi = qpi;
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      d.id = ia->first.first;
      d.dir = ia->first.second;
      d.bytes_a = ia->second;
      ++ia;
    } else if (ia == a.end() || ib->first < ia->first) {
      d.id = ib->first.first;
      d.dir = ib->first.second;
      d.bytes_b = ib->second;
      ++ib;
    } else {
      d.id = ia->first.first;
      d.dir = ia->first.second;
      d.bytes_a = ia->second;
      d.bytes_b = ib->second;
      ++ia;
      ++ib;
    }
    if (d.delta() != 0.0) out.push_back(d);
  }
}

}  // namespace

MappingDiff diff_runs(const ScheduleRecord& a, const ScheduleRecord& b,
                      const topology::Machine& machine, int top_k) {
  MappingDiff diff;
  diff.path_a = analyze_critical_path(a, machine);
  diff.path_b = analyze_critical_path(b, machine);
  diff.total_a = diff.path_a.total;
  diff.total_b = diff.path_b.total;
  diff.improvement_percent =
      diff.total_a != 0.0
          ? (diff.total_a - diff.total_b) / diff.total_a * 100.0
          : 0.0;

  const auto flows_a = channel_flows(a, machine);
  const auto flows_b = channel_flows(b, machine);
  for (const auto& [ch, f] : flows_a) diff.channels[ch].a = f;
  for (const auto& [ch, f] : flows_b) diff.channels[ch].b = f;

  std::vector<ResourceDelta> deltas;
  collect_resources(a.link_bytes, b.link_bytes, /*qpi=*/false, deltas);
  collect_resources(a.qpi_bytes, b.qpi_bytes, /*qpi=*/true, deltas);
  // Deterministic ordering: magnitude first, then the (qpi, id, dir)
  // identity as a tie-break so equal-magnitude resources list stably.
  std::sort(deltas.begin(), deltas.end(),
            [](const ResourceDelta& x, const ResourceDelta& y) {
              if (x.delta() != y.delta()) return x.delta() < y.delta();
              if (x.qpi != y.qpi) return !x.qpi;
              if (x.id != y.id) return x.id < y.id;
              return x.dir < y.dir;
            });
  for (const auto& d : deltas) {
    if (d.delta() < 0.0 &&
        static_cast<int>(diff.relieved.size()) < top_k)
      diff.relieved.push_back(d);
  }
  for (auto it = deltas.rbegin(); it != deltas.rend(); ++it) {
    if (it->delta() > 0.0 &&
        static_cast<int>(diff.newly_loaded.size()) < top_k)
      diff.newly_loaded.push_back(*it);
  }
  return diff;
}

}  // namespace tarr::report
