#include "report/snapshot.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/error.hpp"

namespace tarr::report {

namespace {

/// Same deterministic number formatting the Tracer uses: exact integers
/// bare, everything else %.17g (round-trips doubles), so re-emitted
/// snapshots are byte-stable.
std::string fmt(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader: just enough for schema v1 (objects, arrays, strings,
// numbers, booleans, null), with position-tagged errors.  No dependency on
// anything outside the standard library.

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error("snapshot JSON: " + why + " at offset " +
                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue value() {
    const char c = peek();
    switch (c) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolean = c == 't';
        literal(c == 't' ? "true" : "false");
        return v;
      }
      case 'n':
        literal("null");
        return JsonValue{};
      default:
        return number();
    }
  }

  void literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p)
        fail(std::string("bad literal, expected ") + lit);
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    if (consume('}')) return v;
    while (true) {
      std::string key = (peek(), string());
      expect(':');
      v.object.emplace_back(std::move(key), value());
      if (consume('}')) return v;
      expect(',');
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    if (consume(']')) return v;
    while (true) {
      v.array.push_back(value());
      if (consume(']')) return v;
      expect(',');
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Snapshots only ever escape control characters; anything in the
          // Latin-1 range round-trips, the rest is replaced.
          out += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + tok + "'");
    JsonValue out;
    out.kind = JsonValue::Kind::Number;
    out.number = v;
    return out;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double require_number(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.get(key);
  if (v == nullptr || v->kind != JsonValue::Kind::Number)
    throw Error(std::string("snapshot JSON: missing number field '") + key +
                "'");
  return v->number;
}

std::string require_string(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.get(key);
  if (v == nullptr || v->kind != JsonValue::Kind::String)
    throw Error(std::string("snapshot JSON: missing string field '") + key +
                "'");
  return v->string;
}

bool bool_or(const JsonValue& obj, const char* key, bool fallback) {
  const JsonValue* v = obj.get(key);
  if (v == nullptr) return fallback;
  if (v->kind != JsonValue::Kind::Bool)
    throw Error(std::string("snapshot JSON: field '") + key +
                "' is not a boolean");
  return v->boolean;
}

}  // namespace

const BenchMetric* BenchSnapshot::find(const std::string& name) const {
  for (const auto& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

std::string BenchSnapshot::json() const {
  std::string out = "{\n";
  out += "  \"schema\": " + std::to_string(schema) + ",\n";
  out += "  \"bench\": \"" + escape(bench) + "\",\n";
  out += "  \"config\": \"" + escape(config) + "\",\n";
  out += "  \"meta\": {";
  bool first = true;
  for (const auto& [k, v] : meta) {
    out += first ? "\n" : ",\n";
    out += "    \"" + escape(k) + "\": \"" + escape(v) + "\"";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"metrics\": [";
  first = true;
  for (const auto& m : metrics) {
    out += first ? "\n" : ",\n";
    out += "    {\"name\": \"" + escape(m.name) + "\", \"value\": " +
           fmt(m.value) + ", \"unit\": \"" + escape(m.unit) +
           "\", \"higher_is_better\": " +
           (m.higher_is_better ? "true" : "false") +
           ", \"gate\": " + (m.gate ? "true" : "false") + "}";
    first = false;
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

void BenchSnapshot::write(const std::string& path) const {
  const std::string body = json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw Error("snapshot: cannot write " + path);
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = n == body.size() && std::fclose(f) == 0;
  if (!ok) throw Error("snapshot: short write to " + path);
}

BenchSnapshot parse_snapshot(const std::string& text) {
  const JsonValue root = JsonParser(text).parse();
  if (root.kind != JsonValue::Kind::Object)
    throw Error("snapshot JSON: top level is not an object");
  BenchSnapshot s;
  s.schema = static_cast<int>(require_number(root, "schema"));
  if (s.schema != kSnapshotSchema)
    throw Error("snapshot JSON: unsupported schema version " +
                std::to_string(s.schema));
  s.bench = require_string(root, "bench");
  s.config = require_string(root, "config");
  if (const JsonValue* meta = root.get("meta"); meta != nullptr) {
    if (meta->kind != JsonValue::Kind::Object)
      throw Error("snapshot JSON: 'meta' is not an object");
    for (const auto& [k, v] : meta->object) {
      if (v.kind != JsonValue::Kind::String)
        throw Error("snapshot JSON: meta value for '" + k +
                    "' is not a string");
      s.meta[k] = v.string;
    }
  }
  const JsonValue* metrics = root.get("metrics");
  if (metrics == nullptr || metrics->kind != JsonValue::Kind::Array)
    throw Error("snapshot JSON: missing 'metrics' array");
  for (const JsonValue& m : metrics->array) {
    if (m.kind != JsonValue::Kind::Object)
      throw Error("snapshot JSON: metric entry is not an object");
    BenchMetric bm;
    bm.name = require_string(m, "name");
    bm.value = require_number(m, "value");
    bm.unit = require_string(m, "unit");
    bm.higher_is_better = bool_or(m, "higher_is_better", false);
    bm.gate = bool_or(m, "gate", true);
    s.metrics.push_back(std::move(bm));
  }
  return s;
}

BenchSnapshot load_snapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw Error("snapshot: cannot read " + path);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  try {
    return parse_snapshot(text);
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

std::vector<BenchSnapshot> load_snapshot_set(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<BenchSnapshot> out;
  if (fs::is_regular_file(dir)) {
    out.push_back(load_snapshot(dir));
    return out;
  }
  if (!fs::is_directory(dir))
    throw Error("snapshot set: no such file or directory: " + dir);
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 &&
        name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0)
      paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) out.push_back(load_snapshot(p));
  if (out.empty())
    throw Error("snapshot set: no BENCH_*.json files under " + dir);
  std::sort(out.begin(), out.end(),
            [](const BenchSnapshot& a, const BenchSnapshot& b) {
              return a.bench < b.bench;
            });
  return out;
}

bool glob_match(const std::string& pattern, const std::string& name) {
  // Iterative matcher with single-star backtracking: on mismatch after a
  // `*`, advance the name position the star absorbs and retry.  Linear in
  // practice for the BENCH_*.json shapes this is used on.
  std::size_t p = 0, n = 0;
  std::size_t star = std::string::npos, mark = 0;
  while (n < name.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = n;
    } else if (star != std::string::npos) {
      p = star + 1;
      n = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::vector<std::string> glob_paths(const std::string& pattern) {
  namespace fs = std::filesystem;
  if (pattern.find_first_of("*?") == std::string::npos) {
    if (!fs::exists(pattern))
      throw Error("glob: no such file or directory: " + pattern);
    return {pattern};
  }
  const std::size_t slash = pattern.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : pattern.substr(0, slash + 1);
  const std::string leaf =
      slash == std::string::npos ? pattern : pattern.substr(slash + 1);
  if (leaf.empty()) throw Error("glob: pattern ends in '/': " + pattern);
  if (dir.find_first_of("*?") != std::string::npos)
    throw Error("glob: wildcards are only supported in the final path "
                "component: " + pattern);
  if (!fs::is_directory(dir))
    throw Error("glob: no such directory: " + dir);
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(dir))
    if (glob_match(leaf, entry.path().filename().string()))
      out.push_back(entry.path().string());
  std::sort(out.begin(), out.end());
  if (out.empty()) throw Error("glob: nothing matches " + pattern);
  return out;
}

std::vector<BenchSnapshot> load_snapshot_set_glob(const std::string& pattern) {
  if (pattern.find_first_of("*?") == std::string::npos)
    return load_snapshot_set(pattern);
  std::vector<BenchSnapshot> out;
  for (const std::string& path : glob_paths(pattern)) {
    // A matched directory contributes its whole set, a matched file just
    // itself — so `baselines/smoke*` and `baselines/BENCH_fig?_*.json`
    // both do the obvious thing.
    auto part = load_snapshot_set(path);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::sort(out.begin(), out.end(),
            [](const BenchSnapshot& a, const BenchSnapshot& b) {
              return a.bench < b.bench;
            });
  return out;
}

bool SnapshotComparison::regressed() const {
  if (missing) return true;
  return std::any_of(metrics.begin(), metrics.end(),
                     [](const MetricComparison& m) { return m.regressed; });
}

SnapshotComparison compare_snapshots(const BenchSnapshot& baseline,
                                     const BenchSnapshot& current,
                                     const CompareOptions& opts) {
  SnapshotComparison out;
  out.bench = baseline.bench;
  for (const auto& base : baseline.metrics) {
    MetricComparison mc;
    mc.name = base.name;
    mc.unit = base.unit;
    mc.gated = base.gate;
    mc.baseline = base.value;
    const BenchMetric* cur = current.find(base.name);
    if (cur == nullptr) {
      // A gated metric vanishing is itself a regression: the gate must not
      // silently narrow because a bench stopped reporting a number.
      mc.missing = true;
      mc.regressed = base.gate;
      out.metrics.push_back(std::move(mc));
      continue;
    }
    mc.current = cur->value;
    mc.change_percent = base.value != 0.0
                            ? (cur->value - base.value) / base.value * 100.0
                            : 0.0;
    const double tol = std::max(opts.abs_tolerance,
                                opts.rel_tolerance / 100.0 *
                                    std::fabs(base.value));
    const double delta = cur->value - base.value;  // + means grew
    const bool worse =
        base.higher_is_better ? delta < -tol : delta > tol;
    const bool better =
        base.higher_is_better ? delta > tol : delta < -tol;
    mc.regressed = base.gate && worse;
    mc.improved = better;
    out.metrics.push_back(std::move(mc));
  }
  return out;
}

std::vector<SnapshotComparison> compare_snapshot_sets(
    const std::vector<BenchSnapshot>& baseline,
    const std::vector<BenchSnapshot>& current, const CompareOptions& opts) {
  std::vector<SnapshotComparison> results;
  for (const auto& base : baseline) {
    const auto it = std::find_if(current.begin(), current.end(),
                                 [&](const BenchSnapshot& c) {
                                   return c.bench == base.bench;
                                 });
    if (it == current.end()) {
      SnapshotComparison miss;
      miss.bench = base.bench;
      miss.missing = true;
      results.push_back(std::move(miss));
    } else {
      results.push_back(compare_snapshots(base, *it, opts));
    }
  }
  return results;
}

bool any_regressed(const std::vector<SnapshotComparison>& results) {
  return std::any_of(results.begin(), results.end(),
                     [](const SnapshotComparison& r) { return r.regressed(); });
}

}  // namespace tarr::report
