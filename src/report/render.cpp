#include "report/render.hpp"

#include <algorithm>

#include "common/table.hpp"

namespace tarr::report {

namespace {

/// Render rows either through TextTable or as a markdown pipe table with
/// identical cell contents, so the two formats never drift.
std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows,
                         RenderFormat format) {
  if (format == RenderFormat::Text) {
    TextTable t;
    t.set_header(header);
    for (const auto& r : rows) t.add_row(r);
    return t.render();
  }
  std::string out = "|";
  for (const auto& h : header) out += " " + h + " |";
  out += "\n|";
  for (std::size_t i = 0; i < header.size(); ++i) out += " --- |";
  out += "\n";
  for (const auto& r : rows) {
    out += "|";
    for (std::size_t i = 0; i < header.size(); ++i)
      out += " " + (i < r.size() ? r[i] : std::string()) + " |";
    out += "\n";
  }
  return out;
}

std::string heading(const std::string& title, RenderFormat format) {
  if (format == RenderFormat::Markdown) return "\n### " + title + "\n\n";
  return "\n== " + title + " ==\n";
}

std::string pct(double num, double denom) {
  return denom != 0.0 ? TextTable::num(num / denom * 100.0, 1) + "%" : "-";
}

std::string signed_num(double v, int decimals = 1) {
  return (v > 0.0 ? "+" : "") + TextTable::num(v, decimals);
}

std::string flow_bytes(double b) {
  return TextTable::bytes(static_cast<long long>(b));
}

}  // namespace

std::string render_critical_path(const CriticalPath& path,
                                 RenderFormat format, int max_segments) {
  std::string out;
  out += heading("critical path", format);
  out += "total " + TextTable::num(path.total, 3) + " us over " +
         std::to_string(path.segments.size()) + " segments: " +
         TextTable::num(path.serialization, 3) + " us serialization (" +
         pct(path.serialization, path.total) + "), " +
         TextTable::num(path.contention, 3) + " us contention stall (" +
         pct(path.contention, path.total) + "), " +
         TextTable::num(path.retransmission, 3) + " us retransmission (" +
         pct(path.retransmission, path.total) + ")\n";

  out += heading("by channel class", format);
  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& [ch, attr] : path.by_channel) {
      rows.push_back({to_string(ch), std::to_string(attr.segments),
                      TextTable::num(attr.time, 3),
                      pct(attr.time, path.total), flow_bytes(attr.bytes)});
    }
    out += render_table({"channel", "segments", "time us", "share",
                         "crit bytes"},
                        rows, format);
  }

  out += heading("segments", format);
  {
    std::vector<std::vector<std::string>> rows;
    const int n = static_cast<int>(path.segments.size());
    const int shown = std::min(n, max_segments);
    for (int i = 0; i < shown; ++i) {
      const PathSegment& s = path.segments[i];
      rows.push_back(
          {s.stage >= 0 ? std::to_string(s.stage) : "-",
           s.repeats > 1 ? "x" + std::to_string(s.repeats) : "",
           to_string(s.channel), s.what, s.phase,
           s.bytes > 0 ? flow_bytes(s.bytes) : "",
           TextTable::num(s.duration, 3), TextTable::num(s.contention, 3),
           TextTable::num(s.retransmission, 3)});
    }
    out += render_table({"stage", "rep", "channel", "critical element",
                         "phase", "bytes", "dur us", "stall us", "retx us"},
                        rows, format);
    if (shown < n)
      out += "(" + std::to_string(n - shown) + " more segments elided)\n";
  }
  return out;
}

std::string render_diff(const MappingDiff& diff, RenderFormat format) {
  std::string out;
  out += heading("mapping-attribution diff", format);
  out += "baseline " + TextTable::num(diff.total_a, 3) + " us -> candidate " +
         TextTable::num(diff.total_b, 3) + " us (" +
         signed_num(-diff.improvement_percent) + "% time, " +
         TextTable::num(diff.improvement_percent, 1) + "% improvement)\n";
  out += "critical-path nature (baseline -> candidate): serialization " +
         TextTable::num(diff.path_a.serialization, 3) + " -> " +
         TextTable::num(diff.path_b.serialization, 3) + " us, contention " +
         TextTable::num(diff.path_a.contention, 3) + " -> " +
         TextTable::num(diff.path_b.contention, 3) + " us, retransmission " +
         TextTable::num(diff.path_a.retransmission, 3) + " -> " +
         TextTable::num(diff.path_b.retransmission, 3) + " us\n";

  out += heading("channel migration", format);
  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& [ch, d] : diff.channels) {
      rows.push_back({to_string(ch), flow_bytes(d.a.bytes),
                      flow_bytes(d.b.bytes),
                      signed_num(d.bytes_delta() / 1024.0, 1) + "K",
                      TextTable::num(d.a.transfer_time, 1),
                      TextTable::num(d.b.transfer_time, 1),
                      signed_num(d.time_delta(), 1)});
    }
    out += render_table({"channel", "bytes A", "bytes B", "delta",
                         "time A us", "time B us", "delta us"},
                        rows, format);
  }

  const auto resource_rows =
      [](const std::vector<ResourceDelta>& list) {
        std::vector<std::vector<std::string>> rows;
        for (const auto& r : list)
          rows.push_back({r.label(), flow_bytes(r.bytes_a),
                          flow_bytes(r.bytes_b),
                          signed_num(r.delta() / 1024.0, 1) + "K"});
        return rows;
      };
  if (!diff.relieved.empty()) {
    out += heading("top relieved resources", format);
    out += render_table({"resource", "bytes A", "bytes B", "delta"},
                        resource_rows(diff.relieved), format);
  }
  if (!diff.newly_loaded.empty()) {
    out += heading("top newly loaded resources", format);
    out += render_table({"resource", "bytes A", "bytes B", "delta"},
                        resource_rows(diff.newly_loaded), format);
  }
  return out;
}

std::string render_comparison(const std::vector<SnapshotComparison>& results,
                              const CompareOptions& opts,
                              RenderFormat format) {
  std::string out;
  out += heading("snapshot comparison", format);
  out += "tolerance: " + TextTable::num(opts.rel_tolerance, 2) +
         "% relative, " + TextTable::num(opts.abs_tolerance, 3) +
         " absolute\n";
  int regressions = 0;
  for (const auto& r : results) {
    out += heading("bench " + r.bench, format);
    if (r.missing) {
      out += "MISSING: bench present in baseline but not in current run\n";
      ++regressions;
      continue;
    }
    std::vector<std::vector<std::string>> rows;
    for (const auto& m : r.metrics) {
      std::string verdict;
      if (m.missing)
        verdict = m.gated ? "MISSING (regression)" : "missing";
      else if (m.regressed)
        verdict = "REGRESSED";
      else if (m.improved)
        verdict = "improved";
      else
        verdict = "ok";
      if (m.regressed) ++regressions;
      rows.push_back({m.name, m.unit, TextTable::num(m.baseline, 4),
                      m.missing ? "-" : TextTable::num(m.current, 4),
                      m.missing ? "-" : signed_num(m.change_percent) + "%",
                      m.gated ? "yes" : "no", verdict});
    }
    out += render_table({"metric", "unit", "baseline", "current", "change",
                         "gated", "verdict"},
                        rows, format);
  }
  out += "\n";
  out += regressions == 0
             ? "PASS: no gated metric regressed\n"
             : "FAIL: " + std::to_string(regressions) +
                   " regression(s) beyond tolerance\n";
  return out;
}

}  // namespace tarr::report
