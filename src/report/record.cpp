#include "report/record.hpp"

namespace tarr::report {

std::string ScheduleRecord::phase_at(Usec t) const {
  // Innermost = the shortest phase whose [start, start+duration] interval
  // contains t (phases nest, so the shortest containing one is innermost).
  const trace::PhaseEvent* best = nullptr;
  for (const auto& p : phases) {
    if (t < p.start || t > p.start + p.duration) continue;
    if (best == nullptr || p.duration < best->duration) best = &p;
  }
  return best == nullptr ? std::string() : best->name;
}

void ScheduleRecorder::on_transfer(const trace::TransferEvent& e) {
  pending_.push_back(RecordedTransfer{e.stage, e.src_rank, e.dst_rank,
                                      e.src_core, e.dst_core, e.bytes,
                                      e.channel, e.contention, e.attempts,
                                      e.duration, e.uncontended});
}

void ScheduleRecorder::on_copy(const trace::CopyEvent& e) {
  pending_copies_.push_back(RecordedCopy{e.stage, e.src, e.dst, e.src_off,
                                         e.dst_off, e.nblocks, e.bytes,
                                         e.combining});
}

void ScheduleRecorder::on_permute(const trace::PermuteEvent& e) {
  pending_permute_ = e.dst_of_block;
}

void ScheduleRecorder::on_stage(const trace::StageEvent& e) {
  RecordedStage s;
  s.stage = e.stage;
  s.repeats = e.repeats;
  s.start = e.start;
  s.duration = e.duration;
  s.retry_wait = e.retry_wait;
  if (e.repeats == 1) {
    // A real stage: adopt the transfers/copies that arrived since the last
    // stage event (the engine emits them before the stage itself), and the
    // stage-start counter samples as the per-stage load slice.
    s.first_transfer = static_cast<int>(record_.transfers.size());
    s.num_transfers = static_cast<int>(pending_.size());
    record_.transfers.insert(record_.transfers.end(), pending_.begin(),
                             pending_.end());
    pending_.clear();
    s.first_copy = static_cast<int>(record_.copies.size());
    s.num_copies = static_cast<int>(pending_copies_.size());
    record_.copies.insert(record_.copies.end(), pending_copies_.begin(),
                          pending_copies_.end());
    pending_copies_.clear();
    s.first_load = static_cast<int>(record_.loads.size());
    s.num_loads = static_cast<int>(pending_samples_.size());
    for (const Sample& sample : pending_samples_)
      record_.loads.push_back(RecordedLoad{sample.qpi, sample.key.first,
                                           sample.key.second, sample.value});
    stage_entry_[e.stage] =
        static_cast<int>(record_.stages.size());
    last_samples_ = std::move(pending_samples_);
    pending_samples_.clear();
  } else {
    // Repeat compression re-executes the stage just ended: share its
    // transfer/copy/load slices (the repeat event itself carries none) and
    // replay its resource loads once per extra execution.
    const auto it = stage_entry_.find(e.stage);
    if (it != stage_entry_.end()) {
      const RecordedStage& orig = record_.stages[it->second];
      s.first_transfer = orig.first_transfer;
      s.num_transfers = orig.num_transfers;
      s.first_copy = orig.first_copy;
      s.num_copies = orig.num_copies;
      s.first_load = orig.first_load;
      s.num_loads = orig.num_loads;
    }
    for (const auto& sample : last_samples_) {
      auto& map = sample.qpi ? record_.qpi_bytes : record_.link_bytes;
      map[sample.key] += sample.value * static_cast<double>(e.repeats);
    }
  }
  record_.events.push_back(
      {ScheduleRecord::EventRef::Kind::Stage,
       static_cast<int>(record_.stages.size())});
  record_.stages.push_back(std::move(s));
  record_.total += e.duration;
}

void ScheduleRecorder::on_phase(const trace::PhaseEvent& e) {
  record_.phases.push_back(e);
}

void ScheduleRecorder::on_counter(const trace::CounterSample& s) {
  if (s.value <= 0.0) return;  // end-of-stage zero samples carry no load
  const bool qpi = s.kind == trace::CounterSample::Kind::Qpi;
  auto& map = qpi ? record_.qpi_bytes : record_.link_bytes;
  map[{s.id, s.dir}] += s.value;
  pending_samples_.push_back(Sample{qpi, {s.id, s.dir}, s.value});
}

void ScheduleRecorder::on_time(const trace::TimeEvent& e) {
  record_.events.push_back(
      {ScheduleRecord::EventRef::Kind::Extra,
       static_cast<int>(record_.extras.size())});
  record_.extras.push_back(
      RecordedExtra{e.what, e.start, e.duration, std::move(pending_permute_)});
  pending_permute_.clear();
  record_.total += e.duration;
}

}  // namespace tarr::report
