#pragma once

#include <map>
#include <string>
#include <vector>

#include "report/record.hpp"
#include "topology/machine.hpp"

/// \file critical_path.hpp
/// Critical-path extraction over a recorded engine run.
///
/// The engine is stage-synchronous: the run's completion time is the sum of
/// its stage costs plus the time added outside stages.  Each stage costs
/// what its slowest element costs (plus the transient-fault retry wait), so
/// the completion-time-determining chain is exactly one element per stage —
/// the critical transfer (or aggregated local copy) — followed by the
/// out-of-stage increments.  This module extracts that chain and attributes
/// every segment to
///   * a channel class — intra-socket, QPI (cross-socket), intra-leaf
///     network (host-leaf-host), cross-core-switch network, local memory,
///     other (compute / one-time overheads); the network split is the
///     paper's Fig 3-4 distinction between relieved leaf uplinks and
///     core-switch traversals;
///   * a cost nature — serialization (the uncontended alpha+bytes floor),
///     contention stall (inflation from resource sharing), retransmission
///     overhead (drop-detection timeouts plus retry-inflated stalls).
///
/// Invariant: segment durations sum bit-exactly to the recorded total
/// (tests assert ==, not near): segments adopt the recorded stage/extra
/// durations unchanged and are summed in event order, replaying the exact
/// double additions the engine performed.

namespace tarr::report {

/// Channel taxonomy of critical-path attribution (finer than
/// trace::Channel: the network class is split by whether the route leaves
/// the leaf switch).
enum class PathChannel {
  IntraSocket,  ///< same-socket / same-complex shared memory
  Qpi,          ///< cross-socket (QPI) within a node
  IntraLeaf,    ///< network, host-leaf-host (2 hops)
  CrossCore,    ///< network crossing line/spine (core) switches
  Local,        ///< same-rank memory copies, §V-B shuffles
  Other,        ///< out-of-stage time with no channel (compute, overheads)
};

const char* to_string(PathChannel c);

/// One link of the completion-time-determining chain.
struct PathSegment {
  int stage = -1;    ///< engine stage index, -1 for out-of-stage segments
  int repeats = 1;   ///< executions covered (repeat compression)
  PathChannel channel = PathChannel::Other;
  std::string what;   ///< "r3 -> r17", "local copy r4", extra label
  std::string phase;  ///< innermost enclosing collective phase, "" if none
  Rank src = kNoRank, dst = kNoRank;
  Bytes bytes = 0;       ///< bytes of the critical element (one execution)
  int attempts = 1;      ///< transfer attempts of the critical element
  int stage_transfers = 0;  ///< concurrent transfers in the stage
  Usec start = 0.0;
  Usec duration = 0.0;       ///< contribution to completion time (exact)
  Usec serialization = 0.0;  ///< uncontended floor of the critical element
  Usec contention = 0.0;     ///< sharing-induced stall
  Usec retransmission = 0.0; ///< retry waits + retry-inflated stall
};

/// Per-channel-class attribution totals.
struct ChannelAttribution {
  Usec time = 0.0;    ///< critical-path time on this class
  int segments = 0;   ///< path segments on this class
  double bytes = 0.0; ///< critical-element bytes moved on this class
};

/// The extracted chain plus its aggregations.
struct CriticalPath {
  std::vector<PathSegment> segments;  ///< event order
  Usec total = 0.0;  ///< sum of segment durations (== engine total, exact)
  Usec serialization = 0.0;
  Usec contention = 0.0;
  Usec retransmission = 0.0;
  std::map<PathChannel, ChannelAttribution> by_channel;
};

/// Classify one recorded transfer into the path taxonomy.  Network
/// transfers are split by the routed hop count between the endpoint nodes:
/// a 2-hop route never leaves the leaf switch; anything longer traverses
/// core (line/spine) switches.
PathChannel classify_channel(const topology::Machine& m,
                             const RecordedTransfer& t);

/// Extract the critical path of `record` over `machine` (the machine the
/// run's communicator lived on; a degraded machine works — only routes the
/// schedule actually used are queried).
CriticalPath analyze_critical_path(const ScheduleRecord& record,
                                   const topology::Machine& machine);

/// Per-channel totals over *all* transfers of the run (not only critical
/// ones), weighted by stage repeats: the byte-flow picture the
/// mapping-attribution diff migrates between classes.
struct ChannelFlow {
  long long transfers = 0;  ///< logical transfers (repeats counted)
  double bytes = 0.0;       ///< logical bytes (retries not double-counted)
  Usec transfer_time = 0.0; ///< summed priced transfer costs
};
std::map<PathChannel, ChannelFlow> channel_flows(
    const ScheduleRecord& record, const topology::Machine& machine);

}  // namespace tarr::report
