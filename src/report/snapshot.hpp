#pragma once

#include <map>
#include <string>
#include <vector>

/// \file snapshot.hpp
/// Bench snapshots and the perf-regression gate.
///
/// A figure/ablation binary run with TARR_BENCH_SNAPSHOT_DIR set emits one
/// `BENCH_<name>.json` per bench: a schema-versioned record of the bench's
/// configuration plus its headline metrics (simulated completion costs,
/// percentage improvements, wall time).  `tarr-report compare` then diffs a
/// current snapshot set against a committed baseline set with per-metric
/// tolerances and exits nonzero on regression — the repo's first perf gate.
///
/// Schema v1:
/// ```json
/// {
///   "schema": 1,
///   "bench": "fig3_nonhier",
///   "config": "smoke",
///   "meta": {"nodes": "16", ...},
///   "metrics": [
///     {"name": "...", "value": 1.5, "unit": "us",
///      "higher_is_better": false, "gate": true}, ...
///   ]
/// }
/// ```
/// Wall-time metrics carry `"gate": false` — they are recorded for trend
/// inspection but never fail the gate (CI machines are noisy).
///
/// Everything here is dependency-free: the parser is a minimal
/// recursive-descent JSON reader (objects/arrays/strings/numbers/bools),
/// and the writer is deterministic (fixed key order, locale-independent
/// number formatting) so regenerated snapshots diff cleanly.

namespace tarr::report {

inline constexpr int kSnapshotSchema = 1;

/// One gated (or trend-only) measurement of a bench run.
struct BenchMetric {
  std::string name;
  double value = 0.0;
  std::string unit;               ///< "us", "percent", "seconds", ...
  bool higher_is_better = false;  ///< improvement direction
  bool gate = true;               ///< false: recorded but never gates
};

/// One bench's snapshot (see file comment for the serialized schema).
struct BenchSnapshot {
  int schema = kSnapshotSchema;
  std::string bench;   ///< bench name, also the BENCH_<name>.json stem
  std::string config;  ///< "smoke" or "full"
  std::map<std::string, std::string> meta;  ///< free-form scale description
  std::vector<BenchMetric> metrics;

  const BenchMetric* find(const std::string& name) const;

  /// Deterministic serialization (schema v1).
  std::string json() const;

  /// Write json() to `path`; throws tarr::Error on I/O failure.
  void write(const std::string& path) const;
};

/// Parse one snapshot from JSON text; throws tarr::Error on malformed input
/// or an unsupported schema version.
BenchSnapshot parse_snapshot(const std::string& text);

/// Read and parse `path`; throws tarr::Error on I/O or parse failure.
BenchSnapshot load_snapshot(const std::string& path);

/// Load every `BENCH_*.json` under `dir` (or the single file if `dir` is a
/// file), sorted by bench name.  Throws tarr::Error if nothing is found.
std::vector<BenchSnapshot> load_snapshot_set(const std::string& dir);

/// True when `name` matches `pattern`, where `*` matches any run of
/// characters (including none) and `?` matches exactly one.  No character
/// classes, no escaping — this is the subset CI invocations need, kept
/// dependency-free (POSIX glob(3) is absent on some toolchains we target).
bool glob_match(const std::string& pattern, const std::string& name);

/// Expand a glob over snapshot files: the directory part of `pattern` is
/// taken literally, only the final path component globs (no `**`
/// recursion).  Returns matching regular files sorted by path; a pattern
/// without wildcards returns itself when it names an existing file or
/// directory.  Throws tarr::Error when nothing matches.
std::vector<std::string> glob_paths(const std::string& pattern);

/// Load a snapshot set selected by `pattern`: without wildcards this is
/// exactly load_snapshot_set(pattern); with them, every matching file is
/// parsed (a matching directory contributes its whole BENCH_*.json set),
/// sorted by bench name.  Throws tarr::Error when nothing matches.
std::vector<BenchSnapshot> load_snapshot_set_glob(const std::string& pattern);

/// Gate tolerances.  A gated metric regresses when it is worse than the
/// baseline by more than max(abs_tolerance, rel_tolerance% of |baseline|)
/// in its improvement direction.
struct CompareOptions {
  double rel_tolerance = 2.0;  ///< percent of the baseline value
  double abs_tolerance = 0.0;  ///< same unit as the metric
};

/// Verdict for one metric of one bench.
struct MetricComparison {
  std::string name;
  std::string unit;
  bool gated = true;
  double baseline = 0.0;
  double current = 0.0;
  double change_percent = 0.0;  ///< signed, relative to baseline
  bool regressed = false;       ///< beyond tolerance in the worse direction
  bool improved = false;        ///< beyond tolerance in the better direction
  bool missing = false;         ///< gated metric absent from current run
};

/// Verdict for one bench (metrics matched by name).
struct SnapshotComparison {
  std::string bench;
  std::vector<MetricComparison> metrics;
  bool missing = false;  ///< baseline bench absent from the current set
  bool regressed() const;
};

SnapshotComparison compare_snapshots(const BenchSnapshot& baseline,
                                     const BenchSnapshot& current,
                                     const CompareOptions& opts);

/// Compare two sets matched by bench name.  A baseline bench missing from
/// `current` is a regression; extra current benches are ignored (they gate
/// once committed to the baseline).
std::vector<SnapshotComparison> compare_snapshot_sets(
    const std::vector<BenchSnapshot>& baseline,
    const std::vector<BenchSnapshot>& current, const CompareOptions& opts);

bool any_regressed(const std::vector<SnapshotComparison>& results);

}  // namespace tarr::report
