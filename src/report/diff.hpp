#pragma once

#include <map>
#include <string>
#include <vector>

#include "report/critical_path.hpp"
#include "report/record.hpp"
#include "topology/machine.hpp"

/// \file diff.hpp
/// Mapping-attribution diff: given two recorded runs of the *same*
/// communication pattern — typically the trivial (baseline) mapping vs. a
/// topology-aware reordering such as RDMH — explain *where* the improvement
/// came from.  Three views:
///   1. completion time and the critical-path nature totals, side by side;
///   2. per-channel-class migration: how many bytes (and how much priced
///      transfer time) moved between intra-socket / QPI / intra-leaf /
///      cross-core-switch / local channels;
///   3. the top-K relieved physical resources — directed cables and QPI
///      directions whose aggregate load dropped the most — plus the top-K
///      newly loaded ones, from the engine's per-stage load counters.
/// This is the paper's Fig 3-6 narrative ("the reordering converts
/// cross-core-switch traffic into intra-leaf and shared-memory traffic")
/// made mechanical.

namespace tarr::report {

/// Byte/time movement on one channel class between run A and run B.
struct ChannelDelta {
  ChannelFlow a;  ///< run A totals (baseline)
  ChannelFlow b;  ///< run B totals (candidate)
  double bytes_delta() const { return b.bytes - a.bytes; }
  Usec time_delta() const { return b.transfer_time - a.transfer_time; }
};

/// One physical resource whose aggregate byte load changed.
struct ResourceDelta {
  bool qpi = false;  ///< false: directed cable, true: node QPI direction
  int id = 0;        ///< cable id / node id
  int dir = 0;
  double bytes_a = 0.0;
  double bytes_b = 0.0;
  double delta() const { return bytes_b - bytes_a; }
  std::string label() const;
};

/// The full diff of two runs (see file comment).
struct MappingDiff {
  Usec total_a = 0.0, total_b = 0.0;
  /// (a - b) / a * 100: positive means run B is faster.
  double improvement_percent = 0.0;
  CriticalPath path_a, path_b;
  std::map<PathChannel, ChannelDelta> channels;
  std::vector<ResourceDelta> relieved;      ///< largest load drops first
  std::vector<ResourceDelta> newly_loaded;  ///< largest load gains first
};

/// Diff run `a` (baseline) against run `b` (candidate) over `machine`.
/// `top_k` bounds both resource lists.
MappingDiff diff_runs(const ScheduleRecord& a, const ScheduleRecord& b,
                      const topology::Machine& machine, int top_k = 8);

}  // namespace tarr::report
