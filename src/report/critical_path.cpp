#include "report/critical_path.hpp"

#include <algorithm>

namespace tarr::report {

const char* to_string(PathChannel c) {
  switch (c) {
    case PathChannel::IntraSocket:
      return "intra-socket";
    case PathChannel::Qpi:
      return "qpi";
    case PathChannel::IntraLeaf:
      return "intra-leaf";
    case PathChannel::CrossCore:
      return "cross-core";
    case PathChannel::Local:
      return "local";
    case PathChannel::Other:
      return "other";
  }
  return "?";
}

PathChannel classify_channel(const topology::Machine& m,
                             const RecordedTransfer& t) {
  switch (t.channel) {
    case trace::Channel::SameComplex:
    case trace::Channel::SameSocket:
      return PathChannel::IntraSocket;
    case trace::Channel::CrossSocket:
      return PathChannel::Qpi;
    case trace::Channel::Local:
      return PathChannel::Local;
    case trace::Channel::Network: {
      const int hops = m.network_hops_between_cores(t.src_core, t.dst_core);
      return hops <= 2 ? PathChannel::IntraLeaf : PathChannel::CrossCore;
    }
  }
  return PathChannel::Other;
}

namespace {

/// The completion-time-determining transfer of a stage: max priced cost,
/// first on ties (a deterministic choice; ties are common in symmetric
/// schedules and any tied element is equally critical).
const RecordedTransfer* critical_transfer(const ScheduleRecord& rec,
                                          const RecordedStage& s) {
  const RecordedTransfer* best = nullptr;
  for (int i = 0; i < s.num_transfers; ++i) {
    const RecordedTransfer& t = rec.transfers[s.first_transfer + i];
    if (best == nullptr || t.duration > best->duration) best = &t;
  }
  return best;
}

/// Split a stage segment's exact duration into serialization / contention /
/// retransmission.  The parts are clamped so they always sum to exactly
/// `duration` even when per-execution quantities were rounded through the
/// repeat-compressed aggregate:
///   wait     = per-execution drop-detection timeout, a retry artifact;
///   serial   = the critical element's uncontended floor;
///   residual = whatever the stage cost beyond those — sharing stall when
///              the element went through first try, retry-inflated stall
///              otherwise.
void split_costs(PathSegment& seg, Usec retry_wait) {
  const double reps = static_cast<double>(seg.repeats);
  Usec wait = std::min(retry_wait * reps, seg.duration);
  Usec serial =
      std::min(seg.serialization * reps, seg.duration - wait);
  const Usec residual = seg.duration - wait - serial;
  seg.serialization = serial;
  if (seg.attempts > 1) {
    seg.retransmission = wait + residual;
    seg.contention = 0.0;
  } else {
    seg.retransmission = wait;
    seg.contention = residual;
  }
}

}  // namespace

CriticalPath analyze_critical_path(const ScheduleRecord& record,
                                   const topology::Machine& machine) {
  CriticalPath path;
  path.segments.reserve(record.events.size());
  for (const auto& ev : record.events) {
    PathSegment seg;
    if (ev.kind == ScheduleRecord::EventRef::Kind::Stage) {
      const RecordedStage& s = record.stages[ev.index];
      seg.stage = s.stage;
      seg.repeats = s.repeats;
      seg.start = s.start;
      seg.duration = s.duration;
      seg.stage_transfers = s.num_transfers;
      const RecordedTransfer* crit = critical_transfer(record, s);
      if (crit != nullptr) {
        seg.channel = classify_channel(machine, *crit);
        seg.src = crit->src;
        seg.dst = crit->dst;
        seg.bytes = crit->bytes;
        seg.attempts = crit->attempts;
        seg.serialization = crit->uncontended;  // per-exec; split below
        seg.what = crit->channel == trace::Channel::Local
                       ? "local copy r" + std::to_string(crit->src)
                       : "r" + std::to_string(crit->src) + " -> r" +
                             std::to_string(crit->dst);
      } else {
        seg.what = "(empty stage)";
        seg.serialization = 0.0;
      }
      split_costs(seg, s.retry_wait);
    } else {
      const RecordedExtra& x = record.extras[ev.index];
      seg.start = x.start;
      seg.duration = x.duration;
      seg.what = x.what;
      // Out-of-stage time is uncontended by construction; §V-B local
      // shuffles move bytes through node memory, everything else (compute,
      // one-time overheads) has no channel.
      seg.channel = x.what == "local-shuffle" ? PathChannel::Local
                                              : PathChannel::Other;
      seg.serialization = seg.duration;
    }
    seg.phase = record.phase_at(seg.start);

    // Accumulate in event order: the total replays the engine's own
    // sequence of double additions, so it is bit-exact.
    path.total += seg.duration;
    path.serialization += seg.serialization;
    path.contention += seg.contention;
    path.retransmission += seg.retransmission;
    auto& ch = path.by_channel[seg.channel];
    ch.time += seg.duration;
    ch.segments += 1;
    ch.bytes += static_cast<double>(seg.bytes) * seg.repeats;
    path.segments.push_back(std::move(seg));
  }
  return path;
}

std::map<PathChannel, ChannelFlow> channel_flows(
    const ScheduleRecord& record, const topology::Machine& machine) {
  std::map<PathChannel, ChannelFlow> flows;
  for (const auto& ev : record.events) {
    if (ev.kind != ScheduleRecord::EventRef::Kind::Stage) continue;
    const RecordedStage& s = record.stages[ev.index];
    const double reps = static_cast<double>(s.repeats);
    for (int i = 0; i < s.num_transfers; ++i) {
      const RecordedTransfer& t = record.transfers[s.first_transfer + i];
      auto& f = flows[classify_channel(machine, t)];
      f.transfers += s.repeats;
      f.bytes += static_cast<double>(t.bytes) * reps;
      f.transfer_time += t.duration * reps;
    }
  }
  return flows;
}

}  // namespace tarr::report
