#pragma once

#include <string>
#include <vector>

#include "analyze/contract.hpp"
#include "report/record.hpp"
#include "topology/machine.hpp"

/// \file analyzer.hpp
/// The static schedule certifier of tarr::analyze.
///
/// Input: a recorded schedule (report::ScheduleRecord — the IR
/// ScheduleRecorder rebuilds from the engine's trace stream) plus the
/// collective's Contract.  Output: a Certificate — either a clean bill
/// ("this schedule provably computes the contract on this machine") or a
/// list of structured, human-readable counterexamples.  Nothing is
/// executed: every property below is proved by walking the IR.
///
/// Properties checked, in pass order:
///  * Structure         — the record is shaped like the contract says
///                        (ranks/blocks in range, dataflow-faithful);
///  * StageOrder        — stage indices are consecutive and the recorded
///                        start times replay the engine's clock bit-exactly;
///                        with the stage-synchronous execution model this
///                        is the deadlock-freedom obligation: a schedule
///                        can only deadlock by reading data a later stage
///                        delivers, which the dataflow pass flags as an
///                        uninitialized read;
///  * SelfTransfer      — no transfer is priced to its own rank and no copy
///                        targets its own source slot;
///  * ByteConservation  — every copy's bytes equal nblocks x block size,
///                        and per stage the multiset of submitted remote
///                        copies matches the multiset of priced transfers
///                        (send/recv matching: nothing sent unpriced,
///                        nothing priced unsent, no bytes lost in flight);
///  * WriteConflict     — no block is plain-written twice, or written and
///                        combined, in one stage (stage semantics make the
///                        result order-dependent);
///  * UninitializedRead — no copy reads a block no seed or earlier write
///                        defined;
///  * ContractViolation — after abstract interpretation, every constrained
///                        (rank, block) holds exactly its required origin
///                        set;
///  * CapacityHazard    — (warning) a stage's static directed cable/QPI
///                        load exceeds the configured bound;
///  * CounterMismatch   — the statically recomputed per-stage resource
///                        loads differ from the counters the engine traced
///                        (the static model and the dynamic cost model
///                        disagree — one of them is wrong).

namespace tarr::analyze {

enum class Property {
  Structure,
  StageOrder,
  SelfTransfer,
  ByteConservation,
  WriteConflict,
  UninitializedRead,
  ContractViolation,
  CapacityHazard,
  CounterMismatch,
};

const char* to_string(Property p);

enum class Severity { Error, Warning };

/// One counterexample.  `message` is deterministic byte-for-byte across
/// runs on the same record (no pointers, no iteration-order dependence,
/// locale-independent formatting) — tests diff it verbatim.
struct Finding {
  Property property = Property::Structure;
  Severity severity = Severity::Error;
  int stage = -1;  ///< engine stage index, or -1 if not stage-specific
  std::string message;
};

struct AnalyzeOptions {
  /// Prove dataflow (UninitializedRead/WriteConflict/ContractViolation).
  /// Requires a dataflow-faithful record: one recorded per executed stage,
  /// no repeat compression (run the engine in Data mode to get one).
  bool check_dataflow = true;

  /// Statically recompute per-stage resource loads and cross-check them
  /// against the recorded trace counters (skipped when the record carries
  /// no counters, e.g. contention modeling was off).
  bool check_capacity = true;

  /// Flag any stage whose static directed cable load exceeds this multiple
  /// of the link's capacity (CapacityHazard warning); <= 0 disables.
  double max_link_load = 0.0;

  /// Same bound for per-direction QPI byte loads, in absolute bytes
  /// (QPI capacity is a cost-model parameter, not a topology property);
  /// <= 0 disables.
  double max_qpi_bytes = 0.0;

  /// Cap on findings recorded per property (the rest are counted but not
  /// materialized, keeping certificates of badly broken schedules small).
  int max_findings_per_property = 16;
};

/// The analyzer's verdict.
struct Certificate {
  std::string schedule;  ///< Contract::name
  bool certified = false;  ///< true iff no Error-severity finding
  int stages_checked = 0;
  int copies_checked = 0;
  /// Pass order, then discovery order within a pass — deterministic.
  std::vector<Finding> findings;
  /// Findings suppressed by max_findings_per_property.
  int suppressed = 0;

  bool has(Property p) const;
  /// First Error-severity finding's property — the headline diagnosis
  /// (Structure if certified; callers check certified first).
  Property leading() const;
  /// Stable multi-line human-readable report.
  std::string format() const;
};

/// Statically certify `rec` against `contract` on machine `m`.  Never
/// executes the schedule; never throws on a bad schedule (bad *inputs* —
/// an ill-formed contract — still throw tarr::Error).
Certificate analyze(const report::ScheduleRecord& rec,
                    const topology::Machine& m, const Contract& contract,
                    const AnalyzeOptions& opts = {});

/// The static side of the counter cross-check, exposed for tests: replay
/// the cost model's load-attribution rule over one stage's priced
/// transfers (attempts included) and return the loads in the same order
/// the engine's counter stream records them (cable links first, then QPI,
/// each in first-touch order).  Bit-exact with respect to the dynamic
/// counters by construction.
std::vector<report::RecordedLoad> static_stage_loads(
    const report::ScheduleRecord& rec, const report::RecordedStage& stage,
    const topology::Machine& m);

}  // namespace tarr::analyze
