#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

/// \file contract.hpp
/// Collective contracts: the specification side of tarr::analyze.
///
/// A Contract states, independently of any schedule, what a collective must
/// compute: which (rank, block) slots start holding which *origin*
/// contributions, and which origin sets every slot must end up holding.  The
/// static analyzer (analyzer.hpp) abstract-interprets a recorded schedule
/// against this specification and proves — without executing the engine —
/// that every rank finishes with exactly the data the contract requires.
///
/// The abstraction mirrors the engine's Data mode exactly.  Data mode moves
/// 32-bit tags and reduces with XOR; the static analogue of an XOR of
/// distinct tags is the *set* of origins it combines, with duplicate
/// contributions cancelling (x ^ x == 0).  OriginSet below implements that
/// algebra: copy replaces a destination set, combine takes the symmetric
/// difference, and "never written" is a distinguished Unknown that poisons
/// whatever touches it.  Soundness note: the set abstraction is exact for
/// XOR over distinct seeds, so a schedule certified here computes the right
/// value for *any* choice of tag values, not just the ones a test happened
/// to seed.

namespace tarr::analyze {

/// Abstract value of one buffer block: Unknown (never seeded or written) or
/// the set of origin indices whose XOR the block holds.
class OriginSet {
 public:
  /// The bottom value: contents nobody ever defined.
  OriginSet() = default;

  static OriginSet empty_set(int universe) {
    OriginSet s;
    s.known_ = true;
    s.bits_.assign((static_cast<std::size_t>(universe) + 63) / 64, 0);
    return s;
  }

  static OriginSet single(int universe, int origin) {
    OriginSet s = empty_set(universe);
    s.toggle(origin);
    return s;
  }

  bool known() const { return known_; }

  bool contains(int origin) const {
    if (!known_) return false;
    const auto w = static_cast<std::size_t>(origin) / 64;
    if (w >= bits_.size()) return false;
    return (bits_[w] >> (origin % 64)) & 1u;
  }

  /// Symmetric difference with {origin} — one XOR'd-in contribution.
  void toggle(int origin) {
    TARR_REQUIRE(known_, "OriginSet::toggle on Unknown");
    const auto w = static_cast<std::size_t>(origin) / 64;
    TARR_REQUIRE(w < bits_.size(), "OriginSet::toggle: origin out of range");
    bits_[w] ^= std::uint64_t{1} << (origin % 64);
  }

  /// Combine semantics (reduction write): symmetric difference.  Unknown on
  /// either side poisons the result — reducing undefined data is undefined.
  void combine_with(const OriginSet& o) {
    if (!known_ || !o.known_) {
      known_ = false;
      bits_.clear();
      return;
    }
    for (std::size_t w = 0; w < bits_.size(); ++w) bits_[w] ^= o.bits_[w];
  }

  bool operator==(const OriginSet& o) const {
    return known_ == o.known_ && bits_ == o.bits_;
  }
  bool operator!=(const OriginSet& o) const { return !(*this == o); }

  /// Sorted member list (empty for Unknown — check known() to distinguish).
  std::vector<int> members() const {
    std::vector<int> out;
    for (std::size_t w = 0; w < bits_.size(); ++w)
      for (int b = 0; b < 64; ++b)
        if ((bits_[w] >> b) & 1u) out.push_back(static_cast<int>(w) * 64 + b);
    return out;
  }

  /// Deterministic rendering: "?" for Unknown, "{}" / "{0,3,17}" otherwise
  /// (capped at eight members, then "...+n").
  std::string to_string() const;

 private:
  bool known_ = false;
  std::vector<std::uint64_t> bits_;
};

/// See file comment.  Build with the setters, or use the factories in
/// collectives/contracts.hpp for every built-in collective.
struct Contract {
  std::string name;     ///< e.g. "allgather/rd"
  int num_ranks = 0;    ///< communicator size the schedule ran on
  int buf_blocks = 0;   ///< per-rank buffer size in blocks
  int num_origins = 0;  ///< size of the origin universe

  /// One initial fact: before the schedule runs, `rank`'s buffer block
  /// `block` holds exactly origin `origin`'s contribution.  Slots without a
  /// seed start Unknown.
  struct Seed {
    Rank rank = 0;
    int block = 0;
    int origin = 0;
  };
  std::vector<Seed> seeds;

  /// Required final origin set per (rank, block), indexed
  /// rank * buf_blocks + block; nullopt slots are unconstrained (scratch
  /// space the collective may leave in any state).
  std::vector<std::optional<OriginSet>> expected;

  void seed(Rank r, int b, int origin) { seeds.push_back({r, b, origin}); }

  void expect(Rank r, int b, OriginSet s) {
    resize_expected();
    expected[static_cast<std::size_t>(r) * buf_blocks + b] = std::move(s);
  }

  /// Require (r, b) to hold exactly {origin}.
  void expect_single(Rank r, int b, int origin) {
    expect(r, b, OriginSet::single(num_origins, origin));
  }

  /// Require (r, b) to hold the full universe (allreduce semantics).
  void expect_all(Rank r, int b) {
    OriginSet s = OriginSet::empty_set(num_origins);
    for (int o = 0; o < num_origins; ++o) s.toggle(o);
    expect(r, b, std::move(s));
  }

  /// Range/shape validation; throws tarr::Error on an ill-formed contract.
  void validate() const;

 private:
  void resize_expected() {
    expected.resize(static_cast<std::size_t>(num_ranks) * buf_blocks);
  }
};

}  // namespace tarr::analyze
