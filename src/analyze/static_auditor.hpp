#pragma once

#include <string>
#include <utility>

#include "analyze/analyzer.hpp"
#include "common/error.hpp"
#include "report/record.hpp"
#include "simmpi/engine.hpp"
#include "trace/sink.hpp"

/// \file static_auditor.hpp
/// StaticAuditor: the bridge between tarr::check's dynamic discipline and
/// tarr::analyze's static one.  It records the schedule a collective runner
/// drives through an Engine (splicing a ScheduleRecorder behind any sink
/// already installed, so a Tracer keeps observing) and certifies the
/// recorded IR against the collective's Contract — the same run is then
/// checked twice: dynamically by the engine's Data-mode payloads and
/// tarr::check auditors, statically by the analyzer's proof over the IR.
///
/// Header-only, like check/audit_engine.hpp, so tarr_analyze itself never
/// links against the engine: the analyzer proper stays a pure function of
/// the recorded schedule.

namespace tarr::analyze {

/// Run `run(eng)` with a ScheduleRecorder spliced into the engine's trace
/// stream and return the recorded schedule.  The engine's previous sink is
/// kept in the loop during the run and restored afterwards.
template <typename Runner>
report::ScheduleRecord record_schedule(simmpi::Engine& eng, Runner&& run) {
  report::ScheduleRecorder rec;
  trace::TraceSink* prev = eng.trace_sink();
  trace::TeeSink tee(prev, &rec);
  eng.set_trace_sink(&tee);
  run(eng);
  eng.set_trace_sink(prev);
  return rec.take();
}

/// See file comment.
class StaticAuditor {
 public:
  explicit StaticAuditor(AnalyzeOptions opts = {}) : opts_(std::move(opts)) {}

  /// Record the runner's schedule and statically certify it.
  template <typename Runner>
  Certificate certify(simmpi::Engine& eng, const Contract& contract,
                      Runner&& run) const {
    const report::ScheduleRecord rec =
        record_schedule(eng, std::forward<Runner>(run));
    return analyze(rec, eng.comm().machine(), contract, opts_);
  }

  /// Like certify(), but throws tarr::Error carrying the formatted
  /// certificate when the schedule is rejected — the test-suite entry
  /// point: one call runs the collective (dynamic payload checks included)
  /// and fails loudly if the static proof does not go through.
  template <typename Runner>
  Certificate certify_or_throw(simmpi::Engine& eng, const Contract& contract,
                               Runner&& run) const {
    Certificate cert = certify(eng, contract, std::forward<Runner>(run));
    TARR_REQUIRE(cert.certified,
                 "static certification failed:\n" + cert.format());
    return cert;
  }

  const AnalyzeOptions& options() const { return opts_; }

 private:
  AnalyzeOptions opts_;
};

}  // namespace tarr::analyze
