#include "analyze/mutate.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace tarr::analyze {
namespace {

using report::RecordedCopy;
using report::RecordedStage;
using report::RecordedTransfer;
using report::ScheduleRecord;

/// Re-derive every start time (and the total) from the event order, the
/// same replay the analyzer's StageOrder pass performs — so a mutation
/// that reorders durations stays clock-consistent and is caught by the
/// property it actually breaks, not by a trivial timestamp check.
void recompute_clock(ScheduleRecord& rec) {
  Usec clock = 0.0;
  for (const auto& ev : rec.events) {
    if (ev.kind == ScheduleRecord::EventRef::Kind::Stage) {
      RecordedStage& s = rec.stages[ev.index];
      s.start = clock;
      clock += s.duration;
    } else {
      report::RecordedExtra& e = rec.extras[ev.index];
      e.start = clock;
      clock += e.duration;
    }
  }
  rec.total = clock;
}

void erase_copy(ScheduleRecord& rec, int idx) {
  rec.copies.erase(rec.copies.begin() + idx);
  for (RecordedStage& s : rec.stages) {
    if (s.first_copy > idx)
      --s.first_copy;
    else if (idx < s.first_copy + s.num_copies)
      --s.num_copies;
  }
}

void erase_transfer(ScheduleRecord& rec, int idx) {
  rec.transfers.erase(rec.transfers.begin() + idx);
  for (RecordedStage& s : rec.stages) {
    if (s.first_transfer > idx)
      --s.first_transfer;
    else if (idx < s.first_transfer + s.num_transfers)
      --s.num_transfers;
  }
}

void duplicate_copy(ScheduleRecord& rec, int idx) {
  const RecordedCopy dup = rec.copies[idx];
  rec.copies.insert(rec.copies.begin() + idx + 1, dup);
  for (RecordedStage& s : rec.stages) {
    if (s.first_copy > idx)
      ++s.first_copy;
    else if (idx < s.first_copy + s.num_copies)
      ++s.num_copies;
  }
}

void duplicate_transfer(ScheduleRecord& rec, int idx) {
  const RecordedTransfer dup = rec.transfers[idx];
  rec.transfers.insert(rec.transfers.begin() + idx + 1, dup);
  for (RecordedStage& s : rec.stages) {
    if (s.first_transfer > idx)
      ++s.first_transfer;
    else if (idx < s.first_transfer + s.num_transfers)
      ++s.num_transfers;
  }
}

/// Global index of the priced transfer matching a remote copy, or -1.
int matching_transfer(const ScheduleRecord& rec, const RecordedCopy& cp) {
  for (const RecordedStage& s : rec.stages) {
    if (s.stage != cp.stage) continue;
    for (int i = s.first_transfer; i < s.first_transfer + s.num_transfers;
         ++i) {
      const RecordedTransfer& t = rec.transfers[i];
      if (t.channel != trace::Channel::Local && t.src == cp.src &&
          t.dst == cp.dst && t.bytes == cp.bytes)
        return i;
    }
  }
  return -1;
}

std::string edge(const RecordedCopy& cp) {
  return "rank " + std::to_string(cp.src) + " -> rank " +
         std::to_string(cp.dst) + " (" + std::to_string(cp.bytes) +
         " bytes, stage " + std::to_string(cp.stage) + ")";
}

std::string drop_transfer(ScheduleRecord& rec, Rng& rng) {
  // Prefer the last stage with remote traffic: a late drop leaves no later
  // stage to mask it, so detection falls to the final-state contract.
  int last = -1;
  for (const RecordedCopy& cp : rec.copies)
    if (cp.src != cp.dst) last = std::max(last, cp.stage);
  TARR_REQUIRE(last >= 0, "drop-transfer: schedule has no remote copies");
  std::vector<int> victims;
  for (int i = 0; i < static_cast<int>(rec.copies.size()); ++i)
    if (rec.copies[i].src != rec.copies[i].dst &&
        rec.copies[i].stage == last)
      victims.push_back(i);
  const int idx = victims[rng.next_below(victims.size())];
  const RecordedCopy cp = rec.copies[idx];
  const int t = matching_transfer(rec, cp);
  TARR_REQUIRE(t >= 0, "drop-transfer: copy has no priced transfer");
  erase_copy(rec, idx);
  erase_transfer(rec, t);
  return "dropped copy " + edge(cp);
}

std::string swap_stages(ScheduleRecord& rec, Rng& rng) {
  TARR_REQUIRE(rec.stages.size() >= 2,
               "swap-stages: schedule has fewer than two stages");
  const int i = static_cast<int>(rng.next_below(rec.stages.size() - 1));
  std::swap(rec.stages[i], rec.stages[i + 1]);
  // Renumber consistently: the structural passes must stay green so the
  // dataflow pass is what rejects the reordered schedule.
  for (int k = i; k <= i + 1; ++k) {
    RecordedStage& s = rec.stages[k];
    const int renamed = rec.stages[k == i ? i + 1 : i].stage;
    for (int c = s.first_copy; c < s.first_copy + s.num_copies; ++c)
      rec.copies[c].stage = renamed;
    for (int t = s.first_transfer; t < s.first_transfer + s.num_transfers;
         ++t)
      rec.transfers[t].stage = renamed;
  }
  std::swap(rec.stages[i].stage, rec.stages[i + 1].stage);
  recompute_clock(rec);
  return "swapped stages " + std::to_string(rec.stages[i].stage) + " and " +
         std::to_string(rec.stages[i + 1].stage);
}

std::string truncate_bytes(ScheduleRecord& rec, Rng& rng) {
  std::vector<int> victims;
  for (int i = 0; i < static_cast<int>(rec.transfers.size()); ++i)
    if (rec.transfers[i].channel != trace::Channel::Local &&
        rec.transfers[i].bytes >= 2)
      victims.push_back(i);
  TARR_REQUIRE(!victims.empty(),
               "truncate-bytes: no remote transfer of >= 2 bytes");
  RecordedTransfer& t = rec.transfers[victims[rng.next_below(victims.size())]];
  const Bytes before = t.bytes;
  t.bytes /= 2;
  return "truncated transfer rank " + std::to_string(t.src) + " -> rank " +
         std::to_string(t.dst) + " (stage " + std::to_string(t.stage) +
         ") from " + std::to_string(before) + " to " +
         std::to_string(t.bytes) + " bytes";
}

std::string duplicate_block(ScheduleRecord& rec, Rng& rng) {
  std::vector<int> victims;
  for (int i = 0; i < static_cast<int>(rec.copies.size()); ++i)
    if (rec.copies[i].src != rec.copies[i].dst && !rec.copies[i].combining)
      victims.push_back(i);
  TARR_REQUIRE(!victims.empty(),
               "duplicate-block: no remote non-combining copy");
  const int idx = victims[rng.next_below(victims.size())];
  const RecordedCopy cp = rec.copies[idx];
  const int t = matching_transfer(rec, cp);
  TARR_REQUIRE(t >= 0, "duplicate-block: copy has no priced transfer");
  duplicate_copy(rec, idx);
  duplicate_transfer(rec, t);
  return "duplicated copy " + edge(cp);
}

}  // namespace

const char* to_string(Mutation m) {
  switch (m) {
    case Mutation::DropTransfer:
      return "drop-transfer";
    case Mutation::SwapStages:
      return "swap-stages";
    case Mutation::TruncateBytes:
      return "truncate-bytes";
    case Mutation::DuplicateBlock:
      return "duplicate-block";
  }
  return "?";
}

std::string apply_mutation(ScheduleRecord& rec, Mutation m,
                           std::uint64_t seed) {
  for (const RecordedStage& s : rec.stages)
    TARR_REQUIRE(s.repeats == 1,
                 "apply_mutation: record is repeat-compressed; mutate "
                 "Data-mode records");
  Rng rng(seed);
  switch (m) {
    case Mutation::DropTransfer:
      return drop_transfer(rec, rng);
    case Mutation::SwapStages:
      return swap_stages(rec, rng);
    case Mutation::TruncateBytes:
      return truncate_bytes(rec, rng);
    case Mutation::DuplicateBlock:
      return duplicate_block(rec, rng);
  }
  TARR_REQUIRE(false, "apply_mutation: unknown mutation");
  return {};
}

}  // namespace tarr::analyze
