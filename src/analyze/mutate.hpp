#pragma once

#include <cstdint>
#include <string>

#include "report/record.hpp"

/// \file mutate.hpp
/// Seeded schedule mutations — the analyzer's adversary.
///
/// Each mutation takes a well-formed, dataflow-faithful ScheduleRecord and
/// corrupts it in one targeted way that a correct static analyzer must
/// reject with a specific leading diagnosis.  They are the negative tests of
/// tarr::analyze: certification of the genuine schedules shows the analyzer
/// accepts what the engine does, the mutations show it would notice if a
/// future scheduler (or the synthesis search on the roadmap) emitted
/// something subtly wrong.
///
/// The mutations renumber stage fields and recompute the event clock after
/// editing, so the cheap structural passes stay green and detection falls
/// to the property each mutation is designed to break:
///
///   DropTransfer   — a late remote copy (and its priced transfer) vanishes
///                    -> ContractViolation: some rank ends without a block.
///   SwapStages     — two adjacent stages trade places (consistently
///                    renumbered) -> UninitializedRead: a stage sends data
///                    that now only arrives later.
///   TruncateBytes  — a priced transfer carries half its submitted bytes
///                    -> ByteConservation: send/recv multisets diverge.
///   DuplicateBlock — a copy and its transfer are submitted twice
///                    -> WriteConflict: the slot is plain-written twice in
///                    one stage.

namespace tarr::analyze {

enum class Mutation { DropTransfer, SwapStages, TruncateBytes, DuplicateBlock };

const char* to_string(Mutation m);

/// Apply one seeded mutation in place.  The victim is drawn
/// deterministically from `seed` over a deterministic candidate order, so
/// equal (record, mutation, seed) triples yield byte-identical mutated
/// records.  Throws tarr::Error if the record offers no viable victim
/// (e.g. fewer than two stages for SwapStages).  Returns a one-line
/// description of the edit.
std::string apply_mutation(report::ScheduleRecord& rec, Mutation m,
                           std::uint64_t seed);

}  // namespace tarr::analyze
