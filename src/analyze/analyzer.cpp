#include "analyze/analyzer.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/permutation.hpp"

namespace tarr::analyze {
namespace {

using report::RecordedCopy;
using report::RecordedLoad;
using report::RecordedStage;
using report::RecordedTransfer;
using report::ScheduleRecord;

/// Deterministic byte-count rendering: loads are doubles but always hold
/// whole byte counts, so print them as integers when they are.
std::string fmt_bytes(double b) {
  const auto i = static_cast<long long>(b);
  if (static_cast<double>(i) == b) return std::to_string(i);
  return std::to_string(b);
}

/// Collects findings in pass order with a per-property cap.
class Emitter {
 public:
  explicit Emitter(int cap) : cap_(cap) {}

  void emit(Property p, Severity sev, int stage, std::string msg) {
    if (sev == Severity::Error) any_error_ = true;
    if (count_[static_cast<int>(p)]++ >= cap_) {
      ++suppressed_;
      return;
    }
    findings_.push_back(Finding{p, sev, stage, std::move(msg)});
  }

  bool any_error() const { return any_error_; }
  int suppressed() const { return suppressed_; }
  std::vector<Finding> take() { return std::move(findings_); }
  bool saw(Property p) const { return count_[static_cast<int>(p)] > 0; }

 private:
  int cap_;
  std::vector<Finding> findings_;
  int count_[9] = {};
  int suppressed_ = 0;
  bool any_error_ = false;
};

std::string rank_slot(Rank r, int slot) {
  return "rank " + std::to_string(r) + " slot " + std::to_string(slot);
}

/// Pass 1: record shape vs contract — everything the later passes index
/// with must be in range.  Returns false when the record is too malformed
/// to interpret safely.
bool check_structure(const ScheduleRecord& rec, const Contract& c,
                     Emitter& em) {
  bool safe = true;
  const auto bad = [&](int stage, std::string msg) {
    em.emit(Property::Structure, Severity::Error, stage, std::move(msg));
    safe = false;
  };
  const int nstages = static_cast<int>(rec.stages.size());
  for (const RecordedCopy& cp : rec.copies) {
    if (cp.src < 0 || cp.src >= c.num_ranks || cp.dst < 0 ||
        cp.dst >= c.num_ranks)
      bad(cp.stage, "copy rank out of range: rank " + std::to_string(cp.src) +
                        " -> rank " + std::to_string(cp.dst) + " with " +
                        std::to_string(c.num_ranks) + " ranks");
    if (cp.nblocks < 1 || cp.src_off < 0 ||
        cp.src_off + cp.nblocks > c.buf_blocks || cp.dst_off < 0 ||
        cp.dst_off + cp.nblocks > c.buf_blocks)
      bad(cp.stage,
          "copy block range out of buffer: src_off " +
              std::to_string(cp.src_off) + " dst_off " +
              std::to_string(cp.dst_off) + " nblocks " +
              std::to_string(cp.nblocks) + " with " +
              std::to_string(c.buf_blocks) + " blocks per rank");
  }
  for (const RecordedTransfer& t : rec.transfers) {
    if (t.src < 0 || t.src >= c.num_ranks || t.dst < 0 ||
        t.dst >= c.num_ranks)
      bad(t.stage, "transfer rank out of range: rank " +
                       std::to_string(t.src) + " -> rank " +
                       std::to_string(t.dst));
  }
  for (const RecordedStage& s : rec.stages) {
    if (s.first_copy < 0 || s.num_copies < 0 ||
        s.first_copy + s.num_copies > static_cast<int>(rec.copies.size()) ||
        s.first_transfer < 0 || s.num_transfers < 0 ||
        s.first_transfer + s.num_transfers >
            static_cast<int>(rec.transfers.size()) ||
        s.first_load < 0 || s.num_loads < 0 ||
        s.first_load + s.num_loads > static_cast<int>(rec.loads.size())) {
      bad(s.stage, "stage entry references slices outside the record");
      continue;
    }
    // Stage-barrier consistency: everything a stage owns is tagged with it.
    if (s.repeats == 1) {
      for (const RecordedCopy& cp : rec.copies_of(s))
        if (cp.stage != s.stage)
          bad(s.stage, "copy tagged stage " + std::to_string(cp.stage) +
                           " recorded inside stage " + std::to_string(s.stage));
      for (const RecordedTransfer& t : rec.transfers_of(s))
        if (t.stage != s.stage)
          bad(s.stage, "transfer tagged stage " + std::to_string(t.stage) +
                           " recorded inside stage " + std::to_string(s.stage));
    }
  }
  for (const auto& ev : rec.events) {
    const bool stage = ev.kind == ScheduleRecord::EventRef::Kind::Stage;
    const int limit =
        stage ? nstages : static_cast<int>(rec.extras.size());
    if (ev.index < 0 || ev.index >= limit)
      bad(-1, "event stream references a missing entry");
  }
  return safe;
}

/// Pass 2: stage order and barrier clock.  Stage indices must be
/// consecutive (a repeat block re-runs the stage just closed), and every
/// recorded start must equal the replayed clock bit-exactly — the same
/// additions in the same order the engine performed.  In the
/// stage-synchronous model this is the deadlock-freedom obligation (see
/// analyzer.hpp).
void check_stage_order(const ScheduleRecord& rec, Emitter& em) {
  Usec clock = 0.0;
  int next_stage = 0;
  for (const auto& ev : rec.events) {
    if (ev.kind == ScheduleRecord::EventRef::Kind::Stage) {
      const RecordedStage& s = rec.stages[ev.index];
      if (s.repeats == 1) {
        if (s.stage != next_stage)
          em.emit(Property::StageOrder, Severity::Error, s.stage,
                  "stage " + std::to_string(s.stage) +
                      " out of order: expected stage " +
                      std::to_string(next_stage) + " next");
        next_stage = s.stage + 1;
      } else if (s.stage != next_stage - 1) {
        em.emit(Property::StageOrder, Severity::Error, s.stage,
                "repeat block repeats stage " + std::to_string(s.stage) +
                    " but stage " + std::to_string(next_stage - 1) +
                    " was the last one executed");
      }
      if (s.start != clock)
        em.emit(Property::StageOrder, Severity::Error, s.stage,
                "stage " + std::to_string(s.stage) + " starts at t=" +
                    std::to_string(s.start) + " but the replayed clock is t=" +
                    std::to_string(clock));
      clock += s.duration;
    } else {
      const report::RecordedExtra& e = rec.extras[ev.index];
      if (e.start != clock)
        em.emit(Property::StageOrder, Severity::Error, -1,
                "extra '" + e.what + "' starts at t=" +
                    std::to_string(e.start) +
                    " but the replayed clock is t=" + std::to_string(clock));
      clock += e.duration;
    }
  }
  if (clock != rec.total)
    em.emit(Property::StageOrder, Severity::Error, -1,
            "event durations sum to " + std::to_string(clock) +
                " but the record total is " + std::to_string(rec.total));
}

/// Pass 3: no transfer priced to its own rank, no copy targeting its own
/// source slot.
void check_self_transfers(const ScheduleRecord& rec, Emitter& em) {
  for (const RecordedTransfer& t : rec.transfers) {
    if (t.channel != trace::Channel::Local && t.src == t.dst)
      em.emit(Property::SelfTransfer, Severity::Error, t.stage,
              "rank " + std::to_string(t.src) +
                  " is priced a " + trace::to_string(t.channel) +
                  " transfer to itself (" + std::to_string(t.bytes) +
                  " bytes)");
    if (t.channel == trace::Channel::Local && t.src != t.dst)
      em.emit(Property::Structure, Severity::Error, t.stage,
              "local transfer spans two ranks: rank " +
                  std::to_string(t.src) + " -> rank " +
                  std::to_string(t.dst));
  }
  for (const RecordedCopy& cp : rec.copies) {
    if (cp.src != cp.dst || cp.src_off != cp.dst_off) continue;
    if (cp.combining)
      em.emit(Property::SelfTransfer, Severity::Error, cp.stage,
              rank_slot(cp.src, cp.src_off) +
                  " combines into itself: x ^ x zeroes the block");
    else
      em.emit(Property::SelfTransfer, Severity::Warning, cp.stage,
              rank_slot(cp.src, cp.src_off) + " no-op self-copy");
  }
}

/// Pass 4: byte conservation.  Every copy's bytes equal nblocks x the
/// (inferred) block size, and per stage the remote copies and the priced
/// transfers form identical (src, dst, bytes) multisets — every submitted
/// byte is priced, every priced byte was submitted, none change in flight.
/// Local copies must sum to each rank's aggregated Local pricing span.
void check_byte_conservation(const ScheduleRecord& rec, Emitter& em) {
  Bytes block_bytes = 0;
  for (const RecordedCopy& cp : rec.copies) {
    if (cp.nblocks >= 1 && cp.bytes > 0) {
      block_bytes = cp.bytes / cp.nblocks;
      break;
    }
  }
  if (block_bytes > 0) {
    for (const RecordedCopy& cp : rec.copies) {
      if (cp.bytes != static_cast<Bytes>(cp.nblocks) * block_bytes)
        em.emit(Property::ByteConservation, Severity::Error, cp.stage,
                "copy rank " + std::to_string(cp.src) + " -> rank " +
                    std::to_string(cp.dst) + " carries " +
                    std::to_string(cp.bytes) + " bytes for " +
                    std::to_string(cp.nblocks) + " blocks of " +
                    std::to_string(block_bytes) + " bytes");
    }
  }
  using Edge = std::tuple<Rank, Rank, Bytes>;
  for (const RecordedStage& s : rec.stages) {
    if (s.repeats != 1) continue;  // shares the original stage's slices
    std::vector<Edge> sent;
    std::vector<Edge> priced;
    std::map<Rank, Bytes> local_sent;
    std::map<Rank, Bytes> local_priced;
    for (const RecordedCopy& cp : rec.copies_of(s)) {
      if (cp.src == cp.dst)
        local_sent[cp.src] += cp.bytes;
      else
        sent.emplace_back(cp.src, cp.dst, cp.bytes);
    }
    for (const RecordedTransfer& t : rec.transfers_of(s)) {
      if (t.channel == trace::Channel::Local)
        local_priced[t.src] += t.bytes;
      else
        priced.emplace_back(t.src, t.dst, t.bytes);
    }
    std::sort(sent.begin(), sent.end());
    std::sort(priced.begin(), priced.end());
    const auto describe = [](const Edge& e) {
      return "rank " + std::to_string(std::get<0>(e)) + " -> rank " +
             std::to_string(std::get<1>(e)) + " (" +
             std::to_string(std::get<2>(e)) + " bytes)";
    };
    std::vector<Edge> only_sent;
    std::vector<Edge> only_priced;
    std::set_difference(sent.begin(), sent.end(), priced.begin(),
                        priced.end(), std::back_inserter(only_sent));
    std::set_difference(priced.begin(), priced.end(), sent.begin(),
                        sent.end(), std::back_inserter(only_priced));
    for (const Edge& e : only_sent)
      em.emit(Property::ByteConservation, Severity::Error, s.stage,
              "stage " + std::to_string(s.stage) + ": submitted copy " +
                  describe(e) + " has no matching priced transfer");
    for (const Edge& e : only_priced)
      em.emit(Property::ByteConservation, Severity::Error, s.stage,
              "stage " + std::to_string(s.stage) + ": priced transfer " +
                  describe(e) + " was never submitted as a copy");
    for (const auto& [r, b] : local_sent) {
      const auto it = local_priced.find(r);
      const Bytes have = it == local_priced.end() ? 0 : it->second;
      if (have != b)
        em.emit(Property::ByteConservation, Severity::Error, s.stage,
                "stage " + std::to_string(s.stage) + ": rank " +
                    std::to_string(r) + " submitted " + std::to_string(b) +
                    " local bytes but " + std::to_string(have) +
                    " were priced");
    }
    for (const auto& [r, b] : local_priced)
      if (local_sent.find(r) == local_sent.end())
        em.emit(Property::ByteConservation, Severity::Error, s.stage,
                "stage " + std::to_string(s.stage) + ": rank " +
                    std::to_string(r) + " priced " + std::to_string(b) +
                    " local bytes with no local copy submitted");
  }
}

/// Pass 5: the dataflow proof — abstract interpretation of the schedule
/// over OriginSet (see contract.hpp).  All sources of a stage are read
/// before any write lands, mirroring the engine's simultaneous-exchange
/// semantics.
void check_dataflow(const ScheduleRecord& rec, const Contract& c,
                    Emitter& em) {
  for (const RecordedStage& s : rec.stages) {
    if (s.repeats != 1) {
      em.emit(Property::Structure, Severity::Error, s.stage,
              "record is repeat-compressed (Timed-mode run); dataflow "
              "certification needs a Data-mode record");
      return;
    }
  }
  std::vector<std::vector<OriginSet>> state(
      c.num_ranks, std::vector<OriginSet>(c.buf_blocks));
  for (const Contract::Seed& sd : c.seeds)
    state[sd.rank][sd.block] = OriginSet::single(c.num_origins, sd.origin);

  // Per-slot write bookkeeping within one stage: kNone / kPlain / kCombine.
  enum : signed char { kNone = 0, kPlain = 1, kCombine = 2 };
  std::vector<signed char> written(
      static_cast<std::size_t>(c.num_ranks) * c.buf_blocks, kNone);
  std::vector<int> touched;

  for (const auto& ev : rec.events) {
    if (ev.kind == ScheduleRecord::EventRef::Kind::Extra) {
      const report::RecordedExtra& e = rec.extras[ev.index];
      if (e.dst_of_block.empty()) continue;
      if (static_cast<int>(e.dst_of_block.size()) != c.buf_blocks ||
          !is_permutation_of_iota(e.dst_of_block)) {
        em.emit(Property::Structure, Severity::Error, -1,
                "extra '" + e.what +
                    "' carries an invalid block permutation");
        return;
      }
      for (auto& buf : state) {
        std::vector<OriginSet> next(c.buf_blocks);
        for (int b = 0; b < c.buf_blocks; ++b)
          next[e.dst_of_block[b]] = std::move(buf[b]);
        buf = std::move(next);
      }
      continue;
    }
    const RecordedStage& s = rec.stages[ev.index];
    const auto copies = rec.copies_of(s);
    // Read every source against the pre-stage state first.
    std::vector<std::vector<OriginSet>> staged;
    staged.reserve(copies.size());
    for (const RecordedCopy& cp : copies) {
      std::vector<OriginSet> vals;
      vals.reserve(cp.nblocks);
      for (int k = 0; k < cp.nblocks; ++k) {
        const OriginSet& v = state[cp.src][cp.src_off + k];
        if (!v.known())
          em.emit(Property::UninitializedRead, Severity::Error, s.stage,
                  "stage " + std::to_string(s.stage) + ": " +
                      rank_slot(cp.src, cp.src_off + k) +
                      " is sent to " + rank_slot(cp.dst, cp.dst_off + k) +
                      " but was never seeded or written");
        vals.push_back(v);
      }
      staged.push_back(std::move(vals));
    }
    // Then land the writes, checking for order-dependent conflicts.
    for (std::size_t i = 0; i < copies.size(); ++i) {
      const RecordedCopy& cp = copies[i];
      for (int k = 0; k < cp.nblocks; ++k) {
        const int slot = cp.dst_off + k;
        const std::size_t key =
            static_cast<std::size_t>(cp.dst) * c.buf_blocks + slot;
        const signed char kind = cp.combining ? kCombine : kPlain;
        if (written[key] == kNone) touched.push_back(static_cast<int>(key));
        if ((written[key] == kPlain && kind == kPlain))
          em.emit(Property::WriteConflict, Severity::Error, s.stage,
                  "stage " + std::to_string(s.stage) + ": " +
                      rank_slot(cp.dst, slot) +
                      " is plain-written twice in one stage — the result "
                      "is submission-order dependent");
        else if (written[key] != kNone && written[key] != kind)
          em.emit(Property::WriteConflict, Severity::Error, s.stage,
                  "stage " + std::to_string(s.stage) + ": " +
                      rank_slot(cp.dst, slot) +
                      " is both overwritten and combined into in one "
                      "stage — the result is submission-order dependent");
        written[key] = kind;
        if (cp.combining)
          state[cp.dst][slot].combine_with(staged[i][k]);
        else
          state[cp.dst][slot] = staged[i][k];
      }
    }
    for (int key : touched) written[key] = kNone;
    touched.clear();
  }

  // The verdict: every constrained slot holds exactly its required set.
  if (c.expected.empty()) return;
  for (Rank r = 0; r < c.num_ranks; ++r) {
    for (int b = 0; b < c.buf_blocks; ++b) {
      const auto& want =
          c.expected[static_cast<std::size_t>(r) * c.buf_blocks + b];
      if (!want.has_value()) continue;
      const OriginSet& have = state[r][b];
      if (have == *want) continue;
      std::string msg = rank_slot(r, b) + " ends holding " +
                        have.to_string() + " but the contract requires " +
                        want->to_string();
      if (have.known()) {
        OriginSet missing = *want;
        missing.combine_with(have);  // symmetric difference
        std::vector<int> delta = missing.members();
        std::string miss;
        std::string extra;
        for (int o : delta) {
          std::string& side = want->contains(o) ? miss : extra;
          if (!side.empty()) side += ",";
          side += std::to_string(o);
        }
        if (!miss.empty()) msg += " (missing {" + miss + "}";
        if (!extra.empty())
          msg += (miss.empty() ? " (" : "; ") + std::string("extra {") +
                 extra + "}";
        if (!miss.empty() || !extra.empty()) msg += ")";
      } else {
        msg += " (the slot was never written)";
      }
      em.emit(Property::ContractViolation, Severity::Error, -1,
              std::move(msg));
    }
  }
}

/// Pass 6: recompute each stage's resource loads from the priced transfers
/// and cross-check against the recorded counters; flag loads over the
/// configured bounds.
void check_capacity(const ScheduleRecord& rec, const topology::Machine& m,
                    const AnalyzeOptions& opts, Emitter& em) {
  // No counters anywhere: the run was traced without contention modeling
  // (or not at all) — nothing to cross-check.
  const bool have_counters = !rec.loads.empty();
  for (const RecordedStage& s : rec.stages) {
    if (s.repeats != 1) continue;
    const std::vector<RecordedLoad> computed = static_stage_loads(rec, s, m);
    if (opts.check_capacity && have_counters) {
      const auto recorded = rec.loads_of(s);
      const std::size_t n =
          std::min(recorded.size(), computed.size());
      for (std::size_t i = 0; i < n; ++i) {
        const RecordedLoad& a = recorded[i];
        const RecordedLoad& b = computed[i];
        if (a.qpi == b.qpi && a.id == b.id && a.dir == b.dir &&
            a.bytes == b.bytes)
          continue;
        em.emit(Property::CounterMismatch, Severity::Error, s.stage,
                "stage " + std::to_string(s.stage) + ": traced counter " +
                    std::to_string(i) + " is " +
                    std::string(a.qpi ? "qpi" : "link") + " " +
                    std::to_string(a.id) + " dir " + std::to_string(a.dir) +
                    " = " + fmt_bytes(a.bytes) +
                    " bytes but the static replay computes " +
                    std::string(b.qpi ? "qpi" : "link") + " " +
                    std::to_string(b.id) + " dir " + std::to_string(b.dir) +
                    " = " + fmt_bytes(b.bytes) + " bytes");
      }
      if (recorded.size() != computed.size())
        em.emit(Property::CounterMismatch, Severity::Error, s.stage,
                "stage " + std::to_string(s.stage) + ": " +
                    std::to_string(recorded.size()) +
                    " counters traced but the static replay computes " +
                    std::to_string(computed.size()));
    }
    for (const RecordedLoad& l : computed) {
      if (l.qpi) {
        if (opts.max_qpi_bytes > 0.0 && l.bytes > opts.max_qpi_bytes)
          em.emit(Property::CapacityHazard, Severity::Warning, s.stage,
                  "stage " + std::to_string(s.stage) + ": QPI of node " +
                      std::to_string(l.id) + " dir " +
                      std::to_string(l.dir) + " carries " +
                      fmt_bytes(l.bytes) + " bytes, over the configured " +
                      fmt_bytes(opts.max_qpi_bytes) + "-byte bound");
      } else if (opts.max_link_load > 0.0) {
        const double rel = l.bytes / m.network().link(l.id).capacity;
        if (rel > opts.max_link_load)
          em.emit(Property::CapacityHazard, Severity::Warning, s.stage,
                  "stage " + std::to_string(s.stage) + ": cable " +
                      std::to_string(l.id) + " dir " +
                      std::to_string(l.dir) + " carries " +
                      fmt_bytes(l.bytes) + " bytes (" +
                      std::to_string(rel) +
                      "x capacity), over the configured " +
                      std::to_string(opts.max_link_load) + "x bound");
      }
    }
  }
}

}  // namespace

const char* to_string(Property p) {
  switch (p) {
    case Property::Structure:
      return "structure";
    case Property::StageOrder:
      return "stage-order";
    case Property::SelfTransfer:
      return "self-transfer";
    case Property::ByteConservation:
      return "byte-conservation";
    case Property::WriteConflict:
      return "write-conflict";
    case Property::UninitializedRead:
      return "uninitialized-read";
    case Property::ContractViolation:
      return "contract-violation";
    case Property::CapacityHazard:
      return "capacity-hazard";
    case Property::CounterMismatch:
      return "counter-mismatch";
  }
  return "?";
}

bool Certificate::has(Property p) const {
  for (const Finding& f : findings)
    if (f.property == p) return true;
  return false;
}

Property Certificate::leading() const {
  for (const Finding& f : findings)
    if (f.severity == Severity::Error) return f.property;
  return Property::Structure;
}

std::string Certificate::format() const {
  std::string out = "schedule: " + schedule + "\n";
  out += "verdict: ";
  out += certified ? "CERTIFIED" : "REJECTED";
  out += " (" + std::to_string(stages_checked) + " stages, " +
         std::to_string(copies_checked) + " copies checked)\n";
  if (!findings.empty()) {
    out += "findings (" + std::to_string(findings.size());
    if (suppressed > 0)
      out += " shown, " + std::to_string(suppressed) + " suppressed";
    out += "):\n";
    for (const Finding& f : findings) {
      out += "  [";
      out += f.severity == Severity::Error ? "error" : "warning";
      out += "] ";
      out += to_string(f.property);
      out += ": ";
      out += f.message;
      out += "\n";
    }
  }
  return out;
}

std::vector<report::RecordedLoad> static_stage_loads(
    const ScheduleRecord& rec, const RecordedStage& stage,
    const topology::Machine& m) {
  const auto& net = m.network();
  // Mirror CostModel's accumulators exactly: dense directed-load arrays
  // plus first-touch lists, one addition per retransmission attempt in
  // submission order, so the sums are bit-identical to the dynamic model.
  std::vector<double> link_bytes(
      static_cast<std::size_t>(net.num_links()) * 2, 0.0);
  std::vector<double> qpi_bytes(static_cast<std::size_t>(m.num_nodes()) * 2,
                                0.0);
  std::vector<int> touched_links;
  std::vector<int> touched_qpi;
  for (const RecordedTransfer& t : rec.transfers_of(stage)) {
    if (t.channel == trace::Channel::Local) continue;
    const NodeId na = m.node_of_core(t.src_core);
    const NodeId nb = m.node_of_core(t.dst_core);
    const double b = static_cast<double>(t.bytes);
    for (int attempt = 0; attempt < t.attempts; ++attempt) {
      if (na == nb) {
        const SocketId sa = m.socket_of_core(t.src_core);
        const SocketId sb = m.socket_of_core(t.dst_core);
        if (sa == sb) continue;  // same-socket copies load no shared wire
        const int dir = sa < sb ? 0 : 1;
        const std::size_t idx = static_cast<std::size_t>(na) * 2 + dir;
        if (qpi_bytes[idx] == 0.0)
          touched_qpi.push_back(static_cast<int>(idx));
        qpi_bytes[idx] += b;
        continue;
      }
      NetVertexId at = net.host_vertex(na);
      for (LinkId l : m.router().path(na, nb)) {
        const int dir = net.link(l).a == at ? 0 : 1;
        const std::size_t idx = static_cast<std::size_t>(l) * 2 + dir;
        if (link_bytes[idx] == 0.0)
          touched_links.push_back(static_cast<int>(idx));
        link_bytes[idx] += b;
        at = net.other_end(l, at);
      }
    }
  }
  std::vector<report::RecordedLoad> out;
  out.reserve(touched_links.size() + touched_qpi.size());
  for (int idx : touched_links)
    out.push_back(report::RecordedLoad{false, idx / 2, idx % 2,
                                       link_bytes[idx]});
  for (int idx : touched_qpi)
    out.push_back(
        report::RecordedLoad{true, idx / 2, idx % 2, qpi_bytes[idx]});
  return out;
}

Certificate analyze(const ScheduleRecord& rec, const topology::Machine& m,
                    const Contract& contract, const AnalyzeOptions& opts) {
  contract.validate();
  Emitter em(opts.max_findings_per_property);
  Certificate cert;
  cert.schedule = contract.name;
  cert.stages_checked = static_cast<int>(rec.stages.size());
  cert.copies_checked = static_cast<int>(rec.copies.size());

  const bool safe = check_structure(rec, contract, em);
  check_stage_order(rec, em);
  if (safe) {
    check_self_transfers(rec, em);
    check_byte_conservation(rec, em);
    if (opts.check_dataflow) check_dataflow(rec, contract, em);
    check_capacity(rec, m, opts, em);
  }

  cert.certified = !em.any_error();
  cert.suppressed = em.suppressed();
  cert.findings = em.take();
  return cert;
}

}  // namespace tarr::analyze
