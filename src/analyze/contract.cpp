#include "analyze/contract.hpp"

namespace tarr::analyze {

std::string OriginSet::to_string() const {
  if (!known_) return "?";
  const std::vector<int> m = members();
  std::string out = "{";
  const std::size_t shown = std::min<std::size_t>(m.size(), 8);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i > 0) out += ",";
    out += std::to_string(m[i]);
  }
  if (m.size() > shown)
    out += ",...+" + std::to_string(m.size() - shown);
  out += "}";
  return out;
}

void Contract::validate() const {
  TARR_REQUIRE(!name.empty(), "Contract: unnamed");
  TARR_REQUIRE(num_ranks >= 1, "Contract: num_ranks must be >= 1");
  TARR_REQUIRE(buf_blocks >= 1, "Contract: buf_blocks must be >= 1");
  TARR_REQUIRE(num_origins >= 1, "Contract: num_origins must be >= 1");
  for (const Seed& s : seeds) {
    TARR_REQUIRE(s.rank >= 0 && s.rank < num_ranks,
                 "Contract: seed rank out of range");
    TARR_REQUIRE(s.block >= 0 && s.block < buf_blocks,
                 "Contract: seed block out of range");
    TARR_REQUIRE(s.origin >= 0 && s.origin < num_origins,
                 "Contract: seed origin out of range");
  }
  TARR_REQUIRE(expected.empty() ||
                   expected.size() == static_cast<std::size_t>(num_ranks) *
                                          buf_blocks,
               "Contract: expected matrix has the wrong shape");
}

}  // namespace tarr::analyze
