#include "insight/imbalance.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tarr::insight {

double jain_index(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

ImbalanceReport analyze_imbalance(const report::ScheduleRecord& record,
                                  int top_k) {
  TARR_REQUIRE(top_k >= 1, "analyze_imbalance: top_k must be >= 1");
  ImbalanceReport rep;

  // Size the rank table.
  Rank max_rank = -1;
  for (const auto& t : record.transfers)
    max_rank = std::max(max_rank, std::max(t.src, t.dst));
  if (max_rank < 0) return rep;
  rep.ranks.resize(static_cast<std::size_t>(max_rank) + 1);
  for (Rank r = 0; r <= max_rank; ++r)
    rep.ranks[static_cast<std::size_t>(r)].rank = r;

  // Per-stage busy extraction.  `busy` is scratch reused across stages;
  // `touched` lists the ranks the current stage involved.
  std::vector<Usec> busy(rep.ranks.size(), 0.0);
  std::vector<Rank> touched;
  rep.stages.reserve(record.stages.size());
  for (const auto& ev : record.events) {
    if (ev.kind != report::ScheduleRecord::EventRef::Kind::Stage) continue;
    const report::RecordedStage& s = record.stages[ev.index];
    const double reps = static_cast<double>(s.repeats);
    const Usec per_exec = s.duration / reps;
    touched.clear();
    for (const auto& t : record.transfers_of(s)) {
      auto touch = [&](Rank r, CoreId core) {
        auto& b = busy[static_cast<std::size_t>(r)];
        if (b == 0.0 && t.duration > 0.0) touched.push_back(r);
        if (t.duration > b) b = t.duration;
        auto& rl = rep.ranks[static_cast<std::size_t>(r)];
        rl.transfers += s.repeats;
        if (rl.core < 0) rl.core = core;
      };
      touch(t.src, t.src_core);
      if (t.dst != t.src) touch(t.dst, t.dst_core);
    }
    // touched collects ranks in transfer-emission order; sort so the stage
    // summary (and the tie-broken argmax) is order-canonical.
    std::sort(touched.begin(), touched.end());

    StageImbalance si;
    si.stage = s.stage;
    si.repeats = s.repeats;
    si.duration = s.duration;
    double sum_busy = 0.0;
    for (const Rank r : touched) {
      const Usec b = busy[static_cast<std::size_t>(r)];
      sum_busy += b;
      if (si.slowest == kNoRank || b > si.slowest_busy) {
        si.slowest = r;
        si.slowest_busy = b;
      }
      auto& rl = rep.ranks[static_cast<std::size_t>(r)];
      rl.busy += b * reps;
      const Usec stall = per_exec > b ? per_exec - b : 0.0;
      rl.stall += stall * reps;
    }
    if (!touched.empty() && sum_busy > 0.0) {
      const double mean = sum_busy / static_cast<double>(touched.size());
      si.imbalance = si.slowest_busy / mean;
    }
    rep.stages.push_back(si);
    for (const Rank r : touched) busy[static_cast<std::size_t>(r)] = 0.0;
  }

  // Whole-run aggregates over participating ranks.
  double sum_busy = 0.0;
  double max_busy = 0.0;
  long long participants = 0;
  for (const auto& rl : rep.ranks) {
    if (rl.transfers == 0) continue;
    ++participants;
    sum_busy += rl.busy;
    max_busy = std::max(max_busy, rl.busy);
    rep.busy_hist.record(rl.busy);
    rep.stall_hist.record(rl.stall);
  }
  if (participants > 0 && sum_busy > 0.0)
    rep.imbalance = max_busy / (sum_busy / static_cast<double>(participants));

  // Jain fairness over the run's directed resource loads.
  std::vector<double> loads;
  loads.reserve(record.link_bytes.size());
  for (const auto& [key, bytes] : record.link_bytes) loads.push_back(bytes);
  rep.jain_links = jain_index(loads);
  loads.clear();
  for (const auto& [key, bytes] : record.qpi_bytes) loads.push_back(bytes);
  rep.jain_qpi = jain_index(loads);

  // Top-K stragglers: busiest ranks, descending, lowest rank on ties.
  std::vector<Rank> order;
  for (const auto& rl : rep.ranks)
    if (rl.transfers > 0 && rl.busy > 0.0) order.push_back(rl.rank);
  std::sort(order.begin(), order.end(), [&](Rank a, Rank b) {
    const Usec ba = rep.ranks[static_cast<std::size_t>(a)].busy;
    const Usec bb = rep.ranks[static_cast<std::size_t>(b)].busy;
    if (ba != bb) return ba > bb;
    return a < b;
  });
  if (static_cast<int>(order.size()) > top_k) order.resize(top_k);
  rep.stragglers = std::move(order);

  // Top-K hot resources: exact aggregate bytes, descending.
  std::vector<HotResource> hot;
  hot.reserve(record.link_bytes.size() + record.qpi_bytes.size());
  for (const auto& [key, bytes] : record.link_bytes)
    hot.push_back({false, key.first, key.second, bytes});
  for (const auto& [key, bytes] : record.qpi_bytes)
    hot.push_back({true, key.first, key.second, bytes});
  std::sort(hot.begin(), hot.end(), [](const HotResource& a,
                                       const HotResource& b) {
    if (a.bytes != b.bytes) return a.bytes > b.bytes;
    if (a.qpi != b.qpi) return a.qpi < b.qpi;
    if (a.id != b.id) return a.id < b.id;
    return a.dir < b.dir;
  });
  if (static_cast<int>(hot.size()) > top_k) hot.resize(top_k);
  rep.hot_resources = std::move(hot);

  return rep;
}

}  // namespace tarr::insight
