#pragma once

#include <map>
#include <string>
#include <vector>

/// \file histogram.hpp
/// Deterministic HDR-style log-linear histograms — the distribution
/// primitive of tarr::insight (see docs/OBSERVABILITY.md, "Distributions &
/// run diagnosis").
///
/// The observability stack so far records sums and peaks; diagnosing
/// imbalance needs *shapes*: is the p99 stage duration 1.1x or 4x the
/// median?  Cloud Collectives (arXiv 2105.14088) makes the case crisply —
/// under multi-tenant fabrics the tail, not the mean, decides whether
/// reordering pays.  This histogram makes tails measurable without giving
/// up the repo's byte-identity contract:
///
///  * Bucketing is log-linear: every power-of-two range (binade) is split
///    into 2^subbucket_bits equal sub-buckets (32 by default), giving a
///    bounded relative width of 1/32 ~ 3.1% per bucket across the whole
///    double range.  Bucket boundaries are exact doubles (ldexp of a dyadic
///    rational), so index_of/lower_bound are pure integer/IEEE functions of
///    the value — no accumulation, no rounding modes, no platform drift.
///  * Counts are exact integers; merge() adds counts bucket-wise, so it is
///    exactly associative and commutative (asserted by property tests).
///    min/max are tracked exactly; mean() and approx_sum() are derived from
///    bucket counts * bucket lower bounds, so they too are merge-invariant.
///  * Quantiles use the nearest-rank definition (rank = ceil(q*N)) over the
///    cumulative bucket counts and return the containing bucket's *lower
///    bound* — the smallest value that maps to the bucket.  When every
///    recorded value lies on a bucket lower bound the quantile is EXACTLY
///    the sorted-array nearest-rank value (tests pin ==); otherwise it is
///    below the true quantile by at most one sub-bucket width.
///
/// Values must be finite and >= 0 (durations, byte counts, residuals);
/// anything else throws tarr::Error instead of corrupting the counts.
/// Zero has a dedicated bucket (it has no binade).

namespace tarr::insight {

/// See file comment.
class Histogram {
 public:
  /// `subbucket_bits` in [0, 10]: each binade splits into 2^bits buckets.
  explicit Histogram(int subbucket_bits = 5);

  /// Record one observation (throws tarr::Error on non-finite or negative
  /// values).
  void record(double value) { record_n(value, 1); }

  /// Record `n` identical observations (n >= 1) — repeat-compressed engine
  /// stages fold in without loops.
  void record_n(double value, long long n);

  /// Fold `other` into this histogram.  Throws tarr::Error on a
  /// sub-bucket-resolution mismatch.  Exactly associative and commutative.
  void merge(const Histogram& other);

  long long count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double min() const;  ///< exact smallest recorded value (0 when empty)
  double max() const;  ///< exact largest recorded value (0 when empty)

  /// Mean derived from bucket representatives (deterministic and
  /// merge-invariant, within one sub-bucket of the true mean).
  double mean() const;

  /// Sum estimate derived from bucket representatives (count * lower bound
  /// summed in bucket order).
  double approx_sum() const;

  /// Nearest-rank quantile, q in [0, 1] (throws outside).  q = 0 returns
  /// the smallest recorded value's bucket lower bound; empty returns 0.
  /// See file comment for the exactness guarantee.
  double quantile(double q) const;

  int subbucket_bits() const { return subbucket_bits_; }

  /// Bucket index of a positive value (pure function; exposed for tests
  /// and exporters).  value must be > 0, finite.
  int index_of(double value) const;

  /// Smallest value mapping to bucket `index` (exact double).
  double lower_bound(int index) const;
  /// lower_bound of the next bucket: values in [lower, upper) land here.
  double upper_bound(int index) const { return lower_bound(index + 1); }

  /// One exported bucket (positive values only; zeros are reported via
  /// zero_count()).
  struct Bucket {
    int index = 0;
    double lower = 0.0;
    double upper = 0.0;
    long long count = 0;
  };
  /// Non-empty buckets in ascending index order.
  std::vector<Bucket> buckets() const;
  long long zero_count() const { return zero_count_; }

  /// Structural equality (same resolution, same counts, same min/max) —
  /// what the merge property tests compare.
  bool operator==(const Histogram& other) const;

 private:
  int subbucket_bits_;
  int subbuckets_;  ///< 1 << subbucket_bits_
  long long count_ = 0;
  long long zero_count_ = 0;
  double min_ = 0.0;  ///< valid iff count_ > 0
  double max_ = 0.0;
  std::map<int, long long> counts_;  ///< bucket index -> exact count
};

/// Quantiles every exporter reports, in report order.
struct QuantileSpec {
  const char* label;  ///< "p50"
  double q;           ///< 0.50
};
inline constexpr QuantileSpec kStandardQuantiles[] = {
    {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p999", 0.999}};

/// Exact nearest-rank quantile of a value set (brute force: copies and
/// sorts).  The reference the histogram quantiles are tested against, and
/// the tool of choice for small exact populations (per-rank loads).
double exact_quantile(std::vector<double> values, double q);

}  // namespace tarr::insight
