#include "insight/changepoint.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

namespace tarr::insight {

namespace {

struct SeriesPoint {
  int index = 0;  ///< position in the set sequence
  double value = 0.0;
};

struct Series {
  std::string unit;
  bool higher_is_better = false;
  std::vector<SeriesPoint> points;
};

std::string fmt(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_percent(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", v);
  return buf;
}

}  // namespace

std::vector<ChangePoint> detect_change_points(
    const std::vector<SnapshotSet>& sets, const ChangePointOptions& opts) {
  // Gather every (bench, metric) series in map order — deterministic no
  // matter how benches are ordered inside each set.
  std::map<std::pair<std::string, std::string>, Series> series;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    for (const auto& snap : sets[i].snapshots) {
      for (const auto& m : snap.metrics) {
        if (opts.gated_only && !m.gate) continue;
        Series& s = series[{snap.bench, m.name}];
        if (s.points.empty()) {
          s.unit = m.unit;
          s.higher_is_better = m.higher_is_better;
        }
        s.points.push_back({static_cast<int>(i), m.value});
      }
    }
  }

  std::vector<ChangePoint> out;
  for (const auto& [key, s] : series) {
    if (s.points.size() < 2) continue;
    // Current flat segment: exact running sum over the points it covers.
    double seg_sum = s.points.front().value;
    long long seg_n = 1;
    int seg_last_index = s.points.front().index;
    for (std::size_t i = 1; i < s.points.size(); ++i) {
      const SeriesPoint& p = s.points[i];
      const double mean = seg_sum / static_cast<double>(seg_n);
      const double tolerance = std::max(
          opts.abs_threshold, opts.rel_threshold / 100.0 * std::fabs(mean));
      if (std::fabs(p.value - mean) > tolerance) {
        ChangePoint cp;
        cp.bench = key.first;
        cp.metric = key.second;
        cp.unit = s.unit;
        cp.index = p.index;
        cp.before_label = sets[static_cast<std::size_t>(seg_last_index)].label;
        cp.after_label = sets[static_cast<std::size_t>(p.index)].label;
        cp.before = mean;
        cp.after = p.value;
        cp.change_percent =
            mean == 0.0 ? 0.0 : (p.value - mean) / std::fabs(mean) * 100.0;
        const bool went_up = p.value > mean;
        cp.regression = s.higher_is_better ? !went_up : went_up;
        out.push_back(std::move(cp));
        // Restart the segment at the new level.
        seg_sum = p.value;
        seg_n = 1;
      } else {
        seg_sum += p.value;
        ++seg_n;
      }
      seg_last_index = p.index;
    }
  }
  return out;
}

std::string render_change_points(const std::vector<ChangePoint>& points) {
  std::string out = "trajectory: " + std::to_string(points.size()) +
                    " change point(s)\n";
  if (points.empty()) {
    out += "no change points - every gated metric held its level within "
           "tolerance.\n";
    return out;
  }
  for (const auto& cp : points) {
    out += "\n" + cp.bench + " / " + cp.metric + " (" + cp.unit + ")\n";
    out += "  stepped " + fmt_percent(cp.change_percent) + " between '" +
           cp.before_label + "' and '" + cp.after_label + "': " +
           fmt(cp.before) + " -> " + fmt(cp.after) + "\n";
    out += cp.regression ? "  direction: REGRESSION\n"
                         : "  direction: improvement\n";
  }
  return out;
}

}  // namespace tarr::insight
