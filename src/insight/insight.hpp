#pragma once

/// \file insight.hpp
/// Umbrella header for tarr::insight — distribution-grade telemetry,
/// imbalance analytics, the run-diagnosis engine, and trajectory
/// change-point detection.  See docs/OBSERVABILITY.md, "Distributions &
/// run diagnosis".

#include "insight/changepoint.hpp"  // IWYU pragma: export
#include "insight/findings.hpp"    // IWYU pragma: export
#include "insight/histogram.hpp"   // IWYU pragma: export
#include "insight/imbalance.hpp"   // IWYU pragma: export
