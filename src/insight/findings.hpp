#pragma once

#include <string>
#include <vector>

#include "insight/imbalance.hpp"
#include "prof/profiler.hpp"
#include "report/critical_path.hpp"
#include "report/record.hpp"
#include "report/render.hpp"
#include "topology/machine.hpp"
#include "trace/metrics.hpp"

/// \file findings.hpp
/// The run-diagnosis engine: turns a recorded schedule (plus optional
/// metrics registry and self-profile) into ranked, schema'd Findings —
/// "what is wrong, how bad, with which exact numbers, and which knob to
/// turn".
///
/// Every finding carries
///   * a kind (the failure mode it detects),
///   * a severity (info / warning / critical, with deterministic
///     thresholds from DiagnoseOptions),
///   * quantitative evidence — named numbers copied EXACTLY from the
///     analytics (per-rank busy sums, resource byte loads, critical-path
///     splits), so a test can EXPECT_EQ them against the traced counters,
///   * the knob it implicates: the concrete remedy the repo already ships
///     (a mapper, the hierarchical path, the fault layer, the
///     parallelization roadmap item).
///
/// Findings are ranked most-severe first with a deterministic tie order,
/// and the renderers (text / markdown here, HTML via src/viz/findings) are
/// pure functions of the Diagnosis — same-seed runs produce byte-identical
/// findings output (CI cmp's two runs).

namespace tarr::insight {

enum class Severity { Info, Warning, Critical };
const char* to_string(Severity s);
/// Parse "info" / "warning" / "critical"; throws tarr::Error otherwise.
Severity parse_severity(const std::string& s);

enum class FindingKind {
  Straggler,            ///< a few ranks carry far more busy time than median
  Imbalance,            ///< whole-run max/mean busy out of bounds
  UnfairResourceLoad,   ///< Jain index low: few cables/QPI carry the bytes
  ContentionDominated,  ///< critical path is mostly sharing stall
  RetransmissionHeavy,  ///< critical path carries fault-retry overhead
  CrossSocketHeavy,     ///< byte flow dominated by QPI crossings
  HotScope,             ///< one reproduction phase dominates self-profile
  TailLatency,          ///< distribution tail far above median (p99 vs p50)
};
const char* to_string(FindingKind k);

/// One named evidence number (exact, see file comment).
struct Evidence {
  std::string name;
  double value = 0.0;
};

/// See file comment.
struct Finding {
  FindingKind kind = FindingKind::Imbalance;
  Severity severity = Severity::Info;
  std::string title;   ///< one line, e.g. "rank 17 is a straggler"
  std::string detail;  ///< quantitative sentence with the key numbers
  std::string knob;    ///< the remedy this finding implicates
  std::vector<Evidence> evidence;
};

/// Diagnosis thresholds.  Defaults are deliberately conservative: a
/// perfectly balanced synthetic run produces zero findings.
struct DiagnoseOptions {
  int top_k = 8;  ///< straggler / hot-resource list bound
  /// A rank is a straggler when busy >= ratio * median busy.
  double straggler_ratio = 1.5;
  /// Whole-run max/mean busy thresholds.
  double imbalance_warn = 1.5;
  double imbalance_critical = 3.0;
  /// Jain fairness warning threshold over directed cable loads.
  double jain_warn = 0.5;
  /// Critical-path contention-share warning threshold.
  double contention_share_warn = 0.5;
  /// Critical-path retransmission-share warning threshold.
  double retransmission_share_warn = 0.1;
  /// QPI byte share (of all priced transfer bytes) info threshold.
  double qpi_share_info = 0.4;
  /// Self-profile: a depth-1 scope with more than this share of root work.
  double hot_scope_share = 0.6;
  /// Distribution tail: p99 >= ratio * p50 raises a tail-latency finding.
  double tail_ratio = 3.0;
};

/// The full diagnosis: the imbalance analytics plus the ranked findings.
struct Diagnosis {
  ImbalanceReport imbalance;
  report::CriticalPath critical_path;
  std::vector<Finding> findings;  ///< severity-descending, deterministic

  Severity max_severity() const;  ///< Info when there are no findings
  bool has_severity_at_least(Severity s) const;
};

/// Diagnose one recorded run.  `metrics` (optional) contributes
/// distribution tails (stage durations, transfer stalls); `profile`
/// (optional) contributes reproduction hot-scope findings.
Diagnosis diagnose(const report::ScheduleRecord& record,
                   const topology::Machine& machine,
                   const DiagnoseOptions& opts = {},
                   const trace::MetricsRegistry* metrics = nullptr,
                   const prof::Profile* profile = nullptr);

/// Render the findings (and the headline imbalance numbers) as text or
/// markdown.  Deterministic; see file comment.
std::string render_findings(
    const Diagnosis& d,
    report::RenderFormat format = report::RenderFormat::Text);

}  // namespace tarr::insight
