#include "insight/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tarr::insight {

Histogram::Histogram(int subbucket_bits) : subbucket_bits_(subbucket_bits) {
  TARR_REQUIRE(subbucket_bits >= 0 && subbucket_bits <= 10,
               "Histogram: subbucket_bits must be in [0, 10]");
  subbuckets_ = 1 << subbucket_bits_;
}

void Histogram::record_n(double value, long long n) {
  TARR_REQUIRE(std::isfinite(value),
               "Histogram: refusing to record a non-finite value");
  TARR_REQUIRE(value >= 0.0,
               "Histogram: refusing to record a negative value");
  TARR_REQUIRE(n >= 1, "Histogram: record count must be >= 1");
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  count_ += n;
  if (value == 0.0) {
    zero_count_ += n;
  } else {
    counts_[index_of(value)] += n;
  }
}

void Histogram::merge(const Histogram& other) {
  TARR_REQUIRE(subbucket_bits_ == other.subbucket_bits_,
               "Histogram::merge: sub-bucket resolution mismatch");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  zero_count_ += other.zero_count_;
  for (const auto& [idx, n] : other.counts_) counts_[idx] += n;
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }
double Histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : approx_sum() / static_cast<double>(count_);
}

double Histogram::approx_sum() const {
  // Bucket-order sum of count * representative: a pure function of the
  // counts map, so two histograms with equal state report equal sums no
  // matter the order their samples arrived in.
  double sum = 0.0;  // zero bucket contributes 0
  for (const auto& [idx, n] : counts_)
    sum += static_cast<double>(n) * lower_bound(idx);
  return sum;
}

double Histogram::quantile(double q) const {
  TARR_REQUIRE(q >= 0.0 && q <= 1.0, "Histogram::quantile: q outside [0, 1]");
  if (count_ == 0) return 0.0;
  // Nearest rank: the rank-th smallest sample, rank = ceil(q * N), with
  // q = 0 mapping to the smallest sample.
  const long long rank = std::max<long long>(
      1, static_cast<long long>(
             std::ceil(q * static_cast<double>(count_))));
  long long seen = zero_count_;
  if (rank <= seen) return 0.0;
  for (const auto& [idx, n] : counts_) {
    seen += n;
    if (rank <= seen) return lower_bound(idx);
  }
  // Unreachable when counts are consistent; return the top bucket's lower
  // bound defensively.
  return counts_.empty() ? 0.0 : lower_bound(counts_.rbegin()->first);
}

int Histogram::index_of(double value) const {
  TARR_REQUIRE(value > 0.0 && std::isfinite(value),
               "Histogram::index_of: value must be positive and finite");
  int exp = 0;
  const double m = std::frexp(value, &exp);  // value = m * 2^exp, m in [.5,1)
  // Scale the mantissa into [0, 1) over the binade and cut it into
  // sub-buckets; the multiply is exact enough that values lying on a
  // sub-bucket boundary land in the bucket they open.
  const double frac = m * 2.0 - 1.0;  // [0, 1)
  int sub = static_cast<int>(frac * static_cast<double>(subbuckets_));
  if (sub >= subbuckets_) sub = subbuckets_ - 1;  // guard frac -> 1.0 rounding
  return exp * subbuckets_ + sub;
}

double Histogram::lower_bound(int index) const {
  // Floor division so negative exponents (values < 1) resolve correctly.
  int exp = index / subbuckets_;
  int sub = index % subbuckets_;
  if (sub < 0) {
    sub += subbuckets_;
    exp -= 1;
  }
  // 1 + sub/subbuckets is a dyadic rational (subbuckets is a power of two),
  // so the boundary is an exact double.
  return std::ldexp(1.0 + static_cast<double>(sub) /
                              static_cast<double>(subbuckets_),
                    exp - 1);
}

std::vector<Histogram::Bucket> Histogram::buckets() const {
  std::vector<Bucket> out;
  out.reserve(counts_.size());
  for (const auto& [idx, n] : counts_)
    out.push_back({idx, lower_bound(idx), upper_bound(idx), n});
  return out;
}

bool Histogram::operator==(const Histogram& other) const {
  if (subbucket_bits_ != other.subbucket_bits_ || count_ != other.count_ ||
      zero_count_ != other.zero_count_ || counts_ != other.counts_)
    return false;
  if (count_ == 0) return true;
  return min_ == other.min_ && max_ == other.max_;
}

double exact_quantile(std::vector<double> values, double q) {
  TARR_REQUIRE(q >= 0.0 && q <= 1.0, "exact_quantile: q outside [0, 1]");
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const long long rank = std::max<long long>(
      1, static_cast<long long>(
             std::ceil(q * static_cast<double>(values.size()))));
  return values[static_cast<std::size_t>(rank - 1)];
}

}  // namespace tarr::insight
