#pragma once

#include <vector>

#include "insight/histogram.hpp"
#include "report/record.hpp"

/// \file imbalance.hpp
/// Per-rank load-imbalance analytics over a recorded engine run.
///
/// The engine is stage-synchronous: every stage costs what its slowest
/// element costs, so any rank that finishes its own transfers early simply
/// *waits*.  That wait is the quantity this module extracts: for every rank
/// and every stage,
///
///   busy  = the longest transfer the rank participates in that stage
///           (it is either sending, receiving, or copying locally for that
///           duration);
///   stall = stage duration - busy (the barrier wait the stage's slowest
///           element inflicted on this rank).
///
/// Sums are exact: busy/stall per rank accumulate the recorded durations
/// (weighted by repeat compression) in event order, so evidence numbers
/// EXPECT_EQ-match what a test recomputes from the same ScheduleRecord —
/// the same exactness discipline as tarr::report and tarr::analyze.
///
/// On top of the per-rank loads:
///  * a load-imbalance score, max(busy) / mean(busy) — 1.0 is perfectly
///    balanced, 2.0 means the slowest rank works twice the average;
///  * Jain's fairness index over the run's directed cable and QPI byte
///    loads, J = (sum x)^2 / (n * sum x^2) — 1.0 when every loaded
///    resource carries the same bytes, 1/n when one resource carries
///    everything;
///  * top-K straggler ranks (largest busy) and hot resources (most bytes),
///    each with the exact traced numbers as evidence.

namespace tarr::insight {

/// Whole-run load of one rank (exact sums, see file comment).
struct RankLoad {
  Rank rank = 0;
  Usec busy = 0.0;
  Usec stall = 0.0;
  long long transfers = 0;  ///< transfers participated in (repeats counted)
  CoreId core = -1;         ///< core the rank occupied (-1 if never seen)
};

/// Per-stage imbalance summary (repeat-compressed stages appear once).
struct StageImbalance {
  int stage = 0;
  int repeats = 1;
  Usec duration = 0.0;     ///< total across repeats
  double imbalance = 1.0;  ///< max busy / mean busy over participating ranks
  Rank slowest = kNoRank;  ///< rank with the largest busy (lowest on ties)
  Usec slowest_busy = 0.0; ///< per-execution busy of that rank
};

/// One heavily loaded directed resource (exact bytes from the record's
/// aggregate load counters).
struct HotResource {
  bool qpi = false;  ///< false: cable link, true: QPI direction
  int id = 0;
  int dir = 0;
  double bytes = 0.0;
};

/// See file comment.
struct ImbalanceReport {
  std::vector<RankLoad> ranks;  ///< indexed by rank, size = max rank + 1
  std::vector<StageImbalance> stages;

  /// Distributions of the per-rank whole-run loads (and of per-execution
  /// stage durations), for quantile reporting and CSV export.
  Histogram busy_hist;
  Histogram stall_hist;

  double imbalance = 1.0;   ///< max/mean of per-rank busy (1.0 when empty)
  double jain_links = 1.0;  ///< Jain index over directed cable loads
  double jain_qpi = 1.0;    ///< Jain index over directed QPI loads

  std::vector<Rank> stragglers;         ///< top-K ranks by busy, descending
  std::vector<HotResource> hot_resources;  ///< top-K by bytes, descending

  bool empty() const { return ranks.empty(); }
};

/// Jain's fairness index of a value set (1.0 for empty or all-equal input).
double jain_index(const std::vector<double>& values);

/// Analyze `record` (top_k bounds the straggler / hot-resource lists).
ImbalanceReport analyze_imbalance(const report::ScheduleRecord& record,
                                  int top_k = 8);

}  // namespace tarr::insight
