#include "insight/findings.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace tarr::insight {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Info:
      return "info";
    case Severity::Warning:
      return "warning";
    case Severity::Critical:
      return "critical";
  }
  return "?";
}

Severity parse_severity(const std::string& s) {
  if (s == "info") return Severity::Info;
  if (s == "warning") return Severity::Warning;
  if (s == "critical") return Severity::Critical;
  throw Error("unknown severity: " + s +
              " (expected info, warning or critical)");
}

const char* to_string(FindingKind k) {
  switch (k) {
    case FindingKind::Straggler:
      return "straggler";
    case FindingKind::Imbalance:
      return "imbalance";
    case FindingKind::UnfairResourceLoad:
      return "unfair-resource-load";
    case FindingKind::ContentionDominated:
      return "contention-dominated";
    case FindingKind::RetransmissionHeavy:
      return "retransmission-heavy";
    case FindingKind::CrossSocketHeavy:
      return "cross-socket-heavy";
    case FindingKind::HotScope:
      return "hot-scope";
    case FindingKind::TailLatency:
      return "tail-latency";
  }
  return "?";
}

Severity Diagnosis::max_severity() const {
  Severity s = Severity::Info;
  for (const auto& f : findings) s = std::max(s, f.severity);
  return s;
}

bool Diagnosis::has_severity_at_least(Severity s) const {
  for (const auto& f : findings)
    if (f.severity >= s) return true;
  return false;
}

namespace {

/// Deterministic number formatting (same contract as the trace exporters):
/// exact integers bare, everything else %.17g.
std::string fmt(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Fixed two-decimal display formatting (ratios, shares); locale-free.
std::string fmt2(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string rank_list(const std::vector<Rank>& ranks) {
  std::string out;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(ranks[i]);
  }
  return out;
}

void check_stragglers(const ImbalanceReport& imb,
                      const topology::Machine& machine,
                      const DiagnoseOptions& opts,
                      std::vector<Finding>& out) {
  std::vector<double> busy;
  for (const auto& rl : imb.ranks)
    if (rl.transfers > 0) busy.push_back(rl.busy);
  if (busy.size() < 2) return;
  const double median = exact_quantile(busy, 0.5);
  if (median <= 0.0) return;

  std::vector<Rank> stragglers;
  double worst_ratio = 0.0;
  for (const Rank r : imb.stragglers) {
    const auto& rl = imb.ranks[static_cast<std::size_t>(r)];
    const double ratio = rl.busy / median;
    if (ratio >= opts.straggler_ratio) {
      stragglers.push_back(r);
      worst_ratio = std::max(worst_ratio, ratio);
    }
  }
  if (stragglers.empty()) return;

  // Shared-locality evidence: when every straggler sits on one node the
  // remedy is structural (leader placement), not luck.
  NodeId shared_node = -1;
  bool all_same_node = true;
  for (const Rank r : stragglers) {
    const CoreId c = imb.ranks[static_cast<std::size_t>(r)].core;
    if (c < 0) {
      all_same_node = false;
      break;
    }
    const NodeId n = machine.node_of_core(c);
    if (shared_node < 0) shared_node = n;
    else if (n != shared_node) all_same_node = false;
  }

  Finding f;
  f.kind = FindingKind::Straggler;
  f.severity = worst_ratio >= 2.0 * opts.straggler_ratio ? Severity::Critical
                                                         : Severity::Warning;
  f.title = "straggler ranks: " + rank_list(stragglers);
  f.detail = "slowest rank carries " + fmt2(worst_ratio) +
             "x the median busy time (" + fmt(median) + " us median)";
  if (all_same_node && stragglers.size() > 1 && shared_node >= 0)
    f.detail += "; all stragglers share node " + std::to_string(shared_node);
  f.knob = all_same_node && stragglers.size() > 1
               ? "candidate for hierarchical leader reassignment "
                 "(hier collectives / tarrmap --mapper heuristic)"
               : "reorder ranks onto less-loaded cores "
                 "(tarrmap --mapper heuristic|scotch|greedy)";
  f.evidence.push_back({"median.busy_usec", median});
  for (const Rank r : stragglers)
    f.evidence.push_back({"rank" + std::to_string(r) + ".busy_usec",
                          imb.ranks[static_cast<std::size_t>(r)].busy});
  out.push_back(std::move(f));
}

void check_imbalance(const ImbalanceReport& imb, const DiagnoseOptions& opts,
                     std::vector<Finding>& out) {
  if (imb.imbalance < opts.imbalance_warn) return;
  Finding f;
  f.kind = FindingKind::Imbalance;
  f.severity = imb.imbalance >= opts.imbalance_critical ? Severity::Critical
                                                        : Severity::Warning;
  f.title = "per-rank load imbalance " + fmt2(imb.imbalance);
  f.detail = "the busiest rank works " + fmt2(imb.imbalance) +
             "x the mean; a balanced schedule scores 1.0";
  f.knob = "topology-aware reordering (tarrmap) or a schedule with "
           "evener per-rank work";
  f.evidence.push_back({"imbalance.max_over_mean", imb.imbalance});
  out.push_back(std::move(f));
}

void check_fairness(const ImbalanceReport& imb, const DiagnoseOptions& opts,
                    std::vector<Finding>& out) {
  if (imb.jain_links >= opts.jain_warn || imb.hot_resources.empty()) return;
  Finding f;
  f.kind = FindingKind::UnfairResourceLoad;
  f.severity = Severity::Warning;
  f.title = "cable load is concentrated (Jain " + fmt2(imb.jain_links) + ")";
  f.detail = "a few directed cables carry most of the bytes; "
             "Jain fairness 1.0 is even, 1/n is one hot cable";
  f.knob = "a mapping that spreads leaf-uplink load "
           "(tarrmap --mapper scotch) or the hierarchical path";
  f.evidence.push_back({"jain.links", imb.jain_links});
  for (const auto& h : imb.hot_resources) {
    if (h.qpi) continue;
    f.evidence.push_back({"cable" + std::to_string(h.id) + ".d" +
                              std::to_string(h.dir) + ".bytes",
                          h.bytes});
  }
  out.push_back(std::move(f));
}

void check_critical_path(const report::CriticalPath& path,
                         const DiagnoseOptions& opts,
                         std::vector<Finding>& out) {
  if (path.total <= 0.0) return;
  const double contention_share = path.contention / path.total;
  if (contention_share >= opts.contention_share_warn) {
    Finding f;
    f.kind = FindingKind::ContentionDominated;
    f.severity = Severity::Warning;
    f.title = "critical path is contention-dominated (" +
              fmt2(100.0 * contention_share) + "% stall)";
    f.detail = "resource-sharing stall, not serialization, determines "
               "completion time — the schedule oversubscribes cables or QPI";
    f.knob = "topology-aware reordering (tarrmap), or fewer concurrent "
             "transfers per stage (hierarchical/pipelined collectives)";
    f.evidence.push_back({"critical.total_usec", path.total});
    f.evidence.push_back({"critical.contention_usec", path.contention});
    f.evidence.push_back({"critical.serialization_usec", path.serialization});
    out.push_back(std::move(f));
  }
  const double retrans_share = path.retransmission / path.total;
  if (retrans_share >= opts.retransmission_share_warn) {
    Finding f;
    f.kind = FindingKind::RetransmissionHeavy;
    f.severity = Severity::Warning;
    f.title = "retransmissions on the critical path (" +
              fmt2(100.0 * retrans_share) + "%)";
    f.detail = "transient-fault retries and drop-detection waits are "
               "inflating completion time";
    f.knob = "investigate the faulty links (tarr::fault campaign) or relax "
             "the drop-timeout configuration";
    f.evidence.push_back({"critical.retransmission_usec",
                          path.retransmission});
    f.evidence.push_back({"critical.total_usec", path.total});
    out.push_back(std::move(f));
  }
}

void check_qpi_share(const report::ScheduleRecord& record,
                     const topology::Machine& machine,
                     const DiagnoseOptions& opts, std::vector<Finding>& out) {
  const auto flows = report::channel_flows(record, machine);
  double total_bytes = 0.0;
  double qpi_bytes = 0.0;
  for (const auto& [ch, f] : flows) {
    if (ch == report::PathChannel::Local) continue;
    total_bytes += f.bytes;
    if (ch == report::PathChannel::Qpi) qpi_bytes += f.bytes;
  }
  if (total_bytes <= 0.0) return;
  const double share = qpi_bytes / total_bytes;
  if (share < opts.qpi_share_info) return;
  Finding f;
  f.kind = FindingKind::CrossSocketHeavy;
  f.severity = Severity::Info;
  f.title = "QPI carries " + fmt2(100.0 * share) + "% of the bytes";
  f.detail = "cross-socket traffic dominates; socket-aware placement "
             "(bunch layouts, intra-socket grouping) would relieve it";
  f.knob = "a bunch initial layout or the socket-aware mapping comparators";
  f.evidence.push_back({"flow.qpi_bytes", qpi_bytes});
  f.evidence.push_back({"flow.total_bytes", total_bytes});
  out.push_back(std::move(f));
}

void check_tails(const trace::MetricsRegistry& metrics,
                 const DiagnoseOptions& opts, std::vector<Finding>& out) {
  // Deterministic order: distributions() is a std::map.
  for (const auto& [name, hist] : metrics.distributions()) {
    if (hist.count() < 8) continue;  // tails of tiny samples are noise
    const double p50 = hist.quantile(0.5);
    const double p99 = hist.quantile(0.99);
    if (p50 <= 0.0 || p99 < opts.tail_ratio * p50) continue;
    Finding f;
    f.kind = FindingKind::TailLatency;
    f.severity = Severity::Warning;
    f.title = name + " p99 is " + fmt2(p99 / p50) + "x the median";
    f.detail = "the " + name + " distribution has a heavy tail (p50 " +
               fmt(p50) + ", p99 " + fmt(p99) +
               "); under multi-tenant fabrics the tail decides whether "
               "reordering pays";
    f.knob = "probe-and-remap (tarr-probe) if the fabric churns, else "
             "reordering for the contended resource";
    f.evidence.push_back({name + ".p50", p50});
    f.evidence.push_back({name + ".p99", p99});
    f.evidence.push_back({name + ".count",
                          static_cast<double>(hist.count())});
    out.push_back(std::move(f));
  }
}

void check_hot_scope(const prof::Profile& profile, const DiagnoseOptions& opts,
                     std::vector<Finding>& out) {
  if (profile.entries.empty()) return;
  const double root_work = profile.entries.front().work_total;
  if (root_work <= 0.0) return;
  for (const auto& e : profile.entries) {
    if (e.depth != 1) continue;
    const double share = e.work_total / root_work;
    if (share < opts.hot_scope_share) continue;
    Finding f;
    f.kind = FindingKind::HotScope;
    f.severity = Severity::Info;
    f.title = "reproduction phase '" + e.name + "' dominates (" +
              fmt2(100.0 * share) + "% of work)";
    f.detail = "one phase carries most of the reproduction's own cost; "
               "see the ROADMAP multithreading item for the parallel plan";
    f.knob = "parallelize '" + e.name + "' (work-stealing pool, "
             "per-subtree bisections) behind the determinism contract";
    f.evidence.push_back({"prof." + e.name + ".work_total", e.work_total});
    f.evidence.push_back({"prof.root.work_total", root_work});
    out.push_back(std::move(f));
  }
}

}  // namespace

Diagnosis diagnose(const report::ScheduleRecord& record,
                   const topology::Machine& machine,
                   const DiagnoseOptions& opts,
                   const trace::MetricsRegistry* metrics,
                   const prof::Profile* profile) {
  TARR_REQUIRE(opts.top_k >= 1, "diagnose: top_k must be >= 1");
  Diagnosis d;
  d.imbalance = analyze_imbalance(record, opts.top_k);
  d.critical_path = report::analyze_critical_path(record, machine);

  check_stragglers(d.imbalance, machine, opts, d.findings);
  check_imbalance(d.imbalance, opts, d.findings);
  check_fairness(d.imbalance, opts, d.findings);
  check_critical_path(d.critical_path, opts, d.findings);
  check_qpi_share(record, machine, opts, d.findings);
  if (metrics != nullptr) check_tails(*metrics, opts, d.findings);
  if (profile != nullptr) check_hot_scope(*profile, opts, d.findings);

  // Rank: most severe first, then kind order, then title — deterministic
  // regardless of the order the checks appended in.
  std::stable_sort(d.findings.begin(), d.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.severity != b.severity)
                       return a.severity > b.severity;
                     if (a.kind != b.kind) return a.kind < b.kind;
                     return a.title < b.title;
                   });
  return d;
}

std::string render_findings(const Diagnosis& d, report::RenderFormat format) {
  const bool md = format == report::RenderFormat::Markdown;
  std::string out;
  if (md) out += "## Diagnosis\n\n";
  out += "diagnosis: " + std::to_string(d.findings.size()) + " finding(s)";
  if (!d.findings.empty())
    out += ", max severity " + std::string(to_string(d.max_severity()));
  out += "\n";
  out += "run: total " + fmt(d.critical_path.total) + " us, imbalance " +
         fmt2(d.imbalance.imbalance) + ", Jain(links) " +
         fmt2(d.imbalance.jain_links) + ", Jain(qpi) " +
         fmt2(d.imbalance.jain_qpi) + "\n";
  if (md) out += "\n";
  for (const auto& f : d.findings) {
    std::string sev = to_string(f.severity);
    for (char& c : sev) c = static_cast<char>(c - 'a' + 'A');
    if (md) {
      out += "- **[" + sev + "]** " + f.title + " *(" +
             to_string(f.kind) + ")*\n";
      out += "  - " + f.detail + "\n";
      out += "  - knob: " + f.knob + "\n";
      std::string ev;
      for (const auto& e : f.evidence) {
        if (!ev.empty()) ev += "; ";
        ev += e.name + "=" + fmt(e.value);
      }
      if (!ev.empty()) out += "  - evidence: " + ev + "\n";
    } else {
      out += "\n[" + sev + "] " + f.title + " (" + to_string(f.kind) + ")\n";
      out += "  " + f.detail + "\n";
      out += "  knob: " + f.knob + "\n";
      std::string ev;
      for (const auto& e : f.evidence) {
        if (!ev.empty()) ev += "; ";
        ev += e.name + "=" + fmt(e.value);
      }
      if (!ev.empty()) out += "  evidence: " + ev + "\n";
    }
  }
  if (d.findings.empty())
    out += md ? "\nno findings — the run looks balanced.\n"
              : "no findings - the run looks balanced.\n";
  return out;
}

}  // namespace tarr::insight
