#pragma once

#include <string>
#include <vector>

#include "report/snapshot.hpp"

/// \file changepoint.hpp
/// Step-change detection over an ordered sequence of bench snapshot sets.
///
/// The perf gate (tarr-report compare) answers "did THIS run regress against
/// THE baseline?".  The trajectory question is different: given the ordered
/// history of committed snapshot sets (one per landed change, labeled by
/// tag/commit), *where* did each gated metric step — and did the step land
/// as an improvement or a regression?  That turns "fig5 got slower at some
/// point" into "fig5 completion stepped +9.3% between v7 and v8".
///
/// The detector is deliberately simple and deterministic: for each
/// (bench, metric) series it maintains the current flat segment and its
/// running mean; an observation further from the segment mean than
/// max(abs_threshold, rel_threshold% of |mean|) closes the segment and
/// records a ChangePoint at that index (the commit-window is the pair of
/// labels bracketing the step).  The segment then restarts at the new
/// level, so a plateau shift reports ONE change point, not one per
/// subsequent sample — and a series that merely jitters inside the
/// tolerance band reports none (the CI negative control feeds the same
/// baseline set twice and greps for "no change points").
///
/// Missing entries (a bench or metric absent from one set, e.g. added
/// mid-history) are skipped without closing the segment.

namespace tarr::insight {

/// One labeled snapshot set — one point of the trajectory.  `label` is the
/// human name of the history position (tag, commit, directory stem).
struct SnapshotSet {
  std::string label;
  std::vector<report::BenchSnapshot> snapshots;
};

/// One detected step (see file comment).
struct ChangePoint {
  std::string bench;
  std::string metric;
  std::string unit;
  int index = 0;              ///< position in the set sequence where v[i] stepped
  std::string before_label;   ///< label of the last pre-step set
  std::string after_label;    ///< label of the set that stepped
  double before = 0.0;        ///< mean of the closed segment
  double after = 0.0;         ///< the stepped observation
  double change_percent = 0.0;  ///< signed, relative to `before`
  bool regression = false;    ///< stepped in the metric's worse direction
};

struct ChangePointOptions {
  double rel_threshold = 2.0;  ///< percent of the segment mean
  double abs_threshold = 0.0;  ///< same unit as the metric
  bool gated_only = true;      ///< skip trend-only (gate=false) metrics
};

/// Detect step changes across `sets` (ordered oldest -> newest).  Results
/// are ordered by (bench, metric, index) — deterministic for any input
/// order of benches inside the sets.
std::vector<ChangePoint> detect_change_points(
    const std::vector<SnapshotSet>& sets,
    const ChangePointOptions& opts = {});

/// Human-readable report.  Contains the literal line "no change points"
/// when `points` is empty (the CI negative control greps for it).
std::string render_change_points(const std::vector<ChangePoint>& points);

}  // namespace tarr::insight
