#pragma once

#include <memory>
#include <string>

#include "topology/fattree.hpp"
#include "topology/intranode.hpp"
#include "topology/network.hpp"
#include "topology/routing.hpp"

/// \file machine.hpp
/// A Machine = compute nodes (each with the intra-node NodeShape) attached to
/// a network.  It owns the global core numbering used by layouts, mapping
/// heuristics and the cost model: cores are numbered node-major, then
/// socket-major inside a node, exactly like MPI's notion of "slots".

namespace tarr::topology {

/// Immutable description of the whole cluster.
class Machine {
 public:
  /// One node per host endpoint in `net`.  The default policy requires every
  /// host to be routable and throws PartitionedError otherwise; pass
  /// AllowUnreachable to model a degraded fabric where some hosts lost
  /// connectivity (fault::DegradedTopology builds machines this way) — the
  /// node/core numbering is unaffected, and routing queries between split
  /// pairs throw the structured error at use time.
  explicit Machine(NodeShape shape, SwitchGraph net,
                   Router::HostPolicy policy = Router::HostPolicy::RequireAll);

  /// The paper's testbed: GPC-like fat-tree with `num_nodes` dual-socket
  /// quad-core nodes (8 cores per node).
  static Machine gpc(int num_nodes, NodeShape shape = NodeShape{});

  /// A machine whose nodes all hang off one crossbar switch.
  static Machine single_switch(int num_nodes, NodeShape shape = NodeShape{});

  int num_nodes() const { return net_.num_hosts(); }
  int cores_per_node() const { return shape_.cores_per_node(); }
  int total_cores() const { return num_nodes() * cores_per_node(); }

  const NodeShape& shape() const { return shape_; }
  const SwitchGraph& network() const { return net_; }
  const Router& router() const { return *router_; }

  /// Node that hosts global core c.
  NodeId node_of_core(CoreId c) const;
  /// Node-local index (0 .. cores_per_node-1) of global core c.
  int local_core(CoreId c) const;
  /// Socket of global core c within its node.
  SocketId socket_of_core(CoreId c) const;
  /// L3 complex of global core c within its socket (0 on flat sockets).
  int complex_of_core(CoreId c) const;
  /// Global core id from (node, node-local core).
  CoreId core_id(NodeId node, int local) const;

  /// Network hops between the nodes of two cores (0 if same node).
  int network_hops_between_cores(CoreId a, CoreId b) const;

  /// Human-readable summary (node count, shape, network description).
  std::string describe() const;

 private:
  NodeShape shape_;
  SwitchGraph net_;
  std::unique_ptr<Router> router_;
};

}  // namespace tarr::topology
