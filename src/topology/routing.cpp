#include "topology/routing.hpp"

#include <cstdint>
#include <deque>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace tarr::topology {

namespace {

/// Deterministic spreading hash used to pick among equal-length candidates.
/// Depends on (dst, current vertex) only — destination-based forwarding.
std::uint32_t route_hash(NodeId dst, NetVertexId at) {
  std::uint32_t h = static_cast<std::uint32_t>(dst) * 0x9e3779b9u;
  h ^= static_cast<std::uint32_t>(at) * 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}

}  // namespace

std::string Partitioned::describe() const {
  std::ostringstream os;
  os << "hosts split into " << components.size() << " component(s):";
  constexpr std::size_t kMaxComponents = 8;
  constexpr std::size_t kMaxMembers = 8;
  for (std::size_t c = 0; c < components.size() && c < kMaxComponents; ++c) {
    os << " [";
    for (std::size_t i = 0; i < components[c].size(); ++i) {
      if (i == kMaxMembers) {
        os << " ...+" << components[c].size() - kMaxMembers;
        break;
      }
      if (i > 0) os << ' ';
      os << components[c][i];
    }
    os << ']';
  }
  if (components.size() > kMaxComponents)
    os << " ...+" << components.size() - kMaxComponents << " more";
  return os.str();
}

PartitionedError::PartitionedError(Partitioned info)
    : Error("network partitioned: " + info.describe()),
      info_(std::move(info)) {}

Partitioned host_components(const SwitchGraph& g) {
  const int V = g.num_vertices();
  std::vector<int> comp(V, -1);
  int num_comps = 0;
  std::deque<NetVertexId> queue;
  // Flood from hosts in node order so components come out ordered by their
  // smallest member.
  for (NodeId n = 0; n < g.num_hosts(); ++n) {
    const NetVertexId start = g.host_vertex(n);
    if (comp[start] != -1) continue;
    comp[start] = num_comps++;
    queue.clear();
    queue.push_back(start);
    while (!queue.empty()) {
      const NetVertexId u = queue.front();
      queue.pop_front();
      for (LinkId l : g.incident(u)) {
        const NetVertexId w = g.other_end(l, u);
        if (comp[w] == -1) {
          comp[w] = comp[u];
          queue.push_back(w);
        }
      }
    }
  }
  Partitioned out;
  out.components.resize(num_comps);
  for (NodeId n = 0; n < g.num_hosts(); ++n)
    out.components[comp[g.host_vertex(n)]].push_back(n);
  return out;
}

Router::Router(const SwitchGraph& g, HostPolicy policy)
    : graph_(&g), num_hosts_(g.num_hosts()) {
  components_ = host_components(g);
  if (policy == HostPolicy::RequireAll && components_.components.size() > 1)
    throw PartitionedError(components_);
  component_of_.assign(num_hosts_, 0);
  for (std::size_t c = 0; c < components_.components.size(); ++c)
    for (NodeId n : components_.components[c])
      component_of_[n] = static_cast<int>(c);

  const int V = g.num_vertices();
  const int H = num_hosts_;
  offset_.assign(static_cast<std::size_t>(H) * H + 1, 0);

  constexpr int kUnreached = std::numeric_limits<int>::max();
  std::vector<int> level(V);
  std::deque<NetVertexId> queue;

  // First pass per destination: BFS levels; then for every source walk the
  // level gradient picking the hashed candidate.  Two passes over (src,dst)
  // fill offsets then links.
  std::vector<std::vector<LinkId>> tmp(static_cast<std::size_t>(H) * H);

  for (NodeId dst = 0; dst < H; ++dst) {
    std::fill(level.begin(), level.end(), kUnreached);
    const NetVertexId target = g.host_vertex(dst);
    level[target] = 0;
    queue.clear();
    queue.push_back(target);
    while (!queue.empty()) {
      const NetVertexId u = queue.front();
      queue.pop_front();
      for (LinkId l : g.incident(u)) {
        const NetVertexId w = g.other_end(l, u);
        if (level[w] == kUnreached) {
          level[w] = level[u] + 1;
          queue.push_back(w);
        }
      }
    }
    for (NodeId src = 0; src < H; ++src) {
      if (src == dst) continue;
      if (component_of_[src] != component_of_[dst]) continue;  // unroutable
      NetVertexId at = g.host_vertex(src);
      TARR_REQUIRE(level[at] != kUnreached,
                   "Router: component map disagrees with BFS");
      auto& path = tmp[static_cast<std::size_t>(src) * H + dst];
      path.reserve(level[at]);
      while (at != target) {
        // Collect the downhill candidates, then pick deterministically.
        int candidates = 0;
        for (LinkId l : g.incident(at)) {
          if (level[g.other_end(l, at)] == level[at] - 1) ++candidates;
        }
        TARR_REQUIRE(candidates > 0, "Router: BFS gradient broken");
        int pick = static_cast<int>(route_hash(dst, at) %
                                    static_cast<std::uint32_t>(candidates));
        LinkId chosen = -1;
        for (LinkId l : g.incident(at)) {
          if (level[g.other_end(l, at)] == level[at] - 1 && pick-- == 0) {
            chosen = l;
            break;
          }
        }
        path.push_back(chosen);
        at = g.other_end(chosen, at);
      }
    }
  }

  std::size_t total = 0;
  for (const auto& p : tmp) total += p.size();
  links_.reserve(total);
  for (std::size_t i = 0; i < tmp.size(); ++i) {
    offset_[i] = static_cast<int>(links_.size());
    links_.insert(links_.end(), tmp[i].begin(), tmp[i].end());
  }
  offset_.back() = static_cast<int>(links_.size());
}

std::span<const LinkId> Router::path(NodeId src, NodeId dst) const {
  TARR_REQUIRE(src >= 0 && src < num_hosts_ && dst >= 0 && dst < num_hosts_,
               "Router::path: node out of range");
  if (src != dst && component_of_[src] != component_of_[dst])
    throw PartitionedError(components_);
  const std::size_t idx = static_cast<std::size_t>(src) * num_hosts_ + dst;
  return std::span<const LinkId>(links_.data() + offset_[idx],
                                 links_.data() + offset_[idx + 1]);
}

int Router::hops(NodeId src, NodeId dst) const {
  return static_cast<int>(path(src, dst).size());
}

bool Router::reachable(NodeId src, NodeId dst) const {
  TARR_REQUIRE(src >= 0 && src < num_hosts_ && dst >= 0 && dst < num_hosts_,
               "Router::reachable: node out of range");
  return src == dst || component_of_[src] == component_of_[dst];
}

}  // namespace tarr::topology
