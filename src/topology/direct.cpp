#include "topology/direct.hpp"

#include <string>
#include <vector>

#include "common/error.hpp"

namespace tarr::topology {

SwitchGraph build_torus_network(int x, int y, int z) {
  TARR_REQUIRE(x >= 1 && y >= 1 && z >= 1,
               "build_torus_network: dimensions must be >= 1");
  SwitchGraph g;
  const int n = x * y * z;
  std::vector<NetVertexId> router(n);
  auto id = [&](int i, int j, int k) { return (i * y + j) * z + k; };
  for (int i = 0; i < x; ++i)
    for (int j = 0; j < y; ++j)
      for (int k = 0; k < z; ++k)
        router[id(i, j, k)] = g.add_vertex(
            VertexKind::Switch, "r" + std::to_string(i) + "." +
                                    std::to_string(j) + "." +
                                    std::to_string(k));

  // Wrap-around neighbor links; a dimension of size 2 gets one link, size 1
  // gets none.
  auto link_dim = [&](int size, auto&& neighbor_of) {
    if (size < 2) return;
    for (int a = 0; a < (size == 2 ? 1 : size); ++a) neighbor_of(a);
  };
  for (int i = 0; i < x; ++i) {
    for (int j = 0; j < y; ++j) {
      link_dim(z, [&](int k) {
        g.add_link(router[id(i, j, k)], router[id(i, j, (k + 1) % z)]);
      });
    }
  }
  for (int i = 0; i < x; ++i) {
    for (int k = 0; k < z; ++k) {
      link_dim(y, [&](int j) {
        g.add_link(router[id(i, j, k)], router[id(i, (j + 1) % y, k)]);
      });
    }
  }
  for (int j = 0; j < y; ++j) {
    for (int k = 0; k < z; ++k) {
      link_dim(x, [&](int i) {
        g.add_link(router[id(i, j, k)], router[id((i + 1) % x, j, k)]);
      });
    }
  }

  for (NodeId node = 0; node < n; ++node) {
    const NetVertexId host =
        g.add_vertex(VertexKind::Host, "node" + std::to_string(node), node);
    g.add_link(host, router[node]);
  }
  return g;
}

SwitchGraph build_dragonfly_network(int num_nodes,
                                    const DragonflyConfig& cfg) {
  const int capacity =
      cfg.groups * cfg.routers_per_group * cfg.hosts_per_router;
  TARR_REQUIRE(num_nodes >= 1 && num_nodes <= capacity,
               "build_dragonfly_network: node count out of range");
  TARR_REQUIRE(cfg.groups >= 2 && cfg.routers_per_group >= 1 &&
                   cfg.hosts_per_router >= 1 && cfg.global_per_router >= 1,
               "build_dragonfly_network: bad parameters");
  TARR_REQUIRE(cfg.groups - 1 <=
                   cfg.routers_per_group * cfg.global_per_router,
               "build_dragonfly_network: not enough global ports for "
               "all-to-all group connectivity");

  SwitchGraph g;
  std::vector<std::vector<NetVertexId>> routers(cfg.groups);
  for (int grp = 0; grp < cfg.groups; ++grp) {
    for (int r = 0; r < cfg.routers_per_group; ++r) {
      routers[grp].push_back(g.add_vertex(
          VertexKind::Switch,
          "g" + std::to_string(grp) + ".r" + std::to_string(r)));
    }
    // Fully connected group.
    for (int a = 0; a < cfg.routers_per_group; ++a)
      for (int b = a + 1; b < cfg.routers_per_group; ++b)
        g.add_link(routers[grp][a], routers[grp][b]);
  }

  // Global links: one per group pair, endpoint routers chosen round-robin
  // within each group (the canonical "palmtree"-style distribution).
  std::vector<int> next_port(cfg.groups, 0);
  for (int a = 0; a < cfg.groups; ++a) {
    for (int b = a + 1; b < cfg.groups; ++b) {
      const int ra = next_port[a]++ % cfg.routers_per_group;
      const int rb = next_port[b]++ % cfg.routers_per_group;
      g.add_link(routers[a][ra], routers[b][rb]);
    }
  }

  for (NodeId node = 0; node < num_nodes; ++node) {
    const int router_idx = node / cfg.hosts_per_router;
    const int grp = router_idx / cfg.routers_per_group;
    const int r = router_idx % cfg.routers_per_group;
    const NetVertexId host =
        g.add_vertex(VertexKind::Host, "node" + std::to_string(node), node);
    g.add_link(host, routers[grp][r]);
  }
  return g;
}

}  // namespace tarr::topology
