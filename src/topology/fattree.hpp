#pragma once

#include "topology/network.hpp"

/// \file fattree.hpp
/// Builders for the network topologies used in the evaluation.
///
/// `build_gpc_network` reconstructs the exact topology of the GPC cluster at
/// SciNet as described in the paper (Fig 2): leaf switches each serving 30
/// compute nodes with 3 uplinks to each of two core switches (5:1 blocking),
/// where each core switch is internally a 2-level fat-tree of 18 line and 9
/// spine switches (each line switch serves 6 leaf uplink bundles and has 2
/// uplinks to each spine).

namespace tarr::topology {

/// Parameters of a GPC-style two-tier blocking fat-tree.
struct GpcTreeConfig {
  int num_leaves = 32;          ///< leaf switches
  int nodes_per_leaf = 30;      ///< compute nodes per leaf switch
  int num_cores = 2;            ///< core "switches" (each a 2-level tree)
  int uplinks_per_core = 3;     ///< cables from each leaf to each core switch
  int lines_per_core = 18;      ///< line switches inside each core switch
  int spines_per_core = 9;      ///< spine switches inside each core switch
  int leaves_per_line = 6;      ///< leaf bundles attached to each line switch
  int line_spine_capacity = 2;  ///< cables from each line to each spine
  /// Cables from each compute node to its leaf switch.  The paper's nodes
  /// inject over a single QDR cable (the default); ML-style accelerator
  /// nodes with fat NICs (tarr::probe scenarios) widen this so the
  /// oversubscribed switch fabric — not injection — is the bottleneck.
  int host_link_capacity = 1;
};

/// Validate a GpcTreeConfig: every count/capacity must be >= 1 and the
/// leaves must fit the per-core line switches.  Throws tarr::Error naming
/// the offending field; build_gpc_network calls this, so a malformed config
/// fails loudly instead of silently misconstructing the fabric.
void validate(const GpcTreeConfig& cfg);

/// Build the paper's GPC network with `num_nodes` compute nodes attached
/// (num_nodes <= num_leaves * nodes_per_leaf).  Nodes are attached to leaves
/// in order, `nodes_per_leaf` consecutive nodes per leaf.
SwitchGraph build_gpc_network(int num_nodes,
                              const GpcTreeConfig& cfg = GpcTreeConfig{});

/// A trivial one-switch (full crossbar) network: every node hangs off a
/// single switch.  Useful as a contention-free control in ablations.
SwitchGraph build_single_switch_network(int num_nodes);

/// A classic two-level fat-tree: `num_leaves` leaf switches, `nodes_per_leaf`
/// nodes each, `num_spines` spine switches, `up_capacity` cables from every
/// leaf to every spine.  Oversubscription = nodes_per_leaf /
/// (num_spines*up_capacity).
SwitchGraph build_two_level_fattree(int num_nodes, int nodes_per_leaf,
                                    int num_spines, int up_capacity = 1);

}  // namespace tarr::topology
