#pragma once

#include <span>
#include <vector>

#include "topology/network.hpp"

/// \file routing.hpp
/// Deterministic destination-based routing over a SwitchGraph, modeling the
/// static LFT routing of InfiniBand fabrics.
///
/// For every (src node, dst node) pair the router selects one shortest path.
/// At each hop, the outgoing link is chosen among the shortest-path
/// candidates by a deterministic function of (destination, current switch) —
/// the same flavor of spreading as D-mod-K / ftree routing: traffic to
/// different destinations fans out across parallel uplinks, while all traffic
/// to one destination follows a fixed path (so two flows to the same place
/// genuinely contend, which is what produces the paper's congestion effects).

namespace tarr::topology {

/// Precomputed all-pairs single-path routes between host endpoints.
class Router {
 public:
  /// Builds routes for every ordered pair of hosts in `g`.  The graph must be
  /// connected across all hosts.  The referenced graph must outlive the
  /// router.
  explicit Router(const SwitchGraph& g);

  /// The sequence of links from host(src) to host(dst); empty iff src == dst.
  std::span<const LinkId> path(NodeId src, NodeId dst) const;

  /// Number of links on the route (0 iff src == dst).
  int hops(NodeId src, NodeId dst) const;

  /// The network this router was built for.
  const SwitchGraph& graph() const { return *graph_; }

 private:
  const SwitchGraph* graph_;
  int num_hosts_;
  /// Flattened storage: paths_[offset_[src*H+dst] .. offset_[src*H+dst+1]).
  std::vector<int> offset_;
  std::vector<LinkId> links_;
};

}  // namespace tarr::topology
