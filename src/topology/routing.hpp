#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "topology/network.hpp"

/// \file routing.hpp
/// Deterministic destination-based routing over a SwitchGraph, modeling the
/// static LFT routing of InfiniBand fabrics.
///
/// For every (src node, dst node) pair the router selects one shortest path.
/// At each hop, the outgoing link is chosen among the shortest-path
/// candidates by a deterministic function of (destination, current switch) —
/// the same flavor of spreading as D-mod-K / ftree routing: traffic to
/// different destinations fans out across parallel uplinks, while all traffic
/// to one destination follows a fixed path (so two flows to the same place
/// genuinely contend, which is what produces the paper's congestion effects).
///
/// Failover: constructing a Router over a degraded graph (links or switches
/// removed, see fault::FaultMask) automatically reroutes every pair onto the
/// next-shortest surviving paths with the same deterministic spreading.  When
/// failures disconnect hosts, the outcome is *structured*: the component
/// decomposition is reported through Partitioned / PartitionedError rather
/// than undefined behavior or an unexplained crash.

namespace tarr::topology {

/// Structured description of a host partition: the connected components of
/// the host set (as compute-node ids), each sorted ascending, ordered by
/// their smallest member.  One component means all hosts are mutually
/// reachable.
struct Partitioned {
  std::vector<std::vector<NodeId>> components;

  /// "hosts split into k components: [0 1 4] [2 3] ..." (components and
  /// members elided past a small prefix to keep messages bounded).
  std::string describe() const;
};

/// Thrown when an operation requires host connectivity that the (possibly
/// degraded) graph no longer provides.  Carries the full component
/// decomposition so callers can react structurally — shrink to the largest
/// component, remap, or abort — instead of parsing an error string.
class PartitionedError : public Error {
 public:
  explicit PartitionedError(Partitioned info);
  const Partitioned& info() const { return info_; }

 private:
  Partitioned info_;
};

/// Connected components of g's hosts (see Partitioned).  A host with no
/// surviving link forms a singleton component.
Partitioned host_components(const SwitchGraph& g);

/// Precomputed all-pairs single-path routes between host endpoints.
class Router {
 public:
  /// What to do when the graph's hosts are not mutually connected.
  enum class HostPolicy {
    RequireAll,        ///< throw PartitionedError at construction
    AllowUnreachable,  ///< build; path()/hops() on a split pair throw
  };

  /// Builds routes for every ordered pair of hosts in `g`.  With the default
  /// policy the graph must be connected across all hosts or construction
  /// throws PartitionedError; with AllowUnreachable the router is built for
  /// whatever connectivity survives (degraded-fabric routing) and
  /// reachable() reports per-pair status.  The referenced graph must outlive
  /// the router.
  explicit Router(const SwitchGraph& g,
                  HostPolicy policy = HostPolicy::RequireAll);

  /// The sequence of links from host(src) to host(dst); empty iff src == dst.
  /// Throws PartitionedError if the pair is not reachable.
  std::span<const LinkId> path(NodeId src, NodeId dst) const;

  /// Number of links on the route (0 iff src == dst).  Throws
  /// PartitionedError if the pair is not reachable.
  int hops(NodeId src, NodeId dst) const;

  /// True iff src and dst lie in the same surviving component (always true
  /// for src == dst).
  bool reachable(NodeId src, NodeId dst) const;

  /// True iff every host pair is routable.
  bool fully_connected() const { return components_.components.size() <= 1; }

  /// The host component decomposition this router was built over.
  const Partitioned& partition() const { return components_; }

  /// The network this router was built for.
  const SwitchGraph& graph() const { return *graph_; }

 private:
  const SwitchGraph* graph_;
  int num_hosts_;
  /// Flattened storage: paths_[offset_[src*H+dst] .. offset_[src*H+dst+1]).
  std::vector<int> offset_;
  std::vector<LinkId> links_;
  Partitioned components_;
  std::vector<int> component_of_;  // host node -> component index
};

}  // namespace tarr::topology
