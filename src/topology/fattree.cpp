#include "topology/fattree.hpp"

#include <string>
#include <vector>

#include "common/error.hpp"

namespace tarr::topology {

void validate(const GpcTreeConfig& cfg) {
  TARR_REQUIRE(cfg.num_leaves >= 1, "GpcTreeConfig: num_leaves must be >= 1");
  TARR_REQUIRE(cfg.nodes_per_leaf >= 1,
               "GpcTreeConfig: nodes_per_leaf must be >= 1");
  TARR_REQUIRE(cfg.num_cores >= 1, "GpcTreeConfig: num_cores must be >= 1");
  TARR_REQUIRE(cfg.uplinks_per_core >= 1,
               "GpcTreeConfig: uplinks_per_core must be >= 1");
  TARR_REQUIRE(cfg.lines_per_core >= 1,
               "GpcTreeConfig: lines_per_core must be >= 1");
  TARR_REQUIRE(cfg.spines_per_core >= 1,
               "GpcTreeConfig: spines_per_core must be >= 1");
  TARR_REQUIRE(cfg.leaves_per_line >= 1,
               "GpcTreeConfig: leaves_per_line must be >= 1");
  TARR_REQUIRE(cfg.line_spine_capacity >= 1,
               "GpcTreeConfig: line_spine_capacity must be >= 1");
  TARR_REQUIRE(cfg.host_link_capacity >= 1,
               "GpcTreeConfig: host_link_capacity must be >= 1");
  // Every leaf's uplinks must land on an existing line switch.
  const int lines_needed =
      (cfg.num_leaves + cfg.leaves_per_line - 1) / cfg.leaves_per_line;
  TARR_REQUIRE(lines_needed <= cfg.lines_per_core,
               "GpcTreeConfig: leaves do not fit the line switches");
}

SwitchGraph build_gpc_network(int num_nodes, const GpcTreeConfig& cfg) {
  validate(cfg);
  TARR_REQUIRE(num_nodes >= 1, "build_gpc_network: need at least one node");
  TARR_REQUIRE(num_nodes <= cfg.num_leaves * cfg.nodes_per_leaf,
               "build_gpc_network: too many nodes for the tree");

  SwitchGraph g;

  // Leaf switches.
  std::vector<NetVertexId> leaves;
  leaves.reserve(cfg.num_leaves);
  for (int l = 0; l < cfg.num_leaves; ++l)
    leaves.push_back(
        g.add_vertex(VertexKind::LeafSwitch, "leaf" + std::to_string(l)));

  // Core switches: each is a 2-level tree of line and spine switches.  A
  // leaf's 3 uplinks to a core switch land on the line switch responsible for
  // that leaf (6 leaves per line switch on GPC).
  std::vector<std::vector<NetVertexId>> lines(cfg.num_cores);
  for (int c = 0; c < cfg.num_cores; ++c) {
    std::vector<NetVertexId> spines;
    spines.reserve(cfg.spines_per_core);
    for (int s = 0; s < cfg.spines_per_core; ++s)
      spines.push_back(g.add_vertex(
          VertexKind::SpineSwitch,
          "core" + std::to_string(c) + ".spine" + std::to_string(s)));
    for (int l = 0; l < cfg.lines_per_core; ++l) {
      const NetVertexId line = g.add_vertex(
          VertexKind::LineSwitch,
          "core" + std::to_string(c) + ".line" + std::to_string(l));
      lines[c].push_back(line);
      for (NetVertexId spine : spines)
        g.add_link(line, spine, cfg.line_spine_capacity);
    }
  }

  // Leaf -> core uplinks: one aggregated link (capacity = uplinks_per_core)
  // from every leaf to its line switch in each core switch.
  for (int l = 0; l < cfg.num_leaves; ++l) {
    const int line_idx = l / cfg.leaves_per_line;
    TARR_REQUIRE(line_idx < cfg.lines_per_core,
                 "build_gpc_network: line switch index overflow");
    for (int c = 0; c < cfg.num_cores; ++c)
      g.add_link(leaves[l], lines[c][line_idx], cfg.uplinks_per_core);
  }

  // Compute nodes, attached to consecutive leaves.
  for (NodeId n = 0; n < num_nodes; ++n) {
    const NetVertexId host =
        g.add_vertex(VertexKind::Host, "node" + std::to_string(n), n);
    g.add_link(host, leaves[n / cfg.nodes_per_leaf], cfg.host_link_capacity);
  }
  return g;
}

SwitchGraph build_single_switch_network(int num_nodes) {
  TARR_REQUIRE(num_nodes >= 1, "build_single_switch_network: need >= 1 node");
  SwitchGraph g;
  const NetVertexId sw = g.add_vertex(VertexKind::Switch, "xbar");
  for (NodeId n = 0; n < num_nodes; ++n) {
    const NetVertexId host =
        g.add_vertex(VertexKind::Host, "node" + std::to_string(n), n);
    g.add_link(host, sw, 1);
  }
  return g;
}

SwitchGraph build_two_level_fattree(int num_nodes, int nodes_per_leaf,
                                    int num_spines, int up_capacity) {
  TARR_REQUIRE(num_nodes >= 1, "build_two_level_fattree: num_nodes must be >= 1");
  TARR_REQUIRE(nodes_per_leaf >= 1,
               "build_two_level_fattree: nodes_per_leaf must be >= 1");
  TARR_REQUIRE(num_spines >= 1,
               "build_two_level_fattree: num_spines must be >= 1");
  TARR_REQUIRE(up_capacity >= 1,
               "build_two_level_fattree: up_capacity must be >= 1");
  SwitchGraph g;
  const int num_leaves = (num_nodes + nodes_per_leaf - 1) / nodes_per_leaf;
  std::vector<NetVertexId> spines;
  spines.reserve(num_spines);
  for (int s = 0; s < num_spines; ++s)
    spines.push_back(
        g.add_vertex(VertexKind::SpineSwitch, "spine" + std::to_string(s)));
  std::vector<NetVertexId> leaves;
  leaves.reserve(num_leaves);
  for (int l = 0; l < num_leaves; ++l) {
    const NetVertexId leaf =
        g.add_vertex(VertexKind::LeafSwitch, "leaf" + std::to_string(l));
    leaves.push_back(leaf);
    for (NetVertexId spine : spines) g.add_link(leaf, spine, up_capacity);
  }
  for (NodeId n = 0; n < num_nodes; ++n) {
    const NetVertexId host =
        g.add_vertex(VertexKind::Host, "node" + std::to_string(n), n);
    g.add_link(host, leaves[n / nodes_per_leaf], 1);
  }
  return g;
}

}  // namespace tarr::topology
