#pragma once

#include <array>

#include "topology/network.hpp"

/// \file direct.hpp
/// Direct-network builders beyond the paper's fat-tree: 3D torus (Blue
/// Gene / Cray style) and dragonfly.  Both reuse the generic SwitchGraph /
/// Router machinery — every node owns a router vertex, and routing remains
/// deterministic shortest-path with destination-based spreading.  These
/// support the "other systems" direction of the paper's related work
/// (e.g., Bhatele et al.'s mesh mapping) and the cross-topology ablation.

namespace tarr::topology {

/// Build an X x Y x Z torus: one router per node, wrap-around links in each
/// dimension, host attached to its router.  Any dimension may be 1 (mesh
/// degenerates gracefully; a dimension of 2 gets a single link, not a
/// double link).
SwitchGraph build_torus_network(int x, int y, int z);

/// Parameters of a canonical dragonfly(a, p, h) network.
struct DragonflyConfig {
  int groups = 9;             ///< g groups
  int routers_per_group = 4;  ///< a routers per group (fully connected)
  int hosts_per_router = 2;   ///< p hosts per router
  /// Global links per router (h); the g*(g-1)/2 group pairs are distributed
  /// round-robin over the a*h global ports of each group.  Requires
  /// groups - 1 <= routers_per_group * global_per_router.
  int global_per_router = 2;
};

/// Build a dragonfly network with `num_nodes` hosts attached (num_nodes <=
/// groups * routers_per_group * hosts_per_router), filling routers in
/// order.
SwitchGraph build_dragonfly_network(int num_nodes,
                                    const DragonflyConfig& cfg = DragonflyConfig{});

}  // namespace tarr::topology
