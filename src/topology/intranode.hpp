#pragma once

#include "common/error.hpp"
#include "common/types.hpp"

/// \file intranode.hpp
/// Intra-node hardware model (the hwloc-equivalent substrate).
///
/// The paper's testbed nodes are two quad-core Xeon sockets, each socket a
/// NUMA domain with its own memory and L3, connected by QPI.  The mapping
/// heuristics only consume *logical distances* between cores (hwloc-style).
///
/// Beyond the paper's machine, the model supports the deeper hierarchy its
/// §VII names as future work ("systems having a more complicated intra-node
/// topology with a larger number of cores per node"): each socket may be
/// subdivided into L3 *complexes* (CCX-style core groups), adding one more
/// locality level between "same socket" and "same core".

namespace tarr::topology {

/// Shape of one compute node: sockets x cores_per_socket, optionally
/// subdivided into L3 complexes of cores_per_complex cores each.
struct NodeShape {
  int sockets = 2;
  int cores_per_socket = 4;
  /// 0 = one complex per socket (the paper's flat-socket nodes); otherwise
  /// must divide cores_per_socket.
  int cores_per_complex = 0;

  int cores_per_node() const { return sockets * cores_per_socket; }
  int complexes_per_socket() const {
    return cores_per_complex > 0 ? cores_per_socket / cores_per_complex : 1;
  }
};

/// Locality level between two cores of the same node, from closest to
/// furthest.
enum class IntraLevel {
  SameCore,
  SameComplex,   ///< same socket, same L3 complex
  CrossComplex,  ///< same socket, different L3 complex
  CrossSocket,
};

/// Position of a core inside its node.
struct CoreLocation {
  SocketId socket = 0;
  int complex_in_socket = 0;
  int core_in_socket = 0;
};

/// Decompose a node-local core index (0 .. cores_per_node-1) into its
/// socket / complex / core coordinates.  Cores are numbered socket-major,
/// complex-major, matching how hwloc enumerates PUs.
inline CoreLocation core_location(const NodeShape& shape, int local_core) {
  TARR_REQUIRE(local_core >= 0 && local_core < shape.cores_per_node(),
               "core_location: local core out of range");
  TARR_REQUIRE(shape.cores_per_complex == 0 ||
                   shape.cores_per_socket % shape.cores_per_complex == 0,
               "core_location: complexes must tile the socket");
  CoreLocation loc;
  loc.socket = local_core / shape.cores_per_socket;
  loc.core_in_socket = local_core % shape.cores_per_socket;
  loc.complex_in_socket =
      shape.cores_per_complex > 0
          ? loc.core_in_socket / shape.cores_per_complex
          : 0;
  return loc;
}

/// Locality level of two cores of the *same* node.
inline IntraLevel intranode_level(const NodeShape& shape, int core_a,
                                  int core_b) {
  if (core_a == core_b) return IntraLevel::SameCore;
  const CoreLocation a = core_location(shape, core_a);
  const CoreLocation b = core_location(shape, core_b);
  if (a.socket != b.socket) return IntraLevel::CrossSocket;
  return a.complex_in_socket == b.complex_in_socket
             ? IntraLevel::SameComplex
             : IntraLevel::CrossComplex;
}

/// hwloc-style logical distance between two cores of the same node:
///   0 - same core, 1 - same socket (shared L3), 2 - different sockets.
/// Kept for the paper's flat-socket machines; deeper shapes should use
/// intranode_level().
inline int intranode_distance(const NodeShape& shape, int core_a, int core_b) {
  switch (intranode_level(shape, core_a, core_b)) {
    case IntraLevel::SameCore:
      return 0;
    case IntraLevel::SameComplex:
    case IntraLevel::CrossComplex:
      return 1;
    case IntraLevel::CrossSocket:
      return 2;
  }
  return 2;
}

}  // namespace tarr::topology
