#include "topology/network.hpp"

#include <array>
#include <sstream>

#include "common/error.hpp"

namespace tarr::topology {

const char* to_string(VertexKind k) {
  switch (k) {
    case VertexKind::Host:
      return "host";
    case VertexKind::LeafSwitch:
      return "leaf";
    case VertexKind::LineSwitch:
      return "line";
    case VertexKind::SpineSwitch:
      return "spine";
    case VertexKind::Switch:
      return "switch";
  }
  return "?";
}

NetVertexId SwitchGraph::add_vertex(VertexKind kind, std::string name,
                                    NodeId node) {
  const NetVertexId id = static_cast<NetVertexId>(vertices_.size());
  TARR_REQUIRE(kind == VertexKind::Host || node == -1,
               "add_vertex: only host vertices carry a node index");
  vertices_.push_back(NetVertex{kind, std::move(name), node});
  incident_.emplace_back();
  if (kind == VertexKind::Host) {
    TARR_REQUIRE(node >= 0, "host vertex requires a node index");
    if (static_cast<std::size_t>(node) >= host_of_node_.size())
      host_of_node_.resize(node + 1, -1);
    TARR_REQUIRE(host_of_node_[node] == -1,
                 "duplicate host vertex for node " + std::to_string(node));
    host_of_node_[node] = id;
  }
  return id;
}

LinkId SwitchGraph::add_link(NetVertexId a, NetVertexId b, int capacity) {
  TARR_REQUIRE(a >= 0 && a < num_vertices() && b >= 0 && b < num_vertices(),
               "add_link: endpoint out of range");
  TARR_REQUIRE(a != b, "add_link: self-loop");
  TARR_REQUIRE(capacity >= 1, "add_link: capacity must be >= 1");
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(NetLink{a, b, capacity});
  incident_[a].push_back(id);
  incident_[b].push_back(id);
  return id;
}

const NetVertex& SwitchGraph::vertex(NetVertexId v) const {
  TARR_REQUIRE(v >= 0 && v < num_vertices(), "vertex: id out of range");
  return vertices_[v];
}

const NetLink& SwitchGraph::link(LinkId l) const {
  TARR_REQUIRE(l >= 0 && l < num_links(), "link: id out of range");
  return links_[l];
}

const std::vector<LinkId>& SwitchGraph::incident(NetVertexId v) const {
  TARR_REQUIRE(v >= 0 && v < num_vertices(), "incident: id out of range");
  return incident_[v];
}

NetVertexId SwitchGraph::other_end(LinkId l, NetVertexId from) const {
  const NetLink& ln = link(l);
  TARR_REQUIRE(ln.a == from || ln.b == from,
               "other_end: vertex not an endpoint of link");
  return ln.a == from ? ln.b : ln.a;
}

NetVertexId SwitchGraph::host_vertex(NodeId node) const {
  TARR_REQUIRE(node >= 0 &&
                   static_cast<std::size_t>(node) < host_of_node_.size() &&
                   host_of_node_[node] != -1,
               "host_vertex: no host for node " + std::to_string(node));
  return host_of_node_[node];
}

SwitchGraph SwitchGraph::with_failed_links(
    const std::vector<LinkId>& failed) const {
  std::vector<char> dead(links_.size(), 0);
  for (LinkId l : failed) {
    TARR_REQUIRE(l >= 0 && l < num_links(),
                 "with_failed_links: link id out of range");
    dead[l] = 1;
  }
  SwitchGraph g;
  for (const auto& v : vertices_) g.add_vertex(v.kind, v.name, v.node);
  for (std::size_t l = 0; l < links_.size(); ++l) {
    if (!dead[l]) g.add_link(links_[l].a, links_[l].b, links_[l].capacity);
  }
  return g;
}

std::string SwitchGraph::describe() const {
  std::array<int, 5> counts{};
  for (const auto& v : vertices_) counts[static_cast<int>(v.kind)]++;
  int cables = 0;
  for (const auto& l : links_) cables += l.capacity;
  std::ostringstream os;
  os << "SwitchGraph: " << num_vertices() << " vertices ("
     << counts[static_cast<int>(VertexKind::Host)] << " hosts, "
     << counts[static_cast<int>(VertexKind::LeafSwitch)] << " leaf, "
     << counts[static_cast<int>(VertexKind::LineSwitch)] << " line, "
     << counts[static_cast<int>(VertexKind::SpineSwitch)] << " spine, "
     << counts[static_cast<int>(VertexKind::Switch)] << " generic), "
     << num_links() << " logical links / " << cables << " cables";
  return os.str();
}

}  // namespace tarr::topology
