#include "topology/distance.hpp"

#include <cstdint>
#include <fstream>
#include <limits>

#include "common/error.hpp"
#include "prof/profiler.hpp"

namespace tarr::topology {

namespace {

/// Magic header of the on-disk distance-matrix format.
constexpr std::uint32_t kDistanceFileMagic = 0x74615244u;  // "DRat"
constexpr std::uint32_t kDistanceFileVersion = 1;

}  // namespace

float intra_level_weight(const DistanceConfig& cfg, IntraLevel level) {
  switch (level) {
    case IntraLevel::SameCore:
      return cfg.same_core;
    case IntraLevel::SameComplex:
      return cfg.same_socket;
    case IntraLevel::CrossComplex:
      return cfg.cross_complex;
    case IntraLevel::CrossSocket:
      return cfg.cross_socket;
  }
  return cfg.cross_socket;
}

DistanceMatrix::DistanceMatrix(int n, float fill)
    : n_(n), d_(static_cast<std::size_t>(n) * n, fill) {
  TARR_REQUIRE(n >= 1, "DistanceMatrix: size must be >= 1");
}

void DistanceMatrix::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  TARR_REQUIRE(out.good(), "DistanceMatrix::save: cannot open " + path);
  const std::uint32_t header[3] = {kDistanceFileMagic, kDistanceFileVersion,
                                   static_cast<std::uint32_t>(n_)};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(d_.data()),
            static_cast<std::streamsize>(d_.size() * sizeof(float)));
  TARR_REQUIRE(out.good(), "DistanceMatrix::save: write failed for " + path);
}

DistanceMatrix DistanceMatrix::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  TARR_REQUIRE(in.good(), "DistanceMatrix::load: cannot open " + path);
  std::uint32_t header[3] = {};
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  TARR_REQUIRE(in.good() && header[0] == kDistanceFileMagic,
               "DistanceMatrix::load: not a distance-matrix file: " + path);
  TARR_REQUIRE(header[1] == kDistanceFileVersion,
               "DistanceMatrix::load: unsupported version in " + path);
  const int n = static_cast<int>(header[2]);
  TARR_REQUIRE(n >= 1, "DistanceMatrix::load: corrupt size in " + path);
  DistanceMatrix d(n);
  in.read(reinterpret_cast<char*>(d.d_.data()),
          static_cast<std::streamsize>(d.d_.size() * sizeof(float)));
  TARR_REQUIRE(in.gcount() ==
                   static_cast<std::streamsize>(d.d_.size() * sizeof(float)),
               "DistanceMatrix::load: truncated file " + path);
  return d;
}

DistanceMatrix extract_distances(const Machine& m, const DistanceConfig& cfg) {
  const int total = m.total_cores();
  const int cpn = m.cores_per_node();
  prof::ProfScope pscope("distance-extraction");
  prof::count("distance.cells", static_cast<double>(total) * total);
  DistanceMatrix d(total);

  // Intra-node block template: identical for every node, computed once.
  std::vector<float> intra(static_cast<std::size_t>(cpn) * cpn);
  for (int a = 0; a < cpn; ++a) {
    for (int b = 0; b < cpn; ++b) {
      intra[static_cast<std::size_t>(a) * cpn + b] =
          intra_level_weight(cfg, intranode_level(m.shape(), a, b));
    }
  }

  const Router& router = m.router();
  for (NodeId na = 0; na < m.num_nodes(); ++na) {
    for (NodeId nb = na; nb < m.num_nodes(); ++nb) {
      if (na == nb) {
        for (int a = 0; a < cpn; ++a)
          for (int b = 0; b < cpn; ++b)
            d.set(m.core_id(na, a), m.core_id(na, b),
                  intra[static_cast<std::size_t>(a) * cpn + b]);
      } else {
        // On a degraded fabric (AllowUnreachable router) a split pair is
        // "infinitely far": mappers naturally avoid it, and any schedule that
        // would actually route across the cut fails structurally instead.
        const float dist =
            router.reachable(na, nb)
                ? cfg.inter_node_base +
                      cfg.per_hop * static_cast<float>(router.hops(na, nb))
                : std::numeric_limits<float>::infinity();
        for (int a = 0; a < cpn; ++a)
          for (int b = 0; b < cpn; ++b)
            d.set(m.core_id(na, a), m.core_id(nb, b), dist);
      }
    }
  }
  return d;
}

DistanceMatrix extract_node_distances(const Machine& m,
                                      const DistanceConfig& cfg) {
  prof::ProfScope pscope("distance-extraction:node");
  prof::count("distance.cells",
              static_cast<double>(m.num_nodes()) * m.num_nodes());
  DistanceMatrix d(m.num_nodes());
  const Router& router = m.router();
  for (NodeId a = 0; a < m.num_nodes(); ++a)
    for (NodeId b = a + 1; b < m.num_nodes(); ++b)
      d.set(a, b,
            router.reachable(a, b)
                ? cfg.inter_node_base +
                      cfg.per_hop * static_cast<float>(router.hops(a, b))
                : std::numeric_limits<float>::infinity());
  return d;
}

DistanceMatrix extract_intranode_distances(const Machine& m,
                                           const DistanceConfig& cfg) {
  const int cpn = m.cores_per_node();
  prof::ProfScope pscope("distance-extraction:intra");
  prof::count("distance.cells", static_cast<double>(cpn) * cpn);
  DistanceMatrix d(cpn);
  for (int a = 0; a < cpn; ++a) {
    for (int b = a + 1; b < cpn; ++b) {
      d.set(a, b, intra_level_weight(cfg, intranode_level(m.shape(), a, b)));
    }
  }
  return d;
}

}  // namespace tarr::topology
