#pragma once

#include <string>
#include <vector>

#include "topology/intranode.hpp"
#include "topology/machine.hpp"

/// \file distance.hpp
/// Physical distance extraction — the hwloc + InfiniBand-tools substitute.
///
/// The paper extracts core-to-core distances once (intra-node via hwloc,
/// inter-node via IB tools), saves them, and feeds only this matrix to the
/// mapping heuristics.  This module reproduces that contract: a symmetric
/// core x core matrix where intra-socket < cross-socket < any network
/// distance, and network distance grows with switch hops.
///
/// On a degraded machine (fault::DegradedTopology, AllowUnreachable router)
/// the extraction still succeeds: pairs of nodes with no surviving route are
/// priced at +infinity, so every mapping heuristic transparently consumes
/// the degraded topology and steers traffic away from the cut.

namespace tarr::topology {

/// Weights used to combine intra-node logical distances with network hop
/// counts into one scale.  Defaults keep every inter-node distance strictly
/// larger than every intra-node one (the property the heuristics rely on).
struct DistanceConfig {
  float same_core = 0.0f;
  /// Same socket, same L3 complex (the only intra-socket level on the
  /// paper's flat-socket nodes).
  float same_socket = 1.0f;
  /// Same socket, different L3 complex (deep NodeShapes only).
  float cross_complex = 1.5f;
  float cross_socket = 2.0f;
  /// Inter-node distance = inter_node_base + per_hop * (switch hops).
  float inter_node_base = 10.0f;
  float per_hop = 5.0f;
};

/// Weight of one intra-node locality level under `cfg` (the scale shared by
/// extract_distances and tarr::probe's inferred matrices).
float intra_level_weight(const DistanceConfig& cfg, IntraLevel level);

/// Dense symmetric core-to-core distance matrix.
class DistanceMatrix {
 public:
  DistanceMatrix(int n, float fill = 0.0f);

  int size() const { return n_; }
  float at(CoreId a, CoreId b) const { return d_[idx(a, b)]; }
  void set(CoreId a, CoreId b, float v) {
    d_[idx(a, b)] = v;
    d_[idx(b, a)] = v;
  }

  /// Row view (distance from core a to every core).
  const float* row(CoreId a) const { return d_.data() + idx(a, 0); }

  /// Persist the matrix to a binary file.  The paper assumes distances are
  /// "extracted once, and saved for future references"; this is the saving
  /// half.  Throws tarr::Error on I/O failure.
  void save(const std::string& path) const;

  /// Load a matrix previously written by save().  Validates the header and
  /// size; throws tarr::Error on mismatch or I/O failure.
  static DistanceMatrix load(const std::string& path);

 private:
  std::size_t idx(CoreId a, CoreId b) const {
    return static_cast<std::size_t>(a) * n_ + b;
  }
  int n_;
  std::vector<float> d_;
};

/// Extract the full distance matrix of `m` (the operation the paper times in
/// Fig 7a; it is intended to run once and be cached by the caller).
DistanceMatrix extract_distances(const Machine& m,
                                 const DistanceConfig& cfg = DistanceConfig{});

/// Node-to-node distance matrix (used when reordering a leader communicator
/// in the hierarchical path: one "core" per node at the network level).
/// Distance = inter_node_base + per_hop * hops, 0 on the diagonal.
DistanceMatrix extract_node_distances(
    const Machine& m, const DistanceConfig& cfg = DistanceConfig{});

/// Intra-node core distance matrix for one node of `m` (used when reordering
/// the per-node communicators in the hierarchical path).
DistanceMatrix extract_intranode_distances(
    const Machine& m, const DistanceConfig& cfg = DistanceConfig{});

}  // namespace tarr::topology
