#include "topology/machine.hpp"

#include <sstream>

#include "common/error.hpp"

namespace tarr::topology {

Machine::Machine(NodeShape shape, SwitchGraph net, Router::HostPolicy policy)
    : shape_(shape), net_(std::move(net)) {
  TARR_REQUIRE(shape_.sockets >= 1 && shape_.cores_per_socket >= 1,
               "Machine: node shape must be non-empty");
  TARR_REQUIRE(net_.num_hosts() >= 1, "Machine: network has no hosts");
  router_ = std::make_unique<Router>(net_, policy);
}

Machine Machine::gpc(int num_nodes, NodeShape shape) {
  return Machine(shape, build_gpc_network(num_nodes));
}

Machine Machine::single_switch(int num_nodes, NodeShape shape) {
  return Machine(shape, build_single_switch_network(num_nodes));
}

NodeId Machine::node_of_core(CoreId c) const {
  TARR_REQUIRE(c >= 0 && c < total_cores(), "node_of_core: out of range");
  return c / cores_per_node();
}

int Machine::local_core(CoreId c) const {
  TARR_REQUIRE(c >= 0 && c < total_cores(), "local_core: out of range");
  return c % cores_per_node();
}

SocketId Machine::socket_of_core(CoreId c) const {
  return core_location(shape_, local_core(c)).socket;
}

int Machine::complex_of_core(CoreId c) const {
  return core_location(shape_, local_core(c)).complex_in_socket;
}

CoreId Machine::core_id(NodeId node, int local) const {
  TARR_REQUIRE(node >= 0 && node < num_nodes(), "core_id: node out of range");
  TARR_REQUIRE(local >= 0 && local < cores_per_node(),
               "core_id: local core out of range");
  return node * cores_per_node() + local;
}

int Machine::network_hops_between_cores(CoreId a, CoreId b) const {
  const NodeId na = node_of_core(a);
  const NodeId nb = node_of_core(b);
  return na == nb ? 0 : router_->hops(na, nb);
}

std::string Machine::describe() const {
  std::ostringstream os;
  os << "Machine: " << num_nodes() << " nodes x (" << shape_.sockets
     << " sockets x " << shape_.cores_per_socket << " cores) = "
     << total_cores() << " cores\n"
     << net_.describe();
  return os.str();
}

}  // namespace tarr::topology
