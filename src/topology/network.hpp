#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

/// \file network.hpp
/// Generic switch-graph model of an interconnection network.
///
/// Vertices are either host endpoints (one per compute node) or switches;
/// undirected links carry a `capacity` equal to the number of parallel
/// physical cables they aggregate (the GPC tree has e.g. 3 cables between a
/// leaf switch and each core switch).  Routing and the cost model treat a
/// capacity-c link as c units of bandwidth shared by the transfers mapped
/// onto it.

namespace tarr::topology {

/// Role of a vertex in the network graph (informational; routing is generic).
enum class VertexKind { Host, LeafSwitch, LineSwitch, SpineSwitch, Switch };

/// Human-readable name of a vertex kind (for topology dumps).
const char* to_string(VertexKind k);

/// One vertex of the network graph.
struct NetVertex {
  VertexKind kind = VertexKind::Switch;
  std::string name;
  /// For Host vertices: the compute-node index this endpoint serves.
  NodeId node = -1;
};

/// One undirected link.  `capacity` >= 1 is the number of aggregated cables.
struct NetLink {
  NetVertexId a = -1;
  NetVertexId b = -1;
  int capacity = 1;
};

/// An undirected multigraph of hosts and switches with per-link capacities.
class SwitchGraph {
 public:
  /// Add a vertex; returns its id.
  NetVertexId add_vertex(VertexKind kind, std::string name, NodeId node = -1);

  /// Add an undirected link of the given capacity; returns its id.
  LinkId add_link(NetVertexId a, NetVertexId b, int capacity = 1);

  int num_vertices() const { return static_cast<int>(vertices_.size()); }
  int num_links() const { return static_cast<int>(links_.size()); }

  const NetVertex& vertex(NetVertexId v) const;
  const NetLink& link(LinkId l) const;

  /// Links incident to v (link ids).
  const std::vector<LinkId>& incident(NetVertexId v) const;

  /// The endpoint of link l that is not `from`.
  NetVertexId other_end(LinkId l, NetVertexId from) const;

  /// Host vertex id for compute node `node` (there must be exactly one).
  NetVertexId host_vertex(NodeId node) const;

  /// Number of host vertices.
  int num_hosts() const { return static_cast<int>(host_of_node_.size()); }

  /// Multi-line textual description (switch counts, link counts, radixes).
  std::string describe() const;

  /// Failure injection: a copy of this graph with the given links removed
  /// (cables cut).  Vertex ids are preserved; link ids are renumbered.
  /// Removing a host's only link leaves it unreachable — constructing a
  /// Router over such a graph throws, which is the intended detection.
  SwitchGraph with_failed_links(const std::vector<LinkId>& failed) const;

 private:
  std::vector<NetVertex> vertices_;
  std::vector<NetLink> links_;
  std::vector<std::vector<LinkId>> incident_;
  std::vector<NetVertexId> host_of_node_;
};

}  // namespace tarr::topology
