#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

/// \file stage_verifier.hpp
/// Runtime verification of collective schedules as the simulation engine
/// executes them.
///
/// The simmpi Engine is an *interpreter* of transfer schedules: a silently
/// malformed schedule (two writers racing on one block, an out-of-range
/// copy, a stage that prices nothing) still produces a plausible-looking
/// simulated time, corrupting every number derived from it.  StageVerifier
/// shadows the Engine's begin_stage/copy/combine/end_stage protocol and
/// throws tarr::Error — naming the violated invariant — the moment a
/// schedule breaks one of the rules below.
///
/// Invariants enforced per stage:
///  * protocol     — transfers only inside an open stage; stages never nest;
///  * bounds       — endpoint ranks and block ranges inside the buffer;
///  * determinism  — no block is overwritten twice, or both overwritten and
///                   combined, within one stage (combine+combine is legal:
///                   the combine op is commutative and associative);
///  * pricing      — a transfer between two distinct ranks that share a
///                   physical core must not exist (it would be priced as a
///                   remote message for what is physically a local copy);
///  * progress     — a closed stage must have carried at least one transfer
///                   (an empty stage is a schedule bug: it costs nothing but
///                   skews stage counts and observer streams).
///
/// The verifier is independent of the Engine so it can be unit-tested
/// directly and linked anywhere; the Engine instantiates one per run when
/// the build has TARR_SLOW_CHECKS=ON.

namespace tarr::check {

/// See file comment.
class StageVerifier {
 public:
  /// `core_of_rank[r]` is the physical core hosting rank r; `buf_blocks` is
  /// the per-rank buffer length in blocks.
  StageVerifier(int num_ranks, int buf_blocks, std::vector<CoreId> core_of_rank);

  /// Mirror of Engine::begin_stage().
  void on_begin_stage();

  /// Mirror of Engine::copy()/combine(); `combining` selects the semantics.
  void on_transfer(Rank src, int src_off, Rank dst, int dst_off, int nblocks,
                   bool combining);

  /// Mirror of Engine::end_stage().
  void on_end_stage();

  /// Number of stages that passed verification so far.
  int stages_verified() const { return stages_verified_; }

 private:
  enum class WriteKind : std::uint8_t { None = 0, Overwrite, Combine };

  std::size_t cell(Rank r, int block) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(buf_blocks_) +
           static_cast<std::size_t>(block);
  }

  int num_ranks_;
  int buf_blocks_;
  std::vector<CoreId> core_of_rank_;
  bool stage_open_ = false;
  int stage_transfers_ = 0;
  int stages_verified_ = 0;
  std::vector<WriteKind> writes_;       // (rank, block) -> kind, open stage
  std::vector<std::size_t> touched_;    // cells to reset at end_stage
};

}  // namespace tarr::check
