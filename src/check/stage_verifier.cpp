#include "check/stage_verifier.hpp"

#include <string>

#include "common/error.hpp"

namespace tarr::check {

namespace {

std::string at(Rank r, int block) {
  return " (rank " + std::to_string(r) + ", block " + std::to_string(block) +
         ")";
}

}  // namespace

StageVerifier::StageVerifier(int num_ranks, int buf_blocks,
                             std::vector<CoreId> core_of_rank)
    : num_ranks_(num_ranks),
      buf_blocks_(buf_blocks),
      core_of_rank_(std::move(core_of_rank)) {
  TARR_REQUIRE(num_ranks_ >= 1, "StageVerifier: num_ranks must be >= 1");
  TARR_REQUIRE(buf_blocks_ >= 1, "StageVerifier: buf_blocks must be >= 1");
  TARR_REQUIRE(static_cast<int>(core_of_rank_.size()) == num_ranks_,
               "StageVerifier: core_of_rank size must equal num_ranks");
  writes_.assign(cell(num_ranks_ - 1, buf_blocks_ - 1) + 1, WriteKind::None);
}

void StageVerifier::on_begin_stage() {
  TARR_REQUIRE(!stage_open_,
               "schedule invariant violated [protocol]: begin_stage while the "
               "previous stage is still open");
  stage_open_ = true;
  stage_transfers_ = 0;
}

void StageVerifier::on_transfer(Rank src, int src_off, Rank dst, int dst_off,
                                int nblocks, bool combining) {
  TARR_REQUIRE(stage_open_,
               "schedule invariant violated [protocol]: transfer outside an "
               "open stage");
  TARR_REQUIRE(src >= 0 && src < num_ranks_ && dst >= 0 && dst < num_ranks_,
               "schedule invariant violated [bounds]: endpoint rank outside "
               "the communicator");
  TARR_REQUIRE(nblocks >= 1,
               "schedule invariant violated [bounds]: transfer of zero blocks");
  TARR_REQUIRE(src_off >= 0 && src_off + nblocks <= buf_blocks_,
               "schedule invariant violated [bounds]: source range outside "
               "the buffer");
  TARR_REQUIRE(dst_off >= 0 && dst_off + nblocks <= buf_blocks_,
               "schedule invariant violated [bounds]: destination range "
               "outside the buffer");
  TARR_REQUIRE(src == dst || core_of_rank_[src] != core_of_rank_[dst],
               "schedule invariant violated [pricing]: transfer between "
               "distinct ranks sharing core " +
                   std::to_string(core_of_rank_[src]) +
                   " would be priced as remote");

  const WriteKind kind = combining ? WriteKind::Combine : WriteKind::Overwrite;
  for (int k = 0; k < nblocks; ++k) {
    const std::size_t c = cell(dst, dst_off + k);
    const WriteKind prev = writes_[c];
    if (prev == WriteKind::None) {
      writes_[c] = kind;
      touched_.push_back(c);
      continue;
    }
    // Two combines commute; every other pairing is order-dependent.
    TARR_REQUIRE(prev == WriteKind::Combine && kind == WriteKind::Combine,
                 std::string("schedule invariant violated [determinism]: ") +
                     (prev == WriteKind::Overwrite && kind == WriteKind::Overwrite
                          ? "write-write conflict"
                          : "write-combine conflict") +
                     at(dst, dst_off + k) + " within one stage");
  }
  ++stage_transfers_;
}

void StageVerifier::on_end_stage() {
  TARR_REQUIRE(stage_open_,
               "schedule invariant violated [protocol]: end_stage without an "
               "open stage");
  TARR_REQUIRE(stage_transfers_ >= 1,
               "schedule invariant violated [progress]: stage " +
                   std::to_string(stages_verified_) +
                   " closed with zero transfers");
  for (const std::size_t c : touched_) writes_[c] = WriteKind::None;
  touched_.clear();
  stage_open_ = false;
  ++stages_verified_;
}

}  // namespace tarr::check
