#pragma once

#include <string>
#include <vector>

/// \file mapping_verifier.hpp
/// Verification of mapper output at every Mapper boundary.
///
/// Every mapper in this library receives the initial assignment
/// `rank_to_slot[i] = slot hosting rank i` and must return a *bijection onto
/// the same slot universe*: each input slot used exactly once, no slot
/// invented, no slot dropped.  A mapper that silently violates this produces
/// a "reordered communicator" in which two ranks share a core or a core
/// falls out of the communicator — and every simulated time measured over it
/// is meaningless.  These checks throw tarr::Error naming the offending
/// mapper and the violated invariant.

namespace tarr::check {

/// Throws unless `result` is a bijection onto the slot universe of `input`
/// (`mapper` names the source in the error message).  Also rejects a
/// malformed *input* (duplicate slots), which indicates corruption upstream
/// of the mapper.
void verify_mapping(const std::string& mapper, const std::vector<int>& input,
                    const std::vector<int>& result);

/// Hierarchical two-level composition check: the composed per-rank core
/// assignment must still be a bijection onto the original communicator's
/// core set (leader-level permutation of node blocks composed with per-node
/// intra-level permutations preserves bijectivity; this verifies the
/// composition code did not break it).
void verify_hierarchical_composition(const std::vector<int>& original_cores,
                                     const std::vector<int>& composed_cores);

}  // namespace tarr::check
