#pragma once

/// \file check.hpp
/// Umbrella header of tarr::check, the runtime invariant-verification
/// subsystem (see docs/CHECKING.md).
///
/// Three verifiers, one per layer of trust:
///  * StageVerifier      — schedules the engine executes are well-formed
///                         (check/stage_verifier.hpp);
///  * verify_mapping     — mappers return bijections onto the slot universe
///                         (check/mapping_verifier.hpp);
///  * CollectiveAuditor  — finished Data-mode runs satisfy the collective's
///                         contract (check/collective_auditor.hpp, Engine
///                         adapters in check/audit_engine.hpp).
///
/// Fast/slow tiers: the verifiers themselves are always compiled and
/// directly callable (tests use them in every configuration).  Their
/// *hot-path hooks* — the engine consulting a StageVerifier on every
/// transfer, heuristics re-validating their own output — are compiled in
/// only when the build sets TARR_SLOW_CHECKS=ON (see TARR_CHECK_SLOW in
/// common/error.hpp); one-shot boundaries such as the reorder framework
/// validate unconditionally.

#include "check/collective_auditor.hpp"  // IWYU pragma: export
#include "check/mapping_verifier.hpp"    // IWYU pragma: export
#include "check/stage_verifier.hpp"      // IWYU pragma: export
