#pragma once

#include "check/collective_auditor.hpp"
#include "common/error.hpp"
#include "simmpi/engine.hpp"

/// \file audit_engine.hpp
/// One-line adapters binding the CollectiveAuditor to a simmpi::Engine.
///
/// Header-only on purpose: the check library itself must not link against
/// simmpi (the Engine consults check::StageVerifier, so the link dependency
/// runs the other way); these inline wrappers compile into the caller, which
/// already links both.  The engine must outlive the returned auditor.

namespace tarr::check {

/// Auditor reading the engine's final Data-mode block tags.
inline CollectiveAuditor make_auditor(const simmpi::Engine& eng) {
  TARR_REQUIRE(eng.mode() == simmpi::ExecMode::Data,
               "collective audit requires a Data-mode engine");
  return CollectiveAuditor(
      eng.comm().size(),
      [&eng](Rank r, int block) { return eng.block(r, block); });
}

/// Audit a finished allgather run (any algorithm, any reordering, any §V-B
/// fix): every rank must hold all p tags in original-rank order.
inline void audit_allgather(const simmpi::Engine& eng) {
  make_auditor(eng).expect_allgather();
}

/// Audit a finished gather run: the root holds all p tags in rank order.
inline void audit_gather(const simmpi::Engine& eng) {
  make_auditor(eng).expect_gather();
}

/// Audit a finished bcast run: `root_tag` arrived everywhere.
inline void audit_bcast(const simmpi::Engine& eng, std::uint32_t root_tag) {
  make_auditor(eng).expect_bcast(root_tag);
}

/// Audit a finished scatter run: new rank j holds tag oldrank[j] at block j.
inline void audit_scatter(const simmpi::Engine& eng,
                          const std::vector<Rank>& oldrank) {
  make_auditor(eng).expect_scatter(oldrank);
}

/// Audit a shrink-and-continue allgather over survivors (`parent_rank[j]` =
/// survivor j's rank in the pre-failure communicator of `parent_size`).
inline void audit_shrunken_allgather(const simmpi::Engine& eng,
                                     int parent_size,
                                     const std::vector<Rank>& parent_rank) {
  make_auditor(eng).expect_shrunken_allgather(parent_size, parent_rank);
}

/// Audit a shrink-and-continue gather over survivors.
inline void audit_shrunken_gather(const simmpi::Engine& eng, int parent_size,
                                  const std::vector<Rank>& parent_rank) {
  make_auditor(eng).expect_shrunken_gather(parent_size, parent_rank);
}

/// Audit a shrink-and-continue bcast over survivors.
inline void audit_shrunken_bcast(const simmpi::Engine& eng, int parent_size,
                                 const std::vector<Rank>& parent_rank,
                                 std::uint32_t root_tag) {
  make_auditor(eng).expect_shrunken_bcast(parent_size, parent_rank, root_tag);
}

}  // namespace tarr::check
