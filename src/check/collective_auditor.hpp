#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

/// \file collective_auditor.hpp
/// Static cross-check of a finished Data-mode collective run against the
/// operation's specification.
///
/// The Data-mode engine moves real block *tags*; after a collective
/// completes, the final tag layout is fully determined by the operation's
/// contract and independent of the algorithm, the rank reordering, and the
/// §V-B order-fix mechanism used.  The auditor states those contracts once —
/// replacing the per-test ad-hoc verification loops — and throws tarr::Error
/// naming the first (rank, block) that deviates.
///
/// Tag conventions audited (matching the collective layer's seeding):
///  * allgather:  every rank's block b carries tag b (original-rank order);
///  * gather:     the root (new rank 0) holds tag b at block b, in order;
///  * bcast:      every rank's block 0 carries the root's message tag;
///  * scatter:    new rank j holds tag oldrank[j] at block j;
///  * alltoall:   new rank j's receive slot p+i carries tag(i, oldrank[j]).
///
/// The auditor reads blocks through a callback so it stays independent of
/// the Engine type (and unit-testable against synthetic layouts); see
/// check/audit_engine.hpp for the one-line Engine adapters.

namespace tarr::check {

/// Reads the final tag of (rank, block) from a finished Data-mode run.
using BlockReader = std::function<std::uint32_t(Rank, int)>;

/// See file comment.
class CollectiveAuditor {
 public:
  /// The reader must remain valid for the auditor's lifetime.
  CollectiveAuditor(int num_ranks, BlockReader reader);

  /// Allgather contract: every rank holds all p tags in original-rank order.
  void expect_allgather() const;

  /// Gather contract: the root (new rank 0) holds all p tags in original-
  /// rank order.  Other ranks' buffers are scratch and not audited.
  void expect_gather() const;

  /// Bcast contract: every rank's block 0 carries `root_tag`.
  void expect_bcast(std::uint32_t root_tag) const;

  /// Scatter contract: new rank j holds tag oldrank[j] at block j.
  void expect_scatter(const std::vector<Rank>& oldrank) const;

  /// Alltoall contract: new rank j's receive slot recv_base + i carries
  /// `tag_of(i, oldrank[j])` for every original peer i.
  void expect_alltoall(
      const std::vector<Rank>& oldrank, int recv_base,
      const std::function<std::uint32_t(Rank, Rank)>& tag_of) const;

  /// Shrunken-run contracts (fault tolerance).  After dead processes are
  /// excised from a size-`parent_size` communicator, the survivors run the
  /// collective at size s = num_ranks.  `parent_rank[j]` is survivor j's
  /// rank in the pre-failure communicator; a valid shrink preserves the
  /// survivors' relative order, so the vector must be a strictly increasing
  /// injection into [0, parent_size).  The data contract is then the
  /// standard size-s contract over the survivor universe.
  void expect_shrunken_allgather(int parent_size,
                                 const std::vector<Rank>& parent_rank) const;

  /// Shrunken gather: the surviving root holds all s survivor tags in order.
  void expect_shrunken_gather(int parent_size,
                              const std::vector<Rank>& parent_rank) const;

  /// Shrunken bcast: `root_tag` reached every survivor.
  void expect_shrunken_bcast(int parent_size,
                             const std::vector<Rank>& parent_rank,
                             std::uint32_t root_tag) const;

 private:
  void expect_tag(Rank r, int block, std::uint32_t want,
                  const char* op) const;

  /// Validate the survivor bookkeeping shared by the shrunken contracts.
  void expect_survivor_map(int parent_size,
                           const std::vector<Rank>& parent_rank) const;

  int num_ranks_;
  BlockReader reader_;
};

}  // namespace tarr::check
