#include "check/collective_auditor.hpp"

#include <string>
#include <utility>

#include "common/error.hpp"

namespace tarr::check {

CollectiveAuditor::CollectiveAuditor(int num_ranks, BlockReader reader)
    : num_ranks_(num_ranks), reader_(std::move(reader)) {
  TARR_REQUIRE(num_ranks_ >= 1, "CollectiveAuditor: num_ranks must be >= 1");
  TARR_REQUIRE(static_cast<bool>(reader_),
               "CollectiveAuditor: block reader must be callable");
}

void CollectiveAuditor::expect_tag(Rank r, int block, std::uint32_t want,
                                   const char* op) const {
  const std::uint32_t got = reader_(r, block);
  TARR_REQUIRE(got == want,
               std::string(op) + " contract violated: rank " +
                   std::to_string(r) + " block " + std::to_string(block) +
                   " carries tag " + std::to_string(got) + ", expected " +
                   std::to_string(want));
}

void CollectiveAuditor::expect_allgather() const {
  for (Rank r = 0; r < num_ranks_; ++r)
    for (int b = 0; b < num_ranks_; ++b)
      expect_tag(r, b, static_cast<std::uint32_t>(b), "allgather");
}

void CollectiveAuditor::expect_gather() const {
  for (int b = 0; b < num_ranks_; ++b)
    expect_tag(0, b, static_cast<std::uint32_t>(b), "gather");
}

void CollectiveAuditor::expect_bcast(std::uint32_t root_tag) const {
  for (Rank r = 0; r < num_ranks_; ++r) expect_tag(r, 0, root_tag, "bcast");
}

void CollectiveAuditor::expect_scatter(const std::vector<Rank>& oldrank) const {
  TARR_REQUIRE(static_cast<int>(oldrank.size()) == num_ranks_,
               "scatter audit: oldrank size mismatch");
  for (Rank j = 0; j < num_ranks_; ++j)
    expect_tag(j, j, static_cast<std::uint32_t>(oldrank[j]), "scatter");
}

void CollectiveAuditor::expect_survivor_map(
    int parent_size, const std::vector<Rank>& parent_rank) const {
  TARR_REQUIRE(parent_size >= num_ranks_,
               "shrunken audit: more survivors than parent ranks");
  TARR_REQUIRE(static_cast<int>(parent_rank.size()) == num_ranks_,
               "shrunken audit: parent_rank size mismatch");
  Rank prev = -1;
  for (Rank j = 0; j < num_ranks_; ++j) {
    TARR_REQUIRE(parent_rank[j] >= 0 && parent_rank[j] < parent_size,
                 "shrunken audit: parent rank out of range");
    TARR_REQUIRE(parent_rank[j] > prev,
                 "shrunken audit: survivors must keep their relative order");
    prev = parent_rank[j];
  }
}

void CollectiveAuditor::expect_shrunken_allgather(
    int parent_size, const std::vector<Rank>& parent_rank) const {
  expect_survivor_map(parent_size, parent_rank);
  expect_allgather();
}

void CollectiveAuditor::expect_shrunken_gather(
    int parent_size, const std::vector<Rank>& parent_rank) const {
  expect_survivor_map(parent_size, parent_rank);
  expect_gather();
}

void CollectiveAuditor::expect_shrunken_bcast(
    int parent_size, const std::vector<Rank>& parent_rank,
    std::uint32_t root_tag) const {
  expect_survivor_map(parent_size, parent_rank);
  expect_bcast(root_tag);
}

void CollectiveAuditor::expect_alltoall(
    const std::vector<Rank>& oldrank, int recv_base,
    const std::function<std::uint32_t(Rank, Rank)>& tag_of) const {
  TARR_REQUIRE(static_cast<int>(oldrank.size()) == num_ranks_,
               "alltoall audit: oldrank size mismatch");
  for (Rank j = 0; j < num_ranks_; ++j)
    for (Rank i = 0; i < num_ranks_; ++i)
      expect_tag(j, recv_base + i, tag_of(i, oldrank[j]), "alltoall");
}

}  // namespace tarr::check
