#include "check/mapping_verifier.hpp"

#include <map>

#include "common/error.hpp"

namespace tarr::check {

namespace {

/// Multiset of slots as a slot -> count map (slot universes are sparse when
/// a communicator covers a subset of the machine's cores).  An ordered map:
/// the counts are iterated below, and which offending slot an error message
/// names must not depend on hash-table layout.
std::map<int, int> slot_counts(const std::vector<int>& slots) {
  std::map<int, int> counts;
  for (const int s : slots) ++counts[s];
  return counts;
}

}  // namespace

void verify_mapping(const std::string& mapper, const std::vector<int>& input,
                    const std::vector<int>& result) {
  TARR_REQUIRE(result.size() == input.size(),
               "mapping invariant violated [" + mapper + "]: returned " +
                   std::to_string(result.size()) + " assignments for " +
                   std::to_string(input.size()) + " ranks");

  const std::map<int, int> universe = slot_counts(input);
  for (const auto& [slot, count] : universe) {
    TARR_REQUIRE(count == 1, "mapping invariant violated [" + mapper +
                                 "]: input slot " + std::to_string(slot) +
                                 " hosts more than one rank");
  }

  std::map<int, int> seen;
  for (std::size_t new_rank = 0; new_rank < result.size(); ++new_rank) {
    const int slot = result[new_rank];
    TARR_REQUIRE(universe.contains(slot),
                 "mapping invariant violated [" + mapper + "]: new rank " +
                     std::to_string(new_rank) + " assigned slot " +
                     std::to_string(slot) + " outside the slot universe");
    TARR_REQUIRE(++seen[slot] == 1,
                 "mapping invariant violated [" + mapper + "]: slot " +
                     std::to_string(slot) +
                     " assigned to more than one rank (not a bijection)");
  }
}

void verify_hierarchical_composition(const std::vector<int>& original_cores,
                                     const std::vector<int>& composed_cores) {
  verify_mapping("hierarchical composition", original_cores, composed_cores);
}

}  // namespace tarr::check
