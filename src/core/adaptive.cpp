#include "core/adaptive.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"

namespace tarr::core {

namespace {

TopoAllgatherConfig default_of(TopoAllgatherConfig cfg) {
  cfg.mapper = MapperKind::None;
  return cfg;
}

}  // namespace

AdaptiveAllgather::AdaptiveAllgather(ReorderFramework& framework,
                                     const simmpi::Communicator& comm,
                                     TopoAllgatherConfig variant_cfg,
                                     std::vector<Bytes> probe_sizes)
    : default_path_(framework, comm, default_of(variant_cfg)),
      reordered_path_(framework, comm, variant_cfg),
      probes_(std::move(probe_sizes)) {
  TARR_REQUIRE(variant_cfg.mapper != MapperKind::None,
               "AdaptiveAllgather: variant must reorder");
  TARR_REQUIRE(!probes_.empty(), "AdaptiveAllgather: no probe sizes");
  TARR_REQUIRE(std::is_sorted(probes_.begin(), probes_.end()),
               "AdaptiveAllgather: probe sizes must ascend");
  decisions_.reserve(probes_.size());
  for (Bytes msg : probes_) {
    decisions_.push_back(reordered_path_.latency(msg) <
                         default_path_.latency(msg));
  }
}

int AdaptiveAllgather::nearest_probe(Bytes msg) const {
  int best = 0;
  Bytes best_gap = std::abs(probes_[0] - msg);
  for (std::size_t i = 1; i < probes_.size(); ++i) {
    const Bytes gap = std::abs(probes_[i] - msg);
    if (gap < best_gap) {
      best_gap = gap;
      best = static_cast<int>(i);
    }
  }
  return best;
}

bool AdaptiveAllgather::use_reordered(Bytes msg) const {
  return decisions_[nearest_probe(msg)];
}

Usec AdaptiveAllgather::latency(Bytes msg) {
  return use_reordered(msg) ? reordered_path_.latency(msg)
                            : default_path_.latency(msg);
}

}  // namespace tarr::core
