#include "core/refine.hpp"

#include <utility>

#include "collectives/allgather.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "prof/profiler.hpp"
#include "simmpi/engine.hpp"
#include "trace/sink.hpp"

namespace tarr::core {

RefineResult refine_by_simulation(const simmpi::Communicator& original,
                                  const ReorderedComm& start,
                                  const MappingObjective& objective,
                                  const RefineOptions& opts) {
  const int p = original.size();
  TARR_REQUIRE(start.comm.size() == p,
               "refine_by_simulation: size mismatch");
  TARR_REQUIRE(opts.max_swaps >= 0, "refine_by_simulation: negative budget");
  prof::ProfScope pscope("refine");
  WallTimer timer;
  Rng rng(opts.seed);

  std::vector<CoreId> cores = start.comm.rank_to_core();
  std::vector<Rank> oldrank = start.oldrank;

  const Usec start_objective = objective(start.comm, oldrank);
  Usec best = start_objective;
  int evaluations = 1;
  int accepted = 0;

  for (int it = 0; it < opts.max_swaps && p >= 2; ++it) {
    // Propose swapping the placements (and identities) of two new ranks.
    const Rank a = static_cast<Rank>(rng.next_below(p));
    Rank b = static_cast<Rank>(rng.next_below(p - 1));
    if (b >= a) ++b;
    std::swap(cores[a], cores[b]);
    std::swap(oldrank[a], oldrank[b]);

    const simmpi::Communicator candidate = original.reordered(cores);
    const Usec t = objective(candidate, oldrank);
    ++evaluations;
    if (t < best) {
      best = t;
      ++accepted;
    } else {
      std::swap(cores[a], cores[b]);  // revert
      std::swap(oldrank[a], oldrank[b]);
    }
  }

  const double seconds = timer.seconds();
  if (trace::TraceSink* sink = trace::thread_sink()) {
    sink->add_count("refine.swaps_accepted", accepted);
    sink->add_count("refine.swaps_rejected", evaluations - 1 - accepted);
    sink->on_wall_span(trace::WallSpan{"refine", seconds});
  }
  if (prof::Profiler* prof = prof::thread_profiler()) {
    prof->count("refine.evaluations", evaluations);
    prof->count("refine.swaps_accepted", accepted);
  }
  return RefineResult{
      ReorderedComm{original.reordered(cores), std::move(oldrank),
                    start.mapping_seconds + seconds},
      start_objective, best, accepted, evaluations};
}

MappingObjective allgather_objective(collectives::AllgatherAlgo algo,
                                     Bytes msg, collectives::OrderFix fix,
                                     const simmpi::CostConfig& cost) {
  return [algo, msg, fix, cost](const simmpi::Communicator& comm,
                                const std::vector<Rank>& oldrank) {
    simmpi::Engine eng(comm, cost, simmpi::ExecMode::Timed, msg,
                       comm.size());
    return collectives::run_allgather(
        eng, collectives::AllgatherOptions{algo, fix}, oldrank);
  };
}

}  // namespace tarr::core
