#include "core/framework.hpp"

#include "check/mapping_verifier.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"
#include "common/timer.hpp"
#include "mapping/comparators.hpp"
#include "mapping/heuristics.hpp"
#include "prof/profiler.hpp"

namespace tarr::core {

ReorderFramework::ReorderFramework(const topology::Machine& m)
    : ReorderFramework(m, Options{}) {}

ReorderFramework::ReorderFramework(const topology::Machine& m, Options opts)
    : machine_(&m), opts_(opts) {}

const topology::DistanceMatrix& ReorderFramework::distances() {
  if (!dist_) {
    WallTimer t;
    dist_.emplace(topology::extract_distances(*machine_, opts_.distances));
    extract_seconds_ = t.seconds();
    // Wall spans follow the same fallback as decision counters: the
    // framework's own sink, else whatever ambient sink the caller (e.g. a
    // traced TopoAllgather) installed.
    if (trace::TraceSink* out =
            sink_ != nullptr ? sink_ : trace::thread_sink())
      out->on_wall_span(
          trace::WallSpan{"distance-extraction", extract_seconds_});
  }
  return *dist_;
}

ReorderedComm ReorderFramework::identity_reorder(
    const simmpi::Communicator& comm) const {
  return ReorderedComm{comm, identity_permutation(comm.size()), 0.0};
}

ReorderedComm ReorderFramework::reorder(const simmpi::Communicator& comm,
                                        mapping::Pattern pattern) {
  const auto mapper = mapping::make_heuristic(pattern);
  return reorder_with(comm, *mapper);
}

ReorderedComm ReorderFramework::reorder_with(const simmpi::Communicator& comm,
                                             const mapping::Mapper& mapper) {
  if (!opts_.enabled) return identity_reorder(comm);
  prof::ProfScope pscope("reorder");
  const topology::DistanceMatrix& d = distances();

  WallTimer t;
  Rng rng(opts_.seed);
  std::vector<int> new_rank_to_core;
  {
    // Heuristics have pure signatures; their decision counters reach the
    // sink through the ambient thread sink.  A null framework sink keeps
    // whatever ambient sink an outer scope installed.
    trace::ScopedThreadSink ambient(sink_ != nullptr ? sink_
                                                     : trace::thread_sink());
    new_rank_to_core = mapper.checked_map(comm.rank_to_core(), d, rng);
  }
  const double map_seconds = t.seconds();
  if (trace::TraceSink* out = sink_ != nullptr ? sink_ : trace::thread_sink())
    out->on_wall_span(trace::WallSpan{"map:" + mapper.name(), map_seconds});

  simmpi::Communicator reordered = comm.reordered(std::move(new_rank_to_core));
  // oldrank[new] = original rank of the process acting as new rank `new`.
  const std::vector<Rank> old_to_new = comm.permutation_to(reordered);
  return ReorderedComm{std::move(reordered), invert_permutation(old_to_new),
                       map_seconds};
}

ReorderedComm ReorderFramework::reorder_for_graph(
    const simmpi::Communicator& comm, const graph::WeightedGraph& pattern,
    GraphMapperKind kind) {
  if (!opts_.enabled) return identity_reorder(comm);
  prof::ProfScope pscope("reorder");
  TARR_REQUIRE(pattern.num_vertices() == comm.size(),
               "reorder_for_graph: pattern size != communicator size");
  const topology::DistanceMatrix& d = distances();

  WallTimer t;
  Rng rng(opts_.seed);
  std::vector<int> new_rank_to_core;
  {
    trace::ScopedThreadSink ambient(sink_ != nullptr ? sink_
                                                     : trace::thread_sink());
    new_rank_to_core =
        kind == GraphMapperKind::Greedy
            ? mapping::greedy_graph_map(pattern, comm.rank_to_core(), d, rng)
            : mapping::scotch_like_map(pattern, comm.rank_to_core(), rng);
  }
  check::verify_mapping(kind == GraphMapperKind::Greedy ? "greedy-graph"
                                                        : "scotch-like",
                        comm.rank_to_core(), new_rank_to_core);
  const double map_seconds = t.seconds();
  if (trace::TraceSink* out = sink_ != nullptr ? sink_ : trace::thread_sink())
    out->on_wall_span(trace::WallSpan{
        kind == GraphMapperKind::Greedy ? "map:greedy-graph"
                                        : "map:scotch-like",
        map_seconds});

  simmpi::Communicator reordered = comm.reordered(std::move(new_rank_to_core));
  const std::vector<Rank> old_to_new = comm.permutation_to(reordered);
  return ReorderedComm{std::move(reordered), invert_permutation(old_to_new),
                       map_seconds};
}

ReorderedComm ReorderFramework::reorder_hierarchical(
    const simmpi::Communicator& comm, const mapping::Mapper& leader_mapper,
    const mapping::Mapper* intra_mapper) {
  if (!opts_.enabled) return identity_reorder(comm);
  prof::ProfScope pscope("reorder");
  TARR_REQUIRE(comm.node_contiguous(),
               "reorder_hierarchical: communicator must be node-contiguous");
  const auto& m = *machine_;
  const int cpn = m.cores_per_node();
  const int nodes = comm.size() / cpn;

  if (!node_dist_)
    node_dist_.emplace(
        topology::extract_node_distances(m, opts_.distances));
  if (!intra_dist_)
    intra_dist_.emplace(
        topology::extract_intranode_distances(m, opts_.distances));

  WallTimer t;
  Rng rng(opts_.seed);
  trace::ScopedThreadSink ambient(sink_ != nullptr ? sink_
                                                   : trace::thread_sink());

  // Leader level: "ranks" are node blocks in original order, slots are the
  // NodeIds hosting them.
  std::vector<int> block_to_node(nodes);
  for (int b = 0; b < nodes; ++b) block_to_node[b] = comm.node_of(b * cpn);
  const std::vector<int> new_block_to_node =
      leader_mapper.checked_map(block_to_node, *node_dist_, rng);

  // Original block index for each node (to find that node's rank group).
  std::vector<int> block_of_node(m.num_nodes(), -1);
  for (int b = 0; b < nodes; ++b) block_of_node[block_to_node[b]] = b;

  std::vector<CoreId> new_rank_to_core(comm.size());
  for (int nb = 0; nb < nodes; ++nb) {
    const NodeId node = new_block_to_node[nb];
    const int ob = block_of_node[node];
    // Intra level: the node's ranks in original order, slots are their
    // node-local cores.
    std::vector<int> local_slots(cpn);
    for (int k = 0; k < cpn; ++k)
      local_slots[k] = m.local_core(comm.core_of(ob * cpn + k));
    std::vector<int> new_local = local_slots;
    if (intra_mapper != nullptr)
      new_local = intra_mapper->checked_map(local_slots, *intra_dist_, rng);
    for (int k = 0; k < cpn; ++k)
      new_rank_to_core[nb * cpn + k] = m.core_id(node, new_local[k]);
  }
  // The two-level composition must still be a bijection onto the original
  // core set; a bug in the block/core bookkeeping above would otherwise
  // surface only as nonsense timings.
  check::verify_hierarchical_composition(comm.rank_to_core(),
                                         new_rank_to_core);
  const double map_seconds = t.seconds();
  if (trace::TraceSink* out = sink_ != nullptr ? sink_ : trace::thread_sink())
    out->on_wall_span(trace::WallSpan{
        "map:hierarchical:" + leader_mapper.name(), map_seconds});

  simmpi::Communicator reordered = comm.reordered(std::move(new_rank_to_core));
  const std::vector<Rank> old_to_new = comm.permutation_to(reordered);
  return ReorderedComm{std::move(reordered), invert_permutation(old_to_new),
                       map_seconds};
}

ReorderedComm ReorderFramework::reorder_hierarchical(
    const simmpi::Communicator& comm, mapping::Pattern leader_pattern,
    bool intra_reorder, mapping::Pattern intra_pattern) {
  const auto leader = mapping::make_heuristic(leader_pattern);
  std::unique_ptr<mapping::Mapper> intra;
  if (intra_reorder) intra = mapping::make_heuristic(intra_pattern);
  return reorder_hierarchical(comm, *leader, intra.get());
}

}  // namespace tarr::core
