#pragma once

#include <vector>

#include "core/topoallgather.hpp"

/// \file adaptive.hpp
/// Adaptive reordering (§VII future work): "a runtime component is used to
/// decide whether to use the reordered communicator for a given collective
/// or not based on the potential performance improvements that each
/// heuristic can provide for various message sizes."
///
/// At construction, the adaptive layer probes a set of message sizes in
/// Timed mode against both the default and the reordered path, then routes
/// each subsequent call to whichever path won at the nearest probe size.

namespace tarr::core {

/// See file comment.
class AdaptiveAllgather {
 public:
  /// `variant_cfg` describes the reordered path (its MapperKind must not be
  /// None); the default path is the same configuration with mapper None.
  /// `probe_sizes` must be non-empty and ascending.
  AdaptiveAllgather(ReorderFramework& framework,
                    const simmpi::Communicator& comm,
                    TopoAllgatherConfig variant_cfg,
                    std::vector<Bytes> probe_sizes);

  /// Whether a message of `msg` bytes will use the reordered communicator.
  bool use_reordered(Bytes msg) const;

  /// Latency of one allgather through the adaptively chosen path.
  Usec latency(Bytes msg);

  /// Probe decisions, aligned with the probe sizes (true = reordered won).
  const std::vector<bool>& decisions() const { return decisions_; }
  const std::vector<Bytes>& probe_sizes() const { return probes_; }

 private:
  int nearest_probe(Bytes msg) const;

  TopoAllgather default_path_;
  TopoAllgather reordered_path_;
  std::vector<Bytes> probes_;
  std::vector<bool> decisions_;
};

}  // namespace tarr::core
