#pragma once

#include <map>
#include <memory>
#include <optional>

#include "collectives/allgather.hpp"
#include "collectives/hierarchical.hpp"
#include "collectives/selector.hpp"
#include "core/framework.hpp"
#include "simmpi/engine.hpp"
#include "trace/sink.hpp"

/// \file topoallgather.hpp
/// High-level topology-aware MPI_Allgather: the user-facing composition of
/// the whole stack.  A TopoAllgather object plays the role of an MPI
/// communicator whose allgather has been made topology-aware: at first use
/// of each underlying algorithm it creates the reordered communicator once
/// (per §IV, "the whole rank reordering process happens only once at
/// run-time"), then every call routes through the reordered copy with the
/// configured §V-B order fix.

namespace tarr::core {

/// Which mapping machinery to use (None reproduces the MVAPICH-default
/// baseline the paper's improvement percentages are computed against).
enum class MapperKind { None, Heuristic, ScotchLike, GreedyGraph,
                        MvapichCyclic };

const char* to_string(MapperKind k);

/// Configuration of a TopoAllgather instance.
struct TopoAllgatherConfig {
  MapperKind mapper = MapperKind::Heuristic;
  collectives::OrderFix fix = collectives::OrderFix::InitComm;
  collectives::SelectorConfig selector;
  simmpi::CostConfig cost;
  bool hierarchical = false;
  /// Overlap the hierarchical leader ring with the intra-node broadcasts
  /// (run_hier_allgather_pipelined).  Applies only when `hierarchical` and
  /// the selector picks the ring leader phase (large messages); the
  /// recursive-doubling regime stays sequential.
  bool pipelined = false;
  collectives::IntraAlgo intra = collectives::IntraAlgo::Binomial;
  /// Pattern the intra-node level of a hierarchical reorder is tuned for
  /// (BBMH by default — phase 3 moves the combined buffer and dominates the
  /// intra-node byte volume; see abl_hier_intra).
  mapping::Pattern hier_intra_pattern = mapping::Pattern::BinomialBcast;
};

/// See file comment.
class TopoAllgather {
 public:
  /// `framework` and `comm`'s machine must outlive this object.
  TopoAllgather(ReorderFramework& framework, simmpi::Communicator comm,
                TopoAllgatherConfig cfg);

  const TopoAllgatherConfig& config() const { return cfg_; }
  const simmpi::Communicator& original_comm() const { return comm_; }

  /// Simulated latency (Timed mode) of one allgather with a per-rank
  /// message of `msg` bytes.
  Usec latency(Bytes msg);

  /// Execute in Data mode, verify that every rank's output vector is in
  /// original-rank order, and return the simulated time.  Intended for
  /// small communicators (allocates p*p block tags).
  Usec run_and_check(Bytes msg);

  /// Sum of wall-clock mapping overheads of every reorder performed so far
  /// (the Fig 7b quantity for this object).
  double mapping_seconds() const { return mapping_seconds_; }

  /// The reordered communicator that a message of `msg` bytes would use
  /// (creating it if needed).
  const ReorderedComm& reordered_for(Bytes msg);

  /// Observability (tarr::trace): every engine that latency()/run_and_check()
  /// creates emits stages, transfers and link/QPI load through `sink`, and
  /// the sink is installed as the ambient thread sink around the body so
  /// reorders triggered on first use emit their Fig 7 wall spans and mapping
  /// decision counters too.  Pass nullptr to stop tracing.  `sink` must
  /// outlive the traced calls.
  void set_trace_sink(trace::TraceSink* sink) { sink_ = sink; }
  trace::TraceSink* trace_sink() const { return sink_; }

 private:
  /// Key of the reorder cache: the algorithm (leader algorithm when
  /// hierarchical) the selector picked.
  using Key = collectives::AllgatherAlgo;

  const ReorderedComm& cached_reorder(Key key);
  /// MVAPICH's own internal block->cyclic reorder for recursive doubling
  /// (§V-A1: "the rank reordering in MVAPICH just changes a block initial
  /// layout of processes to a cyclic one").  Part of the MapperKind::None
  /// baseline; fires only for block (node-contiguous) layouts, like the
  /// real library, and costs nothing at run time (the cyclic RD variant
  /// indexes blocks in place).
  const ReorderedComm* baseline_internal_reorder();
  Usec execute(simmpi::ExecMode mode, Bytes msg);

  ReorderFramework* framework_;
  simmpi::Communicator comm_;
  TopoAllgatherConfig cfg_;
  std::map<Key, ReorderedComm> cache_;
  std::optional<ReorderedComm> baseline_reorder_;
  bool baseline_reorder_computed_ = false;
  double mapping_seconds_ = 0.0;
  trace::TraceSink* sink_ = nullptr;
};

}  // namespace tarr::core
