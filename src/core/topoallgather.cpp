#include "core/topoallgather.hpp"

#include "collectives/orderfix.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"
#include "mapping/comparators.hpp"

namespace tarr::core {

using collectives::AllgatherAlgo;
using collectives::IntraAlgo;
using collectives::OrderFix;

const char* to_string(MapperKind k) {
  switch (k) {
    case MapperKind::None:
      return "default";
    case MapperKind::Heuristic:
      return "Hrstc";
    case MapperKind::ScotchLike:
      return "Scotch";
    case MapperKind::GreedyGraph:
      return "Greedy";
    case MapperKind::MvapichCyclic:
      return "MV-cyclic";
  }
  return "?";
}

namespace {

mapping::Pattern pattern_of(AllgatherAlgo algo) {
  switch (algo) {
    case AllgatherAlgo::RecursiveDoubling:
      return mapping::Pattern::RecursiveDoubling;
    case AllgatherAlgo::Ring:
      return mapping::Pattern::Ring;
    case AllgatherAlgo::Bruck:
      return mapping::Pattern::Bruck;
  }
  TARR_REQUIRE(false, "pattern_of: unknown algorithm");
  return mapping::Pattern::Ring;
}

}  // namespace

TopoAllgather::TopoAllgather(ReorderFramework& framework,
                             simmpi::Communicator comm,
                             TopoAllgatherConfig cfg)
    : framework_(&framework), comm_(std::move(comm)), cfg_(cfg) {
  TARR_REQUIRE(!(cfg_.hierarchical && cfg_.mapper == MapperKind::MvapichCyclic),
               "TopoAllgather: the MVAPICH cyclic reorder is a flat scheme");
}

const ReorderedComm& TopoAllgather::cached_reorder(Key key) {
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  const mapping::Pattern pattern = pattern_of(key);
  ReorderedComm rc = [&] {
    const bool intra_reorder = cfg_.intra == IntraAlgo::Binomial;
    switch (cfg_.mapper) {
      case MapperKind::Heuristic:
        return cfg_.hierarchical
                   ? framework_->reorder_hierarchical(comm_, pattern,
                                                      intra_reorder,
                                                      cfg_.hier_intra_pattern)
                   : framework_->reorder(comm_, pattern);
      case MapperKind::ScotchLike: {
        const auto leader = mapping::make_scotch_like_mapper(pattern);
        if (!cfg_.hierarchical) return framework_->reorder_with(comm_, *leader);
        const auto intra =
            mapping::make_scotch_like_mapper(cfg_.hier_intra_pattern);
        return framework_->reorder_hierarchical(
            comm_, *leader, intra_reorder ? intra.get() : nullptr);
      }
      case MapperKind::GreedyGraph: {
        const auto leader = mapping::make_greedy_graph_mapper(pattern);
        if (!cfg_.hierarchical) return framework_->reorder_with(comm_, *leader);
        const auto intra =
            mapping::make_greedy_graph_mapper(cfg_.hier_intra_pattern);
        return framework_->reorder_hierarchical(
            comm_, *leader, intra_reorder ? intra.get() : nullptr);
      }
      case MapperKind::MvapichCyclic: {
        const auto mapper = mapping::make_mvapich_cyclic_mapper(
            comm_.machine().cores_per_node());
        return framework_->reorder_with(comm_, *mapper);
      }
      case MapperKind::None:
        break;
    }
    TARR_REQUIRE(false, "cached_reorder: no mapper configured");
    return ReorderedComm{comm_, identity_permutation(comm_.size()), 0.0};
  }();

  mapping_seconds_ += rc.mapping_seconds;
  return cache_.emplace(key, std::move(rc)).first->second;
}

const ReorderedComm* TopoAllgather::baseline_internal_reorder() {
  if (!baseline_reorder_computed_) {
    baseline_reorder_computed_ = true;
    if (comm_.node_contiguous()) {
      const auto mapper = mapping::make_mvapich_cyclic_mapper(
          comm_.machine().cores_per_node());
      baseline_reorder_ = framework_->reorder_with(comm_, *mapper);
      // The library's built-in reorder is part of the baseline, not an
      // overhead this object introduced.
      baseline_reorder_->mapping_seconds = 0.0;
    }
  }
  return baseline_reorder_ ? &*baseline_reorder_ : nullptr;
}

Usec TopoAllgather::execute(simmpi::ExecMode mode, Bytes msg) {
  // The ambient thread sink carries the trace into reorders performed on
  // first use (ReorderFramework falls back to it when its own sink is
  // unset); the engine below gets the sink directly.
  trace::ScopedThreadSink ambient(sink_ != nullptr ? sink_
                                                   : trace::thread_sink());
  const int p = comm_.size();
  AllgatherAlgo algo;
  if (cfg_.hierarchical) {
    const int cpn = comm_.machine().cores_per_node();
    // Node chunks of cpn blocks travel between leaders.
    algo = collectives::select_allgather_algo(p / cpn, msg * cpn,
                                              cfg_.selector);
    if (algo == AllgatherAlgo::Bruck) algo = AllgatherAlgo::Ring;
  } else {
    algo = collectives::select_allgather_algo(p, msg, cfg_.selector);
  }

  const ReorderedComm* rc = nullptr;
  OrderFix fix = OrderFix::None;
  if (cfg_.mapper != MapperKind::None) {
    rc = &cached_reorder(algo);
    fix = cfg_.fix;
  } else if (!cfg_.hierarchical &&
             algo == AllgatherAlgo::RecursiveDoubling) {
    // MVAPICH-default baseline: its RD path reorders block layouts to
    // cyclic internally, indexing blocks in place at no run-time cost.  In
    // Data mode the in-place indexing is represented by an explicit end
    // shuffle so the output check still applies.
    rc = baseline_internal_reorder();
    if (rc != nullptr && mode == simmpi::ExecMode::Data)
      fix = OrderFix::EndShuffle;
  }
  const simmpi::Communicator& use_comm = rc ? rc->comm : comm_;
  const std::vector<Rank> oldrank =
      rc ? rc->oldrank : identity_permutation(p);

  simmpi::Engine eng(use_comm, cfg_.cost, mode, msg, p);
  if (sink_ != nullptr) eng.set_trace_sink(sink_);
  if (cfg_.hierarchical) {
    if (cfg_.pipelined && algo == AllgatherAlgo::Ring) {
      collectives::run_hier_allgather_pipelined(eng, cfg_.intra, fix,
                                                oldrank);
    } else {
      collectives::HierAllgatherOptions opts{algo, cfg_.intra, fix};
      collectives::run_hier_allgather(eng, opts, oldrank);
    }
  } else {
    collectives::AllgatherOptions opts{algo, fix};
    collectives::run_allgather(eng, opts, oldrank);
  }
  if (mode == simmpi::ExecMode::Data)
    collectives::check_allgather_output(eng);
  return eng.total();
}

Usec TopoAllgather::latency(Bytes msg) {
  return execute(simmpi::ExecMode::Timed, msg);
}

Usec TopoAllgather::run_and_check(Bytes msg) {
  return execute(simmpi::ExecMode::Data, msg);
}

const ReorderedComm& TopoAllgather::reordered_for(Bytes msg) {
  TARR_REQUIRE(cfg_.mapper != MapperKind::None,
               "reordered_for: no mapper configured");
  AllgatherAlgo algo;
  if (cfg_.hierarchical) {
    const int cpn = comm_.machine().cores_per_node();
    algo = collectives::select_allgather_algo(comm_.size() / cpn, msg * cpn,
                                              cfg_.selector);
    if (algo == AllgatherAlgo::Bruck) algo = AllgatherAlgo::Ring;
  } else {
    algo = collectives::select_allgather_algo(comm_.size(), msg,
                                              cfg_.selector);
  }
  return cached_reorder(algo);
}

}  // namespace tarr::core
