#include "core/info.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"

namespace tarr::core {

namespace {

std::string lower_trim(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c)))
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace

InfoConfig parse_info(
    const std::vector<std::pair<std::string, std::string>>& kv) {
  InfoConfig info;
  for (const auto& [raw_key, raw_value] : kv) {
    const std::string key = lower_trim(raw_key);
    const std::string value = lower_trim(raw_value);
    if (key == "tarr_reorder") {
      if (value == "enabled") {
        info.enabled = true;
      } else if (value == "disabled") {
        info.enabled = false;
      } else {
        TARR_REQUIRE(false, "parse_info: bad tarr_reorder value: " + value);
      }
    } else if (key == "tarr_mapper") {
      if (value == "heuristic") {
        info.config.mapper = MapperKind::Heuristic;
      } else if (value == "scotch") {
        info.config.mapper = MapperKind::ScotchLike;
      } else if (value == "greedy") {
        info.config.mapper = MapperKind::GreedyGraph;
      } else if (value == "mvapich-cyclic") {
        info.config.mapper = MapperKind::MvapichCyclic;
      } else {
        TARR_REQUIRE(false, "parse_info: bad tarr_mapper value: " + value);
      }
    } else if (key == "tarr_order_fix") {
      if (value == "initcomm") {
        info.config.fix = collectives::OrderFix::InitComm;
      } else if (value == "endshfl") {
        info.config.fix = collectives::OrderFix::EndShuffle;
      } else {
        TARR_REQUIRE(false, "parse_info: bad tarr_order_fix value: " + value);
      }
    } else if (key == "tarr_hierarchical") {
      if (value == "true") {
        info.config.hierarchical = true;
      } else if (value == "false") {
        info.config.hierarchical = false;
      } else {
        TARR_REQUIRE(false,
                     "parse_info: bad tarr_hierarchical value: " + value);
      }
    } else if (key == "tarr_intra") {
      if (value == "binomial") {
        info.config.intra = collectives::IntraAlgo::Binomial;
      } else if (value == "linear") {
        info.config.intra = collectives::IntraAlgo::Linear;
      } else {
        TARR_REQUIRE(false, "parse_info: bad tarr_intra value: " + value);
      }
    } else {
      TARR_REQUIRE(false, "parse_info: unknown info key: " + key);
    }
  }
  if (!info.enabled) info.config.mapper = MapperKind::None;
  return info;
}

InfoConfig parse_info_string(const std::string& s) {
  std::vector<std::pair<std::string, std::string>> kv;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t end = std::min(s.find(';', pos), s.size());
    const std::string segment = s.substr(pos, end - pos);
    pos = end + 1;
    if (lower_trim(segment).empty()) continue;
    const std::size_t eq = segment.find('=');
    TARR_REQUIRE(eq != std::string::npos,
                 "parse_info_string: segment without '=': " + segment);
    kv.emplace_back(segment.substr(0, eq), segment.substr(eq + 1));
  }
  return parse_info(kv);
}

}  // namespace tarr::core
