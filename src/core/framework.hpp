#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "mapping/mapper.hpp"
#include "simmpi/communicator.hpp"
#include "topology/distance.hpp"
#include "topology/machine.hpp"
#include "trace/sink.hpp"

/// \file framework.hpp
/// The run-time rank-reordering framework of §IV — the paper's primary
/// public API.
///
/// Usage mirrors the paper: physical distances are extracted once and
/// cached; for each collective communication pattern, a reordered copy of
/// the communicator is created once; subsequent collective calls are
/// conducted over the reordered copy.  An enable switch plays the role of
/// the MPI info key the paper proposes, and both overhead components the
/// paper measures (Fig 7a distance extraction, Fig 7b mapping time) are
/// reported to the caller.

namespace tarr::core {

/// A reordered communicator plus its §V-B bookkeeping and overheads.
struct ReorderedComm {
  simmpi::Communicator comm;        ///< the reordered communicator
  std::vector<Rank> oldrank;        ///< oldrank[new_rank] = original rank
  double mapping_seconds = 0.0;     ///< wall-clock cost of the mapping run
};

/// See file comment.
class ReorderFramework {
 public:
  /// Framework options.
  struct Options {
    bool enabled = true;  ///< the "info key": when false, reorders are no-ops
    std::uint64_t seed = 1;  ///< tie-breaking seed (Algorithm 1 step 5)
    topology::DistanceConfig distances;
  };

  /// The machine must outlive the framework.
  explicit ReorderFramework(const topology::Machine& m);
  ReorderFramework(const topology::Machine& m, Options opts);

  const topology::Machine& machine() const { return *machine_; }
  const Options& options() const { return opts_; }

  /// Core-level distance matrix; extracted lazily once, then cached.
  const topology::DistanceMatrix& distances();

  /// Wall-clock seconds the one-time distance extraction took (0 until the
  /// first distances() call) — the quantity of Fig 7a.
  double distance_extraction_seconds() const { return extract_seconds_; }

  /// Install a trace sink (tarr::trace): the framework then emits the Fig 7
  /// overhead decomposition as wall-clock spans ("distance-extraction",
  /// "map:<mapper>") and installs the sink as the ambient thread sink
  /// around each mapping run, so the heuristics' decision counters
  /// (placements, tie-breaks, bisection levels, refinement swaps) are
  /// collected too.  nullptr (the default) disables all of it.
  void set_trace_sink(trace::TraceSink* sink) { sink_ = sink; }
  trace::TraceSink* trace_sink() const { return sink_; }

  /// Reorder `comm` for `pattern` with the paper's fine-tuned heuristic.
  /// When the framework is disabled this returns the identity reorder with
  /// zero overhead.
  ReorderedComm reorder(const simmpi::Communicator& comm,
                        mapping::Pattern pattern);

  /// Reorder `comm` with an arbitrary mapper (Scotch-like, greedy, ...).
  ReorderedComm reorder_with(const simmpi::Communicator& comm,
                             const mapping::Mapper& mapper);

  /// Mapping engines for arbitrary pattern graphs.  Bisection (recursive
  /// bipartitioning) handles uniform-weight patterns such as halo stencils
  /// well; Greedy (heaviest-frontier-edge-first, Hoefler-Snir style) suits
  /// patterns with a pronounced weight hierarchy.
  enum class GraphMapperKind { Bisection, Greedy };

  /// General topology-aware mapping (§V's "general forms"): reorder `comm`
  /// for an arbitrary application communication pattern supplied as a
  /// weighted graph (vertex i = rank i, weights = relative traffic).  This
  /// is the path an application with a custom pattern (halo stencil,
  /// particle code, ...) uses; see graph/apppattern.hpp for ready-made
  /// builders.
  ReorderedComm reorder_for_graph(
      const simmpi::Communicator& comm, const graph::WeightedGraph& pattern,
      GraphMapperKind kind = GraphMapperKind::Bisection);

  /// Hierarchical reorder (§VI-A2): `leader_mapper` rearranges whole node
  /// blocks using node-to-node network distances, and `intra_mapper`
  /// (nullptr for the linear intra phases, which admit no reordering)
  /// rearranges each node's ranks using intra-node distances.  Requires a
  /// node-contiguous communicator; the result is again node-contiguous.
  ReorderedComm reorder_hierarchical(const simmpi::Communicator& comm,
                                     const mapping::Mapper& leader_mapper,
                                     const mapping::Mapper* intra_mapper);

  /// Hierarchical reorder with the paper's heuristics for the given leader
  /// pattern (RDMH/RMH) and, when `intra_reorder` is true, the fine-tuned
  /// heuristic for `intra_pattern` at the intra-node level.  The default is
  /// BBMH: the broadcast of the combined p-block buffer moves p/cores_per_
  /// node times more bytes per intra-node edge than the gather, so the
  /// broadcast tree dominates the intra-node traffic (the abl_hier_intra
  /// ablation contrasts this with the BGMH choice the paper's §VI-A2
  /// discussion emphasizes).
  ReorderedComm reorder_hierarchical(
      const simmpi::Communicator& comm, mapping::Pattern leader_pattern,
      bool intra_reorder,
      mapping::Pattern intra_pattern = mapping::Pattern::BinomialBcast);

 private:
  ReorderedComm identity_reorder(const simmpi::Communicator& comm) const;

  const topology::Machine* machine_;
  Options opts_;
  std::optional<topology::DistanceMatrix> dist_;
  std::optional<topology::DistanceMatrix> node_dist_;
  std::optional<topology::DistanceMatrix> intra_dist_;
  double extract_seconds_ = 0.0;
  trace::TraceSink* sink_ = nullptr;
};

}  // namespace tarr::core
