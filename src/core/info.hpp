#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/topoallgather.hpp"

/// \file info.hpp
/// MPI-info-key style configuration, as the paper proposes in §IV: "we
/// could also use an info key to allow the programmer to enable/disable the
/// whole approach for each communicator separately."
///
/// Recognized keys (all optional; unknown keys are rejected so typos fail
/// loudly, like MPI implementations' strict-info modes):
///
///   tarr_reorder       = enabled | disabled        (default enabled)
///   tarr_mapper        = heuristic | scotch | greedy | mvapich-cyclic
///                        (default heuristic)
///   tarr_order_fix     = initcomm | endshfl        (default initcomm)
///   tarr_hierarchical  = true | false              (default false)
///   tarr_intra         = binomial | linear         (default binomial)

namespace tarr::core {

/// A parsed info configuration: the TopoAllgather settings plus the master
/// enable switch (when false, callers should use MapperKind::None paths).
struct InfoConfig {
  TopoAllgatherConfig config;
  bool enabled = true;
};

/// Parse key/value pairs.  Throws tarr::Error on unknown keys or values.
InfoConfig parse_info(
    const std::vector<std::pair<std::string, std::string>>& kv);

/// Parse a compact "key=value;key=value" string (whitespace around tokens
/// is ignored; empty segments are allowed).
InfoConfig parse_info_string(const std::string& s);

}  // namespace tarr::core
