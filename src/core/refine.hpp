#pragma once

#include <functional>

#include "collectives/collective.hpp"
#include "core/framework.hpp"
#include "simmpi/costmodel.hpp"

/// \file refine.hpp
/// Simulation-guided mapping refinement — an extension beyond the paper
/// made possible by having the cost model at hand: starting from any
/// mapping (a heuristic's output, or the identity), hill-climb over rank
/// swaps using the *predicted collective latency* as the objective.  Where
/// the heuristics optimize a proxy (weighted distance), the refiner
/// optimizes the quantity the user actually cares about, at the price of
/// one simulation per candidate swap.

namespace tarr::core {

/// Objective: predicted latency of the target collective on a candidate
/// reordering (communicator + oldrank permutation).  Smaller is better.
using MappingObjective = std::function<Usec(
    const simmpi::Communicator& comm, const std::vector<Rank>& oldrank)>;

/// Options for the refinement loop.
struct RefineOptions {
  /// Candidate swaps to try (each costs one objective evaluation).
  int max_swaps = 200;
  /// Tie-break / proposal seed.
  std::uint64_t seed = 1;
};

/// Result of a refinement run.  (No default constructor: `mapping` always
/// holds a concrete communicator.)
struct RefineResult {
  ReorderedComm mapping;  ///< the best mapping found
  Usec start_objective;
  Usec final_objective;
  int accepted_swaps;
  int evaluations;
};

/// Hill-climb from `start` (a reordering of `original`): propose random
/// rank-pair swaps, keep those that lower the objective.  Never returns a
/// mapping worse than `start`.  The wall-clock cost of the search is
/// reported in mapping.mapping_seconds (added to start's).
RefineResult refine_by_simulation(const simmpi::Communicator& original,
                                  const ReorderedComm& start,
                                  const MappingObjective& objective,
                                  const RefineOptions& opts = RefineOptions{});

/// Convenience objective: flat allgather latency of `algo` with the given
/// per-rank message size and order fix, under `cost`.
MappingObjective allgather_objective(collectives::AllgatherAlgo algo,
                                     Bytes msg, collectives::OrderFix fix,
                                     const simmpi::CostConfig& cost);

}  // namespace tarr::core
