#include "fault/degraded.hpp"

namespace tarr::fault {

DegradedTopology::DegradedTopology(const topology::Machine& base,
                                   FaultMask mask)
    : base_(&base),
      mask_(std::move(mask)),
      machine_(base.shape(), mask_.apply(base.network()),
               topology::Router::HostPolicy::AllowUnreachable) {}

std::vector<NodeId> DegradedTopology::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(machine_.num_nodes());
  for (NodeId n = 0; n < machine_.num_nodes(); ++n)
    if (node_alive(n)) out.push_back(n);
  return out;
}

}  // namespace tarr::fault
