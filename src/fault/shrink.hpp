#pragma once

#include <vector>

#include "fault/degraded.hpp"
#include "simmpi/communicator.hpp"

/// \file shrink.hpp
/// ULFM-style shrink-and-continue: excise the ranks of dead nodes from a
/// communicator and rebuild a dense communicator over the survivors, on the
/// degraded machine, so collective schedules rebuilt over it route around
/// the failures automatically.
///
/// Survivors keep their relative rank order (MPI_Comm_shrink semantics).
/// If the surviving nodes no longer share one network component, continuing
/// is impossible and shrink throws the structured PartitionedError listing
/// the surviving components — never a silently-wrong communicator.

namespace tarr::fault {

/// A shrunken communicator plus the bookkeeping the auditors consume.
struct ShrunkComm {
  /// Survivors with dense new ranks, hosted on the degraded machine.
  simmpi::Communicator comm;
  /// parent_rank[j] = survivor j's rank in the parent communicator
  /// (strictly increasing — relative order is preserved).
  std::vector<Rank> parent_rank;
  /// Parent ranks that died, ascending.
  std::vector<Rank> dead_ranks;
};

/// Shrink `parent` over the failures of `topo`.  The parent may live on the
/// base or the degraded machine (both share core numbering).  Throws
/// tarr::Error when no rank survives, and topology::PartitionedError when
/// the survivors span more than one surviving network component (the error
/// carries the components restricted to the survivors' nodes).  The
/// DegradedTopology must outlive the returned communicator.
ShrunkComm shrink_communicator(const DegradedTopology& topo,
                               const simmpi::Communicator& parent);

}  // namespace tarr::fault
