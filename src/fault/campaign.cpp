#include "fault/campaign.hpp"

#include <cmath>
#include <map>
#include <sstream>
#include <utility>

#include "bench/csv.hpp"
#include "collectives/allgather.hpp"
#include "collectives/gather_bcast.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "fault/degraded.hpp"
#include "fault/fault_mask.hpp"
#include "fault/shrink.hpp"
#include "mapping/mapper.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/layout.hpp"
#include "topology/distance.hpp"
#include "topology/routing.hpp"
#include "trace/metrics.hpp"

namespace tarr::fault {

namespace {

enum class Op { RdAllgather, RingAllgather, BinomialBcast, BinomialGather };

struct PatternSpec {
  const char* name;
  mapping::Pattern pattern;
  Op op;
};

// The paper's four fine-tuned heuristics, each exercised on the collective
// it was designed for.
constexpr PatternSpec kPatterns[] = {
    {"rd-allgather", mapping::Pattern::RecursiveDoubling, Op::RdAllgather},
    {"ring-allgather", mapping::Pattern::Ring, Op::RingAllgather},
    {"binomial-bcast", mapping::Pattern::BinomialBcast, Op::BinomialBcast},
    {"binomial-gather", mapping::Pattern::BinomialGather, Op::BinomialGather},
};

void validate(const CampaignConfig& cfg) {
  TARR_REQUIRE(cfg.num_nodes >= 1, "campaign: num_nodes must be >= 1");
  TARR_REQUIRE(cfg.max_ranks >= 0, "campaign: max_ranks must be >= 0");
  TARR_REQUIRE(cfg.block_bytes >= 1, "campaign: block_bytes must be >= 1");
  TARR_REQUIRE(cfg.trials >= 1, "campaign: trials must be >= 1");
  TARR_REQUIRE(!cfg.failure_counts.empty(),
               "campaign: failure_counts must not be empty");
  for (int k : cfg.failure_counts)
    TARR_REQUIRE(k >= 0, "campaign: failure counts must be >= 0");
  topology::validate(cfg.tree);
  simmpi::validate(cfg.transient);
}

void accumulate(simmpi::TransientFaultStats& into,
                const simmpi::TransientFaultStats& s) {
  into.attempts += s.attempts;
  into.drops += s.drops;
  into.corruptions += s.corruptions;
  into.retransmissions += s.retransmissions;
  into.retransmitted_bytes += s.retransmitted_bytes;
  into.timeout_wait += s.timeout_wait;
}

/// Price one pattern-matched collective over `cores` on the degraded
/// machine.  `oldrank[j]` = initial (pre-reorder) index of the process on
/// cores[j] within the run's slot set.  The run's transient-fault counters
/// are folded into `stats_out`; trace emission flows through `sink`.
Usec price_run(const CampaignConfig& cfg, const DegradedTopology& topo,
               const PatternSpec& spec, std::vector<CoreId> cores,
               const std::vector<Rank>& oldrank, std::uint64_t transient_seed,
               simmpi::TransientFaultStats& stats_out,
               trace::TraceSink* sink) {
  const int p = static_cast<int>(cores.size());
  simmpi::Communicator comm(topo.machine(), std::move(cores));
  simmpi::Engine eng(comm, cfg.cost, simmpi::ExecMode::Timed,
                     cfg.block_bytes, p);
  eng.set_trace_sink(sink);
  if (cfg.transient.enabled()) {
    simmpi::TransientFaultConfig t = cfg.transient;
    t.seed = transient_seed;
    eng.set_transient_faults(t);
  }
  Usec cost = 0.0;
  // InitComm is the §V-B fix the evaluation uses for the heuristic path.
  switch (spec.op) {
    case Op::RdAllgather:
      cost = collectives::run_allgather(
          eng,
          {collectives::AllgatherAlgo::RecursiveDoubling,
           collectives::OrderFix::InitComm},
          oldrank);
      break;
    case Op::RingAllgather:
      cost = collectives::run_allgather(
          eng, {collectives::AllgatherAlgo::Ring, collectives::OrderFix::None},
          oldrank);
      break;
    case Op::BinomialBcast:
      cost = collectives::run_bcast(eng, collectives::TreeAlgo::Binomial);
      break;
    case Op::BinomialGather:
      cost = collectives::run_gather(eng, collectives::TreeAlgo::Binomial,
                                     collectives::OrderFix::InitComm, oldrank);
      break;
  }
  accumulate(stats_out, eng.transient_stats());
  return cost;
}

/// oldrank[j] = position of cores[j] in the baseline slot order.
std::vector<Rank> oldrank_of(const std::vector<CoreId>& slots,
                             const std::vector<int>& cores,
                             int total_cores) {
  std::vector<Rank> pos(total_cores, -1);
  for (std::size_t i = 0; i < slots.size(); ++i)
    pos[slots[i]] = static_cast<Rank>(i);
  std::vector<Rank> oldrank(cores.size());
  for (std::size_t j = 0; j < cores.size(); ++j) {
    TARR_REQUIRE(pos[cores[j]] >= 0,
                 "campaign: mapping returned a core outside the slot set");
    oldrank[j] = pos[cores[j]];
  }
  return oldrank;
}

std::string fmt_usec(double v) { return TextTable::num(v, 3); }

}  // namespace

const char* to_string(FailureKind k) {
  return k == FailureKind::Links ? "links" : "nodes";
}

CampaignResult run_fault_campaign(const CampaignConfig& cfg,
                                  trace::TraceSink* sink) {
  validate(cfg);
  WallTimer campaign_timer;

  const topology::Machine base(
      topology::NodeShape{},
      topology::build_gpc_network(cfg.num_nodes, cfg.tree));
  const int total = base.total_cores();
  const int cap = cfg.max_ranks > 0 ? std::min(cfg.max_ranks, total) : total;
  const int parent_p = floor_pow2(cap);
  const topology::DistanceMatrix pristine_d = topology::extract_distances(base);

  CampaignResult result;
  result.config = cfg;

  for (std::size_t ki = 0; ki < cfg.failure_counts.size(); ++ki) {
    const int k = cfg.failure_counts[ki];
    for (int trial = 0; trial < cfg.trials; ++trial) {
      const std::uint64_t trial_seed = mix_seed(cfg.seed, ki, trial);
      Rng trial_rng(trial_seed);
      FaultMask mask;
      if (k > 0)
        mask = cfg.kind == FailureKind::Links
                   ? FaultMask::random_links(base.network(), k, trial_rng)
                   : FaultMask::random_nodes(base.network(), k, trial_rng);
      const DegradedTopology topo(base, std::move(mask));

      // Parent communicator over the pre-failure layout, then ULFM-style
      // shrink.  A partition is a structural outcome of the trial, not an
      // error of the campaign.
      const simmpi::Communicator parent(
          topo.machine(),
          simmpi::make_layout(topo.machine(), parent_p, simmpi::LayoutSpec{}));
      std::vector<CoreId> slots;
      int survivors = 0;
      bool partitioned = false;
      try {
        ShrunkComm shrunk = shrink_communicator(topo, parent);
        survivors = shrunk.comm.size();
        const int p = floor_pow2(survivors);
        slots.assign(shrunk.comm.rank_to_core().begin(),
                     shrunk.comm.rank_to_core().begin() + p);
      } catch (const topology::PartitionedError&) {
        partitioned = true;
      }

      if (partitioned) {
        ++result.partitioned_trials;
        for (const PatternSpec& spec : kPatterns) {
          CampaignRow row;
          row.failures = k;
          row.trial = trial;
          row.pattern = spec.name;
          row.mapper = mapping::make_heuristic(spec.pattern)->name();
          row.partitioned = true;
          result.rows.push_back(std::move(row));
        }
        continue;
      }

      const topology::DistanceMatrix degraded_d = topo.distances();
      const int p = static_cast<int>(slots.size());
      const std::vector<int> slot_ints(slots.begin(), slots.end());
      std::vector<Rank> identity(p);
      for (Rank j = 0; j < p; ++j) identity[j] = j;

      for (std::size_t pi = 0; pi < std::size(kPatterns); ++pi) {
        const PatternSpec& spec = kPatterns[pi];
        const auto mapper = mapping::make_heuristic(spec.pattern);
        const std::uint64_t run_seed = mix_seed(trial_seed, pi, 0);
        // One mapping seed and one transient seed per row: with zero
        // failures the stale and remap mappings are computed from identical
        // distances and identical tie-break streams, so they coincide
        // exactly, and the three variants see paired fault draws.
        const std::uint64_t map_seed = mix_seed(run_seed, 1, 0);
        const std::uint64_t fault_seed =
            mix_seed(cfg.transient.seed, run_seed, 2);

        CampaignRow row;
        row.failures = k;
        row.trial = trial;
        row.pattern = spec.name;
        row.mapper = mapper->name();
        row.survivors = survivors;
        row.ranks = p;

        // baseline: initial layout untouched.
        row.baseline_usec = price_run(cfg, topo, spec, slots, identity,
                                      fault_seed, row.transient, sink);

        // stale: the heuristic's pre-failure answer (pristine distances)
        // replayed on the degraded fabric.
        Rng stale_rng(map_seed);
        const std::vector<int> stale_map =
            mapper->checked_map(slot_ints, pristine_d, stale_rng);
        row.stale_usec = price_run(
            cfg, topo, spec,
            std::vector<CoreId>(stale_map.begin(), stale_map.end()),
            oldrank_of(slots, stale_map, total), fault_seed, row.transient,
            sink);

        // remap: the heuristic re-run on the degraded distance matrix.
        Rng remap_rng(map_seed);
        const std::vector<int> remap_map =
            mapper->checked_map(slot_ints, degraded_d, remap_rng);
        row.remap_usec = price_run(
            cfg, topo, spec,
            std::vector<CoreId>(remap_map.begin(), remap_map.end()),
            oldrank_of(slots, remap_map, total), fault_seed, row.transient,
            sink);

        result.rows.push_back(std::move(row));
      }
    }
  }
  if (sink != nullptr) {
    simmpi::TransientFaultStats agg;
    for (const CampaignRow& r : result.rows) accumulate(agg, r.transient);
    sink->add_count("campaign.rows", static_cast<double>(result.rows.size()));
    sink->add_count("campaign.partitioned_trials",
                    static_cast<double>(result.partitioned_trials));
    sink->add_count("fault.attempts", static_cast<double>(agg.attempts));
    sink->add_count("fault.drops", static_cast<double>(agg.drops));
    sink->add_count("fault.corruptions",
                    static_cast<double>(agg.corruptions));
    sink->add_count("fault.campaign_retransmissions",
                    static_cast<double>(agg.retransmissions));
    sink->on_wall_span(
        trace::WallSpan{"fault-campaign", campaign_timer.seconds()});
  }
  return result;
}

std::string CampaignResult::csv() const {
  bench::CsvWriter w;
  w.set_header({"kind", "failures", "trial", "pattern", "mapper", "survivors",
                "ranks", "partitioned", "baseline_usec", "stale_usec",
                "remap_usec", "drops", "corruptions", "retransmissions"});
  for (const CampaignRow& r : rows) {
    w.add_row({to_string(config.kind), std::to_string(r.failures),
               std::to_string(r.trial), r.pattern, r.mapper,
               std::to_string(r.survivors), std::to_string(r.ranks),
               r.partitioned ? "1" : "0",
               r.partitioned ? "" : fmt_usec(r.baseline_usec),
               r.partitioned ? "" : fmt_usec(r.stale_usec),
               r.partitioned ? "" : fmt_usec(r.remap_usec),
               std::to_string(r.transient.drops),
               std::to_string(r.transient.corruptions),
               std::to_string(r.transient.retransmissions)});
  }
  return w.to_string();
}

std::string CampaignResult::metrics_csv() const {
  trace::MetricsRegistry reg;
  reg.add_count("campaign.rows", static_cast<double>(rows.size()));
  reg.add_count("campaign.partitioned_trials",
                static_cast<double>(partitioned_trials));
  for (const CampaignRow& r : rows) {
    if (r.partitioned) continue;
    reg.add_count("campaign.baseline_usec", r.baseline_usec);
    reg.add_count("campaign.stale_usec", r.stale_usec);
    reg.add_count("campaign.remap_usec", r.remap_usec);
    reg.add_count("fault.attempts", static_cast<double>(r.transient.attempts));
    reg.add_count("fault.drops", static_cast<double>(r.transient.drops));
    reg.add_count("fault.corruptions",
                  static_cast<double>(r.transient.corruptions));
    reg.add_count("fault.retransmissions",
                  static_cast<double>(r.transient.retransmissions));
    reg.add_count("fault.retransmitted_bytes",
                  static_cast<double>(r.transient.retransmitted_bytes));
    reg.add_count("fault.timeout_wait_usec", r.transient.timeout_wait);
  }
  return reg.csv();
}

std::string CampaignResult::json() const {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CampaignRow& r = rows[i];
    os << "  {\"kind\":\"" << to_string(config.kind) << "\""
       << ",\"failures\":" << r.failures << ",\"trial\":" << r.trial
       << ",\"pattern\":\"" << r.pattern << "\",\"mapper\":\"" << r.mapper
       << "\",\"survivors\":" << r.survivors << ",\"ranks\":" << r.ranks
       << ",\"partitioned\":" << (r.partitioned ? "true" : "false");
    if (!r.partitioned)
      os << ",\"baseline_usec\":" << fmt_usec(r.baseline_usec)
         << ",\"stale_usec\":" << fmt_usec(r.stale_usec)
         << ",\"remap_usec\":" << fmt_usec(r.remap_usec);
    os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "]\n";
  return os.str();
}

std::string CampaignResult::summary() const {
  struct Acc {
    int n = 0;
    int partitioned = 0;
    double base = 0, stale = 0, remap = 0;
  };
  std::map<std::pair<int, std::string>, Acc> by_group;
  for (const CampaignRow& r : rows) {
    Acc& a = by_group[{r.failures, r.pattern}];
    if (r.partitioned) {
      ++a.partitioned;
      continue;
    }
    ++a.n;
    a.base += r.baseline_usec;
    a.stale += r.stale_usec;
    a.remap += r.remap_usec;
  }

  TextTable t;
  t.set_header({"failures", "pattern", "trials", "split", "baseline(us)",
                "stale(us)", "remap(us)", "stale_gain%", "remap_gain%"});
  for (const auto& [key, a] : by_group) {
    std::vector<std::string> row = {std::to_string(key.first), key.second,
                                    std::to_string(a.n),
                                    std::to_string(a.partitioned)};
    if (a.n > 0) {
      const double base = a.base / a.n;
      const double stale = a.stale / a.n;
      const double remap = a.remap / a.n;
      row.push_back(TextTable::num(base, 2));
      row.push_back(TextTable::num(stale, 2));
      row.push_back(TextTable::num(remap, 2));
      row.push_back(TextTable::num(100.0 * (base - stale) / base, 1));
      row.push_back(TextTable::num(100.0 * (base - remap) / base, 1));
    }
    t.add_row(std::move(row));
  }

  std::ostringstream os;
  os << "Fault campaign: " << config.num_nodes << " nodes, "
     << to_string(config.kind) << " failures, " << config.trials
     << " trials/count, seed " << config.seed << "\n"
     << t.render();
  if (partitioned_trials > 0)
    os << partitioned_trials << " trial(s) partitioned the fabric\n";
  return os.str();
}

}  // namespace tarr::fault
