#include "fault/shrink.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "topology/routing.hpp"

namespace tarr::fault {

using topology::Partitioned;
using topology::PartitionedError;

ShrunkComm shrink_communicator(const DegradedTopology& topo,
                               const simmpi::Communicator& parent) {
  TARR_REQUIRE(parent.machine().total_cores() ==
                   topo.machine().total_cores(),
               "shrink_communicator: parent communicator does not match the "
               "degraded machine's core universe");

  std::vector<CoreId> survivor_cores;
  std::vector<Rank> parent_rank;
  std::vector<Rank> dead_ranks;
  for (Rank r = 0; r < parent.size(); ++r) {
    const NodeId node = parent.machine().node_of_core(parent.core_of(r));
    if (topo.node_alive(node)) {
      survivor_cores.push_back(parent.core_of(r));
      parent_rank.push_back(r);
    } else {
      dead_ranks.push_back(r);
    }
  }
  TARR_REQUIRE(!survivor_cores.empty(),
               "shrink_communicator: no rank survived the failures");

  // Continuing requires every surviving pair to be routable.  Restrict the
  // router's component decomposition to the survivors' nodes; more than one
  // non-empty component is a partition, reported structurally.
  const topology::Router& router = topo.machine().router();
  std::vector<char> used(topo.machine().num_nodes(), 0);
  for (CoreId c : survivor_cores)
    used[topo.machine().node_of_core(c)] = 1;
  Partitioned restricted;
  for (const auto& component : router.partition().components) {
    std::vector<NodeId> members;
    for (NodeId n : component)
      if (used[n]) members.push_back(n);
    if (!members.empty()) restricted.components.push_back(std::move(members));
  }
  if (restricted.components.size() > 1) throw PartitionedError(restricted);

  return ShrunkComm{
      simmpi::Communicator(topo.machine(), std::move(survivor_cores)),
      std::move(parent_rank), std::move(dead_ranks)};
}

}  // namespace tarr::fault
