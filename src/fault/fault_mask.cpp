#include "fault/fault_mask.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace tarr::fault {

using topology::SwitchGraph;
using topology::VertexKind;

namespace {

/// Insert keeping the vector sorted and unique; returns false on duplicate.
template <typename T>
bool sorted_insert(std::vector<T>& v, T value) {
  const auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it != v.end() && *it == value) return false;
  v.insert(it, value);
  return true;
}

}  // namespace

FaultMask& FaultMask::fail_link(LinkId l) {
  TARR_REQUIRE(l >= 0, "fail_link: negative link id");
  sorted_insert(failed_links_, l);
  return *this;
}

FaultMask& FaultMask::fail_switch(NetVertexId v) {
  TARR_REQUIRE(v >= 0, "fail_switch: negative vertex id");
  sorted_insert(failed_switches_, v);
  return *this;
}

FaultMask& FaultMask::fail_node(NodeId n) {
  TARR_REQUIRE(n >= 0, "fail_node: negative node id");
  sorted_insert(failed_nodes_, n);
  return *this;
}

int FaultMask::Degrade::resolve(int cap) const {
  if (factor < 0.0) return capacity;
  return std::max(1, static_cast<int>(static_cast<double>(cap) * factor));
}

FaultMask& FaultMask::insert_degrade(Degrade d, const char* what) {
  const auto it = std::lower_bound(
      degraded_links_.begin(), degraded_links_.end(), d.link,
      [](const Degrade& e, LinkId link) { return e.link < link; });
  TARR_REQUIRE(it == degraded_links_.end() || it->link != d.link,
               std::string(what) + ": link " + std::to_string(d.link) +
                   " already degraded");
  degraded_links_.insert(it, d);
  return *this;
}

FaultMask& FaultMask::degrade_link(LinkId l, int capacity) {
  TARR_REQUIRE(l >= 0, "degrade_link: negative link id");
  TARR_REQUIRE(capacity >= 1, "degrade_link: capacity must be >= 1");
  return insert_degrade(Degrade{l, capacity, -1.0}, "degrade_link");
}

FaultMask& FaultMask::degrade_link_factor(LinkId l, double factor) {
  TARR_REQUIRE(l >= 0, "degrade_link_factor: negative link id");
  TARR_REQUIRE(std::isfinite(factor),
               "degrade_link_factor: factor must be finite");
  TARR_REQUIRE(factor > 0.0,
               "degrade_link_factor: factor must be positive");
  TARR_REQUIRE(factor <= 1.0,
               "degrade_link_factor: factor must be <= 1 (a degradation "
               "cannot add capacity)");
  return insert_degrade(Degrade{l, 1, factor}, "degrade_link_factor");
}

bool FaultMask::node_failed(NodeId n) const {
  return std::binary_search(failed_nodes_.begin(), failed_nodes_.end(), n);
}

void FaultMask::validate(const SwitchGraph& g) const {
  for (LinkId l : failed_links_)
    TARR_REQUIRE(l < g.num_links(),
                 "FaultMask: failed link " + std::to_string(l) +
                     " out of range");
  for (NetVertexId v : failed_switches_) {
    TARR_REQUIRE(v < g.num_vertices(),
                 "FaultMask: failed switch " + std::to_string(v) +
                     " out of range");
    TARR_REQUIRE(g.vertex(v).kind != VertexKind::Host,
                 "FaultMask: vertex " + std::to_string(v) +
                     " is a host; fail the node instead of the switch");
  }
  for (NodeId n : failed_nodes_) {
    TARR_REQUIRE(n < g.num_hosts(),
                 "FaultMask: failed node " + std::to_string(n) +
                     " out of range");
    g.host_vertex(n);  // throws if the node has no host endpoint
  }
  for (const Degrade& d : degraded_links_) {
    TARR_REQUIRE(d.link < g.num_links(),
                 "FaultMask: degraded link " + std::to_string(d.link) +
                     " out of range");
    // Factor-mode entries resolve to [1, capacity] by construction; only
    // absolute capacities can contradict the graph.
    if (d.factor < 0.0)
      TARR_REQUIRE(d.capacity <= g.link(d.link).capacity,
                   "FaultMask: degraded capacity " +
                       std::to_string(d.capacity) + " exceeds link " +
                       std::to_string(d.link) + "'s capacity of " +
                       std::to_string(g.link(d.link).capacity));
  }
}

SwitchGraph FaultMask::apply(const SwitchGraph& g) const {
  validate(g);

  std::vector<char> vertex_dead(g.num_vertices(), 0);
  for (NetVertexId v : failed_switches_) vertex_dead[v] = 1;
  for (NodeId n : failed_nodes_) vertex_dead[g.host_vertex(n)] = 1;

  std::vector<char> link_dead(g.num_links(), 0);
  for (LinkId l : failed_links_) link_dead[l] = 1;

  SwitchGraph out;
  for (NetVertexId v = 0; v < g.num_vertices(); ++v) {
    const auto& vx = g.vertex(v);
    out.add_vertex(vx.kind, vx.name, vx.node);
  }
  auto degrade = degraded_links_.begin();
  for (LinkId l = 0; l < g.num_links(); ++l) {
    while (degrade != degraded_links_.end() && degrade->link < l) ++degrade;
    const auto& ln = g.link(l);
    if (link_dead[l] || vertex_dead[ln.a] || vertex_dead[ln.b]) continue;
    const int capacity =
        (degrade != degraded_links_.end() && degrade->link == l)
            ? degrade->resolve(ln.capacity)
            : ln.capacity;
    out.add_link(ln.a, ln.b, capacity);
  }
  return out;
}

std::string FaultMask::describe() const {
  std::ostringstream os;
  os << "FaultMask: " << failed_links_.size() << " links, "
     << failed_switches_.size() << " switches, " << failed_nodes_.size()
     << " nodes failed; " << degraded_links_.size() << " links degraded";
  return os.str();
}

FaultMask FaultMask::random_links(const SwitchGraph& g, int k, Rng& rng,
                                  bool include_host_links) {
  TARR_REQUIRE(k >= 0, "random_links: negative failure count");
  std::vector<LinkId> candidates;
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const auto& ln = g.link(l);
    const bool touches_host = g.vertex(ln.a).kind == VertexKind::Host ||
                              g.vertex(ln.b).kind == VertexKind::Host;
    if (include_host_links || !touches_host) candidates.push_back(l);
  }
  TARR_REQUIRE(k <= static_cast<int>(candidates.size()),
               "random_links: asked for " + std::to_string(k) +
                   " failures but only " +
                   std::to_string(candidates.size()) + " eligible links");
  // Partial Fisher-Yates: the first k entries become the sample.
  FaultMask mask;
  for (int i = 0; i < k; ++i) {
    const auto j = i + static_cast<int>(rng.next_below(candidates.size() - i));
    std::swap(candidates[i], candidates[j]);
    mask.fail_link(candidates[i]);
  }
  return mask;
}

FaultMask FaultMask::random_nodes(const SwitchGraph& g, int k, Rng& rng) {
  TARR_REQUIRE(k >= 0, "random_nodes: negative failure count");
  TARR_REQUIRE(k <= g.num_hosts(),
               "random_nodes: asked for " + std::to_string(k) +
                   " failures but the graph has " +
                   std::to_string(g.num_hosts()) + " nodes");
  std::vector<NodeId> candidates(g.num_hosts());
  for (NodeId n = 0; n < g.num_hosts(); ++n) candidates[n] = n;
  FaultMask mask;
  for (int i = 0; i < k; ++i) {
    const auto j = i + static_cast<int>(rng.next_below(candidates.size() - i));
    std::swap(candidates[i], candidates[j]);
    mask.fail_node(candidates[i]);
  }
  return mask;
}

}  // namespace tarr::fault
