#pragma once

#include <string>
#include <vector>

#include "simmpi/costmodel.hpp"
#include "simmpi/transient.hpp"
#include "topology/fattree.hpp"
#include "trace/sink.hpp"

/// \file campaign.hpp
/// Monte Carlo fault campaigns: how much of the mapping heuristics' benefit
/// survives component failure?
///
/// For every failure count k and trial, a seeded FaultMask knocks k
/// components out of a GPC-style machine; the campaign then prices the
/// pattern-matched collective for each of the paper's four heuristics under
/// three policies on the *degraded* fabric:
///   * baseline — the initial (block-bunch) layout, no reordering;
///   * stale    — the heuristic's mapping computed from the PRISTINE
///                distance matrix (the mapping nobody recomputed after the
///                failure);
///   * remap    — the heuristic re-run on the degraded distance matrix.
/// Node-failure campaigns go through shrink_communicator first, so the
/// collective runs over the survivors (shrink-and-continue); trials whose
/// failures partition the fabric are recorded structurally, not crashed on.
/// Everything is deterministic in the config seed.

namespace tarr::fault {

/// Which component class a campaign knocks out.
enum class FailureKind { Links, Nodes };

const char* to_string(FailureKind k);

/// Campaign parameters.  The default tree is a right-sized GPC-style fabric
/// (4 leaves x 8 nodes, 2 core complexes of 2 lines x 2 spines) that the
/// default 32 nodes fill completely, so a random link failure lands on a
/// link the job actually uses and visibly reroutes traffic — unlike the
/// paper's full 960-node tree, where a small job touches a sliver of the
/// fabric.
struct CampaignConfig {
  int num_nodes = 32;
  topology::GpcTreeConfig tree{.num_leaves = 4,
                               .nodes_per_leaf = 8,
                               .num_cores = 2,
                               .uplinks_per_core = 2,
                               .lines_per_core = 2,
                               .spines_per_core = 2,
                               .leaves_per_line = 2};
  int max_ranks = 0;  ///< cap on processes; 0 = one per core (rounded to pow2)
  Bytes block_bytes = 16 * 1024;
  std::vector<int> failure_counts = {0, 1, 2, 4, 8};
  int trials = 8;  ///< Monte Carlo trials per failure count
  std::uint64_t seed = 1;
  FailureKind kind = FailureKind::Links;
  simmpi::CostConfig cost;
  /// Optional per-transfer transient faults priced into every run (the seed
  /// is re-derived per run so trials stay independent and deterministic).
  simmpi::TransientFaultConfig transient;
};

/// One (failure count, trial, pattern) measurement.
struct CampaignRow {
  int failures = 0;
  int trial = 0;
  std::string pattern;  ///< "rd-allgather", "ring-allgather", ...
  std::string mapper;   ///< heuristic name, e.g. "RDMH"
  int survivors = 0;    ///< ranks that survived the shrink
  int ranks = 0;        ///< processes the collective actually ran with
  bool partitioned = false;  ///< failures split the fabric; times are absent
  double baseline_usec = 0.0;
  double stale_usec = 0.0;
  double remap_usec = 0.0;
  /// Transient-fault counters summed over the row's three priced runs
  /// (all zero when the transient model is disabled).
  simmpi::TransientFaultStats transient;
};

/// Full campaign output.
struct CampaignResult {
  CampaignConfig config;
  std::vector<CampaignRow> rows;
  int partitioned_trials = 0;

  /// RFC-4180 CSV, one line per row (the BENCH-entry artifact).
  std::string csv() const;

  /// JSON array of row objects (same fields as the CSV).
  std::string json() const;

  /// Human-readable per-(failures, pattern) means with improvement
  /// percentages of stale/remap over baseline.
  std::string summary() const;

  /// Machine-readable campaign metrics (tarr::trace registry schema
  /// `category,key,count,total,peak`): per-trial outcome counts and the
  /// aggregated transient-fault counters (drops, corruptions,
  /// retransmissions, retransmitted bytes, timeout wait).
  std::string metrics_csv() const;
};

/// Run the campaign.  Deterministic: same config, same result.  When `sink`
/// is non-null, the campaign emits its aggregate counters and a wall-clock
/// span through it (tarr::trace).
CampaignResult run_fault_campaign(const CampaignConfig& cfg,
                                  trace::TraceSink* sink = nullptr);

}  // namespace tarr::fault
