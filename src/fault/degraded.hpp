#pragma once

#include <vector>

#include "fault/fault_mask.hpp"
#include "topology/distance.hpp"
#include "topology/machine.hpp"

/// \file degraded.hpp
/// A Machine overlaid with a FaultMask.
///
/// The degraded machine keeps the base machine's node/core numbering (host
/// vertices are never removed, only their links), rebuilds routing over the
/// surviving fabric with the same deterministic D-mod-K-style spreading —
/// so every pair automatically fails over to its next-shortest surviving
/// path — and tolerates unreachable hosts: a pair that lost all connectivity
/// throws the structured PartitionedError only if something actually routes
/// across the cut.  Distance matrices extracted here price split pairs at
/// +infinity, so the mapping heuristics consume the degraded topology
/// through the exact same interface as the pristine one.

namespace tarr::fault {

/// See file comment.  The base machine must outlive this object.
class DegradedTopology {
 public:
  DegradedTopology(const topology::Machine& base, FaultMask mask);

  /// The degraded machine: identical shape and numbering, surviving network.
  const topology::Machine& machine() const { return machine_; }

  /// The pristine machine this was derived from.
  const topology::Machine& base() const { return *base_; }

  const FaultMask& mask() const { return mask_; }

  /// False iff the node was explicitly failed via FaultMask::fail_node.
  /// (A node isolated by link/switch failures is still "alive" — reaching
  /// it is a routing question, and shrink reports it as a partition.)
  bool node_alive(NodeId n) const { return !mask_.node_failed(n); }

  /// Nodes not explicitly failed, ascending.
  std::vector<NodeId> alive_nodes() const;

  /// Core-level distance matrix over the degraded router (split pairs at
  /// +infinity) — drop-in input for every Mapper.
  topology::DistanceMatrix distances(
      const topology::DistanceConfig& cfg = {}) const {
    return topology::extract_distances(machine_, cfg);
  }

  /// Node-level distance matrix over the degraded router.
  topology::DistanceMatrix node_distances(
      const topology::DistanceConfig& cfg = {}) const {
    return topology::extract_node_distances(machine_, cfg);
  }

 private:
  const topology::Machine* base_;
  FaultMask mask_;
  topology::Machine machine_;
};

}  // namespace tarr::fault
