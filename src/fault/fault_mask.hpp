#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "topology/network.hpp"

/// \file fault_mask.hpp
/// Declarative component-failure overlay for a SwitchGraph.
///
/// A FaultMask names what broke — links cut, switches dead, compute nodes
/// dead, links running at reduced capacity — without touching the pristine
/// graph.  apply() derives the degraded graph: vertex ids are preserved (so
/// node/core numbering and the route-spreading hash stay stable), links
/// incident to dead components are dropped, and degraded links keep their
/// id but carry less capacity.  An empty mask reproduces the input graph
/// exactly — same link ids, same capacities — which is what makes the
/// fault-free path bit-identical to a build without the fault layer.
///
/// All ids refer to the *original* graph the mask is applied to; validate()
/// (called by apply()) rejects out-of-range ids, switch failures aimed at
/// host vertices, and nonsensical capacity degradations loudly.

namespace tarr::fault {

/// See file comment.  Builder calls chain: FaultMask{}.fail_link(3).fail_node(7).
class FaultMask {
 public:
  /// One capacity degradation.  Either an absolute surviving capacity
  /// (`capacity` cables, factor < 0) or a relative factor in (0, 1]
  /// resolved against the link's capacity at apply time (at least one
  /// cable always survives — a fully dead link is fail_link's job).
  struct Degrade {
    LinkId link = -1;
    int capacity = 1;
    double factor = -1.0;  ///< < 0 = absolute-capacity mode

    /// Cables the degraded link keeps when its pristine capacity is `cap`.
    int resolve(int cap) const;
  };

  /// Cut a link entirely (idempotent).
  FaultMask& fail_link(LinkId l);

  /// Kill a switch: every incident link drops.  Must not target a host
  /// vertex — kill hosts via fail_node.
  FaultMask& fail_switch(NetVertexId v);

  /// Kill a compute node: its host endpoint loses every link, and shrink
  /// treats every rank on it as dead.
  FaultMask& fail_node(NodeId n);

  /// Run a link at reduced capacity (cables lost from an aggregated bundle).
  /// `capacity` must be >= 1 and at most the link's capacity at apply time.
  FaultMask& degrade_link(LinkId l, int capacity);

  /// Run a link at a fraction of its capacity — the multi-tenant congestion
  /// form (tarr::probe layers its stochastic background-traffic model on
  /// this).  `factor` must be finite and in (0, 1]; the surviving capacity
  /// is floor(capacity * factor), never below one cable.  Rejects NaN,
  /// infinities, zero, negatives and factors above 1 with a structured
  /// tarr::Error.
  FaultMask& degrade_link_factor(LinkId l, double factor);

  bool empty() const {
    return failed_links_.empty() && failed_switches_.empty() &&
           failed_nodes_.empty() && degraded_links_.empty();
  }

  const std::vector<LinkId>& failed_links() const { return failed_links_; }
  const std::vector<NetVertexId>& failed_switches() const {
    return failed_switches_;
  }
  const std::vector<NodeId>& failed_nodes() const { return failed_nodes_; }
  const std::vector<Degrade>& degraded_links() const {
    return degraded_links_;
  }

  /// True iff n was explicitly failed via fail_node.
  bool node_failed(NodeId n) const;

  /// Total number of failed components (degradations not counted).
  int num_failures() const {
    return static_cast<int>(failed_links_.size() + failed_switches_.size() +
                            failed_nodes_.size());
  }

  /// Check every id against `g`; throws tarr::Error naming the problem.
  void validate(const topology::SwitchGraph& g) const;

  /// Derived degraded graph (validates first).  Vertices are copied
  /// unchanged; links survive unless failed directly or incident to a dead
  /// switch/node; surviving link ids are renumbered in original order.
  topology::SwitchGraph apply(const topology::SwitchGraph& g) const;

  /// "FaultMask: 2 links, 1 switch, 0 nodes failed; 1 link degraded".
  std::string describe() const;

  /// Sample `k` distinct links to fail, uniformly from g's switch-to-switch
  /// links (host uplinks excluded unless `include_host_links` — cutting a
  /// host's only cable is a node loss in disguise and usually wants
  /// fail_node semantics instead).  Deterministic in `rng`.
  static FaultMask random_links(const topology::SwitchGraph& g, int k,
                                Rng& rng, bool include_host_links = false);

  /// Sample `k` distinct compute nodes to fail.  Deterministic in `rng`.
  static FaultMask random_nodes(const topology::SwitchGraph& g, int k,
                                Rng& rng);

 private:
  FaultMask& insert_degrade(Degrade d, const char* what);

  // Kept sorted and unique so masks compare and describe deterministically.
  std::vector<LinkId> failed_links_;
  std::vector<NetVertexId> failed_switches_;
  std::vector<NodeId> failed_nodes_;
  std::vector<Degrade> degraded_links_;  // sorted by link id
};

}  // namespace tarr::fault
