#include "probe/scenario.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "bench/csv.hpp"
#include "collectives/allreduce.hpp"
#include "collectives/alltoall.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "fault/degraded.hpp"
#include "mapping/mapper.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/layout.hpp"

namespace tarr::probe {

const char* to_string(ScenarioPattern p) {
  switch (p) {
    case ScenarioPattern::RingAllreduce:
      return "ring-allreduce";
    case ScenarioPattern::Alltoall:
      return "alltoall";
  }
  return "?";
}

void validate(const ScenarioConfig& cfg) {
  TARR_REQUIRE(cfg.num_nodes >= 1, "scenario: num_nodes must be >= 1");
  TARR_REQUIRE(cfg.max_ranks >= 0, "scenario: max_ranks must be >= 0");
  TARR_REQUIRE(cfg.block_bytes >= 1, "scenario: block_bytes must be >= 1");
  TARR_REQUIRE(cfg.epochs >= 1, "scenario: epochs must be >= 1");
  TARR_REQUIRE(!cfg.patterns.empty(), "scenario: patterns must not be empty");
  topology::validate(cfg.tree);
  validate(cfg.congestion);
  validate(cfg.controller);
}

double PatternSummary::probed_gain_pct() const {
  return identity_mean > 0.0
             ? 100.0 * (identity_mean - probed_mean) / identity_mean
             : 0.0;
}

double PatternSummary::oracle_gap_pct() const {
  return oracle_mean > 0.0 ? 100.0 * (probed_mean - oracle_mean) / oracle_mean
                           : 0.0;
}

namespace {

/// oldrank[j] = position of mapping[j] in the baseline slot order.
std::vector<Rank> oldrank_of(const std::vector<int>& slots,
                             const std::vector<int>& mapping, int total_cores) {
  std::vector<Rank> pos(static_cast<std::size_t>(total_cores), -1);
  for (std::size_t i = 0; i < slots.size(); ++i)
    pos[static_cast<std::size_t>(slots[i])] = static_cast<Rank>(i);
  std::vector<Rank> oldrank(mapping.size());
  for (std::size_t j = 0; j < mapping.size(); ++j) {
    TARR_REQUIRE(pos[static_cast<std::size_t>(mapping[j])] >= 0,
                 "scenario: mapping returned a core outside the slot set");
    oldrank[j] = pos[static_cast<std::size_t>(mapping[j])];
  }
  return oldrank;
}

/// Price one collective run of `mapping` on the congested fabric.
Usec price_run(const ScenarioConfig& cfg, const fault::DegradedTopology& topo,
               ScenarioPattern pat, const std::vector<int>& mapping,
               const std::vector<Rank>& oldrank, trace::TraceSink* sink) {
  const int p = static_cast<int>(mapping.size());
  simmpi::Communicator comm(topo.machine(),
                            std::vector<CoreId>(mapping.begin(), mapping.end()));
  const int buf_blocks = pat == ScenarioPattern::Alltoall ? 2 * p : p;
  simmpi::Engine eng(comm, cfg.cost, simmpi::ExecMode::Timed, cfg.block_bytes,
                     buf_blocks);
  eng.set_trace_sink(sink);
  switch (pat) {
    case ScenarioPattern::RingAllreduce:
      return collectives::run_allreduce_ring(eng);
    case ScenarioPattern::Alltoall:
      return collectives::run_alltoall(
          eng, collectives::AlltoallAlgo::Rotation, oldrank);
  }
  return 0.0;
}

}  // namespace

ScenarioResult run_probed_scenario(const ScenarioConfig& cfg,
                                   trace::TraceSink* sink) {
  validate(cfg);
  WallTimer wall;

  const topology::Machine base(
      cfg.shape, topology::build_gpc_network(cfg.num_nodes, cfg.tree));
  const int total = base.total_cores();
  const int p = cfg.max_ranks > 0 ? std::min(cfg.max_ranks, total) : total;
  const std::vector<CoreId> layout = simmpi::make_layout(base, p, cfg.layout);
  const std::vector<int> slots(layout.begin(), layout.end());
  std::vector<Rank> identity_oldrank(static_cast<std::size_t>(p));
  for (Rank j = 0; j < p; ++j) identity_oldrank[static_cast<std::size_t>(j)] = j;

  // Both patterns are neighbor-only (the ring literally, the rotation
  // alltoall in its cheap early stages), so RMH is the pattern-matched
  // heuristic for both.
  const auto mapper = mapping::make_heuristic(mapping::Pattern::Ring);

  ScenarioResult result;
  result.config = cfg;

  for (std::size_t pi = 0; pi < cfg.patterns.size(); ++pi) {
    const ScenarioPattern pat = cfg.patterns[pi];
    // Per-pattern seed split: patterns see the same fabric sequence (same
    // congestion config) but independent probe/tie-break streams.
    ControllerConfig ctl = cfg.controller;
    ctl.probe.seed = mix_seed(cfg.controller.probe.seed, 0x706174ull, pi);

    const fault::DegradedTopology initial(
        base, congestion_mask(base.network(), cfg.congestion, 0));
    AdaptiveController controller(*mapper, ctl, initial, slots, sink);

    PatternSummary ps;
    ps.pattern = to_string(pat);
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
      const fault::DegradedTopology topo(
          base, congestion_mask(base.network(), cfg.congestion, epoch));

      EpochRow row;
      row.pattern = ps.pattern;
      row.epoch = epoch;

      // identity: never reordered.
      row.identity_usec =
          price_run(cfg, topo, pat, slots, identity_oldrank, sink);

      // oracle: RMH on the exact effective distances, every epoch for free.
      Rng oracle_rng(mix_seed(ctl.probe.seed, 0x6f7261ull,
                              static_cast<std::uint64_t>(epoch)));
      const std::vector<int> oracle_map = mapper->checked_map(
          slots, effective_core_distances(topo, ctl.probe.distances),
          oracle_rng);
      row.oracle_usec = price_run(cfg, topo, pat, oracle_map,
                                  oldrank_of(slots, oracle_map, total), sink);

      // probed: price the controller's current mapping, then let it decide.
      row.probed_usec =
          price_run(cfg, topo, pat, controller.mapping(),
                    controller.oldrank(), sink);
      const Decision d = controller.observe(epoch, topo, row.probed_usec);
      row.action = d.action;
      row.drift = d.drift;
      row.fallback = controller.fallback_active();

      ps.identity_mean += row.identity_usec;
      ps.oracle_mean += row.oracle_usec;
      ps.probed_mean += row.probed_usec;
      result.rows.push_back(std::move(row));
    }
    ps.identity_mean /= cfg.epochs;
    ps.oracle_mean /= cfg.epochs;
    ps.probed_mean /= cfg.epochs;
    ps.remaps = controller.remaps();
    ps.fallbacks = controller.fallbacks();
    ps.probe_cost_usec = controller.probe_cost_usec();
    ps.probe_rms_error = controller.last_probe().rms_rel_error;
    result.patterns.push_back(std::move(ps));
  }

  if (sink != nullptr) {
    sink->add_count("scenario.rows", static_cast<double>(result.rows.size()));
    sink->on_wall_span(trace::WallSpan{"probed-scenario", wall.seconds()});
  }
  return result;
}

std::string ScenarioResult::csv() const {
  bench::CsvWriter w;
  w.set_header({"pattern", "epoch", "identity_usec", "oracle_usec",
                "probed_usec", "action", "drift", "fallback"});
  for (const EpochRow& r : rows)
    w.add_row({r.pattern, std::to_string(r.epoch),
               TextTable::num(r.identity_usec, 3),
               TextTable::num(r.oracle_usec, 3),
               TextTable::num(r.probed_usec, 3), to_string(r.action),
               TextTable::num(r.drift, 4), r.fallback ? "1" : "0"});
  return w.to_string();
}

std::string ScenarioResult::summary() const {
  TextTable t;
  t.set_header({"pattern", "identity(us)", "oracle(us)", "probed(us)",
                "gain%", "oracle_gap%", "remaps", "fallbacks"});
  for (const PatternSummary& p : patterns)
    t.add_row({p.pattern, TextTable::num(p.identity_mean, 2),
               TextTable::num(p.oracle_mean, 2),
               TextTable::num(p.probed_mean, 2),
               TextTable::num(p.probed_gain_pct(), 1),
               TextTable::num(p.oracle_gap_pct(), 1),
               std::to_string(p.remaps), std::to_string(p.fallbacks)});
  std::ostringstream os;
  os << "Probed scenario: " << config.num_nodes << " nodes, " << config.epochs
     << " epochs, noise " << config.controller.probe.noise << ", churn "
     << config.congestion.churn << "\n"
     << t.render();
  return os.str();
}

}  // namespace tarr::probe
