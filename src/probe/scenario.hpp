#pragma once

#include <string>
#include <vector>

#include "probe/congestion.hpp"
#include "probe/controller.hpp"
#include "simmpi/costmodel.hpp"
#include "simmpi/layout.hpp"
#include "topology/fattree.hpp"
#include "trace/sink.hpp"

/// \file scenario.hpp
/// The fig8 experiment: probed re-mapping vs oracle vs identity on a
/// churning, congested fabric.
///
/// One scenario runs an epoch loop over a GPC-style machine.  Each epoch,
/// the multi-tenant congestion model (probe/congestion.hpp) decides the
/// fabric state; three policies then price the same ML-style collective on
/// that fabric:
///
///  * identity — the resource manager's block layout, never reordered
///    (the floor);
///  * oracle   — RMH re-run every epoch on the exact effective distance
///    matrix, as if the job could read the fabric's counters for free
///    (the ceiling);
///  * probed   — the adaptive controller: noisy probes, drift detection,
///    hysteresis, identity fallback (the realistic middle).
///
/// As probe noise shrinks, probed should close the gap to the oracle;
/// with probing disabled (timeout_prob = 1) the controller must degrade to
/// identity gracefully rather than fail.  Both claims are asserted by the
/// fig8_probed bench and the probe CLI smoke in CI.
///
/// The probe's own simulated cost (ProbeReport::probe_cost_usec) is
/// reported separately rather than folded into the per-epoch latency: the
/// paper treats topology discovery as an offline, amortized step, and the
/// split keeps the steady-state comparison clean while still exposing what
/// probing costs.

namespace tarr::probe {

/// Collectives the scenario prices (both neighbor-heavy, both RMH-mapped).
enum class ScenarioPattern {
  RingAllreduce,  ///< ring reduce-scatter + allgather, buf_blocks = p
  Alltoall,       ///< rotation alltoall, buf_blocks = 2p
};

const char* to_string(ScenarioPattern p);

/// Scenario parameters.  The default machine matches the fault campaign's
/// right-sized GPC fabric so congested links land on links the job uses.
struct ScenarioConfig {
  int num_nodes = 32;
  /// Right-sized GPC fabric, as in the fault campaign: congested links land
  /// on links the job actually routes over.
  topology::GpcTreeConfig tree{.num_leaves = 4,
                               .nodes_per_leaf = 8,
                               .num_cores = 2,
                               .uplinks_per_core = 2,
                               .lines_per_core = 2,
                               .spines_per_core = 2,
                               .leaves_per_line = 2};
  int max_ranks = 0;  ///< cap on processes; 0 = one per core
  /// Node shape (the paper's flat 2x4 nodes by default; deep or one-core
  /// shapes are accepted for what-if studies).
  topology::NodeShape shape{};
  /// Initial resource-manager layout.  Defaults to cyclic (SLURM
  /// --distribution=cyclic): consecutive ranks land on different nodes, so
  /// the un-reordered collective genuinely suffers on the fabric and the
  /// mapping decision matters — the paper's own worst-case starting layout
  /// (Fig 3).  A block layout is already ring-optimal and would make every
  /// policy coincide; see docs/PROBING.md.
  simmpi::LayoutSpec layout{simmpi::NodeOrder::Cyclic,
                            simmpi::SocketOrder::Bunch};
  Bytes block_bytes = 16 * 1024;
  int epochs = 8;
  std::vector<ScenarioPattern> patterns = {ScenarioPattern::RingAllreduce,
                                           ScenarioPattern::Alltoall};
  CongestionConfig congestion;
  ControllerConfig controller;
  simmpi::CostConfig cost;
};

/// Throws tarr::Error naming the first out-of-range field.
void validate(const ScenarioConfig& cfg);

/// One (pattern, epoch) measurement.
struct EpochRow {
  std::string pattern;
  int epoch = 0;
  double identity_usec = 0.0;
  double oracle_usec = 0.0;
  double probed_usec = 0.0;
  Action action = Action::Keep;  ///< controller decision for this epoch
  double drift = 0.0;
  bool fallback = false;  ///< controller on identity fallback this epoch
};

/// Per-pattern aggregate.
struct PatternSummary {
  std::string pattern;
  double identity_mean = 0.0;
  double oracle_mean = 0.0;
  double probed_mean = 0.0;
  int remaps = 0;     ///< successful re-probes (initial probe included)
  int fallbacks = 0;  ///< probe failures absorbed as identity
  double probe_cost_usec = 0.0;  ///< total simulated probing cost
  double probe_rms_error = 0.0;  ///< residual error of the last probe

  /// 100 * (identity - probed) / identity: what adaptive probing buys over
  /// never reordering.  Positive = probed wins.
  double probed_gain_pct() const;
  /// 100 * (probed - oracle) / oracle: how far probing is from perfect
  /// knowledge.  Smaller = closer to the oracle.
  double oracle_gap_pct() const;
};

/// Full scenario output.
struct ScenarioResult {
  ScenarioConfig config;
  std::vector<EpochRow> rows;
  std::vector<PatternSummary> patterns;

  /// Per-epoch CSV (pattern, epoch, the three policies, decision).
  std::string csv() const;
  /// Human-readable per-pattern table.
  std::string summary() const;
};

/// Run the scenario.  Deterministic in the config seeds; trace emission
/// (probe spans, controller decisions, engine stages) flows through `sink`.
ScenarioResult run_probed_scenario(const ScenarioConfig& cfg,
                                   trace::TraceSink* sink = nullptr);

}  // namespace tarr::probe
