#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "topology/distance.hpp"
#include "topology/machine.hpp"
#include "trace/sink.hpp"

/// \file measure.hpp
/// Noisy topology probing — the "Cloud Collectives" substitute for exact
/// distance extraction.
///
/// The paper extracts physical distances from hwloc and InfiniBand tools and
/// assumes they are exact.  On cloud or multi-tenant fabrics neither tool
/// sees the real network: the only way to learn the inter-node distance
/// matrix is to *measure* it with pairwise latency probes, and every
/// measurement is polluted by noise, congestion spikes, and the occasional
/// total loss.  This module simulates that measurement process
/// deterministically:
///
///  * every node pair is sampled `samples_per_pair` times; a sample observes
///    the true effective distance times a seeded multiplicative noise term,
///    occasionally multiplied further by an outlier spike (another tenant's
///    burst hitting the probe);
///  * a sample can time out (seeded, probability `timeout_prob`); timed-out
///    samples are retried with exponential backoff up to `max_retries`
///    attempts, every wait accounted into the probe's simulated cost;
///  * the per-pair estimate is the *median* of the accepted samples
///    (median-of-k outlier rejection), so a single spike cannot poison a
///    pair;
///  * a pair whose every sample timed out is *unresolved*: instead of
///    failing, it degrades gracefully to a conservative worst-case distance
///    (the largest resolved estimate times `worst_case_margin`), so the
///    mapping heuristics still consume a fully-finite matrix and simply
///    keep unresolved pairs at arm's length.
///
/// Intra-node distances are NOT probed: hwloc runs locally and stays exact
/// even on a cloud VM, exactly as in the source paper.  Only the network
/// level is uncertain.
///
/// Everything is deterministic in `ProbeConfig::seed`: same seed, same
/// report, same matrix, byte for byte (the contract tests/test_probe.cpp
/// pins and CI relies on).

namespace tarr::probe {

/// Probing parameters.  Defaults model a mildly noisy tenant network.
struct ProbeConfig {
  std::uint64_t seed = 1;
  /// Samples kept per node pair (the k of median-of-k).  >= 1.
  int samples_per_pair = 5;
  /// Relative half-width of the multiplicative measurement noise: a sample
  /// observes truth * (1 + noise * u), u uniform in [-1, 1).  In [0, 1).
  double noise = 0.1;
  /// Probability a sample is additionally hit by a congestion spike.
  double outlier_prob = 0.05;
  /// Spike severity: an outlier sample is multiplied by this factor.  >= 1.
  double outlier_scale = 4.0;
  /// Probability one probe attempt times out (seeded, per attempt).
  double timeout_prob = 0.0;
  /// Attempts per sample before the sample is abandoned.  >= 1.
  int max_attempts = 4;
  /// Simulated wait before retry i is backoff_base_usec * backoff_factor^i.
  double backoff_base_usec = 50.0;
  double backoff_factor = 2.0;
  /// Unresolved pairs are priced at max(resolved estimate) * this margin.
  double worst_case_margin = 2.0;
  /// Probing *fails* (ProbeReport::failed()) when fewer than this fraction
  /// of pairs resolve — the adaptive controller then falls back to the
  /// identity mapping instead of trusting a matrix made of guesses.
  double min_resolved_fraction = 0.5;
  /// Scale used to assemble the (exact) intra-node distance block.
  topology::DistanceConfig distances;
};

/// Throws tarr::Error naming the first out-of-range field.
void validate(const ProbeConfig& cfg);

/// Per-pair measurement record (node pair a < b).
struct PairProbe {
  NodeId a = 0;
  NodeId b = 0;
  int samples = 0;       ///< accepted samples (median input)
  int timeouts = 0;      ///< attempts that timed out
  int retries = 0;       ///< backoff retries spent (timeouts that re-tried)
  bool resolved = false;
  float estimate = 0.0f; ///< median estimate; worst-case fill if unresolved
  float truth = 0.0f;    ///< ground-truth effective distance (simulation only)
};

/// Structured probing outcome: sample accounting, residual error against the
/// ground truth the simulator knows, and the unresolved remainder.
struct ProbeReport {
  int nodes = 0;
  int pairs = 0;           ///< probed node pairs: nodes*(nodes-1)/2
  int resolved_pairs = 0;
  long long measurements = 0;  ///< attempts issued (timeouts included)
  long long timeouts = 0;
  long long retries = 0;
  Usec probe_cost_usec = 0.0;  ///< simulated probing time incl. backoff waits
  /// Residual error of resolved pairs vs. ground truth (relative).
  double rms_rel_error = 0.0;
  double max_rel_error = 0.0;
  /// Conservative distance assigned to every unresolved pair.
  float worst_case_distance = 0.0f;
  std::vector<PairProbe> pair_stats;  ///< ascending (a, b)

  int unresolved_pairs() const { return pairs - resolved_pairs; }

  /// True when fewer than `min_resolved_fraction` of the pairs resolved —
  /// the caller should not trust the inferred matrix.
  bool failed(const ProbeConfig& cfg) const;

  /// RFC-4180 CSV of pair_stats (a,b,samples,timeouts,retries,resolved,
  /// estimate,truth) — byte-stable across same-seed runs.
  std::string csv() const;

  /// One-paragraph human summary.
  std::string summary() const;
};

/// Probing output: the inferred matrices plus the report.  `core` is the
/// drop-in Mapper input (exact intra-node block + probed inter-node
/// estimates); `node` is the leader-level matrix for hierarchical use.
struct ProbedDistances {
  topology::DistanceMatrix core;
  topology::DistanceMatrix node;
  ProbeReport report;

  ProbedDistances(int cores, int nodes) : core(cores), node(nodes) {}
};

/// Simulate probing `m`'s network against the ground-truth node-level
/// matrix `truth` (extract_node_distances for a quiet fabric,
/// probe::effective_node_distances for a congested one).  A pair whose true
/// distance is +infinity (partitioned) times out on every attempt
/// regardless of `timeout_prob` — nothing answers across a cut.  When
/// `sink` is non-null the probe emits its counters
/// (probe.measurements/timeouts/retries/unresolved_pairs) and a
/// "probe" wall span through it.
ProbedDistances probe_distances(const topology::Machine& m,
                                const topology::DistanceMatrix& truth,
                                const ProbeConfig& cfg,
                                trace::TraceSink* sink = nullptr);

}  // namespace tarr::probe
