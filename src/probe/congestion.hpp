#pragma once

#include "fault/degraded.hpp"
#include "fault/fault_mask.hpp"
#include "topology/distance.hpp"
#include "topology/network.hpp"

/// \file congestion.hpp
/// Seeded multi-tenant background traffic, layered on tarr::fault.
///
/// Other tenants' flows do not cut links — they *take capacity away*.  The
/// model expresses one "epoch" of background traffic as a FaultMask made
/// exclusively of degrade_link_factor entries over the switch-to-switch
/// links, which fault::DegradedTopology then realizes as a machine with
/// reduced per-link cable counts.  Every consumer downstream — the router,
/// the contention-pricing cost model, all five mappers — handles that
/// machine unchanged; congestion needed zero new mechanism below this file.
///
/// Churn: the congestion pattern of epoch e either persists from e-1 or
/// resamples, decided by a seeded coin of probability `churn` per epoch
/// boundary.  congestion_mask() is a pure function of (config, epoch) — no
/// hidden state, any epoch can be queried in any order, and two runs with
/// the same seed see the same tenant behavior (the property the adaptive
/// controller's determinism tests pin).
///
/// Distances: hop counts do not change under congestion, so the paper's
/// hop-based extract_distances would be blind to it.  A tenant-aware
/// "effective distance" weights every hop of the routed path by
/// pristine_capacity / surviving_capacity — a congested hop is
/// proportionally "longer".  These effective matrices are the ground truth
/// the oracle policy maps on and the quantity probe_distances measures
/// noisily.

namespace tarr::probe {

/// One tenant population's behavior.
struct CongestionConfig {
  std::uint64_t seed = 7;
  /// Probability a switch-to-switch link is congested in a resampled epoch.
  double link_prob = 0.3;
  /// Severity: a congested link keeps a capacity factor drawn uniformly
  /// from [min_factor, max_factor] (resolved to >= 1 cable).
  double min_factor = 0.25;
  double max_factor = 0.75;
  /// Probability the congestion pattern resamples at each epoch boundary
  /// (1 = fully independent epochs, 0 = frozen background traffic).
  double churn = 0.5;
  /// Congest host uplinks too (default: only the switch fabric, where
  /// tenant flows actually share cables).
  bool include_host_links = false;
};

/// Throws tarr::Error naming the first out-of-range field.
void validate(const CongestionConfig& cfg);

/// The background-traffic mask of `epoch` (>= 0).  Pure and deterministic;
/// see file comment for the churn semantics.  Epoch 0 is always a fresh
/// sample.
fault::FaultMask congestion_mask(const topology::SwitchGraph& g,
                                 const CongestionConfig& cfg, int epoch);

/// Node-level effective distances of a (congestion-)degraded topology:
/// inter_node_base + per_hop * sum over routed hops of
/// (pristine capacity / surviving capacity).  Requires a mask with no hard
/// failures (link ids must be preserved 1:1); with an empty mask this
/// reproduces extract_node_distances exactly.
topology::DistanceMatrix effective_node_distances(
    const fault::DegradedTopology& topo,
    const topology::DistanceConfig& cfg = {});

/// Core-level counterpart (exact intra-node block + effective inter-node
/// entries) — the oracle Mapper input under congestion.
topology::DistanceMatrix effective_core_distances(
    const fault::DegradedTopology& topo,
    const topology::DistanceConfig& cfg = {});

}  // namespace tarr::probe
