#pragma once

/// \file probe.hpp
/// tarr::probe — robust mapping under uncertain, churning topologies.
///
/// The paper extracts exact distances once and maps once.  This subsystem
/// drops both assumptions: distances are *inferred* from noisy pairwise
/// probes (measure.hpp), the fabric *changes* under seeded multi-tenant
/// congestion (congestion.hpp), and an adaptive controller decides when the
/// mapping has gone stale and re-probes with hysteresis, falling back to
/// the identity mapping when probing fails (controller.hpp).  scenario.hpp
/// packages the fig8 experiment comparing probed re-mapping against the
/// identity floor and the perfect-knowledge oracle ceiling.

#include "probe/congestion.hpp"   // IWYU pragma: export
#include "probe/controller.hpp"   // IWYU pragma: export
#include "probe/measure.hpp"      // IWYU pragma: export
#include "probe/scenario.hpp"     // IWYU pragma: export
