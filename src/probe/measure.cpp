#include "probe/measure.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "bench/csv.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "prof/profiler.hpp"
#include "topology/intranode.hpp"

namespace tarr::probe {

void validate(const ProbeConfig& cfg) {
  TARR_REQUIRE(cfg.samples_per_pair >= 1,
               "probe: samples_per_pair must be >= 1");
  TARR_REQUIRE(cfg.noise >= 0.0 && cfg.noise < 1.0,
               "probe: noise must be in [0, 1)");
  TARR_REQUIRE(cfg.outlier_prob >= 0.0 && cfg.outlier_prob <= 1.0,
               "probe: outlier_prob must be in [0, 1]");
  TARR_REQUIRE(cfg.outlier_scale >= 1.0, "probe: outlier_scale must be >= 1");
  TARR_REQUIRE(cfg.timeout_prob >= 0.0 && cfg.timeout_prob <= 1.0,
               "probe: timeout_prob must be in [0, 1]");
  TARR_REQUIRE(cfg.max_attempts >= 1, "probe: max_attempts must be >= 1");
  TARR_REQUIRE(cfg.backoff_base_usec >= 0.0,
               "probe: backoff_base_usec must be >= 0");
  TARR_REQUIRE(cfg.backoff_factor >= 1.0,
               "probe: backoff_factor must be >= 1");
  TARR_REQUIRE(cfg.worst_case_margin >= 1.0,
               "probe: worst_case_margin must be >= 1");
  TARR_REQUIRE(
      cfg.min_resolved_fraction >= 0.0 && cfg.min_resolved_fraction <= 1.0,
      "probe: min_resolved_fraction must be in [0, 1]");
}

bool ProbeReport::failed(const ProbeConfig& cfg) const {
  if (pairs == 0) return false;  // single-node "cluster": nothing to probe
  return static_cast<double>(resolved_pairs) <
         cfg.min_resolved_fraction * static_cast<double>(pairs);
}

std::string ProbeReport::csv() const {
  bench::CsvWriter w;
  w.set_header({"a", "b", "samples", "timeouts", "retries", "resolved",
                "estimate", "truth"});
  std::ostringstream num;
  for (const PairProbe& p : pair_stats) {
    num.str("");
    num << p.estimate;
    const std::string est = num.str();
    num.str("");
    num << p.truth;
    w.add_row({std::to_string(p.a), std::to_string(p.b),
               std::to_string(p.samples), std::to_string(p.timeouts),
               std::to_string(p.retries), p.resolved ? "1" : "0", est,
               num.str()});
  }
  return w.to_string();
}

std::string ProbeReport::summary() const {
  std::ostringstream os;
  os << "probe: " << nodes << " nodes, " << resolved_pairs << "/" << pairs
     << " pairs resolved (" << measurements << " measurements, " << timeouts
     << " timeouts, " << retries << " retries, "
     << static_cast<long long>(probe_cost_usec) << " us simulated)";
  if (resolved_pairs > 0) {
    os << "; residual error rms ";
    os.precision(4);
    os << rms_rel_error << " max " << max_rel_error;
  }
  if (unresolved_pairs() > 0)
    os << "; " << unresolved_pairs()
       << " unresolved pair(s) priced at worst-case " << worst_case_distance;
  return os.str();
}

ProbedDistances probe_distances(const topology::Machine& m,
                                const topology::DistanceMatrix& truth,
                                const ProbeConfig& cfg,
                                trace::TraceSink* sink) {
  validate(cfg);
  TARR_REQUIRE(truth.size() == m.num_nodes(),
               "probe_distances: truth matrix size does not match machine");
  prof::ProfScope pscope("probe.measure");
  WallTimer wall;

  const int nodes = m.num_nodes();
  const int cpn = m.cores_per_node();
  ProbedDistances out(m.total_cores(), nodes);
  ProbeReport& rep = out.report;
  rep.nodes = nodes;
  rep.pairs = nodes * (nodes - 1) / 2;
  rep.pair_stats.reserve(static_cast<std::size_t>(rep.pairs));

  // Pass 1: sample every pair.  Each (pair, sample, attempt) draws from its
  // own mix_seed-derived stream, so the outcome is independent of probing
  // order and bit-stable across runs.
  std::vector<float> samples;
  float max_estimate = 0.0f;
  double err_sq_sum = 0.0;
  for (NodeId a = 0; a < nodes; ++a) {
    for (NodeId b = a + 1; b < nodes; ++b) {
      PairProbe pp;
      pp.a = a;
      pp.b = b;
      pp.truth = truth.at(a, b);
      const bool unreachable = std::isinf(pp.truth);
      const std::uint64_t pair_seed =
          mix_seed(cfg.seed, static_cast<std::uint64_t>(a),
                   static_cast<std::uint64_t>(b));
      samples.clear();
      for (int s = 0; s < cfg.samples_per_pair; ++s) {
        Rng rng(mix_seed(pair_seed, static_cast<std::uint64_t>(s), 0));
        bool landed = false;
        for (int attempt = 0; attempt < cfg.max_attempts; ++attempt) {
          ++rep.measurements;
          const bool timeout =
              unreachable || rng.next_double() < cfg.timeout_prob;
          if (!timeout) {
            double v = static_cast<double>(pp.truth) *
                       (1.0 + cfg.noise * (2.0 * rng.next_double() - 1.0));
            if (rng.next_double() < cfg.outlier_prob) v *= cfg.outlier_scale;
            samples.push_back(static_cast<float>(v));
            rep.probe_cost_usec += v;
            landed = true;
            break;
          }
          ++pp.timeouts;
          ++rep.timeouts;
          // The timed-out attempt itself costs one detection window.
          rep.probe_cost_usec += cfg.backoff_base_usec;
          if (attempt + 1 < cfg.max_attempts) {
            ++pp.retries;
            ++rep.retries;
            rep.probe_cost_usec +=
                cfg.backoff_base_usec * std::pow(cfg.backoff_factor, attempt);
          }
        }
        (void)landed;
      }
      pp.samples = static_cast<int>(samples.size());
      if (!samples.empty()) {
        // Median-of-k outlier rejection (even k: lower median, so a half-
        // spiked sample set still lands on a clean sample).
        std::sort(samples.begin(), samples.end());
        pp.estimate = samples[(samples.size() - 1) / 2];
        pp.resolved = true;
        ++rep.resolved_pairs;
        max_estimate = std::max(max_estimate, pp.estimate);
        const double rel =
            std::abs(static_cast<double>(pp.estimate) - pp.truth) / pp.truth;
        err_sq_sum += rel * rel;
        rep.max_rel_error = std::max(rep.max_rel_error, rel);
      }
      rep.pair_stats.push_back(pp);
    }
  }
  if (rep.resolved_pairs > 0)
    rep.rms_rel_error = std::sqrt(err_sq_sum / rep.resolved_pairs);

  // Conservative fill for the unresolved remainder.  With nothing resolved
  // at all there is no empirical anchor; fall back to the configured scale's
  // deepest plausible route so the matrix stays finite (the caller will see
  // failed() and distrust it anyway).
  rep.worst_case_distance =
      max_estimate > 0.0f
          ? max_estimate * static_cast<float>(cfg.worst_case_margin)
          : cfg.distances.inter_node_base + cfg.distances.per_hop * 16.0f;

  // Pass 2: assemble the matrices.  Intra-node blocks are exact (hwloc is
  // local); inter-node entries replicate the pair estimate over all core
  // pairs, mirroring extract_distances' structure.
  std::vector<float> intra(static_cast<std::size_t>(cpn) * cpn);
  for (int x = 0; x < cpn; ++x)
    for (int y = 0; y < cpn; ++y)
      intra[static_cast<std::size_t>(x) * cpn + y] = topology::intra_level_weight(
          cfg.distances, topology::intranode_level(m.shape(), x, y));

  std::size_t pair_idx = 0;
  for (NodeId a = 0; a < nodes; ++a) {
    for (int x = 0; x < cpn; ++x)
      for (int y = 0; y < cpn; ++y)
        out.core.set(m.core_id(a, x), m.core_id(a, y),
                     intra[static_cast<std::size_t>(x) * cpn + y]);
    for (NodeId b = a + 1; b < nodes; ++b, ++pair_idx) {
      const PairProbe& pp = rep.pair_stats[pair_idx];
      const float d = pp.resolved ? pp.estimate : rep.worst_case_distance;
      out.node.set(a, b, d);
      for (int x = 0; x < cpn; ++x)
        for (int y = 0; y < cpn; ++y)
          out.core.set(m.core_id(a, x), m.core_id(b, y), d);
    }
  }

  if (sink != nullptr) {
    sink->add_count("probe.measurements",
                    static_cast<double>(rep.measurements));
    sink->add_count("probe.timeouts", static_cast<double>(rep.timeouts));
    sink->add_count("probe.retries", static_cast<double>(rep.retries));
    sink->add_count("probe.unresolved_pairs",
                    static_cast<double>(rep.unresolved_pairs()));
    sink->add_count("probe.cost_usec", rep.probe_cost_usec);
    // Per-pair relative residuals feed a distribution: the probe summary
    // already reports rms/max, but whether re-mapping on probed distances
    // pays hinges on the residual *tail* (p99), which only a histogram
    // preserves.
    for (const PairProbe& pp : rep.pair_stats) {
      if (!pp.resolved || pp.truth <= 0.0f) continue;
      const double rel = std::fabs(static_cast<double>(pp.estimate) -
                                   static_cast<double>(pp.truth)) /
                         static_cast<double>(pp.truth);
      sink->observe("probe.pair_rel_error", rel);
    }
    sink->on_wall_span(trace::WallSpan{"probe", wall.seconds()});
  }
  if (prof::Profiler* p = prof::thread_profiler()) {
    p->count("probe.pairs", static_cast<double>(rep.pairs));
    p->count("probe.measurements", static_cast<double>(rep.measurements));
    p->count("probe.retries", static_cast<double>(rep.retries));
  }
  return out;
}

}  // namespace tarr::probe
