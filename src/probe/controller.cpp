#include "probe/controller.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "probe/congestion.hpp"
#include "prof/profiler.hpp"

namespace tarr::probe {

void validate(const ControllerConfig& cfg) {
  validate(cfg.probe);
  TARR_REQUIRE(cfg.drift_threshold > 0.0,
               "controller: drift_threshold must be > 0");
  TARR_REQUIRE(cfg.hysteresis >= 1, "controller: hysteresis must be >= 1");
  TARR_REQUIRE(cfg.cooldown >= 0, "controller: cooldown must be >= 0");
}

const char* to_string(Action a) {
  switch (a) {
    case Action::Calibrate:
      return "calibrate";
    case Action::Keep:
      return "keep";
    case Action::Remap:
      return "remap";
    case Action::Fallback:
      return "fallback";
  }
  return "?";
}

AdaptiveController::AdaptiveController(const mapping::Mapper& mapper,
                                       ControllerConfig cfg,
                                       const fault::DegradedTopology& initial,
                                       std::vector<int> slots,
                                       trace::TraceSink* sink)
    : mapper_(&mapper), cfg_(std::move(cfg)), sink_(sink),
      slots_(std::move(slots)) {
  validate(cfg_);
  TARR_REQUIRE(!slots_.empty(), "controller: empty slot list");
  reprobe_and_map(initial);
}

Decision AdaptiveController::observe(int epoch,
                                     const fault::DegradedTopology& current,
                                     double observed_usec) {
  TARR_REQUIRE(observed_usec > 0.0, "controller: observed cost must be > 0");
  prof::ProfScope pscope("probe.decide");
  Decision d;
  d.epoch = epoch;
  d.observed = observed_usec;

  if (reference_ < 0.0) {
    // First observation of a fresh mapping: this IS the predicted cost.
    // Observed and predicted latency live on different scales (hop-weighted
    // model units vs whatever the fabric reports), so the controller
    // calibrates instead of comparing them directly.
    reference_ = observed_usec;
    d.action = Action::Calibrate;
    d.reference = reference_;
  } else if (cooldown_left_ > 0) {
    --cooldown_left_;
    d.action = Action::Keep;
    d.reference = reference_;
    d.drift = observed_usec / reference_ - 1.0;
  } else {
    d.reference = reference_;
    d.drift = observed_usec / reference_ - 1.0;
    if (d.drift > cfg_.drift_threshold) {
      ++drift_streak_;
      d.drift_streak = drift_streak_;
      if (drift_streak_ >= cfg_.hysteresis) {
        const bool ok = reprobe_and_map(current);
        d.action = ok ? Action::Remap : Action::Fallback;
        d.probe_failed = !ok;
        d.probe_rms_error = last_probe_.rms_rel_error;
        drift_streak_ = 0;
        reference_ = -1.0;  // re-calibrate on the next observation
        cooldown_left_ = cfg_.cooldown;
      } else {
        d.action = Action::Keep;
      }
    } else {
      drift_streak_ = 0;
      d.action = Action::Keep;
    }
  }

  if (sink_ != nullptr)
    sink_->add_count(std::string("probe.decision.") + to_string(d.action), 1.0);
  prof::count(std::string("probe.decision.") + to_string(d.action));
  log_.push_back(d);
  return d;
}

bool AdaptiveController::reprobe_and_map(
    const fault::DegradedTopology& current) {
  // Each probe round draws from its own derived seed so a re-probe is a new
  // experiment, while the whole decision sequence stays a pure function of
  // the config seed.
  ProbeConfig pc = cfg_.probe;
  pc.seed = mix_seed(cfg_.probe.seed, 0x70726f6265ull,
                     static_cast<std::uint64_t>(probes_done_));
  ++probes_done_;

  const topology::DistanceMatrix truth =
      effective_node_distances(current, pc.distances);
  const ProbedDistances probed =
      probe_distances(current.machine(), truth, pc, sink_);
  last_probe_ = probed.report;
  probe_cost_usec_ += probed.report.probe_cost_usec;

  if (probed.report.failed(pc)) {
    mapping_ = slots_;
    fallback_ = true;
    ++fallbacks_;
    rebuild_oldrank();
    return false;
  }
  Rng rng(mix_seed(pc.seed, 0x6d6170ull, 0));
  mapping_ = mapper_->checked_map(slots_, probed.core, rng);
  fallback_ = false;
  ++remaps_;
  rebuild_oldrank();
  return true;
}

void AdaptiveController::rebuild_oldrank() {
  int max_slot = 0;
  for (int s : slots_) max_slot = std::max(max_slot, s);
  std::vector<Rank> owner(static_cast<std::size_t>(max_slot) + 1, -1);
  for (std::size_t r = 0; r < slots_.size(); ++r)
    owner[static_cast<std::size_t>(slots_[r])] = static_cast<Rank>(r);
  oldrank_.resize(mapping_.size());
  for (std::size_t nr = 0; nr < mapping_.size(); ++nr)
    oldrank_[nr] = owner[static_cast<std::size_t>(mapping_[nr])];
}

}  // namespace tarr::probe
