#pragma once

#include <string>
#include <vector>

#include "fault/degraded.hpp"
#include "mapping/mapper.hpp"
#include "probe/measure.hpp"
#include "trace/sink.hpp"

/// \file controller.hpp
/// Adaptive re-mapping under churn: detect stale mappings, re-probe,
/// re-map — without thrashing.
///
/// The paper reorders once, up front, because its topology never changes.
/// Under multi-tenant congestion the mapping *goes stale*: background
/// traffic shifts, the links the mapper carefully avoided become quiet, the
/// ones it chose become crowded, and the collective's observed latency
/// drifts away from what the mapping delivered when it was fresh.  The
/// controller watches exactly that signal:
///
///  * after every (re-)mapping, the first observed latency becomes the
///    mapping's *reference* — what this mapping costs on the fabric it was
///    made for;
///  * each epoch the caller feeds the currently observed latency in; drift
///    is observed/reference - 1;
///  * drift above `drift_threshold` must persist for `hysteresis` CONSECUTIVE
///    epochs before a re-map triggers — one noisy epoch never thrashes the
///    mapping — and after a re-map, `cooldown` epochs are ignored entirely
///    so the new mapping's transient settling cannot immediately re-trigger;
///  * a triggered re-map probes the current fabric (probe::probe_distances
///    against its current effective distances) and re-runs the Mapper on the
///    inferred matrix;
///  * when probing *fails* (ProbeReport::failed(): too few pairs resolved),
///    the controller falls back to the identity mapping — the collective
///    keeps running on the resource manager's layout, degraded but never
///    aborted — and tries probing again at the next trigger.
///
/// Every decision is emitted through tarr::trace (probe.decision.keep /
/// .remap / .fallback counters plus the probe's own spans), so tarr-report and
/// tarr-viz can attribute where re-mapping paid off.  The controller is
/// deterministic in its config seed: decisions depend only on (config,
/// observed sequence, fabric sequence).

namespace tarr::probe {

/// Controller parameters.
struct ControllerConfig {
  ProbeConfig probe;
  /// Relative drift (observed/reference - 1) that counts as stale.
  double drift_threshold = 0.2;
  /// Consecutive stale epochs required before a re-map triggers.  >= 1.
  int hysteresis = 2;
  /// Epochs after a re-map during which drift is not even evaluated.  >= 0.
  int cooldown = 1;
};

/// Throws tarr::Error naming the first out-of-range field.
void validate(const ControllerConfig& cfg);

/// What the controller did with one epoch's observation.
enum class Action {
  Calibrate,  ///< first observation after a (re-)map: set the reference
  Keep,       ///< mapping still fresh (or cooling down)
  Remap,      ///< drift persisted; re-probed and re-mapped
  Fallback,   ///< drift persisted but probing failed; identity mapping
};

const char* to_string(Action a);

/// One epoch's decision record.
struct Decision {
  int epoch = 0;
  Action action = Action::Keep;
  double observed = 0.0;
  double reference = 0.0;  ///< the mapping's calibrated cost (0 before)
  double drift = 0.0;
  int drift_streak = 0;    ///< consecutive stale epochs including this one
  bool probe_failed = false;
  double probe_rms_error = 0.0;  ///< residual error of the re-probe (if any)
};

/// See file comment.  The mapper must outlive the controller.
class AdaptiveController {
 public:
  /// `slots` is the initial rank -> slot assignment (the resource manager's
  /// layout); it is also the fallback mapping.  The constructor performs the
  /// initial probe-and-map against `initial` (epoch -1, before any
  /// observation); if that probe fails the controller starts in fallback.
  AdaptiveController(const mapping::Mapper& mapper, ControllerConfig cfg,
                     const fault::DegradedTopology& initial,
                     std::vector<int> slots,
                     trace::TraceSink* sink = nullptr);

  /// Current rank -> slot mapping (M[new_rank] = slot).
  const std::vector<int>& mapping() const { return mapping_; }

  /// oldrank[new_rank] = position of the process in the initial layout —
  /// the §V-B bookkeeping collectives need on a reordered communicator.
  const std::vector<Rank>& oldrank() const { return oldrank_; }

  /// True while the controller is running on the identity fallback.
  bool fallback_active() const { return fallback_; }

  /// Feed one epoch's observed latency of the *current* mapping on the
  /// *current* fabric.  May re-probe `current` and swap the mapping (which
  /// takes effect for the caller's next epoch).  Epochs must be fed in
  /// increasing order.
  Decision observe(int epoch, const fault::DegradedTopology& current,
                   double observed_usec);

  /// Every decision taken so far, in epoch order.
  const std::vector<Decision>& log() const { return log_; }

  /// Re-maps performed (probe successes) and fallbacks taken.
  int remaps() const { return remaps_; }
  int fallbacks() const { return fallbacks_; }

  /// Report of the most recent probe (initial probe included).
  const ProbeReport& last_probe() const { return last_probe_; }

  /// Total simulated probing cost across every probe round so far.
  double probe_cost_usec() const { return probe_cost_usec_; }

 private:
  /// Probe `current` and install a fresh mapping (or the fallback).
  /// Returns true when the probe succeeded.
  bool reprobe_and_map(const fault::DegradedTopology& current);

  /// Recompute oldrank_ from mapping_ and slots_.
  void rebuild_oldrank();

  const mapping::Mapper* mapper_;
  ControllerConfig cfg_;
  trace::TraceSink* sink_;
  std::vector<int> slots_;       ///< initial layout (fallback mapping)
  std::vector<int> mapping_;     ///< current rank -> slot
  std::vector<Rank> oldrank_;
  bool fallback_ = false;
  double reference_ = -1.0;      ///< < 0 = awaiting calibration
  int drift_streak_ = 0;
  int cooldown_left_ = 0;
  int probes_done_ = 0;
  int remaps_ = 0;
  int fallbacks_ = 0;
  double probe_cost_usec_ = 0.0;
  ProbeReport last_probe_;
  std::vector<Decision> log_;
};

}  // namespace tarr::probe
