#include "probe/congestion.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "topology/intranode.hpp"
#include "topology/routing.hpp"

namespace tarr::probe {

void validate(const CongestionConfig& cfg) {
  TARR_REQUIRE(cfg.link_prob >= 0.0 && cfg.link_prob <= 1.0,
               "congestion: link_prob must be in [0, 1]");
  TARR_REQUIRE(cfg.min_factor > 0.0 && cfg.min_factor <= 1.0,
               "congestion: min_factor must be in (0, 1]");
  TARR_REQUIRE(cfg.max_factor >= cfg.min_factor && cfg.max_factor <= 1.0,
               "congestion: max_factor must be in [min_factor, 1]");
  TARR_REQUIRE(cfg.churn >= 0.0 && cfg.churn <= 1.0,
               "congestion: churn must be in [0, 1]");
}

fault::FaultMask congestion_mask(const topology::SwitchGraph& g,
                                 const CongestionConfig& cfg, int epoch) {
  validate(cfg);
  TARR_REQUIRE(epoch >= 0, "congestion_mask: epoch must be >= 0");

  // Era = index of the most recent resample at or before `epoch`.  Epoch 0
  // always samples fresh; later boundaries flip a seeded coin.  Walking the
  // boundaries keeps the function pure in (cfg, epoch) — churn behavior
  // does not depend on which epochs the caller happened to query before.
  int era = 0;
  for (int e = 1; e <= epoch; ++e) {
    Rng coin(mix_seed(cfg.seed, 0x636f696eull, static_cast<std::uint64_t>(e)));
    if (coin.next_double() < cfg.churn) era = e;
  }

  fault::FaultMask mask;
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const auto& ln = g.link(l);
    const bool touches_host =
        g.vertex(ln.a).kind == topology::VertexKind::Host ||
        g.vertex(ln.b).kind == topology::VertexKind::Host;
    if (touches_host && !cfg.include_host_links) continue;
    Rng rng(mix_seed(cfg.seed, static_cast<std::uint64_t>(era) + 1,
                     static_cast<std::uint64_t>(l)));
    if (rng.next_double() >= cfg.link_prob) continue;
    const double factor =
        cfg.min_factor + (cfg.max_factor - cfg.min_factor) * rng.next_double();
    mask.degrade_link_factor(l, factor);
  }
  return mask;
}

namespace {

/// Per-link slowdown weights of a congestion-degraded graph.  Hard failures
/// renumber link ids, which would break the pristine/degraded pairing — the
/// congestion model never produces them, and we reject them loudly.
std::vector<double> link_weights(const fault::DegradedTopology& topo) {
  TARR_REQUIRE(topo.mask().num_failures() == 0,
               "effective distances: mask must be congestion-only "
               "(degradations, no hard failures)");
  const topology::SwitchGraph& pristine = topo.base().network();
  const topology::SwitchGraph& degraded = topo.machine().network();
  TARR_REQUIRE(pristine.num_links() == degraded.num_links(),
               "effective distances: link sets diverged");
  std::vector<double> w(static_cast<std::size_t>(pristine.num_links()), 1.0);
  for (LinkId l = 0; l < pristine.num_links(); ++l)
    w[static_cast<std::size_t>(l)] =
        static_cast<double>(pristine.link(l).capacity) /
        static_cast<double>(degraded.link(l).capacity);
  return w;
}

}  // namespace

topology::DistanceMatrix effective_node_distances(
    const fault::DegradedTopology& topo, const topology::DistanceConfig& cfg) {
  const std::vector<double> w = link_weights(topo);
  const topology::Machine& m = topo.machine();
  const topology::Router& router = m.router();
  topology::DistanceMatrix d(m.num_nodes());
  for (NodeId a = 0; a < m.num_nodes(); ++a) {
    for (NodeId b = a + 1; b < m.num_nodes(); ++b) {
      double hops = 0.0;
      for (LinkId l : router.path(a, b)) hops += w[static_cast<std::size_t>(l)];
      d.set(a, b, cfg.inter_node_base + cfg.per_hop * static_cast<float>(hops));
    }
  }
  return d;
}

topology::DistanceMatrix effective_core_distances(
    const fault::DegradedTopology& topo, const topology::DistanceConfig& cfg) {
  const topology::Machine& m = topo.machine();
  const topology::DistanceMatrix node = effective_node_distances(topo, cfg);
  const int cpn = m.cores_per_node();
  topology::DistanceMatrix d(m.total_cores());
  for (NodeId a = 0; a < m.num_nodes(); ++a) {
    for (NodeId b = a; b < m.num_nodes(); ++b) {
      if (a == b) {
        for (int x = 0; x < cpn; ++x)
          for (int y = 0; y < cpn; ++y)
            d.set(m.core_id(a, x), m.core_id(a, y),
                  topology::intra_level_weight(
                      cfg, topology::intranode_level(m.shape(), x, y)));
      } else {
        const float dist = node.at(a, b);
        for (int x = 0; x < cpn; ++x)
          for (int y = 0; y < cpn; ++y)
            d.set(m.core_id(a, x), m.core_id(b, y), dist);
      }
    }
  }
  return d;
}

}  // namespace tarr::probe
