#include "collectives/allgatherv.hpp"

#include <numeric>

#include "common/error.hpp"
#include "common/permutation.hpp"

namespace tarr::collectives {

namespace {

std::vector<int> displacements(const std::vector<int>& counts) {
  std::vector<int> displs(counts.size() + 1, 0);
  for (std::size_t r = 0; r < counts.size(); ++r) {
    TARR_REQUIRE(counts[r] >= 1, "allgatherv: counts must be >= 1");
    displs[r + 1] = displs[r] + counts[r];
  }
  return displs;
}

}  // namespace

Usec run_allgatherv_ring(simmpi::Engine& eng, const std::vector<int>& counts,
                         const std::vector<Rank>& oldrank) {
  const int p = eng.comm().size();
  TARR_REQUIRE(static_cast<int>(counts.size()) == p,
               "run_allgatherv_ring: counts size mismatch");
  TARR_REQUIRE(static_cast<int>(oldrank.size()) == p,
               "run_allgatherv_ring: oldrank size mismatch");
  TARR_REQUIRE(is_permutation_of_iota(oldrank),
               "run_allgatherv_ring: oldrank is not a permutation");
  TARR_REQUIRE(eng.block_bytes() == 1,
               "run_allgatherv_ring: engine block must be one byte");
  const std::vector<int> displs = displacements(counts);
  TARR_REQUIRE(eng.buf_blocks() >= displs[p],
               "run_allgatherv_ring: buffer too small");
  const Usec before = eng.total();

  // Seed: new rank j's contribution (original rank oldrank[j]) lands
  // directly at its original-rank displacement.
  for (Rank j = 0; j < p; ++j) {
    const Rank o = oldrank[j];
    for (int b = 0; b < counts[o]; ++b)
      eng.set_block(j, displs[o] + b, static_cast<std::uint32_t>(o));
  }
  if (p == 1) return 0.0;

  // Ring stages; stage sizes vary with the forwarded rank's count, so no
  // repeat compression applies (unlike the fixed-size ring).
  for (int s = 0; s < p - 1; ++s) {
    eng.begin_stage();
    for (Rank j = 0; j < p; ++j) {
      const Rank origin = oldrank[(j - s + p) % p];
      eng.copy(j, displs[origin], (j + 1) % p, displs[origin],
               counts[origin]);
    }
    eng.end_stage();
  }
  return eng.total() - before;
}

Usec run_allgatherv_ring(simmpi::Engine& eng,
                         const std::vector<int>& counts) {
  return run_allgatherv_ring(eng, counts,
                             identity_permutation(eng.comm().size()));
}

void check_allgatherv_output(const simmpi::Engine& eng,
                             const std::vector<int>& counts) {
  TARR_REQUIRE(eng.mode() == simmpi::ExecMode::Data,
               "check_allgatherv_output: requires Data mode");
  const int p = eng.comm().size();
  TARR_REQUIRE(static_cast<int>(counts.size()) == p,
               "check_allgatherv_output: counts size mismatch");
  const std::vector<int> displs = displacements(counts);
  for (Rank j = 0; j < p; ++j) {
    for (Rank r = 0; r < p; ++r) {
      for (int b = 0; b < counts[r]; ++b) {
        TARR_REQUIRE(eng.block(j, displs[r] + b) ==
                         static_cast<std::uint32_t>(r),
                     "allgatherv output wrong at rank " + std::to_string(j) +
                         ", origin " + std::to_string(r));
      }
    }
  }
}

}  // namespace tarr::collectives
