#pragma once

#include <vector>

#include "collectives/collective.hpp"
#include "simmpi/engine.hpp"

/// \file neighbor.hpp
/// Neighbor-exchange allgather (Chen et al.) — a fourth classic allgather
/// algorithm, completing the substrate.  Requires an even number of ranks
/// and runs p/2 stages: stage 0 exchanges own blocks between adjacent
/// pairs ((0,1), (2,3), ...); every later stage k exchanges, with the
/// alternate neighbor ((1,2), (3,4), ..., wrapping), the two blocks
/// received in stage k-1.
///
/// Its communication pattern is the ring graph, so RMH is the matching
/// fine-tuned heuristic.  Like the ring, it stores every incoming block
/// directly at its original-rank index, so no §V-B mechanism is needed.
///
/// Engine contract: buf_blocks >= p, block_bytes = per-rank message m.

namespace tarr::collectives {

/// Run one neighbor-exchange allgather (p even); returns the simulated
/// time added.  `oldrank[j]` as in run_allgather.
Usec run_allgather_neighbor(simmpi::Engine& eng,
                            const std::vector<Rank>& oldrank);

/// Convenience overload for the non-reordered case.
Usec run_allgather_neighbor(simmpi::Engine& eng);

}  // namespace tarr::collectives
