#pragma once

#include <vector>

#include "collectives/collective.hpp"
#include "simmpi/engine.hpp"

/// \file hierarchical.hpp
/// Leader-based hierarchical MPI_Allgather (paper §II):
///   phase 1 — gather intra-node contributions into each node leader
///             (linear or binomial);
///   phase 2 — allgather of node chunks among the leaders (recursive
///             doubling or ring);
///   phase 3 — broadcast of the full output from each leader to its node
///             (linear or binomial).
///
/// Precondition: the communicator is node-contiguous (exactly
/// cores_per_node consecutive ranks per node) — the paper likewise does not
/// support the hierarchical path under cyclic layouts.  The node leader is
/// the first rank of each node block.

namespace tarr::collectives {

/// Options for one hierarchical allgather execution.
struct HierAllgatherOptions {
  AllgatherAlgo leader_algo = AllgatherAlgo::RecursiveDoubling;
  IntraAlgo intra = IntraAlgo::Binomial;
  OrderFix fix = OrderFix::None;
};

/// Run one hierarchical allgather; returns the simulated time added.
/// `oldrank` has the same meaning as in run_allgather; InitComm/EndShuffle
/// are applied globally, around all three phases.
Usec run_hier_allgather(simmpi::Engine& eng, const HierAllgatherOptions& opts,
                        const std::vector<Rank>& oldrank);

/// Convenience overload for the non-reordered case.
Usec run_hier_allgather(simmpi::Engine& eng,
                        const HierAllgatherOptions& opts);

/// Pipelined hierarchical allgather — the phase-overlap idea of the
/// paper's related work (Ma et al. [19]): instead of completing the whole
/// leader exchange before broadcasting, every node-chunk enters its node's
/// binomial broadcast pipeline one superstage after the leader receives it,
/// so the inter-node ring and the intra-node broadcasts run concurrently.
/// Phase 1 (gather) and the §V-B order handling are as in
/// run_hier_allgather; the leader exchange is the ring (the algorithm that
/// produces one chunk per stage).  Requires 2^k cores per node.
Usec run_hier_allgather_pipelined(simmpi::Engine& eng, IntraAlgo gather_algo,
                                  OrderFix fix,
                                  const std::vector<Rank>& oldrank);

/// Convenience overload for the non-reordered case.
Usec run_hier_allgather_pipelined(simmpi::Engine& eng,
                                  IntraAlgo gather_algo, OrderFix fix);

}  // namespace tarr::collectives
