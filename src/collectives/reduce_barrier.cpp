#include "collectives/reduce_barrier.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace tarr::collectives {

Usec run_reduce_binomial(simmpi::Engine& eng) {
  const int p = eng.comm().size();
  const Usec before = eng.total();
  // Halving-tree gather with combining: stage dist moves every child
  // t+dist's partial result into its parent t.
  for (int dist = 1; dist < p; dist <<= 1) {
    eng.begin_stage();
    for (Rank t = 0; t + dist < p; t += 2 * dist)
      eng.combine(t + dist, 0, t, 0, 1);
    eng.end_stage();
  }
  return eng.total() - before;
}

Usec run_barrier_dissemination(simmpi::Engine& eng) {
  const int p = eng.comm().size();
  const Usec before = eng.total();
  if (p == 1) return 0.0;
  for (int round = 0, dist = 1; dist < p; dist <<= 1, ++round) {
    eng.begin_stage();
    for (Rank i = 0; i < p; ++i) eng.copy(i, 0, (i + dist) % p, 0, 1);
    eng.end_stage();
  }
  return eng.total() - before;
}

}  // namespace tarr::collectives
