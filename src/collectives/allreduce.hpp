#pragma once

#include "collectives/collective.hpp"
#include "simmpi/engine.hpp"

/// \file allreduce.hpp
/// MPI_Allreduce — the paper's §VII future-work extension ("we intend to
/// extend our heuristics to ... other important collectives such as
/// MPI_Allreduce").  Both algorithms below communicate in the recursive-
/// doubling / recursive-halving pattern, so RDMH reorders them directly; the
/// result of a reduction is order-independent, so no §V-B mechanism is
/// needed.
///
/// The engine's XOR combine stands in for the MPI reduction op.

namespace tarr::collectives {

/// Full-vector recursive-doubling allreduce: log2(p) stages, each rank pair
/// exchanging and combining the whole vector (engine: buf_blocks >= 1,
/// block 0 = the vector, block_bytes = message size).  Requires 2^k ranks.
Usec run_allreduce_rd(simmpi::Engine& eng);

/// Rabenseifner allreduce: recursive-halving reduce-scatter followed by a
/// recursive-doubling allgather (engine: buf_blocks >= p, block_bytes =
/// message/p).  Requires 2^k ranks.  Bandwidth-optimal for large messages.
Usec run_allreduce_rabenseifner(simmpi::Engine& eng);

/// Ring allreduce — the ML-training workhorse (ring reduce-scatter followed
/// by ring allgather over p chunks; 2(p-1) neighbor-only stages).  Engine:
/// buf_blocks >= p, block_bytes = message/p.  Works for any p >= 1, and its
/// neighbor-only traffic is exactly the pattern RMH (mapping::Pattern::Ring)
/// reorders for.  In Timed mode each phase prices one stage and repeats it
/// (all ring stages are isomorphic), like the ring allgather.
Usec run_allreduce_ring(simmpi::Engine& eng);

}  // namespace tarr::collectives
