#include "collectives/gather_bcast.hpp"

#include <algorithm>

#include "collectives/allgather.hpp"
#include "collectives/orderfix.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"

namespace tarr::collectives {

namespace {

using simmpi::Engine;

/// Binomial (halving-tree) gather stages to new rank 0: stage `dist` moves
/// every subtree [t+dist, t+dist+size) into its parent t; ranges stay
/// new-rank-contiguous throughout.
void binomial_gather_stages(Engine& eng) {
  const int p = eng.comm().size();
  for (int dist = 1; dist < p; dist <<= 1) {
    eng.begin_stage();
    for (Rank t = 0; t + dist < p; t += 2 * dist) {
      const int size = std::min(dist, p - (t + dist));
      eng.copy(t + dist, t + dist, t, t + dist, size);
    }
    eng.end_stage();
  }
}

}  // namespace

Usec run_gather(simmpi::Engine& eng, TreeAlgo algo, OrderFix fix,
                const std::vector<Rank>& oldrank) {
  const int p = eng.comm().size();
  TARR_REQUIRE(static_cast<int>(oldrank.size()) == p,
               "run_gather: oldrank size mismatch");
  TARR_REQUIRE(is_permutation_of_iota(oldrank),
               "run_gather: oldrank is not a permutation");
  TARR_REQUIRE(eng.buf_blocks() >= p, "run_gather: buffer too small");
  const Usec before = eng.total();

  if (algo == TreeAlgo::Linear) {
    // Every rank sends its block straight to its original-rank slot at the
    // root; arrivals serialize at the root, one stage each.  No §V-B
    // mechanism is needed — the root addresses by the mapping array.
    for (Rank j = 0; j < p; ++j)
      eng.set_block(j, oldrank[j], static_cast<std::uint32_t>(oldrank[j]));
    for (Rank t = 1; t < p; ++t) {
      eng.begin_stage();
      eng.copy(t, oldrank[t], 0, oldrank[t], 1);
      eng.end_stage();
    }
    return eng.total() - before;
  }

  seed_allgather_inputs(eng, oldrank);
  if (fix == OrderFix::InitComm) init_comm_exchange(eng, oldrank);
  if (p > 1) binomial_gather_stages(eng);
  if (fix == OrderFix::EndShuffle) end_shuffle(eng, oldrank);
  return eng.total() - before;
}

Usec run_bcast(simmpi::Engine& eng, TreeAlgo algo) {
  const int p = eng.comm().size();
  const Usec before = eng.total();
  eng.set_block(0, 0, kBcastMessageTag);

  if (algo == TreeAlgo::Linear) {
    // Root pushes the message to each rank in turn (sender serialization).
    for (Rank t = 1; t < p; ++t) {
      eng.begin_stage();
      eng.copy(0, 0, t, 0, 1);
      eng.end_stage();
    }
    return eng.total() - before;
  }

  // Binomial halving tree: the message size is constant across stages.
  for (int dist = p >= 2 ? static_cast<int>(ceil_pow2(p) / 2) : 0; dist >= 1;
       dist /= 2) {
    eng.begin_stage();
    for (Rank t = 0; t + dist < p; t += 2 * dist) eng.copy(t, 0, t + dist, 0, 1);
    eng.end_stage();
  }
  return eng.total() - before;
}

Usec run_bcast_scatter_allgather(simmpi::Engine& eng, AllgatherAlgo ag) {
  const int p = eng.comm().size();
  TARR_REQUIRE(eng.buf_blocks() >= p,
               "run_bcast_scatter_allgather: buffer too small");
  const Usec before = eng.total();
  for (int b = 0; b < p; ++b) eng.set_block(0, b, static_cast<std::uint32_t>(b));
  if (p == 1) return eng.total() - before;

  // Binomial scatter (reverse halving-tree gather): parents hand each child
  // the half of their current range that the child's subtree owns.
  for (int dist = static_cast<int>(ceil_pow2(p) / 2); dist >= 1; dist /= 2) {
    eng.begin_stage();
    for (Rank t = 0; t + dist < p; t += 2 * dist) {
      const int size = std::min(dist, p - (t + dist));
      eng.copy(t, t + dist, t + dist, t + dist, size);
    }
    eng.end_stage();
  }

  switch (ag) {
    case AllgatherAlgo::RecursiveDoubling:
      detail::rd_stages(eng);
      break;
    case AllgatherAlgo::Ring:
      detail::ring_stages(eng, identity_permutation(p));
      break;
    case AllgatherAlgo::Bruck:
      TARR_REQUIRE(false,
                   "run_bcast_scatter_allgather: Bruck phase not supported");
  }
  return eng.total() - before;
}

Usec run_scatter(simmpi::Engine& eng, TreeAlgo algo,
                 const std::vector<Rank>& oldrank) {
  const int p = eng.comm().size();
  TARR_REQUIRE(static_cast<int>(oldrank.size()) == p,
               "run_scatter: oldrank size mismatch");
  TARR_REQUIRE(is_permutation_of_iota(oldrank),
               "run_scatter: oldrank is not a permutation");
  TARR_REQUIRE(eng.buf_blocks() >= p, "run_scatter: buffer too small");
  const Usec before = eng.total();

  // Root's send buffer in original-rank order.
  for (int r = 0; r < p; ++r)
    eng.set_block(0, r, static_cast<std::uint32_t>(r));
  if (p == 1) return eng.total() - before;

  if (algo == TreeAlgo::Linear) {
    // Direct addressing: send original rank oldrank[j]'s block to new rank
    // j's slot j, one serialized departure per destination.
    for (Rank j = 1; j < p; ++j) {
      eng.begin_stage();
      eng.copy(0, oldrank[j], j, j, 1);
      eng.end_stage();
    }
    if (oldrank[0] != 0) {
      eng.begin_stage();
      eng.copy(0, oldrank[0], 0, 0, 1);  // root's own block into place
      eng.end_stage();
    }
    return eng.total() - before;
  }

  // Binomial: the halving tree forwards new-rank-contiguous ranges, so the
  // root first permutes its buffer into new-rank order (slot k <- block
  // oldrank[k]).  Only the root's buffer is meaningful; the permute models
  // its local shuffle.
  const std::vector<Rank> inverse = invert_permutation(oldrank);
  eng.local_permute_all(inverse);
  for (int dist = static_cast<int>(ceil_pow2(p) / 2); dist >= 1; dist /= 2) {
    eng.begin_stage();
    for (Rank t = 0; t + dist < p; t += 2 * dist) {
      const int size = std::min(dist, p - (t + dist));
      eng.copy(t, t + dist, t + dist, t + dist, size);
    }
    eng.end_stage();
  }
  return eng.total() - before;
}

}  // namespace tarr::collectives
