#pragma once

#include <vector>

#include "collectives/collective.hpp"
#include "simmpi/engine.hpp"

/// \file allgatherv.hpp
/// MPI_Allgatherv — variable per-rank contribution sizes.  The ring
/// algorithm handles irregular sizes naturally (each stage forwards one
/// rank's whole contribution), and the in-place original-rank slot
/// addressing preserves output order under reordering exactly as in the
/// fixed-size ring.
///
/// Engine contract: block_bytes = 1 (the engine block is one byte) and
/// buf_blocks >= sum(counts).  Displacements follow MPI semantics: the
/// output vector holds original rank r's counts[r] bytes at displs[r],
/// where counts/displs are indexed by ORIGINAL rank.

namespace tarr::collectives {

/// Run a ring allgatherv; returns the simulated time added.
/// `counts[r]` is original rank r's contribution in bytes (>= 1);
/// `oldrank[j]` as in run_allgather.  Output layout: original rank r's
/// bytes at offset sum(counts[0..r)).
Usec run_allgatherv_ring(simmpi::Engine& eng, const std::vector<int>& counts,
                         const std::vector<Rank>& oldrank);

/// Convenience overload for the non-reordered case.
Usec run_allgatherv_ring(simmpi::Engine& eng,
                         const std::vector<int>& counts);

/// Verify (Data mode): every rank's output vector carries original rank
/// r's tag across its counts[r] bytes at its displacement.
void check_allgatherv_output(const simmpi::Engine& eng,
                             const std::vector<int>& counts);

}  // namespace tarr::collectives
