#include "collectives/hierarchical.hpp"

#include <algorithm>

#include "collectives/orderfix.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"

namespace tarr::collectives {

namespace {

using simmpi::Engine;
using simmpi::ExecMode;

/// Phase 1: gather the node's cpn blocks into the leader (local rank 0 of
/// each node block).  All nodes proceed concurrently, stage by stage.
void intra_gather(Engine& eng, int cpn, IntraAlgo algo) {
  const int p = eng.comm().size();
  const int nodes = p / cpn;
  if (algo == IntraAlgo::Binomial) {
    for (int dist = 1; dist < cpn; dist <<= 1) {
      eng.begin_stage();
      for (int b = 0; b < nodes; ++b) {
        const Rank leader = b * cpn;
        for (int t = 0; t + dist < cpn; t += 2 * dist) {
          const int size = std::min(dist, cpn - (t + dist));
          eng.copy(leader + t + dist, leader + t + dist, leader + t,
                   leader + t + dist, size);
        }
      }
      eng.end_stage();
    }
  } else {
    // Linear: arrivals serialize at each leader; nodes run concurrently.
    for (int t = 1; t < cpn; ++t) {
      eng.begin_stage();
      for (int b = 0; b < nodes; ++b) {
        const Rank leader = b * cpn;
        eng.copy(leader + t, leader + t, leader, leader + t, 1);
      }
      eng.end_stage();
    }
  }
}

/// Phase 2: allgather of node chunks (cpn blocks each) among the leaders.
void leader_exchange(Engine& eng, int cpn, AllgatherAlgo algo) {
  const int p = eng.comm().size();
  const int nodes = p / cpn;
  if (nodes == 1) return;

  if (algo == AllgatherAlgo::RecursiveDoubling) {
    TARR_REQUIRE(is_pow2(nodes),
                 "hierarchical RD leader phase needs 2^k nodes");
    for (int dist = 1; dist < nodes; dist <<= 1) {
      eng.begin_stage();
      for (int b = 0; b < nodes; ++b) {
        const int peer = b ^ dist;
        const int base = b & ~(dist - 1);
        eng.copy(b * cpn, base * cpn, peer * cpn, base * cpn, dist * cpn);
      }
      eng.end_stage();
    }
    return;
  }

  TARR_REQUIRE(algo == AllgatherAlgo::Ring,
               "hierarchical leader phase supports RD or ring");
  const int last_stage = eng.mode() == ExecMode::Timed ? 1 : nodes - 1;
  for (int s = 0; s < last_stage; ++s) {
    eng.begin_stage();
    for (int b = 0; b < nodes; ++b) {
      const int origin = (b - s + nodes) % nodes;
      eng.copy(b * cpn, origin * cpn, ((b + 1) % nodes) * cpn, origin * cpn,
               cpn);
    }
    eng.end_stage();
  }
  if (eng.mode() == ExecMode::Timed && nodes > 2)
    eng.repeat_last_stage(nodes - 2);
}

/// Phase 3: broadcast the complete p-block output from every leader down
/// its node.
void intra_bcast(Engine& eng, int cpn, IntraAlgo algo) {
  const int p = eng.comm().size();
  const int nodes = p / cpn;
  if (cpn == 1) return;

  if (algo == IntraAlgo::Binomial) {
    for (int dist = static_cast<int>(ceil_pow2(cpn) / 2); dist >= 1;
         dist /= 2) {
      eng.begin_stage();
      for (int b = 0; b < nodes; ++b) {
        const Rank leader = b * cpn;
        for (int t = 0; t + dist < cpn; t += 2 * dist)
          eng.copy(leader + t, 0, leader + t + dist, 0, p);
      }
      eng.end_stage();
    }
  } else {
    // Linear: the leader pushes the full buffer to each local rank in turn.
    for (int t = 1; t < cpn; ++t) {
      eng.begin_stage();
      for (int b = 0; b < nodes; ++b)
        eng.copy(b * cpn, 0, b * cpn + t, 0, p);
      eng.end_stage();
    }
  }
}

}  // namespace

Usec run_hier_allgather(simmpi::Engine& eng, const HierAllgatherOptions& opts,
                        const std::vector<Rank>& oldrank) {
  const auto& comm = eng.comm();
  const int p = comm.size();
  TARR_REQUIRE(static_cast<int>(oldrank.size()) == p,
               "run_hier_allgather: oldrank size mismatch");
  TARR_REQUIRE(is_permutation_of_iota(oldrank),
               "run_hier_allgather: oldrank is not a permutation");
  TARR_REQUIRE(eng.buf_blocks() >= p, "run_hier_allgather: buffer too small");
  TARR_REQUIRE(comm.node_contiguous(),
               "run_hier_allgather: communicator must be node-contiguous "
               "(hierarchical allgather is not supported for cyclic layouts)");
  const int cpn = comm.machine().cores_per_node();
  TARR_REQUIRE(is_pow2(cpn) || opts.intra == IntraAlgo::Linear,
               "hierarchical binomial phases need 2^k cores per node");
  const Usec before = eng.total();

  seed_allgather_inputs(eng, oldrank);
  if (opts.fix == OrderFix::InitComm) init_comm_exchange(eng, oldrank);

  {
    Engine::PhaseScope ps(eng, "intra-gather");
    intra_gather(eng, cpn, opts.intra);
  }
  {
    Engine::PhaseScope ps(eng, "leader-exchange");
    leader_exchange(eng, cpn, opts.leader_algo);
  }
  {
    Engine::PhaseScope ps(eng, "intra-bcast");
    intra_bcast(eng, cpn, opts.intra);
  }

  if (opts.fix == OrderFix::EndShuffle) end_shuffle(eng, oldrank);
  return eng.total() - before;
}

Usec run_hier_allgather(simmpi::Engine& eng,
                        const HierAllgatherOptions& opts) {
  return run_hier_allgather(eng, opts,
                            identity_permutation(eng.comm().size()));
}

Usec run_hier_allgather_pipelined(simmpi::Engine& eng, IntraAlgo gather_algo,
                                  OrderFix fix,
                                  const std::vector<Rank>& oldrank) {
  const auto& comm = eng.comm();
  const int p = comm.size();
  TARR_REQUIRE(static_cast<int>(oldrank.size()) == p,
               "run_hier_allgather_pipelined: oldrank size mismatch");
  TARR_REQUIRE(is_permutation_of_iota(oldrank),
               "run_hier_allgather_pipelined: oldrank not a permutation");
  TARR_REQUIRE(eng.buf_blocks() >= p,
               "run_hier_allgather_pipelined: buffer too small");
  TARR_REQUIRE(comm.node_contiguous(),
               "run_hier_allgather_pipelined: needs node-contiguous ranks");
  const int cpn = comm.machine().cores_per_node();
  TARR_REQUIRE(is_pow2(cpn),
               "run_hier_allgather_pipelined: needs 2^k cores per node");
  const int nodes = p / cpn;
  const Usec before = eng.total();

  seed_allgather_inputs(eng, oldrank);
  if (fix == OrderFix::InitComm) init_comm_exchange(eng, oldrank);
  {
    Engine::PhaseScope ps(eng, "intra-gather");
    intra_gather(eng, cpn, gather_algo);
  }

  // Superstage t carries the ring transfer of step t (t < nodes-1) plus,
  // for every node and every broadcast depth k, the binomial sub-stage k of
  // the chunk that became available k-1 superstages ago.  Chunk origins:
  // the own chunk (origin = node index) is available at superstage 0; the
  // chunk received in ring step s becomes available at superstage s+1.
  const int depth = floor_log2(cpn);  // binomial bcast sub-stages (0 if cpn=1)
  const int ring_steps = nodes - 1;
  const int superstages = std::max(ring_steps, 1 + (depth - 1)) + depth;

  auto emit_bcast_substage = [&](int node, int origin, int k) {
    // Sub-stage k (1-based) of the halving-tree broadcast of the cpn-block
    // chunk at offset origin*cpn within node `node`.
    const int dist = cpn >> k;
    const Rank leader = node * cpn;
    for (int tl = 0; tl + dist < cpn; tl += 2 * dist)
      eng.copy(leader + tl, origin * cpn, leader + tl + dist, origin * cpn,
               cpn);
  };

  // Whether superstage t carries any transfer at all (trailing superstages
  // of the drain can be dead when the ring is longer than the broadcast
  // depth; a dead stage must not reach the engine — the schedule verifier
  // rejects stages with zero transfers).
  auto superstage_live = [&](int t) {
    if (t < ring_steps) return true;
    if (cpn > 1) {
      for (int k = 1; k <= depth; ++k) {
        const int avail = t - k + 1;
        if (avail == 0 || (avail >= 1 && avail - 1 < ring_steps)) return true;
      }
    }
    return false;
  };

  {
    Engine::PhaseScope ps(eng, "pipelined-ring-bcast");
    for (int t = 0; t < superstages; ++t) {
      if (!superstage_live(t)) continue;
      eng.begin_stage();
      if (t < ring_steps) {
        for (int b = 0; b < nodes; ++b) {
          const int origin = (b - t + nodes) % nodes;
          eng.copy(b * cpn, origin * cpn, ((b + 1) % nodes) * cpn,
                   origin * cpn, cpn);
        }
      }
      if (cpn > 1) {
        for (int b = 0; b < nodes; ++b) {
          for (int k = 1; k <= depth; ++k) {
            const int avail = t - k + 1;  // availability superstage of chunk
            if (avail == 0) {
              emit_bcast_substage(b, b, k);
            } else if (avail >= 1 && avail - 1 < ring_steps) {
              const int s = avail - 1;  // ring step that delivered it
              const int origin = (b - 1 - s + nodes) % nodes;
              emit_bcast_substage(b, origin, k);
            }
          }
        }
      }
      eng.end_stage();
    }
  }

  if (fix == OrderFix::EndShuffle) end_shuffle(eng, oldrank);
  return eng.total() - before;
}

Usec run_hier_allgather_pipelined(simmpi::Engine& eng,
                                  IntraAlgo gather_algo, OrderFix fix) {
  return run_hier_allgather_pipelined(
      eng, gather_algo, fix, identity_permutation(eng.comm().size()));
}

}  // namespace tarr::collectives
