#include "collectives/allreduce.hpp"

#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace tarr::collectives {

Usec run_allreduce_rd(simmpi::Engine& eng) {
  const int p = eng.comm().size();
  TARR_REQUIRE(is_pow2(p), "run_allreduce_rd: needs 2^k ranks");
  const Usec before = eng.total();
  for (int dist = 1; dist < p; dist <<= 1) {
    eng.begin_stage();
    for (Rank j = 0; j < p; ++j) eng.combine(j, 0, j ^ dist, 0, 1);
    eng.end_stage();
  }
  return eng.total() - before;
}

Usec run_allreduce_rabenseifner(simmpi::Engine& eng) {
  const int p = eng.comm().size();
  TARR_REQUIRE(is_pow2(p), "run_allreduce_rabenseifner: needs 2^k ranks");
  TARR_REQUIRE(eng.buf_blocks() >= p,
               "run_allreduce_rabenseifner: buffer too small");
  const Usec before = eng.total();
  if (p == 1) return 0.0;

  // Recursive-halving reduce-scatter: each rank tracks the base of the
  // segment it still owns; its peer contributes the peer's copy of that
  // (shrinking) segment.
  std::vector<int> base(p, 0);
  for (int dist = p / 2; dist >= 1; dist /= 2) {
    eng.begin_stage();
    for (Rank j = 0; j < p; ++j) {
      const Rank peer = j ^ dist;
      const int mine = base[j] + ((j & dist) ? dist : 0);
      eng.combine(peer, mine, j, mine, dist);
      base[j] = mine;
    }
    eng.end_stage();
  }
  // base[j] == j now; a plain recursive-doubling allgather distributes the
  // fully reduced blocks.
  for (int dist = 1; dist < p; dist <<= 1) {
    eng.begin_stage();
    for (Rank j = 0; j < p; ++j) {
      const int b = j & ~(dist - 1);
      eng.copy(j, b, j ^ dist, b, dist);
    }
    eng.end_stage();
  }
  return eng.total() - before;
}

Usec run_allreduce_ring(simmpi::Engine& eng) {
  const int p = eng.comm().size();
  TARR_REQUIRE(eng.buf_blocks() >= p, "run_allreduce_ring: buffer too small");
  const Usec before = eng.total();
  if (p == 1) return 0.0;

  const bool timed = eng.mode() == simmpi::ExecMode::Timed;
  const int stages = timed ? 1 : p - 1;

  // Reduce-scatter ring: at step s rank j sends chunk (j - s) mod p to its
  // successor, which combines it in place; after p-1 steps rank j owns the
  // fully reduced chunk (j + 1) mod p.
  {
    simmpi::Engine::PhaseScope ps(eng, "ring-reduce-scatter");
    for (int s = 0; s < stages; ++s) {
      eng.begin_stage();
      for (Rank j = 0; j < p; ++j) {
        const int chunk = (j - s + p) % p;
        eng.combine(j, chunk, (j + 1) % p, chunk, 1);
      }
      eng.end_stage();
    }
    if (timed && p > 2) eng.repeat_last_stage(p - 2);
  }
  // Allgather ring: rank j starts by forwarding its reduced chunk
  // (j + 1) mod p; at step s it forwards chunk (j + 1 - s) mod p.
  {
    simmpi::Engine::PhaseScope ps(eng, "ring-allgather");
    for (int s = 0; s < stages; ++s) {
      eng.begin_stage();
      for (Rank j = 0; j < p; ++j) {
        const int chunk = (j + 1 - s + p) % p;
        eng.copy(j, chunk, (j + 1) % p, chunk, 1);
      }
      eng.end_stage();
    }
    if (timed && p > 2) eng.repeat_last_stage(p - 2);
  }
  return eng.total() - before;
}

}  // namespace tarr::collectives
