#include "collectives/allreduce.hpp"

#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace tarr::collectives {

Usec run_allreduce_rd(simmpi::Engine& eng) {
  const int p = eng.comm().size();
  TARR_REQUIRE(is_pow2(p), "run_allreduce_rd: needs 2^k ranks");
  const Usec before = eng.total();
  for (int dist = 1; dist < p; dist <<= 1) {
    eng.begin_stage();
    for (Rank j = 0; j < p; ++j) eng.combine(j, 0, j ^ dist, 0, 1);
    eng.end_stage();
  }
  return eng.total() - before;
}

Usec run_allreduce_rabenseifner(simmpi::Engine& eng) {
  const int p = eng.comm().size();
  TARR_REQUIRE(is_pow2(p), "run_allreduce_rabenseifner: needs 2^k ranks");
  TARR_REQUIRE(eng.buf_blocks() >= p,
               "run_allreduce_rabenseifner: buffer too small");
  const Usec before = eng.total();
  if (p == 1) return 0.0;

  // Recursive-halving reduce-scatter: each rank tracks the base of the
  // segment it still owns; its peer contributes the peer's copy of that
  // (shrinking) segment.
  std::vector<int> base(p, 0);
  for (int dist = p / 2; dist >= 1; dist /= 2) {
    eng.begin_stage();
    for (Rank j = 0; j < p; ++j) {
      const Rank peer = j ^ dist;
      const int mine = base[j] + ((j & dist) ? dist : 0);
      eng.combine(peer, mine, j, mine, dist);
      base[j] = mine;
    }
    eng.end_stage();
  }
  // base[j] == j now; a plain recursive-doubling allgather distributes the
  // fully reduced blocks.
  for (int dist = 1; dist < p; dist <<= 1) {
    eng.begin_stage();
    for (Rank j = 0; j < p; ++j) {
      const int b = j & ~(dist - 1);
      eng.copy(j, b, j ^ dist, b, dist);
    }
    eng.end_stage();
  }
  return eng.total() - before;
}

}  // namespace tarr::collectives
