#pragma once

#include <vector>

#include "simmpi/engine.hpp"

/// \file orderfix.hpp
/// §V-B: preserving the correct order of the output buffer under rank
/// reordering.
///
/// Throughout the collective layer, `oldrank[j]` denotes the ORIGINAL rank
/// of the process acting as new rank j in the reordered communicator (the
/// identity permutation when no reordering happened).  Allgather engines use
/// a p-block buffer where new rank j's own contribution is seeded at slot j.

namespace tarr::collectives {

/// Seed every rank's contribution at its own slot, tagged with its original
/// rank — the canonical pre-collective state (Data mode; cost-free).
void seed_allgather_inputs(simmpi::Engine& eng,
                           const std::vector<Rank>& oldrank);

/// §V-B-1 "extra initial communications": one stage in which the input
/// vector of original rank j travels to the process whose new rank is j, so
/// the collective then produces an output vector in original-rank order.
void init_comm_exchange(simmpi::Engine& eng,
                        const std::vector<Rank>& oldrank);

/// §V-B-2 "memory shuffling at the end": permute the output vector so the
/// block produced at position j lands at position oldrank[j].
void end_shuffle(simmpi::Engine& eng, const std::vector<Rank>& oldrank);

/// Verify (Data mode) that every rank's full output vector is in original-
/// rank order: block k carries tag k.  Throws tarr::Error on violation.
void check_allgather_output(const simmpi::Engine& eng);

}  // namespace tarr::collectives
