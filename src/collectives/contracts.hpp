#pragma once

#include <vector>

#include "analyze/contract.hpp"
#include "collectives/alltoall.hpp"
#include "collectives/collective.hpp"
#include "collectives/gather_bcast.hpp"

/// \file contracts.hpp
/// Contract factories: the static specification of every built-in
/// collective, phrased in tarr::analyze's origin-set algebra.
///
/// Each factory states the seeding convention its runner (or its tests)
/// uses and the final origin sets the collective must deliver, for a
/// communicator of `p` ranks with `buf_blocks` blocks per rank and the
/// §V-B mapping `oldrank` (oldrank[j] = original rank of the process
/// acting as new rank j).  Shrunken-communicator runs need no dedicated
/// factories: a shrunken collective is just the standard collective over
/// the survivor communicator, so the standard contract at the survivor
/// count (with the shrunken comm's oldrank) applies verbatim.
///
/// Origin universes:
///  * allgather/gather/scatter — origin o is original rank o's block;
///  * bcast                    — the single message, origin 0;
///  * bcast-scatter-allgather  — origin b is segment b of the message;
///  * alltoall                 — origin s*p + r is the block original rank
///                               s addresses to original rank r;
///  * allreduce                — origin r (RD) or r*p + b (Rabenseifner)
///                               is original rank r's contribution (to
///                               segment b).

namespace tarr::collectives {

/// run_allgather with `algo` over `oldrank`: every rank ends with slot b
/// holding original rank b's block, for all b < p.
analyze::Contract contract_allgather(int p, int buf_blocks,
                                     AllgatherAlgo algo,
                                     const std::vector<Rank>& oldrank);

/// run_hier_allgather / run_hier_allgather_pipelined: same seeding and
/// output as recursive-doubling allgather (seed_allgather_inputs).
analyze::Contract contract_hier_allgather(int p, int buf_blocks,
                                          const std::vector<Rank>& oldrank,
                                          bool pipelined);

/// run_gather with `algo`: the root (new rank 0) ends with slot b holding
/// original rank b's block, for all b < p.
analyze::Contract contract_gather(int p, int buf_blocks, TreeAlgo algo,
                                  const std::vector<Rank>& oldrank);

/// run_bcast: every rank ends with the root's message in slot 0.
analyze::Contract contract_bcast(int p, int buf_blocks, TreeAlgo algo);

/// run_bcast_scatter_allgather: every rank ends with message segment b in
/// slot b, for all b < p.
analyze::Contract contract_bcast_scatter_allgather(int p, int buf_blocks,
                                                   AllgatherAlgo ag);

/// run_scatter: new rank j ends with original rank oldrank[j]'s block in
/// slot j.
analyze::Contract contract_scatter(int p, int buf_blocks, TreeAlgo algo,
                                   const std::vector<Rank>& oldrank);

/// run_alltoall: new rank j ends with original rank i's block for it in
/// receive slot p + i, for all i < p.
analyze::Contract contract_alltoall(int p, int buf_blocks, AlltoallAlgo algo,
                                    const std::vector<Rank>& oldrank);

/// run_allreduce_rd with the test-suite seeding (rank r's contribution in
/// its slot 0): every rank's slot 0 ends holding the XOR of all p
/// contributions.
analyze::Contract contract_allreduce_rd(int p, int buf_blocks);

/// run_allreduce_rabenseifner with the test-suite seeding (rank r seeds
/// every segment b): every rank ends with segment b holding the XOR of
/// all p contributions to b, for all b < p.
analyze::Contract contract_allreduce_rabenseifner(int p, int buf_blocks);

}  // namespace tarr::collectives
