#pragma once

#include <vector>

#include "collectives/collective.hpp"
#include "simmpi/engine.hpp"

/// \file allgather.hpp
/// Non-hierarchical MPI_Allgather algorithms over a (possibly reordered)
/// communicator.
///
/// Engine contract: buf_blocks >= p and block_bytes = the per-rank
/// contribution size m (the OSU "message size").  The runner seeds inputs
/// itself, applies the requested §V-B order fix, and in Data mode the final
/// buffers satisfy check_allgather_output().
///
/// `oldrank[j]` is the original rank of the process acting as new rank j
/// (identity when the communicator was not reordered).

namespace tarr::collectives {

/// Options for one allgather execution.
struct AllgatherOptions {
  AllgatherAlgo algo = AllgatherAlgo::RecursiveDoubling;
  OrderFix fix = OrderFix::None;
};

/// Run one allgather; returns the simulated time it added to the engine.
///
/// Ring and Bruck ignore `fix`: ring stores every incoming block directly at
/// its original-rank index (§V-B: "we resolve the issue from within the
/// algorithm itself"), and Bruck folds the correction into its mandatory
/// final rotation.  Recursive doubling requires InitComm or EndShuffle
/// whenever `oldrank` is not the identity.
Usec run_allgather(simmpi::Engine& eng, const AllgatherOptions& opts,
                   const std::vector<Rank>& oldrank);

/// Convenience overload for the non-reordered case.
Usec run_allgather(simmpi::Engine& eng, const AllgatherOptions& opts);

namespace detail {

/// The bare recursive-doubling stage loop (no seeding, no order fix) —
/// reused by the scatter-allgather broadcast and the hierarchical path.
void rd_stages(simmpi::Engine& eng);

/// The bare ring stage loop with in-place original-rank slot addressing.
void ring_stages(simmpi::Engine& eng, const std::vector<Rank>& oldrank);

}  // namespace detail

}  // namespace tarr::collectives
