#include "collectives/orderfix.hpp"

#include "check/audit_engine.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"

namespace tarr::collectives {

void seed_allgather_inputs(simmpi::Engine& eng,
                           const std::vector<Rank>& oldrank) {
  const int p = eng.comm().size();
  TARR_REQUIRE(static_cast<int>(oldrank.size()) == p,
               "seed_allgather_inputs: permutation size mismatch");
  TARR_REQUIRE(eng.buf_blocks() >= p,
               "seed_allgather_inputs: buffer smaller than communicator");
  for (Rank j = 0; j < p; ++j)
    eng.set_block(j, j, static_cast<std::uint32_t>(oldrank[j]));
}

void init_comm_exchange(simmpi::Engine& eng,
                        const std::vector<Rank>& oldrank) {
  const int p = eng.comm().size();
  TARR_REQUIRE(static_cast<int>(oldrank.size()) == p,
               "init_comm_exchange: permutation size mismatch");
  const std::vector<Rank> holder = invert_permutation(oldrank);
  // holder[o] = new rank of the process whose original rank is o; after the
  // exchange, new rank j's slot j carries original rank j's input.
  bool any = false;
  for (Rank j = 0; j < p; ++j) any |= holder[j] != j;
  if (!any) return;

  simmpi::Engine::PhaseScope ps(eng, "init-comm-exchange");
  eng.begin_stage();
  for (Rank j = 0; j < p; ++j) {
    if (holder[j] != j) eng.copy(holder[j], holder[j], j, j, 1);
  }
  eng.end_stage();
}

void end_shuffle(simmpi::Engine& eng, const std::vector<Rank>& oldrank) {
  const int p = eng.comm().size();
  TARR_REQUIRE(static_cast<int>(oldrank.size()) == p,
               "end_shuffle: permutation size mismatch");
  // The output slot j holds original rank oldrank[j]'s block; move it there.
  // Buffer slots beyond p (if any) stay put.
  std::vector<int> dst(eng.buf_blocks());
  for (int b = 0; b < eng.buf_blocks(); ++b)
    dst[b] = b < p ? oldrank[b] : b;
  eng.local_permute_all(dst);
}

void check_allgather_output(const simmpi::Engine& eng) {
  check::audit_allgather(eng);
}

}  // namespace tarr::collectives
