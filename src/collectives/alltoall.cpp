#include "collectives/alltoall.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"

namespace tarr::collectives {

namespace {

/// Seed send blocks: new rank j's slot k holds the block its process
/// (original rank oldrank[j]) addresses to the process acting as new rank
/// k (original rank oldrank[k]).
void seed_alltoall(simmpi::Engine& eng, const std::vector<Rank>& oldrank) {
  const int p = eng.comm().size();
  for (Rank j = 0; j < p; ++j)
    for (Rank k = 0; k < p; ++k)
      eng.set_block(j, k, alltoall_tag(oldrank[j], oldrank[k]));
}

}  // namespace

Usec run_alltoall(simmpi::Engine& eng, AlltoallAlgo algo,
                  const std::vector<Rank>& oldrank) {
  const int p = eng.comm().size();
  TARR_REQUIRE(static_cast<int>(oldrank.size()) == p,
               "run_alltoall: oldrank size mismatch");
  TARR_REQUIRE(is_permutation_of_iota(oldrank),
               "run_alltoall: oldrank is not a permutation");
  TARR_REQUIRE(eng.buf_blocks() >= 2 * p, "run_alltoall: buffer too small");
  TARR_REQUIRE(algo != AlltoallAlgo::PairwiseXor || is_pow2(p),
               "run_alltoall: pairwise-xor needs 2^k ranks");
  const Usec before = eng.total();

  seed_alltoall(eng, oldrank);

  // Own block: a local move into the receive region.
  eng.begin_stage();
  for (Rank j = 0; j < p; ++j) eng.copy(j, j, j, p + oldrank[j], 1);
  eng.end_stage();

  for (int s = 1; s < p; ++s) {
    eng.begin_stage();
    for (Rank j = 0; j < p; ++j) {
      const Rank dest =
          algo == AlltoallAlgo::PairwiseXor ? (j ^ s) : (j + s) % p;
      // The receive slot is indexed by the sender's ORIGINAL rank, so the
      // output is in original-rank order for any reordering.
      eng.copy(j, dest, dest, p + oldrank[j], 1);
    }
    eng.end_stage();
  }
  return eng.total() - before;
}

Usec run_alltoall(simmpi::Engine& eng, AlltoallAlgo algo) {
  return run_alltoall(eng, algo, identity_permutation(eng.comm().size()));
}

void check_alltoall_output(const simmpi::Engine& eng,
                           const std::vector<Rank>& oldrank) {
  TARR_REQUIRE(eng.mode() == simmpi::ExecMode::Data,
               "check_alltoall_output: requires Data mode");
  const int p = eng.comm().size();
  for (Rank j = 0; j < p; ++j) {
    for (Rank i = 0; i < p; ++i) {
      TARR_REQUIRE(eng.block(j, p + i) == alltoall_tag(i, oldrank[j]),
                   "alltoall output wrong at new rank " + std::to_string(j) +
                       ", peer " + std::to_string(i));
    }
  }
}

}  // namespace tarr::collectives
