#pragma once

#include "collectives/collective.hpp"
#include "simmpi/engine.hpp"

/// \file reduce_barrier.hpp
/// MPI_Reduce and MPI_Barrier — rounding out the collective substrate.
///
/// Reduce uses the binomial halving tree (the gather tree with combining
/// instead of concatenation), so BGMH's parent-child locality applies to it
/// directly.  The dissemination barrier's signal pattern is the Bruck graph
/// (rank i signals (i + 2^k) mod p in round k), so BKMH covers it.

namespace tarr::collectives {

/// Binomial reduce of every rank's block 0 into new rank 0 (engine XOR
/// combine as the reduction op).  Engine: buf_blocks >= 1, block_bytes =
/// vector size.  Works for any p.
Usec run_reduce_binomial(simmpi::Engine& eng);

/// Dissemination barrier: ceil(log2 p) rounds of single-byte signals, rank
/// i notifying (i + 2^k) mod p in round k.  Engine: buf_blocks >= 1; the
/// configured block_bytes is ignored in spirit (signals are minimal) but
/// priced as one block per signal, so use block_bytes = 1.
Usec run_barrier_dissemination(simmpi::Engine& eng);

}  // namespace tarr::collectives
