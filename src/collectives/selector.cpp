#include "collectives/selector.hpp"

#include "common/bits.hpp"
#include "trace/sink.hpp"

namespace tarr::collectives {

namespace {

/// The selector is a pure function, so its decision counters go to the
/// ambient thread sink (one thread-local load when tracing is off).
AllgatherAlgo count_pick(AllgatherAlgo algo, const char* name) {
  if (trace::TraceSink* sink = trace::thread_sink())
    sink->add_count(std::string("selector.") + name, 1.0);
  return algo;
}

}  // namespace

AllgatherAlgo select_allgather_algo(int p, Bytes msg_bytes,
                                    const SelectorConfig& cfg) {
  if (msg_bytes < cfg.rd_max_msg) {
    return is_pow2(p)
               ? count_pick(AllgatherAlgo::RecursiveDoubling, "rd")
               : count_pick(AllgatherAlgo::Bruck, "bruck");
  }
  return count_pick(AllgatherAlgo::Ring, "ring");
}

}  // namespace tarr::collectives
