#include "collectives/selector.hpp"

#include "common/bits.hpp"

namespace tarr::collectives {

AllgatherAlgo select_allgather_algo(int p, Bytes msg_bytes,
                                    const SelectorConfig& cfg) {
  if (msg_bytes < cfg.rd_max_msg) {
    return is_pow2(p) ? AllgatherAlgo::RecursiveDoubling
                      : AllgatherAlgo::Bruck;
  }
  return AllgatherAlgo::Ring;
}

}  // namespace tarr::collectives
