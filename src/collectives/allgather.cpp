#include "collectives/allgather.hpp"

#include <algorithm>

#include "collectives/orderfix.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"

namespace tarr::collectives {

using simmpi::Engine;
using simmpi::ExecMode;

namespace detail {

/// Recursive doubling (p a power of two): stage `dist` pairs j with
/// j XOR dist, each sending its accumulated dist-block range; the range
/// starts at j & ~(dist-1) because blocks are kept new-rank-contiguous.
void rd_stages(Engine& eng) {
  const int p = eng.comm().size();
  TARR_REQUIRE(is_pow2(p), "recursive doubling requires power-of-two size");
  for (int dist = 1; dist < p; dist <<= 1) {
    eng.begin_stage();
    for (Rank j = 0; j < p; ++j) {
      const Rank peer = j ^ dist;
      const int base = j & ~(dist - 1);
      eng.copy(j, base, peer, base, dist);
    }
    eng.end_stage();
  }
}

/// Ring with in-place order correction: the block that originated at new
/// rank o always lives at slot oldrank[o], so the output is in original-rank
/// order with no extra mechanism.  In Timed mode only the first stage is
/// evaluated and repeated p-2 more times (all ring stages are isomorphic).
void ring_stages(Engine& eng, const std::vector<Rank>& oldrank) {
  const int p = eng.comm().size();
  const int last_stage = eng.mode() == ExecMode::Timed ? 1 : p - 1;
  for (int s = 0; s < last_stage; ++s) {
    eng.begin_stage();
    for (Rank j = 0; j < p; ++j) {
      const Rank origin = (j - s + p) % p;
      const int slot = oldrank[origin];
      eng.copy(j, slot, (j + 1) % p, slot, 1);
    }
    eng.end_stage();
  }
  if (eng.mode() == ExecMode::Timed && p > 2)
    eng.repeat_last_stage(p - 2);
}

}  // namespace detail

namespace {

/// Bruck: local slot k of rank j holds the block of origin (j+k) mod p; the
/// final rotation that Bruck needs anyway also lands every block at its
/// original-rank index.
void bruck_stages(Engine& eng, const std::vector<Rank>& oldrank) {
  const int p = eng.comm().size();
  for (int dist = 1; dist < p; dist <<= 1) {
    const int cnt = std::min(dist, p - dist);
    eng.begin_stage();
    for (Rank j = 0; j < p; ++j)
      eng.copy((j + dist) % p, 0, j, dist, cnt);
    eng.end_stage();
  }
  // Final rotation/reorder: block k of rank j (origin (j+k) mod p) moves to
  // slot oldrank[(j+k) mod p].  This is a per-rank permutation, so it cannot
  // use local_permute_all; in Timed mode each rank is charged one local copy
  // of exactly the blocks that move.
  eng.begin_stage();
  if (eng.mode() == ExecMode::Data) {
    for (Rank j = 0; j < p; ++j) {
      for (int k = 0; k < p; ++k) {
        const int dst = oldrank[(j + k) % p];
        if (dst != k) eng.copy(j, k, j, dst, 1);
      }
    }
  } else {
    for (Rank j = 0; j < p; ++j) {
      int moved = 0;
      for (int k = 0; k < p; ++k)
        if (oldrank[(j + k) % p] != k) ++moved;
      if (moved > 0) eng.copy(j, 0, j, 0, moved);
    }
  }
  eng.end_stage();
}

}  // namespace

Usec run_allgather(simmpi::Engine& eng, const AllgatherOptions& opts,
                   const std::vector<Rank>& oldrank) {
  const int p = eng.comm().size();
  TARR_REQUIRE(static_cast<int>(oldrank.size()) == p,
               "run_allgather: oldrank size mismatch");
  TARR_REQUIRE(is_permutation_of_iota(oldrank),
               "run_allgather: oldrank is not a permutation");
  TARR_REQUIRE(eng.buf_blocks() >= p, "run_allgather: buffer too small");
  const Usec before = eng.total();

  switch (opts.algo) {
    case AllgatherAlgo::RecursiveDoubling: {
      seed_allgather_inputs(eng, oldrank);
      if (opts.fix == OrderFix::InitComm) init_comm_exchange(eng, oldrank);
      if (p > 1) {
        Engine::PhaseScope ps(eng, "recursive-doubling");
        detail::rd_stages(eng);
      }
      if (opts.fix == OrderFix::EndShuffle) end_shuffle(eng, oldrank);
      break;
    }
    case AllgatherAlgo::Ring: {
      // Own block goes straight to its original-rank slot.
      for (Rank j = 0; j < p; ++j)
        eng.set_block(j, oldrank[j], static_cast<std::uint32_t>(oldrank[j]));
      if (p > 1) {
        Engine::PhaseScope ps(eng, "ring");
        detail::ring_stages(eng, oldrank);
      }
      break;
    }
    case AllgatherAlgo::Bruck: {
      for (Rank j = 0; j < p; ++j)
        eng.set_block(j, 0, static_cast<std::uint32_t>(oldrank[j]));
      if (p > 1) {
        Engine::PhaseScope ps(eng, "bruck");
        bruck_stages(eng, oldrank);
      } else {
        eng.set_block(0, oldrank[0], static_cast<std::uint32_t>(oldrank[0]));
      }
      break;
    }
  }
  return eng.total() - before;
}

Usec run_allgather(simmpi::Engine& eng, const AllgatherOptions& opts) {
  return run_allgather(eng, opts, identity_permutation(eng.comm().size()));
}

}  // namespace tarr::collectives
