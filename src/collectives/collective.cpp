#include "collectives/collective.hpp"

namespace tarr::collectives {

const char* to_string(AllgatherAlgo a) {
  switch (a) {
    case AllgatherAlgo::RecursiveDoubling:
      return "recursive-doubling";
    case AllgatherAlgo::Ring:
      return "ring";
    case AllgatherAlgo::Bruck:
      return "bruck";
  }
  return "?";
}

const char* to_string(OrderFix f) {
  switch (f) {
    case OrderFix::None:
      return "none";
    case OrderFix::InitComm:
      return "initComm";
    case OrderFix::EndShuffle:
      return "endShfl";
  }
  return "?";
}

const char* to_string(IntraAlgo a) {
  switch (a) {
    case IntraAlgo::Linear:
      return "linear";
    case IntraAlgo::Binomial:
      return "binomial";
  }
  return "?";
}

}  // namespace tarr::collectives
