#pragma once

#include "collectives/collective.hpp"
#include "simmpi/engine.hpp"

/// \file alltoall.hpp
/// MPI_Alltoall — completing the collective substrate (the related work the
/// paper builds on includes topology-aware alltoall schedules, [21]).
///
/// Engine contract: buf_blocks >= 2p and block_bytes = the per-pair message
/// size.  Slots [0, p) are the send blocks (slot k = block destined to rank
/// k); slots [p, 2p) are the receive blocks (slot p+i = block received from
/// rank i).  The runner seeds the send blocks itself in Data mode with tag
/// alltoall_tag(sender_oldrank, dest_newrank-independent): verification is
/// via check_alltoall_output().
///
/// Alltoall is traffic-symmetric (every rank exchanges with every other),
/// so rank reordering cannot reduce its total volume; the algorithms are
/// provided for substrate completeness and run on reordered communicators
/// unchanged (the receive slot is indexed by the ORIGINAL rank of the peer,
/// so output order is preserved in place for any `oldrank`).

namespace tarr::collectives {

/// Alltoall algorithm family.
enum class AlltoallAlgo {
  PairwiseXor,  ///< stage s: exchange with j XOR s (2^k ranks only)
  Rotation,     ///< stage s: send to (j+s) mod p, receive from (j-s) mod p
};

/// Tag carried by the block sender (original rank s) addresses to receiver
/// (original rank r).
inline std::uint32_t alltoall_tag(Rank sender_old, Rank receiver_old) {
  return static_cast<std::uint32_t>(sender_old) * 65536u +
         static_cast<std::uint32_t>(receiver_old);
}

/// Run one alltoall; returns the simulated time added.  `oldrank[j]` is the
/// original rank of the process acting as new rank j.
Usec run_alltoall(simmpi::Engine& eng, AlltoallAlgo algo,
                  const std::vector<Rank>& oldrank);

/// Convenience overload for the non-reordered case.
Usec run_alltoall(simmpi::Engine& eng, AlltoallAlgo algo);

/// Verify (Data mode): every rank's receive slot p+i carries
/// alltoall_tag(i, own original rank).  Throws tarr::Error on violation.
void check_alltoall_output(const simmpi::Engine& eng,
                           const std::vector<Rank>& oldrank);

}  // namespace tarr::collectives
