#pragma once

#include "common/types.hpp"

/// \file collective.hpp
/// Shared vocabulary of the collective-algorithm layer.

namespace tarr::collectives {

/// Allgather algorithm families evaluated in the paper (+ Bruck, §VII).
enum class AllgatherAlgo { RecursiveDoubling, Ring, Bruck };

/// §V-B output-order preservation mechanisms for reordered communicators.
///   None       — ranks are in original order (or the algorithm fixes the
///                order in place, as ring and Bruck do);
///   InitComm   — extra initial point-to-point exchange moves every input to
///                the process whose *new* rank equals the data's old rank;
///   EndShuffle — run as-is, then locally permute the output vector.
enum class OrderFix { None, InitComm, EndShuffle };

/// Intra-node phase style of the hierarchical allgather: direct linear
/// gather/bcast through the leader, or binomial-tree ("non-linear").
enum class IntraAlgo { Linear, Binomial };

const char* to_string(AllgatherAlgo a);
const char* to_string(OrderFix f);
const char* to_string(IntraAlgo a);

}  // namespace tarr::collectives
