#pragma once

#include "collectives/collective.hpp"

/// \file selector.hpp
/// MVAPICH-like algorithm selection for MPI_Allgather.  Like the library the
/// paper baselines against, the simulated stack picks recursive doubling for
/// small messages (power-of-two communicators; Bruck otherwise) and the ring
/// for large messages.  The improvement figures of the paper are computed
/// against whatever this selector picks — reordering "keeps collective
/// algorithms intact" (§IV).

namespace tarr::collectives {

/// Thresholds of the selection rule.
struct SelectorConfig {
  /// Per-rank message sizes strictly below this use recursive doubling /
  /// Bruck; sizes at or above it use the ring.
  Bytes rd_max_msg = 32 * 1024;
};

/// The algorithm the default library would run for `p` ranks and a per-rank
/// message of `msg_bytes`.
AllgatherAlgo select_allgather_algo(int p, Bytes msg_bytes,
                                    const SelectorConfig& cfg = SelectorConfig{});

}  // namespace tarr::collectives
