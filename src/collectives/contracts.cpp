#include "collectives/contracts.hpp"

#include <string>

#include "common/error.hpp"
#include "common/permutation.hpp"

namespace tarr::collectives {

using analyze::Contract;

namespace {

Contract base(std::string name, int p, int buf_blocks, int num_origins,
              const std::vector<Rank>& oldrank) {
  TARR_REQUIRE(static_cast<int>(oldrank.size()) == p,
               "contract: oldrank size mismatch");
  TARR_REQUIRE(is_permutation_of_iota(oldrank),
               "contract: oldrank is not a permutation");
  Contract c;
  c.name = std::move(name);
  c.num_ranks = p;
  c.buf_blocks = buf_blocks;
  c.num_origins = num_origins;
  return c;
}

/// The common allgather verdict: every rank's slot b holds exactly
/// original rank b's block.
void expect_allgather_output(Contract& c, int p) {
  for (Rank j = 0; j < p; ++j)
    for (int b = 0; b < p; ++b) c.expect_single(j, b, b);
}

}  // namespace

Contract contract_allgather(int p, int buf_blocks, AllgatherAlgo algo,
                            const std::vector<Rank>& oldrank) {
  Contract c = base(std::string("allgather/") + to_string(algo), p,
                    buf_blocks, p, oldrank);
  switch (algo) {
    case AllgatherAlgo::RecursiveDoubling:
      // seed_allgather_inputs: new rank j's own slot j.
      for (Rank j = 0; j < p; ++j) c.seed(j, j, oldrank[j]);
      break;
    case AllgatherAlgo::Ring:
      // Own block seeded straight at its original-rank slot.
      for (Rank j = 0; j < p; ++j) c.seed(j, oldrank[j], oldrank[j]);
      break;
    case AllgatherAlgo::Bruck:
      // Bruck keeps the accumulating window at slot 0.
      for (Rank j = 0; j < p; ++j) c.seed(j, 0, oldrank[j]);
      break;
  }
  expect_allgather_output(c, p);
  return c;
}

Contract contract_hier_allgather(int p, int buf_blocks,
                                 const std::vector<Rank>& oldrank,
                                 bool pipelined) {
  Contract c = base(pipelined ? "hier-allgather/pipelined" : "hier-allgather",
                    p, buf_blocks, p, oldrank);
  for (Rank j = 0; j < p; ++j) c.seed(j, j, oldrank[j]);  // seed_allgather_inputs
  expect_allgather_output(c, p);
  return c;
}

Contract contract_gather(int p, int buf_blocks, TreeAlgo algo,
                         const std::vector<Rank>& oldrank) {
  Contract c = base(std::string("gather/") +
                        (algo == TreeAlgo::Linear ? "linear" : "binomial"),
                    p, buf_blocks, p, oldrank);
  if (algo == TreeAlgo::Linear) {
    for (Rank j = 0; j < p; ++j) c.seed(j, oldrank[j], oldrank[j]);
  } else {
    for (Rank j = 0; j < p; ++j) c.seed(j, j, oldrank[j]);
  }
  for (int b = 0; b < p; ++b) c.expect_single(0, b, b);
  return c;
}

Contract contract_bcast(int p, int buf_blocks, TreeAlgo algo) {
  Contract c = base(std::string("bcast/") +
                        (algo == TreeAlgo::Linear ? "linear" : "binomial"),
                    p, buf_blocks, 1, identity_permutation(p));
  c.seed(0, 0, 0);
  for (Rank j = 0; j < p; ++j) c.expect_single(j, 0, 0);
  return c;
}

Contract contract_bcast_scatter_allgather(int p, int buf_blocks,
                                          AllgatherAlgo ag) {
  Contract c = base(std::string("bcast-scatter-allgather/") + to_string(ag),
                    p, buf_blocks, p, identity_permutation(p));
  for (int b = 0; b < p; ++b) c.seed(0, b, b);  // root's segmented message
  for (Rank j = 0; j < p; ++j)
    for (int b = 0; b < p; ++b) c.expect_single(j, b, b);
  return c;
}

Contract contract_scatter(int p, int buf_blocks, TreeAlgo algo,
                          const std::vector<Rank>& oldrank) {
  Contract c = base(std::string("scatter/") +
                        (algo == TreeAlgo::Linear ? "linear" : "binomial"),
                    p, buf_blocks, p, oldrank);
  for (int r = 0; r < p; ++r) c.seed(0, r, r);  // root buffer, original order
  for (Rank j = 0; j < p; ++j) c.expect_single(j, j, oldrank[j]);
  return c;
}

Contract contract_alltoall(int p, int buf_blocks, AlltoallAlgo algo,
                           const std::vector<Rank>& oldrank) {
  Contract c = base(std::string("alltoall/") +
                        (algo == AlltoallAlgo::Rotation ? "rotation"
                                                        : "pairwise-xor"),
                    p, buf_blocks, p * p, oldrank);
  // Origin s*p + r: the block original rank s addresses to original rank r.
  for (Rank j = 0; j < p; ++j)
    for (Rank k = 0; k < p; ++k)
      c.seed(j, k, oldrank[j] * p + oldrank[k]);
  // Receive region in original-rank order: slot p+i carries what original
  // rank i sent to this process.
  for (Rank j = 0; j < p; ++j)
    for (Rank i = 0; i < p; ++i)
      c.expect_single(j, p + i, i * p + oldrank[j]);
  return c;
}

Contract contract_allreduce_rd(int p, int buf_blocks) {
  Contract c = base("allreduce/rd", p, buf_blocks, p,
                    identity_permutation(p));
  for (Rank r = 0; r < p; ++r) c.seed(r, 0, r);
  for (Rank r = 0; r < p; ++r) c.expect_all(r, 0);
  return c;
}

Contract contract_allreduce_rabenseifner(int p, int buf_blocks) {
  Contract c = base("allreduce/rabenseifner", p, buf_blocks, p * p,
                    identity_permutation(p));
  for (Rank r = 0; r < p; ++r)
    for (int b = 0; b < p; ++b) c.seed(r, b, r * p + b);
  for (Rank r = 0; r < p; ++r) {
    for (int b = 0; b < p; ++b) {
      analyze::OriginSet want = analyze::OriginSet::empty_set(p * p);
      for (Rank q = 0; q < p; ++q) want.toggle(q * p + b);
      c.expect(r, b, std::move(want));
    }
  }
  return c;
}

}  // namespace tarr::collectives
