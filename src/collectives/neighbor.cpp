#include "collectives/neighbor.hpp"

#include "common/error.hpp"
#include "common/permutation.hpp"

namespace tarr::collectives {

namespace {

using simmpi::Engine;
using simmpi::ExecMode;

/// Partner of rank i at stage k: stage 0 pairs (0,1),(2,3),...; stage 1
/// pairs (1,2),(3,4),...,(p-1,0); alternating from there.
Rank partner_at(Rank i, int k, int p) {
  return (i + k) % 2 == 0 ? (i + 1) % p : (i - 1 + p) % p;
}

/// Send the aligned block pair {2g, 2g+1} from i to partner.  Blocks are
/// stored at their original-rank slots (in-place order preservation), so
/// Data mode emits one copy per block; Timed mode coalesces the pair into
/// a single transfer to avoid double-charging latency.
void send_group(Engine& eng, const std::vector<Rank>& oldrank, Rank i,
                Rank partner, int group) {
  const int p = eng.comm().size();
  if (eng.mode() == ExecMode::Data) {
    for (int b = 0; b < 2; ++b) {
      const Rank origin = (2 * group + b) % p;
      eng.copy(i, oldrank[origin], partner, oldrank[origin], 1);
    }
  } else {
    eng.copy(i, 0, partner, 0, 2);
  }
}

}  // namespace

Usec run_allgather_neighbor(simmpi::Engine& eng,
                            const std::vector<Rank>& oldrank) {
  const int p = eng.comm().size();
  TARR_REQUIRE(static_cast<int>(oldrank.size()) == p,
               "run_allgather_neighbor: oldrank size mismatch");
  TARR_REQUIRE(is_permutation_of_iota(oldrank),
               "run_allgather_neighbor: oldrank is not a permutation");
  TARR_REQUIRE(p % 2 == 0 || p == 1,
               "run_allgather_neighbor: needs an even number of ranks");
  TARR_REQUIRE(eng.buf_blocks() >= p,
               "run_allgather_neighbor: buffer too small");
  const Usec before = eng.total();

  for (Rank j = 0; j < p; ++j)
    eng.set_block(j, oldrank[j], static_cast<std::uint32_t>(oldrank[j]));
  if (p == 1) return 0.0;

  // Stage 0: exchange own (single) blocks within adjacent pairs; afterwards
  // every rank holds its aligned pair group i/2 completely.
  eng.begin_stage();
  for (Rank i = 0; i < p; ++i)
    eng.copy(i, oldrank[i], partner_at(i, 0, p), oldrank[i], 1);
  eng.end_stage();

  // last_group[i] = the aligned pair group rank i received most recently
  // (initially its own group — what it forwards in stage 1).
  std::vector<int> last_group(p);
  for (Rank i = 0; i < p; ++i) last_group[i] = i / 2;

  for (int k = 1; k < p / 2; ++k) {
    eng.begin_stage();
    std::vector<int> next_group(p);
    for (Rank i = 0; i < p; ++i) {
      const Rank partner = partner_at(i, k, p);
      send_group(eng, oldrank, i, partner, last_group[i]);
      next_group[i] = last_group[partner];
    }
    last_group = std::move(next_group);
    eng.end_stage();
  }
  return eng.total() - before;
}

Usec run_allgather_neighbor(simmpi::Engine& eng) {
  return run_allgather_neighbor(eng,
                                identity_permutation(eng.comm().size()));
}

}  // namespace tarr::collectives
