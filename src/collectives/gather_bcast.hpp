#pragma once

#include <vector>

#include "collectives/collective.hpp"
#include "simmpi/engine.hpp"

/// \file gather_bcast.hpp
/// Standalone MPI_Gather and MPI_Bcast (the paper notes BGMH and BBMH apply
/// to these operations directly, not just to the phases of a hierarchical
/// allgather).
///
/// Gather engine contract: buf_blocks >= p, block_bytes = per-rank block m;
/// the root is new rank 0.  Bcast engine contract for linear/binomial:
/// buf_blocks >= 1, block 0 is the message; for scatter-allgather the
/// message is split into p blocks (block_bytes = m / p).

namespace tarr::collectives {

/// Tree shape of a gather/bcast.
enum class TreeAlgo { Linear, Binomial };

/// Tag run_bcast seeds at the root's block 0; in Data mode every rank must
/// hold it afterwards (check::audit_bcast verifies exactly that).
inline constexpr std::uint32_t kBcastMessageTag = 0xb0adca57u;

/// Gather every rank's block to new rank 0, output in original-rank order
/// (§V-B fix applied; Linear needs no fix mechanism beyond slot addressing,
/// so `fix` is ignored for it).  Linear is modeled as p-1 serialized
/// arrivals at the root; Binomial as the log-depth halving tree.
Usec run_gather(simmpi::Engine& eng, TreeAlgo algo, OrderFix fix,
                const std::vector<Rank>& oldrank);

/// Broadcast new rank 0's block-0 message to every rank.  No output vector
/// exists, so no order fix applies (§V-B).
Usec run_bcast(simmpi::Engine& eng, TreeAlgo algo);

/// Large-message broadcast as binomial scatter + allgather (the paper notes
/// this composition is covered by BGMH/RDMH/RMH; provided as an executable
/// algorithm).  Engine: buf_blocks >= p, message = p blocks.
Usec run_bcast_scatter_allgather(simmpi::Engine& eng, AllgatherAlgo ag);

/// MPI_Scatter from new rank 0: the root's send buffer holds one block per
/// process in ORIGINAL-rank order (slot r = block for original rank r);
/// afterwards every new rank j holds its own block at slot j
/// (block(j, j) == oldrank[j] in Data mode).  The paper notes the scatter
/// pattern is the gather pattern reversed, so BGMH covers its mapping.
/// Binomial scatter under reordering pre-permutes the root's buffer into
/// new-rank order (one local shuffle, priced); linear scatter addresses
/// blocks directly and needs no shuffle.
Usec run_scatter(simmpi::Engine& eng, TreeAlgo algo,
                 const std::vector<Rank>& oldrank);

}  // namespace tarr::collectives
