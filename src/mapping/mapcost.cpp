#include "mapping/mapcost.hpp"

#include "common/error.hpp"

namespace tarr::mapping {

double mapping_cost(const graph::WeightedGraph& pattern,
                    const std::vector<int>& rank_to_slot,
                    const topology::DistanceMatrix& d) {
  TARR_REQUIRE(pattern.num_vertices() ==
                   static_cast<int>(rank_to_slot.size()),
               "mapping_cost: pattern/assignment size mismatch");
  double cost = 0.0;
  for (const auto& e : pattern.edges()) {
    cost += e.w * static_cast<double>(
                      d.at(rank_to_slot[e.u], rank_to_slot[e.v]));
  }
  return cost;
}

}  // namespace tarr::mapping
