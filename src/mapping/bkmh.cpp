#include "common/bits.hpp"
#include "mapping/heuristics.hpp"
#include "mapping/scheme.hpp"

namespace tarr::mapping {

/// Bruck-allgather extension of the RDMH idea (paper §VII names Bruck as
/// future work).  In Bruck's algorithm rank r receives from (r + 2^s) mod p
/// and later stages carry more blocks, so the selection rule prefers the
/// reference's furthest-stage peer; the reference advances every `period_`
/// placements, like RDMH.
std::vector<int> BkmhMapper::map(const std::vector<int>& rank_to_slot,
                                 const topology::DistanceMatrix& d,
                                 Rng& rng) const {
  const int p = static_cast<int>(rank_to_slot.size());
  MappingState st(rank_to_slot, d, rng);
  if (p == 1) return finish_mapping(st, name(), rank_to_slot);

  const int top = static_cast<int>(floor_pow2(p - 1));
  Rank ref = 0;
  int i = top;
  int placed_around_ref = 0;

  while (!st.done()) {
    while (i >= 1 && st.is_mapped((ref + i) % p)) i /= 2;
    const Rank next = i >= 1 ? (ref + i) % p : st.first_unmapped();
    st.map_close_to(next, ref);
    if (period_ >= 1 && ++placed_around_ref >= period_) {
      ref = next;
      i = top;
      placed_around_ref = 0;
    }
  }
  return finish_mapping(st, name(), rank_to_slot);
}

}  // namespace tarr::mapping
