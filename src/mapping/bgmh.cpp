#include <vector>

#include "common/bits.hpp"
#include "mapping/heuristics.hpp"
#include "mapping/scheme.hpp"

namespace tarr::mapping {

/// Algorithm 5.  Gather messages grow toward the root, so the heaviest tree
/// edges (subtree size = i) are mapped first: for i = p/2, p/4, ..., 1 every
/// potential reference r in V with an unmapped child r+i places that child
/// as close as possible to itself, and every newly mapped rank joins V.
std::vector<int> BgmhMapper::map(const std::vector<int>& rank_to_slot,
                                 const topology::DistanceMatrix& d,
                                 Rng& rng) const {
  const int p = static_cast<int>(rank_to_slot.size());
  MappingState st(rank_to_slot, d, rng);
  if (p == 1) return finish_mapping(st, name(), rank_to_slot);

  std::vector<Rank> v{0};  // potential reference cores, insertion order
  for (int i = static_cast<int>(ceil_pow2(p) / 2); i >= 1; i /= 2) {
    // Only references present before this level existed when the paper's
    // loop reaches level i; ranks added at level i have no child at level i.
    const std::size_t snapshot = v.size();
    for (std::size_t k = 0; k < snapshot; ++k) {
      const Rank ref = v[k];
      const Rank child = ref + i;
      if (child >= p) continue;
      st.map_close_to(child, ref);
      v.push_back(child);
    }
  }
  return finish_mapping(st, name(), rank_to_slot);
}

}  // namespace tarr::mapping
