#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "topology/distance.hpp"

/// \file scheme.hpp
/// Shared machinery of Algorithm 1, the general scheme behind every
/// fine-tuned heuristic:
///
///   1  fix rank 0 on its current slot, choose it as the reference;
///   3  while processes remain:
///   4    select the next process               (pattern-specific)
///   5    find the free slot closest to the reference (ties broken randomly)
///   6    map the process onto it
///   7    update the reference if necessary     (pattern-specific)
///
/// MappingState implements steps 1, 5 and 6 plus the bookkeeping; each
/// heuristic supplies its own process-selection and reference-update policy.

namespace tarr::mapping {

/// Mutable state of one run of Algorithm 1.
class MappingState {
 public:
  /// `rank_to_slot` is the initial assignment; `d` the slot distances.
  /// Fixes rank 0 on its current slot immediately (step 1).
  MappingState(const std::vector<int>& rank_to_slot,
               const topology::DistanceMatrix& d, Rng& rng);

  int num_ranks() const { return p_; }
  int num_mapped() const { return mapped_; }
  bool done() const { return mapped_ == p_; }

  /// True iff `rank` has already been assigned a slot.
  bool is_mapped(Rank rank) const;

  /// Slot assigned to a mapped rank.
  int slot_of(Rank rank) const;

  /// Step 5: the free slot with minimum distance from the slot of
  /// `ref_rank` (which must be mapped); ties are broken uniformly at random.
  int find_closest_to(Rank ref_rank);

  /// Step 6: assign `rank` (not yet mapped) to `slot` (currently free).
  void assign(Rank rank, int slot);

  /// Convenience for the common "map `rank` next to `ref_rank`" step.
  void map_close_to(Rank rank, Rank ref_rank);

  /// Lowest-numbered rank that is not mapped yet (kNoRank if none) — used as
  /// a robustness fallback when a pattern's selection rule runs out of
  /// candidates before every process is mapped.
  Rank first_unmapped() const;

  /// Final result M[new_rank] = slot.  Valid once done().
  std::vector<int> result() const;

 private:
  int p_;
  const topology::DistanceMatrix* d_;
  Rng* rng_;
  std::vector<int> assignment_;   // new_rank -> slot or -1
  std::vector<int> free_slots_;   // unordered pool, swap-remove
  std::vector<int> free_index_;   // slot -> index in free_slots_ or -1
  int mapped_ = 0;
};

/// st.result() plus, in TARR_SLOW_CHECKS builds, a bijectivity re-check of
/// the heuristic's own output against the initial assignment (see
/// check/mapping_verifier.hpp).  Every heuristic returns through this.
std::vector<int> finish_mapping(const MappingState& st,
                                const std::string& mapper,
                                const std::vector<int>& rank_to_slot);

}  // namespace tarr::mapping
