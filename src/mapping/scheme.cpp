#include "mapping/scheme.hpp"

#include <algorithm>

#include "check/mapping_verifier.hpp"
#include "common/error.hpp"
#include "prof/profiler.hpp"
#include "trace/sink.hpp"

namespace tarr::mapping {

MappingState::MappingState(const std::vector<int>& rank_to_slot,
                           const topology::DistanceMatrix& d, Rng& rng)
    : p_(static_cast<int>(rank_to_slot.size())), d_(&d), rng_(&rng) {
  TARR_REQUIRE(p_ >= 1, "MappingState: empty rank set");
  int max_slot = 0;
  for (int s : rank_to_slot) {
    TARR_REQUIRE(s >= 0 && s < d.size(),
                 "MappingState: slot outside distance matrix");
    max_slot = std::max(max_slot, s);
  }
  assignment_.assign(p_, -1);
  free_index_.assign(max_slot + 1, -1);
  free_slots_.reserve(p_);
  for (int s : rank_to_slot) {
    TARR_REQUIRE(free_index_[s] == -1, "MappingState: duplicate slot");
    free_index_[s] = static_cast<int>(free_slots_.size());
    free_slots_.push_back(s);
  }
  // Step 1: rank 0 stays on its current slot.
  assign(0, rank_to_slot[0]);
}

bool MappingState::is_mapped(Rank rank) const {
  TARR_REQUIRE(rank >= 0 && rank < p_, "is_mapped: rank out of range");
  return assignment_[rank] != -1;
}

int MappingState::slot_of(Rank rank) const {
  TARR_REQUIRE(is_mapped(rank), "slot_of: rank not mapped");
  return assignment_[rank];
}

int MappingState::find_closest_to(Rank ref_rank) {
  TARR_REQUIRE(!free_slots_.empty(), "find_closest_to: no free slots");
  const int ref_slot = slot_of(ref_rank);
  const float* row = d_->row(ref_slot);
  float best = row[free_slots_[0]];
  int ties = 1;
  int chosen = free_slots_[0];
  // Reservoir-style single pass: every tied minimum is chosen with equal
  // probability without materializing the tie set.
  for (std::size_t i = 1; i < free_slots_.size(); ++i) {
    const int s = free_slots_[i];
    const float dist = row[s];
    if (dist < best) {
      best = dist;
      ties = 1;
      chosen = s;
    } else if (dist == best) {
      ++ties;
      if (rng_->next_below(static_cast<std::uint64_t>(ties)) == 0) chosen = s;
    }
  }
  if (ties > 1) {
    if (trace::TraceSink* sink = trace::thread_sink())
      sink->add_count("mapping.tie_breaks", 1.0);
  }
  if (prof::Profiler* p = prof::thread_profiler()) {
    p->count("mapping.scan_steps", static_cast<double>(free_slots_.size()));
    if (ties > 1) p->count("mapping.tie_breaks", 1.0);
  }
  return chosen;
}

void MappingState::assign(Rank rank, int slot) {
  TARR_REQUIRE(rank >= 0 && rank < p_, "assign: rank out of range");
  TARR_REQUIRE(assignment_[rank] == -1, "assign: rank already mapped");
  TARR_REQUIRE(slot >= 0 &&
                   slot < static_cast<int>(free_index_.size()) &&
                   free_index_[slot] != -1,
               "assign: slot not free");
  const int idx = free_index_[slot];
  const int last = free_slots_.back();
  free_slots_[idx] = last;
  free_index_[last] = idx;
  free_slots_.pop_back();
  free_index_[slot] = -1;
  assignment_[rank] = slot;
  ++mapped_;
  if (trace::TraceSink* sink = trace::thread_sink())
    sink->add_count("mapping.placements", 1.0);
  prof::count("mapping.placements");
  // The swap-remove pool and its index must stay mutually consistent; a
  // bookkeeping slip here surfaces far away as a duplicate assignment.
  // O(p) per placement, so only in TARR_SLOW_CHECKS builds.
  TARR_CHECK_SLOW(
      [this] {
        for (std::size_t i = 0; i < free_slots_.size(); ++i)
          if (free_index_[free_slots_[i]] != static_cast<int>(i)) return false;
        return true;
      }(),
      "assign: free-slot pool and index out of sync");
}

void MappingState::map_close_to(Rank rank, Rank ref_rank) {
  assign(rank, find_closest_to(ref_rank));
}

Rank MappingState::first_unmapped() const {
  for (Rank r = 0; r < p_; ++r)
    if (assignment_[r] == -1) return r;
  return kNoRank;
}

std::vector<int> MappingState::result() const {
  TARR_REQUIRE(done(), "result: mapping incomplete");
  return assignment_;
}

std::vector<int> finish_mapping(const MappingState& st,
                                const std::string& mapper,
                                const std::vector<int>& rank_to_slot) {
  std::vector<int> result = st.result();
  if constexpr (kSlowChecksEnabled)
    check::verify_mapping(mapper, rank_to_slot, result);
  return result;
}

}  // namespace tarr::mapping
