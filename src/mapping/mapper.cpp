#include "mapping/mapper.hpp"

#include "check/mapping_verifier.hpp"
#include "common/error.hpp"
#include "mapping/comparators.hpp"
#include "mapping/heuristics.hpp"
#include "prof/profiler.hpp"

namespace tarr::mapping {

std::vector<int> Mapper::checked_map(const std::vector<int>& rank_to_slot,
                                     const topology::DistanceMatrix& d,
                                     Rng& rng) const {
  // One scope per heuristic run: the single choke point through which every
  // mapper (all five pattern heuristics, greedy-graph, scotch-like, the
  // baselines) is invoked, so per-mapper work nests under "map:<name>".
  prof::ProfScope pscope(std::string("map:") + name());
  std::vector<int> result = map(rank_to_slot, d, rng);
  check::verify_mapping(name(), rank_to_slot, result);
  return result;
}

const char* to_string(Pattern p) {
  switch (p) {
    case Pattern::RecursiveDoubling:
      return "recursive-doubling";
    case Pattern::Ring:
      return "ring";
    case Pattern::BinomialBcast:
      return "binomial-bcast";
    case Pattern::BinomialGather:
      return "binomial-gather";
    case Pattern::Bruck:
      return "bruck";
  }
  return "?";
}

std::unique_ptr<Mapper> make_heuristic(Pattern p) {
  switch (p) {
    case Pattern::RecursiveDoubling:
      return std::make_unique<RdmhMapper>();
    case Pattern::Ring:
      return std::make_unique<RmhMapper>();
    case Pattern::BinomialBcast:
      return std::make_unique<BbmhMapper>();
    case Pattern::BinomialGather:
      return std::make_unique<BgmhMapper>();
    case Pattern::Bruck:
      return std::make_unique<BkmhMapper>();
  }
  TARR_REQUIRE(false, "make_heuristic: unknown pattern");
  return nullptr;
}

std::unique_ptr<Mapper> make_identity_mapper() {
  return std::make_unique<IdentityMapper>();
}

std::unique_ptr<Mapper> make_mvapich_cyclic_mapper(int slots_per_node) {
  return std::make_unique<MvapichCyclicMapper>(slots_per_node);
}

std::unique_ptr<Mapper> make_greedy_graph_mapper(Pattern p) {
  return std::make_unique<GreedyGraphMapper>(p);
}

std::unique_ptr<Mapper> make_scotch_like_mapper(Pattern p) {
  return std::make_unique<ScotchLikeMapper>(p);
}

}  // namespace tarr::mapping
