#include "common/bits.hpp"
#include "common/error.hpp"
#include "mapping/heuristics.hpp"
#include "mapping/scheme.hpp"

namespace tarr::mapping {

/// Algorithm 2.  Starting from the last stage (i = p/2), the next process is
/// the peer `ref XOR i` of the reference in the furthest not-yet-covered
/// stage; after `period_` placements the reference advances to the most
/// recently mapped rank (whose own last-stage peer then gets priority).
std::vector<int> RdmhMapper::map(const std::vector<int>& rank_to_slot,
                                 const topology::DistanceMatrix& d,
                                 Rng& rng) const {
  const int p = static_cast<int>(rank_to_slot.size());
  if (p == 1) return rank_to_slot;
  TARR_REQUIRE(is_pow2(p),
               "RDMH: recursive doubling requires a power-of-two size");

  MappingState st(rank_to_slot, d, rng);
  Rank ref = 0;
  int i = p / 2;
  int placed_around_ref = 0;

  while (!st.done()) {
    while (i >= 1 && st.is_mapped(ref ^ i)) i /= 2;
    // Every peer of the reference is mapped: fall back to the lowest
    // unmapped rank (cannot occur with period 2, but keeps arbitrary
    // ref-update policies total).
    const Rank next = i >= 1 ? (ref ^ i) : st.first_unmapped();
    st.map_close_to(next, ref);
    if (period_ >= 1 && ++placed_around_ref >= period_) {
      ref = next;
      i = p / 2;
      placed_around_ref = 0;
    }
  }
  return finish_mapping(st, name(), rank_to_slot);
}

}  // namespace tarr::mapping
