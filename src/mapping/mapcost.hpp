#pragma once

#include "graph/graph.hpp"
#include "topology/distance.hpp"

/// \file mapcost.hpp
/// Mapping quality metric: the classic weighted-distance ("hop-bytes")
/// objective sum_e w(e) * dist(slot(u), slot(v)).  The heuristics never
/// optimize this metric explicitly, but tests and ablations use it to check
/// that they reduce it relative to the initial mapping.

namespace tarr::mapping {

/// Weighted-distance cost of assignment `rank_to_slot` for `pattern`.
double mapping_cost(const graph::WeightedGraph& pattern,
                    const std::vector<int>& rank_to_slot,
                    const topology::DistanceMatrix& d);

}  // namespace tarr::mapping
