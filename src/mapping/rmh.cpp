#include "mapping/heuristics.hpp"
#include "mapping/scheme.hpp"

namespace tarr::mapping {

/// Algorithm 3.  In the ring every rank talks to a single fixed successor,
/// so processes are selected in increasing rank order and the reference
/// advances every iteration: rank r+1 lands as close as possible to wherever
/// rank r just landed.
std::vector<int> RmhMapper::map(const std::vector<int>& rank_to_slot,
                                const topology::DistanceMatrix& d,
                                Rng& rng) const {
  MappingState st(rank_to_slot, d, rng);
  Rank ref = 0;
  while (!st.done()) {
    const Rank next = ref + 1;  // never wraps: rank p-1 is mapped last
    st.map_close_to(next, ref);
    ref = next;
  }
  return finish_mapping(st, name(), rank_to_slot);
}

}  // namespace tarr::mapping
