#include <algorithm>
#include <vector>

#include "common/bits.hpp"
#include "mapping/heuristics.hpp"
#include "mapping/scheme.hpp"

namespace tarr::mapping {

namespace {

/// Children of `r` in the root-0 binomial (halving) tree on p ranks, in
/// ascending subtree size: r + 2^k for 2^k < lsb(r) (every power for r = 0),
/// truncated at p.
std::vector<Rank> binomial_children(Rank r, int p) {
  std::vector<Rank> kids;
  const int max_i = p >= 2 ? static_cast<int>(ceil_pow2(p) / 2) : 0;
  for (int i = 1; i <= max_i && (r & i) == 0; i <<= 1) {
    if (r + i >= p) break;
    kids.push_back(r + i);
  }
  return kids;
}

/// Depth-first mapping (Algorithm 4): each child is mapped as close as
/// possible to its parent, then its own subtree is completed before the next
/// sibling.  `reverse_children` flips to largest-subtree-first.
void rec_binomial_map(Rank r, int p, MappingState& st, bool reverse_children) {
  std::vector<Rank> kids = binomial_children(r, p);
  if (reverse_children) std::reverse(kids.begin(), kids.end());
  for (Rank c : kids) {
    st.map_close_to(c, r);
    rec_binomial_map(c, p, st, reverse_children);
  }
}

}  // namespace

/// Algorithm 4.  The broadcast message size is constant across stages, so
/// the heuristic is purely a tree traversal; the paper picks the variation
/// of DFT that visits smaller subtrees first (later-stage communications are
/// the numerous, contention-prone ones and end up packed closest together).
std::vector<int> BbmhMapper::map(const std::vector<int>& rank_to_slot,
                                 const topology::DistanceMatrix& d,
                                 Rng& rng) const {
  const int p = static_cast<int>(rank_to_slot.size());
  MappingState st(rank_to_slot, d, rng);
  if (p == 1) return finish_mapping(st, name(), rank_to_slot);

  switch (order_) {
    case BbmhTraversal::SmallSubtreeFirst:
      rec_binomial_map(0, p, st, /*reverse_children=*/false);
      break;
    case BbmhTraversal::LargeSubtreeFirst:
      rec_binomial_map(0, p, st, /*reverse_children=*/true);
      break;
    case BbmhTraversal::LevelOrder: {
      // Broadcast stage order: dist = 2^ceil(log2 p)/2 .. 1; at each stage
      // every aligned mapped parent hands the next child its closest slot.
      for (int dist = static_cast<int>(ceil_pow2(p) / 2); dist >= 1;
           dist /= 2) {
        for (Rank r = 0; r + dist < p; r += 2 * dist) {
          st.map_close_to(r + dist, r);
        }
      }
      break;
    }
  }
  return finish_mapping(st, name(), rank_to_slot);
}

}  // namespace tarr::mapping
