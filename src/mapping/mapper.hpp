#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "topology/distance.hpp"

/// \file mapper.hpp
/// The mapping interface shared by the paper's fine-tuned heuristics and the
/// general-purpose comparators.
///
/// A mapper receives (a) the *initial* assignment of ranks to slots and
/// (b) the physical distance matrix over the slot universe, and returns a
/// new assignment `M` with `M[new_rank] = slot`: the process currently on
/// that slot will adopt rank `new_rank` in the reordered communicator.
///
/// "Slot" is deliberately abstract: for the non-hierarchical path a slot is
/// a global core id; for the hierarchical path the same heuristics run once
/// over nodes (leader communicator, slots = node ids) and once over a node's
/// cores (intra-node communicator, slots = node-local core ids).  This is
/// exactly the two-level application described in the paper.

namespace tarr::mapping {

/// Communication patterns for which fine-tuned heuristics exist.
enum class Pattern {
  RecursiveDoubling,  ///< RDMH (Algorithm 2)
  Ring,               ///< RMH  (Algorithm 3)
  BinomialBcast,      ///< BBMH (Algorithm 4)
  BinomialGather,     ///< BGMH (Algorithm 5)
  Bruck,              ///< BKMH (future-work extension, §VII)
};

const char* to_string(Pattern p);

/// Abstract mapper.
class Mapper {
 public:
  virtual ~Mapper() = default;

  /// Short identifier, e.g. "RDMH".
  virtual std::string name() const = 0;

  /// Compute the new assignment.  `rank_to_slot[i]` is the slot currently
  /// hosting rank i; `d` must cover every slot id that appears.  Returns
  /// `M[new_rank] = slot`, a permutation of the input slot set.
  /// `rng` supplies the random tie-breaking of Algorithm 1 step 5.
  virtual std::vector<int> map(const std::vector<int>& rank_to_slot,
                               const topology::DistanceMatrix& d,
                               Rng& rng) const = 0;

  /// map() followed by check::verify_mapping: throws tarr::Error naming this
  /// mapper if the result is not a bijection onto the input slot set.  The
  /// verification is O(p) and always on — every consumer that feeds a
  /// mapping into a communicator (the reorder framework, tools) should call
  /// this instead of map().
  std::vector<int> checked_map(const std::vector<int>& rank_to_slot,
                               const topology::DistanceMatrix& d,
                               Rng& rng) const;
};

/// The paper's fine-tuned heuristic for `p` (RDMH/RMH/BBMH/BGMH/BKMH).
std::unique_ptr<Mapper> make_heuristic(Pattern p);

/// Identity mapper (returns the initial assignment; the "no reordering"
/// baseline).
std::unique_ptr<Mapper> make_identity_mapper();

/// MVAPICH-style reorder: rewrites a block layout into a cyclic one with no
/// topology input (the limited scheme the paper contrasts RDMH against).
std::unique_ptr<Mapper> make_mvapich_cyclic_mapper(int slots_per_node);

/// Hoefler–Snir-style greedy graph mapper over an explicit pattern graph.
std::unique_ptr<Mapper> make_greedy_graph_mapper(Pattern p);

/// Scotch-like dual recursive bipartitioning over an explicit pattern graph.
std::unique_ptr<Mapper> make_scotch_like_mapper(Pattern p);

}  // namespace tarr::mapping
