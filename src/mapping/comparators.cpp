#include "mapping/comparators.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "check/mapping_verifier.hpp"
#include "common/error.hpp"
#include "graph/bisection.hpp"
#include "graph/pattern.hpp"
#include "mapping/scheme.hpp"
#include "trace/sink.hpp"

namespace tarr::mapping {

graph::WeightedGraph build_pattern_graph(Pattern pattern, int p) {
  switch (pattern) {
    case Pattern::RecursiveDoubling:
      return graph::recursive_doubling_pattern(p);
    case Pattern::Ring:
      return graph::ring_pattern(p);
    case Pattern::BinomialBcast:
      return graph::binomial_bcast_pattern(p);
    case Pattern::BinomialGather:
      return graph::binomial_gather_pattern(p);
    case Pattern::Bruck:
      return graph::bruck_pattern(p);
  }
  TARR_REQUIRE(false, "build_pattern_graph: unknown pattern");
  return graph::WeightedGraph(0);
}

std::vector<int> IdentityMapper::map(const std::vector<int>& rank_to_slot,
                                     const topology::DistanceMatrix&,
                                     Rng&) const {
  return rank_to_slot;
}

MvapichCyclicMapper::MvapichCyclicMapper(int slots_per_node)
    : slots_per_node_(slots_per_node) {
  TARR_REQUIRE(slots_per_node >= 1,
               "MvapichCyclicMapper: slots_per_node must be >= 1");
}

std::vector<int> MvapichCyclicMapper::map(
    const std::vector<int>& rank_to_slot, const topology::DistanceMatrix&,
    Rng&) const {
  const int p = static_cast<int>(rank_to_slot.size());
  // Group the slot set into "nodes" of slots_per_node consecutive sorted
  // slots, then deal ranks over the groups round-robin (block -> cyclic).
  std::vector<int> sorted = rank_to_slot;
  std::sort(sorted.begin(), sorted.end());
  const int groups = (p + slots_per_node_ - 1) / slots_per_node_;
  std::vector<int> result(p);
  int r = 0;
  for (int offset = 0; offset < slots_per_node_ && r < p; ++offset) {
    for (int g = 0; g < groups && r < p; ++g) {
      const int idx = g * slots_per_node_ + offset;
      if (idx < p) result[r++] = sorted[idx];
    }
  }
  if constexpr (kSlowChecksEnabled)
    check::verify_mapping("MVAPICH-cyclic", rank_to_slot, result);
  return result;
}

std::vector<int> greedy_graph_map(const graph::WeightedGraph& g,
                                  const std::vector<int>& rank_to_slot,
                                  const topology::DistanceMatrix& d,
                                  Rng& rng) {
  TARR_REQUIRE(g.num_vertices() == static_cast<int>(rank_to_slot.size()),
               "greedy_graph_map: graph/rank size mismatch");
  MappingState st(rank_to_slot, d, rng);

  // Lazy max-heap of frontier edges (weight, mapped endpoint, candidate).
  struct Item {
    double w;
    Rank from;
    Rank to;
    bool operator<(const Item& o) const { return w < o.w; }
  };
  std::priority_queue<Item> heap;
  auto push_frontier = [&](Rank v) {
    for (const auto& nb : g.neighbors(v)) {
      if (!st.is_mapped(nb.vertex))
        heap.push(Item{nb.weight, v, nb.vertex});
    }
  };
  push_frontier(0);

  while (!st.done()) {
    Rank next = kNoRank, ref = 0;
    while (!heap.empty()) {
      const Item it = heap.top();
      heap.pop();
      if (!st.is_mapped(it.to)) {
        next = it.to;
        ref = it.from;
        break;
      }
    }
    if (next == kNoRank) next = st.first_unmapped();  // disconnected pattern
    st.map_close_to(next, ref);
    push_frontier(next);
  }
  return finish_mapping(st, "greedy-graph", rank_to_slot);
}

std::vector<int> GreedyGraphMapper::map(const std::vector<int>& rank_to_slot,
                                        const topology::DistanceMatrix& d,
                                        Rng& rng) const {
  const int p = static_cast<int>(rank_to_slot.size());
  return greedy_graph_map(build_pattern_graph(pattern_, p), rank_to_slot, d,
                          rng);
}

namespace {

/// Dual recursive bipartitioning: split the slot interval in half, bisect
/// the vertex subset to match, recurse.  Slot ids sorted ascending encode
/// the host hierarchy (node-major core numbering), as in a Scotch tleaf.
void scotch_recurse(const graph::WeightedGraph& g, std::vector<int> vertices,
                    const std::vector<int>& slots, int lo, int hi,
                    Rng& rng, std::vector<int>& result) {
  const int n = hi - lo;
  if (n == 1) {
    result[vertices[0]] = slots[lo];
    return;
  }
  const int half = n / 2;
  // Heavier refinement than the library default: a general-purpose mapper
  // of the Scotch family spends real work per bisection (multilevel
  // coarsening + full FM); wider windows and more passes approximate that
  // cost/quality point.
  graph::BisectionOptions opts;
  opts.refine_passes = 8;
  opts.candidate_window = 64;
  const graph::BisectionResult bi =
      graph::bisect_subset(g, vertices, half, rng, opts);
  std::vector<int> left, right;
  left.reserve(half);
  right.reserve(n - half);
  for (std::size_t i = 0; i < vertices.size(); ++i)
    (bi.side[i] == 0 ? left : right).push_back(vertices[i]);
  scotch_recurse(g, std::move(left), slots, lo, lo + half, rng, result);
  scotch_recurse(g, std::move(right), slots, lo + half, hi, rng, result);
}

}  // namespace

std::vector<int> scotch_like_map(const graph::WeightedGraph& g,
                                 const std::vector<int>& rank_to_slot,
                                 Rng& rng) {
  const int p = static_cast<int>(rank_to_slot.size());
  TARR_REQUIRE(g.num_vertices() == p,
               "scotch_like_map: graph/rank size mismatch");
  std::vector<int> slots = rank_to_slot;
  std::sort(slots.begin(), slots.end());
  std::vector<int> vertices(p);
  for (int i = 0; i < p; ++i) vertices[i] = i;
  std::vector<int> result(p, -1);
  if (trace::TraceSink* sink = trace::thread_sink()) {
    // Depth of the dual recursive bipartitioning (Fig 7 overhead driver).
    int levels = 0;
    for (int n = p; n > 1; n = (n + 1) / 2) ++levels;
    sink->add_count("bisection.levels", static_cast<double>(levels));
  }
  scotch_recurse(g, std::move(vertices), slots, 0, p, rng, result);
  if constexpr (kSlowChecksEnabled)
    check::verify_mapping("scotch-like", rank_to_slot, result);
  return result;
}

std::vector<int> ScotchLikeMapper::map(const std::vector<int>& rank_to_slot,
                                       const topology::DistanceMatrix& d,
                                       Rng& rng) const {
  (void)d;  // the host side is encoded by the sorted slot hierarchy
  const int p = static_cast<int>(rank_to_slot.size());
  graph::WeightedGraph g = build_pattern_graph(pattern_, p);
  if (!use_edge_weights_) {
    graph::WeightedGraph flat(p);
    for (const auto& e : g.edges()) flat.add_edge(e.u, e.v, 1.0);
    flat.finalize();
    g = std::move(flat);
  }
  return scotch_like_map(g, rank_to_slot, rng);
}

}  // namespace tarr::mapping
