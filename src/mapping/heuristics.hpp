#pragma once

#include "mapping/mapper.hpp"

/// \file heuristics.hpp
/// The paper's four fine-tuned mapping heuristics (Algorithms 2-5) plus the
/// Bruck extension (§VII future work).  Each heuristic instantiates the
/// Algorithm-1 scheme with a pattern-specific process-selection order and
/// reference-core update rule; none of them builds a process topology graph.
///
/// The concrete classes expose the knobs the paper discusses so the ablation
/// benchmarks can compare design choices (e.g. BBMH's traversal order).

namespace tarr::mapping {

/// RDMH — recursive doubling (Algorithm 2).  Selects peers of the reference
/// from the furthest (largest-message) stage first; the reference advances
/// after `ref_update_period` processes have been placed around it (2 in the
/// paper).  Requires a power-of-two number of ranks.
class RdmhMapper : public Mapper {
 public:
  /// `ref_update_period` < 1 means "never update the reference".
  explicit RdmhMapper(int ref_update_period = 2)
      : period_(ref_update_period) {}
  std::string name() const override { return "RDMH"; }
  std::vector<int> map(const std::vector<int>& rank_to_slot,
                       const topology::DistanceMatrix& d,
                       Rng& rng) const override;

 private:
  int period_;
};

/// RMH — ring (Algorithm 3): walk ranks in increasing order, each mapped as
/// close as possible to its predecessor, which becomes the new reference.
class RmhMapper : public Mapper {
 public:
  std::string name() const override { return "RMH"; }
  std::vector<int> map(const std::vector<int>& rank_to_slot,
                       const topology::DistanceMatrix& d,
                       Rng& rng) const override;
};

/// Traversal orders for BBMH (§V-A3 discusses these alternatives).
enum class BbmhTraversal {
  SmallSubtreeFirst,  ///< the paper's choice (Algorithm 4)
  LargeSubtreeFirst,  ///< the [10]-style alternative the paper contrasts
  LevelOrder,         ///< breadth-first by broadcast stage
};

/// BBMH — binomial broadcast (Algorithm 4): recursive traversal of the
/// binomial tree, each child mapped as close as possible to its parent.
class BbmhMapper : public Mapper {
 public:
  explicit BbmhMapper(BbmhTraversal order = BbmhTraversal::SmallSubtreeFirst)
      : order_(order) {}
  std::string name() const override { return "BBMH"; }
  std::vector<int> map(const std::vector<int>& rank_to_slot,
                       const topology::DistanceMatrix& d,
                       Rng& rng) const override;

 private:
  BbmhTraversal order_;
};

/// BGMH — binomial gather (Algorithm 5): heaviest-edge-first over the
/// binomial tree; every mapped rank joins the set of potential references.
class BgmhMapper : public Mapper {
 public:
  std::string name() const override { return "BGMH"; }
  std::vector<int> map(const std::vector<int>& rank_to_slot,
                       const topology::DistanceMatrix& d,
                       Rng& rng) const override;
};

/// BKMH — Bruck allgather (future-work extension): RDMH-style scheme with
/// the Bruck peer relation (ref + 2^k mod p), furthest stage first.  Works
/// for any communicator size.
class BkmhMapper : public Mapper {
 public:
  explicit BkmhMapper(int ref_update_period = 2)
      : period_(ref_update_period) {}
  std::string name() const override { return "BKMH"; }
  std::vector<int> map(const std::vector<int>& rank_to_slot,
                       const topology::DistanceMatrix& d,
                       Rng& rng) const override;

 private:
  int period_;
};

}  // namespace tarr::mapping
