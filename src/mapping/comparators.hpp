#pragma once

#include "graph/graph.hpp"
#include "mapping/mapper.hpp"

/// \file comparators.hpp
/// The baselines the paper evaluates against: no reordering, MVAPICH's
/// topology-blind block-to-cyclic reorder, a Hoefler-Snir-style greedy graph
/// mapper, and a Scotch-like dual recursive bipartitioning mapper.  Unlike
/// the fine-tuned heuristics, the two graph mappers must first *build* the
/// process-topology graph of the collective — the overhead the paper's
/// Fig 7b attributes to general-purpose mapping.

namespace tarr::mapping {

/// Build the communication-pattern graph of `pattern` for p ranks (the
/// explicit guest graph a general-purpose mapper consumes).
graph::WeightedGraph build_pattern_graph(Pattern pattern, int p);

/// Greedy graph mapping of an arbitrary communication graph (the "general
/// forms of topology-aware mapping" of §V: heaviest frontier edge first,
/// unmapped endpoint placed closest to the mapped one).  `g` must have
/// exactly rank_to_slot.size() vertices.
std::vector<int> greedy_graph_map(const graph::WeightedGraph& g,
                                  const std::vector<int>& rank_to_slot,
                                  const topology::DistanceMatrix& d,
                                  Rng& rng);

/// Dual recursive bipartitioning of an arbitrary communication graph onto
/// the slot hierarchy (sorted slot ids).
std::vector<int> scotch_like_map(const graph::WeightedGraph& g,
                                 const std::vector<int>& rank_to_slot,
                                 Rng& rng);

/// No reordering: returns the initial assignment unchanged.
class IdentityMapper : public Mapper {
 public:
  std::string name() const override { return "identity"; }
  std::vector<int> map(const std::vector<int>& rank_to_slot,
                       const topology::DistanceMatrix& d,
                       Rng& rng) const override;
};

/// MVAPICH's recursive-doubling "reordering": rewrite a block layout into a
/// cyclic one.  It consults neither the distance matrix nor the initial
/// mapping beyond grouping slots into nodes — the paper's point of contrast
/// with RDMH.
class MvapichCyclicMapper : public Mapper {
 public:
  explicit MvapichCyclicMapper(int slots_per_node);
  std::string name() const override { return "mvapich-cyclic"; }
  std::vector<int> map(const std::vector<int>& rank_to_slot,
                       const topology::DistanceMatrix& d,
                       Rng& rng) const override;

 private:
  int slots_per_node_;
};

/// Greedy graph mapping in the style of Hoefler & Snir: repeatedly take the
/// heaviest pattern edge with exactly one mapped endpoint and place the
/// other endpoint as close as possible to it.
class GreedyGraphMapper : public Mapper {
 public:
  explicit GreedyGraphMapper(Pattern pattern) : pattern_(pattern) {}
  std::string name() const override { return "greedy-graph"; }
  std::vector<int> map(const std::vector<int>& rank_to_slot,
                       const topology::DistanceMatrix& d,
                       Rng& rng) const override;

 private:
  Pattern pattern_;
};

/// Scotch-like mapper: dual recursive bipartitioning of the pattern graph
/// onto the slot hierarchy (slots sorted by id encode the machine tree,
/// exactly like a Scotch "tleaf" architecture).
///
/// By default the bipartitioning is driven by the graph *structure* only
/// (`use_edge_weights = false`): a general-purpose mapper has no notion of
/// which stage of the collective an edge belongs to, and on a recursive-
/// doubling hypercube every dimension cut looks identical without volume
/// weights, so the mapper routinely severs the heavy last-stage pairs —
/// reproducing the poor Scotch mappings of the paper's Fig 3.  Setting
/// `use_edge_weights = true` gives the idealized volume-aware variant (the
/// abl_scotch_weights ablation contrasts the two).
class ScotchLikeMapper : public Mapper {
 public:
  explicit ScotchLikeMapper(Pattern pattern, bool use_edge_weights = false)
      : pattern_(pattern), use_edge_weights_(use_edge_weights) {}
  std::string name() const override { return "scotch-like"; }
  std::vector<int> map(const std::vector<int>& rank_to_slot,
                       const topology::DistanceMatrix& d,
                       Rng& rng) const override;

 private:
  Pattern pattern_;
  bool use_edge_weights_;
};

}  // namespace tarr::mapping
