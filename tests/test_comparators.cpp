#include "mapping/comparators.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/bits.hpp"
#include "mapping/mapcost.hpp"
#include "simmpi/layout.hpp"
#include "topology/distance.hpp"

namespace tarr::mapping {
namespace {

using simmpi::LayoutSpec;
using simmpi::NodeOrder;
using simmpi::SocketOrder;
using simmpi::make_layout;
using topology::DistanceMatrix;
using topology::Machine;

struct Fixture {
  Machine machine;
  DistanceMatrix dist;
  explicit Fixture(int nodes)
      : machine(Machine::gpc(nodes)),
        dist(topology::extract_distances(machine)) {}
  std::vector<int> layout(int p, LayoutSpec spec = LayoutSpec{}) const {
    const auto cores = make_layout(machine, p, spec);
    return std::vector<int>(cores.begin(), cores.end());
  }
};

bool same_slot_set(const std::vector<int>& a, const std::vector<int>& b) {
  auto x = a;
  auto y = b;
  std::sort(x.begin(), x.end());
  std::sort(y.begin(), y.end());
  return x == y;
}

TEST(IdentityMapper, ReturnsInput) {
  Fixture f(2);
  const auto initial = f.layout(16);
  Rng rng(1);
  IdentityMapper m;
  EXPECT_EQ(m.map(initial, f.dist, rng), initial);
  EXPECT_EQ(m.name(), "identity");
}

TEST(MvapichCyclic, BlockBecomesCyclic) {
  Fixture f(4);
  const int p = 32;
  const auto block = f.layout(p, LayoutSpec{});
  const auto cyclic_cores = make_layout(
      f.machine, p, LayoutSpec{NodeOrder::Cyclic, SocketOrder::Bunch});
  Rng rng(1);
  MvapichCyclicMapper m(f.machine.cores_per_node());
  const auto result = m.map(block, f.dist, rng);
  EXPECT_EQ(result, std::vector<int>(cyclic_cores.begin(),
                                     cyclic_cores.end()));
}

TEST(MvapichCyclic, HandlesPartialLastNode) {
  Fixture f(2);
  const auto initial = f.layout(12, LayoutSpec{});
  Rng rng(1);
  MvapichCyclicMapper m(8);
  const auto result = m.map(initial, f.dist, rng);
  EXPECT_TRUE(same_slot_set(initial, result));
}

TEST(MvapichCyclic, IgnoresTopology) {
  // Permuting core identities (shifting the whole job to other nodes) must
  // produce the shifted cyclic layout — it never looks at distances.
  Fixture f(4);
  Rng rng(1);
  MvapichCyclicMapper m(8);
  std::vector<int> shifted(16);
  for (int i = 0; i < 16; ++i) shifted[i] = 16 + i;  // nodes 2..3
  const auto result = m.map(shifted, f.dist, rng);
  EXPECT_TRUE(same_slot_set(shifted, result));
  EXPECT_EQ(result[0], 16);
  EXPECT_EQ(result[1], 24);  // next node's first core
}

class GraphMappersValid
    : public ::testing::TestWithParam<std::tuple<Pattern, int>> {};

TEST_P(GraphMappersValid, ProducePermutations) {
  const auto [pattern, p] = GetParam();
  if (pattern == Pattern::RecursiveDoubling && !is_pow2(p)) GTEST_SKIP();
  Fixture f(8);
  const auto initial =
      f.layout(p, LayoutSpec{NodeOrder::Cyclic, SocketOrder::Scatter});

  Rng r1(5);
  GreedyGraphMapper greedy(pattern);
  EXPECT_TRUE(same_slot_set(initial, greedy.map(initial, f.dist, r1)));

  Rng r2(5);
  ScotchLikeMapper scotch(pattern);
  EXPECT_TRUE(same_slot_set(initial, scotch.map(initial, f.dist, r2)));
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, GraphMappersValid,
    ::testing::Combine(::testing::Values(Pattern::RecursiveDoubling,
                                         Pattern::Ring,
                                         Pattern::BinomialBcast,
                                         Pattern::BinomialGather,
                                         Pattern::Bruck),
                       ::testing::Values(2, 8, 15, 16, 64)));

TEST(GreedyGraphMapper, ImprovesRingOnCyclic) {
  Fixture f(4);
  const int p = 32;
  const auto initial =
      f.layout(p, LayoutSpec{NodeOrder::Cyclic, SocketOrder::Bunch});
  const auto g = build_pattern_graph(Pattern::Ring, p);
  Rng rng(5);
  GreedyGraphMapper m(Pattern::Ring);
  const auto result = m.map(initial, f.dist, rng);
  EXPECT_LT(mapping_cost(g, result, f.dist), mapping_cost(g, initial, f.dist));
}

TEST(ScotchLike, DeterministicGivenSeed) {
  Fixture f(4);
  const auto initial = f.layout(32);
  Rng a(9), b(9);
  ScotchLikeMapper m(Pattern::RecursiveDoubling);
  EXPECT_EQ(m.map(initial, f.dist, a), m.map(initial, f.dist, b));
}

TEST(ScotchLike, WeightAwareVariantBeatsStructureOnly) {
  // The ablation behind the paper's Fig 3 Scotch results: a general mapper
  // without per-stage volume weights maps recursive doubling much worse
  // than the volume-aware variant.
  Fixture f(8);
  const int p = 64;
  const auto initial = f.layout(p);
  const auto g = build_pattern_graph(Pattern::RecursiveDoubling, p);

  Rng r1(21);
  ScotchLikeMapper structural(Pattern::RecursiveDoubling,
                              /*use_edge_weights=*/false);
  const double cost_structural =
      mapping_cost(g, structural.map(initial, f.dist, r1), f.dist);

  Rng r2(21);
  ScotchLikeMapper weighted(Pattern::RecursiveDoubling,
                            /*use_edge_weights=*/true);
  const double cost_weighted =
      mapping_cost(g, weighted.map(initial, f.dist, r2), f.dist);

  EXPECT_LT(cost_weighted, cost_structural);
}

TEST(BuildPatternGraph, DispatchesAllPatterns) {
  EXPECT_EQ(build_pattern_graph(Pattern::RecursiveDoubling, 8).num_edges(),
            8 * 3 / 2);
  EXPECT_EQ(build_pattern_graph(Pattern::Ring, 8).num_edges(), 8);
  EXPECT_EQ(build_pattern_graph(Pattern::BinomialBcast, 8).num_edges(), 7);
  EXPECT_EQ(build_pattern_graph(Pattern::BinomialGather, 8).num_edges(), 7);
  EXPECT_GT(build_pattern_graph(Pattern::Bruck, 8).num_edges(), 0);
}

TEST(Factories, ProduceNamedMappers) {
  EXPECT_EQ(make_identity_mapper()->name(), "identity");
  EXPECT_EQ(make_mvapich_cyclic_mapper(8)->name(), "mvapich-cyclic");
  EXPECT_EQ(make_greedy_graph_mapper(Pattern::Ring)->name(), "greedy-graph");
  EXPECT_EQ(make_scotch_like_mapper(Pattern::Ring)->name(), "scotch-like");
}

}  // namespace
}  // namespace tarr::mapping
